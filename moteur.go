// Package moteur is the public API of this reproduction of
//
//	Glatard, Montagnat, Pennec — "Efficient services composition for
//	grid-enabled data-intensive applications", HPDC 2006.
//
// It re-exports the building blocks needed to define service-based
// workflows, execute them with the MOTEUR enactor under any combination of
// data parallelism, service parallelism and job grouping, and reproduce
// the paper's evaluation on a simulated EGEE-style production grid.
//
// The quickest start:
//
//	eng := moteur.NewEngine()
//	g := moteur.NewGrid(eng, moteur.DefaultGridConfig())
//	wf := moteur.NewWorkflow("demo")
//	// … add sources, wrapper-backed processors, links …
//	enactor, _ := moteur.NewEnactor(eng, wf, moteur.Options{
//		DataParallelism:    true,
//		ServiceParallelism: true,
//		JobGrouping:        true,
//	})
//	result, _ := enactor.Run(inputs)
//
// See examples/ for complete programs and internal/bronze for the paper's
// full Bronze Standard application.
package moteur

import (
	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/dataset"
	"repro/internal/descriptor"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/iterstrat"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/provenance"
	"repro/internal/scenario"
	"repro/internal/scufl"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Simulation engine.
type (
	// Engine is the discrete-event simulation engine everything runs on.
	Engine = sim.Engine
	// VirtualTime is an instant of simulated time.
	VirtualTime = sim.Time
	// EngineGroup runs shard engines concurrently between the main
	// engine's instants — the conservative parallel scheme behind
	// FederationConfig.Parallel (see DESIGN.md, "Parallel per-grid
	// event loops"). Results are bit-identical to a serial drain.
	EngineGroup = sim.Group
)

// NewEngine returns a fresh simulation engine with the clock at zero.
func NewEngine() *Engine { return sim.NewEngine() }

// Grid substrate.
type (
	// Grid is the simulated EGEE-style infrastructure.
	Grid = grid.Grid
	// GridConfig parametrizes the infrastructure model.
	GridConfig = grid.Config
	// JobRecord carries per-phase timestamps of one grid job.
	JobRecord = grid.JobRecord
)

// NewGrid builds a grid on the engine.
func NewGrid(eng *Engine, cfg GridConfig) *Grid { return grid.New(eng, cfg) }

// GridTenant is a named submission handle on a shared grid: jobs submitted
// through it are tagged for per-tenant accounting and scheduled through
// the fair-share gate. Obtain one with Grid.Tenant(name).
type GridTenant = grid.Tenant

// DefaultGridConfig returns the calibrated production-grid model.
func DefaultGridConfig() GridConfig { return grid.DefaultConfig() }

// IdealGridConfig returns a frictionless grid: zero middleware overhead,
// homogeneous nodes, no background load. On it the enactor reproduces the
// theoretical model of Sec. 3.5 exactly.
func IdealGridConfig(nodes int) GridConfig { return grid.IdealConfig(nodes) }

// Workflow model.
type (
	// Workflow is the application graph of processors, ports and links.
	Workflow = workflow.Workflow
	// Processor is one node of the graph.
	Processor = workflow.Processor
	// Strategy is an iteration-strategy tree (dot/cross products).
	Strategy = iterstrat.Strategy
)

// NewWorkflow returns an empty workflow.
func NewWorkflow(name string) *Workflow { return workflow.New(name) }

// Iteration strategies (Sec. 2.2, Fig. 3).
var (
	// Port is a leaf strategy over one input port.
	Port = iterstrat.Port
	// Dot pairs items with identical provenance indices: min(n,m) results.
	Dot = iterstrat.Dot
	// Cross pairs all items of each input: n×m results.
	Cross = iterstrat.Cross
	// ParseStrategy reads the compact notation, e.g. "cross(dot(a,b),c)".
	ParseStrategy = iterstrat.Parse
)

// Services.
type (
	// Service is the black-box application component abstraction.
	Service = services.Service
	// Wrapper is the generic submission wrapper (Sec. 3.6, Fig. 8).
	Wrapper = services.Wrapper
	// Grouped is a virtual service fusing several wrappers into one job.
	Grouped = services.Grouped
	// Local is a single-host service with bounded concurrency.
	Local = services.Local
	// Request is one service invocation's bound inputs.
	Request = services.Request
	// Response is one invocation's outcome.
	Response = services.Response
	// Descriptor is an executable descriptor document.
	Descriptor = descriptor.Description
)

// Service constructors and descriptor parsing.
var (
	NewLocal        = services.NewLocal
	NewWrapper      = services.NewWrapper
	NewGrouped      = services.NewGrouped
	ConstantRuntime = services.ConstantRuntime
	ParseDescriptor = descriptor.Parse
)

// Enactor (the paper's contribution).
type (
	// Enactor executes one workflow with the selected optimizations.
	Enactor = core.Enactor
	// Options selects data/service parallelism and job grouping.
	Options = core.Options
	// Result is the outcome of one execution.
	Result = core.Result
	// Trace is the per-invocation execution record.
	Trace = core.Trace
)

// NewEnactor prepares an execution of wf on eng. With Options.JobGrouping
// the workflow is first rewritten by AutoGroup.
func NewEnactor(eng *Engine, wf *Workflow, opts Options) (*Enactor, error) {
	return core.New(eng, wf, opts)
}

// AutoGroup fuses eligible sequential wrapper chains into single-job
// grouped processors (the JG optimization), returning a new workflow.
var AutoGroup = core.AutoGroup

// Multi-tenant campaigns: M workflows, each with its own enactor and
// options, contending for one shared grid (see internal/campaign).
type (
	// Campaign configures a multi-tenant run: the shared grid model plus
	// one TenantSpec per tenant.
	Campaign = campaign.Config
	// CampaignTenant describes one tenant: name, arrival instant,
	// enactor options, workflow builder, optional adaptive granularity.
	CampaignTenant = campaign.TenantSpec
	// CampaignBuild constructs a tenant's workflow against its grid
	// handle.
	CampaignBuild = campaign.BuildFunc
	// CampaignReport is the campaign outcome: per-tenant results plus
	// global grid statistics.
	CampaignReport = campaign.Report
	// CampaignTenantResult is one tenant's outcome.
	CampaignTenantResult = campaign.TenantResult
	// AdaptiveGranularity opts a tenant into mid-campaign job-granularity
	// retuning driven by OptimalBatch on observed overheads.
	AdaptiveGranularity = campaign.AdaptiveGranularity
)

// Campaign runners and helpers.
var (
	// RunCampaign builds a fresh engine and shared grid and enacts all
	// tenants concurrently on them.
	RunCampaign = campaign.Run
	// RunCampaignOn enacts tenants on an existing engine and grid.
	RunCampaignOn = campaign.RunOn
	// RunCampaignFederated enacts tenants on an existing engine and
	// federation: jobs are brokered across the member grids per policy.
	RunCampaignFederated = campaign.RunFederated
	// SyntheticChain builds the standard campaign workload: a linear
	// pipeline of wrapper-backed stages with tenant-unique file names.
	SyntheticChain = campaign.SyntheticChain
	// SyntheticChainPlaced is SyntheticChain with a skew fraction of the
	// inputs registered as replicas at a home site (locality scenarios).
	SyntheticChainPlaced = campaign.SyntheticChainPlaced
	// RunCampaignAdmitted is RunCampaignOn's site-generic form with
	// admission control: arrivals are gated on the site's UI backlog.
	RunCampaignAdmitted = campaign.RunSiteAdmitted
)

// CampaignAdmission is the arrival-gating policy of an admitted campaign.
type CampaignAdmission = campaign.Admission

// Federated multi-grid brokering: N independently-configured grids behind
// one submission handle, a pluggable broker policy picking the target
// grid per job (see internal/federation).
type (
	// Federation is a set of member grids behind one brokered submission
	// handle, sharing an engine and a replica catalog.
	Federation = federation.Federation
	// FederationConfig assembles a federation: member grid specs, broker
	// policy, cross-grid re-brokering budget, telemetry smoothing.
	FederationConfig = federation.Config
	// FederationGridSpec names and configures one member grid.
	FederationGridSpec = federation.GridSpec
	// FederationTenant is a named submission handle brokered across the
	// member grids; it satisfies Submitter like GridTenant does.
	FederationTenant = federation.Tenant
	// FederationTelemetry is the smoothed per-grid overhead view the
	// ranked policy feeds on.
	FederationTelemetry = federation.Telemetry
	// BrokerPolicy decides which member grid receives each submission.
	BrokerPolicy = federation.Policy
	// FederationOutage schedules a member grid going dark for a window
	// (in-flight jobs fail and re-broker elsewhere; telemetry ages out on
	// recovery). Outages can also be driven with Federation.SetDown and
	// Federation.SetUp.
	FederationOutage = federation.Outage
)

// Federation constructors and broker policies.
var (
	// NewFederation builds a federation of the configured grids on the
	// engine, with a shared replica catalog.
	NewFederation = federation.New
	// FederationRoundRobin cycles member grids per submission.
	FederationRoundRobin = federation.RoundRobin
	// FederationLeastBacklog submits to the lowest-occupancy grid.
	FederationLeastBacklog = federation.LeastBacklog
	// FederationRanked scores grids by observed submission and queueing
	// overhead EWMAs scaled by current backlog, plus the estimated cost
	// of moving the job's data there (the default policy).
	FederationRanked = federation.Ranked
	// FederationRankedBlind is the ranked policy without the transfer-cost
	// term — the control arm of locality experiments.
	FederationRankedBlind = federation.RankedLocalityBlind
	// FederationPinned sends everything to one grid (the single-grid
	// baseline federated scenarios are compared against).
	FederationPinned = federation.Pinned
	// FederationRankedSafe is the ranked policy with storage safety
	// priced in: storage-dark members pay a flat penalty and picks whose
	// stage-in would gamble on a last live replica over a non-local link
	// pay their fragile fetch time.
	FederationRankedSafe = federation.RankedSafe
)

// Data locality: the replica catalog pins files to sites and a link model
// prices moving them (see internal/grid's catalog and link files).
type (
	// DataSite identifies a storage location: a cluster of a named grid.
	DataSite = grid.Site
	// DataLink is one edge of the transfer topology.
	DataLink = grid.Link
	// DataLinkModel prices replica movement between sites.
	DataLinkModel = grid.LinkModel
	// DataLinks is the default three-class link model (intra-cluster ≪
	// intra-grid ≪ WAN).
	DataLinks = grid.Links
	// DataGridPair is one ordered (fromGrid, toGrid) edge of the
	// grid-level transfer topology.
	DataGridPair = grid.GridPair
	// DataLinkMatrix prices replica movement per ordered grid pair,
	// falling back to a class model for unlisted pairs.
	DataLinkMatrix = grid.LinkMatrix
	// DataReplica is one physical copy of a registered file at a site.
	DataReplica = grid.Replica
	// WANFabric is the contended WAN fabric: one capacity-limited shared
	// channel per ordered grid pair, so concurrent cross-grid fetches
	// queue instead of overlapping for free. Attach one to a catalog
	// with Catalog.SetFabric, or let FederationConfig.WANStreams build
	// it.
	WANFabric = grid.Fabric
)

// Link-model and fabric constructors.
var (
	// DefaultWANLinks prices cross-grid fetches at a 2 MB/s, 5 s-latency
	// WAN link (the federation default).
	DefaultWANLinks = grid.DefaultWAN
	// AllLocalLinks treats every replica as local — the location-blind
	// transfer model (PR 3 free cross-grid staging).
	AllLocalLinks = grid.LocalLinks
	// NewWANFabric builds a contended WAN fabric with the given default
	// per-pair stream count on the engine.
	NewWANFabric = grid.NewFabric
)

// Active storage elements: capacity, eviction, SE outages and replica
// repair (see internal/grid's storage file and DESIGN.md).
type (
	// StorageEvictionPolicy totally orders a storage element's resident
	// replicas by eviction preference.
	StorageEvictionPolicy = grid.EvictionPolicy
	// StorageFile is the per-replica residency view an eviction policy
	// ranks: size, last access and stage-in hit count.
	StorageFile = grid.SEFile
	// StorageElementStat is one storage element's telemetry: capacity,
	// residency, peak and eviction totals.
	StorageElementStat = grid.SEStat
)

// Storage eviction policies and failure sentinels.
var (
	// EvictLRU drains the longest-unaccessed replica first.
	EvictLRU = grid.EvictLRU
	// EvictPopularity drains the least-fetched replica first.
	EvictPopularity = grid.EvictPopularity
	// ErrReplicaLost marks a job whose input lost every live replica:
	// terminal, and never re-brokered (the catalog is shared, so the
	// data is equally lost from every member grid).
	ErrReplicaLost = grid.ErrReplicaLost
)

// Data identity.
type (
	// Item is a data token with provenance.
	Item = provenance.Item
	// History is a node of an item's history tree.
	History = provenance.Node
)

// Theoretical model (Sec. 3.5) and analysis metrics (Sec. 5.1).
type (
	// Matrix is the T[i][j] treatment-duration matrix of the model.
	Matrix = model.Matrix
	// Line is a fitted time-versus-size regression.
	Line = metrics.Line
)

// Model formulas (equations 1–4) and metric helpers.
var (
	ModelSequential = model.Sequential
	ModelDP         = model.DP
	ModelSP         = model.SP
	ModelDSP        = model.DSP
	Fit             = metrics.Fit
	SpeedUp         = metrics.SpeedUp
	// OptimalBatch predicts the job-granularity sweet spot (Sec. 5.4
	// future work; see Options.DataGroupSize for the enactor-side knob).
	OptimalBatch = model.OptimalBatch
)

// GranularityParams parametrizes the job-granularity model.
type GranularityParams = model.GranularityParams

// Workflow and data-set documents.
var (
	// ParseScufl reads a Scufl-dialect workflow document.
	ParseScufl = scufl.Parse
	// WriteScufl renders a workflow back to the dialect.
	WriteScufl = scufl.Write
	// ParseDataSet reads an input data-set document (Sec. 4.1).
	ParseDataSet = dataset.Parse
)

// ScuflOptions configures ParseScufl (service registry, target grid).
type ScuflOptions = scufl.Options

// ServiceRegistry binds service names referenced by a Scufl document.
type ServiceRegistry = scufl.Registry

// Scenario compiler: declarative JSON worlds for the federated layer.
type (
	// Scenario is a declarative description of a federated campaign
	// world — grids, links, outages, storage, broker, tenant mix.
	Scenario = scenario.Spec
	// ScenarioWorld is a compiled scenario ready to run.
	ScenarioWorld = scenario.World
)

// Scenario loading, compilation and fingerprinting.
var (
	// LoadScenario reads, parses and validates a scenario file; errors
	// are anchored to source lines.
	LoadScenario = scenario.Load
	// ParseScenario parses and validates scenario bytes.
	ParseScenario = scenario.Parse
	// CompileScenario turns a validated scenario into a runnable world
	// on the given engine.
	CompileScenario = scenario.Compile
	// ScenarioFingerprint condenses a scenario run into one comparable
	// determinism fingerprint.
	ScenarioFingerprint = scenario.Fingerprint
)

// Online broker daemon (cmd/moteurd): serve a compiled scenario world as
// a long-running process — virtual time paced against the wall clock,
// job submissions and outage commands injected over HTTP between engine
// steps, live telemetry on /metrics, periodic JSON state snapshots.
type (
	// Daemon is a running moteurd instance over one compiled world.
	Daemon = daemon.Daemon
	// DaemonConfig assembles a Daemon (world, warp factor, HTTP address,
	// snapshot directory, clock).
	DaemonConfig = daemon.Config
	// DaemonClock abstracts wall-clock time for the daemon's pacing
	// loop; tests substitute fakes.
	DaemonClock = daemon.Clock
	// DaemonSnapshot is the daemon's JSON state-snapshot document.
	DaemonSnapshot = daemon.Snapshot
	// EventInbox is the concurrency-safe injection queue that carries
	// external events onto a deterministic engine between steps.
	EventInbox = sim.Inbox
)

// Daemon construction and the production clock.
var (
	// NewDaemon boots a daemon over a compiled scenario world.
	NewDaemon = daemon.New
	// RealDaemonClock is the production wall clock for
	// DaemonConfig.Clock.
	RealDaemonClock = daemon.RealClock
)
