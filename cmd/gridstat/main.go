// Command gridstat probes the simulated grid: it submits a batch of probe
// jobs and prints the overhead distribution (submission + matchmaking +
// queuing + staging), the quantity the paper reports as "around 10
// minutes, ± 5 minutes" on EGEE. Useful for calibrating grid models.
//
// Usage:
//
//	gridstat [-jobs 100] [-runtime 5m] [-burst] [-seed 1]
//
// With -burst all jobs are submitted at once (the data-parallel pattern);
// without it they are submitted one at a time (the NOP pattern).
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

func main() {
	var (
		jobs    = flag.Int("jobs", 100, "number of probe jobs")
		runtime = flag.Duration("runtime", 5*time.Minute, "probe job compute time")
		burst   = flag.Bool("burst", false, "submit all jobs at once instead of serially")
		seed    = flag.Uint64("seed", 1, "simulation seed")
	)
	flag.Parse()

	eng := sim.NewEngine()
	cfg := grid.DefaultConfig()
	cfg.Seed = *seed
	g := grid.New(eng, cfg)

	done := 0
	var submit func(i int)
	submit = func(i int) {
		if i >= *jobs {
			return
		}
		g.Submit(grid.JobSpec{Name: fmt.Sprintf("probe%d", i), Runtime: *runtime},
			func(*grid.JobRecord) {
				done++
				if !*burst {
					submit(i + 1)
				}
			})
		if *burst {
			submit(i + 1)
		}
	}
	submit(0)
	for done < *jobs && eng.Step() {
	}

	mode := "serial"
	if *burst {
		mode = "burst"
	}
	fmt.Printf("grid: %d nodes across %d clusters, %s submission of %d probe jobs (%v compute)\n",
		g.TotalNodes(), len(cfg.Clusters), mode, *jobs, *runtime)
	fmt.Println(g.Overheads())
	fmt.Println(g.Phases())
	fmt.Printf("virtual makespan: %v\n", time.Duration(eng.Now()).Round(time.Second))
}
