// Command campaign runs a multi-tenant enactment campaign on the default
// production-grid model and reports per-tenant makespans, overheads and
// fairness. Each tenant enacts a synthetic linear pipeline; the
// optimization mix cycles across tenants so heterogeneous contention
// scenarios (SP-only vs DP+JG vs batched vs adaptive) come out of one
// command line.
//
// With -scenario the whole world comes from a declarative spec file
// (internal/scenario) instead: the campaign runs on the scenario's
// federation with its tenant mix, and the workload flags become
// overrides of the spec.
//
// Examples:
//
//	campaign -tenants 8 -services 4 -items 20
//	campaign -tenants 8 -fifo          # tenancy-unaware FIFO, for comparison
//	campaign -tenants 4 -adapt 10m     # adaptive granularity feedback loop
//	campaign -scenario scenarios/population-burst.json
//	campaign -scenario scenarios/clean-baseline.json -items 40
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// mixes is the optimization rotation across tenants.
var mixes = []struct {
	name string
	opts core.Options
}{
	{"SP+DP", core.Options{ServiceParallelism: true, DataParallelism: true}},
	{"SP+DP+JG", core.Options{ServiceParallelism: true, DataParallelism: true, JobGrouping: true}},
	{"DP", core.Options{DataParallelism: true}},
	{"SP+DP+batch4", core.Options{ServiceParallelism: true, DataParallelism: true,
		DataGroupSize: 4, DataGroupWindow: time.Minute}},
}

func main() {
	var (
		tenants      = flag.Int("tenants", 8, "number of concurrent tenants")
		servs        = flag.Int("services", 4, "pipeline stages per tenant workflow")
		items        = flag.Int("items", 20, "input data items per tenant")
		runtime      = flag.Duration("runtime", 2*time.Minute, "per-stage compute time")
		fileMB       = flag.Float64("filemb", 5, "input/intermediate file size (MB)")
		spread       = flag.Duration("spread", time.Minute, "arrival stagger between tenants")
		seed         = flag.Uint64("seed", 1, "grid random seed")
		fifo         = flag.Bool("fifo", false, "strict FIFO at the UI instead of the fair-share gate")
		adapt        = flag.Duration("adapt", 0, "adaptive-granularity retuning period (0 disables)")
		horizon      = flag.Duration("horizon", 14*24*time.Hour, "background-load horizon")
		scenarioPath = flag.String("scenario", "", "run a declarative scenario file; workload flags become overrides of the spec")
		showAdpt     = flag.Bool("v", false, "print every adaptation decision")
	)
	flag.Parse()

	if *scenarioPath != "" {
		set := make(map[string]bool)
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"fifo", "adapt", "horizon"} {
			if set[name] {
				fmt.Fprintf(os.Stderr, "campaign: -%s cannot override a scenario; edit the spec instead\n", name)
				os.Exit(2)
			}
		}
		ov := scenario.Overrides{}
		if set["seed"] {
			ov.Seed = seed
		}
		if set["tenants"] {
			ov.Tenants = tenants
		}
		if set["services"] {
			ov.Stages = servs
		}
		if set["items"] {
			ov.Items = items
		}
		if set["runtime"] {
			ov.Runtime = runtime
		}
		if set["filemb"] {
			ov.FileMB = fileMB
		}
		if set["spread"] {
			ov.Spread = spread
		}
		runScenario(*scenarioPath, ov, *showAdpt)
		return
	}

	gc := grid.DefaultConfig()
	gc.Seed = *seed
	gc.StrictFIFOSubmit = *fifo
	gc.BackgroundHorizon = *horizon

	cfg := campaign.Config{Grid: gc}
	for i := 0; i < *tenants; i++ {
		mix := mixes[i%len(mixes)]
		ts := campaign.TenantSpec{
			Name:    fmt.Sprintf("t%02d-%s", i, mix.name),
			Arrival: time.Duration(i) * *spread,
			Opts:    mix.opts,
			Build:   campaign.SyntheticChain(*servs, *items, *runtime, *fileMB),
		}
		if *adapt > 0 {
			ts.Adapt = &campaign.AdaptiveGranularity{Interval: *adapt, MaxBatch: *items}
		}
		cfg.Tenants = append(cfg.Tenants, ts)
	}

	gate := "fair-share"
	if *fifo {
		gate = "strict FIFO"
	}
	fmt.Printf("campaign: %d tenants × %d-stage chains × %d items on the default grid (%s gate, seed %d)\n\n",
		*tenants, *servs, *items, gate, *seed)

	rep, err := campaign.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
	printReport(rep, *showAdpt)
}

// runScenario compiles and runs one spec file with CLI overrides applied,
// then prints the standard per-tenant table.
func runScenario(path string, ov scenario.Overrides, showAdpt bool) {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(2)
	}
	if err := ov.Apply(spec); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(2)
	}
	eng := sim.NewEngine()
	w, err := scenario.Compile(eng, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
	fmt.Printf("campaign: scenario %s — %d tenants over %d grids (seed %d)\n\n",
		spec.Name, spec.TenantCount(), len(spec.GridNames()), spec.Seed)
	rep, err := w.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
	printReport(rep, showAdpt)
}

// printReport prints the per-tenant makespan/overhead table and the
// campaign totals.
func printReport(rep *campaign.Report, showAdpt bool) {
	fmt.Printf("%-16s %10s %12s %6s %12s %12s %10s\n",
		"tenant", "arrival", "makespan", "jobs", "ovh mean", "ovh p90", "resubmits")
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			fmt.Printf("%-16s %10s %12s  FAILED: %v\n", tr.Name, tr.Arrival, "-", tr.Err)
			continue
		}
		fmt.Printf("%-16s %10v %12v %6d %12v %12v %10d\n",
			tr.Name, tr.Arrival, tr.Makespan.Round(time.Second),
			tr.Overheads.Jobs+tr.Overheads.Failed,
			tr.Overheads.Mean.Round(time.Second), tr.Overheads.P90.Round(time.Second),
			tr.Overheads.Resubmits)
		if showAdpt {
			for _, a := range tr.Adaptations {
				fmt.Printf("    adapt @%v: batch=%d predicted=%v observed-overhead=%v\n",
					a.At.Round(time.Second), a.Batch,
					a.Predicted.Round(time.Second), a.Overhead.Round(time.Second))
			}
		}
	}
	fmt.Printf("\ncampaign span %v\n", rep.Makespan.Round(time.Second))
	fmt.Printf("global: %s\n", rep.Global)
	fmt.Printf("phases: %s\n", rep.GlobalPhases)
}
