// Command campaign runs a multi-tenant enactment campaign on the default
// production-grid model and reports per-tenant makespans, overheads and
// fairness. Each tenant enacts a synthetic linear pipeline; the
// optimization mix cycles across tenants so heterogeneous contention
// scenarios (SP-only vs DP+JG vs batched vs adaptive) come out of one
// command line.
//
// Examples:
//
//	campaign -tenants 8 -services 4 -items 20
//	campaign -tenants 8 -fifo          # tenancy-unaware FIFO, for comparison
//	campaign -tenants 4 -adapt 10m     # adaptive granularity feedback loop
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/grid"
)

// mixes is the optimization rotation across tenants.
var mixes = []struct {
	name string
	opts core.Options
}{
	{"SP+DP", core.Options{ServiceParallelism: true, DataParallelism: true}},
	{"SP+DP+JG", core.Options{ServiceParallelism: true, DataParallelism: true, JobGrouping: true}},
	{"DP", core.Options{DataParallelism: true}},
	{"SP+DP+batch4", core.Options{ServiceParallelism: true, DataParallelism: true,
		DataGroupSize: 4, DataGroupWindow: time.Minute}},
}

func main() {
	var (
		tenants  = flag.Int("tenants", 8, "number of concurrent tenants")
		servs    = flag.Int("services", 4, "pipeline stages per tenant workflow")
		items    = flag.Int("items", 20, "input data items per tenant")
		runtime  = flag.Duration("runtime", 2*time.Minute, "per-stage compute time")
		fileMB   = flag.Float64("filemb", 5, "input/intermediate file size (MB)")
		spread   = flag.Duration("spread", time.Minute, "arrival stagger between tenants")
		seed     = flag.Uint64("seed", 1, "grid random seed")
		fifo     = flag.Bool("fifo", false, "strict FIFO at the UI instead of the fair-share gate")
		adapt    = flag.Duration("adapt", 0, "adaptive-granularity retuning period (0 disables)")
		horizon  = flag.Duration("horizon", 14*24*time.Hour, "background-load horizon")
		showAdpt = flag.Bool("v", false, "print every adaptation decision")
	)
	flag.Parse()

	gc := grid.DefaultConfig()
	gc.Seed = *seed
	gc.StrictFIFOSubmit = *fifo
	gc.BackgroundHorizon = *horizon

	cfg := campaign.Config{Grid: gc}
	for i := 0; i < *tenants; i++ {
		mix := mixes[i%len(mixes)]
		ts := campaign.TenantSpec{
			Name:    fmt.Sprintf("t%02d-%s", i, mix.name),
			Arrival: time.Duration(i) * *spread,
			Opts:    mix.opts,
			Build:   campaign.SyntheticChain(*servs, *items, *runtime, *fileMB),
		}
		if *adapt > 0 {
			ts.Adapt = &campaign.AdaptiveGranularity{Interval: *adapt, MaxBatch: *items}
		}
		cfg.Tenants = append(cfg.Tenants, ts)
	}

	gate := "fair-share"
	if *fifo {
		gate = "strict FIFO"
	}
	fmt.Printf("campaign: %d tenants × %d-stage chains × %d items on the default grid (%s gate, seed %d)\n\n",
		*tenants, *servs, *items, gate, *seed)

	rep, err := campaign.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}

	fmt.Printf("%-16s %10s %12s %6s %12s %12s %10s\n",
		"tenant", "arrival", "makespan", "jobs", "ovh mean", "ovh p90", "resubmits")
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			fmt.Printf("%-16s %10s %12s  FAILED: %v\n", tr.Name, tr.Arrival, "-", tr.Err)
			continue
		}
		fmt.Printf("%-16s %10v %12v %6d %12v %12v %10d\n",
			tr.Name, tr.Arrival, tr.Makespan.Round(time.Second),
			tr.Overheads.Jobs+tr.Overheads.Failed,
			tr.Overheads.Mean.Round(time.Second), tr.Overheads.P90.Round(time.Second),
			tr.Overheads.Resubmits)
		if *showAdpt {
			for _, a := range tr.Adaptations {
				fmt.Printf("    adapt @%v: batch=%d predicted=%v observed-overhead=%v\n",
					a.At.Round(time.Second), a.Batch,
					a.Predicted.Round(time.Second), a.Overhead.Round(time.Second))
			}
		}
	}
	fmt.Printf("\ncampaign span %v\n", rep.Makespan.Round(time.Second))
	fmt.Printf("global: %s\n", rep.Global)
	fmt.Printf("phases: %s\n", rep.GlobalPhases)
}
