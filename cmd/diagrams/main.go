// Command diagrams regenerates the paper's execution diagrams (Figures 4,
// 5 and 6) by actually running the Fig. 1 three-service workflow through
// the enactor on an ideal substrate and rendering the trace.
//
// Usage:
//
//	diagrams [-fig 4|5|6|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/diagram"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// T is the diagram time quantum: every cell is one T.
const T = 10 * time.Second

// buildChain assembles the Fig. 1 workflow P1 → P2 → P3 with per-item
// durations dur[i][j] (stage i, item j).
func buildChain(eng *sim.Engine, dur [3][3]time.Duration) *workflow.Workflow {
	w := workflow.New("fig1")
	w.AddSource("src")
	for i := 0; i < 3; i++ {
		i := i
		name := fmt.Sprintf("P%d", i+1)
		model := func(req services.Request) time.Duration { return dur[i][req.Index[0]] }
		echo := func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["in"]}
		}
		w.AddService(name, services.NewLocal(eng, name, 1<<20, model, echo),
			[]string{"in"}, []string{"out"})
	}
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P1", "in")
	w.Connect("P1", "out", "P2", "in")
	w.Connect("P2", "out", "P3", "in")
	w.Connect("P3", "out", "sink", workflow.SinkPort)
	return w
}

func run(dur [3][3]time.Duration, opts core.Options) string {
	eng := sim.NewEngine()
	w := buildChain(eng, dur)
	e, err := core.New(eng, w, opts)
	if err != nil {
		fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"0", "1", "2"}})
	if err != nil {
		fatal(err)
	}
	return diagram.Render(res.Trace, []string{"P1", "P2", "P3"}, T)
}

func constant() [3][3]time.Duration {
	var d [3][3]time.Duration
	for i := range d {
		for j := range d[i] {
			d[i][j] = T
		}
	}
	return d
}

func main() {
	fig := flag.String("fig", "all", "figure to print: 4, 5, 6 or all")
	flag.Parse()

	if *fig == "4" || *fig == "all" {
		fmt.Println("Figure 4 — data-parallel execution diagram (DP on, SP off):")
		fmt.Println(run(constant(), core.Options{DataParallelism: true}))
	}
	if *fig == "5" || *fig == "all" {
		fmt.Println("Figure 5 — service-parallel execution diagram (SP on, DP off):")
		fmt.Println(run(constant(), core.Options{ServiceParallelism: true}))
	}
	if *fig == "6" || *fig == "all" {
		// D0 takes 2T on P1 (an error forced a resubmission); D1 takes 3T
		// on P2 (blocked in a waiting queue).
		varied := constant()
		varied[0][0] = 2 * T
		varied[1][1] = 3 * T
		fmt.Println("Figure 6 (left) — variable times, DP only:")
		fmt.Println(run(varied, core.Options{DataParallelism: true}))
		fmt.Println("Figure 6 (right) — variable times, DP + SP (overlap shortens the diagram):")
		fmt.Println(run(varied, core.Options{DataParallelism: true, ServiceParallelism: true}))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "diagrams:", err)
	os.Exit(1)
}
