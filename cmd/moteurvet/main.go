// Command moteurvet runs the repo's determinism-lint suite: maprange
// (no ranging over maps in simulation-critical packages), simtime (no
// wall-clock time or math/rand there either), and exporteddoc (the
// exported surface of the root and internal/ packages is documented).
//
// It is both a standalone checker and a go vet tool:
//
//	moteurvet ./...                        # standalone, loads via go list
//	go vet -vettool=$(pwd)/bin/moteurvet ./...   # build-integrated, cached
//
// In vettool mode it speaks cmd/go's vet protocol: -V=full identifies
// the binary for build caching (the version string embeds a hash of the
// executable, so rebuilding the tool invalidates stale vet results),
// -flags describes the tool's flags (none), and a trailing *.cfg
// argument names a compilation-unit config to check.
package main

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/exporteddoc"
	"repro/internal/analysis/golist"
	"repro/internal/analysis/maprange"
	"repro/internal/analysis/simtime"
	"repro/internal/analysis/unitchecker"
)

// suite is the full determinism-lint suite, in diagnostic-prefix order.
var suite = []*analysis.Analyzer{
	exporteddoc.Analyzer,
	maprange.Analyzer,
	simtime.Analyzer,
}

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		fmt.Printf("moteurvet version %s\n", selfID())
		return
	case len(args) == 1 && args[0] == "-flags":
		fmt.Println("[]")
		return
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		os.Exit(unitchecker.Run(args[0], suite))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	findings, err := golist.Check(args, suite)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moteurvet: %v\n", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "moteurvet: %d finding(s)\n", len(findings))
		os.Exit(2)
	}
}

// selfID returns a content hash of the running executable, so cmd/go's
// vet result cache is keyed to the exact tool build; it must not be the
// literal "devel", which cmd/go treats specially.
func selfID() string {
	exe, err := os.Executable()
	if err != nil {
		return "v0-unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "v0-unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "v0-unknown"
	}
	return fmt.Sprintf("v0-%x", h.Sum(nil)[:8])
}
