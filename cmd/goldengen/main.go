// Command goldengen prints golden determinism fingerprints for the Table 1
// configurations: per (config, size), the simulated makespan in nanoseconds
// and an FNV-1a hash over the full invocation trace and sink outputs. Used
// to pin enactor behaviour across refactors.
package main

import (
	"fmt"
	"hash/fnv"

	"repro/internal/bronze"
)

func main() {
	for _, cfg := range bronze.Configurations() {
		for _, size := range bronze.PaperSizes {
			p := bronze.DefaultParams()
			p.Seed = 1 + uint64(size)
			res, _, err := bronze.Run(size, cfg.Opts, p)
			if err != nil {
				panic(err)
			}
			h := fnv.New64a()
			for _, inv := range res.Trace.Invocations {
				fmt.Fprintf(h, "%s|%s|%d|%d|%d;", inv.Processor, inv.Key(),
					inv.Ready, inv.Started, inv.Finished)
			}
			for _, sink := range []string{"accuracy_translation", "accuracy_rotation"} {
				for _, v := range res.Outputs[sink] {
					fmt.Fprintf(h, "%s;", v)
				}
			}
			fmt.Printf("{%q, %d, %d, %#x},\n", cfg.Name, size, res.Makespan, h.Sum64())
		}
	}
}
