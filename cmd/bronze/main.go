// Command bronze regenerates the paper's evaluation: Table 1 (execution
// times per optimization configuration), Table 2 (y-intercept and slope of
// the time-versus-size regressions), Figure 10 (execution time curves),
// and the speed-up / ratio analyses of Sec. 5.2–5.3, on the simulated
// EGEE-style grid.
//
// Usage:
//
//	bronze [-table1] [-table2] [-fig10] [-ratios] [-sizes 12,66,126] [-seed 1]
//
// Without selection flags, everything is printed.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bronze"
)

func main() {
	var (
		table1 = flag.Bool("table1", false, "print Table 1 (execution times)")
		table2 = flag.Bool("table2", false, "print Table 2 (regressions)")
		fig10  = flag.Bool("fig10", false, "print Figure 10 series (hours vs size)")
		ratios = flag.Bool("ratios", false, "print the Sec. 5.2-5.3 speed-ups and ratios")
		sizes  = flag.String("sizes", "12,66,126", "comma-separated input sizes (image pairs)")
		seed   = flag.Uint64("seed", 1, "experiment seed")
	)
	flag.Parse()
	all := !*table1 && !*table2 && !*fig10 && !*ratios

	sz, err := parseSizes(*sizes)
	if err != nil {
		fatal(err)
	}
	p := bronze.DefaultParams()
	p.Seed = *seed

	fmt.Printf("Bronze Standard on the simulated grid: sizes %v, seed %d, median of %d runs per cell\n\n",
		sz, *seed, bronze.Repeats)
	rows, err := bronze.Table1(sz, p)
	if err != nil {
		fatal(err)
	}
	if all || *table1 {
		fmt.Println("== Table 1: execution time per configuration ==")
		fmt.Println(bronze.FormatTable1(rows))
	}
	if all || *table2 {
		regs, err := bronze.Table2(rows)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Table 2: linear regressions ==")
		fmt.Println(bronze.FormatTable2(regs))
	}
	if all || *fig10 {
		fmt.Println("== Figure 10: execution time (hours) vs input size ==")
		fmt.Println(bronze.FormatFigure10(rows))
	}
	if all || *ratios {
		r, err := bronze.ComputeRatios(rows)
		if err != nil {
			fatal(err)
		}
		fmt.Println("== Sec. 5.2-5.3 analysis ==")
		fmt.Printf("speed-up DP vs NOP:            %s   (paper: 1.86 / 2.89 / 3.92)\n", fmtF(r.DPvsNOP))
		fmt.Printf("speed-up SP+DP vs DP:          %s   (paper: 2.26 / 2.17 / 1.90)\n", fmtF(r.SPDPvsDP))
		fmt.Printf("speed-up JG vs NOP:            %s   (paper: 1.43 / 1.12 / 1.06)\n", fmtF(r.JGvsNOP))
		fmt.Printf("speed-up SP+DP+JG vs SP+DP:    %s   (paper: 1.42 / 1.34 / 1.23)\n", fmtF(r.FullvsSPDP))
		fmt.Printf("speed-up SP+DP+JG vs NOP:      %s   (paper headline: ~9 at 126 pairs)\n", fmtF(r.FullvsNOP))
		fmt.Println()
		fmt.Printf("DP vs NOP:       slope ratio %.2f (paper 6.18), y-intercept ratio %.2f (paper 1.27)\n",
			r.DPvsNOPSlope, r.DPvsNOPIntercept)
		fmt.Printf("SP+DP vs DP:     y-intercept ratio %.2f (paper 2.46), slope ratio %.2f (paper 1.62)\n",
			r.SPDPvsDPIntercept, r.SPDPvsDPSlope)
		fmt.Printf("JG vs NOP:       y-intercept ratio %.2f (paper 1.87), slope ratio %.2f (paper 0.98)\n",
			r.JGvsNOPIntercept, r.JGvsNOPSlope)
		fmt.Printf("SP+DP+JG vs SP+DP: y-intercept ratio %.2f (paper 1.54), slope ratio %.2f (paper 1.11)\n",
			r.FullvsSPDPIntercept, r.FullvsSPDPSlope)
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad size %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fmtF(vals []float64) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = fmt.Sprintf("%.2f", v)
	}
	return strings.Join(parts, " / ")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bronze:", err)
	os.Exit(1)
}
