// Command moteur enacts a Scufl-dialect workflow over an XML input data
// set on the simulated grid, with the paper's optimizations selectable
// from the command line.
//
// Usage:
//
//	moteur -workflow wf.xml -data inputs.xml [-dp] [-sp] [-jg]
//	       [-grid default|ideal] [-seed 1] [-diagram] [-quantum 30s]
//
// Workflows executed by this command bind their processors through
// embedded wrapper descriptors (see internal/scufl); input values that
// look like GFNs are pre-registered in the replica catalog with the size
// given by -inputmb.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/diagram"
	"repro/internal/grid"
	"repro/internal/scufl"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func main() {
	var (
		wfPath   = flag.String("workflow", "", "Scufl workflow document (required)")
		dataPath = flag.String("data", "", "input data set document (required)")
		dp       = flag.Bool("dp", false, "enable data parallelism")
		sp       = flag.Bool("sp", false, "enable service parallelism")
		jg       = flag.Bool("jg", false, "enable job grouping")
		gridKind = flag.String("grid", "default", "grid model: default or ideal")
		seed     = flag.Uint64("seed", 1, "simulation seed")
		drawDiag = flag.Bool("diagram", false, "print the execution diagram (Figs. 4-6 style)")
		quantum  = flag.Duration("quantum", 30*time.Second, "diagram column width")
		inputMB  = flag.Float64("inputmb", 7.8, "size of GFN input files to pre-register")
	)
	flag.Parse()
	if *wfPath == "" || *dataPath == "" {
		flag.Usage()
		os.Exit(2)
	}

	wfData, err := os.ReadFile(*wfPath)
	if err != nil {
		fatal(err)
	}
	dsData, err := os.ReadFile(*dataPath)
	if err != nil {
		fatal(err)
	}
	ds, err := dataset.Parse(dsData)
	if err != nil {
		fatal(err)
	}

	eng := sim.NewEngine()
	var cfg grid.Config
	switch *gridKind {
	case "default":
		cfg = grid.DefaultConfig()
		cfg.Seed = *seed
	case "ideal":
		cfg = grid.IdealConfig(1024)
	default:
		fatal(fmt.Errorf("unknown grid model %q", *gridKind))
	}
	g := grid.New(eng, cfg)

	wf, err := scufl.Parse(wfData, scufl.Options{Grid: g, Seed: *seed})
	if err != nil {
		fatal(err)
	}

	inputs := ds.Map()
	for _, vals := range inputs {
		for _, v := range vals {
			if strings.HasPrefix(v, "gfn://") {
				g.Catalog().Register(v, *inputMB)
			}
		}
	}

	opts := core.Options{DataParallelism: *dp, ServiceParallelism: *sp, JobGrouping: *jg}
	enactor, err := core.New(eng, wf, opts)
	if err != nil {
		fatal(err)
	}
	res, err := enactor.Run(inputs)
	if err != nil {
		fatal(err)
	}

	fmt.Print(res.Summary())
	fmt.Printf("grid: %s\n", g.Overheads())
	for sink, vals := range res.Outputs {
		fmt.Printf("sink %s:\n", sink)
		for _, v := range vals {
			fmt.Printf("  %s\n", v)
		}
	}
	if *drawDiag {
		var procs []string
		for _, p := range enactor.Workflow().Processors() {
			if p.Kind == workflow.KindService {
				procs = append(procs, p.Name)
			}
		}
		fmt.Println()
		fmt.Print(diagram.Render(res.Trace, procs, *quantum))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "moteur:", err)
	os.Exit(1)
}
