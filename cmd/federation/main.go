// Command federation sweeps broker policies over a multi-grid federated
// campaign: the same multi-tenant load is enacted once per policy on a
// fresh, identically-seeded federation of heterogeneous grids, so the
// per-policy makespan distributions and per-grid dispatch tables are
// directly comparable. The member grids are derived from the default
// production-grid model with skewed capacity and UI latency
// (federation.HeterogeneousSpecs), which is the regime where brokering
// matters: a policy blind to middleware quality parks load behind slow
// serialized UIs.
//
// Examples:
//
//	federation                                  # sweep all policies, 4 grids × 16 tenants
//	federation -grids 2 -tenants 8 -policies ranked,backlog
//	federation -policies ranked,pinned:3 -v     # acceptance comparison + per-grid tables
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
)

// mixes is the optimization rotation across tenants, as in cmd/campaign.
var mixes = []core.Options{
	{ServiceParallelism: true, DataParallelism: true},
	{ServiceParallelism: true, DataParallelism: true, JobGrouping: true},
	{DataParallelism: true},
	{ServiceParallelism: true, DataParallelism: true, DataGroupSize: 4, DataGroupWindow: time.Minute},
}

func main() {
	var (
		grids    = flag.Int("grids", 4, "number of member grids in the federation")
		tenants  = flag.Int("tenants", 16, "number of concurrent tenants")
		servs    = flag.Int("services", 4, "pipeline stages per tenant workflow")
		items    = flag.Int("items", 20, "input data items per tenant")
		runtime  = flag.Duration("runtime", 2*time.Minute, "per-stage compute time")
		fileMB   = flag.Float64("filemb", 5, "input/intermediate file size (MB)")
		spread   = flag.Duration("spread", time.Minute, "arrival stagger between tenants")
		seed     = flag.Uint64("seed", 1, "base random seed (grid i uses seed+i)")
		rebroker = flag.Int("rebroker", 1, "cross-grid resubmissions after terminal failure")
		policies = flag.String("policies", "ranked,backlog,rr,pinned:0", "comma-separated policies to sweep (ranked|backlog|rr|pinned:N)")
		verbose  = flag.Bool("v", false, "print the per-grid dispatch and telemetry table per policy")
	)
	flag.Parse()

	var sweep []federation.Policy
	for _, name := range strings.Split(*policies, ",") {
		p, err := parsePolicy(strings.TrimSpace(name), *grids)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(2)
		}
		sweep = append(sweep, p)
	}

	specs := make([]campaign.TenantSpec, *tenants)
	for i := range specs {
		specs[i] = campaign.TenantSpec{
			Name:    fmt.Sprintf("t%02d", i),
			Arrival: time.Duration(i) * *spread,
			Opts:    mixes[i%len(mixes)],
			Build:   campaign.SyntheticChain(*servs, *items, *runtime, *fileMB),
		}
	}

	fmt.Printf("federation sweep: %d tenants × %d-stage chains × %d items over %d heterogeneous grids (seed %d, rebroker %d)\n\n",
		*tenants, *servs, *items, *grids, *seed, *rebroker)
	fmt.Printf("%-16s %12s %12s %12s %6s %6s %10s %6s\n",
		"policy", "span", "p50", "p95", "jobs", "failed", "resubmits", "grids")

	for _, policy := range sweep {
		eng := sim.NewEngine()
		fed, err := federation.New(eng, federation.Config{
			Grids:    federation.HeterogeneousSpecs(*grids, *seed),
			Policy:   policy,
			Rebroker: *rebroker,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(1)
		}
		rep, err := campaign.RunFederated(eng, fed, specs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(1)
		}
		ms := make([]time.Duration, 0, len(rep.Tenants))
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				fmt.Fprintf(os.Stderr, "federation: %s: tenant %s: %v\n", policy.Name(), tr.Name, tr.Err)
				continue
			}
			ms = append(ms, tr.Makespan)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		used := 0
		for i := 0; i < fed.Size(); i++ {
			if fed.Telemetry(i).Dispatched > 0 {
				used++
			}
		}
		fmt.Printf("%-16s %12v %12v %12v %6d %6d %10d %3d/%d\n",
			policy.Name(), rep.Makespan.Round(time.Second),
			pct(ms, 50).Round(time.Second), pct(ms, 95).Round(time.Second),
			rep.Global.Jobs, rep.Global.Failed, rep.Global.Resubmits, used, fed.Size())
		if *verbose {
			for i := 0; i < fed.Size(); i++ {
				tl := fed.Telemetry(i)
				fmt.Printf("    %-8s dispatched=%-5d observed=%-5d rebrokered=%-3d submitEWMA=%-8v queueEWMA=%v\n",
					fed.GridName(i), tl.Dispatched, tl.Observed, tl.Rebrokered,
					tl.SubmitEWMA.Round(time.Second), tl.QueueEWMA.Round(time.Second))
			}
		}
	}
}

// pct returns the upper nearest-rank percentile of sorted durations.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)*p/100]
}

// parsePolicy resolves a CLI policy name, rejecting a pinned index
// outside the federation (Pinned would clamp it to grid 0 and the table
// row would silently describe a different experiment).
func parsePolicy(name string, grids int) (federation.Policy, error) {
	switch {
	case name == "ranked":
		return federation.Ranked(), nil
	case name == "backlog":
		return federation.LeastBacklog(), nil
	case name == "rr":
		return federation.RoundRobin(), nil
	case strings.HasPrefix(name, "pinned:"):
		idx, err := strconv.Atoi(strings.TrimPrefix(name, "pinned:"))
		if err != nil {
			return nil, fmt.Errorf("bad pinned index in %q", name)
		}
		if idx < 0 || idx >= grids {
			return nil, fmt.Errorf("pinned index %d outside the %d-grid federation", idx, grids)
		}
		return federation.Pinned(idx), nil
	}
	return nil, fmt.Errorf("unknown policy %q (want ranked|backlog|rr|pinned:N)", name)
}
