// Command federation sweeps broker policies over a multi-grid federated
// campaign: the same multi-tenant load is enacted once per policy on a
// fresh, identically-seeded federation of heterogeneous grids, so the
// per-policy makespan distributions and per-grid dispatch tables are
// directly comparable. The member grids are derived from the default
// production-grid model with skewed capacity and UI latency
// (federation.HeterogeneousSpecs), which is the regime where brokering
// matters: a policy blind to middleware quality parks load behind slow
// serialized UIs.
//
// Data locality is first-class: a -skew fraction of each tenant's inputs
// is placed on its home grid (homes rotate across members), cross-grid
// fetches pay the -wan/-wanlat link (or a per-pair -pairs matrix), and
// the wan_mb column reports the bytes each policy actually moved. The
// WAN can be made a contended fabric with -wanstreams: each ordered grid
// pair becomes a capacity-limited shared channel, concurrent fetches
// queue, and the wan_wait column reports the induced queueing. A member
// grid can be taken dark mid-campaign with -outage: its in-flight jobs
// fail and re-broker elsewhere, and no work is routed to it during the
// window. The -locality mode sweeps replica skew × WAN bandwidth over
// the locality-aware ranked policy, its locality-blind control and
// least-backlog, mapping out when data-aware brokering pays.
//
// Storage elements are active too: -se-cap gives every element a finite
// capacity with -se-policy eviction (lru or popularity), -minreplicas
// arms the k-replication repair floor, and -se-outage takes one member's
// storage (not its compute) dark for a window, so fetches sourced from
// it fail and re-stage from surviving replicas. The evicted_mb, lost and
// restage columns report the resulting churn: bytes drained under
// capacity pressure, jobs whose entire replica set died (ErrReplicaLost)
// and backed-off re-staging rounds.
//
// Whole worlds can come from declarative spec files instead of flags:
// -scenario path.json compiles and runs one scenario (internal/scenario),
// with the workload and storage flags acting as overrides of the spec,
// and -scenarios 'glob' runs a whole library and prints one results row
// per scenario — the `make scenarios` sweep.
//
// Examples:
//
//	federation                                  # sweep all policies, 4 grids × 16 tenants
//	federation -grids 2 -tenants 8 -policies ranked,backlog
//	federation -policies ranked,ranked-blind -skew 1 -wan 0.5 -wanstreams 1
//	federation -policies ranked,rr -outage grid01@2h+90m -rebroker 2
//	federation -pairs 'grid00>grid01=1:10s,grid01>grid00=8:1s' -skew 1
//	federation -locality -skews 0,0.5,1 -wans 0.5,2,8
//	federation -se-cap 400 -se-policy popularity -minreplicas 2 -skew 1
//	federation -policies ranked,ranked-safe -se-outage grid01@1h+2h -minreplicas 2
//	federation -scenario scenarios/contended-wan.json -v
//	federation -scenario scenarios/clean-baseline.json -items 40 -seed 7
//	federation -scenarios 'scenarios/*.json'    # the library results table
//	federation -policies ranked,pinned:3 -v     # acceptance comparison + per-grid tables
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// mixes is the optimization rotation across tenants, as in cmd/campaign.
var mixes = []core.Options{
	{ServiceParallelism: true, DataParallelism: true},
	{ServiceParallelism: true, DataParallelism: true, JobGrouping: true},
	{DataParallelism: true},
	{ServiceParallelism: true, DataParallelism: true, DataGroupSize: 4, DataGroupWindow: time.Minute},
}

// sweep carries the scenario knobs shared by every run of one
// invocation: infrastructure shape, workload shape, link topology,
// contention and outage schedule.
type sweep struct {
	grids, tenants, servs, items int
	runtime                      time.Duration
	fileMB                       float64
	spread                       time.Duration
	seed                         uint64
	rebroker                     int
	skew                         float64
	links                        grid.LinkModel
	wanStreams                   int
	outages                      []federation.Outage
	seCap                        float64
	sePolicy                     grid.EvictionPolicy
	minReplicas                  int
}

func main() {
	var (
		grids        = flag.Int("grids", 4, "number of member grids in the federation")
		tenants      = flag.Int("tenants", 16, "number of concurrent tenants")
		servs        = flag.Int("services", 4, "pipeline stages per tenant workflow")
		items        = flag.Int("items", 20, "input data items per tenant")
		runtime      = flag.Duration("runtime", 2*time.Minute, "per-stage compute time")
		fileMB       = flag.Float64("filemb", 5, "input/intermediate file size (MB)")
		spread       = flag.Duration("spread", time.Minute, "arrival stagger between tenants")
		seed         = flag.Uint64("seed", 1, "base random seed (grid i uses seed+i)")
		rebroker     = flag.Int("rebroker", 1, "cross-grid resubmissions after terminal failure")
		policies     = flag.String("policies", "ranked,backlog,rr,pinned:0", "comma-separated policies to sweep (ranked|ranked-blind|ranked-safe|backlog|rr|pinned:N)")
		skew         = flag.Float64("skew", 0, "fraction of each tenant's inputs placed on its home grid (homes rotate across members)")
		wan          = flag.Float64("wan", 2, "WAN bandwidth between member grids (MB/s; 0 keeps cross-grid staging free)")
		wanLat       = flag.Duration("wanlat", 5*time.Second, "per-file WAN fetch setup latency")
		wanStreams   = flag.Int("wanstreams", 0, "concurrent cross-grid fetches per ordered (from,to) grid pair (0 keeps the uncontended pure-delay WAN)")
		outage       = flag.String("outage", "", "member-grid outage window, format name@start+duration (e.g. grid01@2h+90m; omit +duration for no recovery)")
		seOutage     = flag.String("se-outage", "", "storage-only outage window (same format as -outage): the grid's storage elements go dark, its compute stays up")
		seCap        = flag.Float64("se-cap", 0, "storage-element capacity per site (MB; 0 keeps elements unlimited)")
		sePolicy     = flag.String("se-policy", "lru", "eviction policy of capacity-limited storage elements (lru|popularity)")
		minRep       = flag.Int("minreplicas", 0, "replication floor k: files below k live replicas are repaired onto healthy grids (0 disables repair)")
		pairs        = flag.String("pairs", "", "per-pair WAN link overrides, format from>to=MBps:latency[,...]; unlisted pairs fall back to -wan/-wanlat")
		locality     = flag.Bool("locality", false, "run the locality sweep (replica skew × WAN bandwidth, aware vs blind vs backlog) instead of the policy sweep")
		skews        = flag.String("skews", "0,0.5,1", "comma-separated skew values of the locality sweep")
		wans         = flag.String("wans", "0.5,2,8", "comma-separated WAN bandwidths (MB/s) of the locality sweep")
		scenarioPath = flag.String("scenario", "", "run one declarative scenario file; workload and storage flags become overrides of the spec")
		scenariosPat = flag.String("scenarios", "", "run every scenario file matching the glob and print the library results table")
		verbose      = flag.Bool("v", false, "print the per-grid dispatch and telemetry table per policy")
	)
	flag.Parse()

	if *scenariosPat != "" {
		scenarioTable(*scenariosPat)
		return
	}
	if *scenarioPath != "" {
		set := make(map[string]bool)
		flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
		for _, name := range []string{"grids", "wan", "wanlat", "pairs", "locality", "skews", "wans"} {
			if set[name] {
				fmt.Fprintf(os.Stderr, "federation: -%s cannot override a scenario; edit the spec's grids/links sections instead\n", name)
				os.Exit(2)
			}
		}
		ov := scenario.Overrides{}
		if set["seed"] {
			ov.Seed = seed
		}
		if set["rebroker"] {
			ov.Rebroker = rebroker
		}
		if set["wanstreams"] {
			ov.WANStreams = wanStreams
		}
		if set["se-cap"] {
			ov.SECapacityMB = seCap
		}
		if set["se-policy"] {
			ov.SEEviction = sePolicy
		}
		if set["minreplicas"] {
			ov.MinReplicas = minRep
		}
		if set["tenants"] {
			ov.Tenants = tenants
		}
		if set["services"] {
			ov.Stages = servs
		}
		if set["items"] {
			ov.Items = items
		}
		if set["runtime"] {
			ov.Runtime = runtime
		}
		if set["filemb"] {
			ov.FileMB = fileMB
		}
		if set["spread"] {
			ov.Spread = spread
		}
		if set["skew"] {
			ov.Skew = skew
		}
		if set["policies"] {
			if strings.Contains(*policies, ",") {
				fmt.Fprintln(os.Stderr, "federation: -policies with -scenario overrides the broker policy and takes exactly one name")
				os.Exit(2)
			}
			ov.Policy = policies
		}
		for _, fl := range []struct {
			name, val string
			storage   bool
		}{{"outage", *outage, false}, {"se-outage", *seOutage, true}} {
			if !set[fl.name] {
				continue
			}
			o, err := scenario.ParseOutage(fl.val)
			if err != nil {
				fmt.Fprintf(os.Stderr, "federation: -%s: %v\n", fl.name, err)
				os.Exit(2)
			}
			ov.Outages = append(ov.Outages, scenario.OutageSpec{
				Grid: o.Grid, At: scenario.Duration(o.At), For: scenario.Duration(o.For), Storage: fl.storage,
			})
		}
		runScenario(*scenarioPath, ov, *verbose)
		return
	}

	s := sweep{
		grids: *grids, tenants: *tenants, servs: *servs, items: *items,
		runtime: *runtime, fileMB: *fileMB, spread: *spread,
		seed: *seed, rebroker: *rebroker, skew: *skew,
		links: links(*wan, *wanLat), wanStreams: *wanStreams,
		seCap: *seCap, minReplicas: *minRep,
	}
	ev, err := scenario.ParseEviction(*sePolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation: -se-policy:", err)
		os.Exit(2)
	}
	s.sePolicy = ev
	if *pairs != "" {
		lm, err := scenario.ParsePairs(*pairs, s.links)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation: -pairs:", err)
			os.Exit(2)
		}
		s.links = lm
	}
	if *outage != "" {
		o, err := scenario.ParseOutage(*outage)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation: -outage:", err)
			os.Exit(2)
		}
		s.outages = []federation.Outage{o}
	}
	if *seOutage != "" {
		o, err := scenario.ParseOutage(*seOutage)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation: -se-outage:", err)
			os.Exit(2)
		}
		o.Storage = true
		s.outages = append(s.outages, o)
	}

	if *locality {
		localitySweep(s, *wanLat, *skews, *wans)
		return
	}

	var pols []federation.Policy
	for _, name := range strings.Split(*policies, ",") {
		p, err := scenario.ParsePolicy(strings.TrimSpace(name), s.grids)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(2)
		}
		pols = append(pols, p)
	}

	fmt.Printf("federation sweep: %d tenants × %d-stage chains × %d items over %d heterogeneous grids (seed %d, rebroker %d, skew %.2f, wan %.1f MB/s, streams %d)\n",
		s.tenants, s.servs, s.items, s.grids, s.seed, s.rebroker, s.skew, *wan, s.wanStreams)
	for _, o := range s.outages {
		dim := "dark"
		if o.Storage {
			dim = "storage dark"
		}
		if o.For > 0 {
			fmt.Printf("outage: %s %s from %v to %v\n", o.Grid, dim, o.At, o.At+o.For)
		} else {
			fmt.Printf("outage: %s %s from %v (no recovery)\n", o.Grid, dim, o.At)
		}
	}
	if s.seCap > 0 {
		fmt.Printf("storage: %.0f MB per element, %s eviction, replication floor %d\n", s.seCap, *sePolicy, s.minReplicas)
	} else if s.minReplicas > 0 {
		fmt.Printf("storage: unlimited elements, replication floor %d\n", s.minReplicas)
	}
	fmt.Println()
	header("policy", 16)

	for _, policy := range pols {
		rep, fed := s.run(policy)
		row(policy.Name(), 16, rep, fed)
		if *verbose {
			printVerbose(fed)
		}
	}
}

// runScenario compiles and runs one spec file with CLI overrides applied.
func runScenario(path string, ov scenario.Overrides, verbose bool) {
	spec, err := scenario.Load(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(2)
	}
	if err := ov.Apply(spec); err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(2)
	}
	eng := sim.NewEngine()
	w, err := scenario.Compile(eng, spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
	if spec.Description != "" {
		fmt.Printf("scenario %s: %s\n", spec.Name, spec.Description)
	} else {
		fmt.Printf("scenario %s\n", spec.Name)
	}
	fmt.Printf("%d grids, %d tenants, seed %d\n\n", len(spec.GridNames()), spec.TenantCount(), spec.Seed)
	rep, err := w.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
	header("scenario", 20)
	row(spec.Name, 20, rep, w.Fed)
	if verbose {
		printVerbose(w.Fed)
	}
}

// scenarioTable runs every scenario matching the glob on a fresh engine
// and prints the library results table — the `make scenarios` sweep.
func scenarioTable(pattern string) {
	paths, err := filepath.Glob(pattern)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation: -scenarios:", err)
		os.Exit(2)
	}
	if len(paths) == 0 {
		fmt.Fprintf(os.Stderr, "federation: -scenarios: no files match %q\n", pattern)
		os.Exit(2)
	}
	sort.Strings(paths)
	fmt.Printf("scenario library: %d scenarios\n\n", len(paths))
	header("scenario", 20)
	for _, p := range paths {
		spec, err := scenario.Load(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(1)
		}
		eng := sim.NewEngine()
		w, err := scenario.Compile(eng, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(1)
		}
		rep, err := w.Run()
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(1)
		}
		row(spec.Name, 20, rep, w.Fed)
	}
}

// header prints the results-table column header with the given label
// column.
func header(label string, width int) {
	fmt.Printf("%-*s %12s %12s %12s %6s %6s %10s %10s %10s %10s %5s %8s %6s\n",
		width, label, "span", "p50", "p95", "jobs", "failed", "resubmits", "wan_mb", "wan_wait", "evicted_mb", "lost", "restage", "grids")
}

// row aggregates one run into a results-table row: makespan percentiles
// across tenants, WAN bytes and waits actually paid, storage churn and
// replica-loss counts.
func row(label string, width int, rep *campaign.Report, fed *federation.Federation) {
	ms := make([]time.Duration, 0, len(rep.Tenants))
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			fmt.Fprintf(os.Stderr, "federation: %s: tenant %s: %v\n", label, tr.Name, tr.Err)
			continue
		}
		ms = append(ms, tr.Makespan)
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	used, restage := 0, uint64(0)
	var wanMB float64
	var wanWait time.Duration
	for i := 0; i < fed.Size(); i++ {
		if fed.Telemetry(i).Dispatched > 0 {
			used++
		}
		// Bytes actually moved and waits actually paid (failed
		// attempts included), not the telemetry's completed-jobs
		// observation.
		wanMB += fed.Grid(i).RemoteInMB()
		wanWait += fed.Grid(i).WANWait()
		restage += fed.Grid(i).Restages()
	}
	var evictedMB float64
	for _, st := range fed.Catalog().SEStats() {
		evictedMB += st.EvictedMB
	}
	lost := 0
	for _, rec := range fed.Records() {
		if errors.Is(rec.Err, grid.ErrReplicaLost) {
			lost++
		}
	}
	fmt.Printf("%-*s %12v %12v %12v %6d %6d %10d %10.0f %10v %10.0f %5d %8d %3d/%d\n",
		width, label, rep.Makespan.Round(time.Second),
		pct(ms, 50).Round(time.Second), pct(ms, 95).Round(time.Second),
		rep.Global.Jobs, rep.Global.Failed, rep.Global.Resubmits, wanMB,
		wanWait.Round(time.Second), evictedMB, lost, restage, used, fed.Size())
}

// printVerbose prints the per-grid telemetry, fabric and storage tables.
func printVerbose(fed *federation.Federation) {
	for i := 0; i < fed.Size(); i++ {
		tl := fed.Telemetry(i)
		fmt.Printf("    %-8s dispatched=%-5d observed=%-5d rebrokered=%-3d submitEWMA=%-8v queueEWMA=%-8v stretch=%-6.2f wan_mb=%-8.0f wan_wait=%-8v restages=%d\n",
			fed.GridName(i), tl.Dispatched, tl.Observed, tl.Rebrokered,
			tl.SubmitEWMA.Round(time.Second), tl.QueueEWMA.Round(time.Second),
			tl.Stretch(), fed.Grid(i).RemoteInMB(), fed.Grid(i).WANWait().Round(time.Second),
			fed.Grid(i).Restages())
	}
	if fab := fed.Fabric(); fab != nil {
		for _, ps := range fab.PairStats() {
			fmt.Printf("    %s>%s cap=%d grants=%d peak_queue=%d\n",
				ps.From, ps.To, ps.Capacity, ps.Grants, ps.PeakWaiting)
		}
	}
	for _, st := range fed.Catalog().SEStats() {
		if st.Evictions == 0 && st.PeakMB == 0 {
			continue
		}
		site := st.Site.Grid
		if st.Site.Cluster != "" {
			site += "/" + st.Site.Cluster
		}
		fmt.Printf("    SE %-20s used=%-8.0f peak=%-8.0f files=%-5d evictions=%-5d evicted_mb=%.0f\n",
			site, st.UsedMB, st.PeakMB, st.Files, st.Evictions, st.EvictedMB)
	}
	if f := fed.Repairs(); f > 0 {
		fmt.Printf("    repairs=%d repaired_mb=%.0f\n", f, fed.RepairedMB())
	}
}

// links builds the sweep's link model: cross-grid fetches at the given
// bandwidth and latency, intra-grid free. A non-positive bandwidth means
// the advertised free-staging baseline (grid.LocalLinks), regardless of
// the latency flag — a latency-only WAN is not expressible from the CLI.
func links(wanMBps float64, wanLat time.Duration) grid.LinkModel {
	if wanMBps <= 0 {
		return grid.LocalLinks()
	}
	return &grid.Links{WAN: grid.Link{MBps: wanMBps, Latency: wanLat}}
}

// run enacts the standard tenant load on a fresh federation under one
// policy.
func (s sweep) run(policy federation.Policy) (*campaign.Report, *federation.Federation) {
	eng := sim.NewEngine()
	fed, err := federation.New(eng, federation.Config{
		Grids:      federation.HeterogeneousSpecs(s.grids, s.seed),
		Policy:     policy,
		Rebroker:   s.rebroker,
		Links:      s.links,
		WANStreams: s.wanStreams,
		Outages:    s.outages,
		// Active storage: finite elements, eviction, k-replication repair.
		SECapacityMB: s.seCap,
		SEEviction:   s.sePolicy,
		MinReplicas:  s.minReplicas,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
	specs := make([]campaign.TenantSpec, s.tenants)
	for i := range specs {
		home := grid.Site{Grid: fed.GridName(i % s.grids)}
		specs[i] = campaign.TenantSpec{
			Name:    fmt.Sprintf("t%02d", i),
			Arrival: time.Duration(i) * s.spread,
			Opts:    mixes[i%len(mixes)],
			Build:   campaign.SyntheticChainPlaced(s.servs, s.items, s.runtime, s.fileMB, home, s.skew),
		}
	}
	rep, err := campaign.RunFederated(eng, fed, specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
	return rep, fed
}

// localitySweep maps campaign span/p95 and WAN traffic over replica skew ×
// WAN bandwidth for the locality-aware ranked policy, its locality-blind
// control and least-backlog.
func localitySweep(s sweep, wanLat time.Duration, skews, wans string) {
	skewVals, err := scenario.ParseFloats(skews)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation: -skews:", err)
		os.Exit(2)
	}
	wanVals, err := scenario.ParseFloats(wans)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation: -wans:", err)
		os.Exit(2)
	}
	pols := []federation.Policy{federation.Ranked(), federation.RankedLocalityBlind(), federation.LeastBacklog()}

	fmt.Printf("locality sweep: %d tenants × %d-stage chains × %d items over %d heterogeneous grids (seed %d, wanlat %v, streams %d)\n",
		s.tenants, s.servs, s.items, s.grids, s.seed, wanLat, s.wanStreams)
	// An inherited -outage applies to every cell; without a banner the
	// table would read as a clean locality experiment.
	for _, o := range s.outages {
		if o.For > 0 {
			fmt.Printf("outage: %s dark from %v to %v\n", o.Grid, o.At, o.At+o.For)
		} else {
			fmt.Printf("outage: %s dark from %v (no recovery)\n", o.Grid, o.At)
		}
	}
	fmt.Println()
	fmt.Printf("%-5s %-8s %-16s %12s %12s %10s %10s\n", "skew", "wanMBps", "policy", "span", "p95", "wan_mb", "wan_wait")
	for _, sk := range skewVals {
		for _, w := range wanVals {
			for _, pol := range pols {
				run := s
				run.skew, run.links = sk, links(w, wanLat)
				// A -pairs matrix survives the sweep: its listed pairs
				// stay fixed while the swept bandwidth replaces only the
				// fallback for unlisted pairs.
				if m, ok := s.links.(*grid.LinkMatrix); ok {
					run.links = &grid.LinkMatrix{Pairs: m.Pairs, Fallback: links(w, wanLat)}
				}
				rep, fed := run.run(pol)
				ms := make([]time.Duration, 0, len(rep.Tenants))
				for _, tr := range rep.Tenants {
					if tr.Err != nil {
						fmt.Fprintf(os.Stderr, "federation: %s: tenant %s: %v\n", pol.Name(), tr.Name, tr.Err)
						continue
					}
					ms = append(ms, tr.Makespan)
				}
				sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
				var wanMB float64
				var wanWait time.Duration
				for i := 0; i < fed.Size(); i++ {
					wanMB += fed.Grid(i).RemoteInMB()
					wanWait += fed.Grid(i).WANWait()
				}
				fmt.Printf("%-5.2f %-8.1f %-16s %12v %12v %10.0f %10v\n",
					sk, w, pol.Name(), rep.Makespan.Round(time.Second),
					pct(ms, 95).Round(time.Second), wanMB, wanWait.Round(time.Second))
			}
		}
	}
}

// pct returns the upper nearest-rank percentile of sorted durations.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)*p/100]
}
