// Command federation sweeps broker policies over a multi-grid federated
// campaign: the same multi-tenant load is enacted once per policy on a
// fresh, identically-seeded federation of heterogeneous grids, so the
// per-policy makespan distributions and per-grid dispatch tables are
// directly comparable. The member grids are derived from the default
// production-grid model with skewed capacity and UI latency
// (federation.HeterogeneousSpecs), which is the regime where brokering
// matters: a policy blind to middleware quality parks load behind slow
// serialized UIs.
//
// Data locality is first-class: a -skew fraction of each tenant's inputs
// is placed on its home grid (homes rotate across members), cross-grid
// fetches pay the -wan/-wanlat link, and the wan_mb column reports the
// bytes each policy actually moved. The -locality mode sweeps replica
// skew × WAN bandwidth over the locality-aware ranked policy, its
// locality-blind control and least-backlog, mapping out when data-aware
// brokering pays.
//
// Examples:
//
//	federation                                  # sweep all policies, 4 grids × 16 tenants
//	federation -grids 2 -tenants 8 -policies ranked,backlog
//	federation -policies ranked,ranked-blind -skew 1 -wan 0.5
//	federation -locality -skews 0,0.5,1 -wans 0.5,2,8
//	federation -policies ranked,pinned:3 -v     # acceptance comparison + per-grid tables
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

// mixes is the optimization rotation across tenants, as in cmd/campaign.
var mixes = []core.Options{
	{ServiceParallelism: true, DataParallelism: true},
	{ServiceParallelism: true, DataParallelism: true, JobGrouping: true},
	{DataParallelism: true},
	{ServiceParallelism: true, DataParallelism: true, DataGroupSize: 4, DataGroupWindow: time.Minute},
}

func main() {
	var (
		grids    = flag.Int("grids", 4, "number of member grids in the federation")
		tenants  = flag.Int("tenants", 16, "number of concurrent tenants")
		servs    = flag.Int("services", 4, "pipeline stages per tenant workflow")
		items    = flag.Int("items", 20, "input data items per tenant")
		runtime  = flag.Duration("runtime", 2*time.Minute, "per-stage compute time")
		fileMB   = flag.Float64("filemb", 5, "input/intermediate file size (MB)")
		spread   = flag.Duration("spread", time.Minute, "arrival stagger between tenants")
		seed     = flag.Uint64("seed", 1, "base random seed (grid i uses seed+i)")
		rebroker = flag.Int("rebroker", 1, "cross-grid resubmissions after terminal failure")
		policies = flag.String("policies", "ranked,backlog,rr,pinned:0", "comma-separated policies to sweep (ranked|ranked-blind|backlog|rr|pinned:N)")
		skew     = flag.Float64("skew", 0, "fraction of each tenant's inputs placed on its home grid (homes rotate across members)")
		wan      = flag.Float64("wan", 2, "WAN bandwidth between member grids (MB/s; 0 keeps cross-grid staging free)")
		wanLat   = flag.Duration("wanlat", 5*time.Second, "per-file WAN fetch setup latency")
		locality = flag.Bool("locality", false, "run the locality sweep (replica skew × WAN bandwidth, aware vs blind vs backlog) instead of the policy sweep")
		skews    = flag.String("skews", "0,0.5,1", "comma-separated skew values of the locality sweep")
		wans     = flag.String("wans", "0.5,2,8", "comma-separated WAN bandwidths (MB/s) of the locality sweep")
		verbose  = flag.Bool("v", false, "print the per-grid dispatch and telemetry table per policy")
	)
	flag.Parse()

	if *locality {
		localitySweep(*grids, *tenants, *servs, *items, *runtime, *fileMB, *spread, *seed, *rebroker, *wanLat, *skews, *wans)
		return
	}

	var sweep []federation.Policy
	for _, name := range strings.Split(*policies, ",") {
		p, err := parsePolicy(strings.TrimSpace(name), *grids)
		if err != nil {
			fmt.Fprintln(os.Stderr, "federation:", err)
			os.Exit(2)
		}
		sweep = append(sweep, p)
	}

	fmt.Printf("federation sweep: %d tenants × %d-stage chains × %d items over %d heterogeneous grids (seed %d, rebroker %d, skew %.2f, wan %.1f MB/s)\n\n",
		*tenants, *servs, *items, *grids, *seed, *rebroker, *skew, *wan)
	fmt.Printf("%-16s %12s %12s %12s %6s %6s %10s %10s %6s\n",
		"policy", "span", "p50", "p95", "jobs", "failed", "resubmits", "wan_mb", "grids")

	for _, policy := range sweep {
		rep, fed := runOnce(policy, *grids, *tenants, *servs, *items, *runtime, *fileMB, *spread,
			*seed, *rebroker, *skew, links(*wan, *wanLat))
		ms := make([]time.Duration, 0, len(rep.Tenants))
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				fmt.Fprintf(os.Stderr, "federation: %s: tenant %s: %v\n", policy.Name(), tr.Name, tr.Err)
				continue
			}
			ms = append(ms, tr.Makespan)
		}
		sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
		used := 0
		var wanMB float64
		for i := 0; i < fed.Size(); i++ {
			if fed.Telemetry(i).Dispatched > 0 {
				used++
			}
			// Bytes actually moved (failed attempts included), not the
			// telemetry's completed-jobs observation.
			wanMB += fed.Grid(i).RemoteInMB()
		}
		fmt.Printf("%-16s %12v %12v %12v %6d %6d %10d %10.0f %3d/%d\n",
			policy.Name(), rep.Makespan.Round(time.Second),
			pct(ms, 50).Round(time.Second), pct(ms, 95).Round(time.Second),
			rep.Global.Jobs, rep.Global.Failed, rep.Global.Resubmits, wanMB, used, fed.Size())
		if *verbose {
			for i := 0; i < fed.Size(); i++ {
				tl := fed.Telemetry(i)
				fmt.Printf("    %-8s dispatched=%-5d observed=%-5d rebrokered=%-3d submitEWMA=%-8v queueEWMA=%-8v wan_mb=%.0f\n",
					fed.GridName(i), tl.Dispatched, tl.Observed, tl.Rebrokered,
					tl.SubmitEWMA.Round(time.Second), tl.QueueEWMA.Round(time.Second), fed.Grid(i).RemoteInMB())
			}
		}
	}
}

// links builds the sweep's link model: cross-grid fetches at the given
// bandwidth and latency, intra-grid free. A non-positive bandwidth means
// the advertised free-staging baseline (grid.LocalLinks), regardless of
// the latency flag — a latency-only WAN is not expressible from the CLI.
func links(wanMBps float64, wanLat time.Duration) grid.LinkModel {
	if wanMBps <= 0 {
		return grid.LocalLinks()
	}
	return &grid.Links{WAN: grid.Link{MBps: wanMBps, Latency: wanLat}}
}

// runOnce enacts the standard tenant load on a fresh federation under one
// policy and link model.
func runOnce(policy federation.Policy, grids, tenants, servs, items int, runtime time.Duration,
	fileMB float64, spread time.Duration, seed uint64, rebroker int, skew float64,
	lm grid.LinkModel) (*campaign.Report, *federation.Federation) {
	eng := sim.NewEngine()
	fed, err := federation.New(eng, federation.Config{
		Grids:    federation.HeterogeneousSpecs(grids, seed),
		Policy:   policy,
		Rebroker: rebroker,
		Links:    lm,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
	specs := make([]campaign.TenantSpec, tenants)
	for i := range specs {
		home := grid.Site{Grid: fed.GridName(i % grids)}
		specs[i] = campaign.TenantSpec{
			Name:    fmt.Sprintf("t%02d", i),
			Arrival: time.Duration(i) * spread,
			Opts:    mixes[i%len(mixes)],
			Build:   campaign.SyntheticChainPlaced(servs, items, runtime, fileMB, home, skew),
		}
	}
	rep, err := campaign.RunFederated(eng, fed, specs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation:", err)
		os.Exit(1)
	}
	return rep, fed
}

// localitySweep maps campaign span/p95 and WAN traffic over replica skew ×
// WAN bandwidth for the locality-aware ranked policy, its locality-blind
// control and least-backlog.
func localitySweep(grids, tenants, servs, items int, runtime time.Duration, fileMB float64,
	spread time.Duration, seed uint64, rebroker int, wanLat time.Duration, skews, wans string) {
	skewVals, err := parseFloats(skews)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation: -skews:", err)
		os.Exit(2)
	}
	wanVals, err := parseFloats(wans)
	if err != nil {
		fmt.Fprintln(os.Stderr, "federation: -wans:", err)
		os.Exit(2)
	}
	pols := []federation.Policy{federation.Ranked(), federation.RankedLocalityBlind(), federation.LeastBacklog()}

	fmt.Printf("locality sweep: %d tenants × %d-stage chains × %d items over %d heterogeneous grids (seed %d, wanlat %v)\n\n",
		tenants, servs, items, grids, seed, wanLat)
	fmt.Printf("%-5s %-8s %-16s %12s %12s %10s\n", "skew", "wanMBps", "policy", "span", "p95", "wan_mb")
	for _, sk := range skewVals {
		for _, w := range wanVals {
			for _, pol := range pols {
				rep, fed := runOnce(pol, grids, tenants, servs, items, runtime, fileMB, spread,
					seed, rebroker, sk, links(w, wanLat))
				ms := make([]time.Duration, 0, len(rep.Tenants))
				for _, tr := range rep.Tenants {
					if tr.Err != nil {
						fmt.Fprintf(os.Stderr, "federation: %s: tenant %s: %v\n", pol.Name(), tr.Name, tr.Err)
						continue
					}
					ms = append(ms, tr.Makespan)
				}
				sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
				var wanMB float64
				for i := 0; i < fed.Size(); i++ {
					wanMB += fed.Grid(i).RemoteInMB()
				}
				fmt.Printf("%-5.2f %-8.1f %-16s %12v %12v %10.0f\n",
					sk, w, pol.Name(), rep.Makespan.Round(time.Second),
					pct(ms, 95).Round(time.Second), wanMB)
			}
		}
	}
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

// pct returns the upper nearest-rank percentile of sorted durations.
func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[len(sorted)*p/100]
}

// parsePolicy resolves a CLI policy name, rejecting a pinned index
// outside the federation (Pinned would clamp it to grid 0 and the table
// row would silently describe a different experiment).
func parsePolicy(name string, grids int) (federation.Policy, error) {
	switch {
	case name == "ranked":
		return federation.Ranked(), nil
	case name == "ranked-blind":
		return federation.RankedLocalityBlind(), nil
	case name == "backlog":
		return federation.LeastBacklog(), nil
	case name == "rr":
		return federation.RoundRobin(), nil
	case strings.HasPrefix(name, "pinned:"):
		idx, err := strconv.Atoi(strings.TrimPrefix(name, "pinned:"))
		if err != nil {
			return nil, fmt.Errorf("bad pinned index in %q", name)
		}
		if idx < 0 || idx >= grids {
			return nil, fmt.Errorf("pinned index %d outside the %d-grid federation", idx, grids)
		}
		return federation.Pinned(idx), nil
	}
	return nil, fmt.Errorf("unknown policy %q (want ranked|ranked-blind|backlog|rr|pinned:N)", name)
}
