// Command moteurd runs the federation simulator as a long-running
// online broker daemon: it boots a scenario world, paces virtual time
// against the wall clock (real-time, warped, or as fast as possible),
// accepts job submissions and outage commands over HTTP, serves live
// telemetry on /metrics, and writes periodic JSON state snapshots.
//
//	moteurd -scenario scenarios/clean-baseline.json -warp 60
//	curl -s localhost:8321/metrics
//	curl -s -X POST localhost:8321/submit -d '{"name":"probe","runtimeSeconds":30}'
//
// Without -scenario an ad-hoc world is assembled from the topology
// flags (-grids, -tenants, -items, -services, -runtime, -filemb,
// -spread, -seed). With -replay the daemon drains the boot campaign at
// the paced rate, prints the scenario report row and determinism
// fingerprint, and exits — a time-warped replay of the closed run.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/daemon"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	var (
		scenarioPath = flag.String("scenario", "", "scenario file to boot (empty: build an ad-hoc world from the topology flags)")
		addr         = flag.String("addr", "127.0.0.1:8321", "HTTP listen address (empty disables HTTP)")
		warp         = flag.Float64("warp", 1, "virtual seconds advanced per wall-clock second (<= 0: as fast as possible)")
		replay       = flag.Bool("replay", false, "exit when the boot campaign completes and print its report and fingerprint")
		snapDir      = flag.String("snapshot-dir", "", "directory for periodic JSON state snapshots (empty disables)")
		snapEvery    = flag.Duration("snapshot-every", 10*time.Second, "wall-clock period between snapshots")
		verbose      = flag.Bool("v", false, "log pacing and snapshot activity")

		grids    = flag.Int("grids", 2, "ad-hoc world: member grid count")
		nodes    = flag.Int("nodes", 24, "ad-hoc world: worker nodes per grid")
		tenants  = flag.Int("tenants", 4, "ad-hoc world: tenant count")
		services = flag.Int("services", 3, "ad-hoc world: pipeline depth per tenant")
		items    = flag.Int("items", 12, "ad-hoc world: input corpus size per tenant")
		runtime  = flag.Duration("runtime", 30*time.Second, "ad-hoc world: per-stage compute time")
		filemb   = flag.Float64("filemb", 10, "ad-hoc world: input file size in MB")
		spread   = flag.Duration("spread", time.Minute, "ad-hoc world: tenant arrival stagger")
		seed     = flag.Uint64("seed", 1, "ad-hoc world: root seed")
	)
	flag.Parse()

	spec, err := loadSpec(*scenarioPath, adhoc{
		grids: *grids, nodes: *nodes, tenants: *tenants, services: *services,
		items: *items, runtime: *runtime, filemb: *filemb, spread: *spread, seed: *seed,
	})
	if err != nil {
		log.Fatalf("moteurd: %v", err)
	}
	eng := sim.NewEngine()
	world, err := scenario.Compile(eng, spec)
	if err != nil {
		log.Fatalf("moteurd: %v", err)
	}

	cfg := daemon.Config{
		World:         world,
		Warp:          *warp,
		Replay:        *replay,
		Addr:          *addr,
		SnapshotDir:   *snapDir,
		SnapshotEvery: *snapEvery,
	}
	if *verbose {
		cfg.Logf = log.Printf
	}
	d, err := daemon.New(cfg)
	if err != nil {
		log.Fatalf("moteurd: %v", err)
	}
	if err := d.Start(); err != nil {
		log.Fatalf("moteurd: %v", err)
	}
	if a := d.Addr(); a != "" {
		log.Printf("moteurd: scenario %q on http://%s (warp %g)", spec.Name, a, *warp)
	}

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("moteurd: %v, shutting down", sig)
		d.Stop()
	case <-d.Wait():
		d.Stop() // replay finished on its own; close the HTTP front-end
	}

	if *replay {
		rep := d.Report()
		ok := 0
		for _, t := range rep.Tenants {
			if t.Err == nil {
				ok++
			}
		}
		fmt.Printf("scenario %s: %d/%d tenants ok, makespan %v, fingerprint %016x\n",
			spec.Name, ok, len(rep.Tenants), rep.Makespan, d.Fingerprint())
	}
}

// adhoc bundles the topology flags of a scenario-less boot.
type adhoc struct {
	grids, nodes, tenants, services, items int
	runtime, spread                        time.Duration
	filemb                                 float64
	seed                                   uint64
}

// loadSpec loads the scenario file, or assembles the ad-hoc spec from
// the topology flags when no file is given.
func loadSpec(path string, a adhoc) (*scenario.Spec, error) {
	if path != "" {
		return scenario.Load(path)
	}
	spec := &scenario.Spec{
		Name:        "adhoc",
		Description: "ad-hoc world from moteurd topology flags",
		Seed:        a.seed,
		Grids:       []scenario.GridSpec{{Name: "g", Count: a.grids, Nodes: a.nodes}},
		Links:       &scenario.LinksSpec{Local: true},
		Policies: map[string]scenario.OptionsSpec{
			"par": {DataParallelism: true, ServiceParallelism: true},
		},
		Tenants: []scenario.TenantGroup{{
			Count:    a.tenants,
			Prefix:   "t",
			Policy:   "par",
			Arrivals: &scenario.ArrivalSpec{Kind: "staggered", Spread: scenario.Duration(a.spread)},
			Workload: scenario.WorkloadSpec{
				Stages:  a.services,
				Items:   a.items,
				Runtime: scenario.Duration(a.runtime),
				Sizes:   scenario.SizeSpec{Kind: "constant", MeanMB: a.filemb},
			},
		}},
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
