// Optimization loop (paper Fig. 2): a workflow with a cycle, legal only in
// the service-based approach. P3 publishes its result on one of two output
// ports depending on a convergence criterion computed at execution time:
// "again" feeds back into P2, "done" reaches the sink. The number of
// iterations is decided while the workflow runs — something a task-based
// DAG cannot express.
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	moteur "repro"
)

func main() {
	eng := moteur.NewEngine()

	// P1 initializes the optimization criterion for each input.
	p1 := moteur.NewLocal(eng, "P1", 64, moteur.ConstantRuntime(5*time.Second),
		func(req moteur.Request) map[string]string {
			return map[string]string{"init": req.Inputs["in"] + "/iter0/res1.000"}
		})
	// P2 refines the current estimate.
	p2 := moteur.NewLocal(eng, "P2", 64, moteur.ConstantRuntime(20*time.Second),
		func(req moteur.Request) map[string]string {
			return map[string]string{"est": req.Inputs["crit"]}
		})
	// P3 evaluates convergence: residual halves every iteration; below the
	// threshold it emits on "done", otherwise loops back on "again".
	p3 := moteur.NewLocal(eng, "P3", 64, moteur.ConstantRuntime(10*time.Second),
		func(req moteur.Request) map[string]string {
			base, iter, res := parse(req.Inputs["est"])
			res /= 2
			iter++
			state := fmt.Sprintf("%s/iter%d/res%.3f", base, iter, res)
			if res < 0.1 {
				return map[string]string{"done": state}
			}
			return map[string]string{"again": state}
		})

	wf := moteur.NewWorkflow("fig2-loop")
	wf.AddSource("Source")
	wf.AddService("P1", p1, []string{"in"}, []string{"init"})
	wf.AddService("P2", p2, []string{"crit"}, []string{"est"})
	wf.AddService("P3", p3, []string{"est"}, []string{"again", "done"})
	wf.AddSink("Sink")
	wf.Connect("Source", "out", "P1", "in")
	wf.Connect("P1", "init", "P2", "crit")
	wf.Connect("P2", "est", "P3", "est")
	wf.Connect("P3", "again", "P2", "crit") // the loop of Fig. 2
	wf.Connect("P3", "done", "Sink", "in")

	if !wf.HasCycle() {
		log.Fatal("expected a cyclic workflow")
	}

	// Loops require streaming execution (service parallelism).
	enactor, err := moteur.NewEnactor(eng, wf, moteur.Options{
		DataParallelism:    true,
		ServiceParallelism: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := enactor.Run(map[string][]string{"Source": {"imageA", "imageB", "imageC"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loop workflow converged in %v:\n", res.Makespan)
	for _, v := range res.Outputs["Sink"] {
		fmt.Println(" ", v)
	}
	fmt.Printf("P2 ran %d times, P3 ran %d times (iteration count decided at runtime)\n",
		len(res.Trace.ByProcessor("P2")), len(res.Trace.ByProcessor("P3")))
}

func parse(state string) (base string, iter int, res float64) {
	parts := strings.Split(state, "/")
	base = parts[0]
	iter, _ = strconv.Atoi(strings.TrimPrefix(parts[1], "iter"))
	res, _ = strconv.ParseFloat(strings.TrimPrefix(parts[2], "res"), 64)
	return base, iter, res
}
