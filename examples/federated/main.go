// Federated quickstart: run a small multi-tenant campaign across a
// 3-grid federation with the overhead-ranked broker policy. This is the
// program mirrored in the top-level README; the full sweep CLI is
// cmd/federation.
package main

import (
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	fed, err := federation.New(eng, federation.Config{
		Grids:    federation.HeterogeneousSpecs(3, 1), // 3 grids, skewed capacity + UI latency
		Policy:   federation.Ranked(),                 // overhead-ranked brokering
		Rebroker: 1,                                   // one cross-grid retry after terminal failure
	})
	if err != nil {
		panic(err)
	}
	tenants := make([]campaign.TenantSpec, 4)
	for i := range tenants {
		tenants[i] = campaign.TenantSpec{
			Name:    fmt.Sprintf("t%d", i),
			Arrival: time.Duration(i) * time.Minute,
			Opts:    core.Options{ServiceParallelism: true, DataParallelism: true},
			Build:   campaign.SyntheticChain(3, 10, 2*time.Minute, 5),
		}
	}
	rep, err := campaign.RunFederated(eng, fed, tenants)
	if err != nil {
		panic(err)
	}
	for _, tr := range rep.Tenants {
		fmt.Printf("%s: makespan %v, %d jobs, overhead p90 %v\n",
			tr.Name, tr.Makespan.Round(time.Second),
			tr.Overheads.Jobs, tr.Overheads.P90.Round(time.Second))
	}
	for i := 0; i < fed.Size(); i++ {
		fmt.Printf("%s: %d jobs dispatched, submit EWMA %v\n",
			fed.GridName(i), fed.Telemetry(i).Dispatched,
			fed.Telemetry(i).SubmitEWMA.Round(time.Second))
	}
	fmt.Printf("campaign span %v — global: %s\n", rep.Makespan.Round(time.Second), rep.Global)
}
