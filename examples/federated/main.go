// Federated quickstart: run a small multi-tenant campaign across a
// 3-grid federation with the locality-aware overhead-ranked broker
// policy. Each tenant's input files are resident on a home grid and
// cross-grid fetches pay a WAN link, so the broker has to weigh data
// movement against middleware quality. This is the program mirrored in
// the top-level README; the full sweep CLI is cmd/federation.
package main

import (
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	fed, err := federation.New(eng, federation.Config{
		Grids:    federation.HeterogeneousSpecs(3, 1), // 3 grids, skewed capacity + UI latency
		Policy:   federation.Ranked(),                 // overhead-ranked + transfer-cost brokering
		Rebroker: 1,                                   // one cross-grid retry after terminal failure
		// nil Links would do the same: cross-grid fetches pay the default
		// 2 MB/s, 5 s-latency WAN link.
		Links: grid.DefaultWAN(),
	})
	if err != nil {
		panic(err)
	}
	tenants := make([]campaign.TenantSpec, 4)
	for i := range tenants {
		home := grid.Site{Grid: fed.GridName(i % fed.Size())} // inputs resident here
		tenants[i] = campaign.TenantSpec{
			Name:    fmt.Sprintf("t%d", i),
			Arrival: time.Duration(i) * time.Minute,
			Opts:    core.Options{ServiceParallelism: true, DataParallelism: true},
			Build:   campaign.SyntheticChainPlaced(3, 10, 2*time.Minute, 5, home, 1),
		}
	}
	rep, err := campaign.RunFederated(eng, fed, tenants)
	if err != nil {
		panic(err)
	}
	for _, tr := range rep.Tenants {
		fmt.Printf("%s: makespan %v, %d jobs, overhead p90 %v\n",
			tr.Name, tr.Makespan.Round(time.Second),
			tr.Overheads.Jobs, tr.Overheads.P90.Round(time.Second))
	}
	for i := 0; i < fed.Size(); i++ {
		fmt.Printf("%s: %d jobs dispatched, submit EWMA %v, %.0f MB over the WAN\n",
			fed.GridName(i), fed.Telemetry(i).Dispatched,
			fed.Telemetry(i).SubmitEWMA.Round(time.Second), fed.Grid(i).RemoteInMB())
	}
	fmt.Printf("campaign span %v — global: %s\n", rep.Makespan.Round(time.Second), rep.Global)
}
