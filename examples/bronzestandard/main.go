// Bronze Standard (paper Sec. 4.2, Fig. 9): the full evaluation
// application — rigid registration of brain MRI pairs with four
// algorithms, assessed by the MultiTransfoTest synchronization processor —
// executed end to end on the simulated EGEE-style grid at a reduced scale.
//
// For the full Table 1 / Table 2 / Figure 10 reproduction at the paper's
// sizes, run: go run ./cmd/bronze
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bronze"
	"repro/internal/core"
)

func main() {
	const pairs = 12 // one patient's acquisitions, the paper's smallest set
	fmt.Printf("Bronze Standard: %d image pairs (6 grid jobs per pair + 1 synchronization job)\n\n", pairs)

	for _, cfg := range bronze.Configurations() {
		p := bronze.DefaultParams()
		res, app, err := bronze.Run(pairs, cfg.Opts, p)
		if err != nil {
			log.Fatal(err)
		}
		st := app.Grid.Overheads()
		fmt.Printf("%-9s makespan %-10v grid overhead: mean %v sd %v (resubmissions %d)\n",
			cfg.Name, res.Makespan.Round(time.Second),
			st.Mean.Round(time.Second), st.SD.Round(time.Second), st.Resubmits)
	}

	// Show the accuracy outputs and the provenance depth of one of them.
	p := bronze.DefaultParams()
	res, _, err := bronze.Run(pairs, core.Options{
		DataParallelism: true, ServiceParallelism: true, JobGrouping: true,
	}, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, sink := range []string{"accuracy_translation", "accuracy_rotation"} {
		for _, v := range res.Outputs[sink] {
			fmt.Printf("%s = %s\n", sink, v)
		}
	}
	item := res.Items["accuracy_translation"][0]
	fmt.Printf("\naccuracy derives from %d source data (history depth %d)\n",
		len(item.History.Sources()), item.History.Depth())
}
