// Quickstart: build the paper's Fig. 1 three-service pipeline with
// wrapper-backed services on the simulated production grid, then execute
// it with and without the optimizations to see the speed-up.
package main

import (
	"fmt"
	"log"
	"time"

	moteur "repro"
)

// descriptorXML describes a generic image filter in the paper's Fig. 8
// format; each stage of the pipeline wraps one instance of it.
const descriptorXML = `<description>
<executable name="%s">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<input name="in" option="-i"><access type="GFN"/></input>
<output name="out" option="-o"><access type="GFN"/></output>
</executable>
</description>`

func main() {
	for _, opts := range []moteur.Options{
		{}, // NOP: workflow parallelism only
		{DataParallelism: true},
		{DataParallelism: true, ServiceParallelism: true},
		{DataParallelism: true, ServiceParallelism: true, JobGrouping: true},
	} {
		makespan, jobs := run(opts)
		fmt.Printf("%-9s makespan %-10v grid jobs %d\n", opts, makespan.Round(time.Second), jobs)
	}
}

// run executes the pipeline over 8 input images under the given options.
func run(opts moteur.Options) (time.Duration, int) {
	eng := moteur.NewEngine()
	g := moteur.NewGrid(eng, moteur.DefaultGridConfig())

	// The input data: 8 images registered in the replica catalog.
	var inputs []string
	for i := 0; i < 8; i++ {
		gfn := fmt.Sprintf("gfn://images/img%d", i)
		g.Catalog().Register(gfn, 7.8)
		inputs = append(inputs, gfn)
	}

	// One wrapper service per pipeline stage, built from its executable
	// descriptor — the only thing a developer writes to grid-enable a code.
	wf := moteur.NewWorkflow("quickstart")
	wf.AddSource("images")
	for i, stage := range []struct {
		name    string
		runtime time.Duration
	}{
		{"denoise", 60 * time.Second},
		{"segment", 150 * time.Second},
		{"measure", 45 * time.Second},
	} {
		desc, err := moteur.ParseDescriptor([]byte(fmt.Sprintf(descriptorXML, stage.name)))
		if err != nil {
			log.Fatal(err)
		}
		svc, err := moteur.NewWrapper(g, desc, moteur.ConstantRuntime(stage.runtime),
			map[string]float64{"out": 7.8})
		if err != nil {
			log.Fatal(err)
		}
		wf.AddService(stage.name, svc, []string{"in"}, []string{"out"})
		if i == 0 {
			wf.Connect("images", "out", stage.name, "in")
		}
	}
	wf.Connect("denoise", "out", "segment", "in")
	wf.Connect("segment", "out", "measure", "in")
	wf.AddSink("results")
	wf.Connect("measure", "out", "results", "in")

	enactor, err := moteur.NewEnactor(eng, wf, opts)
	if err != nil {
		log.Fatal(err)
	}
	res, err := enactor.Run(map[string][]string{"images": inputs})
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Outputs["results"]) != len(inputs) {
		log.Fatalf("expected %d results, got %d", len(inputs), len(res.Outputs["results"]))
	}
	return res.Makespan, res.Trace.JobCount()
}
