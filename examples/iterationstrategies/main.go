// Iteration strategies (paper Fig. 3): the composition rules for data
// arriving on the input ports of a service. A dot product pairs the i-th
// item of A with the i-th item of B (min(n,m) invocations — "a sequence of
// pairs"); a cross product pairs every item of A with every item of B (n×m
// invocations). Strategies compose into trees such as cross(dot(a,b),c),
// the pattern that makes task-based workflow descriptions combinatorial.
package main

import (
	"fmt"
	"log"
	"time"

	moteur "repro"
)

func main() {
	demo("dot(left,right)", "dot product (Fig. 3 right)")
	demo("cross(left,right)", "cross product (Fig. 3 left)")
	demo("cross(dot(left,right),param)", "composed: image pairs x parameter sweep")
}

func demo(strategy, label string) {
	eng := moteur.NewEngine()

	pair := moteur.NewLocal(eng, "combine", 1024, moteur.ConstantRuntime(time.Second),
		func(req moteur.Request) map[string]string {
			out := req.Inputs["left"] + "+" + req.Inputs["right"]
			if p, ok := req.Inputs["param"]; ok {
				out += "@" + p
			}
			return map[string]string{"out": out}
		})

	strat, err := moteur.ParseStrategy(strategy)
	if err != nil {
		log.Fatal(err)
	}
	inPorts := strat.Ports()

	wf := moteur.NewWorkflow("strategies")
	wf.AddSource("A")
	wf.AddSource("B")
	if len(inPorts) == 3 {
		wf.AddSource("P")
	}
	p := wf.AddService("combine", pair, inPorts, []string{"out"})
	p.Strategy = strat
	wf.AddSink("results")
	wf.Connect("A", "out", "combine", "left")
	wf.Connect("B", "out", "combine", "right")
	if len(inPorts) == 3 {
		wf.Connect("P", "out", "combine", "param")
	}
	wf.Connect("combine", "out", "results", "in")

	enactor, err := moteur.NewEnactor(eng, wf, moteur.Options{
		DataParallelism:    true,
		ServiceParallelism: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	inputs := map[string][]string{
		"A": {"A0", "A1", "A2"},
		"B": {"B0", "B1", "B2"},
	}
	if len(inPorts) == 3 {
		inputs["P"] = []string{"s=1.0", "s=2.0"}
	}
	res, err := enactor.Run(inputs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s — %s over A(3), B(3)", strategy, label)
	if len(inPorts) == 3 {
		fmt.Print(", P(2)")
	}
	fmt.Printf(": %d invocations\n", len(res.Outputs["results"]))
	for _, v := range res.Outputs["results"] {
		fmt.Println("  ", v)
	}
	fmt.Println()
}
