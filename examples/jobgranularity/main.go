// Job granularity (the paper's future work, Sec. 5.4): batching several
// invocations of one service into a single grid job trades data
// parallelism against per-job overhead. This example sweeps the batch
// size on the Bronze Standard application and compares the empirical
// sweet spot with the analytical model's prediction.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/bronze"
	"repro/internal/core"
	"repro/internal/model"
)

func main() {
	const pairs = 36
	fmt.Printf("Bronze Standard, %d pairs, SP+DP with per-service job batching:\n\n", pairs)

	var (
		bestK    int
		bestTime time.Duration
	)
	for _, k := range []int{1, 2, 3, 4, 6, 9, 12} {
		p := bronze.DefaultParams()
		res, app, err := bronze.Run(pairs, core.Options{
			DataParallelism:    true,
			ServiceParallelism: true,
			DataGroupSize:      k,
			DataGroupWindow:    time.Minute,
		}, p)
		if err != nil {
			log.Fatal(err)
		}
		jobs := len(app.Grid.Records())
		fmt.Printf("  batch=%-3d makespan %-10v grid jobs %d\n",
			k, res.Makespan.Round(time.Second), jobs)
		if bestTime == 0 || res.Makespan < bestTime {
			bestK, bestTime = k, res.Makespan
		}
	}
	fmt.Printf("\nempirical best batch size: %d (%v)\n", bestK, bestTime.Round(time.Second))

	// The analytical prediction for a representative service (Baladin:
	// the heaviest registration code) under the default grid's overheads.
	params := model.GranularityParams{
		Overhead:     3 * time.Minute,
		SubmitSerial: 20 * time.Second,
		Runtime:      336 * time.Second,
		Items:        pairs,
		Slots:        200,
	}
	k, predicted := model.OptimalBatch(params)
	fmt.Printf("model prediction for the dominant service: batch=%d (makespan floor %v)\n",
		k, predicted.Round(time.Second))
	fmt.Println("\n(the model bounds a single service; the empirical sweep covers the")
	fmt.Println(" whole six-service workflow — both locate the same moderate optimum)")
}
