// Multitenant: the paper's contention regime made explicit. A steady
// tenant enacts a small pipeline while a second tenant dumps a large
// data-parallel burst on the same grid. The example runs the steady
// tenant three ways — alone, sharing the grid through the fair-share
// submission gate, and sharing it through a tenancy-unaware strict FIFO —
// to show that fair share bounds the interference a burst can inflict,
// while FIFO parks the steady tenant behind the whole burst.
package main

import (
	"fmt"
	"log"
	"time"

	moteur "repro"
)

func main() {
	steady := moteur.CampaignTenant{
		Name: "steady",
		Opts: moteur.Options{DataParallelism: true, ServiceParallelism: true},
		// 3 stages × 6 images: a routine analysis someone runs every day.
		Build: moteur.SyntheticChain(3, 6, 2*time.Minute, 5),
	}
	burst := moteur.CampaignTenant{
		Name: "burst",
		Opts: moteur.Options{DataParallelism: true},
		// 1 stage × 200 images: a parameter sweep submitted all at once.
		Build: moteur.SyntheticChain(1, 200, 2*time.Minute, 5),
	}

	alone := steadyMakespan([]moteur.CampaignTenant{steady}, false)
	fair := steadyMakespan([]moteur.CampaignTenant{burst, steady}, false)
	fifo := steadyMakespan([]moteur.CampaignTenant{burst, steady}, true)

	fmt.Printf("steady tenant alone:              %v\n", alone.Round(time.Second))
	fmt.Printf("sharing via fair-share gate:      %v  (%.2fx)\n", fair.Round(time.Second), ratio(fair, alone))
	fmt.Printf("sharing via strict FIFO:          %v  (%.2fx)\n", fifo.Round(time.Second), ratio(fifo, alone))
	fmt.Println()

	// The same contention, watched from the accounting side: per-tenant
	// overheads are disjoint slices of the global statistics.
	rep := run([]moteur.CampaignTenant{burst, steady}, false)
	for _, tr := range rep.Tenants {
		fmt.Printf("%-7s %s\n", tr.Name, tr.Overheads)
	}
	fmt.Printf("global  %s\n", rep.Global)
}

func run(tenants []moteur.CampaignTenant, strictFIFO bool) *moteur.CampaignReport {
	gc := moteur.DefaultGridConfig()
	gc.StrictFIFOSubmit = strictFIFO
	rep, err := moteur.RunCampaign(moteur.Campaign{Grid: gc, Tenants: tenants})
	if err != nil {
		log.Fatal(err)
	}
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			log.Fatalf("tenant %s: %v", tr.Name, tr.Err)
		}
	}
	return rep
}

func steadyMakespan(tenants []moteur.CampaignTenant, strictFIFO bool) time.Duration {
	for _, tr := range run(tenants, strictFIFO).Tenants {
		if tr.Name == "steady" {
			return tr.Makespan
		}
	}
	log.Fatal("steady tenant missing")
	return 0
}

func ratio(a, b time.Duration) float64 { return float64(a) / float64(b) }
