package moteur

import (
	"fmt"
	"testing"
	"time"
)

// TestPublicAPIEndToEnd drives the whole stack through the public façade:
// grid, descriptors, wrappers, workflow, enactor, results.
func TestPublicAPIEndToEnd(t *testing.T) {
	eng := NewEngine()
	g := NewGrid(eng, IdealGridConfig(64))

	desc, err := ParseDescriptor([]byte(`<description>
<executable name="filter">
<access type="URL"><path value="http://example.org"/></access>
<input name="in" option="-i"><access type="GFN"/></input>
<output name="out" option="-o"><access type="GFN"/></output>
</executable>
</description>`))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := NewWrapper(g, desc, ConstantRuntime(30*time.Second), map[string]float64{"out": 1})
	if err != nil {
		t.Fatal(err)
	}

	wf := NewWorkflow("api")
	wf.AddSource("in")
	wf.AddService("filter", svc, []string{"in"}, []string{"out"})
	wf.AddSink("out")
	wf.Connect("in", "out", "filter", "in")
	wf.Connect("filter", "out", "out", "in")

	var inputs []string
	for i := 0; i < 5; i++ {
		gfn := fmt.Sprintf("gfn://d%d", i)
		g.Catalog().Register(gfn, 1)
		inputs = append(inputs, gfn)
	}

	e, err := NewEnactor(eng, wf, Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"in": inputs})
	if err != nil {
		t.Fatal(err)
	}
	// Ideal grid, full parallelism: makespan = one service time.
	if res.Makespan != 30*time.Second {
		t.Fatalf("makespan = %v, want 30s", res.Makespan)
	}
	if len(res.Outputs["out"]) != 5 {
		t.Fatalf("outputs = %v", res.Outputs["out"])
	}
}

// TestPublicAPIModelAndMetrics exercises the analytical surface.
func TestPublicAPIModelAndMetrics(t *testing.T) {
	m := Matrix{
		{10 * time.Second, 20 * time.Second},
		{30 * time.Second, 40 * time.Second},
	}
	if ModelSequential(m) != 100*time.Second {
		t.Errorf("Sequential = %v", ModelSequential(m))
	}
	if ModelDP(m) != 60*time.Second {
		t.Errorf("DP = %v", ModelDP(m))
	}
	if ModelDSP(m) != 60*time.Second {
		t.Errorf("DSP = %v", ModelDSP(m))
	}
	if ModelSP(m) != 80*time.Second {
		t.Errorf("SP = %v", ModelSP(m))
	}
	line, err := Fit([]int{1, 2, 3}, []time.Duration{3 * time.Second, 5 * time.Second, 7 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if line.Slope != 2 || line.Intercept != 1 {
		t.Errorf("fit = %+v", line)
	}
	if SpeedUp(10*time.Second, 5*time.Second) != 2 {
		t.Error("SpeedUp broken")
	}
}

// TestPublicAPIStrategies checks the strategy constructors and parser.
func TestPublicAPIStrategies(t *testing.T) {
	s := Cross(Dot(Port("a"), Port("b")), Port("c"))
	if s.String() != "cross(dot(a,b),c)" {
		t.Errorf("String = %q", s.String())
	}
	parsed, err := ParseStrategy(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed.String() != s.String() {
		t.Error("round trip failed")
	}
}

// TestPublicAPIScufl parses a workflow document through the façade.
func TestPublicAPIScufl(t *testing.T) {
	eng := NewEngine()
	reg := ServiceRegistry{
		"step": NewLocal(eng, "step", 8, ConstantRuntime(time.Second),
			func(req Request) map[string]string {
				return map[string]string{"out": req.Inputs["in"]}
			}),
	}
	doc := `<scufl name="tiny">
  <source name="src"/>
  <processor name="step"><inport name="in"/><outport name="out"/></processor>
  <sink name="dst"/>
  <link from="src:out" to="step:in"/>
  <link from="step:out" to="dst:in"/>
</scufl>`
	wf, err := ParseScufl([]byte(doc), ScuflOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	out, err := WriteScufl(wf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ParseScufl(out, ScuflOptions{Registry: reg}); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	e, err := NewEnactor(eng, wf, Options{ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["dst"]) != 2 {
		t.Fatalf("outputs = %v", res.Outputs)
	}
}

// TestPublicAPIAutoGroup verifies the grouping rewrite is reachable from
// the façade.
func TestPublicAPIAutoGroup(t *testing.T) {
	eng := NewEngine()
	g := NewGrid(eng, IdealGridConfig(8))
	mk := func(name string) Service {
		desc, err := ParseDescriptor([]byte(fmt.Sprintf(`<description>
<executable name=%q>
<access type="URL"><path value="http://x"/></access>
<input name="in" option="-i"><access type="GFN"/></input>
<output name="out" option="-o"><access type="GFN"/></output>
</executable></description>`, name)))
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewWrapper(g, desc, ConstantRuntime(time.Second), map[string]float64{"out": 1})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	wf := NewWorkflow("g")
	wf.AddSource("s")
	wf.AddService("A", mk("A"), []string{"in"}, []string{"out"})
	wf.AddService("B", mk("B"), []string{"in"}, []string{"out"})
	wf.AddSink("d")
	wf.Connect("s", "out", "A", "in")
	wf.Connect("A", "out", "B", "in")
	wf.Connect("B", "out", "d", "in")

	grouped, err := AutoGroup(wf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := grouped.Proc("A+B"); !ok {
		t.Fatal("A+B not grouped through public API")
	}
}

func TestPublicAPICampaign(t *testing.T) {
	gc := IdealGridConfig(32)
	gc.Overheads.SubmitMean = 2 * time.Second
	rep, err := RunCampaign(Campaign{
		Grid: gc,
		Tenants: []CampaignTenant{
			{Name: "a", Opts: Options{DataParallelism: true, ServiceParallelism: true},
				Build: SyntheticChain(2, 4, 10*time.Second, 1)},
			{Name: "b", Arrival: time.Minute, Opts: Options{DataParallelism: true},
				Build: SyntheticChain(1, 6, 10*time.Second, 1)},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("tenants = %d", len(rep.Tenants))
	}
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
		}
		if tr.Makespan <= 0 {
			t.Fatalf("tenant %s makespan %v", tr.Name, tr.Makespan)
		}
	}
	if rep.Global.Jobs != rep.Tenants[0].Overheads.Jobs+rep.Tenants[1].Overheads.Jobs {
		t.Fatal("per-tenant stats do not partition the global stats")
	}
}
