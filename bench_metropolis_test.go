// The metropolis tier: a 100k-job, eight-grid federation benchmark
// exercising the allocation-free hot paths and the parallel per-grid
// event loops at two orders of magnitude above the standard federation
// benchmarks. Run through `make scale-bench` (it is deliberately outside
// the default `make bench` matrix — a single iteration simulates a
// hundred thousand brokered jobs).
package moteur

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

// metropolisFPs collects the per-mode fingerprints so the parallel
// sub-benchmark can assert bit-identity against the serial one within a
// single `go test -bench` process.
var metropolisFPs = struct {
	sync.Mutex
	m map[string]string
}{m: make(map[string]string)}

// BenchmarkFederationMetropolis runs 100,000 outputless jobs with a
// heterogeneous input corpus across eight heterogeneous grids, in 200
// pre-scheduled submission waves (the main-engine brokering points that
// bound the parallel engine's windows). The serial and parallel
// sub-benchmarks run the identical world; the benchmark fails unless
// their result fingerprints are bit-identical, making the speedup
// comparison a comparison of the same computation. workers reports the
// per-window goroutine count (1 = single-engine serial path).
func BenchmarkFederationMetropolis(b *testing.B) {
	b.Run("serial", func(b *testing.B) { benchMetropolis(b, false) })
	b.Run("parallel", func(b *testing.B) { benchMetropolis(b, true) })
}

func benchMetropolis(b *testing.B, parallel bool) {
	const (
		nGrids  = 8
		waves   = 200
		perWave = 500
		jobs    = waves * perWave
		corpus  = 64
	)
	var fp string
	var simEnd sim.Time
	for n := 0; n < b.N; n++ {
		eng := sim.NewEngine()
		fed, err := federation.New(eng, federation.Config{
			Grids:    federation.HeterogeneousSpecs(nGrids, 3),
			Policy:   federation.Ranked(),
			Parallel: parallel,
		})
		if err != nil {
			b.Fatal(err)
		}
		if fed.ParallelActive() != parallel {
			b.Fatalf("ParallelActive() = %v, want %v", fed.ParallelActive(), parallel)
		}
		// The corpus is deliberately heterogeneous: 64 files from 16 to
		// ~250 MB, placed round-robin across all eight grids, so stage
		// plans mix local, intra-grid and cross-grid classes.
		cat := fed.Catalog()
		names := make([]string, corpus)
		for i := range names {
			names[i] = fmt.Sprintf("corpus%03d", i)
			cat.RegisterAt(names[i], float64(16+(i*13)%240), grid.Site{Grid: fed.GridName(i % nGrids)})
		}
		// Completion callbacks run on shard goroutines under the parallel
		// engine: each writes only its own pre-allocated slot.
		makespans := make([]int64, jobs)
		for w := 0; w < waves; w++ {
			w := w
			eng.Schedule(sim.Time(w)*sim.Time(90*time.Second), func() {
				base := w * perWave
				for k := 0; k < perWave; k++ {
					id := base + k
					in := make([]string, id%3)
					for j := range in {
						in[j] = names[(id*7+j*11)%corpus]
					}
					spec := grid.JobSpec{
						Name:    "metro",
						Inputs:  in,
						Runtime: time.Duration(1+id%8) * time.Minute,
					}
					fed.Submit(spec, func(r *grid.JobRecord) {
						makespans[id] = int64(r.Makespan())
					})
				}
			})
		}
		fed.Run()

		h := fnv.New64a()
		var buf [8]byte
		for _, m := range makespans {
			binary.LittleEndian.PutUint64(buf[:], uint64(m))
			h.Write(buf[:])
		}
		for i := 0; i < fed.Size(); i++ {
			tl := fed.Telemetry(i)
			fmt.Fprintf(h, "%s|%d|%d|%.3f|%v|%v|", fed.GridName(i),
				tl.Dispatched, tl.Observed, tl.RemoteInMB, tl.SubmitEWMA, tl.QueueEWMA)
		}
		cur := fmt.Sprintf("%016x", h.Sum64())
		if fp == "" {
			fp = cur
		} else if fp != cur {
			b.Fatalf("iteration %d diverged: fingerprint %s, want %s", n, cur, fp)
		}
		simEnd = eng.Now()
		for i := 0; i < fed.Size(); i++ {
			if t := fed.Grid(i).Eng.Now(); t > simEnd {
				simEnd = t
			}
		}
	}

	mode := "serial"
	workers := 1.0
	if parallel {
		mode, workers = "parallel", nGrids
	}
	metropolisFPs.Lock()
	metropolisFPs.m[mode] = fp
	other, both := metropolisFPs.m["serial"], false
	if parallel {
		_, both = metropolisFPs.m["serial"]
	}
	metropolisFPs.Unlock()
	if both && other != fp {
		b.Fatalf("parallel fingerprint %s diverged from serial %s", fp, other)
	}
	b.ReportMetric(float64(jobs), "jobs")
	b.ReportMetric(simEnd.Seconds(), "sim_s")
	b.ReportMetric(workers, "workers")
}
