package moteur

import "testing"

// TestFederationContentionAllocBudget is the allocation regression gate
// of the federation hot paths: it runs the contended-WAN federation
// benchmark and fails if the per-job heap allocation count regresses more
// than 10% over the pinned budget. The budget (53 allocations per job,
// ~48 measured after the arena/pool rework: pooled jobRuns and stage
// plans, closure-free lifecycle events, recycled resource holds,
// arena-backed records and catalog entries) covers the whole pipeline —
// submission, brokering, staging over the contended fabric, compute,
// settlement, and the services/XML enactment layer above it.
func TestFederationContentionAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation budget gate runs the full contention benchmark")
	}
	res := testing.Benchmark(BenchmarkFederationContention)
	jobs := res.Extra["jobs"]
	if jobs <= 0 {
		t.Fatalf("benchmark reported no jobs metric: %v", res)
	}
	perJob := float64(res.AllocsPerOp()) / jobs
	const budget = 53.0
	if perJob > budget {
		t.Fatalf("federation contention allocates %.1f objects per job (budget %.0f): the hot-path pooling regressed", perJob, budget)
	}
	t.Logf("federation contention: %.1f allocs/job (budget %.0f)", perJob, budget)
}
