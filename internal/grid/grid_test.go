package grid

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/sim"
)

// quiet returns a small deterministic grid with no background load and no
// failures, so tests can reason about exact behaviour.
func quiet(nodes int) Config {
	cfg := IdealConfig(nodes)
	cfg.Overheads = OverheadConfig{
		SubmitMean: 2 * time.Second, SubmitSD: 0,
		BrokerMean: 3 * time.Second, BrokerSD: 0,
		DispatchMean: 5 * time.Second, DispatchSD: 0,
		TransferLatency: 0,
	}
	return cfg
}

func submitOne(t *testing.T, eng *sim.Engine, g *Grid, spec JobSpec) *JobRecord {
	t.Helper()
	var final *JobRecord
	g.Submit(spec, func(r *JobRecord) { final = r })
	eng.Run()
	if final == nil {
		t.Fatal("job never completed")
	}
	return final
}

func TestJobLifecycleTimestamps(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(4))
	rec := submitOne(t, eng, g, JobSpec{Name: "j", Runtime: 10 * time.Second})

	if rec.Status != StatusCompleted {
		t.Fatalf("status = %v, want completed", rec.Status)
	}
	// submit 2s + broker 3s + dispatch 5s + runtime 10s = 20s.
	if got, want := rec.Completed, sim.Time(20*time.Second); got != want {
		t.Fatalf("completed at %v, want %v", got, want)
	}
	if rec.Submitted != 0 || rec.Accepted != sim.Time(2*time.Second) ||
		rec.Matched != sim.Time(5*time.Second) || rec.Started != sim.Time(5*time.Second) ||
		rec.InputDone != sim.Time(10*time.Second) {
		t.Fatalf("phase timestamps wrong: %+v", rec)
	}
	if rec.Overhead() != 10*time.Second {
		t.Fatalf("Overhead() = %v, want 10s", rec.Overhead())
	}
	if rec.Makespan() != 20*time.Second {
		t.Fatalf("Makespan() = %v, want 20s", rec.Makespan())
	}
	if rec.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1", rec.Attempts)
	}
}

func TestSubmissionSerialized(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(10))
	var accepted []sim.Time
	for i := 0; i < 3; i++ {
		rec := g.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
		_ = rec
	}
	eng.Run()
	for _, r := range g.Records() {
		accepted = append(accepted, r.Accepted)
	}
	// UI is serialized with 2s latency: acceptance at 2, 4, 6 seconds.
	want := []sim.Time{2 * time.Second, 4 * time.Second, 6 * time.Second}
	for i := range want {
		if accepted[i] != want[i] {
			t.Fatalf("accepted[%d] = %v, want %v (UI must serialize submissions)", i, accepted[i], want[i])
		}
	}
}

func TestOutputsRegisteredOnCompletion(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(2))
	rec := submitOne(t, eng, g, JobSpec{
		Name:    "producer",
		Runtime: time.Second,
		Outputs: []FileDecl{{Name: "gfn://out1", SizeMB: 7.8}, {Name: "gfn://out2", SizeMB: 1.2}},
	})
	if rec.Status != StatusCompleted {
		t.Fatalf("status = %v", rec.Status)
	}
	size, ok := g.Catalog().Lookup("gfn://out1")
	if !ok || size != 7.8 {
		t.Fatalf("output not registered: size=%v ok=%v", size, ok)
	}
	if !g.Catalog().Has("gfn://out2") {
		t.Fatal("second output not registered")
	}
}

func TestMissingInputFailsJob(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(2))
	rec := submitOne(t, eng, g, JobSpec{
		Name:    "consumer",
		Runtime: time.Second,
		Inputs:  []string{"gfn://absent"},
	})
	if rec.Status != StatusFailed {
		t.Fatalf("status = %v, want failed", rec.Status)
	}
	if !errors.Is(rec.Err, ErrNoSuchFile) {
		t.Fatalf("err = %v, want ErrNoSuchFile", rec.Err)
	}
	var fe *FileError
	if !errors.As(rec.Err, &fe) || fe.File != "gfn://absent" {
		t.Fatalf("error does not identify the missing file: %v", rec.Err)
	}
}

func TestInputTransferTime(t *testing.T) {
	cfg := quiet(2)
	cfg.Clusters[0].TransferMBps = 10
	cfg.Overheads.TransferLatency = time.Second
	eng := sim.NewEngine()
	g := New(eng, cfg)
	g.Catalog().Register("gfn://img", 100) // 100 MB at 10 MB/s = 10s + 1s latency
	rec := submitOne(t, eng, g, JobSpec{Name: "j", Inputs: []string{"gfn://img"}, Runtime: time.Second})
	// submit 2 + broker 3 + dispatch 5 + transfer 11 = 21s overhead.
	if got, want := rec.Overhead(), 21*time.Second; got != want {
		t.Fatalf("overhead = %v, want %v", got, want)
	}
}

func TestNodeContention(t *testing.T) {
	// 1 node, 2 jobs of 10s: second job queues behind the first.
	eng := sim.NewEngine()
	g := New(eng, quiet(1))
	done := 0
	for i := 0; i < 2; i++ {
		g.Submit(JobSpec{Runtime: 10 * time.Second}, func(*JobRecord) { done++ })
	}
	eng.Run()
	if done != 2 {
		t.Fatalf("done = %d", done)
	}
	r0, r1 := g.Records()[0], g.Records()[1]
	if r1.Started < r0.Completed {
		t.Fatalf("second job started at %v before first completed at %v on a 1-node grid",
			r1.Started, r0.Completed)
	}
}

func TestParallelismAcrossNodes(t *testing.T) {
	// 8 nodes, 8 jobs: all run roughly concurrently; makespan far below 8x serial.
	eng := sim.NewEngine()
	g := New(eng, quiet(8))
	for i := 0; i < 8; i++ {
		g.Submit(JobSpec{Runtime: 100 * time.Second}, func(*JobRecord) {})
	}
	eng.Run()
	// Serialized submission adds 2s per job; everything else overlaps.
	// Upper bound: last submit at 16s + 3 + 5 + 100 = 124s.
	if eng.Now() > sim.Time(125*time.Second) {
		t.Fatalf("8 jobs on 8 nodes took %v, want ≤ ~124s", eng.Now())
	}
}

func TestHeterogeneousNodeSpeeds(t *testing.T) {
	cfg := quiet(16)
	cfg.Clusters[0].MinSpeed = 0.5
	cfg.Clusters[0].MaxSpeed = 2.0
	eng := sim.NewEngine()
	g := New(eng, cfg)
	var spans []time.Duration
	for i := 0; i < 16; i++ {
		g.Submit(JobSpec{Runtime: 100 * time.Second}, func(r *JobRecord) {
			spans = append(spans, time.Duration(r.Completed-r.InputDone))
		})
	}
	eng.Run()
	min, max := spans[0], spans[0]
	for _, s := range spans {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if min < 50*time.Second || max > 200*time.Second {
		t.Fatalf("compute spans outside speed bounds: min=%v max=%v", min, max)
	}
	if max == min {
		t.Fatal("node speeds not heterogeneous: all compute spans equal")
	}
}

func TestFailureResubmission(t *testing.T) {
	cfg := quiet(4)
	cfg.Failures = FailureConfig{Probability: 0.5, DetectDelay: time.Minute, MaxRetries: 50}
	cfg.Seed = 3
	eng := sim.NewEngine()
	g := New(eng, cfg)
	completed := 0
	for i := 0; i < 40; i++ {
		g.Submit(JobSpec{Runtime: 10 * time.Second}, func(r *JobRecord) {
			if r.Status == StatusCompleted {
				completed++
			}
		})
	}
	eng.Run()
	if completed != 40 {
		t.Fatalf("completed = %d, want 40 (resubmission should be transparent)", completed)
	}
	st := g.Overheads()
	if st.Resubmits == 0 {
		t.Fatal("p=0.5 produced zero resubmissions across 40 jobs")
	}
}

func TestFailureExhaustsRetries(t *testing.T) {
	cfg := quiet(4)
	cfg.Failures = FailureConfig{Probability: 1.0, DetectDelay: time.Second, MaxRetries: 3}
	eng := sim.NewEngine()
	g := New(eng, cfg)
	rec := submitOne(t, eng, g, JobSpec{Name: "doomed", Runtime: time.Second})
	if rec.Status != StatusFailed {
		t.Fatalf("status = %v, want failed", rec.Status)
	}
	if !errors.Is(rec.Err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", rec.Err)
	}
	if rec.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (MaxRetries)", rec.Attempts)
	}
}

func TestBackgroundLoadDelaysForeground(t *testing.T) {
	mk := func(bg bool) time.Duration {
		cfg := quiet(4)
		cfg.Seed = 7
		if bg {
			cfg.Clusters[0].BackgroundMeanIAT = 30 * time.Second
			cfg.Clusters[0].BackgroundMeanDur = 10 * time.Minute
			cfg.Clusters[0].BackgroundSDDur = 5 * time.Minute
			cfg.BackgroundHorizon = 2 * time.Hour
		}
		eng := sim.NewEngine()
		g := New(eng, cfg)
		var last sim.Time
		done := 0
		for i := 0; i < 12; i++ {
			g.Submit(JobSpec{Runtime: time.Minute}, func(r *JobRecord) {
				done++
				if r.Completed > last {
					last = r.Completed
				}
			})
		}
		for done < 12 && eng.Step() {
		}
		if done != 12 {
			t.Fatal("jobs did not finish")
		}
		return time.Duration(last)
	}
	loaded, empty := mk(true), mk(false)
	if loaded <= empty {
		t.Fatalf("background load did not increase makespan: loaded=%v empty=%v", loaded, empty)
	}
}

func TestBackgroundHorizonTerminates(t *testing.T) {
	cfg := quiet(4)
	cfg.Clusters[0].BackgroundMeanIAT = time.Second
	cfg.Clusters[0].BackgroundMeanDur = 2 * time.Second
	cfg.Clusters[0].BackgroundSDDur = time.Second
	cfg.BackgroundHorizon = time.Minute
	eng := sim.NewEngine()
	New(eng, cfg)
	eng.Run() // must terminate: generator stops at the horizon
	if eng.Now() < sim.Time(50*time.Second) {
		t.Fatalf("background generation stopped too early: %v", eng.Now())
	}
}

func TestBrokerSpreadsLoad(t *testing.T) {
	cfg := quiet(0)
	cfg.Clusters = []ClusterConfig{
		{Name: "a", Nodes: 4, MinSpeed: 1, MaxSpeed: 1, TransferMBps: 1e12, TransferStreams: 4},
		{Name: "b", Nodes: 4, MinSpeed: 1, MaxSpeed: 1, TransferMBps: 1e12, TransferStreams: 4},
	}
	eng := sim.NewEngine()
	g := New(eng, cfg)
	for i := 0; i < 16; i++ {
		g.Submit(JobSpec{Runtime: time.Hour}, func(*JobRecord) {})
	}
	eng.Run()
	seen := map[string]int{}
	for _, r := range g.Records() {
		seen[r.Cluster]++
	}
	if seen["a"] == 0 || seen["b"] == 0 {
		t.Fatalf("broker sent every job to one cluster: %v", seen)
	}
}

func TestOverheadStatsSane(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BackgroundHorizon = 6 * time.Hour
	eng := sim.NewEngine()
	g := New(eng, cfg)
	done := 0
	for i := 0; i < 50; i++ {
		g.Submit(JobSpec{Runtime: 5 * time.Minute}, func(*JobRecord) { done++ })
	}
	for done < 50 && eng.Step() {
	}
	st := g.Overheads()
	if st.Jobs == 0 {
		t.Fatal("no completed jobs")
	}
	if st.Mean < 30*time.Second || st.Mean > 20*time.Minute {
		t.Fatalf("default-config mean overhead %v implausible (want minutes-scale)", st.Mean)
	}
	if st.SD == 0 {
		t.Fatal("overhead has zero variance on a production-grid model")
	}
	if st.Min > st.P50 || st.P50 > st.P90 || st.P90 > st.Max {
		t.Fatalf("percentiles out of order: %+v", st)
	}
	if st.String() == "" {
		t.Fatal("empty stats string")
	}
}

func TestOverheadStatsEmpty(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(1))
	st := g.Overheads()
	if st.Jobs != 0 || st.String() != "no completed jobs" {
		t.Fatalf("empty stats = %+v %q", st, st.String())
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []sim.Time {
		cfg := DefaultConfig()
		cfg.BackgroundHorizon = 4 * time.Hour
		eng := sim.NewEngine()
		g := New(eng, cfg)
		var times []sim.Time
		done := 0
		for i := 0; i < 20; i++ {
			g.Submit(JobSpec{Runtime: time.Minute}, func(r *JobRecord) {
				done++
				times = append(times, r.Completed)
			})
		}
		for done < 20 && eng.Step() {
		}
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different completion counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run not deterministic at job %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestTotalAndBusyNodes(t *testing.T) {
	cfg := quiet(4)
	eng := sim.NewEngine()
	g := New(eng, cfg)
	if g.TotalNodes() != 4 {
		t.Fatalf("TotalNodes = %d, want 4", g.TotalNodes())
	}
	g.Submit(JobSpec{Runtime: time.Hour}, func(*JobRecord) {})
	eng.RunUntil(sim.Time(30 * time.Second))
	if g.BusyNodes() != 1 {
		t.Fatalf("BusyNodes = %d, want 1 while job is running", g.BusyNodes())
	}
	if g.QueuedJobs() != 0 {
		t.Fatalf("QueuedJobs = %d, want 0", g.QueuedJobs())
	}
}

func TestIdealGridZeroOverhead(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, IdealConfig(8))
	rec := submitOne(t, eng, g, JobSpec{Runtime: 42 * time.Second})
	if rec.Overhead() != 0 {
		t.Fatalf("ideal grid overhead = %v, want 0", rec.Overhead())
	}
	if rec.Makespan() != 42*time.Second {
		t.Fatalf("ideal grid makespan = %v, want 42s", rec.Makespan())
	}
}

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if c.Len() != 0 || c.Has("x") {
		t.Fatal("new catalog not empty")
	}
	c.Register("b", 2)
	c.Register("a", 1)
	c.Register("a", 3) // overwrite
	if size, ok := c.Lookup("a"); !ok || size != 3 {
		t.Fatalf("Lookup(a) = %v,%v want 3,true", size, ok)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Names() = %v", names)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[JobStatus]string{
		StatusSubmitted: "submitted", StatusRunning: "running",
		StatusCompleted: "completed", StatusFailed: "failed",
	}
	for s, want := range cases {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if JobStatus(99).String() == "" {
		t.Error("unknown status renders empty")
	}
}

func TestSubmitNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Submit(nil) did not panic")
		}
	}()
	New(sim.NewEngine(), quiet(1)).Submit(JobSpec{}, nil)
}

func TestNoClustersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with no clusters did not panic")
		}
	}()
	New(sim.NewEngine(), Config{})
}

// Property: on a quiet grid, a job's phase timestamps are monotone
// non-decreasing for any runtime.
func TestQuickPhaseMonotonicity(t *testing.T) {
	f := func(runtimeSec uint16, seed uint64) bool {
		cfg := quiet(2)
		cfg.Seed = seed
		eng := sim.NewEngine()
		g := New(eng, cfg)
		var rec *JobRecord
		g.Submit(JobSpec{Runtime: time.Duration(runtimeSec%3600) * time.Second},
			func(r *JobRecord) { rec = r })
		eng.Run()
		return rec != nil &&
			rec.Submitted <= rec.Accepted && rec.Accepted <= rec.Matched &&
			rec.Matched <= rec.Started && rec.Started <= rec.InputDone &&
			rec.InputDone <= rec.Completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: n serial jobs on one node never overlap compute phases.
func TestQuickNoOversubscription(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%6) + 2
		eng := sim.NewEngine()
		g := New(eng, quiet(1))
		for i := 0; i < n; i++ {
			g.Submit(JobSpec{Runtime: 10 * time.Second}, func(*JobRecord) {})
		}
		eng.Run()
		recs := g.Records()
		for i := 1; i < len(recs); i++ {
			if recs[i].Started < recs[i-1].Completed {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
