package grid

import (
	"testing"
	"testing/quick"
	"time"
)

// matrixGrids and matrixClusters are the site universe of the
// generalization property: every ordered cross-grid pair of matrixGrids
// can be enumerated, and the empty entries exercise the grid-level-view
// and unplaced cases.
var (
	matrixGrids    = []string{"", "g0", "g1", "g2", "g3"}
	matrixClusters = []string{"", "ce00", "ce01"}
)

// site decodes two generator bytes into a site of the universe.
func site(g, c byte) Site {
	return Site{
		Grid:    matrixGrids[int(g)%len(matrixGrids)],
		Cluster: matrixClusters[int(c)%len(matrixClusters)],
	}
}

// fullMatrix returns a LinkMatrix listing every ordered cross-grid pair
// of the universe at the given link, over the given fallback.
func fullMatrix(l Link, fallback LinkModel) *LinkMatrix {
	m := &LinkMatrix{Pairs: make(map[GridPair]Link), Fallback: fallback}
	for _, from := range matrixGrids {
		for _, to := range matrixGrids {
			if from != to {
				m.Pairs[GridPair{From: from, To: to}] = l
			}
		}
	}
	return m
}

// TestLinkMatrixGeneralizesLinks is the strict-generalization property: a
// matrix with every cross-grid pair set to the class model's WAN constants
// (and the class model itself as fallback, for the intra-grid class) must
// price every (from, to) site pair bit-identically to the class model —
// Local flag, bandwidth and latency alike. It is what licenses swapping
// grid.Links for a measured per-pair matrix without re-validating the
// transfer model.
func TestLinkMatrixGeneralizesLinks(t *testing.T) {
	classes := []*Links{
		DefaultWAN(),
		{IntraGrid: Link{MBps: 5, Latency: time.Second}, WAN: Link{MBps: 1, Latency: 10 * time.Second}},
		{}, // the location-blind zero model: a zero WAN entry must degrade to local
	}
	for _, links := range classes {
		matrix := fullMatrix(links.WAN, links)
		f := func(fg, fc, tg, tc byte) bool {
			from, to := site(fg, fc), site(tg, tc)
			return matrix.Link(from, to) == links.Link(from, to)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("matrix diverges from class model %+v: %v", links, err)
		}
	}
}

// TestLinkMatrixOverridesAndFallback pins the matrix semantics directly:
// a listed pair is priced as listed (asymmetrically if so configured), an
// unlisted pair falls back to the class model, a nil fallback means
// local, and the always-local cases (unplaced, same cluster, grid-level
// view of resident data) are never consulted from the matrix.
func TestLinkMatrixOverridesAndFallback(t *testing.T) {
	fast := Link{MBps: 100, Latency: time.Second}
	slow := Link{MBps: 1, Latency: 30 * time.Second}
	m := &LinkMatrix{
		Pairs: map[GridPair]Link{
			{From: "g1", To: "g0"}: fast,
			{From: "g0", To: "g1"}: slow,
		},
		Fallback: DefaultWAN(),
	}
	a, b := Site{Grid: "g0", Cluster: "ce00"}, Site{Grid: "g1", Cluster: "ce00"}
	far := Site{Grid: "g9", Cluster: "ce00"}

	if got := m.Link(b, a); got != fast {
		t.Errorf("listed pair g1>g0 = %+v, want the fast link", got)
	}
	if got := m.Link(a, b); got != slow {
		t.Errorf("listed pair g0>g1 = %+v, want the slow link (asymmetric)", got)
	}
	if got, want := m.Link(far, a), DefaultWAN().Link(far, a); got != want {
		t.Errorf("unlisted pair = %+v, want the fallback's %+v", got, want)
	}
	if got := m.Link(Site{}, a); !got.Local {
		t.Errorf("unplaced replica = %+v, want local", got)
	}
	if got := m.Link(a, a); !got.Local {
		t.Errorf("same site = %+v, want local", got)
	}
	if got := m.Link(a, Site{Grid: "g0"}); !got.Local {
		t.Errorf("grid-level view of resident data = %+v, want local", got)
	}

	bare := &LinkMatrix{Pairs: map[GridPair]Link{{From: "g1", To: "g0"}: fast}}
	if got := bare.Link(far, a); !got.Local {
		t.Errorf("nil fallback unlisted pair = %+v, want local", got)
	}
	if got := bare.Link(b, a); got != fast {
		t.Errorf("nil fallback listed pair = %+v, want the fast link", got)
	}
}

// TestLinkMatrixIntraGridPair pins that a (g, g) entry prices cross-
// cluster movement inside one grid, while same-cluster and grid-level
// consumers stay local — the matrix can refine the intra-grid class too.
func TestLinkMatrixIntraGridPair(t *testing.T) {
	intra := Link{MBps: 50, Latency: 100 * time.Millisecond}
	m := &LinkMatrix{Pairs: map[GridPair]Link{{From: "g0", To: "g0"}: intra}}
	a := Site{Grid: "g0", Cluster: "ce00"}
	b := Site{Grid: "g0", Cluster: "ce01"}
	if got := m.Link(a, b); got != intra {
		t.Errorf("cross-cluster intra-grid = %+v, want the listed intra link", got)
	}
	if got := m.Link(a, a); !got.Local {
		t.Errorf("same cluster = %+v, want local", got)
	}
	if got := m.Link(a, Site{Grid: "g0"}); !got.Local {
		t.Errorf("grid-level consumer = %+v, want local", got)
	}
}
