package grid

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// storageSites are the two locations of the storage test rig: sA holds
// the capacity-limited element under test, sB the safety copies that make
// sA's residents evictable (eviction never drops a file's last copy).
var (
	sA = Site{Grid: "g1", Cluster: "cA"}
	sB = Site{Grid: "g2", Cluster: "cB"}
)

// newStorageCatalog returns a catalog with a manual clock: tests advance
// *now to order accesses without running an engine.
func newStorageCatalog(now *sim.Time) *Catalog {
	c := NewCatalog()
	c.now = func() sim.Time { return *now }
	return c
}

// seed registers n 10 MB files (twoCopies adds the sB safety replica) and
// returns their names.
func seed(c *Catalog, prefix string, n int, twoCopies bool) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = prefix + string(rune('0'+i))
		c.RegisterAt(names[i], 10, sA)
		if twoCopies {
			c.AddReplica(names[i], sB)
		}
	}
	return names
}

// hasReplicaAt reports whether the file currently has a copy at the site.
func hasReplicaAt(c *Catalog, name string, site Site) bool {
	for _, r := range c.Replicas(name) {
		if r.Site == site {
			return true
		}
	}
	return false
}

// TestEvictionPolicyProperty drives both eviction policies through the
// same heavy-tailed access trace — one hot file staged ten times, then a
// long scan of cold single-access files — and pins their divergence: LRU
// evicts the hot file once the scan ages it out, popularity keeps the hot
// head resident and drains the cold tail instead. Shared properties hold
// for both: evictions only ever remove copies of files that keep another
// replica, accounting matches, and the element ends exactly full.
func TestEvictionPolicyProperty(t *testing.T) {
	const fileMB, capMB = 10.0, 40.0
	for _, tc := range []struct {
		policy       EvictionPolicy
		wantHotEvict bool
	}{
		{EvictLRU(), true},
		{EvictPopularity(), false},
	} {
		t.Run(tc.policy.Name(), func(t *testing.T) {
			var now sim.Time
			var plan StagePlan
			c := newStorageCatalog(&now)
			c.RegisterAt("hot", fileMB, sA)
			c.AddReplica("hot", sB)
			c.ConfigureSE(sA, capMB, tc.policy)

			// The hot head: ten fetches at distinct instants.
			for i := 0; i < 10; i++ {
				now += sim.Time(time.Second)
				c.stagePlanInto(&plan, []string{"hot"}, sA)
			}
			// The cold tail: each file registered, safety-copied, and
			// fetched once, at ever-later instants. Registration at sA
			// admits the file into the element, evicting under pressure.
			tail := make([]string, 8)
			for i := range tail {
				tail[i] = "tail" + string(rune('a'+i))
				now += sim.Time(time.Second)
				c.RegisterAt(tail[i], fileMB, sA)
				c.AddReplica(tail[i], sB)
				c.stagePlanInto(&plan, []string{tail[i]}, sA)
			}

			if got := hasReplicaAt(c, "hot", sA); got == tc.wantHotEvict {
				t.Errorf("%s: hot file resident at sA = %v, want %v",
					tc.policy.Name(), got, !tc.wantHotEvict)
			}
			// No eviction may orphan a file: every copy dropped from sA
			// must leave the sB replica, and nothing is unregistered.
			for _, name := range append([]string{"hot"}, tail...) {
				if !c.Has(name) {
					t.Fatalf("%s: file %s vanished from the catalog", tc.policy.Name(), name)
				}
				if len(c.Replicas(name)) == 0 {
					t.Errorf("%s: file %s lost its last replica to eviction", tc.policy.Name(), name)
				}
			}
			st := c.SEStats()
			if len(st) != 1 || st[0].Site != sA {
				t.Fatalf("%s: SEStats = %+v, want exactly the sA element", tc.policy.Name(), st)
			}
			// 1 hot + 8 tail files into a 4-slot element: 5 evictions,
			// ending exactly full with the peak never past one incoming
			// file over capacity.
			if st[0].Files != 4 || st[0].UsedMB != capMB {
				t.Errorf("%s: element holds %d files / %v MB, want 4 / %v",
					tc.policy.Name(), st[0].Files, st[0].UsedMB, capMB)
			}
			if st[0].Evictions != 5 || st[0].EvictedMB != 5*fileMB {
				t.Errorf("%s: evictions = %d (%v MB), want 5 (%v)",
					tc.policy.Name(), st[0].Evictions, st[0].EvictedMB, 5*fileMB)
			}
			if st[0].PeakMB > capMB {
				t.Errorf("%s: peak %v exceeded capacity %v — eviction ran after admission",
					tc.policy.Name(), st[0].PeakMB, capMB)
			}
		})
	}
}

// TestEvictionRespectsReplicaFloor pins the floor guard: a file at or
// below the replication floor is never an eviction victim, even under
// capacity pressure — the element overflows instead (soft capacity), and
// the overflow shows in the gauge's level and peak.
func TestEvictionRespectsReplicaFloor(t *testing.T) {
	var now sim.Time
	c := newStorageCatalog(&now)
	c.SetReplicaFloor(2)
	// Two files with exactly two copies each (at the floor: protected)
	// and one with three (above the floor: the only legal victim).
	seed(c, "pinned", 2, true)
	c.RegisterAt("spare", 10, sA)
	c.AddReplica("spare", sB)
	c.AddReplica("spare", Site{Grid: "g3"})
	c.ConfigureSE(sA, 30, EvictLRU())

	now += sim.Time(time.Minute)
	c.RegisterAt("incoming", 10, sA)
	c.AddReplica("incoming", sB)

	if hasReplicaAt(c, "spare", sA) {
		t.Error("the above-floor file survived while the element was over capacity")
	}
	for _, name := range []string{"pinned0", "pinned1"} {
		if !hasReplicaAt(c, name, sA) {
			t.Errorf("at-floor file %s was evicted", name)
		}
	}

	// Fill past capacity with only protected files left: the element
	// must overflow rather than drop anyone below the floor.
	now += sim.Time(time.Minute)
	c.RegisterAt("overflow", 10, sA)
	c.AddReplica("overflow", sB)
	st := c.SEStats()[0]
	if st.UsedMB != 40 || st.PeakMB != 40 {
		t.Errorf("element level/peak = %v/%v MB, want 40/40 (soft-capacity overflow)", st.UsedMB, st.PeakMB)
	}
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want exactly the one above-floor victim", st.Evictions)
	}
	for _, name := range []string{"pinned0", "pinned1", "incoming", "overflow"} {
		if !hasReplicaAt(c, name, sA) {
			t.Errorf("protected file %s missing from the overflowing element", name)
		}
	}
}

// TestRemoveReplicaAndUnregister pins the deterministic set maintenance:
// removals keep the sorted-by-site invariant, removing the last copy
// leaves the name registered-but-unavailable (the replica-lost planning
// path), and Unregister deletes the name outright (the missing path).
func TestRemoveReplicaAndUnregister(t *testing.T) {
	c := NewCatalog()
	c.RegisterAt("f", 50, sB) // registration order deliberately unsorted
	c.AddReplica("f", sA)
	c.AddReplica("f", Site{Grid: "g0"})

	if !c.RemoveReplica("f", sB) {
		t.Fatal("RemoveReplica of an existing copy reported false")
	}
	if c.RemoveReplica("f", sB) {
		t.Error("RemoveReplica of an absent copy reported true")
	}
	if c.RemoveReplica("ghost", sA) {
		t.Error("RemoveReplica of an unregistered name reported true")
	}
	reps := c.Replicas("f")
	if len(reps) != 2 || reps[0].Site != (Site{Grid: "g0"}) || reps[1].Site != sA {
		t.Fatalf("replica set after removal = %+v, want [g0, sA] in site order", reps)
	}
	for i := 1; i < len(reps); i++ {
		if reps[i-1].Site.key() >= reps[i].Site.key() {
			t.Fatal("sorted-by-site invariant broken after RemoveReplica")
		}
	}

	// Drain to empty: the name stays registered, planning reports the
	// file unavailable (not missing), and stage estimates refuse it.
	c.RemoveReplica("f", Site{Grid: "g0"})
	c.RemoveReplica("f", sA)
	if !c.Has("f") {
		t.Fatal("removing the last replica unregistered the name")
	}
	p := c.Plan([]string{"f"}, sA)
	if p.Missing != "" || p.Unavailable != "f" {
		t.Errorf("plan over an empty replica set: Missing=%q Unavailable=%q, want Unavailable=f", p.Missing, p.Unavailable)
	}

	if !c.Unregister("f") {
		t.Fatal("Unregister of a registered name reported false")
	}
	if c.Unregister("f") {
		t.Error("Unregister of an unknown name reported true")
	}
	if p := c.Plan([]string{"f"}, sA); p.Missing != "f" {
		t.Errorf("plan after Unregister: Missing=%q, want f", p.Missing)
	}
}

// TestPlanSkipsDarkReplicas pins dark-replica avoidance: planning picks
// the cheapest live replica, degrades to remote copies when the local SE
// dies, reports Unavailable when every copy is dark, and recovers exactly
// when the elements do.
func TestPlanSkipsDarkReplicas(t *testing.T) {
	c := NewCatalog()
	c.SetLinks(&Links{WAN: Link{MBps: 2, Latency: 5 * time.Second}})
	c.RegisterAt("f", 100, sA)
	c.AddReplica("f", sB)

	if p := c.Plan([]string{"f"}, sA); p.LocalMB != 100 || p.RemoteMB != 0 {
		t.Fatalf("clean plan = %+v, want the local sA replica", p)
	}

	c.SetSEDown(sA, true)
	p := c.Plan([]string{"f"}, sA)
	if p.Unavailable != "" || p.RemoteMB != 100 || p.LocalMB != 0 {
		t.Fatalf("plan with sA dark = %+v, want the remote sB replica", p)
	}
	// The surviving copy is the last live one across a non-local link:
	// the fragile class the safety-aware broker penalizes.
	if p.FragileMB != 100 || p.FragileTime != p.RemoteTime {
		t.Errorf("fragile accounting = %v MB / %v, want 100 / %v", p.FragileMB, p.FragileTime, p.RemoteTime)
	}
	if live := c.LiveReplicas("f"); len(live) != 1 || live[0].Site != sB {
		t.Errorf("LiveReplicas = %+v, want the sB copy only", live)
	}

	c.SetSEDown(sB, true)
	if p := c.Plan([]string{"f"}, sA); p.Unavailable != "f" {
		t.Errorf("plan with every copy dark: Unavailable=%q, want f", p.Unavailable)
	}

	c.SetSEDown(sA, false)
	c.SetSEDown(sB, false)
	if p := c.Plan([]string{"f"}, sA); p.Unavailable != "" || p.LocalMB != 100 {
		t.Errorf("plan after recovery = %+v, want the local replica back", p)
	}
	if c.anyDark() {
		t.Error("catalog still reports darkness after both elements recovered")
	}
}

// TestGridDarknessDarkensReplicas pins the satellite fix: a grid going
// dark (compute outage or storage outage alike) darkens every replica on
// it, including cluster sites never explicitly configured with an SE.
func TestGridDarknessDarkensReplicas(t *testing.T) {
	c := NewCatalog()
	c.setGridDark("g1", true)
	if !c.SiteDark(sA) || !c.SiteDark(Site{Grid: "g1"}) {
		t.Error("sites of a dark grid report as live")
	}
	if c.SiteDark(sB) || c.SiteDark(Site{}) {
		t.Error("sites outside the dark grid (or unplaced) report as dark")
	}
	c.setGridDark("g1", false)
	if c.SiteDark(sA) || c.anyDark() {
		t.Error("grid recovery did not clear the darkness")
	}
}

// TestUnplacedReplicaNeverDark pins the compatibility contract: unplaced
// replicas (the location-free Register path) are local everywhere and
// survive any outage, so location-blind code never sees Unavailable.
func TestUnplacedReplicaNeverDark(t *testing.T) {
	c := NewCatalog()
	c.Register("f", 10)
	c.setGridDark("g1", true)
	c.SetSEDown(sB, true)
	if p := c.Plan([]string{"f"}, sA); p.Missing != "" || p.Unavailable != "" || p.LocalMB != 10 {
		t.Errorf("unplaced replica planned %+v under total darkness, want plain local", p)
	}
}
