package grid

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

// wanGrid returns a quiet named grid with a WAN link model priced so a
// 30 MB cross-grid fetch costs exactly 20 s (5 s latency + 30/2 MBps).
func wanGrid(eng *sim.Engine, nodes int) *Grid {
	cfg := quiet(nodes)
	cfg.Name = "g0"
	g := New(eng, cfg)
	g.Catalog().SetLinks(&Links{WAN: Link{MBps: 2, Latency: 5 * time.Second}})
	return g
}

// submitMany submits n identical remote-input jobs at once and runs the
// engine to completion, returning the records in submission order.
func submitMany(t *testing.T, eng *sim.Engine, g *Grid, n int) []*JobRecord {
	t.Helper()
	recs := make([]*JobRecord, n)
	done := 0
	for i := 0; i < n; i++ {
		i := i
		g.Submit(JobSpec{Name: fmt.Sprintf("j%d", i), Inputs: []string{"gfn://far"}, Runtime: time.Second},
			func(r *JobRecord) { recs[i] = r; done++ })
	}
	eng.Run()
	if done != n {
		t.Fatalf("completed %d of %d jobs", done, n)
	}
	for i, r := range recs {
		if r.Status != StatusCompleted {
			t.Fatalf("job %d: status %v (%v)", i, r.Status, r.Err)
		}
	}
	return recs
}

// TestContendedChannelSerializes pins the fabric's core behaviour: three
// concurrent 20 s fetches over a capacity-1 (g1 → g0) channel are granted
// FIFO and finish serialized, each later job's WANWait growing by exactly
// the residual hold time in front of it — and the whole schedule is
// bit-identical across runs.
func TestContendedChannelSerializes(t *testing.T) {
	run := func() ([]*JobRecord, *Grid) {
		eng := sim.NewEngine()
		g := wanGrid(eng, 4)
		g.Catalog().SetFabric(NewFabric(eng, 1))
		g.Catalog().RegisterAt("gfn://far", 30, Site{Grid: "g1", Cluster: "ce00"})
		return submitMany(t, eng, g, 3), g
	}
	recs, g := run()

	// Serialized UI (2 s) and fixed broker (3 s) + dispatch (5 s) put the
	// three stage-ins at 10 s, 12 s, 14 s. The 20 s fetches then serialize
	// on the capacity-1 channel: grants at 10, 30, 50.
	wantInputDone := []sim.Time{
		30 * time.Second, // 10 + 20, no wait
		50 * time.Second, // arrived 12, granted 30, +20
		70 * time.Second, // arrived 14, granted 50, +20
	}
	wantWait := []time.Duration{0, 18 * time.Second, 36 * time.Second}
	for i, r := range recs {
		if r.InputDone != wantInputDone[i] {
			t.Errorf("job %d InputDone = %v, want %v", i, r.InputDone, wantInputDone[i])
		}
		if r.WANWait != wantWait[i] {
			t.Errorf("job %d WANWait = %v, want %v", i, r.WANWait, wantWait[i])
		}
		if r.RemoteFetch != 20*time.Second || r.WANFetch != 20*time.Second {
			t.Errorf("job %d RemoteFetch/WANFetch = %v/%v, want the nominal 20s for both (the only leg is cross-grid)",
				i, r.RemoteFetch, r.WANFetch)
		}
	}
	if got, want := g.WANWait(), 54*time.Second; got != want {
		t.Errorf("Grid.WANWait = %v, want %v", got, want)
	}
	st := g.ClusterStats()[0]
	if st.WANWait != 54*time.Second || st.RemoteFetches != 3 || st.RemoteInMB != 90 {
		t.Errorf("cluster stat = wait %v / %d fetches / %v MB, want 54s / 3 / 90", st.WANWait, st.RemoteFetches, st.RemoteInMB)
	}
	ps := g.Catalog().Fabric().PairStats()
	if len(ps) != 1 || ps[0].From != "g1" || ps[0].To != "g0" {
		t.Fatalf("PairStats = %+v, want one (g1, g0) channel", ps)
	}
	if ps[0].Capacity != 1 || ps[0].Grants != 3 || ps[0].PeakWaiting != 2 {
		t.Errorf("channel stats = %+v, want capacity 1, grants 3, peak waiting 2", ps[0])
	}

	// Bit-identical across runs.
	again, _ := run()
	for i := range recs {
		if recs[i].InputDone != again[i].InputDone || recs[i].WANWait != again[i].WANWait ||
			recs[i].Completed != again[i].Completed {
			t.Fatalf("run not deterministic at job %d: %+v vs %+v", i, recs[i], again[i])
		}
	}
}

// TestUncontendedFabricMatchesDelayModel pins the decay property the
// locality golden rests on: with enough streams that no fetch ever
// queues, every per-job timestamp matches the PR 4 pure-delay model (no
// fabric attached) exactly, and WANWait stays zero everywhere.
func TestUncontendedFabricMatchesDelayModel(t *testing.T) {
	run := func(fabric bool) []*JobRecord {
		eng := sim.NewEngine()
		g := wanGrid(eng, 4)
		if fabric {
			g.Catalog().SetFabric(NewFabric(eng, 3))
		}
		g.Catalog().RegisterAt("gfn://far", 30, Site{Grid: "g1", Cluster: "ce00"})
		return submitMany(t, eng, g, 3)
	}
	delay, contended := run(false), run(true)
	for i := range delay {
		d, c := delay[i], contended[i]
		if d.Submitted != c.Submitted || d.Accepted != c.Accepted || d.Matched != c.Matched ||
			d.Started != c.Started || d.InputDone != c.InputDone || d.Completed != c.Completed {
			t.Errorf("job %d timestamps diverge: delay %+v vs fabric %+v", i, d, c)
		}
		if c.WANWait != 0 {
			t.Errorf("job %d WANWait = %v on an uncontended fabric, want 0", i, c.WANWait)
		}
		if d.RemoteFetch != c.RemoteFetch {
			t.Errorf("job %d RemoteFetch diverges: %v vs %v", i, d.RemoteFetch, c.RemoteFetch)
		}
	}
}

// TestWANWaitResetsPerAttempt pins the last-attempt contract of
// JobRecord.WANWait: a resubmitted job starts its wait accounting over,
// so an attempt that queued and then failed does not inflate the final
// record (and through it the broker's observed/nominal stretch
// telemetry).
func TestWANWaitResetsPerAttempt(t *testing.T) {
	eng := sim.NewEngine()
	cfg := quiet(4)
	cfg.Name = "g0"
	// Every compute fails: the job retries once and fails terminally, so
	// the final record describes the second attempt.
	cfg.Failures = FailureConfig{Probability: 1, DetectDelay: 10 * time.Second, MaxRetries: 2}
	g := New(eng, cfg)
	g.Catalog().SetLinks(&Links{WAN: Link{MBps: 2, Latency: 5 * time.Second}})
	fab := NewFabric(eng, 1)
	g.Catalog().SetFabric(fab)
	g.Catalog().RegisterAt("gfn://far", 30, Site{Grid: "g1", Cluster: "ce00"})
	// Hold the channel so only the first attempt (stage-in at 10 s) has
	// to queue; by the retry the channel is long free.
	fab.Channel("g1", "g0").Use(30*time.Second, nil)

	var final *JobRecord
	g.Submit(JobSpec{Name: "j", Inputs: []string{"gfn://far"}, Runtime: time.Second},
		func(r *JobRecord) { final = r })
	eng.Run()
	if final == nil || final.Status != StatusFailed || final.Attempts != 2 {
		t.Fatalf("want a 2-attempt terminal failure, got %+v", final)
	}
	if final.WANWait != 0 {
		t.Errorf("final WANWait = %v, want 0 (the first attempt's 20s queue must not leak into the last attempt)", final.WANWait)
	}
	if final.RemoteFetch != 20*time.Second || final.WANFetch != 20*time.Second {
		t.Errorf("final RemoteFetch/WANFetch = %v/%v, want the nominal 20s for both", final.RemoteFetch, final.WANFetch)
	}
	// The cluster accounting, by contrast, is cumulative across attempts.
	if got, want := g.WANWait(), 20*time.Second; got != want {
		t.Errorf("Grid.WANWait = %v, want %v (the wait actually paid)", got, want)
	}
}

// TestIntraGridLegsBypassWANChannels pins the WAN/intra-grid split under
// a fabric: a same-grid remote leg is a pure delay (it never occupies a
// channel) and is excluded from the WANFetch nominal, so intra-grid
// congestion can neither stall WAN transfers nor dilute the stretch
// signal the broker builds from WANFetch.
func TestIntraGridLegsBypassWANChannels(t *testing.T) {
	eng := sim.NewEngine()
	cfg := quiet(4)
	cfg.Name = "g0"
	g := New(eng, cfg)
	g.Catalog().SetLinks(&Links{
		IntraGrid: Link{MBps: 1, Latency: 10 * time.Second}, // 40 s for 30 MB
		WAN:       Link{MBps: 2, Latency: 5 * time.Second},  // 20 s for 30 MB
	})
	fab := NewFabric(eng, 1)
	g.Catalog().SetFabric(fab)
	g.Catalog().RegisterAt("gfn://near", 30, Site{Grid: "g0", Cluster: "elsewhere"})
	g.Catalog().RegisterAt("gfn://far", 30, Site{Grid: "g1", Cluster: "ce00"})

	var final *JobRecord
	g.Submit(JobSpec{Name: "j", Inputs: []string{"gfn://near", "gfn://far"}, Runtime: time.Second},
		func(r *JobRecord) { final = r })
	eng.Run()
	if final == nil || final.Status != StatusCompleted {
		t.Fatalf("job did not complete: %+v", final)
	}
	if final.RemoteFetch != 60*time.Second {
		t.Errorf("RemoteFetch = %v, want the 60s nominal of both legs", final.RemoteFetch)
	}
	if final.WANFetch != 20*time.Second {
		t.Errorf("WANFetch = %v, want the 20s cross-grid leg only", final.WANFetch)
	}
	if final.WANWait != 0 {
		t.Errorf("WANWait = %v, want 0 (nothing contended)", final.WANWait)
	}
	ps := fab.PairStats()
	if len(ps) != 1 || ps[0].From != "g1" || ps[0].Grants != 1 {
		t.Errorf("PairStats = %+v, want exactly one grant on the (g1, g0) channel and no (g0, g0) channel", ps)
	}
}

// TestDarkSettlementCountsInClusterStats pins the outage accounting: an
// attempt whose compute succeeds while the grid is dark is settled as an
// ErrGridDown failure, and that failure shows in the executing cluster's
// counters like any other (the record-level and cluster-level failure
// views must not diverge).
func TestDarkSettlementCountsInClusterStats(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(2))
	var final *JobRecord
	g.Submit(JobSpec{Name: "j", Runtime: 10 * time.Second}, func(r *JobRecord) { final = r })
	// Take the grid dark mid-compute: started at 10 s (2+3+5 overheads),
	// settling at 20 s.
	eng.Schedule(15*time.Second, func() { g.SetDown(true) })
	eng.Run()
	if final == nil || final.Status != StatusFailed || final.Err != ErrGridDown {
		t.Fatalf("want a terminal ErrGridDown failure, got %+v", final)
	}
	st := g.ClusterStats()[0]
	if st.ForegroundJobs != 1 || st.ForegroundFailed != 1 {
		t.Errorf("cluster stats = %d jobs / %d failed, want 1/1 (dark settlement must be counted)",
			st.ForegroundJobs, st.ForegroundFailed)
	}
}

// TestDarkUIFailureCountsOneAttempt pins the attempt accounting of the
// earliest casualty path: a submission that dies at the dark UI (before
// matchmaking ever runs) still records one attempt, so the derived
// resubmission count (Attempts−1 per terminal job) stays at zero instead
// of going negative.
func TestDarkUIFailureCountsOneAttempt(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(2))
	var final *JobRecord
	g.Submit(JobSpec{Name: "j", Runtime: time.Second}, func(r *JobRecord) { final = r })
	g.SetDown(true) // dark before the UI latency elapses
	eng.Run()
	if final == nil || final.Status != StatusFailed || final.Err != ErrGridDown {
		t.Fatalf("want a terminal ErrGridDown failure at the UI, got %+v", final)
	}
	if final.Attempts != 1 {
		t.Errorf("Attempts = %d, want 1 (the dark-UI settlement is an attempt)", final.Attempts)
	}
	if st := g.Overheads(); st.Resubmits != 0 || st.Failed != 1 {
		t.Errorf("Overheads = resubmits %d / failed %d, want 0 / 1", st.Resubmits, st.Failed)
	}
}

// TestPlanDetailedLegs pins the per-source-grid leg breakdown: inputs
// resolve into one leg per source grid in lexical order, aggregating
// sizes, files and serialized fetch time, while Plan leaves the
// breakdown unmaterialized.
func TestPlanDetailedLegs(t *testing.T) {
	c := NewCatalog()
	c.SetLinks(&Links{WAN: Link{MBps: 2, Latency: 5 * time.Second}})
	here := Site{Grid: "g0", Cluster: "ce00"}
	c.RegisterAt("a", 10, Site{Grid: "g2", Cluster: "x"})
	c.RegisterAt("b", 30, Site{Grid: "g1", Cluster: "x"})
	c.RegisterAt("c", 20, Site{Grid: "g1", Cluster: "y"})
	c.RegisterAt("d", 4, here)

	p := c.PlanDetailed([]string{"a", "b", "c", "d"}, here)
	if p.Missing != "" {
		t.Fatalf("unexpected missing %q", p.Missing)
	}
	if len(p.Remote) != 2 {
		t.Fatalf("legs = %+v, want two (g1, g2)", p.Remote)
	}
	g1, g2 := p.Remote[0], p.Remote[1]
	if g1.FromGrid != "g1" || g1.Files != 2 || g1.SizeMB != 50 || g1.Time != 10*time.Second+25*time.Second {
		t.Errorf("g1 leg = %+v, want 2 files, 50 MB, 35s", g1)
	}
	if g2.FromGrid != "g2" || g2.Files != 1 || g2.SizeMB != 10 || g2.Time != 5*time.Second+5*time.Second {
		t.Errorf("g2 leg = %+v, want 1 file, 10 MB, 10s", g2)
	}
	if g1.Time+g2.Time != p.RemoteTime {
		t.Errorf("legs sum to %v, RemoteTime %v", g1.Time+g2.Time, p.RemoteTime)
	}
	if agg := c.Plan([]string{"a", "b", "c", "d"}, here); agg.Remote != nil {
		t.Errorf("Plan materialized legs: %+v (hot path must stay allocation-free)", agg.Remote)
	} else if agg.RemoteTime != p.RemoteTime || agg.RemoteMB != p.RemoteMB {
		t.Errorf("Plan aggregates diverge from PlanDetailed: %+v vs %+v", agg, p)
	}
}

// TestMultiLegFetchWalksChannelsInOrder pins the contended multi-source
// stage-in: a job pulling from two grids holds each pair channel in
// lexical source order, so a competitor on only one of the pairs queues
// exactly behind that leg.
func TestMultiLegFetchWalksChannelsInOrder(t *testing.T) {
	eng := sim.NewEngine()
	g := wanGrid(eng, 4)
	g.Catalog().SetFabric(NewFabric(eng, 1))
	g.Catalog().RegisterAt("gfn://one", 30, Site{Grid: "g1", Cluster: "x"}) // 20 s leg
	g.Catalog().RegisterAt("gfn://two", 10, Site{Grid: "g2", Cluster: "x"}) // 10 s leg

	var both, single *JobRecord
	g.Submit(JobSpec{Name: "both", Inputs: []string{"gfn://two", "gfn://one"}, Runtime: time.Second},
		func(r *JobRecord) { both = r })
	g.Submit(JobSpec{Name: "single", Inputs: []string{"gfn://one"}, Runtime: time.Second},
		func(r *JobRecord) { single = r })
	eng.Run()
	if both == nil || single == nil || both.Status != StatusCompleted || single.Status != StatusCompleted {
		t.Fatalf("jobs did not complete: %+v / %+v", both, single)
	}
	// "both" stages at 10 s: g1 leg 10→30, then g2 leg 30→40 (legs in
	// lexical order although gfn://two was declared first).
	if both.InputDone != 40*time.Second || both.WANWait != 0 {
		t.Errorf("both: InputDone %v WANWait %v, want 40s and 0", both.InputDone, both.WANWait)
	}
	// "single" stages at 12 s and needs only the g1 channel, which frees
	// at 30 s: waited 18 s, fetched by 50 s.
	if single.InputDone != 50*time.Second || single.WANWait != 18*time.Second {
		t.Errorf("single: InputDone %v WANWait %v, want 50s and 18s", single.InputDone, single.WANWait)
	}
}
