package grid

import (
	"sort"

	"repro/internal/sim"
)

// SEFile describes one file resident on a storage element, as eviction
// policies see it: identity, size, and the access history the catalog
// records every time a stage-in actually fetches the file (planning and
// ranking do not count as accesses).
type SEFile struct {
	// Name is the file's GFN.
	Name string
	// SizeMB is the resident copy's size.
	SizeMB float64
	// LastAccess is the virtual instant the copy was last staged from (or
	// registered, for a never-read copy).
	LastAccess sim.Time
	// Hits counts the stage-ins that fetched this copy.
	Hits uint64
}

// EvictionPolicy orders a storage element's resident files for eviction
// under capacity pressure. Implementations must be pure functions of the
// two candidates — eviction runs inside the single-threaded engine and
// golden tests pin its drain order — and must totally order distinct
// candidates (use the file name as the final tie-break).
type EvictionPolicy interface {
	// Name identifies the policy in reports and CLI tables.
	Name() string
	// Before reports whether a should be evicted before b.
	Before(a, b SEFile) bool
}

// EvictLRU returns the least-recently-used eviction policy: the candidate
// with the oldest last access drains first, names breaking ties.
func EvictLRU() EvictionPolicy { return lruPolicy{} }

type lruPolicy struct{}

// Name identifies the policy.
func (lruPolicy) Name() string { return "lru" }

// Before implements EvictionPolicy: oldest last access first.
func (lruPolicy) Before(a, b SEFile) bool {
	if a.LastAccess != b.LastAccess {
		return a.LastAccess < b.LastAccess
	}
	return a.Name < b.Name
}

// EvictPopularity returns the popularity-weighted eviction policy: the
// candidate with the fewest recorded accesses drains first (coldest file
// loses its slot regardless of recency), last access and then name
// breaking ties. Under a heavy-tailed access trace it keeps the popular
// head resident where LRU churns it out during a long scan of the tail.
func EvictPopularity() EvictionPolicy { return popularityPolicy{} }

type popularityPolicy struct{}

// Name identifies the policy.
func (popularityPolicy) Name() string { return "popularity" }

// Before implements EvictionPolicy: fewest hits, then oldest access.
func (popularityPolicy) Before(a, b SEFile) bool {
	if a.Hits != b.Hits {
		return a.Hits < b.Hits
	}
	if a.LastAccess != b.LastAccess {
		return a.LastAccess < b.LastAccess
	}
	return a.Name < b.Name
}

// seFile is the per-resident-copy access record of one storage element.
type seFile struct {
	sizeMB     float64
	lastAccess sim.Time
	hits       uint64
}

// seState is one site's active storage element: a capacity gauge over the
// resident replicas, an eviction policy draining it under pressure, and
// an up/down flag making the site's replicas unreachable while dark.
type seState struct {
	site      Site
	gauge     *sim.Gauge
	policy    EvictionPolicy
	down      bool
	files     map[string]*seFile
	evictions uint64
	evictedMB float64
}

// SEStat summarizes one storage element's state and accounting.
type SEStat struct {
	// Site is the element's location.
	Site Site
	// CapacityMB is the configured capacity (zero means unlimited).
	CapacityMB float64
	// UsedMB is the resident bytes right now.
	UsedMB float64
	// PeakMB is the highest residency observed.
	PeakMB float64
	// Files counts the resident replicas.
	Files int
	// Evictions counts replicas drained under capacity pressure.
	Evictions uint64
	// EvictedMB totals the bytes those evictions freed.
	EvictedMB float64
	// Down reports whether the element is currently dark.
	Down bool
}

// ConfigureSE gives the site an active storage element with the given
// capacity in MB (non-positive means unlimited) and eviction policy (nil
// means EvictLRU). Replicas already resident at the site are adopted into
// the element's accounting. Configuring the unplaced (zero) site panics:
// an unplaced replica is local everywhere and can neither fill nor lose a
// storage element. Reconfiguring an existing element replaces capacity
// and policy but keeps residency, access history and the down flag.
func (c *Catalog) ConfigureSE(site Site, capacityMB float64, policy EvictionPolicy) {
	if site.IsZero() {
		panic("grid: ConfigureSE on the unplaced site")
	}
	if policy == nil {
		policy = EvictLRU()
	}
	if c.storage == nil {
		c.storage = make(map[string]*seState)
	}
	key := site.key()
	se, ok := c.storage[key]
	if !ok {
		se = &seState{site: site, files: make(map[string]*seFile)}
		c.storage[key] = se
		// Adopt replicas already pinned at the site, in lexical name order
		// so the gauge's floating-point accumulation is deterministic.
		for _, name := range c.Names() {
			e := c.files[name]
			for _, r := range e.reps {
				if r.Site == site {
					se.files[name] = &seFile{sizeMB: e.sizeMB, lastAccess: c.clock()}
				}
			}
		}
	}
	se.policy = policy
	gauge := sim.NewGauge(capacityMB)
	for _, name := range sortedKeys(se.files) {
		gauge.Add(se.files[name].sizeMB)
	}
	se.gauge = gauge
}

// SetSEDown marks the site's storage element dark (down = true) or
// recovered. A dark element's replicas are skipped by stage planning,
// in-flight fetch legs sourced from it fail retryably, and a consuming
// cluster whose own close SE is dark cannot stage at all. A site never
// configured with ConfigureSE gets an unlimited element implicitly, so
// any placed site can be taken dark. Taking an element dark triggers the
// repair hook for every file the darkness drops below the replica floor.
func (c *Catalog) SetSEDown(site Site, down bool) {
	if site.IsZero() {
		panic("grid: SetSEDown on the unplaced site")
	}
	se := c.storage[site.key()]
	if se == nil {
		c.ConfigureSE(site, 0, nil)
		se = c.storage[site.key()]
	}
	if se.down == down {
		return
	}
	se.down = down
	if down {
		c.darkSEs++
		c.scanBelowFloor()
	} else {
		c.darkSEs--
	}
}

// SEDown reports whether the site's storage element is dark (false for
// sites without an element).
func (c *Catalog) SEDown(site Site) bool {
	se := c.storage[site.key()]
	return se != nil && se.down
}

// setGridDark marks every storage element of the named grid dark (the
// grid itself went down, or its storage did — Grid.SetDown and
// Grid.SetStorageDown both push through here, which is what makes a
// compute-dark grid's replicas unfetchable). Darkening triggers the
// repair hook for files dropped below the replica floor.
func (c *Catalog) setGridDark(name string, dark bool) {
	if c.gridDark[name] == dark {
		return
	}
	if c.gridDark == nil {
		c.gridDark = make(map[string]bool)
	}
	c.gridDark[name] = dark
	if dark {
		c.darkGrids++
		c.scanBelowFloor()
	} else {
		c.darkGrids--
	}
}

// SiteDark reports whether the site's storage is currently unreachable:
// its grid is dark (a compute or storage outage of the whole grid) or its
// own storage element is down. The unplaced site is never dark.
func (c *Catalog) SiteDark(s Site) bool {
	if s.IsZero() {
		return false
	}
	if c.darkGrids > 0 && c.gridDark[s.Grid] {
		return true
	}
	if c.darkSEs > 0 {
		if se := c.storage[s.key()]; se != nil && se.down {
			return true
		}
	}
	return false
}

// anyDark reports whether any storage is currently dark — the gate that
// keeps replica liveness checks free on the location-blind hot paths.
func (c *Catalog) anyDark() bool { return c.darkGrids > 0 || c.darkSEs > 0 }

// storageActive reports whether any storage feature is in play — a
// configured element or a dark grid. While false, stage-in keeps the
// exact pre-storage event structure (the goldens' bit-identity
// guarantee); while true, remote fetches walk their legs individually so
// each leg can fail against a dead source.
func (c *Catalog) storageActive() bool { return len(c.storage) > 0 || c.anyDark() }

// SetReplicaFloor sets the replication floor k: eviction never drains a
// replica of a file with k or fewer copies, and the repair hook (if set)
// fires whenever a file's live copies drop below k. Zero or one means no
// floor beyond the implicit last-copy protection.
func (c *Catalog) SetReplicaFloor(k int) {
	if k < 0 {
		k = 0
	}
	c.floor = k
}

// ReplicaFloor returns the configured replication floor.
func (c *Catalog) ReplicaFloor() int { return c.floor }

// SetRepairHook registers the callback invoked, synchronously and inside
// the engine's virtual time, whenever a file's live replica count drops
// below the replica floor: on registration (a fresh single-copy file under
// a k≥2 floor), on replica removal, and on darkness transitions (every
// file the outage strands is reported, in lexical name order). The hook
// must not mutate the catalog re-entrantly beyond AddReplica-style calls;
// federations use it to schedule k-replication repair transfers.
func (c *Catalog) SetRepairHook(h func(name string)) { c.repair = h }

// floorOr1 returns the effective eviction floor: at least the last copy
// is always protected.
func (c *Catalog) floorOr1() int {
	if c.floor > 1 {
		return c.floor
	}
	return 1
}

// clock returns the current virtual time (zero before a grid binds its
// engine to the catalog).
func (c *Catalog) clock() sim.Time {
	if c.now == nil {
		return 0
	}
	return c.now()
}

// bindClock attaches the engine's clock for access-recency accounting.
// The first binder wins, so every member grid of a federation (one shared
// engine) can bind without clobbering.
func (c *Catalog) bindClock(eng *sim.Engine) {
	if c.now == nil {
		c.now = eng.Now
	}
}

// checkFloor fires the repair hook when the entry's live replicas fall
// below the floor. An unplaced replica satisfies any floor: it is local
// everywhere and can never go dark, so there is nothing to repair.
func (c *Catalog) checkFloor(name string, e *catEntry) {
	if c.repair == nil || c.floor <= 1 {
		return
	}
	if !c.belowFloor(e) {
		return
	}
	c.repair(name)
}

// belowFloor reports whether the entry's live replica set is below the
// replication floor (never true for entries with an unplaced replica).
func (c *Catalog) belowFloor(e *catEntry) bool {
	live := 0
	for _, r := range e.reps {
		if r.Site.IsZero() {
			return false
		}
		if !c.SiteDark(r.Site) {
			live++
		}
	}
	return live < c.floor
}

// scanBelowFloor reports every file below the replication floor to the
// repair hook, in lexical name order — the darkness-transition sweep.
func (c *Catalog) scanBelowFloor() {
	if c.repair == nil || c.floor <= 1 {
		return
	}
	for _, name := range c.Names() {
		if c.belowFloor(c.files[name]) {
			c.repair(name)
		}
	}
}

// addResident folds a newly-placed replica into its site's storage
// element (no-op for sites without one), evicting under capacity pressure
// first so the incoming file has room.
func (c *Catalog) addResident(name string, sizeMB float64, site Site) {
	if len(c.storage) == 0 || site.IsZero() {
		return
	}
	se := c.storage[site.key()]
	if se == nil {
		return
	}
	if _, ok := se.files[name]; ok {
		return
	}
	c.ensureRoom(se, name, sizeMB)
	se.files[name] = &seFile{sizeMB: sizeMB, lastAccess: c.clock()}
	se.gauge.Add(sizeMB)
}

// removeResident drops a replica from its site's storage element
// accounting (no-op for sites without one).
func (c *Catalog) removeResident(name string, site Site) {
	if len(c.storage) == 0 || site.IsZero() {
		return
	}
	se := c.storage[site.key()]
	if se == nil {
		return
	}
	f, ok := se.files[name]
	if !ok {
		return
	}
	delete(se.files, name)
	se.gauge.Remove(f.sizeMB)
}

// ensureRoom evicts resident replicas until the incoming file fits,
// draining in the element's policy order. The incoming file itself and
// any file at or below the replication floor are never victims; when
// nothing is evictable the element overflows (capacity is soft — the real
// SE would reject the write, but failing a stage-out over an accounting
// limit would deadlock repair, so overflow plus the gauge's peak record
// is the honest model).
func (c *Catalog) ensureRoom(se *seState, incoming string, sizeMB float64) {
	if se.gauge.Unlimited() {
		return
	}
	for se.gauge.Over(sizeMB) {
		victim := c.pickVictim(se, incoming)
		if victim == "" {
			return
		}
		c.evictReplica(se, victim)
	}
}

// pickVictim returns the policy-first evictable resident (empty when
// nothing is evictable). Candidates are scanned in lexical name order and
// compared under the element's policy, so the choice is deterministic
// regardless of map iteration order.
func (c *Catalog) pickVictim(se *seState, incoming string) string {
	floor := c.floorOr1()
	var best string
	var bestFile SEFile
	for _, name := range sortedKeys(se.files) {
		if name == incoming {
			continue
		}
		e := c.files[name]
		if e == nil || len(e.reps) <= floor {
			continue
		}
		f := se.files[name]
		cand := SEFile{Name: name, SizeMB: f.sizeMB, LastAccess: f.lastAccess, Hits: f.hits}
		if best == "" || se.policy.Before(cand, bestFile) {
			best, bestFile = name, cand
		}
	}
	return best
}

// evictReplica drains one resident replica from the element: the replica
// set loses the copy, the gauge frees its bytes, and the eviction
// counters grow. The floor guard in pickVictim guarantees the file keeps
// enough copies, so eviction never fires the repair hook.
func (c *Catalog) evictReplica(se *seState, name string) {
	f := se.files[name]
	se.evictions++
	se.evictedMB += f.sizeMB
	delete(se.files, name)
	se.gauge.Remove(f.sizeMB)
	c.dropReplica(name, se.site)
}

// touch records an actual stage-in access of the replica on its site's
// element (planning calls never touch — only fetches count).
func (c *Catalog) touch(name string, rep Replica) {
	if len(c.storage) == 0 || rep.Site.IsZero() {
		return
	}
	se := c.storage[rep.Site.key()]
	if se == nil {
		return
	}
	if f, ok := se.files[name]; ok {
		f.lastAccess = c.clock()
		f.hits++
	}
}

// legDark reports whether any source site contributing to the stage leg
// is currently dark — the liveness check the stage-in walk applies at leg
// start and leg completion, so a source dying mid-fetch fails the leg.
func (c *Catalog) legDark(l RemoteLeg) bool {
	if !c.anyDark() {
		return false
	}
	for _, s := range l.Sites {
		if c.SiteDark(s) {
			return true
		}
	}
	return false
}

// LiveReplicas returns the file's currently reachable replicas (dark
// sites excluded) in deterministic site order — nil for an unregistered
// name. Repair loops use it to pick a copy source.
func (c *Catalog) LiveReplicas(name string) []Replica {
	e, ok := c.files[name]
	if !ok {
		return nil
	}
	out := make([]Replica, 0, len(e.reps))
	for _, r := range e.reps {
		if !c.SiteDark(r.Site) {
			out = append(out, r)
		}
	}
	return out
}

// SEUsedMB returns the resident bytes of the site's configured storage
// element, or zero when the site has no element (passive, unlimited
// storage). It is the cheap point query behind capacity-aware placement
// decisions — repair targeting reads it per candidate grid without
// materializing the full SEStats slice.
func (c *Catalog) SEUsedMB(site Site) float64 {
	se, ok := c.storage[site.key()]
	if !ok {
		return 0
	}
	return se.gauge.Level()
}

// SEStats returns per-element statistics for every configured storage
// element, in deterministic site order.
func (c *Catalog) SEStats() []SEStat {
	out := make([]SEStat, 0, len(c.storage))
	for _, key := range sortedKeys(c.storage) {
		se := c.storage[key]
		out = append(out, SEStat{
			Site:       se.site,
			CapacityMB: se.gauge.Capacity(),
			UsedMB:     se.gauge.Level(),
			PeakMB:     se.gauge.Peak(),
			Files:      len(se.files),
			Evictions:  se.evictions,
			EvictedMB:  se.evictedMB,
			Down:       se.down,
		})
	}
	return out
}

// sortedKeys returns the map's keys in lexical order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	//moteur:orderinvariant keys are sorted immediately after collection
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
