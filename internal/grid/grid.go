// Package grid simulates an EGEE/LCG2-style production grid: a serialized
// submission User Interface, a matchmaking Resource Broker, computing
// elements (clusters of heterogeneous worker nodes behind FIFO batch
// queues), storage elements with a replica catalog, a file transfer model,
// multi-user background load, and job failures with transparent
// resubmission.
//
// The paper's evaluation platform is the EGEE production infrastructure;
// its findings hinge on the grid overhead (submission + scheduling +
// queuing + transfer) being large and highly variable. This package
// reproduces those mechanisms as a discrete-event model so that the
// enactor's optimizations (data parallelism, service parallelism, job
// grouping) act on the same levers as on the real infrastructure.
package grid

import (
	"fmt"
	"time"

	"repro/internal/arena"
	"repro/internal/rng"
	"repro/internal/sim"
)

// ClusterConfig describes one computing element.
type ClusterConfig struct {
	Name  string
	Nodes int // worker nodes
	// MinSpeed and MaxSpeed bound the per-job node speed factor (a job's
	// compute time is Runtime / speed). EGEE worker nodes are heterogeneous
	// commodity PCs.
	MinSpeed, MaxSpeed float64
	// TransferMBps is the bandwidth of the link between the cluster and its
	// close storage element, shared by TransferStreams concurrent streams.
	TransferMBps    float64
	TransferStreams int
	// Background (multi-user) load: Poisson arrivals of foreign jobs with
	// log-normally distributed durations occupying worker nodes.
	BackgroundMeanIAT time.Duration // mean inter-arrival time (0 disables)
	BackgroundMeanDur time.Duration
	BackgroundSDDur   time.Duration
}

// OverheadConfig groups the middleware latency distributions. All
// distributions are log-normal with the given mean and standard deviation,
// matching the paper's observation of a high and variable overhead.
type OverheadConfig struct {
	// SubmitMean/SD: per-job latency at the User Interface. Submissions are
	// serialized (one UI process), which bounds the submission throughput —
	// the mechanism behind the residual slope under full data parallelism.
	SubmitMean, SubmitSD time.Duration
	// BrokerMean/SD: matchmaking latency at the Resource Broker.
	BrokerMean, BrokerSD time.Duration
	// SubmitLoadFactor models middleware saturation: the effective
	// submission latency is multiplied by (1 + factor × queued requests).
	// Burst submission (data parallelism over a whole input set) drives the
	// User Interface and Resource Broker into their loaded regime, which
	// the paper observes as "the increasing load of the middleware
	// services on a production infrastructure cannot be neglected".
	SubmitLoadFactor float64
	// DispatchMean/SD: local resource management system overhead between a
	// worker node becoming available and the job actually starting.
	DispatchMean, DispatchSD time.Duration
	// TransferLatency is the fixed per-file transfer setup cost.
	TransferLatency time.Duration
}

// FailureConfig models job failures. A failing job consumes a uniform
// fraction of its runtime, is detected after DetectDelay, and is
// resubmitted transparently until MaxRetries total attempts have been made
// (as the paper's generic wrapper does; Fig. 6's narrative: "D0 was
// submitted twice because an error occurred").
type FailureConfig struct {
	Probability float64
	DetectDelay time.Duration
	MaxRetries  int
}

// Config assembles a grid.
type Config struct {
	// Name identifies the grid as a data location: replicas registered by
	// this grid's jobs carry it in their Site.Grid, and link models class
	// transfers as intra-grid or WAN by comparing it. A federation names
	// its members; standalone grids may leave it empty (all their
	// replicas then share the "" grid and stay intra-grid to each other).
	Name      string
	Clusters  []ClusterConfig
	Overheads OverheadConfig
	Failures  FailureConfig
	// BrokerSlots is the number of jobs the Resource Broker can match
	// concurrently.
	BrokerSlots int
	// BackgroundHorizon stops background load generation after this much
	// virtual time, so Engine.Run terminates in tests that drain all events.
	BackgroundHorizon time.Duration
	// StrictFIFOSubmit disables the fair-share gate at the UI: submissions
	// are paid in global arrival order regardless of tenant, so one
	// burst-submitting tenant occupies the whole queue ahead of everyone
	// else. The default (false) drains tenants round-robin. With a single
	// tenant the two policies are identical.
	StrictFIFOSubmit bool
	// TenantWeights gives fair-share weights to named tenants: the gate
	// drains a tenant with weight k up to k submissions per round-robin
	// round before moving on, so tenant A with weight 2 clears the UI
	// twice as often as weight-1 tenants under contention. Absent or
	// sub-1 entries mean weight 1; with no weights (or one tenant) the
	// gate is the plain round-robin it always was. Ignored under
	// StrictFIFOSubmit.
	TenantWeights map[string]int
	// StageRetries bounds the re-staging rounds of one job attempt after
	// a retryable storage failure (a replica source dark at leg start, a
	// source dying mid-fetch, or every copy of an input momentarily
	// unreachable): the attempt re-plans against the surviving replicas
	// up to this many times, with exponential sim-time backoff, before
	// the attempt fails — terminally with ErrReplicaLost when the blocker
	// was an input with no live copy left. Zero means 4.
	StageRetries int
	// StageRetryBackoff is the base backoff before the first re-staging
	// round; round n waits 2^n times it (the worker node is held
	// throughout, as a real wrapper's retry loop would hold it). Zero
	// means 30 seconds.
	StageRetryBackoff time.Duration
	// DataProximityWeight is the weight of the data-proximity term in the
	// broker's cluster ranking: each cluster's rank grows by Weight ×
	// (estimated seconds of non-local input fetching a job would pay
	// there), so clusters whose close SE already holds the job's inputs
	// win ties against equally-loaded remote ones. Zero disables the
	// term. With the default all-local link model the estimate is zero
	// everywhere, so the term only acts once a real topology is attached
	// to the catalog.
	DataProximityWeight float64
	Seed                uint64
}

// DefaultConfig returns a production-grid model: ten clusters, ~1380
// nodes total, ~75% background utilization, serialized submission with
// load-dependent middleware latency, and per-job queuing/dispatch overhead
// with a heavy tail. The scale is smaller than 2006 EGEE but the regime is
// the same: abundant CPU capacity, expensive and highly variable
// middleware (the paper's "around 10 minutes, ± 5 minutes").
func DefaultConfig() Config {
	clusters := make([]ClusterConfig, 0, 10)
	sizes := []int{288, 216, 192, 168, 144, 120, 96, 72, 48, 36}
	for i, n := range sizes {
		clusters = append(clusters, ClusterConfig{
			Name:              fmt.Sprintf("ce%02d", i),
			Nodes:             n,
			MinSpeed:          0.8,
			MaxSpeed:          1.3,
			TransferMBps:      10,
			TransferStreams:   4,
			BackgroundMeanIAT: time.Duration(float64(42*time.Second) * 288 / float64(n)),
			BackgroundMeanDur: 50 * time.Minute,
			BackgroundSDDur:   35 * time.Minute,
		})
	}
	return Config{
		Clusters: clusters,
		Overheads: OverheadConfig{
			SubmitMean: 20 * time.Second, SubmitSD: 9 * time.Second,
			// Calibrated so burst submission (a data-parallel stage of the
			// paper's experiment, 100+ queued requests) inflates the mean
			// UI latency by ~20–25% — the paper's loaded regime — while
			// serial (NOP) submission stays unloaded and Table 1's
			// optimization ordering (SP+DP < DP at every size) holds under
			// the median-of-5 protocol (bronze.TestMedianOrderingAt126;
			// single seeds can flip within noise at 126 pairs, and the
			// pinned golden seed is one that does). Larger factors make
			// the serialized UI the global bottleneck and invert the
			// ordering outright.
			SubmitLoadFactor: 0.002,
			BrokerMean:       25 * time.Second, BrokerSD: 15 * time.Second,
			DispatchMean: 90 * time.Second, DispatchSD: 180 * time.Second,
			TransferLatency: 2 * time.Second,
		},
		Failures: FailureConfig{
			Probability: 0.04,
			DetectDelay: 6 * time.Minute,
			MaxRetries:  5,
		},
		BrokerSlots:       4,
		BackgroundHorizon: 14 * 24 * time.Hour,
		// 100 s of estimated extra fetching outranks one fully-loaded
		// node of backlog — strong enough to steer jobs towards their
		// data once a link topology is attached, invisible (zero
		// estimate) before that.
		DataProximityWeight: 0.01,
		Seed:                1,
	}
}

// IdealConfig returns a frictionless grid: a single huge homogeneous
// cluster, zero middleware latency, no background load, no failures,
// instant transfers. On it, the enactor's measured makespans reproduce the
// theoretical model of Sec. 3.5 exactly, which is how the model equations
// are validated.
func IdealConfig(nodes int) Config {
	return Config{
		Clusters: []ClusterConfig{{
			Name:            "ideal",
			Nodes:           nodes,
			MinSpeed:        1,
			MaxSpeed:        1,
			TransferMBps:    1e12,
			TransferStreams: nodes,
		}},
		BrokerSlots:       nodes,
		BackgroundHorizon: 0,
		Seed:              1,
	}
}

// Grid is a simulated grid infrastructure bound to a simulation engine.
type Grid struct {
	Eng      *sim.Engine
	cfg      Config
	broker   *sim.Resource
	clusters []*cluster
	catalog  *Catalog
	rnd      *rng.Source
	records  []*JobRecord
	nextID   int
	tenants  map[string]*Tenant

	// recs arena-allocates the job records (chunked, so records stay
	// valid for the grid's lifetime without one heap object per job);
	// runs arena-allocates the pooled lifecycle contexts, recycled
	// through freeRuns at terminal settlement.
	recs     arena.Chunked[JobRecord]
	runs     arena.Chunked[jobRun]
	freeRuns []*jobRun

	// Fair-share submission gate in front of the serialized UI: one queue
	// per tenant, drained round-robin (see pumpSubmits).
	subQueues  map[string]*submitQueue
	subRing    []string // tenants in first-submission order
	subRR      int      // next ring slot to serve
	subServed  int      // submissions served to slot subRR this round
	subPending int      // accepted, UI latency not yet paid
	uiBusy     bool

	// down marks the grid dark (see SetDown): every job attempt fails
	// with ErrGridDown at its next lifecycle transition while the flag is
	// set. seDown marks the grid's storage dimension dark (see
	// SetStorageDown): compute proceeds, but no replica on the grid can
	// be fetched and no attempt can stage or register outputs here.
	down   bool
	seDown bool
}

// New builds a grid on the engine from the configuration, with its own
// empty replica catalog.
func New(eng *sim.Engine, cfg Config) *Grid {
	return NewWithCatalog(eng, cfg, nil)
}

// NewWithCatalog builds a grid on the engine from the configuration,
// backed by the given replica catalog. A nil catalog means a fresh empty
// one (the New behaviour). Sharing one catalog across several grids models
// a federated replica catalog: outputs registered by a job on one grid are
// immediately stageable by jobs on every other grid, which is what lets a
// federation broker consecutive workflow stages to different grids.
func NewWithCatalog(eng *sim.Engine, cfg Config, cat *Catalog) *Grid {
	if len(cfg.Clusters) == 0 {
		panic("grid: config has no clusters")
	}
	if cfg.BrokerSlots <= 0 {
		cfg.BrokerSlots = 1
	}
	if cat == nil {
		cat = NewCatalog()
	}
	g := &Grid{
		Eng:       eng,
		cfg:       cfg,
		broker:    sim.NewResource(eng, cfg.BrokerSlots),
		catalog:   cat,
		rnd:       rng.New(cfg.Seed),
		tenants:   make(map[string]*Tenant),
		subQueues: make(map[string]*submitQueue),
	}
	// The catalog needs the engine clock for storage access-recency
	// accounting; the first grid of a shared-catalog federation binds it.
	cat.bindClock(eng)
	for i, cc := range cfg.Clusters {
		c := newCluster(g, cc, g.rnd.Fork(uint64(i)+100))
		g.clusters = append(g.clusters, c)
		if cc.BackgroundMeanIAT > 0 && cfg.BackgroundHorizon > 0 {
			c.startBackground(cfg.BackgroundHorizon)
		}
	}
	return g
}

// Catalog returns the grid's replica catalog (possibly shared with other
// grids of a federation — see NewWithCatalog). Together with Submit it
// makes *Grid satisfy services.Submitter, so single-workflow code passes
// the grid where campaigns pass a tenant handle.
func (g *Grid) Catalog() *Catalog { return g.catalog }

// Name returns the grid's configured name — the Site.Grid component of
// every replica its jobs register (empty for an unnamed standalone grid).
func (g *Grid) Name() string { return g.cfg.Name }

// Config returns the configuration the grid was built from.
func (g *Grid) Config() Config { return g.cfg }

// Records returns the records of all jobs submitted so far, in submission
// order. Records of in-flight jobs are included and still mutating.
func (g *Grid) Records() []*JobRecord { return g.records }

// TotalNodes returns the total worker-node count across clusters.
func (g *Grid) TotalNodes() int {
	n := 0
	for _, c := range g.clusters {
		n += c.cfg.Nodes
	}
	return n
}

// BusyNodes returns the number of currently occupied worker nodes
// (foreground and background jobs).
func (g *Grid) BusyNodes() int {
	n := 0
	for _, c := range g.clusters {
		n += c.nodes.Busy()
	}
	return n
}

// RemoteInMB returns the input bytes this grid's job attempts actually
// fetched over non-local links, summed across clusters — failed and
// resubmitted attempts included, which is what distinguishes it from the
// completed-jobs-only federation.Telemetry.RemoteInMB observation.
func (g *Grid) RemoteInMB() float64 {
	var mb float64
	for _, c := range g.clusters {
		mb += c.remoteMB
	}
	return mb
}

// WANWait returns the total virtual time this grid's job attempts spent
// queued on contended WAN channels before their remote fetch legs were
// granted, summed across clusters (failed and resubmitted attempts
// included). Zero when no fabric is attached to the catalog.
func (g *Grid) WANWait() time.Duration {
	var w time.Duration
	for _, c := range g.clusters {
		w += c.wanWait
	}
	return w
}

// SetDown marks the grid dark (down = true) or recovered (down = false).
// A dark grid models a member-grid outage: it accepts no useful work —
// every job attempt fails with ErrGridDown at its next lifecycle
// transition (UI acceptance, matchmaking, stage-in, or settlement), no
// outputs are registered, and no local resubmission happens — while
// virtual time, background load and the other grids of a federation
// continue. An attempt that crosses no transition during an outage
// window (e.g. a long compute spanning the whole window) survives it.
// A dark grid's storage elements are dark with it: its replicas cannot
// be fetched from anywhere, and fetch legs in flight from it fail at
// completion (a down grid serves no data — the site power is off, not
// just the middleware). Recovery simply clears the flag; attempts still
// in the pipeline proceed normally from their next transition on.
func (g *Grid) SetDown(down bool) {
	g.down = down
	g.pushDark()
}

// Down reports whether the grid is currently dark.
func (g *Grid) Down() bool { return g.down }

// SetStorageDown marks the grid's storage dimension dark (down = true)
// or recovered — an SE-only outage: the middleware stays up (the grid
// still accepts submissions and its running jobs keep computing), but
// every replica on the grid is unreachable, no new attempt can stage in
// here, and completed attempts cannot register their outputs (they fail
// retryably at settlement). Consumers elsewhere re-stage the stranded
// inputs from surviving replicas with bounded backoff; inputs whose only
// copy lived here fail terminally with ErrReplicaLost once retries are
// exhausted.
func (g *Grid) SetStorageDown(down bool) {
	g.seDown = down
	g.pushDark()
}

// StorageDown reports whether the grid's storage dimension is dark
// (true during both SE-only outages and full outages).
func (g *Grid) StorageDown() bool { return g.seDown || g.down }

// pushDark propagates the grid's effective storage darkness — a full
// outage darkens the SEs too — into the shared catalog, where planning
// and the stage-in leg walk consult it.
func (g *Grid) pushDark() {
	g.catalog.setGridDark(g.cfg.Name, g.down || g.seDown)
}

// QueuedJobs returns the number of jobs waiting in batch queues.
func (g *Grid) QueuedJobs() int {
	n := 0
	for _, c := range g.clusters {
		n += c.nodes.Waiting()
	}
	return n
}

// Load is a point-in-time backlog snapshot of one grid — the signal set a
// federation broker ranks grids by. All counts are instantaneous virtual-
// time observations, cheap enough to take per submission.
type Load struct {
	// PendingSubmits is the UI backlog: submissions accepted by the gate
	// whose UI latency has not yet been paid (including the one in
	// service).
	PendingSubmits int
	// QueuedJobs counts jobs waiting in the computing elements' batch
	// queues.
	QueuedJobs int
	// BusyNodes counts occupied worker nodes, foreground and background.
	BusyNodes int
	// TotalNodes is the grid's worker-node capacity.
	TotalNodes int
}

// Occupancy returns the dimensionless utilization estimate
// (PendingSubmits + QueuedJobs + BusyNodes) / TotalNodes — the backlog
// term federation broker policies scale their ranks by.
func (l Load) Occupancy() float64 {
	if l.TotalNodes <= 0 {
		return 0
	}
	return float64(l.PendingSubmits+l.QueuedJobs+l.BusyNodes) / float64(l.TotalNodes)
}

// Load returns the grid's current backlog snapshot.
func (g *Grid) Load() Load {
	return Load{
		PendingSubmits: g.subPending,
		QueuedJobs:     g.QueuedJobs(),
		BusyNodes:      g.BusyNodes(),
		TotalNodes:     g.TotalNodes(),
	}
}

// ClusterStat summarizes one computing element's job accounting.
type ClusterStat struct {
	Name string
	// ForegroundJobs counts workflow job attempts dispatched to a worker
	// node (resubmissions count again).
	ForegroundJobs uint64
	// ForegroundFailed counts attempts that ended in failure, whether the
	// failure struck during input staging (missing catalog file) or during
	// computation.
	ForegroundFailed uint64
	// BackgroundJobs counts multi-user background jobs started.
	BackgroundJobs uint64
	// RemoteInMB accumulates input bytes attempts at this cluster fetched
	// over non-local links (intra-grid or WAN) because no replica was
	// behind the close SE.
	RemoteInMB float64
	// RemoteFetches counts the non-local input fetches behind RemoteInMB.
	RemoteFetches uint64
	// WANWait accumulates the virtual time attempts at this cluster spent
	// queued on contended WAN channels before their remote fetch legs
	// were granted (zero without a fabric).
	WANWait time.Duration
	// Restages counts re-staging rounds at this cluster: stage-in
	// retries forced by a replica source dark at leg start, a source
	// dying mid-fetch, or an input with no live replica at planning
	// time (each round re-plans after sim-time backoff).
	Restages uint64
}

// ClusterStats returns per-cluster accounting, in configuration order.
func (g *Grid) ClusterStats() []ClusterStat {
	out := make([]ClusterStat, len(g.clusters))
	for i, c := range g.clusters {
		out[i] = ClusterStat{
			Name:             c.cfg.Name,
			ForegroundJobs:   c.fgJobs,
			ForegroundFailed: c.fgFailed,
			BackgroundJobs:   c.bgJobs,
			RemoteInMB:       c.remoteMB,
			RemoteFetches:    c.remoteFetches,
			WANWait:          c.wanWait,
			Restages:         c.restages,
		}
	}
	return out
}

// Restages returns the grid's total re-staging rounds (stage-in retries
// after retryable storage failures), summed across clusters.
func (g *Grid) Restages() uint64 {
	var n uint64
	for _, c := range g.clusters {
		n += c.restages
	}
	return n
}

// defaultStageRetries and defaultStageRetryBackoff are the zero-value
// semantics of Config.StageRetries / Config.StageRetryBackoff: four
// re-staging rounds waiting 30s, 60s, 120s and 240s — a 7.5-minute total
// window sized to outlast short SE outage blips without holding worker
// nodes indefinitely.
const (
	defaultStageRetries      = 4
	defaultStageRetryBackoff = 30 * time.Second
)

func (g *Grid) stageRetries() int {
	if g.cfg.StageRetries > 0 {
		return g.cfg.StageRetries
	}
	return defaultStageRetries
}

func (g *Grid) stageBackoff() time.Duration {
	if g.cfg.StageRetryBackoff > 0 {
		return g.cfg.StageRetryBackoff
	}
	return defaultStageRetryBackoff
}

// tenantWeight returns the tenant's fair-share weight (1 unless raised by
// Config.TenantWeights).
func (g *Grid) tenantWeight(tenant string) int {
	if w := g.cfg.TenantWeights[tenant]; w > 1 {
		return w
	}
	return 1
}

func (g *Grid) drawLogNormal(mean, sd time.Duration) time.Duration {
	if mean <= 0 {
		return 0
	}
	v := g.rnd.LogNormalMeanSD(float64(mean), float64(sd))
	return time.Duration(v)
}
