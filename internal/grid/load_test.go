package grid

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestSubmitLoadFactor verifies middleware saturation: burst submission
// pays a higher per-job submission latency than serial submission.
func TestSubmitLoadFactor(t *testing.T) {
	run := func(factor float64) time.Duration {
		cfg := quiet(64)
		cfg.Overheads.SubmitMean = 10 * time.Second
		cfg.Overheads.SubmitLoadFactor = factor
		eng := sim.NewEngine()
		g := New(eng, cfg)
		for i := 0; i < 20; i++ {
			g.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
		}
		eng.Run()
		var total time.Duration
		for _, r := range g.Records() {
			total += time.Duration(r.Accepted - r.Submitted)
		}
		return total
	}
	unloaded, loaded := run(0), run(0.05)
	if loaded <= unloaded {
		t.Fatalf("load factor had no effect: %v vs %v", loaded, unloaded)
	}
}

func TestSubmitLoadFactorCapped(t *testing.T) {
	cfg := quiet(64)
	cfg.Overheads.SubmitMean = 10 * time.Second
	cfg.Overheads.SubmitLoadFactor = 100 // absurd; must be capped
	eng := sim.NewEngine()
	g := New(eng, cfg)
	for i := 0; i < 10; i++ {
		g.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
	}
	eng.Run()
	for _, r := range g.Records() {
		if d := time.Duration(r.Accepted - r.Submitted); d > time.Duration(maxSubmitLoad*10*float64(time.Second))*10 {
			t.Fatalf("uncapped submission latency: %v", d)
		}
	}
}

// TestSerialVsBurstOverhead reproduces the load-dependence the paper's
// NOP-vs-DP comparison rests on: the same jobs see a larger mean overhead
// when submitted as one burst.
func TestSerialVsBurstOverhead(t *testing.T) {
	run := func(burst bool) time.Duration {
		cfg := DefaultConfig()
		cfg.Seed = 11
		cfg.BackgroundHorizon = 24 * time.Hour
		eng := sim.NewEngine()
		g := New(eng, cfg)
		const n = 60
		done := 0
		var submit func(i int)
		submit = func(i int) {
			if i >= n {
				return
			}
			g.Submit(JobSpec{Runtime: 3 * time.Minute}, func(*JobRecord) {
				done++
				if !burst {
					submit(i + 1)
				}
			})
			if burst {
				submit(i + 1)
			}
		}
		submit(0)
		for done < n && eng.Step() {
		}
		return g.Overheads().Mean
	}
	serial, burst := run(false), run(true)
	if burst <= serial {
		t.Fatalf("burst overhead (%v) not larger than serial (%v)", burst, serial)
	}
}

func TestTransferStreamContention(t *testing.T) {
	// One transfer stream: concurrent jobs' stagings serialize.
	run := func(streams int) sim.Time {
		cfg := quiet(8)
		cfg.Clusters[0].TransferMBps = 1 // 100 MB → 100 s per job
		cfg.Clusters[0].TransferStreams = streams
		eng := sim.NewEngine()
		g := New(eng, cfg)
		g.Catalog().Register("gfn://big", 100)
		done := 0
		for i := 0; i < 4; i++ {
			g.Submit(JobSpec{Inputs: []string{"gfn://big"}, Runtime: time.Second},
				func(*JobRecord) { done++ })
		}
		eng.Run()
		if done != 4 {
			t.Fatal("jobs missing")
		}
		return eng.Now()
	}
	serial, parallel := run(1), run(4)
	if serial <= parallel {
		t.Fatalf("transfer streams not contended: 1 stream %v vs 4 streams %v", serial, parallel)
	}
	// With one stream, 4×100 s transfers serialize: ≥ 400 s total.
	if serial < sim.Time(400*time.Second) {
		t.Fatalf("serialized transfers took only %v", serial)
	}
}

func TestBrokerSlotsThroughput(t *testing.T) {
	run := func(slots int) sim.Time {
		cfg := quiet(64)
		cfg.BrokerSlots = slots
		cfg.Overheads.BrokerMean = 30 * time.Second
		eng := sim.NewEngine()
		g := New(eng, cfg)
		for i := 0; i < 16; i++ {
			g.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
		}
		eng.Run()
		return eng.Now()
	}
	narrow, wide := run(1), run(8)
	if narrow <= wide {
		t.Fatalf("broker slots had no effect: 1 slot %v vs 8 slots %v", narrow, wide)
	}
}

func TestWarmStartOccupancy(t *testing.T) {
	cfg := quiet(32)
	cfg.Clusters[0].BackgroundMeanIAT = 10 * time.Second
	cfg.Clusters[0].BackgroundMeanDur = 10 * time.Minute
	cfg.Clusters[0].BackgroundSDDur = time.Minute
	cfg.BackgroundHorizon = time.Hour
	eng := sim.NewEngine()
	g := New(eng, cfg)
	// Immediately after construction, the warm start should have occupied
	// roughly meanDur/meanIAT ≈ 60 → capped at 32 nodes... at least most.
	if busy := g.BusyNodes(); busy < 16 {
		t.Fatalf("warm start occupied only %d nodes", busy)
	}
}

func TestFailedJobDoesNotRegisterOutputs(t *testing.T) {
	cfg := quiet(2)
	cfg.Failures = FailureConfig{Probability: 1, DetectDelay: time.Second, MaxRetries: 1}
	eng := sim.NewEngine()
	g := New(eng, cfg)
	rec := submitOne(t, eng, g, JobSpec{
		Runtime: time.Second,
		Outputs: []FileDecl{{Name: "gfn://never", SizeMB: 1}},
	})
	if rec.Status != StatusFailed {
		t.Fatalf("status = %v", rec.Status)
	}
	if g.Catalog().Has("gfn://never") {
		t.Fatal("failed job registered its outputs")
	}
}

func TestResubmissionTimestampsMonotone(t *testing.T) {
	cfg := quiet(2)
	cfg.Failures = FailureConfig{Probability: 0.7, DetectDelay: time.Minute, MaxRetries: 10}
	cfg.Seed = 5
	eng := sim.NewEngine()
	g := New(eng, cfg)
	var recs []*JobRecord
	for i := 0; i < 10; i++ {
		recs = append(recs, g.Submit(JobSpec{Runtime: time.Minute}, func(*JobRecord) {}))
	}
	eng.Run()
	for _, r := range recs {
		if r.Status != StatusCompleted {
			continue
		}
		if r.Attempts > 1 && r.Matched <= r.Accepted {
			t.Fatalf("resubmitted job's final match (%v) not after acceptance (%v)", r.Matched, r.Accepted)
		}
		if r.Completed < r.InputDone {
			t.Fatalf("completed before staging: %+v", r)
		}
	}
}

func TestConfigAccessors(t *testing.T) {
	cfg := quiet(4)
	eng := sim.NewEngine()
	g := New(eng, cfg)
	if got := g.Config(); len(got.Clusters) != 1 || got.Clusters[0].Nodes != 4 {
		t.Fatalf("Config() = %+v", got)
	}
}

func TestPhaseDecomposition(t *testing.T) {
	cfg := quiet(4)
	cfg.Overheads.TransferLatency = time.Second
	eng := sim.NewEngine()
	g := New(eng, cfg)
	g.Catalog().Register("gfn://f", 10)
	for i := 0; i < 5; i++ {
		g.Submit(JobSpec{Inputs: []string{"gfn://f"}, Runtime: time.Minute}, func(*JobRecord) {})
	}
	eng.Run()
	p := g.Phases()
	if p.Jobs != 5 {
		t.Fatalf("jobs = %d", p.Jobs)
	}
	// quiet(): submit latency 2s, but the 5 simultaneous submissions
	// serialize through the UI: mean experienced submit = (2+4+6+8+10)/5.
	if p.Submit != 6*time.Second {
		t.Errorf("submit = %v, want 6s (UI latency incl. queueing)", p.Submit)
	}
	if p.Broker != 3*time.Second {
		t.Errorf("broker = %v, want 3s", p.Broker)
	}
	if p.Staging < 5*time.Second {
		t.Errorf("staging = %v, want ≥ 5s (dispatch + transfer)", p.Staging)
	}
	if p.String() == "" || (PhaseStats{}).String() != "no completed jobs" {
		t.Error("phase string rendering broken")
	}
}
