package grid

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// FileDecl declares an output file a job will produce and register.
type FileDecl struct {
	Name   string
	SizeMB float64
}

// JobSpec describes a computing task: the composed command line, the files
// to stage in (by catalog name), the files it will produce, and its compute
// time on a reference-speed node.
type JobSpec struct {
	// Name tags the job for traces (e.g. "crestLines[3]").
	Name string
	// Command is the composed command line. The simulator does not execute
	// it; it is recorded for traces and inspected by tests, mirroring the
	// dynamically composed invocation of the paper's generic wrapper.
	Command string
	// Inputs are catalog names of files to transfer to the worker node
	// before computing. Unknown names fail the job permanently.
	Inputs []string
	// Outputs are files registered in the catalog on success.
	Outputs []FileDecl
	// Runtime is the compute time on a speed-1.0 node.
	Runtime time.Duration
}

// JobStatus is a job's lifecycle state.
type JobStatus int

// Job lifecycle states, in order of progression.
const (
	StatusSubmitted JobStatus = iota // handed to the UI
	StatusAccepted                   // UI forwarded to the broker
	StatusMatched                    // broker picked a computing element
	StatusQueued                     // waiting in the CE batch queue
	StatusRunning                    // on a worker node (staging or computing)
	StatusCompleted
	StatusFailed
)

var statusNames = [...]string{"submitted", "accepted", "matched", "queued", "running", "completed", "failed"}

func (s JobStatus) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("JobStatus(%d)", int(s))
}

// JobRecord carries a job's identity and per-phase timestamps. Fields other
// than timestamps are set once; timestamps are filled as the job
// progresses. All times are virtual.
type JobRecord struct {
	ID      int
	Spec    JobSpec
	Status  JobStatus
	Cluster string
	// Attempts counts submissions including resubmissions after failures.
	Attempts int

	Submitted sim.Time // Submit called
	Accepted  sim.Time // UI latency paid, forwarded to broker
	Matched   sim.Time // broker matched to a CE (last attempt)
	Started   sim.Time // worker node acquired (last attempt)
	InputDone sim.Time // input staging finished (last attempt)
	Completed sim.Time // terminal instant (success or final failure)

	Err error
}

// Overhead returns the grid overhead of the job: everything between
// submission and the start of useful computation on the final attempt
// (submission + matchmaking + queuing + staging), as the paper defines it.
func (r *JobRecord) Overhead() time.Duration {
	return time.Duration(r.InputDone - r.Submitted)
}

// Makespan returns submission-to-completion time.
func (r *JobRecord) Makespan() time.Duration {
	return time.Duration(r.Completed - r.Submitted)
}

// maxSubmitLoad caps the middleware saturation multiplier: a loaded UI and
// Resource Broker degrade, but past a point clients time out and back off
// rather than queueing indefinitely.
const maxSubmitLoad = 2.5

// ErrNoSuchFile reports a job input absent from the replica catalog.
var ErrNoSuchFile = errors.New("grid: input file not in replica catalog")

// ErrTooManyFailures reports a job that exhausted its resubmissions.
var ErrTooManyFailures = errors.New("grid: job failed after maximum retries")

// Submit enters a job into the grid. done is invoked exactly once, in
// virtual time, when the job reaches a terminal state. Resubmission after
// failure is transparent: done only sees the final outcome.
//
// Submit is asynchronous and returns the job's record immediately, so
// callers can observe progress.
func (g *Grid) Submit(spec JobSpec, done func(*JobRecord)) *JobRecord {
	if done == nil {
		panic("grid: Submit with nil completion callback")
	}
	rec := &JobRecord{
		ID:        g.nextID,
		Spec:      spec,
		Status:    StatusSubmitted,
		Submitted: g.Eng.Now(),
	}
	g.nextID++
	g.records = append(g.records, rec)

	// Serialized UI submission: one job at a time pays the submit latency,
	// inflated by the middleware's current load (queued submissions).
	g.ui.Acquire(func() {
		d := g.drawLogNormal(g.cfg.Overheads.SubmitMean, g.cfg.Overheads.SubmitSD)
		if f := g.cfg.Overheads.SubmitLoadFactor; f > 0 {
			mult := 1 + f*float64(g.ui.Waiting())
			if mult > maxSubmitLoad {
				mult = maxSubmitLoad
			}
			d = time.Duration(float64(d) * mult)
		}
		g.Eng.Schedule(d, func() {
			g.ui.Release()
			rec.Status = StatusAccepted
			rec.Accepted = g.Eng.Now()
			g.match(rec, done)
		})
	})
	return rec
}

// match sends the job through the Resource Broker and on to a cluster.
func (g *Grid) match(rec *JobRecord, done func(*JobRecord)) {
	rec.Attempts++
	g.broker.Acquire(func() {
		g.Eng.Schedule(g.drawLogNormal(g.cfg.Overheads.BrokerMean, g.cfg.Overheads.BrokerSD), func() {
			g.broker.Release()
			c := g.pickCluster()
			rec.Status = StatusMatched
			rec.Matched = g.Eng.Now()
			rec.Cluster = c.cfg.Name
			c.enqueue(rec, func(failed bool) {
				g.settle(rec, failed, done)
			})
		})
	})
}

// settle finalizes an attempt: success completes the job, failure
// resubmits through the broker until retries run out.
func (g *Grid) settle(rec *JobRecord, failed bool, done func(*JobRecord)) {
	if !failed {
		rec.Status = StatusCompleted
		rec.Completed = g.Eng.Now()
		for _, out := range rec.Spec.Outputs {
			g.catalog.Register(out.Name, out.SizeMB)
		}
		done(rec)
		return
	}
	if rec.Err == nil && rec.Attempts >= g.cfg.Failures.MaxRetries {
		rec.Err = ErrTooManyFailures
	}
	if rec.Err != nil {
		rec.Status = StatusFailed
		rec.Completed = g.Eng.Now()
		done(rec)
		return
	}
	// Transparent resubmission, as the generic wrapper performs it.
	g.match(rec, done)
}

// pickCluster ranks computing elements the way the LCG2 broker does: by
// estimated time to drain their queue, with matchmaking noise (the broker's
// view of queue states is stale in production).
func (g *Grid) pickCluster() *cluster {
	best := g.clusters[0]
	bestRank := best.rank(g.rnd.Uniform(0.7, 1.3))
	for _, c := range g.clusters[1:] {
		if r := c.rank(g.rnd.Uniform(0.7, 1.3)); r < bestRank {
			best, bestRank = c, r
		}
	}
	return best
}
