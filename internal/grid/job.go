package grid

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/sim"
)

// jobRun is the pooled lifecycle context of one job: everything the
// submission → broker → queue → stage-in → compute → settle chain needs
// to carry between events. The chain advances through package-level
// functions dispatched with Engine.ScheduleArg / Resource.AcquireArg, so
// a job's whole lifecycle schedules without allocating closures; the run
// itself is arena-allocated and recycled at settlement, and its StagePlan
// scratch (including the remote legs' backing arrays) is reused across
// re-staging rounds, attempts, and — once recycled — other jobs.
type jobRun struct {
	g   *Grid
	c   *cluster // cluster of the current attempt
	rec *JobRecord
	// done is the caller's completion callback, invoked exactly once at
	// the terminal settlement.
	done func(*JobRecord)
	// tries counts the re-staging rounds already failed by the current
	// attempt (reset at each stage-in).
	tries int
	// leg indexes the next remote leg of the contended stage-in walk.
	leg int
	// plan is the owned stage-plan scratch of the current attempt.
	plan StagePlan
}

// newRun returns a recycled (or arena-fresh) jobRun bound to this grid.
func (g *Grid) newRun(rec *JobRecord, done func(*JobRecord)) *jobRun {
	var run *jobRun
	if n := len(g.freeRuns); n > 0 {
		run = g.freeRuns[n-1]
		g.freeRuns[n-1] = nil
		g.freeRuns = g.freeRuns[:n-1]
	} else {
		run = g.runs.New()
		run.g = g
	}
	run.rec, run.done = rec, done
	return run
}

// putRun recycles a settled run: callback and record references are
// dropped (so completed jobs are not retained by the pool), while the
// stage-plan backing arrays stay for the next job.
func (g *Grid) putRun(run *jobRun) {
	run.c, run.rec, run.done = nil, nil, nil
	run.tries, run.leg = 0, 0
	g.freeRuns = append(g.freeRuns, run)
}

// FileDecl declares an output file a job will produce and register.
type FileDecl struct {
	Name   string
	SizeMB float64
}

// JobSpec describes a computing task: the composed command line, the files
// to stage in (by catalog name), the files it will produce, and its compute
// time on a reference-speed node.
type JobSpec struct {
	// Name tags the job for traces (e.g. "crestLines[3]").
	Name string
	// Command is the composed command line. The simulator does not execute
	// it; it is recorded for traces and inspected by tests, mirroring the
	// dynamically composed invocation of the paper's generic wrapper.
	Command string
	// Inputs are catalog names of files to transfer to the worker node
	// before computing. Unknown names fail the job permanently.
	Inputs []string
	// Outputs are files registered in the catalog on success.
	Outputs []FileDecl
	// Runtime is the compute time on a speed-1.0 node.
	Runtime time.Duration
}

// JobStatus is a job's lifecycle state.
type JobStatus int

// Job lifecycle states, in order of progression.
const (
	StatusSubmitted JobStatus = iota // handed to the UI
	StatusAccepted                   // UI forwarded to the broker
	StatusMatched                    // broker picked a computing element
	StatusQueued                     // waiting in the CE batch queue
	StatusRunning                    // on a worker node (staging or computing)
	StatusCompleted
	StatusFailed
)

var statusNames = [...]string{"submitted", "accepted", "matched", "queued", "running", "completed", "failed"}

// String returns the lifecycle state's lower-case name.
func (s JobStatus) String() string {
	if int(s) < len(statusNames) {
		return statusNames[s]
	}
	return fmt.Sprintf("JobStatus(%d)", int(s))
}

// JobRecord carries a job's identity and per-phase timestamps. Fields other
// than timestamps are set once; timestamps are filled as the job
// progresses. All times are virtual.
type JobRecord struct {
	ID int
	// Tenant names the submission handle the job came through (empty for
	// jobs submitted directly via Grid.Submit). Per-tenant statistics
	// filter the global record set on this tag.
	Tenant string
	// Grid names the grid the job was submitted to (Config.Name; empty
	// for an unnamed standalone grid). A federation's records carry the
	// member-grid name here, which is how outage scenarios verify that no
	// work was routed to a dark grid.
	Grid    string
	Spec    JobSpec
	Status  JobStatus
	Cluster string
	// Attempts counts submissions including resubmissions after failures.
	Attempts int
	// Restages counts re-staging rounds across all attempts: stage-in
	// retries forced by a replica source that was dark at leg start or
	// died mid-fetch (bounded per attempt by Config.StageRetries).
	Restages int

	Submitted sim.Time // Submit called
	Accepted  sim.Time // UI latency paid, forwarded to broker
	Matched   sim.Time // broker matched to a CE (last attempt)
	Started   sim.Time // worker node acquired (last attempt)
	InputDone sim.Time // input staging finished (last attempt)
	Completed sim.Time // terminal instant (success or final failure)

	// LocalInMB and RemoteInMB partition the input bytes of the last
	// attempt's stage-in by the chosen replicas' links: local bytes moved
	// over the executing cluster's close-SE link, remote bytes were
	// fetched over intra-grid/WAN links first.
	LocalInMB  float64
	RemoteInMB float64
	// RemoteFetch is the serialized non-local fetch time the last attempt
	// paid before its close-SE transfer (zero when every input was local).
	// It is the nominal (uncontended) cost: queueing on contended WAN
	// channels is accounted separately in WANWait, so the observed fetch
	// span is RemoteFetch + WANWait.
	RemoteFetch time.Duration
	// WANFetch is the cross-grid portion of RemoteFetch under a
	// contended fabric: the nominal time of the legs that actually
	// crossed grids (and hence held WAN channels). Intra-grid remote
	// legs are excluded — they never touch the channels — so
	// (WANFetch + WANWait) / WANFetch is the undiluted observed/nominal
	// stretch of the WAN itself. Zero without a fabric.
	WANFetch time.Duration
	// WANWait is the time the last attempt's cross-grid fetch legs spent
	// queued on contended WAN channels before being granted (zero
	// without a fabric, or when every input was local or intra-grid).
	WANWait time.Duration

	Err error
}

// Overhead returns the grid overhead of the job: everything between
// submission and the start of useful computation on the final attempt
// (submission + matchmaking + queuing + staging), as the paper defines it.
func (r *JobRecord) Overhead() time.Duration {
	return time.Duration(r.InputDone - r.Submitted)
}

// Makespan returns submission-to-completion time.
func (r *JobRecord) Makespan() time.Duration {
	return time.Duration(r.Completed - r.Submitted)
}

// maxSubmitLoad caps the middleware saturation multiplier: a loaded UI and
// Resource Broker degrade, but past a point clients time out and back off
// rather than queueing indefinitely.
const maxSubmitLoad = 2.5

// ErrNoSuchFile reports a job input absent from the replica catalog.
var ErrNoSuchFile = errors.New("grid: input file not in replica catalog")

// ErrTooManyFailures reports a job that exhausted its resubmissions.
var ErrTooManyFailures = errors.New("grid: job failed after maximum retries")

// ErrGridDown reports a job attempt interrupted by a grid outage: the
// grid was dark (Grid.SetDown) when the attempt reached its next
// lifecycle transition. The failure is terminal on this grid — a dark
// grid cannot resubmit — but a federation re-brokers it elsewhere (the
// outage is local, unlike a shared-catalog ErrNoSuchFile).
var ErrGridDown = errors.New("grid: grid is down")

// ErrReplicaLost reports a job input whose every replica went dark (SE
// outage, grid outage) or was evicted, and stayed unreachable through
// the whole re-staging budget (Config.StageRetries rounds of backoff).
// The failure is terminal, and — unlike ErrGridDown — a federation must
// NOT re-broker it: the replica catalog is shared, so the data is just
// as lost from every other grid.
var ErrReplicaLost = errors.New("grid: every replica of an input is lost or unreachable")

// Submit enters a job into the grid under the default (anonymous) tenant.
// done is invoked exactly once, in virtual time, when the job reaches a
// terminal state. Resubmission after failure is transparent: done only
// sees the final outcome.
//
// Submit is asynchronous and returns the job's record immediately, so
// callers can observe progress. To tag submissions for per-tenant
// accounting and fair-share scheduling, submit through a Tenant handle
// instead.
func (g *Grid) Submit(spec JobSpec, done func(*JobRecord)) *JobRecord {
	return g.submit("", spec, done)
}

// pendingSubmit is one submission waiting at the fair-share gate in front
// of the serialized UI.
type pendingSubmit struct {
	run *jobRun
}

// submitQueue is a FIFO of pending submissions with O(1) pops: a head
// index advances instead of re-slicing, and the buffer compacts once the
// dead prefix dominates (the same shape as core's tupleQueue). Popped
// slots are zeroed so completed jobs' callbacks are not retained.
type submitQueue struct {
	buf  []pendingSubmit
	head int
}

func (q *submitQueue) len() int { return len(q.buf) - q.head }

func (q *submitQueue) push(ps pendingSubmit) { q.buf = append(q.buf, ps) }

func (q *submitQueue) peek() pendingSubmit { return q.buf[q.head] }

func (q *submitQueue) pop() pendingSubmit {
	ps := q.buf[q.head]
	q.buf[q.head] = pendingSubmit{}
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head > len(q.buf)/2 {
		n := copy(q.buf, q.buf[q.head:])
		clear(q.buf[n:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return ps
}

func (g *Grid) submit(tenant string, spec JobSpec, done func(*JobRecord)) *JobRecord {
	if done == nil {
		panic("grid: Submit with nil completion callback")
	}
	rec := g.recs.New()
	*rec = JobRecord{
		ID:        g.nextID,
		Tenant:    tenant,
		Grid:      g.cfg.Name,
		Spec:      spec,
		Status:    StatusSubmitted,
		Submitted: g.Eng.Now(),
	}
	g.nextID++
	g.records = append(g.records, rec)
	q, ok := g.subQueues[tenant]
	if !ok {
		// First submission ever from this tenant: join the round-robin
		// ring. Drained queues stay in the map so the ring has no
		// duplicates.
		q = &submitQueue{}
		g.subQueues[tenant] = q
		g.subRing = append(g.subRing, tenant)
	}
	q.push(pendingSubmit{g.newRun(rec, done)})
	g.subPending++
	g.pumpSubmits()
	return rec
}

// pumpSubmits starts the next submission on the serialized UI. The gate
// drains the per-tenant queues round-robin (fair share): a burst-submitting
// tenant occupies only its own queue, so the other tenants' submissions
// keep interleaving one-for-one instead of waiting behind the whole burst.
// A tenant with a Config.TenantWeights weight k > 1 is drained up to k
// submissions per round before the gate advances, so higher-priority
// tenants clear the UI proportionally more often under contention (with
// weight 1 everywhere the drain order is the historical one exactly).
// With a single tenant the gate degenerates to the plain FIFO of a
// tenancy-unaware UI; Config.StrictFIFOSubmit restores that global FIFO
// even across tenants, for fairness comparisons.
func (g *Grid) pumpSubmits() {
	if g.uiBusy {
		return
	}
	pick := -1 // index into subRing of the tenant to serve
	if g.cfg.StrictFIFOSubmit {
		bestID := -1
		for i, tn := range g.subRing {
			if q := g.subQueues[tn]; q.len() > 0 && (bestID < 0 || q.peek().run.rec.ID < bestID) {
				bestID, pick = q.peek().run.rec.ID, i
			}
		}
	} else {
		n := len(g.subRing)
		for i := 0; i < n; i++ {
			idx := (g.subRR + i) % n
			if g.subQueues[g.subRing[idx]].len() > 0 {
				pick = idx
				break
			}
		}
	}
	if pick < 0 {
		return
	}
	ps := g.subQueues[g.subRing[pick]].pop()
	if !g.cfg.StrictFIFOSubmit {
		if pick != g.subRR {
			// The ring moved past empty queues: the served counter belongs
			// to the newly-current slot.
			g.subRR, g.subServed = pick, 0
		}
		g.subServed++
		if g.subServed >= g.tenantWeight(g.subRing[pick]) {
			g.subRR = (pick + 1) % len(g.subRing)
			g.subServed = 0
		}
	}

	// One job at a time pays the submit latency, inflated by the
	// middleware's current load (submissions accepted but not yet paid).
	g.uiBusy = true
	d := g.drawLogNormal(g.cfg.Overheads.SubmitMean, g.cfg.Overheads.SubmitSD)
	if f := g.cfg.Overheads.SubmitLoadFactor; f > 0 {
		mult := 1 + f*float64(g.subPending-1)
		if mult > maxSubmitLoad {
			mult = maxSubmitLoad
		}
		d = time.Duration(float64(d) * mult)
	}
	g.Eng.ScheduleArg(d, uiLatencyPaid, ps.run)
}

// uiLatencyPaid runs when a submission's serialized UI latency elapses:
// the UI either forwards the job to the broker or — dark — fails it.
func uiLatencyPaid(x any) {
	run := x.(*jobRun)
	g := run.g
	g.subPending--
	g.uiBusy = false
	if g.down {
		// The UI is dark: the submission times out after its latency
		// and fails terminally on this grid. It still counts as an
		// attempt — overhead statistics derive resubmission counts
		// from Attempts-1, which must never go negative.
		run.rec.Attempts++
		g.settle(run, true)
		g.pumpSubmits()
		return
	}
	run.rec.Status = StatusAccepted
	run.rec.Accepted = g.Eng.Now()
	g.match(run)
	g.pumpSubmits()
}

// PendingSubmits reports how many submissions have been accepted by the
// gate but have not yet cleared the UI (including the one in service) —
// the backlog driving the SubmitLoadFactor saturation multiplier.
func (g *Grid) PendingSubmits() int { return g.subPending }

// match sends the job through the Resource Broker and on to a cluster.
func (g *Grid) match(run *jobRun) {
	run.rec.Attempts++
	g.broker.AcquireArg(brokerGranted, run)
}

// brokerGranted runs when a Resource Broker slot is granted: the
// matchmaking latency starts.
func brokerGranted(x any) {
	run := x.(*jobRun)
	g := run.g
	g.Eng.ScheduleArg(g.drawLogNormal(g.cfg.Overheads.BrokerMean, g.cfg.Overheads.BrokerSD),
		brokerDone, run)
}

// brokerDone runs when matchmaking completes: the broker slot is
// released and the job is enqueued on the picked cluster (or fails, if
// the grid went dark meanwhile).
func brokerDone(x any) {
	run := x.(*jobRun)
	g := run.g
	g.broker.Release()
	if g.down {
		g.settle(run, true)
		return
	}
	c := g.pickCluster(run.rec.Spec.Inputs)
	run.rec.Status = StatusMatched
	run.rec.Matched = g.Eng.Now()
	run.rec.Cluster = c.cfg.Name
	run.c = c
	c.enqueue(run)
}

// settle finalizes an attempt: success completes the job, failure
// resubmits through the broker until retries run out. On a dark grid
// every settlement is a terminal ErrGridDown failure: a completed
// attempt's results are lost (its outputs are not registered) and a
// failed one cannot be locally resubmitted.
func (g *Grid) settle(run *jobRun, failed bool) {
	rec := run.rec
	if g.down {
		if rec.Err == nil {
			rec.Err = ErrGridDown
		}
		rec.Status = StatusFailed
		rec.Completed = g.Eng.Now()
		g.finish(run)
		return
	}
	if !failed && len(rec.Spec.Outputs) > 0 &&
		g.catalog.SiteDark(Site{Grid: g.cfg.Name, Cluster: rec.Cluster}) {
		// The close SE that would receive the outputs is dark (SE-only
		// outage; a full outage was caught above): the attempt's results
		// cannot be registered. Fail retryably — resubmission re-runs the
		// job, possibly on a cluster whose storage is up.
		failed = true
	}
	if !failed {
		rec.Status = StatusCompleted
		rec.Completed = g.Eng.Now()
		// Outputs become replicas at the site that produced them: the
		// cluster whose close SE received the output staging. This is how
		// locality propagates through a workflow — a downstream job
		// brokered to the same place stages for free, one brokered across
		// the WAN pays the link.
		site := Site{Grid: g.cfg.Name, Cluster: rec.Cluster}
		for _, out := range rec.Spec.Outputs {
			g.catalog.RegisterAt(out.Name, out.SizeMB, site)
		}
		g.finish(run)
		return
	}
	if rec.Err == nil && rec.Attempts >= g.cfg.Failures.MaxRetries {
		rec.Err = ErrTooManyFailures
	}
	if rec.Err != nil {
		rec.Status = StatusFailed
		rec.Completed = g.Eng.Now()
		g.finish(run)
		return
	}
	// Transparent resubmission, as the generic wrapper performs it.
	g.match(run)
}

// finish delivers the terminal settlement: the run is recycled first (it
// carries nothing the callback needs beyond the record), then the
// caller's completion callback fires exactly once.
func (g *Grid) finish(run *jobRun) {
	rec, done := run.rec, run.done
	g.putRun(run)
	done(rec)
}

// pickCluster ranks computing elements the way the LCG2 broker does: by
// estimated time to drain their queue, with matchmaking noise (the
// broker's view of queue states is stale in production), plus the
// data-proximity term — the matchmaker prefers, all else equal, a cluster
// whose close SE already holds the job's input replicas. The proximity
// estimates are skipped entirely (not just zero-weighted) when the weight
// is zero, the job has no inputs, or the catalog's link model is the
// all-local one (a standalone grid's default), so the location-blind
// configuration pays nothing for the feature on this hot path.
func (g *Grid) pickCluster(inputs []string) *cluster {
	proximity := g.cfg.DataProximityWeight > 0 && len(inputs) > 0 && !g.catalog.AllLocal()
	best := g.clusters[0]
	fetch := 0.0
	if proximity {
		fetch = best.fetchEstimate(inputs)
	}
	bestRank := best.rank(g.rnd.Uniform(0.7, 1.3), fetch)
	for _, c := range g.clusters[1:] {
		fetch = 0
		if proximity {
			fetch = c.fetchEstimate(inputs)
		}
		if r := c.rank(g.rnd.Uniform(0.7, 1.3), fetch); r < bestRank {
			best, bestRank = c, r
		}
	}
	return best
}
