package grid

import (
	"testing"
)

// TestPlanAllocFreeFullyLocal pins the broker hot path's allocation
// contract: planning a fully-local input set (the all-local link model's
// fast path, hit by every cluster ranking and federation view build)
// performs zero heap allocations.
func TestPlanAllocFreeFullyLocal(t *testing.T) {
	cat := NewCatalog()
	inputs := []string{"a", "b", "c", "d"}
	for _, name := range inputs {
		cat.Register(name, 25)
	}
	to := Site{Grid: "g", Cluster: "c0"}
	if avg := testing.AllocsPerRun(200, func() {
		p := cat.Plan(inputs, to)
		if p.LocalFiles != len(inputs) {
			t.Fatalf("plan classified %d local files, want %d", p.LocalFiles, len(inputs))
		}
	}); avg != 0 {
		t.Fatalf("fully-local Catalog.Plan allocates %.1f objects per call, want 0", avg)
	}
}

// TestStagePlanIntoAllocFreeWarm pins the stage-in path's allocation
// contract: re-planning into a warm caller-owned plan — remote legs
// included — reuses the leg and site backing arrays and allocates
// nothing. This is the invariant that keeps re-staging rounds,
// resubmissions, and recycled jobRuns allocation-free.
func TestStagePlanIntoAllocFreeWarm(t *testing.T) {
	cat := NewCatalog()
	cat.SetLinks(DefaultWAN())
	inputs := []string{"a", "b", "c", "d"}
	homes := []string{"gA", "gB", "gB", "gC"}
	for i, name := range inputs {
		cat.RegisterAt(name, 25, Site{Grid: homes[i], Cluster: "c0"})
	}
	to := Site{Grid: "gA", Cluster: "c0"}
	var plan StagePlan
	if avg := testing.AllocsPerRun(200, func() {
		cat.stagePlanInto(&plan, inputs, to)
		if len(plan.Remote) != 2 || plan.RemoteFiles != 3 {
			t.Fatalf("plan legs = %d (files %d), want 2 legs over 3 remote files", len(plan.Remote), plan.RemoteFiles)
		}
	}); avg != 0 {
		t.Fatalf("warm stagePlanInto allocates %.1f objects per call, want 0", avg)
	}
	if plan.Remote[0].FromGrid != "gB" || plan.Remote[1].FromGrid != "gC" {
		t.Fatalf("legs from %s,%s, want gB,gC (lexical source order)", plan.Remote[0].FromGrid, plan.Remote[1].FromGrid)
	}
	if plan.RemoteTime <= 0 || plan.RemoteTime != plan.Remote[0].Time+plan.Remote[1].Time {
		t.Fatalf("leg times %v+%v do not sum to RemoteTime %v",
			plan.Remote[0].Time, plan.Remote[1].Time, plan.RemoteTime)
	}
}
