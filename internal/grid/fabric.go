package grid

import (
	"sort"

	"repro/internal/sim"
)

// Fabric is the contended WAN fabric: one capacity-limited shared channel
// per ordered (fromGrid, toGrid) pair, built on sim.Resource. When a
// fabric is attached to a catalog (Catalog.SetFabric), stage-in no longer
// models a remote fetch as a pure delay: each leg of the fetch acquires
// the pair's channel for the transfer duration, so concurrent cross-grid
// fetches over the same pair queue FIFO and stretch each other — the
// congestion-collapse mechanism the pure-delay model of PR 4 could not
// express. Channels are created lazily on first use with the fabric's
// default stream count (or a per-pair override), and everything runs on
// the single-threaded engine, so grant order is schedule order and runs
// stay bit-deterministic.
type Fabric struct {
	eng       *sim.Engine
	streams   int
	overrides map[GridPair]int
	chans     map[GridPair]*sim.Resource
}

// NewFabric returns a fabric whose channels default to the given number
// of concurrent streams per ordered grid pair. Streams must be positive:
// an uncontended fabric is expressed by not attaching one at all (the
// pure-delay model), not by a zero capacity.
func NewFabric(eng *sim.Engine, streams int) *Fabric {
	if streams <= 0 {
		panic("grid: NewFabric with non-positive streams")
	}
	return &Fabric{
		eng:       eng,
		streams:   streams,
		overrides: make(map[GridPair]int),
		chans:     make(map[GridPair]*sim.Resource),
	}
}

// Streams returns the default per-pair channel capacity.
func (f *Fabric) Streams() int { return f.streams }

// Engine returns the engine the fabric's channels run on. Consumers that
// are handed a pre-built fabric (federation.Config.Fabric) validate it
// against their own engine: channels scheduling on a foreign engine
// would silently stall every contended fetch.
func (f *Fabric) Engine() *sim.Engine { return f.eng }

// SetPairStreams overrides the channel capacity of one ordered grid pair
// (asymmetric links are expressible by overriding each direction
// separately). It must be called before the pair's channel is first used;
// overriding a live channel would re-create it and lose its queue, so
// that is rejected with a panic.
func (f *Fabric) SetPairStreams(from, to string, streams int) {
	if streams <= 0 {
		panic("grid: SetPairStreams with non-positive streams")
	}
	key := GridPair{From: from, To: to}
	if _, live := f.chans[key]; live {
		panic("grid: SetPairStreams on a pair whose channel is already in use")
	}
	f.overrides[key] = streams
}

// Channel returns the shared channel of the ordered (from, to) grid pair,
// creating it on first use with the pair's configured capacity.
func (f *Fabric) Channel(from, to string) *sim.Resource {
	key := GridPair{From: from, To: to}
	if ch, ok := f.chans[key]; ok {
		return ch
	}
	streams := f.streams
	if s, ok := f.overrides[key]; ok {
		streams = s
	}
	ch := sim.NewResource(f.eng, streams)
	f.chans[key] = ch
	return ch
}

// PairStat summarizes one pair channel's observed contention.
type PairStat struct {
	// From and To name the ordered grid pair.
	From, To string
	// Capacity is the channel's stream count.
	Capacity int
	// Grants counts fetch legs the channel has admitted.
	Grants uint64
	// PeakWaiting is the longest observed fetch queue on the channel.
	PeakWaiting int
}

// PairStats returns per-pair channel statistics for every channel used so
// far, in deterministic (from, to) order.
func (f *Fabric) PairStats() []PairStat {
	out := make([]PairStat, 0, len(f.chans))
	//moteur:orderinvariant stats are sorted by (from, to) immediately after collection
	for key, ch := range f.chans {
		out = append(out, PairStat{
			From:        key.From,
			To:          key.To,
			Capacity:    ch.Capacity(),
			Grants:      ch.Grants(),
			PeakWaiting: ch.PeakWaiting(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}
