package grid

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// completedRec builds a terminal completed record with the given overhead.
func completedRec(overhead time.Duration, attempts int) *JobRecord {
	return &JobRecord{
		Status:    StatusCompleted,
		Attempts:  attempts,
		Submitted: 0,
		InputDone: sim.Time(overhead),
	}
}

// TestOverheadPercentileEdges pins the upper nearest-rank percentile
// convention on tiny and even sample sizes: P50 = durs[n/2],
// P90 = durs[n*9/10] of the sorted overheads.
func TestOverheadPercentileEdges(t *testing.T) {
	mk := func(secs ...int) []*JobRecord {
		recs := make([]*JobRecord, len(secs))
		for i, s := range secs {
			recs[i] = completedRec(time.Duration(s)*time.Second, 1)
		}
		return recs
	}
	sec := func(n int) time.Duration { return time.Duration(n) * time.Second }

	cases := []struct {
		name               string
		recs               []*JobRecord
		p50, p90, min, max time.Duration
	}{
		{"n=1", mk(7), sec(7), sec(7), sec(7), sec(7)},
		{"n=2", mk(9, 1), sec(9), sec(9), sec(1), sec(9)},
		{"n=3", mk(3, 1, 2), sec(2), sec(3), sec(1), sec(3)},
		{"n=4 even", mk(4, 2, 3, 1), sec(3), sec(4), sec(1), sec(4)},
		{"n=10 even", mk(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), sec(6), sec(10), sec(1), sec(10)},
	}
	for _, c := range cases {
		st := overheadStats(c.recs, nil)
		if st.Jobs != len(c.recs) {
			t.Errorf("%s: Jobs = %d", c.name, st.Jobs)
		}
		if st.P50 != c.p50 || st.P90 != c.p90 || st.Min != c.min || st.Max != c.max {
			t.Errorf("%s: p50=%v p90=%v min=%v max=%v, want %v/%v/%v/%v",
				c.name, st.P50, st.P90, st.Min, st.Max, c.p50, c.p90, c.min, c.max)
		}
		if st.Min > st.P50 || st.P50 > st.P90 || st.P90 > st.Max {
			t.Errorf("%s: percentile ordering violated: %+v", c.name, st)
		}
	}
	if st := overheadStats(nil, nil); st.Jobs != 0 || st.String() != "no completed jobs" {
		t.Errorf("empty stats = %+v", st)
	}
}

// TestResubmitsCountTerminalJobsOnly: attempts of in-flight jobs must not
// leak into Resubmits, which is documented over terminal jobs.
func TestResubmitsCountTerminalJobsOnly(t *testing.T) {
	recs := []*JobRecord{
		completedRec(time.Second, 3),           // 2 resubmits
		{Status: StatusFailed, Attempts: 5},    // 4 resubmits
		{Status: StatusRunning, Attempts: 4},   // in flight: ignored
		{Status: StatusQueued, Attempts: 2},    // in flight: ignored
		{Status: StatusSubmitted, Attempts: 0}, // not yet matched
		completedRec(2*time.Second, 1),         // clean run
	}
	st := overheadStats(recs, nil)
	if st.Resubmits != 6 {
		t.Fatalf("Resubmits = %d, want 6 (terminal jobs only)", st.Resubmits)
	}
	if st.Failed != 1 || st.Jobs != 2 {
		t.Fatalf("Failed=%d Jobs=%d", st.Failed, st.Jobs)
	}

	// End-to-end: query stats while a resubmission cycle is mid-flight.
	cfg := quiet(2)
	cfg.Failures = FailureConfig{Probability: 1, DetectDelay: time.Hour, MaxRetries: 5}
	eng := sim.NewEngine()
	g := New(eng, cfg)
	g.Submit(JobSpec{Runtime: time.Minute}, func(*JobRecord) {})
	// Run until the first attempt is in its detection delay: the record
	// has Attempts=1 and is still non-terminal.
	eng.RunUntil(sim.Time(30 * time.Minute))
	if rec := g.Records()[0]; rec.Status == StatusCompleted || rec.Status == StatusFailed {
		t.Fatalf("job already terminal (%v); test setup broken", rec.Status)
	}
	if st := g.Overheads(); st.Resubmits != 0 {
		t.Fatalf("in-flight job contributed %d resubmits", st.Resubmits)
	}
	eng.Run()
	if st := g.Overheads(); st.Resubmits != 4 || st.Failed != 1 {
		t.Fatalf("after exhaustion: resubmits=%d failed=%d, want 4/1", st.Resubmits, st.Failed)
	}
}

// TestStageInFailureCountedPerCluster: a missing catalog file must show up
// in the cluster's failure accounting like a compute-time failure does.
func TestStageInFailureCountedPerCluster(t *testing.T) {
	cfg := quiet(2)
	eng := sim.NewEngine()
	g := New(eng, cfg)
	submitOne(t, eng, g, JobSpec{Name: "j", Inputs: []string{"gfn://absent"}, Runtime: time.Second})
	cs := g.ClusterStats()
	if len(cs) != 1 {
		t.Fatalf("clusters = %d", len(cs))
	}
	if cs[0].ForegroundJobs == 0 {
		t.Fatal("attempt not counted as a foreground job")
	}
	if cs[0].ForegroundFailed != cs[0].ForegroundJobs {
		t.Fatalf("stage-in failures invisible: %d attempts, %d failed", cs[0].ForegroundJobs, cs[0].ForegroundFailed)
	}

	// Compute-time failures keep being counted too.
	cfg2 := quiet(2)
	cfg2.Failures = FailureConfig{Probability: 1, DetectDelay: time.Second, MaxRetries: 2}
	eng2 := sim.NewEngine()
	g2 := New(eng2, cfg2)
	submitOne(t, eng2, g2, JobSpec{Name: "k", Runtime: time.Second})
	cs2 := g2.ClusterStats()
	var failed uint64
	for _, c := range cs2 {
		failed += c.ForegroundFailed
	}
	if failed != 2 {
		t.Fatalf("compute failures counted %d times, want 2 (MaxRetries)", failed)
	}
}

// TestIdleGridClusterSpread: on an idle grid the broker must not collapse
// onto the first (largest) cluster — the additive rank floor keeps the
// matchmaking noise effective at zero backlog.
func TestIdleGridClusterSpread(t *testing.T) {
	cfg := quiet(0)
	names := []string{"a", "b", "c", "d"}
	cfg.Clusters = nil
	for _, n := range names {
		cfg.Clusters = append(cfg.Clusters, ClusterConfig{
			Name: n, Nodes: 8, MinSpeed: 1, MaxSpeed: 1,
			TransferMBps: 1e12, TransferStreams: 8,
		})
	}
	eng := sim.NewEngine()
	g := New(eng, cfg)
	// Submit strictly one at a time so the grid is idle at every
	// matchmaking decision.
	const n = 200
	done := 0
	var next func()
	next = func() {
		if done >= n {
			return
		}
		g.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {
			done++
			next()
		})
	}
	next()
	eng.Run()
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	seen := map[string]int{}
	for _, r := range g.Records() {
		seen[r.Cluster]++
	}
	for _, name := range names {
		// Uniform would be 50 each; demand at least a quarter of that.
		if seen[name] < n/16 {
			t.Fatalf("idle-grid matchmaking starved cluster %s: %v", name, seen)
		}
	}
	if seen["a"] > n/2 {
		t.Fatalf("idle-grid matchmaking still biased to the first cluster: %v", seen)
	}
}

// TestDefaultConfigSaturation: the default grid must actually exhibit the
// paper's central observation — burst submission measurably inflates the
// mean submission latency over serial submission.
func TestDefaultConfigSaturation(t *testing.T) {
	if f := DefaultConfig().Overheads.SubmitLoadFactor; f <= 0 {
		t.Fatalf("DefaultConfig.SubmitLoadFactor = %v; the saturation knob is dead", f)
	}
	// Submit the same 200-job burst with the default factor and with the
	// knob forced off: the ratio of mean submit phases is the pure
	// saturation inflation (both runs draw identical base latencies from
	// the same seed and submission order).
	run := func(factor float64) time.Duration {
		cfg := DefaultConfig()
		cfg.Overheads.SubmitLoadFactor = factor
		cfg.BackgroundHorizon = 12 * time.Hour
		eng := sim.NewEngine()
		g := New(eng, cfg)
		const n = 200
		done := 0
		for i := 0; i < n; i++ {
			g.Submit(JobSpec{Runtime: 3 * time.Minute}, func(*JobRecord) { done++ })
		}
		for done < n && eng.Step() {
		}
		if done != n {
			t.Fatal("jobs missing")
		}
		return g.Phases().Submit
	}
	unloaded, loaded := run(0), run(DefaultConfig().Overheads.SubmitLoadFactor)
	if loaded < unloaded*11/10 {
		t.Fatalf("default-config burst submit phase %v not measurably above the unloaded %v (want ≥1.1x)",
			loaded, unloaded)
	}
}

// TestTenantStatsIsolationOnGrid exercises the tenancy accounting at the
// grid level: two tenants' overhead views are disjoint and partition the
// global statistics.
func TestTenantStatsIsolationOnGrid(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(8))
	ta, tb := g.Tenant("a"), g.Tenant("b")
	if g.Tenant("a") != ta {
		t.Fatal("tenant handles not memoized")
	}
	for i := 0; i < 5; i++ {
		ta.Submit(JobSpec{Runtime: time.Minute}, func(*JobRecord) {})
	}
	for i := 0; i < 3; i++ {
		tb.Submit(JobSpec{Runtime: time.Minute}, func(*JobRecord) {})
	}
	g.Submit(JobSpec{Runtime: time.Minute}, func(*JobRecord) {}) // default tenant
	eng.Run()

	sa, sb, global := ta.Overheads(), tb.Overheads(), g.Overheads()
	if sa.Jobs != 5 || sb.Jobs != 3 || global.Jobs != 9 {
		t.Fatalf("jobs a=%d b=%d global=%d, want 5/3/9", sa.Jobs, sb.Jobs, global.Jobs)
	}
	for _, r := range ta.Records() {
		if r.Tenant != "a" {
			t.Fatalf("tenant a's records include %q", r.Tenant)
		}
	}
	if pa := ta.Phases(); pa.Jobs != 5 {
		t.Fatalf("tenant a phase jobs = %d", pa.Jobs)
	}
	if def := g.Tenant("").Overheads(); def.Jobs != 1 {
		t.Fatalf("default tenant jobs = %d, want 1", def.Jobs)
	}
}

// TestFairShareGateInterleavesTenants: with one tenant's burst queued, a
// second tenant's single submission is served after one round-robin turn,
// not after the whole burst.
func TestFairShareGateInterleavesTenants(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(64)) // 2s deterministic submit latency
	burst, single := g.Tenant("burst"), g.Tenant("single")
	for i := 0; i < 50; i++ {
		burst.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
	}
	var rec *JobRecord
	eng.Schedule(time.Second, func() {
		rec = single.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
	})
	eng.Run()
	// Arrival at t=1s with one burst submission in service until t=2s and
	// the round-robin pointer on "burst": one more burst turn (2s–4s),
	// then "single" is served at 4s and accepted at 6s — not at 102s
	// behind the whole burst.
	if got, want := rec.Accepted, sim.Time(6*time.Second); got != want {
		t.Fatalf("single tenant accepted at %v, want %v (round-robin after the in-service job)", got, want)
	}

	// Strict FIFO control: the same arrival pattern parks the single
	// submission behind the whole burst.
	eng2 := sim.NewEngine()
	cfg := quiet(64)
	cfg.StrictFIFOSubmit = true
	g2 := New(eng2, cfg)
	b2, s2 := g2.Tenant("burst"), g2.Tenant("single")
	for i := 0; i < 50; i++ {
		b2.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
	}
	var rec2 *JobRecord
	eng2.Schedule(time.Second, func() {
		rec2 = s2.Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
	})
	eng2.Run()
	if got, want := rec2.Accepted, sim.Time(102*time.Second); got != want {
		t.Fatalf("strict-FIFO single tenant accepted at %v, want %v (behind the burst)", got, want)
	}
}
