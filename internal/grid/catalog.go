package grid

import "sort"

// Catalog is the replica catalog: it maps Grid File Names (GFNs) to file
// sizes. Locations are abstracted away — the transfer model only needs
// sizes — but the registration discipline is the real one: a job may only
// consume files that have been registered, and registers its outputs on
// completion, which is how data dependencies propagate through the grid.
type Catalog struct {
	files map[string]float64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{files: make(map[string]float64)}
}

// Register records a file and its size in MB. Re-registering overwrites,
// matching LCG2 semantics where a GFN points at the latest replica set.
func (c *Catalog) Register(name string, sizeMB float64) {
	c.files[name] = sizeMB
}

// Lookup returns the size of a registered file.
func (c *Catalog) Lookup(name string) (sizeMB float64, ok bool) {
	sizeMB, ok = c.files[name]
	return sizeMB, ok
}

// Has reports whether the file is registered.
func (c *Catalog) Has(name string) bool {
	_, ok := c.files[name]
	return ok
}

// Len returns the number of registered files.
func (c *Catalog) Len() int { return len(c.files) }

// Names returns all registered names in lexical order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.files))
	for n := range c.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
