package grid

import (
	"sort"
	"time"

	"repro/internal/arena"
	"repro/internal/sim"
)

// Replica is one physical copy of a registered file, pinned to a site (or
// unplaced, for files registered through the location-free path).
type Replica struct {
	// Site is where the copy lives. The zero site means "unplaced": the
	// replica is treated as local to every consumer.
	Site Site
	// SizeMB is the file size in MB (identical across replicas of one
	// GFN).
	SizeMB float64
}

// catEntry is one GFN's replica set. Replicas are kept sorted by site key
// with at most one replica per site, so every traversal — best-replica
// selection, Replicas, stage planning — is deterministic regardless of
// registration order. Entries are arena-allocated by the catalog, and the
// single-replica common case (every fresh registration) lives in the
// entry's inline array, so registering an output is allocation-free.
type catEntry struct {
	sizeMB float64
	reps   []Replica
	inline [1]Replica
}

// Catalog is the replica catalog: it maps Grid File Names (GFNs) to
// replica sets, each replica pinned to a site (a cluster's close storage
// element, or unplaced for the location-free compatibility path). The
// registration discipline is the real one: a job may only consume files
// that have been registered, and registers its outputs on completion at
// the site that produced them, which is how both data dependencies and
// data locality propagate through the grid. A LinkModel attached to the
// catalog prices the movement of a replica to a consuming site; stage-in
// picks the cheapest replica under that model.
type Catalog struct {
	files  map[string]*catEntry
	links  LinkModel
	fabric *Fabric

	// Active storage state (see storage.go): per-site storage elements,
	// grid- and element-level darkness, the k-replication floor and its
	// repair hook, and the engine clock for access-recency accounting.
	// All of it is inert until a storage element is configured or a grid
	// goes dark, which is what keeps the location-blind paths (and their
	// goldens) bit-identical.
	storage   map[string]*seState
	gridDark  map[string]bool
	darkGrids int
	darkSEs   int
	floor     int
	repair    func(name string)
	now       func() sim.Time

	// entries arena-allocates the catEntry records (chunked; entries live
	// for the catalog's lifetime, so re-registration reuses the existing
	// entry instead of minting a new one).
	entries arena.Chunked[catEntry]
}

// NewCatalog returns an empty catalog with the all-local link model
// (LocalLinks): until a federation attaches a real topology via SetLinks,
// every replica is as good as any other and the transfer model reduces to
// the location-blind one.
func NewCatalog() *Catalog {
	return &Catalog{files: make(map[string]*catEntry), links: LocalLinks()}
}

// SetLinks attaches the link model that prices replica movement. A nil
// model resets to LocalLinks. Federations call this once at construction;
// swapping models mid-run is legal but changes stage-in costs from that
// virtual instant on.
func (c *Catalog) SetLinks(lm LinkModel) {
	if lm == nil {
		lm = LocalLinks()
	}
	c.links = lm
}

// Links returns the link model pricing replica movement.
func (c *Catalog) Links() LinkModel { return c.links }

// SetFabric attaches the contended WAN fabric that remote stage-in legs
// acquire channels on. Nil detaches it, restoring the pure-delay remote
// transfer model (each job's remote fetch is an uncontended delay of the
// plan's RemoteTime — the PR 4 behaviour, and the default).
func (c *Catalog) SetFabric(f *Fabric) { c.fabric = f }

// Fabric returns the attached contended WAN fabric (nil when remote
// fetches are uncontended pure delays).
func (c *Catalog) Fabric() *Fabric { return c.fabric }

// AllLocal reports whether the attached link model is the all-local one,
// under which every fetch estimate is provably zero — the matchmaker's
// and the federation broker's licence to skip stage planning entirely on
// their ranking hot paths.
func (c *Catalog) AllLocal() bool {
	_, ok := c.links.(localLinks)
	return ok
}

// Register records a file and its size in MB as a single unplaced
// replica, the location-free compatibility path: an unplaced replica is
// local to every consumer, so single-grid code that never names locations
// keeps its exact pre-locality transfer behaviour. Re-registering
// replaces the whole replica set, matching LCG2 semantics where a GFN
// points at the latest replica set.
func (c *Catalog) Register(name string, sizeMB float64) {
	c.RegisterAt(name, sizeMB, Site{})
}

// RegisterAt records a file as a single replica at the given site,
// replacing any previous replica set for the name. Completed jobs use it
// to register their outputs at the cluster that produced them. The new
// replica joins its site's storage element (evicting under capacity
// pressure), replaced replicas leave theirs, and a replication floor
// above one fires the repair hook for the fresh single-copy set.
func (c *Catalog) RegisterAt(name string, sizeMB float64, site Site) {
	e, ok := c.files[name]
	if ok {
		if len(c.storage) > 0 {
			for _, r := range e.reps {
				c.removeResident(name, r.Site)
			}
		}
	} else {
		e = c.entries.New()
		c.files[name] = e
	}
	e.sizeMB = sizeMB
	e.inline[0] = Replica{Site: site, SizeMB: sizeMB}
	e.reps = e.inline[:1]
	c.addResident(name, sizeMB, site)
	c.checkFloor(name, e)
}

// AddReplica records an additional copy of an already-registered file at
// the given site, reporting false (and changing nothing) when the name is
// unknown. Adding a replica at a site that already holds one is a no-op.
func (c *Catalog) AddReplica(name string, site Site) bool {
	e, ok := c.files[name]
	if !ok {
		return false
	}
	key := site.key()
	i := sort.Search(len(e.reps), func(i int) bool { return e.reps[i].Site.key() >= key })
	if i < len(e.reps) && e.reps[i].Site == site {
		return true
	}
	e.reps = append(e.reps, Replica{})
	copy(e.reps[i+1:], e.reps[i:])
	e.reps[i] = Replica{Site: site, SizeMB: e.sizeMB}
	c.addResident(name, e.sizeMB, site)
	return true
}

// dropReplica removes the site's replica from the entry's sorted set,
// reporting whether one was present. It is the bare set maintenance —
// callers account storage residency and the replication floor themselves
// (eviction has already done both when it gets here).
func (c *Catalog) dropReplica(name string, site Site) bool {
	e, ok := c.files[name]
	if !ok {
		return false
	}
	key := site.key()
	i := sort.Search(len(e.reps), func(i int) bool { return e.reps[i].Site.key() >= key })
	if i >= len(e.reps) || e.reps[i].Site != site {
		return false
	}
	e.reps = append(e.reps[:i], e.reps[i+1:]...)
	return true
}

// RemoveReplica deletes the file's replica at the given site, reporting
// false (and changing nothing) when the name or the replica is unknown.
// The sorted-by-site invariant of the remaining set is preserved. The
// copy leaves its site's storage element, and dropping the set below the
// replication floor fires the repair hook. Removing the last replica
// keeps the name registered with an empty set: the file is known but has
// no fetchable copy, so stage plans report it unavailable (the replica-
// lost path) rather than missing (the unregistered-name path).
func (c *Catalog) RemoveReplica(name string, site Site) bool {
	if !c.dropReplica(name, site) {
		return false
	}
	c.removeResident(name, site)
	c.checkFloor(name, c.files[name])
	return true
}

// Unregister deletes the file and its whole replica set from the catalog,
// reporting false when the name is unknown. Every copy leaves its site's
// storage element; the repair hook does not fire (deliberate deletion is
// not a loss to repair).
func (c *Catalog) Unregister(name string) bool {
	e, ok := c.files[name]
	if !ok {
		return false
	}
	if len(c.storage) > 0 {
		for _, r := range e.reps {
			c.removeResident(name, r.Site)
		}
	}
	delete(c.files, name)
	return true
}

// Replicas returns a copy of the file's replica set in deterministic site
// order (nil for an unregistered name).
func (c *Catalog) Replicas(name string) []Replica {
	e, ok := c.files[name]
	if !ok {
		return nil
	}
	out := make([]Replica, len(e.reps))
	copy(out, e.reps)
	return out
}

// Lookup returns the size of a registered file.
func (c *Catalog) Lookup(name string) (sizeMB float64, ok bool) {
	e, ok := c.files[name]
	if !ok {
		return 0, false
	}
	return e.sizeMB, true
}

// Has reports whether the file is registered.
func (c *Catalog) Has(name string) bool {
	_, ok := c.files[name]
	return ok
}

// Len returns the number of registered files.
func (c *Catalog) Len() int { return len(c.files) }

// Names returns all registered names in lexical order.
func (c *Catalog) Names() []string {
	names := make([]string, 0, len(c.files))
	//moteur:orderinvariant keys are sorted immediately after collection
	for n := range c.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// best returns the cheapest live replica of the file for a consumer at
// site `to` under the catalog's link model, with its link and the live
// replica count. Replica selection is deterministic: the estimated fetch
// cost (Link.Cost) is minimized among replicas whose storage is up, and
// ties — every local replica ties at zero — resolve to the first replica
// in site-key order. ok is false for an unregistered name; live is zero
// when the name is registered but every copy is dark or evicted (the
// returned replica is meaningless then). While no storage is dark the
// liveness checks are skipped entirely, preserving the pre-storage scan.
func (c *Catalog) best(name string, to Site) (rep Replica, link Link, live int, ok bool) {
	e, ok := c.files[name]
	if !ok {
		return Replica{}, Link{}, 0, false
	}
	if !c.anyDark() {
		if len(e.reps) == 0 {
			return Replica{}, Link{}, 0, true
		}
		bestRep, bestLink := e.reps[0], c.links.Link(e.reps[0].Site, to)
		bestCost := bestLink.Cost(e.sizeMB)
		for _, rep := range e.reps[1:] {
			if bestCost == 0 {
				break // a local replica cannot be beaten
			}
			link := c.links.Link(rep.Site, to)
			if cost := link.Cost(e.sizeMB); cost < bestCost {
				bestRep, bestLink, bestCost = rep, link, cost
			}
		}
		return bestRep, bestLink, len(e.reps), true
	}
	var bestRep Replica
	var bestLink Link
	var bestCost time.Duration
	for _, r := range e.reps {
		if c.SiteDark(r.Site) {
			continue
		}
		l := c.links.Link(r.Site, to)
		cost := l.Cost(e.sizeMB)
		if live == 0 || cost < bestCost {
			bestRep, bestLink, bestCost = r, l, cost
		}
		live++
	}
	return bestRep, bestLink, live, true
}

// StagePlan is the resolved transfer work of one job's input set at a
// consuming site: for every input the cheapest replica was chosen under
// the catalog's link model, and the inputs are partitioned into the local
// class (staged through the consuming cluster's close-SE link, exactly as
// the location-blind model staged everything) and the remote class
// (fetched over intra-grid/WAN links first, at the link's own bandwidth
// and per-file latency).
type StagePlan struct {
	// LocalMB and LocalFiles cover inputs whose chosen replica is local
	// to the consumer.
	LocalMB    float64
	LocalFiles int
	// RemoteMB and RemoteFiles cover inputs fetched over non-local links.
	RemoteMB    float64
	RemoteFiles int
	// RemoteTime is the serialized fetch time of the remote class: the
	// sum over remote inputs of the chosen link's latency plus
	// size/bandwidth.
	RemoteTime time.Duration
	// Remote breaks the remote class down by source grid, in lexical
	// source-grid order — the legs a contended stage-in walks, acquiring
	// each leg's (fromGrid, toGrid) channel for the leg's fetch time. It
	// is only materialized by PlanDetailed; Plan leaves it nil so the
	// broker ranking hot paths stay allocation-free.
	Remote []RemoteLeg
	// Missing is the first input (in declaration order) absent from the
	// catalog; the plan is unusable when it is non-empty.
	Missing string
	// Unavailable is the first input (in declaration order) that is
	// registered but has no live replica — every copy sits on dark
	// storage or was evicted away. The plan is unusable when it is
	// non-empty, but unlike Missing the condition is transient: stage-in
	// retries it with backoff, and only exhausted retries turn it into
	// ErrReplicaLost.
	Unavailable string
	// FragileMB and FragileTime total the inputs whose chosen replica is
	// the file's last live copy reachable only over a non-local link: the
	// bytes at risk and their fetch cost. A consumer on the grid holding
	// the last copy scores zero (the copy is local — no WAN exposure), so
	// the replica-safety term of the ranked broker steers jobs toward the
	// data whose loss would strand them.
	FragileMB   float64
	FragileTime time.Duration
}

// RemoteLeg is the remote class of one source grid within a stage plan:
// the inputs fetched from replicas resident on that grid, aggregated so
// the whole leg holds the pair's WAN channel once for its serialized
// fetch time.
type RemoteLeg struct {
	// FromGrid names the grid the leg's replicas live on.
	FromGrid string
	// SizeMB and Files total the leg's inputs.
	SizeMB float64
	Files  int
	// Time is the leg's serialized fetch time (latency plus
	// size/bandwidth summed over its files).
	Time time.Duration
	// Sites lists the source sites contributing files to the leg, in
	// first-contribution order — the liveness set the contended stage-in
	// checks at leg start and completion, so a storage element dying
	// mid-fetch fails the leg.
	Sites []Site
}

// Plan resolves the inputs against the replica catalog for a consumer at
// site `to`: each input's cheapest replica is chosen and classified. The
// first unregistered input aborts planning and is reported in
// StagePlan.Missing. Plan is read-only and deterministic, so brokers and
// cluster rankers use it for cost estimates with exactly the semantics
// stage-in will pay.
func (c *Catalog) Plan(inputs []string, to Site) StagePlan {
	return c.plan(inputs, to, false, false)
}

// PlanDetailed is Plan with the per-source-grid leg breakdown
// (StagePlan.Remote) materialized, in lexical source-grid order. The
// contended stage-in path uses it to acquire each leg's WAN channel;
// rankers keep using Plan, whose aggregate-only result allocates nothing.
func (c *Catalog) PlanDetailed(inputs []string, to Site) StagePlan {
	return c.plan(inputs, to, true, false)
}

// stagePlanInto is the plan variant of the actual stage-in path: legs are
// materialized into the caller-owned plan (whose backing arrays are
// reused across re-staging rounds, attempts, and jobs) and the chosen
// replicas' access records are touched (the only place accesses count —
// planning for ranking stays read-only, so broker estimates never distort
// eviction recency or popularity).
func (c *Catalog) stagePlanInto(p *StagePlan, inputs []string, to Site) {
	c.planInto(p, inputs, to, true, true)
}

func (c *Catalog) plan(inputs []string, to Site, detail, touch bool) StagePlan {
	var p StagePlan
	c.planInto(&p, inputs, to, detail, touch)
	return p
}

// reset clears the plan for reuse, keeping the remote-leg backing array
// (and, through addLeg's spare-backing recycling, the legs' Sites arrays)
// so a recycled plan materializes its legs without allocating.
func (p *StagePlan) reset() {
	remote := p.Remote[:0]
	*p = StagePlan{Remote: remote}
}

// planInto resolves the inputs into the caller-owned plan, which is reset
// first. It is the engine behind Plan/PlanDetailed/stagePlanInto; callers
// that recycle the plan across rounds get leg materialization without
// per-round allocations.
func (c *Catalog) planInto(p *StagePlan, inputs []string, to Site, detail, touch bool) {
	p.reset()
	for _, name := range inputs {
		rep, link, live, ok := c.best(name, to)
		if !ok {
			p.Missing = name
			return
		}
		if live == 0 {
			p.Unavailable = name
			return
		}
		if touch {
			c.touch(name, rep)
		}
		if live == 1 && !link.Local {
			p.FragileMB += rep.SizeMB
			p.FragileTime += link.Cost(rep.SizeMB)
		}
		if link.Local {
			p.LocalMB += rep.SizeMB
			p.LocalFiles++
		} else {
			cost := link.Cost(rep.SizeMB)
			p.RemoteMB += rep.SizeMB
			p.RemoteFiles++
			p.RemoteTime += cost
			if detail {
				p.addLeg(rep.Site, rep.SizeMB, cost)
			}
		}
	}
}

// addLeg folds one remote fetch into its source grid's leg, keeping the
// legs sorted by source grid so the contended stage-in walks channels in
// an order independent of input declaration order, and recording the
// replica's site in the leg's liveness set.
func (p *StagePlan) addLeg(from Site, sizeMB float64, cost time.Duration) {
	i := sort.Search(len(p.Remote), func(i int) bool { return p.Remote[i].FromGrid >= from.Grid })
	if i < len(p.Remote) && p.Remote[i].FromGrid == from.Grid {
		l := &p.Remote[i]
		l.SizeMB += sizeMB
		l.Files++
		l.Time += cost
		for _, s := range l.Sites {
			if s == from {
				return
			}
		}
		l.Sites = append(l.Sites, from)
		return
	}
	// Steal the Sites backing of the slot the append is about to zero —
	// a recycled plan keeps its former legs' site arrays in the backing
	// array beyond len, so re-materializing legs allocates nothing once
	// the plan is warm.
	var spare []Site
	if n := len(p.Remote); n < cap(p.Remote) {
		spare = p.Remote[:n+1][n].Sites[:0]
	}
	p.Remote = append(p.Remote, RemoteLeg{})
	copy(p.Remote[i+1:], p.Remote[i:])
	p.Remote[i] = RemoteLeg{FromGrid: from.Grid, SizeMB: sizeMB, Files: 1, Time: cost, Sites: append(spare, from)}
}
