package grid

import "repro/internal/sim"

// Tenant is a named submission handle on a shared grid, the unit of
// multi-tenancy: every job submitted through the handle is tagged with the
// tenant's name, the fair-share gate at the serialized UI drains tenants
// round-robin so no tenant's burst starves the others, and the per-tenant
// statistics filter the global record set down to this tenant's jobs.
//
// Handles are memoized: Grid.Tenant returns the same *Tenant for the same
// name, so handle identity can stand in for tenant identity (grouped
// services rely on this when validating that all members target the same
// submission context).
type Tenant struct {
	g    *Grid
	name string
}

// Tenant returns the submission handle for the named tenant, creating it
// on first use. The empty name is the default tenant Grid.Submit uses.
func (g *Grid) Tenant(name string) *Tenant {
	if t, ok := g.tenants[name]; ok {
		return t
	}
	t := &Tenant{g: g, name: name}
	g.tenants[name] = t
	return t
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Grid returns the underlying shared grid (catalog, configuration, global
// statistics).
func (t *Tenant) Grid() *Grid { return t.g }

// Catalog returns the shared grid's replica catalog. Together with Submit
// it makes *Tenant satisfy services.Submitter.
func (t *Tenant) Catalog() *Catalog { return t.g.catalog }

// Engine returns the simulation engine the shared grid runs on. Campaign
// workflow builders use it to create tenant-local services (it is part of
// campaign.Handle).
func (t *Tenant) Engine() *sim.Engine { return t.g.Eng }

// Submit enters a job tagged with this tenant. Semantics are those of
// Grid.Submit; the only differences are the tenant tag on the record and
// the fair-share queue the submission waits in.
func (t *Tenant) Submit(spec JobSpec, done func(*JobRecord)) *JobRecord {
	return t.g.submit(t.name, spec, done)
}

// Records returns this tenant's job records, in submission order. Records
// of in-flight jobs are included and still mutating.
func (t *Tenant) Records() []*JobRecord {
	var out []*JobRecord
	for _, r := range t.g.records {
		if r.Tenant == t.name {
			out = append(out, r)
		}
	}
	return out
}

// Overheads computes overhead statistics over this tenant's jobs only.
// Because every record carries exactly one tenant tag, the per-tenant
// statistics of all tenants partition the global Grid.Overheads: job,
// failure and resubmission counts sum to the global ones.
func (t *Tenant) Overheads() OverheadStats {
	return overheadStats(t.g.records, t.owns)
}

// Phases computes the mean per-phase latencies over this tenant's
// completed jobs only.
func (t *Tenant) Phases() PhaseStats {
	return phaseStats(t.g.records, t.owns)
}

func (t *Tenant) owns(r *JobRecord) bool { return r.Tenant == t.name }
