package grid

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestCatalogReplicaSets(t *testing.T) {
	c := NewCatalog()
	a := Site{Grid: "g0", Cluster: "ce00"}
	b := Site{Grid: "g1", Cluster: "ce03"}

	c.RegisterAt("f", 10, a)
	if reps := c.Replicas("f"); len(reps) != 1 || reps[0].Site != a || reps[0].SizeMB != 10 {
		t.Fatalf("Replicas after RegisterAt = %v", reps)
	}
	if !c.AddReplica("f", b) {
		t.Fatal("AddReplica on a registered name failed")
	}
	if c.AddReplica("nope", b) {
		t.Fatal("AddReplica on an unregistered name succeeded")
	}
	if !c.AddReplica("f", b) {
		t.Fatal("duplicate AddReplica must be an ok no-op")
	}
	reps := c.Replicas("f")
	if len(reps) != 2 {
		t.Fatalf("replica count = %d, want 2 (duplicate site must not grow the set)", len(reps))
	}
	// Deterministic site order regardless of insertion order.
	if reps[0].Site != a || reps[1].Site != b {
		t.Fatalf("replicas out of site order: %v", reps)
	}
	if size, ok := c.Lookup("f"); !ok || size != 10 {
		t.Fatalf("Lookup = %v,%v", size, ok)
	}

	// Re-registration replaces the whole replica set: the GFN points at
	// the latest replica set, so the old copies are gone.
	c.RegisterAt("f", 20, b)
	reps = c.Replicas("f")
	if len(reps) != 1 || reps[0].Site != b || reps[0].SizeMB != 20 {
		t.Fatalf("re-registration did not replace the replica set: %v", reps)
	}
	// Location-free re-registration resets to a single unplaced replica.
	c.Register("f", 30)
	reps = c.Replicas("f")
	if len(reps) != 1 || !reps[0].Site.IsZero() || reps[0].SizeMB != 30 {
		t.Fatalf("Register did not reset to one unplaced replica: %v", reps)
	}
	if c.Replicas("ghost") != nil {
		t.Fatal("Replicas of an unregistered name must be nil")
	}
}

func TestCatalogNamesDeterministic(t *testing.T) {
	c := NewCatalog()
	for i := 9; i >= 0; i-- {
		c.Register(fmt.Sprintf("gfn://f%02d", i), 1)
	}
	first := c.Names()
	for i := range first {
		if want := fmt.Sprintf("gfn://f%02d", i); first[i] != want {
			t.Fatalf("Names()[%d] = %q, want %q (lexical order)", i, first[i], want)
		}
	}
	second := c.Names()
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("Names() not stable across calls: %v vs %v", first, second)
		}
	}
}

func TestLinkClasses(t *testing.T) {
	lm := &Links{
		IntraGrid: Link{MBps: 5, Latency: time.Second},
		WAN:       Link{MBps: 1, Latency: 10 * time.Second},
	}
	here := Site{Grid: "g0", Cluster: "ce00"}
	cases := []struct {
		name     string
		from, to Site
		local    bool
		cost     time.Duration // for 10 MB, when not local
	}{
		{"unplaced is local", Site{}, here, true, 0},
		{"same cluster is local", here, here, true, 0},
		{"same grid other cluster is intra-grid", Site{Grid: "g0", Cluster: "ce01"}, here, false, time.Second + 2*time.Second},
		{"grid-level view of resident data is local", Site{Grid: "g0", Cluster: "ce01"}, Site{Grid: "g0"}, true, 0},
		{"other grid is WAN", Site{Grid: "g1", Cluster: "ce00"}, here, false, 10*time.Second + 10*time.Second},
	}
	for _, tc := range cases {
		l := lm.Link(tc.from, tc.to)
		if l.Local != tc.local {
			t.Errorf("%s: Local = %v, want %v", tc.name, l.Local, tc.local)
		}
		if got := l.Cost(10); got != tc.cost {
			t.Errorf("%s: Cost(10MB) = %v, want %v", tc.name, got, tc.cost)
		}
	}

	// Zero-valued classes degrade to local: the zero Links is the
	// location-blind model, and DefaultWAN keeps intra-grid local.
	var blind Links
	if !blind.Link(Site{Grid: "g1", Cluster: "x"}, here).Local {
		t.Fatal("zero Links must treat WAN as local")
	}
	dw := DefaultWAN()
	if !dw.Link(Site{Grid: "g0", Cluster: "ce01"}, here).Local {
		t.Fatal("DefaultWAN must keep intra-grid transfers local")
	}
	if dw.Link(Site{Grid: "g1", Cluster: "ce00"}, here).Local {
		t.Fatal("DefaultWAN must not treat cross-grid transfers as local")
	}
	if !LocalLinks().Link(Site{Grid: "g1"}, here).Local {
		t.Fatal("LocalLinks must treat everything as local")
	}
}

func TestCatalogPlan(t *testing.T) {
	c := NewCatalog()
	c.SetLinks(&Links{WAN: Link{MBps: 2, Latency: 5 * time.Second}})
	here := Site{Grid: "g0", Cluster: "ce00"}
	c.RegisterAt("local", 40, here)
	c.Register("anywhere", 7)
	c.RegisterAt("far", 30, Site{Grid: "g1", Cluster: "ce00"})

	p := c.Plan([]string{"local", "anywhere", "far"}, here)
	if p.Missing != "" {
		t.Fatalf("unexpected missing %q", p.Missing)
	}
	if p.LocalMB != 47 || p.LocalFiles != 2 {
		t.Fatalf("local class = %v MB / %d files, want 47 / 2", p.LocalMB, p.LocalFiles)
	}
	if p.RemoteMB != 30 || p.RemoteFiles != 1 {
		t.Fatalf("remote class = %v MB / %d files, want 30 / 1", p.RemoteMB, p.RemoteFiles)
	}
	if want := 5*time.Second + 15*time.Second; p.RemoteTime != want {
		t.Fatalf("RemoteTime = %v, want %v", p.RemoteTime, want)
	}

	// A replica added on the consumer's grid turns the fetch local: the
	// cheapest replica wins.
	c.AddReplica("far", Site{Grid: "g0", Cluster: "ce07"})
	p = c.Plan([]string{"far"}, here)
	if p.RemoteFiles != 0 || p.LocalMB != 30 {
		t.Fatalf("best-replica selection ignored the local copy: %+v", p)
	}

	p = c.Plan([]string{"local", "ghost"}, here)
	if p.Missing != "ghost" {
		t.Fatalf("Missing = %q, want ghost", p.Missing)
	}
}

// TestMissingInputCountedInClusterStats pins the stage-in failure
// accounting: a job consuming an unregistered GFN fails with ErrNoSuchFile
// and the attempt shows up in the executing cluster's failure counters.
func TestMissingInputCountedInClusterStats(t *testing.T) {
	eng := sim.NewEngine()
	g := New(eng, quiet(2))
	rec := submitOne(t, eng, g, JobSpec{Name: "consumer", Inputs: []string{"gfn://absent"}, Runtime: time.Second})
	if rec.Status != StatusFailed || !errors.Is(rec.Err, ErrNoSuchFile) {
		t.Fatalf("status=%v err=%v, want failed with ErrNoSuchFile", rec.Status, rec.Err)
	}
	st := g.ClusterStats()
	if len(st) != 1 {
		t.Fatalf("cluster stats = %v", st)
	}
	if st[0].ForegroundJobs != 1 || st[0].ForegroundFailed != 1 {
		t.Fatalf("stage-in failure not counted: jobs=%d failed=%d, want 1/1",
			st[0].ForegroundJobs, st[0].ForegroundFailed)
	}
	if st[0].RemoteInMB != 0 || st[0].RemoteFetches != 0 {
		t.Fatalf("failed stage-in must not count remote bytes: %+v", st[0])
	}
}

// TestWANStageIn pins the WAN transfer phase end to end: a job whose only
// input replica lives on another grid pays the link's latency plus
// size/bandwidth, serialized before the close-SE transfer, and the fetch
// is visible in the record and the cluster accounting.
func TestWANStageIn(t *testing.T) {
	cfg := quiet(2)
	cfg.Name = "g0"
	eng := sim.NewEngine()
	g := New(eng, cfg)
	g.Catalog().SetLinks(&Links{WAN: Link{MBps: 2, Latency: 5 * time.Second}})
	g.Catalog().RegisterAt("gfn://far", 30, Site{Grid: "g1", Cluster: "ce00"})

	rec := submitOne(t, eng, g, JobSpec{Name: "j", Inputs: []string{"gfn://far"}, Runtime: 10 * time.Second})
	if rec.Status != StatusCompleted {
		t.Fatalf("status = %v (%v)", rec.Status, rec.Err)
	}
	// submit 2 + broker 3 + dispatch 5 + WAN fetch (5 + 30/2 = 20) = 30s
	// overhead; the ideal cluster link then moves the local class for
	// free.
	if got, want := rec.Overhead(), 30*time.Second; got != want {
		t.Fatalf("overhead = %v, want %v", got, want)
	}
	if rec.RemoteInMB != 30 || rec.LocalInMB != 0 {
		t.Fatalf("stage partition = local %v / remote %v, want 0 / 30", rec.LocalInMB, rec.RemoteInMB)
	}
	if want := 20 * time.Second; rec.RemoteFetch != want {
		t.Fatalf("RemoteFetch = %v, want %v", rec.RemoteFetch, want)
	}
	st := g.ClusterStats()[0]
	if st.RemoteInMB != 30 || st.RemoteFetches != 1 {
		t.Fatalf("cluster remote accounting = %v MB / %d fetches, want 30 / 1", st.RemoteInMB, st.RemoteFetches)
	}
}

// TestOutputsRegisterAtProducingSite pins locality propagation: a
// completed job's outputs become replicas at the cluster that ran it.
func TestOutputsRegisterAtProducingSite(t *testing.T) {
	cfg := quiet(2)
	cfg.Name = "g0"
	eng := sim.NewEngine()
	g := New(eng, cfg)
	rec := submitOne(t, eng, g, JobSpec{
		Name:    "producer",
		Runtime: time.Second,
		Outputs: []FileDecl{{Name: "gfn://out", SizeMB: 3}},
	})
	if rec.Status != StatusCompleted {
		t.Fatalf("status = %v", rec.Status)
	}
	reps := g.Catalog().Replicas("gfn://out")
	want := Site{Grid: "g0", Cluster: rec.Cluster}
	if len(reps) != 1 || reps[0].Site != want {
		t.Fatalf("output replicas = %v, want one at %v", reps, want)
	}
}

// twoClusterConfig returns a quiet two-cluster grid for ranking tests.
func twoClusterConfig() Config {
	cfg := quiet(4)
	cfg.Name = "g0"
	c := cfg.Clusters[0]
	c.Name = "ceA"
	c2 := c
	c2.Name = "ceB"
	cfg.Clusters = []ClusterConfig{c, c2}
	return cfg
}

// TestDataProximityRanking pins the broker's data-proximity term: with an
// intra-grid link cost and a meaningful weight, jobs land on the cluster
// whose close SE holds their inputs, despite matchmaking noise.
func TestDataProximityRanking(t *testing.T) {
	cfg := twoClusterConfig()
	cfg.DataProximityWeight = 0.01
	eng := sim.NewEngine()
	g := New(eng, cfg)
	g.Catalog().SetLinks(&Links{IntraGrid: Link{MBps: 1, Latency: 5 * time.Second}})
	// 200 MB on ceB: 205 s of intra-grid fetching anywhere else, i.e.
	// 2.05 rank units — far beyond the idle-grid noise band (≤ 0.065).
	g.Catalog().RegisterAt("gfn://big", 200, Site{Grid: "g0", Cluster: "ceB"})

	for i := 0; i < 8; i++ {
		rec := submitOne(t, eng, g, JobSpec{
			Name:   fmt.Sprintf("j%d", i),
			Inputs: []string{"gfn://big"},
			// Outputs are deliberately absent so the input replica stays
			// the only placed file.
			Runtime: time.Second,
		})
		if rec.Status != StatusCompleted {
			t.Fatalf("job %d: %v", i, rec.Err)
		}
		if rec.Cluster != "ceB" {
			t.Fatalf("job %d matched to %s, want ceB (data-proximity term)", i, rec.Cluster)
		}
		if rec.RemoteInMB != 0 {
			t.Fatalf("job %d fetched %v MB remotely despite running at the data", i, rec.RemoteInMB)
		}
	}

	// Control: with the term disabled the matchmaking noise must send at
	// least one of the jobs to the replica-less cluster.
	cfg = twoClusterConfig()
	cfg.DataProximityWeight = 0
	eng = sim.NewEngine()
	g = New(eng, cfg)
	g.Catalog().SetLinks(&Links{IntraGrid: Link{MBps: 1, Latency: 5 * time.Second}})
	g.Catalog().RegisterAt("gfn://big", 200, Site{Grid: "g0", Cluster: "ceB"})
	sawA := false
	for i := 0; i < 8; i++ {
		rec := submitOne(t, eng, g, JobSpec{
			Name:    fmt.Sprintf("j%d", i),
			Inputs:  []string{"gfn://big"},
			Runtime: time.Second,
		})
		if rec.Cluster == "ceA" {
			sawA = true
		}
	}
	if !sawA {
		t.Fatal("control run never used ceA — the proximity assertion above is vacuous")
	}
}

// TestWeightedFairShare pins the weighted drain order of the fair-share
// gate: with weight 2, tenant a clears the serialized UI twice per round
// against tenant b's once — the paper's shared-UI contention, now with
// priorities.
func TestWeightedFairShare(t *testing.T) {
	cfg := quiet(4)
	cfg.TenantWeights = map[string]int{"a": 2}
	eng := sim.NewEngine()
	g := New(eng, cfg)
	for i := 0; i < 12; i++ {
		g.Tenant("a").Submit(JobSpec{Name: fmt.Sprintf("a%d", i), Runtime: time.Second}, func(*JobRecord) {})
	}
	for i := 0; i < 6; i++ {
		g.Tenant("b").Submit(JobSpec{Name: fmt.Sprintf("b%d", i), Runtime: time.Second}, func(*JobRecord) {})
	}
	eng.Run()

	// Acceptance order = UI drain order (the UI is serialized). Expect
	// a,a,b repeating until both queues drain together.
	recs := append([]*JobRecord(nil), g.Records()...)
	for i := 1; i < len(recs); i++ {
		for j := i; j > 0 && recs[j].Accepted < recs[j-1].Accepted; j-- {
			recs[j], recs[j-1] = recs[j-1], recs[j]
		}
	}
	var order []string
	for _, r := range recs {
		order = append(order, r.Tenant)
	}
	for i := 0; i < 18; i++ {
		want := "a"
		if i%3 == 2 {
			want = "b"
		}
		if order[i] != want {
			t.Fatalf("drain order[%d] = %s, want %s (full order %v)", i, order[i], want, order)
		}
	}
}

// TestWeightedFairShareDefaultUnchanged pins back-compat: without
// TenantWeights the weighted gate is the historical round-robin exactly.
func TestWeightedFairShareDefaultUnchanged(t *testing.T) {
	run := func(weights map[string]int) []sim.Time {
		cfg := quiet(4)
		cfg.TenantWeights = weights
		eng := sim.NewEngine()
		g := New(eng, cfg)
		for i := 0; i < 9; i++ {
			g.Tenant("a").Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
			g.Tenant("b").Submit(JobSpec{Runtime: time.Second}, func(*JobRecord) {})
		}
		eng.Run()
		var acc []sim.Time
		for _, r := range g.Records() {
			acc = append(acc, r.Accepted)
		}
		return acc
	}
	plain := run(nil)
	weighted := run(map[string]int{"a": 1, "b": 0}) // sub-1 weights mean 1
	for i := range plain {
		if plain[i] != weighted[i] {
			t.Fatalf("acceptance[%d] differs: %v vs %v (weight-1 gate must equal the historical one)",
				i, plain[i], weighted[i])
		}
	}
}
