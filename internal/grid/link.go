package grid

import "time"

// Site identifies a storage location: a computing element's close storage
// element within a named grid. The zero Site is the "unplaced" location of
// a file registered through the location-free compatibility path
// (Catalog.Register): every link model must treat an unplaced replica as
// local to any consumer, which is what keeps single-grid code that never
// names locations behaving exactly as before the catalog learned about
// them.
type Site struct {
	// Grid names the infrastructure the replica lives on (Config.Name;
	// empty for a standalone grid built without a name).
	Grid string
	// Cluster names the computing element whose close SE holds the
	// replica (empty when only the grid is known, e.g. a broker's view of
	// a member grid as a whole).
	Cluster string
}

// IsZero reports whether the site is the unplaced location.
func (s Site) IsZero() bool { return s == Site{} }

// key returns the site's deterministic ordering key.
func (s Site) key() string { return s.Grid + "\x00" + s.Cluster }

// String renders the site as "grid/cluster" ("(unplaced)" for the zero
// site).
func (s Site) String() string {
	if s.IsZero() {
		return "(unplaced)"
	}
	return s.Grid + "/" + s.Cluster
}

// Link describes one edge of the transfer topology: the cost of moving a
// file from a replica's site to a consuming worker node.
type Link struct {
	// Local marks the replica as reachable through the consuming
	// cluster's close-SE link: the transfer is paid on that link's shared
	// streams at the cluster's own bandwidth, exactly as the pre-locality
	// transfer model did for every file. MBps and Latency are ignored.
	Local bool
	// MBps is the link bandwidth for a non-local fetch. Zero means the
	// fetch costs only its latency.
	MBps float64
	// Latency is the fixed per-file setup cost of a non-local fetch.
	Latency time.Duration
}

// Cost returns the estimated wall time of fetching sizeMB over the link
// (zero for a local link — the close-SE cost is uniform across replicas
// and is paid separately by the cluster's transfer phase).
func (l Link) Cost(sizeMB float64) time.Duration {
	if l.Local {
		return 0
	}
	d := l.Latency
	if l.MBps > 0 {
		d += time.Duration(sizeMB / l.MBps * float64(time.Second))
	}
	return d
}

// LinkModel gives the link between a replica's site and a consuming site.
// Implementations must be pure functions of their configuration and the
// two sites: stage-in planning and broker ranking call Link at arbitrary
// points of the event schedule, so any hidden state would break the
// simulator's determinism. An unplaced replica (from.IsZero()) must map to
// a local link.
type LinkModel interface {
	// Link returns the edge from the replica's site to the consumer.
	Link(from, to Site) Link
}

// Links is the default three-class link model of an LCG2-style federation:
// intra-cluster (the replica sits behind the consuming CE's close SE —
// free beyond the close-SE transfer every job pays), intra-grid (another
// CE of the same grid) and WAN (another grid of the federation), with
// intra-cluster ≪ intra-grid ≪ WAN. A zero-valued class is treated as
// local, so the zero Links value reproduces the location-blind transfer
// model exactly.
type Links struct {
	// IntraGrid is the edge between two clusters of the same grid. The
	// zero value treats intra-grid transfers as local (the default: the
	// paper's close-SE abstraction already folds intra-grid movement into
	// the cluster link).
	IntraGrid Link
	// WAN is the edge between two member grids of a federation. The zero
	// value treats cross-grid transfers as local (the PR 3 shared-catalog
	// behaviour, where federated staging was free).
	WAN Link
}

// Link implements LinkModel: same cluster (or an unplaced replica) is
// local, same grid is IntraGrid, anything else is WAN.
func (l *Links) Link(from, to Site) Link {
	if from.IsZero() || from == to {
		return Link{Local: true}
	}
	if from.Grid == to.Grid && from.Cluster != "" && to.Cluster != "" && from.Cluster != to.Cluster {
		return orLocal(l.IntraGrid)
	}
	if from.Grid == to.Grid {
		// Same grid, but one side only knows the grid (a broker's view):
		// resident on the grid means no WAN movement.
		return Link{Local: true}
	}
	return orLocal(l.WAN)
}

// orLocal degrades a zero-valued link class to local.
func orLocal(l Link) Link {
	if !l.Local && l.MBps == 0 && l.Latency == 0 {
		return Link{Local: true}
	}
	return l
}

// GridPair is one ordered (from, to) edge of the grid-level transfer
// topology: the direction a replica moves when a job on grid To consumes
// a file resident on grid From. Per-pair link matrices and the contended
// WAN fabric key their state by it.
type GridPair struct {
	// From names the grid the replica lives on.
	From string
	// To names the grid consuming the replica.
	To string
}

// LinkMatrix is the per-pair link model: a measured (fromGrid, toGrid) →
// bandwidth/latency matrix, the shape of Venugopal et al.'s per-pair link
// quality ranking and Sadeghiram et al.'s distance matrices, layered over
// a class-based fallback. Pairs present in the matrix are priced exactly
// as listed; pairs absent from it fall back to the class model, so a
// matrix populated with the uniform class constants is bit-identical to
// the class model itself (the strict-generalization property the tests
// pin). Intra-cluster transfers and unplaced replicas are always local,
// and a grid-level consumer view of data resident on its own grid is
// local too, exactly as in Links.
type LinkMatrix struct {
	// Pairs maps ordered grid pairs to their measured link. A zero-valued
	// link listed here degrades to local, matching the class semantics.
	Pairs map[GridPair]Link
	// Fallback prices pairs absent from the matrix. Nil means the zero
	// Links model (everything local), so a matrix alone prices exactly
	// the pairs it lists.
	Fallback LinkModel
}

// Link implements LinkModel: same cluster (or an unplaced replica) is
// local, a listed (fromGrid, toGrid) pair is priced by the matrix, and
// everything else falls back to the class model.
func (m *LinkMatrix) Link(from, to Site) Link {
	if from.IsZero() || from == to {
		return Link{Local: true}
	}
	if from.Grid == to.Grid && (from.Cluster == "" || to.Cluster == "" || from.Cluster == to.Cluster) {
		// Same grid with only grid-level knowledge (a broker's view) or
		// the same close SE: resident means no movement, as in Links.
		return Link{Local: true}
	}
	if l, ok := m.Pairs[GridPair{From: from.Grid, To: to.Grid}]; ok {
		return orLocal(l)
	}
	if m.Fallback != nil {
		return m.Fallback.Link(from, to)
	}
	return Link{Local: true}
}

// DefaultWAN returns the standard federation link model: intra-grid
// transfers stay local (close-SE abstraction) and cross-grid fetches pay a
// 2 MB/s WAN link with a 5 s per-file setup latency — 5× slower than the
// default clusters' 10 MB/s close-SE links, so the broker has a real
// data-movement cost to trade against middleware quality.
func DefaultWAN() *Links {
	return &Links{WAN: Link{MBps: 2, Latency: 5 * time.Second}}
}

// LocalLinks returns the link model that treats every replica as local:
// the location-blind transfer model the catalog had before it learned
// about sites (and the PR 3 federation's free cross-grid staging). It is
// the compatibility escape hatch and the control arm of locality
// experiments.
func LocalLinks() LinkModel { return localLinks{} }

type localLinks struct{}

// Link implements LinkModel: everything is local.
func (localLinks) Link(from, to Site) Link { return Link{Local: true} }
