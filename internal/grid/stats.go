package grid

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// OverheadStats summarizes the grid overhead (submission to start of
// computation) across completed jobs — the quantity the paper reports as
// "around 10 minutes, ± 5 minutes" on EGEE.
type OverheadStats struct {
	Jobs      int
	Mean      time.Duration
	SD        time.Duration
	Min, Max  time.Duration
	P50, P90  time.Duration
	Resubmits int // attempts beyond the first, across terminal jobs
	Failed    int // jobs that ended in StatusFailed
}

// Overheads computes overhead statistics over all completed jobs.
// Resubmits and Failed only count terminal (completed or failed) jobs:
// in-flight records are still mutating and their attempts are not yet
// attributable.
func (g *Grid) Overheads() OverheadStats {
	return overheadStats(g.records, nil)
}

// OverheadsOf computes overhead statistics over an arbitrary record slice.
// It is the aggregation hook for callers that assemble record sets across
// grids — a federation's global and per-tenant views — with exactly the
// semantics of Grid.Overheads.
func OverheadsOf(records []*JobRecord) OverheadStats {
	return overheadStats(records, nil)
}

// overheadStats computes the statistics over the records accepted by keep
// (nil keeps everything). Percentiles use the upper nearest-rank
// convention: P50 is durs[n/2] and P90 is durs[n*9/10] of the sorted
// overheads, so on tiny samples they degenerate towards Max (n=1: both
// equal the single observation; n=2: both equal the larger one).
func overheadStats(records []*JobRecord, keep func(*JobRecord) bool) OverheadStats {
	var durs []time.Duration
	st := OverheadStats{}
	for _, r := range records {
		if keep != nil && !keep(r) {
			continue
		}
		switch r.Status {
		case StatusCompleted:
			st.Resubmits += r.Attempts - 1
			durs = append(durs, r.Overhead())
		case StatusFailed:
			st.Resubmits += r.Attempts - 1
			st.Failed++
		}
	}
	st.Jobs = len(durs)
	if st.Jobs == 0 {
		return st
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var sum, sum2 float64
	for _, d := range durs {
		f := d.Seconds()
		sum += f
		sum2 += f * f
	}
	mean := sum / float64(st.Jobs)
	varr := sum2/float64(st.Jobs) - mean*mean
	if varr < 0 {
		varr = 0
	}
	st.Mean = time.Duration(mean * float64(time.Second))
	st.SD = time.Duration(math.Sqrt(varr) * float64(time.Second))
	st.Min = durs[0]
	st.Max = durs[len(durs)-1]
	st.P50 = durs[len(durs)/2]
	st.P90 = durs[len(durs)*9/10]
	return st
}

// String renders the stats in a one-line human-readable form.
func (s OverheadStats) String() string {
	if s.Jobs == 0 {
		return "no completed jobs"
	}
	return fmt.Sprintf("jobs=%d overhead mean=%v sd=%v min=%v p50=%v p90=%v max=%v resubmits=%d failed=%d",
		s.Jobs, s.Mean.Round(time.Second), s.SD.Round(time.Second),
		s.Min.Round(time.Second), s.P50.Round(time.Second),
		s.P90.Round(time.Second), s.Max.Round(time.Second), s.Resubmits, s.Failed)
}

// PhaseStats decomposes the mean overhead of completed jobs into the
// middleware phases: UI submission, broker matchmaking, batch-queue wait
// plus LRMS dispatch, and input staging. The decomposition attributes each
// optimization's effect to the phase it targets (job grouping removes
// whole submission+broker+queue chains; data parallelism overlaps queue
// waits; service parallelism overlaps everything).
type PhaseStats struct {
	Jobs    int
	Submit  time.Duration // Submitted → Accepted (UI latency incl. queueing)
	Broker  time.Duration // Accepted → Matched (matchmaking, final attempt)
	Queue   time.Duration // Matched → Started + dispatch inside the CE
	Staging time.Duration // Started → InputDone includes dispatch+transfer
}

// Phases computes the mean per-phase latencies over completed jobs.
// Resubmitted jobs attribute everything after acceptance to the final
// attempt, so phase means stay comparable across failure rates.
func (g *Grid) Phases() PhaseStats {
	return phaseStats(g.records, nil)
}

// PhasesOf computes the per-phase means over an arbitrary record slice,
// with exactly the semantics of Grid.Phases. See OverheadsOf.
func PhasesOf(records []*JobRecord) PhaseStats {
	return phaseStats(records, nil)
}

// phaseStats computes the per-phase means over the completed records
// accepted by keep (nil keeps everything).
func phaseStats(records []*JobRecord, keep func(*JobRecord) bool) PhaseStats {
	var st PhaseStats
	var submit, broker, queue, staging float64
	for _, r := range records {
		if keep != nil && !keep(r) {
			continue
		}
		if r.Status != StatusCompleted {
			continue
		}
		st.Jobs++
		submit += float64(r.Accepted - r.Submitted)
		broker += float64(r.Matched - r.Accepted)
		queue += float64(r.Started - r.Matched)
		staging += float64(r.InputDone - r.Started)
	}
	if st.Jobs == 0 {
		return st
	}
	n := float64(st.Jobs)
	st.Submit = time.Duration(submit / n)
	st.Broker = time.Duration(broker / n)
	st.Queue = time.Duration(queue / n)
	st.Staging = time.Duration(staging / n)
	return st
}

// String renders the phase means in one line.
func (p PhaseStats) String() string {
	if p.Jobs == 0 {
		return "no completed jobs"
	}
	return fmt.Sprintf("jobs=%d submit=%v broker=%v queue=%v staging=%v",
		p.Jobs, p.Submit.Round(time.Second), p.Broker.Round(time.Second),
		p.Queue.Round(time.Second), p.Staging.Round(time.Second))
}
