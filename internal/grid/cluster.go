package grid

import (
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// cluster is one computing element: a FIFO batch queue in front of a pool
// of heterogeneous worker nodes, a shared transfer link to its close
// storage element, and an optional background (multi-user) load.
type cluster struct {
	g        *Grid
	cfg      ClusterConfig
	site     Site // the close SE's location: {grid name, cluster name}
	nodes    *sim.Resource
	link     *sim.Resource
	rnd      *rng.Source
	bgJobs   uint64 // background jobs started
	fgJobs   uint64 // foreground (workflow) attempts executed
	fgFailed uint64
	// remoteMB / remoteFetches account input bytes (and file fetches)
	// pulled over non-local links because no replica sat behind the close
	// SE — the per-cluster face of the WAN transfer model. wanWait
	// accumulates the time those fetches spent queued on contended WAN
	// channels before being granted (zero without a fabric).
	remoteMB      float64
	remoteFetches uint64
	wanWait       time.Duration
	// restages counts re-staging rounds: stage-in retries forced by a
	// replica source dark at leg start or dying mid-fetch (each round
	// re-plans against the surviving replicas after sim-time backoff).
	restages uint64
	// bgHorizon is the stop instant of the background load generator
	// (carried here so the arrival chain runs through package functions
	// instead of a recursive closure).
	bgHorizon time.Duration
}

func newCluster(g *Grid, cfg ClusterConfig, rnd *rng.Source) *cluster {
	if cfg.Nodes <= 0 {
		panic("grid: cluster with no nodes: " + cfg.Name)
	}
	streams := cfg.TransferStreams
	if streams <= 0 {
		streams = 1
	}
	return &cluster{
		g:     g,
		cfg:   cfg,
		site:  Site{Grid: g.cfg.Name, Cluster: cfg.Name},
		nodes: sim.NewResource(g.Eng, cfg.Nodes),
		link:  sim.NewResource(g.Eng, streams),
		rnd:   rnd,
	}
}

// rankFloor keeps the matchmaking perturbation alive on an idle grid: with
// a bare backlog×noise product every idle cluster would rank exactly 0.0
// and pickCluster's strict comparison would always select the first
// (largest) computing element. Adding the floor before scaling makes the
// idle-grid rank the noise itself, so idle clusters are picked uniformly,
// while under load the backlog term dominates as before.
const rankFloor = 0.05

// rank estimates how long a new job would wait here: queue backlog scaled
// by pool size, perturbed by the caller-provided noise factor, plus the
// data-proximity term — the estimated seconds of non-local input fetching
// the job would pay at this cluster, weighted by
// Config.DataProximityWeight. The proximity term is added after the noise
// so that clusters differing only in backlog keep their pre-locality
// ranking exactly (the estimate is a constant across clusters whenever the
// job's replicas are unplaced, local everywhere, or on another grid
// entirely — argmin unchanged).
func (c *cluster) rank(noise, fetchSeconds float64) float64 {
	backlog := float64(c.nodes.Waiting()+c.nodes.Busy()) / float64(c.cfg.Nodes)
	return (backlog+rankFloor)*noise + c.g.cfg.DataProximityWeight*fetchSeconds
}

// fetchEstimate returns the estimated seconds of non-local input fetching
// a job with these inputs would pay at this cluster — the data-proximity
// signal of the broker's cluster ranking. A plan with a missing input
// estimates zero rather than its partial sum: the job will fail at
// stage-in wherever it lands, so the partial cost must not steer the
// cluster choice.
func (c *cluster) fetchEstimate(inputs []string) float64 {
	if len(inputs) == 0 {
		return 0
	}
	p := c.g.catalog.Plan(inputs, c.site)
	if p.Missing != "" || p.Unavailable != "" {
		return 0
	}
	return p.RemoteTime.Seconds()
}

// enqueue places a job attempt in the batch queue. The attempt's
// subsequent lifecycle runs through package-level functions carrying the
// job's run, so queueing, dispatch, staging, and compute schedule without
// allocating per-event closures.
func (c *cluster) enqueue(run *jobRun) {
	run.rec.Status = StatusQueued
	c.nodes.AcquireArg(nodeGranted, run)
}

// nodeGranted runs when a worker node is granted: the LRMS dispatch
// overhead between node grant and process start begins.
func nodeGranted(x any) {
	run := x.(*jobRun)
	c := run.c
	c.fgJobs++
	run.rec.Status = StatusRunning
	run.rec.Started = c.g.Eng.Now()
	dispatch := c.g.drawLogNormal(c.g.cfg.Overheads.DispatchMean, c.g.cfg.Overheads.DispatchSD)
	c.g.Eng.ScheduleArg(dispatch, dispatchDone, run)
}

// dispatchDone runs when the LRMS dispatch overhead elapses: input staging
// starts on the worker node.
func dispatchDone(x any) {
	run := x.(*jobRun)
	run.c.stageIn(run)
}

// stageIn transfers the job's input files from the storage elements, then
// computes, then stages outputs back. The node is held throughout, as on
// LCG2 where the job wrapper performs staging on the worker node. For
// every input the cheapest replica under the catalog's link model is
// chosen; inputs local to this cluster's close SE move over the shared
// close-SE link exactly as the location-blind model moved everything,
// while non-local inputs are first fetched over their intra-grid/WAN
// links, serialized per job at the link's own bandwidth and per-file
// latency. Without a fabric the whole remote class is one pure delay;
// with one, the fetch walks its per-source-grid legs in order, each leg
// holding the (fromGrid, toGrid) channel for its fetch time, so
// concurrent remote fetches queue and the queueing is accounted as
// WANWait. When the plan has no remote class, the event schedule is
// bit-identical to the pre-locality one (no extra event is inserted), the
// backwards-compatibility invariant the single-grid goldens pin.
func (c *cluster) stageIn(run *jobRun) {
	if c.g.down {
		// The grid went dark while the attempt was being dispatched: it
		// fails before touching storage, like any stage-in failure.
		c.fgFailed++
		c.release(run, true)
		return
	}
	run.tries = 0
	c.stageAttempt(run)
}

// stageAttempt runs one re-staging round: re-plan against the replicas
// live right now, then fetch. run.tries counts the rounds already failed
// by this attempt; a retryable storage failure (source dark at leg start,
// source dying mid-fetch, or no live replica of an input at all) hands
// off to stageRetry, which backs off in sim time and re-plans, up to
// Config.StageRetries rounds.
func (c *cluster) stageAttempt(run *jobRun) {
	cat := c.g.catalog
	rec := run.rec
	if len(rec.Spec.Inputs) > 0 && cat.SiteDark(c.site) {
		// The close SE every input must land on is dark: nothing can be
		// staged here. Fail the attempt plainly (no terminal error) —
		// resubmission redraws the cluster, and a federation can move the
		// job off a storage-dark grid entirely.
		c.fgFailed++
		c.release(run, true)
		return
	}
	cat.stagePlanInto(&run.plan, rec.Spec.Inputs, c.site)
	plan := &run.plan
	if plan.Missing != "" {
		// A stage-in failure is a failed attempt like any other and
		// must show up in the per-cluster failure accounting.
		c.fgFailed++
		rec.Err = &FileError{Job: rec.Spec.Name, File: plan.Missing, Err: ErrNoSuchFile}
		c.release(run, true)
		return
	}
	if plan.Unavailable != "" {
		// Registered but no live replica anywhere: transient by default
		// (an SE outage may end), terminal ErrReplicaLost if it persists
		// through the whole retry budget.
		c.stageRetry(run, plan.Unavailable)
		return
	}
	rec.LocalInMB, rec.RemoteInMB = plan.LocalMB, plan.RemoteMB
	rec.RemoteFetch = plan.RemoteTime
	// Like the fields above, WANFetch and WANWait describe the last
	// round of the last attempt only: a re-staged or resubmitted job
	// starts its wait accounting over, so the observed/nominal stretch
	// telemetry compares like with like.
	rec.WANFetch, rec.WANWait = 0, 0
	if plan.RemoteFiles == 0 {
		c.stageLocal(run)
		return
	}
	c.remoteMB += plan.RemoteMB
	c.remoteFetches += uint64(plan.RemoteFiles)
	if cat.Fabric() == nil && !cat.storageActive() {
		// Location-aware but storage-passive configuration: the whole
		// remote class stays one pure delay — the exact event the
		// pre-storage model scheduled, which the goldens pin.
		c.g.Eng.ScheduleArg(plan.RemoteTime, remoteDelayDone, run)
		return
	}
	// Contended path: the legs run in plan order (lexical source grid),
	// serialized per job exactly like the pure-delay model, but each
	// cross-grid leg first waits for its pair channel. With free
	// channels the elapsed time degenerates to plan.RemoteTime and
	// WANWait stays zero. Same-grid legs (a remote intra-grid class) are
	// not WAN traffic: they keep the pure-delay cost, so intra-grid
	// congestion never occupies the WAN channels or inflates the
	// observed/nominal stretch the broker applies to cross-grid
	// estimates. Each leg checks its source sites' liveness twice — at
	// leg start (a source that went dark since planning serves nothing)
	// and at leg completion (a source dying mid-fetch truncates the
	// transfer) — and either failure re-stages from the survivors.
	run.leg = 0
	c.legNext(run)
}

// remoteDelayDone runs when the storage-passive remote class's pure delay
// elapses: the close-SE (local class) transfer starts.
func remoteDelayDone(x any) {
	run := x.(*jobRun)
	run.c.stageLocal(run)
}

// stageLocal moves the plan's local class over the close-SE link and
// proceeds to compute — the tail of every stage-in.
func (c *cluster) stageLocal(run *jobRun) {
	c.transferRun(run.plan.LocalMB, run.plan.LocalFiles, localInDone, run)
}

// localInDone runs when the close-SE transfer of the input's local class
// completes: staging is over and the compute phase starts.
func localInDone(x any, _ sim.Time) {
	run := x.(*jobRun)
	run.rec.InputDone = run.c.g.Eng.Now()
	run.c.compute(run)
}

// legNext starts the next remote leg of the contended stage-in walk, or —
// legs exhausted — the local class.
func (c *cluster) legNext(run *jobRun) {
	plan := &run.plan
	if run.leg == len(plan.Remote) {
		c.stageLocal(run)
		return
	}
	l := &plan.Remote[run.leg]
	run.leg++
	cat := c.g.catalog
	if cat.legDark(*l) {
		c.stageRetry(run, "")
		return
	}
	if cat.Fabric() == nil || l.FromGrid == c.site.Grid {
		c.g.Eng.ScheduleArg(l.Time, legDelayDone, run)
		return
	}
	run.rec.WANFetch += l.Time
	cat.Fabric().Channel(l.FromGrid, c.site.Grid).UseWaitArg(l.Time, legFabricDone, run)
}

// legDelayDone runs when an uncontended (intra-grid or fabric-less) leg's
// pure delay elapses.
func legDelayDone(x any) {
	run := x.(*jobRun)
	run.c.legAfter(run)
}

// legFabricDone runs when a cross-grid leg's channel hold completes: the
// queueing wait is accounted before the liveness re-check, exactly as the
// closure-based walk did.
func legFabricDone(x any, waited sim.Time) {
	run := x.(*jobRun)
	run.rec.WANWait += time.Duration(waited)
	run.c.wanWait += time.Duration(waited)
	run.c.legAfter(run)
}

// legAfter finishes one leg: re-check the just-fetched leg's sources (a
// source dying mid-fetch truncates the transfer, forcing a re-stage) and
// move on.
func (c *cluster) legAfter(run *jobRun) {
	l := run.plan.Remote[run.leg-1]
	if c.g.catalog.legDark(l) {
		c.stageRetry(run, "")
		return
	}
	c.legNext(run)
}

// stageRetry handles a retryable storage failure of round run.tries: back
// off in sim time (Config.StageRetryBackoff doubling per round, the node
// held throughout like a real wrapper's retry loop) and re-plan, or — once
// the Config.StageRetries budget is spent — fail the attempt. file names
// the input that had no live replica at planning time; when the exhausted
// failure is such a planning failure the attempt fails terminally with
// ErrReplicaLost (every copy stayed unreachable through the whole
// budget), while a leg-level failure exhausting the budget stays a plain
// attempt failure: the job re-plans on resubmission, where surviving
// replicas may serve it.
func (c *cluster) stageRetry(run *jobRun, file string) {
	if run.tries >= c.g.stageRetries() {
		c.fgFailed++
		if file != "" {
			run.rec.Err = &FileError{Job: run.rec.Spec.Name, File: file, Err: ErrReplicaLost}
		}
		c.release(run, true)
		return
	}
	c.restages++
	run.rec.Restages++
	backoff := c.g.stageBackoff() << uint(run.tries)
	run.tries++
	c.g.Eng.ScheduleArg(backoff, retryWake, run)
}

// retryWake runs when a re-staging backoff elapses: re-check the grid (it
// may have gone dark during the backoff) and re-plan.
func retryWake(x any) {
	run := x.(*jobRun)
	c := run.c
	if c.g.down {
		c.fgFailed++
		c.release(run, true)
		return
	}
	c.stageAttempt(run)
}

func (c *cluster) compute(run *jobRun) {
	speed := c.rnd.Uniform(c.cfg.MinSpeed, c.cfg.MaxSpeed)
	runtime := time.Duration(float64(run.rec.Spec.Runtime) / speed)

	if c.rnd.Bernoulli(c.g.cfg.Failures.Probability) {
		// The attempt dies partway through; the middleware notices only
		// after a detection delay.
		c.fgFailed++
		elapsed := time.Duration(c.rnd.Float64() * float64(runtime))
		c.g.Eng.ScheduleArg(elapsed+c.g.cfg.Failures.DetectDelay, computeFailed, run)
		return
	}
	c.g.Eng.ScheduleArg(runtime, computeDone, run)
}

// computeFailed runs when a mid-compute failure's detection delay elapses.
func computeFailed(x any) {
	run := x.(*jobRun)
	run.c.release(run, true)
}

// computeDone runs when the compute phase completes: output staging to the
// close SE starts.
func computeDone(x any) {
	run := x.(*jobRun)
	c := run.c
	var outMB float64
	for _, out := range run.rec.Spec.Outputs {
		outMB += out.SizeMB
	}
	c.transferRun(outMB, len(run.rec.Spec.Outputs), outputsStaged, run)
}

// outputsStaged runs when the output transfer completes.
func outputsStaged(x any, _ sim.Time) {
	run := x.(*jobRun)
	run.c.release(run, false)
}

// transferRun models moving totalMB across the cluster's close-SE link in
// one stream, paying the fixed per-file latency for each of nFiles files.
// fn(arg, …) runs on completion (immediately for an empty transfer).
func (c *cluster) transferRun(totalMB float64, nFiles int, fn func(any, sim.Time), arg any) {
	if totalMB <= 0 && nFiles == 0 {
		fn(arg, 0)
		return
	}
	d := time.Duration(float64(nFiles)) * c.g.cfg.Overheads.TransferLatency
	if c.cfg.TransferMBps > 0 {
		d += time.Duration(totalMB / c.cfg.TransferMBps * float64(time.Second))
	}
	c.link.UseWaitArg(d, fn, arg)
}

func (c *cluster) release(run *jobRun, failed bool) {
	c.nodes.Release()
	if !failed && (c.g.down ||
		(len(run.rec.Spec.Outputs) > 0 && c.g.catalog.SiteDark(c.site))) {
		// The attempt finished its work but the grid went dark, or the
		// close SE its outputs must register on did: settlement will turn
		// it into a failure (terminal ErrGridDown, or a retryable output
		// registration failure), which must show in this cluster's
		// failure accounting like any other failed attempt (failure paths
		// already counted themselves at their source).
		c.fgFailed++
	}
	c.g.settle(run, failed)
}

// startBackground launches the multi-user load generator: Poisson arrivals
// of foreign jobs holding worker nodes for log-normal durations, stopping
// at the horizon so event-draining runs terminate.
func (c *cluster) startBackground(horizon time.Duration) {
	c.bgHorizon = horizon
	// Warm start: the grid is already ~utilized when the experiment begins,
	// like any production infrastructure.
	expected := float64(c.cfg.BackgroundMeanDur) / float64(c.cfg.BackgroundMeanIAT)
	warm := int(expected)
	if warm > c.cfg.Nodes {
		warm = c.cfg.Nodes
	}
	for i := 0; i < warm; i++ {
		// Residual durations of jobs already in flight.
		d := time.Duration(c.rnd.Float64() * float64(c.cfg.BackgroundMeanDur))
		c.occupy(d)
	}
	c.bgNext()
}

// bgNext draws the next background inter-arrival time and schedules the
// arrival, unless it would land past the horizon. The arrival chain runs
// through package functions carrying the cluster, so the steady-state
// generator allocates nothing.
func (c *cluster) bgNext() {
	iat := time.Duration(c.rnd.Exponential(float64(c.cfg.BackgroundMeanIAT)))
	if c.g.Eng.Now()+iat > sim.Time(c.bgHorizon) {
		return
	}
	c.g.Eng.ScheduleArg(iat, bgArrive, c)
}

// bgArrive runs at one background arrival: draw the job's duration, hold a
// node for it, and schedule the next arrival.
func bgArrive(x any) {
	c := x.(*cluster)
	d := time.Duration(c.rnd.LogNormalMeanSD(
		float64(c.cfg.BackgroundMeanDur), float64(c.cfg.BackgroundSDDur)))
	c.occupy(d)
	c.bgNext()
}

func (c *cluster) occupy(d time.Duration) {
	c.bgJobs++
	c.nodes.Use(d, nil)
}

// FileError decorates a catalog miss with job and file names.
type FileError struct {
	Job  string
	File string
	Err  error
}

// Error renders the job name, file name and underlying cause.
func (e *FileError) Error() string {
	return "grid: job " + e.Job + ": file " + e.File + ": " + e.Err.Error()
}

// Unwrap returns the underlying cause (e.g. ErrNoSuchFile), for errors.Is.
func (e *FileError) Unwrap() error { return e.Err }
