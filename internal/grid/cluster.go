package grid

import (
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// cluster is one computing element: a FIFO batch queue in front of a pool
// of heterogeneous worker nodes, a shared transfer link to its close
// storage element, and an optional background (multi-user) load.
type cluster struct {
	g        *Grid
	cfg      ClusterConfig
	site     Site // the close SE's location: {grid name, cluster name}
	nodes    *sim.Resource
	link     *sim.Resource
	rnd      *rng.Source
	bgJobs   uint64 // background jobs started
	fgJobs   uint64 // foreground (workflow) attempts executed
	fgFailed uint64
	// remoteMB / remoteFetches account input bytes (and file fetches)
	// pulled over non-local links because no replica sat behind the close
	// SE — the per-cluster face of the WAN transfer model. wanWait
	// accumulates the time those fetches spent queued on contended WAN
	// channels before being granted (zero without a fabric).
	remoteMB      float64
	remoteFetches uint64
	wanWait       time.Duration
	// restages counts re-staging rounds: stage-in retries forced by a
	// replica source dark at leg start or dying mid-fetch (each round
	// re-plans against the surviving replicas after sim-time backoff).
	restages uint64
}

func newCluster(g *Grid, cfg ClusterConfig, rnd *rng.Source) *cluster {
	if cfg.Nodes <= 0 {
		panic("grid: cluster with no nodes: " + cfg.Name)
	}
	streams := cfg.TransferStreams
	if streams <= 0 {
		streams = 1
	}
	return &cluster{
		g:     g,
		cfg:   cfg,
		site:  Site{Grid: g.cfg.Name, Cluster: cfg.Name},
		nodes: sim.NewResource(g.Eng, cfg.Nodes),
		link:  sim.NewResource(g.Eng, streams),
		rnd:   rnd,
	}
}

// rankFloor keeps the matchmaking perturbation alive on an idle grid: with
// a bare backlog×noise product every idle cluster would rank exactly 0.0
// and pickCluster's strict comparison would always select the first
// (largest) computing element. Adding the floor before scaling makes the
// idle-grid rank the noise itself, so idle clusters are picked uniformly,
// while under load the backlog term dominates as before.
const rankFloor = 0.05

// rank estimates how long a new job would wait here: queue backlog scaled
// by pool size, perturbed by the caller-provided noise factor, plus the
// data-proximity term — the estimated seconds of non-local input fetching
// the job would pay at this cluster, weighted by
// Config.DataProximityWeight. The proximity term is added after the noise
// so that clusters differing only in backlog keep their pre-locality
// ranking exactly (the estimate is a constant across clusters whenever the
// job's replicas are unplaced, local everywhere, or on another grid
// entirely — argmin unchanged).
func (c *cluster) rank(noise, fetchSeconds float64) float64 {
	backlog := float64(c.nodes.Waiting()+c.nodes.Busy()) / float64(c.cfg.Nodes)
	return (backlog+rankFloor)*noise + c.g.cfg.DataProximityWeight*fetchSeconds
}

// fetchEstimate returns the estimated seconds of non-local input fetching
// a job with these inputs would pay at this cluster — the data-proximity
// signal of the broker's cluster ranking. A plan with a missing input
// estimates zero rather than its partial sum: the job will fail at
// stage-in wherever it lands, so the partial cost must not steer the
// cluster choice.
func (c *cluster) fetchEstimate(inputs []string) float64 {
	if len(inputs) == 0 {
		return 0
	}
	p := c.g.catalog.Plan(inputs, c.site)
	if p.Missing != "" || p.Unavailable != "" {
		return 0
	}
	return p.RemoteTime.Seconds()
}

// enqueue places a job attempt in the batch queue. finished(failed) is
// called when the attempt ends.
func (c *cluster) enqueue(rec *JobRecord, finished func(failed bool)) {
	rec.Status = StatusQueued
	c.nodes.Acquire(func() {
		c.fgJobs++
		rec.Status = StatusRunning
		rec.Started = c.g.Eng.Now()
		// LRMS dispatch overhead between node grant and process start.
		dispatch := c.g.drawLogNormal(c.g.cfg.Overheads.DispatchMean, c.g.cfg.Overheads.DispatchSD)
		c.g.Eng.Schedule(dispatch, func() {
			c.stageIn(rec, finished)
		})
	})
}

// stageIn transfers the job's input files from the storage elements, then
// computes, then stages outputs back. The node is held throughout, as on
// LCG2 where the job wrapper performs staging on the worker node. For
// every input the cheapest replica under the catalog's link model is
// chosen; inputs local to this cluster's close SE move over the shared
// close-SE link exactly as the location-blind model moved everything,
// while non-local inputs are first fetched over their intra-grid/WAN
// links, serialized per job at the link's own bandwidth and per-file
// latency. Without a fabric the whole remote class is one pure delay;
// with one, the fetch walks its per-source-grid legs in order, each leg
// holding the (fromGrid, toGrid) channel for its fetch time, so
// concurrent remote fetches queue and the queueing is accounted as
// WANWait. When the plan has no remote class, the event schedule is
// bit-identical to the pre-locality one (no extra event is inserted), the
// backwards-compatibility invariant the single-grid goldens pin.
func (c *cluster) stageIn(rec *JobRecord, finished func(failed bool)) {
	if c.g.down {
		// The grid went dark while the attempt was being dispatched: it
		// fails before touching storage, like any stage-in failure.
		c.fgFailed++
		c.release(rec, true, finished)
		return
	}
	c.stageAttempt(rec, 0, finished)
}

// stageAttempt runs one re-staging round: re-plan against the replicas
// live right now, then fetch. tries counts the rounds already failed by
// this attempt; a retryable storage failure (source dark at leg start,
// source dying mid-fetch, or no live replica of an input at all) hands
// off to stageRetry, which backs off in sim time and re-plans, up to
// Config.StageRetries rounds.
func (c *cluster) stageAttempt(rec *JobRecord, tries int, finished func(failed bool)) {
	cat := c.g.catalog
	if len(rec.Spec.Inputs) > 0 && cat.SiteDark(c.site) {
		// The close SE every input must land on is dark: nothing can be
		// staged here. Fail the attempt plainly (no terminal error) —
		// resubmission redraws the cluster, and a federation can move the
		// job off a storage-dark grid entirely.
		c.fgFailed++
		c.release(rec, true, finished)
		return
	}
	plan := cat.stagePlan(rec.Spec.Inputs, c.site)
	if plan.Missing != "" {
		// A stage-in failure is a failed attempt like any other and
		// must show up in the per-cluster failure accounting.
		c.fgFailed++
		rec.Err = &FileError{Job: rec.Spec.Name, File: plan.Missing, Err: ErrNoSuchFile}
		c.release(rec, true, finished)
		return
	}
	if plan.Unavailable != "" {
		// Registered but no live replica anywhere: transient by default
		// (an SE outage may end), terminal ErrReplicaLost if it persists
		// through the whole retry budget.
		c.stageRetry(rec, tries, plan.Unavailable, finished)
		return
	}
	rec.LocalInMB, rec.RemoteInMB = plan.LocalMB, plan.RemoteMB
	rec.RemoteFetch = plan.RemoteTime
	// Like the fields above, WANFetch and WANWait describe the last
	// round of the last attempt only: a re-staged or resubmitted job
	// starts its wait accounting over, so the observed/nominal stretch
	// telemetry compares like with like.
	rec.WANFetch, rec.WANWait = 0, 0
	local := func() {
		c.transfer(plan.LocalMB, plan.LocalFiles, func() {
			rec.InputDone = c.g.Eng.Now()
			c.compute(rec, finished)
		})
	}
	if plan.RemoteFiles == 0 {
		local()
		return
	}
	c.remoteMB += plan.RemoteMB
	c.remoteFetches += uint64(plan.RemoteFiles)
	fab := cat.Fabric()
	if fab == nil && !cat.storageActive() {
		// Location-aware but storage-passive configuration: the whole
		// remote class stays one pure delay — the exact event the
		// pre-storage model scheduled, which the goldens pin.
		c.g.Eng.Schedule(plan.RemoteTime, local)
		return
	}
	// Contended path: the legs run in plan order (lexical source grid),
	// serialized per job exactly like the pure-delay model, but each
	// cross-grid leg first waits for its pair channel. With free
	// channels the elapsed time degenerates to plan.RemoteTime and
	// WANWait stays zero. Same-grid legs (a remote intra-grid class) are
	// not WAN traffic: they keep the pure-delay cost, so intra-grid
	// congestion never occupies the WAN channels or inflates the
	// observed/nominal stretch the broker applies to cross-grid
	// estimates. Each leg checks its source sites' liveness twice — at
	// leg start (a source that went dark since planning serves nothing)
	// and at leg completion (a source dying mid-fetch truncates the
	// transfer) — and either failure re-stages from the survivors.
	leg := 0
	var next func()
	next = func() {
		if leg == len(plan.Remote) {
			local()
			return
		}
		l := plan.Remote[leg]
		leg++
		if cat.legDark(l) {
			c.stageRetry(rec, tries, "", finished)
			return
		}
		after := func() {
			if cat.legDark(l) {
				c.stageRetry(rec, tries, "", finished)
				return
			}
			next()
		}
		if fab == nil || l.FromGrid == c.site.Grid {
			c.g.Eng.Schedule(l.Time, after)
			return
		}
		rec.WANFetch += l.Time
		fab.Channel(l.FromGrid, c.site.Grid).UseWait(l.Time, func(waited sim.Time) {
			rec.WANWait += time.Duration(waited)
			c.wanWait += time.Duration(waited)
			after()
		})
	}
	next()
}

// stageRetry handles a retryable storage failure of round tries: back off
// in sim time (Config.StageRetryBackoff doubling per round, the node held
// throughout like a real wrapper's retry loop) and re-plan, or — once the
// Config.StageRetries budget is spent — fail the attempt. file names the
// input that had no live replica at planning time; when the exhausted
// failure is such a planning failure the attempt fails terminally with
// ErrReplicaLost (every copy stayed unreachable through the whole
// budget), while a leg-level failure exhausting the budget stays a plain
// attempt failure: the job re-plans on resubmission, where surviving
// replicas may serve it.
func (c *cluster) stageRetry(rec *JobRecord, tries int, file string, finished func(failed bool)) {
	if tries >= c.g.stageRetries() {
		c.fgFailed++
		if file != "" {
			rec.Err = &FileError{Job: rec.Spec.Name, File: file, Err: ErrReplicaLost}
		}
		c.release(rec, true, finished)
		return
	}
	c.restages++
	rec.Restages++
	backoff := c.g.stageBackoff() << uint(tries)
	c.g.Eng.Schedule(backoff, func() {
		if c.g.down {
			c.fgFailed++
			c.release(rec, true, finished)
			return
		}
		c.stageAttempt(rec, tries+1, finished)
	})
}

func (c *cluster) compute(rec *JobRecord, finished func(failed bool)) {
	speed := c.rnd.Uniform(c.cfg.MinSpeed, c.cfg.MaxSpeed)
	runtime := time.Duration(float64(rec.Spec.Runtime) / speed)

	if c.rnd.Bernoulli(c.g.cfg.Failures.Probability) {
		// The attempt dies partway through; the middleware notices only
		// after a detection delay.
		c.fgFailed++
		elapsed := time.Duration(c.rnd.Float64() * float64(runtime))
		c.g.Eng.Schedule(elapsed+c.g.cfg.Failures.DetectDelay, func() {
			c.release(rec, true, finished)
		})
		return
	}
	c.g.Eng.Schedule(runtime, func() {
		var outMB float64
		for _, out := range rec.Spec.Outputs {
			outMB += out.SizeMB
		}
		c.transfer(outMB, len(rec.Spec.Outputs), func() {
			c.release(rec, false, finished)
		})
	})
}

// transfer models moving totalMB across the cluster's close-SE link in one
// stream, paying the fixed per-file latency for each of nFiles files.
func (c *cluster) transfer(totalMB float64, nFiles int, done func()) {
	if totalMB <= 0 && nFiles == 0 {
		done()
		return
	}
	d := time.Duration(float64(nFiles)) * c.g.cfg.Overheads.TransferLatency
	if c.cfg.TransferMBps > 0 {
		d += time.Duration(totalMB / c.cfg.TransferMBps * float64(time.Second))
	}
	c.link.Use(d, done)
}

func (c *cluster) release(rec *JobRecord, failed bool, finished func(bool)) {
	c.nodes.Release()
	if !failed && (c.g.down ||
		(len(rec.Spec.Outputs) > 0 && c.g.catalog.SiteDark(c.site))) {
		// The attempt finished its work but the grid went dark, or the
		// close SE its outputs must register on did: settlement will turn
		// it into a failure (terminal ErrGridDown, or a retryable output
		// registration failure), which must show in this cluster's
		// failure accounting like any other failed attempt (failure paths
		// already counted themselves at their source).
		c.fgFailed++
	}
	finished(failed)
}

// startBackground launches the multi-user load generator: Poisson arrivals
// of foreign jobs holding worker nodes for log-normal durations, stopping
// at the horizon so event-draining runs terminate.
func (c *cluster) startBackground(horizon time.Duration) {
	// Warm start: the grid is already ~utilized when the experiment begins,
	// like any production infrastructure.
	expected := float64(c.cfg.BackgroundMeanDur) / float64(c.cfg.BackgroundMeanIAT)
	warm := int(expected)
	if warm > c.cfg.Nodes {
		warm = c.cfg.Nodes
	}
	for i := 0; i < warm; i++ {
		// Residual durations of jobs already in flight.
		d := time.Duration(c.rnd.Float64() * float64(c.cfg.BackgroundMeanDur))
		c.occupy(d)
	}
	var next func()
	next = func() {
		iat := time.Duration(c.rnd.Exponential(float64(c.cfg.BackgroundMeanIAT)))
		if c.g.Eng.Now()+iat > sim.Time(horizon) {
			return
		}
		c.g.Eng.Schedule(iat, func() {
			d := time.Duration(c.rnd.LogNormalMeanSD(
				float64(c.cfg.BackgroundMeanDur), float64(c.cfg.BackgroundSDDur)))
			c.occupy(d)
			next()
		})
	}
	next()
}

func (c *cluster) occupy(d time.Duration) {
	c.bgJobs++
	c.nodes.Use(d, nil)
}

// FileError decorates a catalog miss with job and file names.
type FileError struct {
	Job  string
	File string
	Err  error
}

// Error renders the job name, file name and underlying cause.
func (e *FileError) Error() string {
	return "grid: job " + e.Job + ": file " + e.File + ": " + e.Err.Error()
}

// Unwrap returns the underlying cause (e.g. ErrNoSuchFile), for errors.Is.
func (e *FileError) Unwrap() error { return e.Err }
