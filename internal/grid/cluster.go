package grid

import (
	"time"

	"repro/internal/rng"
	"repro/internal/sim"
)

// cluster is one computing element: a FIFO batch queue in front of a pool
// of heterogeneous worker nodes, a shared transfer link to its close
// storage element, and an optional background (multi-user) load.
type cluster struct {
	g        *Grid
	cfg      ClusterConfig
	nodes    *sim.Resource
	link     *sim.Resource
	rnd      *rng.Source
	bgJobs   uint64 // background jobs started
	fgJobs   uint64 // foreground (workflow) attempts executed
	fgFailed uint64
}

func newCluster(g *Grid, cfg ClusterConfig, rnd *rng.Source) *cluster {
	if cfg.Nodes <= 0 {
		panic("grid: cluster with no nodes: " + cfg.Name)
	}
	streams := cfg.TransferStreams
	if streams <= 0 {
		streams = 1
	}
	return &cluster{
		g:     g,
		cfg:   cfg,
		nodes: sim.NewResource(g.Eng, cfg.Nodes),
		link:  sim.NewResource(g.Eng, streams),
		rnd:   rnd,
	}
}

// rankFloor keeps the matchmaking perturbation alive on an idle grid: with
// a bare backlog×noise product every idle cluster would rank exactly 0.0
// and pickCluster's strict comparison would always select the first
// (largest) computing element. Adding the floor before scaling makes the
// idle-grid rank the noise itself, so idle clusters are picked uniformly,
// while under load the backlog term dominates as before.
const rankFloor = 0.05

// rank estimates how long a new job would wait here: queue backlog scaled
// by pool size, perturbed by the caller-provided noise factor.
func (c *cluster) rank(noise float64) float64 {
	backlog := float64(c.nodes.Waiting()+c.nodes.Busy()) / float64(c.cfg.Nodes)
	return (backlog + rankFloor) * noise
}

// enqueue places a job attempt in the batch queue. finished(failed) is
// called when the attempt ends.
func (c *cluster) enqueue(rec *JobRecord, finished func(failed bool)) {
	rec.Status = StatusQueued
	c.nodes.Acquire(func() {
		c.fgJobs++
		rec.Status = StatusRunning
		rec.Started = c.g.Eng.Now()
		// LRMS dispatch overhead between node grant and process start.
		dispatch := c.g.drawLogNormal(c.g.cfg.Overheads.DispatchMean, c.g.cfg.Overheads.DispatchSD)
		c.g.Eng.Schedule(dispatch, func() {
			c.stageIn(rec, finished)
		})
	})
}

// stageIn transfers the job's input files from the storage element, then
// computes, then stages outputs back. The node is held throughout, as on
// LCG2 where the job wrapper performs staging on the worker node.
func (c *cluster) stageIn(rec *JobRecord, finished func(failed bool)) {
	var totalMB float64
	for _, name := range rec.Spec.Inputs {
		size, ok := c.g.catalog.Lookup(name)
		if !ok {
			// A stage-in failure is a failed attempt like any other and
			// must show up in the per-cluster failure accounting.
			c.fgFailed++
			rec.Err = &FileError{Job: rec.Spec.Name, File: name, Err: ErrNoSuchFile}
			c.release(rec, true, finished)
			return
		}
		totalMB += size
	}
	c.transfer(totalMB, len(rec.Spec.Inputs), func() {
		rec.InputDone = c.g.Eng.Now()
		c.compute(rec, finished)
	})
}

func (c *cluster) compute(rec *JobRecord, finished func(failed bool)) {
	speed := c.rnd.Uniform(c.cfg.MinSpeed, c.cfg.MaxSpeed)
	runtime := time.Duration(float64(rec.Spec.Runtime) / speed)

	if c.rnd.Bernoulli(c.g.cfg.Failures.Probability) {
		// The attempt dies partway through; the middleware notices only
		// after a detection delay.
		c.fgFailed++
		elapsed := time.Duration(c.rnd.Float64() * float64(runtime))
		c.g.Eng.Schedule(elapsed+c.g.cfg.Failures.DetectDelay, func() {
			c.release(rec, true, finished)
		})
		return
	}
	c.g.Eng.Schedule(runtime, func() {
		var outMB float64
		for _, out := range rec.Spec.Outputs {
			outMB += out.SizeMB
		}
		c.transfer(outMB, len(rec.Spec.Outputs), func() {
			c.release(rec, false, finished)
		})
	})
}

// transfer models moving totalMB across the cluster's close-SE link in one
// stream, paying the fixed per-file latency for each of nFiles files.
func (c *cluster) transfer(totalMB float64, nFiles int, done func()) {
	if totalMB <= 0 && nFiles == 0 {
		done()
		return
	}
	d := time.Duration(float64(nFiles)) * c.g.cfg.Overheads.TransferLatency
	if c.cfg.TransferMBps > 0 {
		d += time.Duration(totalMB / c.cfg.TransferMBps * float64(time.Second))
	}
	c.link.Use(d, done)
}

func (c *cluster) release(rec *JobRecord, failed bool, finished func(bool)) {
	c.nodes.Release()
	finished(failed)
}

// startBackground launches the multi-user load generator: Poisson arrivals
// of foreign jobs holding worker nodes for log-normal durations, stopping
// at the horizon so event-draining runs terminate.
func (c *cluster) startBackground(horizon time.Duration) {
	// Warm start: the grid is already ~utilized when the experiment begins,
	// like any production infrastructure.
	expected := float64(c.cfg.BackgroundMeanDur) / float64(c.cfg.BackgroundMeanIAT)
	warm := int(expected)
	if warm > c.cfg.Nodes {
		warm = c.cfg.Nodes
	}
	for i := 0; i < warm; i++ {
		// Residual durations of jobs already in flight.
		d := time.Duration(c.rnd.Float64() * float64(c.cfg.BackgroundMeanDur))
		c.occupy(d)
	}
	var next func()
	next = func() {
		iat := time.Duration(c.rnd.Exponential(float64(c.cfg.BackgroundMeanIAT)))
		if c.g.Eng.Now()+iat > sim.Time(horizon) {
			return
		}
		c.g.Eng.Schedule(iat, func() {
			d := time.Duration(c.rnd.LogNormalMeanSD(
				float64(c.cfg.BackgroundMeanDur), float64(c.cfg.BackgroundSDDur)))
			c.occupy(d)
			next()
		})
	}
	next()
}

func (c *cluster) occupy(d time.Duration) {
	c.bgJobs++
	c.nodes.Use(d, nil)
}

// FileError decorates a catalog miss with job and file names.
type FileError struct {
	Job  string
	File string
	Err  error
}

// Error renders the job name, file name and underlying cause.
func (e *FileError) Error() string {
	return "grid: job " + e.Job + ": file " + e.File + ": " + e.Err.Error()
}

// Unwrap returns the underlying cause (e.g. ErrNoSuchFile), for errors.Is.
func (e *FileError) Unwrap() error { return e.Err }
