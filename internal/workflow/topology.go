package workflow

import "fmt"

func errCycle(w *Workflow) error {
	return fmt.Errorf("workflow %s: graph has a cycle", w.Name)
}

// Topology is a precomputed, immutable view of a workflow's graph
// structure. The naive Workflow accessors (Outgoing, Predecessors,
// Ancestors, ...) rescan w.Links or re-run graph walks on every call,
// which puts O(links) — or worse — inside the enactor's per-event hot
// path. A Topology answers the same queries from indexes built once.
//
// Build it with Workflow.Topology() after the graph is fully constructed;
// it is a snapshot and does not observe later Add/Connect/Constrain calls.
type Topology struct {
	w     *Workflow
	names []string       // insertion order
	index map[string]int // name → position in names

	outgoing       [][]Link            // per proc, links leaving it, in w.Links order
	outgoingByPort []map[string][]Link // per proc, out port → links, in w.Links order
	incoming       []map[string][]Link // per proc, in port → links, in w.Links order

	preds [][]string // distinct data+constraint predecessors, sorted
	succs [][]string // distinct data+constraint successors, sorted

	constraintsAfter     [][]Constraint // constraints with After == proc, in declaration order
	constraintDependents [][]string     // distinct procs with a constraint Before == proc, sorted

	ancestors []map[string]bool // lazy memo; nil until first Ancestors call
}

// Topology builds the precomputed view. Unknown link or constraint
// endpoints are tolerated (exactly as the naive accessors tolerate them);
// run Validate first to reject them.
func (w *Workflow) Topology() *Topology {
	n := len(w.order)
	t := &Topology{
		w:     w,
		names: append([]string(nil), w.order...),
		index: make(map[string]int, n),

		outgoing:       make([][]Link, n),
		outgoingByPort: make([]map[string][]Link, n),
		incoming:       make([]map[string][]Link, n),

		preds: make([][]string, n),
		succs: make([][]string, n),

		constraintsAfter:     make([][]Constraint, n),
		constraintDependents: make([][]string, n),

		ancestors: make([]map[string]bool, n),
	}
	for i, name := range t.names {
		t.index[name] = i
	}
	predSets := make([]map[string]bool, n)
	succSets := make([]map[string]bool, n)
	depSets := make([]map[string]bool, n)
	for i := range t.names {
		predSets[i] = make(map[string]bool)
		succSets[i] = make(map[string]bool)
		depSets[i] = make(map[string]bool)
	}
	for _, l := range w.Links {
		if i, ok := t.index[l.FromProc]; ok {
			t.outgoing[i] = append(t.outgoing[i], l)
			if t.outgoingByPort[i] == nil {
				t.outgoingByPort[i] = make(map[string][]Link)
			}
			t.outgoingByPort[i][l.FromPort] = append(t.outgoingByPort[i][l.FromPort], l)
			succSets[i][l.ToProc] = true
		}
		if i, ok := t.index[l.ToProc]; ok {
			if t.incoming[i] == nil {
				t.incoming[i] = make(map[string][]Link)
			}
			t.incoming[i][l.ToPort] = append(t.incoming[i][l.ToPort], l)
			predSets[i][l.FromProc] = true
		}
	}
	for _, c := range w.Constraints {
		if i, ok := t.index[c.After]; ok {
			t.constraintsAfter[i] = append(t.constraintsAfter[i], c)
			predSets[i][c.Before] = true
		}
		if i, ok := t.index[c.Before]; ok {
			succSets[i][c.After] = true
			depSets[i][c.After] = true
		}
	}
	for i := range t.names {
		t.preds[i] = sortedKeys(predSets[i])
		t.succs[i] = sortedKeys(succSets[i])
		t.constraintDependents[i] = sortedKeys(depSets[i])
	}
	return t
}

// Index returns the dense index of a processor name (its position in
// insertion order) and whether the name is known.
func (t *Topology) Index(name string) (int, bool) {
	i, ok := t.index[name]
	return i, ok
}

// Names returns the processor names in insertion order. The caller must
// not modify the returned slice.
func (t *Topology) Names() []string { return t.names }

// Outgoing returns the links leaving the processor, in declaration order —
// the cached equivalent of Workflow.Outgoing. The caller must not modify
// the returned slice.
func (t *Topology) Outgoing(name string) []Link {
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.outgoing[i]
}

// OutgoingOn returns the links leaving the processor on one output port,
// in declaration order. The caller must not modify the returned slice.
func (t *Topology) OutgoingOn(name, port string) []Link {
	i, ok := t.index[name]
	if !ok || t.outgoingByPort[i] == nil {
		return nil
	}
	return t.outgoingByPort[i][port]
}

// Incoming returns the links feeding the processor, grouped by input
// port — the cached equivalent of Workflow.Incoming. The caller must not
// modify the returned map or slices.
func (t *Topology) Incoming(name string) map[string][]Link {
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.incoming[i]
}

// Predecessors returns the distinct upstream processor names (data links
// and coordination constraints), sorted — the cached equivalent of
// Workflow.Predecessors. The caller must not modify the returned slice.
func (t *Topology) Predecessors(name string) []string {
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.preds[i]
}

// Successors returns the distinct downstream processor names, sorted —
// the cached equivalent of Workflow.Successors. The caller must not
// modify the returned slice.
func (t *Topology) Successors(name string) []string {
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.succs[i]
}

// ConstraintsAfter returns the coordination constraints gating the
// processor (those with After == name), in declaration order.
func (t *Topology) ConstraintsAfter(name string) []Constraint {
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.constraintsAfter[i]
}

// ConstraintDependents returns the distinct processors gated on the
// completion of name (constraints with Before == name), sorted.
func (t *Topology) ConstraintDependents(name string) []string {
	i, ok := t.index[name]
	if !ok {
		return nil
	}
	return t.constraintDependents[i]
}

// Ancestors returns every processor from which name is reachable through
// data links or constraints (name excluded) — the cached equivalent of
// Workflow.Ancestors. Works on cyclic graphs. The set is computed on
// first request and memoized; the caller must not modify it.
func (t *Topology) Ancestors(name string) map[string]bool {
	i, ok := t.index[name]
	if !ok {
		// Match the naive implementation: unknown names have no ancestors.
		return map[string]bool{}
	}
	if t.ancestors[i] != nil {
		return t.ancestors[i]
	}
	out := make(map[string]bool)
	// Iterative DFS over the cached predecessor lists.
	stack := append([]string(nil), t.preds[i]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if out[n] {
			continue
		}
		out[n] = true
		if j, ok := t.index[n]; ok {
			stack = append(stack, t.preds[j]...)
		}
	}
	delete(out, name)
	t.ancestors[i] = out
	return out
}

// TopoOrder returns processor names in a topological order of the combined
// data-link and constraint graph, with insertion-order tie-breaking — the
// cached equivalent of Workflow.TopoOrder. It fails if the graph has a
// cycle.
func (t *Topology) TopoOrder() ([]string, error) {
	indeg := make([]int, len(t.names))
	var queue []string
	for i := range t.names {
		indeg[i] = len(t.preds[i])
		if indeg[i] == 0 {
			queue = append(queue, t.names[i])
		}
	}
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, succ := range t.succs[t.index[n]] {
			j := t.index[succ]
			indeg[j]--
			if indeg[j] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(out) != len(t.names) {
		return nil, errCycle(t.w)
	}
	return out, nil
}
