// Package workflow models the application logic of a service-based
// workflow (paper Sec. 2.1): a directed graph of processors with input and
// output ports, data links connecting output ports to input ports, data
// sources (processors without input ports), data sinks (processors without
// output ports), iteration strategies over multi-port inputs, and
// synchronization processors (Sec. 2.3).
//
// Unlike task-based workflows, the graph may contain loops (Fig. 2): an
// input port can collect data from several producers, including from a
// downstream processor's conditional output, which is how optimization
// loops with a runtime-determined iteration count are composed.
package workflow

import (
	"fmt"
	"sort"

	"repro/internal/iterstrat"
	"repro/internal/services"
)

// Kind distinguishes processor roles.
type Kind int

// Processor kinds.
const (
	// KindService is an ordinary application-service processor.
	KindService Kind = iota
	// KindSource is a data source: no input ports, one output port ("out"),
	// delivering the workflow's input data set.
	KindSource
	// KindSink is a data sink: one input port ("in"), collecting produced
	// data.
	KindSink
)

// SourcePort is the implicit output port of a data source.
const SourcePort = "out"

// SinkPort is the implicit input port of a data sink.
const SinkPort = "in"

// Processor is a node of the workflow graph.
type Processor struct {
	Name string
	Kind Kind
	// Service performs the work (nil for sources and sinks).
	Service services.Service
	// InPorts and OutPorts declare the interface. For sources/sinks they
	// are fixed.
	InPorts  []string
	OutPorts []string
	// Strategy is the iteration strategy over InPorts (nil defaults to a
	// dot product over all input ports, the most common case).
	Strategy iterstrat.Strategy
	// Synchronization marks a barrier processor (Sec. 2.3): it fires once,
	// with the complete input lists, after all its ancestors are inactive.
	Synchronization bool
	// Constants are fixed parameter bindings added to every invocation
	// (e.g. the "scale" option), bypassing the data flow.
	Constants map[string]string
}

// HasInPort reports whether the processor declares the input port.
func (p *Processor) HasInPort(port string) bool { return contains(p.InPorts, port) }

// HasOutPort reports whether the processor declares the output port.
func (p *Processor) HasOutPort(port string) bool { return contains(p.OutPorts, port) }

func contains(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Link is a data dependency from an output port to an input port.
type Link struct {
	FromProc, FromPort string
	ToProc, ToPort     string
}

// String renders the link as "proc:port -> proc:port".
func (l Link) String() string {
	return fmt.Sprintf("%s:%s -> %s:%s", l.FromProc, l.FromPort, l.ToProc, l.ToPort)
}

// Constraint is a coordination constraint (Sec. 4.1): a control link that
// enforces completion of Before prior to any invocation of After, even
// without a data dependency.
type Constraint struct {
	Before, After string
}

// Workflow is the complete application graph.
type Workflow struct {
	Name        string
	order       []string // processor names in insertion order
	procs       map[string]*Processor
	Links       []Link
	Constraints []Constraint
}

// New returns an empty workflow.
func New(name string) *Workflow {
	return &Workflow{Name: name, procs: make(map[string]*Processor)}
}

// Add inserts a processor. It panics on duplicate or empty names (workflow
// construction errors are programming errors; file-based construction
// validates beforehand).
func (w *Workflow) Add(p *Processor) *Processor {
	if p.Name == "" {
		panic("workflow: processor with empty name")
	}
	if _, dup := w.procs[p.Name]; dup {
		panic("workflow: duplicate processor " + p.Name)
	}
	switch p.Kind {
	case KindSource:
		p.InPorts = nil
		p.OutPorts = []string{SourcePort}
	case KindSink:
		p.InPorts = []string{SinkPort}
		p.OutPorts = nil
	}
	w.procs[p.Name] = p
	w.order = append(w.order, p.Name)
	return p
}

// AddSource declares a data source.
func (w *Workflow) AddSource(name string) *Processor {
	return w.Add(&Processor{Name: name, Kind: KindSource})
}

// AddSink declares a data sink.
func (w *Workflow) AddSink(name string) *Processor {
	return w.Add(&Processor{Name: name, Kind: KindSink})
}

// AddService declares an ordinary service processor with the given ports.
func (w *Workflow) AddService(name string, svc services.Service, inPorts, outPorts []string) *Processor {
	return w.Add(&Processor{
		Name: name, Kind: KindService, Service: svc,
		InPorts: inPorts, OutPorts: outPorts,
	})
}

// Connect adds a data link. Panics on unknown endpoints so construction
// mistakes fail fast; Validate re-checks everything for parsed workflows.
func (w *Workflow) Connect(fromProc, fromPort, toProc, toPort string) {
	w.Links = append(w.Links, Link{fromProc, fromPort, toProc, toPort})
}

// Constrain adds a coordination constraint.
func (w *Workflow) Constrain(before, after string) {
	w.Constraints = append(w.Constraints, Constraint{before, after})
}

// Proc returns the named processor.
func (w *Workflow) Proc(name string) (*Processor, bool) {
	p, ok := w.procs[name]
	return p, ok
}

// Processors returns all processors in insertion order.
func (w *Workflow) Processors() []*Processor {
	out := make([]*Processor, len(w.order))
	for i, n := range w.order {
		out[i] = w.procs[n]
	}
	return out
}

// Sources returns the data sources in insertion order.
func (w *Workflow) Sources() []*Processor { return w.byKind(KindSource) }

// Sinks returns the data sinks in insertion order.
func (w *Workflow) Sinks() []*Processor { return w.byKind(KindSink) }

func (w *Workflow) byKind(k Kind) []*Processor {
	var out []*Processor
	for _, n := range w.order {
		if p := w.procs[n]; p.Kind == k {
			out = append(out, p)
		}
	}
	return out
}

// Incoming returns the links feeding the processor, grouped by input port.
func (w *Workflow) Incoming(name string) map[string][]Link {
	out := make(map[string][]Link)
	for _, l := range w.Links {
		if l.ToProc == name {
			out[l.ToPort] = append(out[l.ToPort], l)
		}
	}
	return out
}

// Outgoing returns the links leaving the processor.
func (w *Workflow) Outgoing(name string) []Link {
	var out []Link
	for _, l := range w.Links {
		if l.FromProc == name {
			out = append(out, l)
		}
	}
	return out
}

// Predecessors returns the distinct upstream processor names (data links
// and coordination constraints), sorted.
func (w *Workflow) Predecessors(name string) []string {
	set := make(map[string]bool)
	for _, l := range w.Links {
		if l.ToProc == name {
			set[l.FromProc] = true
		}
	}
	for _, c := range w.Constraints {
		if c.After == name {
			set[c.Before] = true
		}
	}
	return sortedKeys(set)
}

// Successors returns the distinct downstream processor names, sorted.
func (w *Workflow) Successors(name string) []string {
	set := make(map[string]bool)
	for _, l := range w.Links {
		if l.FromProc == name {
			set[l.ToProc] = true
		}
	}
	for _, c := range w.Constraints {
		if c.Before == name {
			set[c.After] = true
		}
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// EffectiveStrategy returns the processor's iteration strategy, defaulting
// to a dot product over all its input ports.
func (w *Workflow) EffectiveStrategy(p *Processor) iterstrat.Strategy {
	if p.Strategy != nil {
		return p.Strategy
	}
	if len(p.InPorts) == 0 {
		return nil
	}
	leaves := make([]iterstrat.Strategy, len(p.InPorts))
	for i, port := range p.InPorts {
		leaves[i] = iterstrat.Port(port)
	}
	if len(leaves) == 1 {
		return leaves[0]
	}
	return iterstrat.Dot(leaves...)
}
