package workflow

import (
	"fmt"
)

// Validate checks structural soundness: link endpoints exist and reference
// declared ports, strategies cover exactly the input ports, sources/sinks
// have the right shape, every service processor has a service, and
// constraints reference existing processors.
func (w *Workflow) Validate() error {
	if len(w.procs) == 0 {
		return fmt.Errorf("workflow %s: empty", w.Name)
	}
	for _, p := range w.Processors() {
		switch p.Kind {
		case KindService:
			if p.Service == nil {
				return fmt.Errorf("workflow %s: processor %s has no service", w.Name, p.Name)
			}
		case KindSource:
			if len(w.Incoming(p.Name)) != 0 {
				return fmt.Errorf("workflow %s: source %s has incoming links", w.Name, p.Name)
			}
		case KindSink:
			if len(w.Outgoing(p.Name)) != 0 {
				return fmt.Errorf("workflow %s: sink %s has outgoing links", w.Name, p.Name)
			}
		}
		if p.Kind == KindService {
			strat := w.EffectiveStrategy(p)
			if len(p.InPorts) > 0 {
				if err := validateStrategyCoverage(p, strat); err != nil {
					return fmt.Errorf("workflow %s: %w", w.Name, err)
				}
			}
		}
		for port := range p.Constants {
			if p.HasInPort(port) {
				return fmt.Errorf("workflow %s: processor %s: constant %q shadows an input port",
					w.Name, p.Name, port)
			}
		}
	}
	for _, l := range w.Links {
		from, ok := w.procs[l.FromProc]
		if !ok {
			return fmt.Errorf("workflow %s: link %s: unknown producer", w.Name, l)
		}
		if !from.HasOutPort(l.FromPort) {
			return fmt.Errorf("workflow %s: link %s: %s has no output port %q", w.Name, l, l.FromProc, l.FromPort)
		}
		to, ok := w.procs[l.ToProc]
		if !ok {
			return fmt.Errorf("workflow %s: link %s: unknown consumer", w.Name, l)
		}
		if !to.HasInPort(l.ToPort) {
			return fmt.Errorf("workflow %s: link %s: %s has no input port %q", w.Name, l, l.ToProc, l.ToPort)
		}
	}
	for _, p := range w.Processors() {
		if p.Kind == KindService || p.Kind == KindSink {
			in := w.Incoming(p.Name)
			for _, port := range p.InPorts {
				if len(in[port]) == 0 {
					return fmt.Errorf("workflow %s: input port %s:%s is not fed by any link",
						w.Name, p.Name, port)
				}
			}
		}
	}
	for _, c := range w.Constraints {
		if _, ok := w.procs[c.Before]; !ok {
			return fmt.Errorf("workflow %s: constraint references unknown processor %q", w.Name, c.Before)
		}
		if _, ok := w.procs[c.After]; !ok {
			return fmt.Errorf("workflow %s: constraint references unknown processor %q", w.Name, c.After)
		}
	}
	return nil
}

func validateStrategyCoverage(p *Processor, s interface{ Ports() []string }) error {
	covered := make(map[string]int)
	for _, port := range s.Ports() {
		covered[port]++
	}
	for _, port := range p.InPorts {
		switch covered[port] {
		case 0:
			return fmt.Errorf("processor %s: input port %q not covered by iteration strategy", p.Name, port)
		case 1:
		default:
			return fmt.Errorf("processor %s: input port %q appears %d times in iteration strategy",
				p.Name, port, covered[port])
		}
		delete(covered, port)
	}
	for port := range covered {
		return fmt.Errorf("processor %s: iteration strategy references unknown port %q", p.Name, port)
	}
	return nil
}

// HasCycle reports whether the data-link graph contains a cycle. Cycles
// are legal in service-based workflows (Fig. 2) but require streaming
// (service-parallel) execution and make static analyses inapplicable.
func (w *Workflow) HasCycle() bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[string]int, len(w.procs))
	var visit func(string) bool
	visit = func(n string) bool {
		color[n] = gray
		for _, succ := range w.Successors(n) {
			switch color[succ] {
			case gray:
				return true
			case white:
				if visit(succ) {
					return true
				}
			}
		}
		color[n] = black
		return false
	}
	for _, n := range w.order {
		if color[n] == white && visit(n) {
			return true
		}
	}
	return false
}

// TopoOrder returns processor names in a topological order of the combined
// data-link and constraint graph. It fails if the graph has a cycle.
func (w *Workflow) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(w.procs))
	for _, n := range w.order {
		indeg[n] = len(w.Predecessors(n))
	}
	// Kahn's algorithm with insertion-order tie-breaking for determinism.
	var queue []string
	for _, n := range w.order {
		if indeg[n] == 0 {
			queue = append(queue, n)
		}
	}
	var out []string
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		for _, succ := range w.Successors(n) {
			// Successors may repeat across ports; Predecessors deduplicates,
			// so decrement once per distinct edge.
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if len(out) != len(w.procs) {
		return nil, errCycle(w)
	}
	return out, nil
}

// CriticalPathLength returns nW: the number of service processors on the
// longest source-to-sink path (sources and sinks excluded), the quantity
// the paper's model calls the number of services on the critical path.
func (w *Workflow) CriticalPathLength() (int, error) {
	topo, err := w.TopoOrder()
	if err != nil {
		return 0, err
	}
	weight := func(n string) int {
		if w.procs[n].Kind == KindService {
			return 1
		}
		return 0
	}
	longest := make(map[string]int, len(topo))
	best := 0
	for _, n := range topo {
		l := 0
		for _, pred := range w.Predecessors(n) {
			if longest[pred] > l {
				l = longest[pred]
			}
		}
		longest[n] = l + weight(n)
		if longest[n] > best {
			best = longest[n]
		}
	}
	return best, nil
}

// Ancestors returns every processor from which name is reachable through
// data links or constraints (name excluded). Works on cyclic graphs.
func (w *Workflow) Ancestors(name string) map[string]bool {
	out := make(map[string]bool)
	var visit func(string)
	visit = func(n string) {
		for _, pred := range w.Predecessors(n) {
			if !out[pred] {
				out[pred] = true
				visit(pred)
			}
		}
	}
	visit(name)
	delete(out, name)
	return out
}

// ExpectedCounts computes, for an acyclic workflow without conditional
// outputs, how many invocations each processor performs and how many items
// each port carries, given the source item counts. Synchronization
// processors count as a single invocation. Used by the barrier (no
// service-parallelism) execution mode and by the theoretical model.
func (w *Workflow) ExpectedCounts(sourceCounts map[string]int) (map[string]int, error) {
	topo, err := w.TopoOrder()
	if err != nil {
		return nil, err
	}
	inv := make(map[string]int, len(topo))
	for _, n := range topo {
		p := w.procs[n]
		switch p.Kind {
		case KindSource:
			c, ok := sourceCounts[n]
			if !ok {
				return nil, fmt.Errorf("workflow %s: no input data for source %s", w.Name, n)
			}
			inv[n] = c
		case KindSink, KindService:
			in := w.Incoming(n)
			portCounts := make(map[string]int, len(p.InPorts))
			for _, port := range p.InPorts {
				total := 0
				for _, l := range in[port] {
					total += inv[l.FromProc] // one item per invocation per out port
				}
				portCounts[port] = total
			}
			if p.Synchronization {
				inv[n] = 1
				continue
			}
			if p.Kind == KindSink {
				inv[n] = portCounts[SinkPort]
				continue
			}
			inv[n] = w.EffectiveStrategy(p).Count(portCounts)
		}
	}
	return inv, nil
}
