package workflow

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/rng"
)

// randomGraph builds a random workflow graph: a mix of sources, sinks and
// two-in/two-out service processors, random links (cycles allowed), random
// constraints, and occasionally dangling endpoints (which the accessors
// tolerate). Services are left without Service implementations: the
// topology layer never invokes them.
func randomGraph(r *rng.Source) *Workflow {
	w := New("random")
	n := 2 + r.Intn(12)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			w.AddSource(fmt.Sprintf("P%d", i))
		case 1:
			w.AddSink(fmt.Sprintf("P%d", i))
		default:
			w.Add(&Processor{
				Name:     fmt.Sprintf("P%d", i),
				Kind:     KindService,
				InPorts:  []string{"a", "b"},
				OutPorts: []string{"x", "y"},
			})
		}
	}
	procs := w.Processors()
	pick := func() *Processor { return procs[r.Intn(len(procs))] }
	port := func(ports []string) string {
		if len(ports) == 0 {
			return "none"
		}
		return ports[r.Intn(len(ports))]
	}
	nLinks := r.Intn(3 * n)
	for i := 0; i < nLinks; i++ {
		from, to := pick(), pick()
		w.Connect(from.Name, port(from.OutPorts), to.Name, port(to.InPorts))
	}
	if r.Intn(4) == 0 { // dangling endpoints
		w.Connect("ghost-producer", "x", pick().Name, "a")
		w.Connect(pick().Name, "x", "ghost-consumer", "a")
	}
	nCons := r.Intn(n)
	for i := 0; i < nCons; i++ {
		w.Constrain(pick().Name, pick().Name)
	}
	if r.Intn(4) == 0 {
		w.Constrain("ghost-before", pick().Name)
		w.Constrain(pick().Name, "ghost-after")
	}
	return w
}

// naiveConstraintsAfter mirrors the scan the enactor used to run on every
// gate evaluation.
func naiveConstraintsAfter(w *Workflow, name string) []Constraint {
	var out []Constraint
	for _, c := range w.Constraints {
		if c.After == name {
			out = append(out, c)
		}
	}
	return out
}

// naiveConstraintDependents returns the sorted distinct processors gated on
// name.
func naiveConstraintDependents(w *Workflow, name string) []string {
	set := make(map[string]bool)
	for _, c := range w.Constraints {
		if c.Before == name {
			set[c.After] = true
		}
	}
	return sortedKeys(set)
}

// TestTopologyMatchesNaive checks, on randomized graphs (cyclic and
// acyclic, with occasional dangling endpoints), that every cached answer
// matches the naive link-scanning implementation.
func TestTopologyMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 200; seed++ {
		r := rng.New(seed)
		w := randomGraph(r)
		topo := w.Topology()
		for _, p := range w.Processors() {
			name := p.Name
			if got, want := topo.Outgoing(name), w.Outgoing(name); !sameLinks(got, want) {
				t.Fatalf("seed %d: Outgoing(%s) = %v, naive %v", seed, name, got, want)
			}
			if got, want := topo.Incoming(name), w.Incoming(name); !sameLinkMaps(got, want) {
				t.Fatalf("seed %d: Incoming(%s) = %v, naive %v", seed, name, got, want)
			}
			if got, want := topo.Predecessors(name), w.Predecessors(name); !sameStrings(got, want) {
				t.Fatalf("seed %d: Predecessors(%s) = %v, naive %v", seed, name, got, want)
			}
			if got, want := topo.Successors(name), w.Successors(name); !sameStrings(got, want) {
				t.Fatalf("seed %d: Successors(%s) = %v, naive %v", seed, name, got, want)
			}
			if got, want := topo.Ancestors(name), w.Ancestors(name); !sameSets(got, want) {
				t.Fatalf("seed %d: Ancestors(%s) = %v, naive %v", seed, name, got, want)
			}
			if got, want := topo.ConstraintsAfter(name), naiveConstraintsAfter(w, name); !reflect.DeepEqual(got, want) && (len(got) != 0 || len(want) != 0) {
				t.Fatalf("seed %d: ConstraintsAfter(%s) = %v, naive %v", seed, name, got, want)
			}
			if got, want := topo.ConstraintDependents(name), naiveConstraintDependents(w, name); !sameStrings(got, want) {
				t.Fatalf("seed %d: ConstraintDependents(%s) = %v, naive %v", seed, name, got, want)
			}
		}
		gotOrder, gotErr := topo.TopoOrder()
		wantOrder, wantErr := w.TopoOrder()
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("seed %d: TopoOrder error mismatch: cached %v, naive %v", seed, gotErr, wantErr)
		}
		if gotErr == nil && !sameStrings(gotOrder, wantOrder) {
			t.Fatalf("seed %d: TopoOrder = %v, naive %v", seed, gotOrder, wantOrder)
		}
	}
}

// TestTopologyAncestorsCyclic pins the cached ancestor walk on an explicit
// loop (Fig. 2 shape): every node in a cycle is an ancestor of every
// other, including itself being excluded from its own set.
func TestTopologyAncestorsCyclic(t *testing.T) {
	w := New("loop")
	for _, n := range []string{"A", "B", "C"} {
		w.Add(&Processor{Name: n, Kind: KindService, InPorts: []string{"in"}, OutPorts: []string{"out"}})
	}
	w.Connect("A", "out", "B", "in")
	w.Connect("B", "out", "C", "in")
	w.Connect("C", "out", "A", "in")
	topo := w.Topology()
	for _, n := range []string{"A", "B", "C"} {
		got := topo.Ancestors(n)
		want := w.Ancestors(n)
		if !sameSets(got, want) {
			t.Fatalf("Ancestors(%s) = %v, naive %v", n, got, want)
		}
		if len(got) != 2 || got[n] {
			t.Fatalf("Ancestors(%s) = %v, want the two other cycle members", n, got)
		}
	}
}

// TestTopologyUnknownName checks the cached accessors answer like the
// naive ones for names that are not in the workflow.
func TestTopologyUnknownName(t *testing.T) {
	w := New("w")
	w.AddSource("src")
	topo := w.Topology()
	if got := topo.Outgoing("nope"); len(got) != 0 {
		t.Fatalf("Outgoing(unknown) = %v", got)
	}
	if got := topo.Predecessors("nope"); len(got) != 0 {
		t.Fatalf("Predecessors(unknown) = %v", got)
	}
	if got := topo.Ancestors("nope"); len(got) != 0 {
		t.Fatalf("Ancestors(unknown) = %v", got)
	}
	if _, ok := topo.Index("nope"); ok {
		t.Fatal("Index(unknown) reported ok")
	}
}

// TestTopologySnapshot checks that a Topology is a snapshot: links added
// after construction are not observed (callers rebuild after mutating).
func TestTopologySnapshot(t *testing.T) {
	w := New("w")
	w.AddSource("src")
	w.AddSink("dst")
	topo := w.Topology()
	w.Connect("src", SourcePort, "dst", SinkPort)
	if got := topo.Outgoing("src"); len(got) != 0 {
		t.Fatalf("snapshot observed later Connect: %v", got)
	}
	if got := w.Topology().Outgoing("src"); len(got) != 1 {
		t.Fatalf("rebuilt topology missed link: %v", got)
	}
}

func sameLinks(a, b []Link) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameLinkMaps(a, b map[string][]Link) bool {
	if len(a) != len(b) {
		// Tolerate nil-vs-empty: both mean "no incoming links".
		return emptyLinkMap(a) && emptyLinkMap(b)
	}
	for k, av := range a {
		if !sameLinks(av, b[k]) {
			return false
		}
	}
	return true
}

func emptyLinkMap(m map[string][]Link) bool {
	for _, v := range m {
		if len(v) != 0 {
			return false
		}
	}
	return true
}

func sameStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sameSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
