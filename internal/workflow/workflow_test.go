package workflow

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/iterstrat"
	"repro/internal/services"
)

// fake is a trivial Service for graph tests.
type fake struct{ name string }

func (f *fake) Name() string { return f.name }
func (f *fake) Invoke(req services.Request, done func(services.Response)) {
	done(services.Response{Outputs: map[string]string{}})
}

func svc(name string) services.Service { return &fake{name} }

// chain builds the Fig. 1 workflow: src -> P1 -> P2 -> P3 -> sink.
func chain(t *testing.T) *Workflow {
	t.Helper()
	w := New("fig1")
	w.AddSource("src")
	w.AddService("P1", svc("P1"), []string{"in"}, []string{"out"})
	w.AddService("P2", svc("P2"), []string{"in"}, []string{"out"})
	w.AddService("P3", svc("P3"), []string{"in"}, []string{"out"})
	w.AddSink("sink")
	w.Connect("src", SourcePort, "P1", "in")
	w.Connect("P1", "out", "P2", "in")
	w.Connect("P2", "out", "P3", "in")
	w.Connect("P3", "out", "sink", SinkPort)
	if err := w.Validate(); err != nil {
		t.Fatalf("chain workflow invalid: %v", err)
	}
	return w
}

func TestChainStructure(t *testing.T) {
	w := chain(t)
	if len(w.Processors()) != 5 {
		t.Fatalf("processors = %d", len(w.Processors()))
	}
	if len(w.Sources()) != 1 || w.Sources()[0].Name != "src" {
		t.Fatalf("sources = %v", w.Sources())
	}
	if len(w.Sinks()) != 1 || w.Sinks()[0].Name != "sink" {
		t.Fatalf("sinks = %v", w.Sinks())
	}
	if got := w.Successors("P1"); len(got) != 1 || got[0] != "P2" {
		t.Fatalf("Successors(P1) = %v", got)
	}
	if got := w.Predecessors("P2"); len(got) != 1 || got[0] != "P1" {
		t.Fatalf("Predecessors(P2) = %v", got)
	}
	in := w.Incoming("P2")
	if len(in["in"]) != 1 || in["in"][0].FromProc != "P1" {
		t.Fatalf("Incoming(P2) = %v", in)
	}
	if got := w.Outgoing("P1"); len(got) != 1 || got[0].ToProc != "P2" {
		t.Fatalf("Outgoing(P1) = %v", got)
	}
}

func TestHasCycleFalseOnChain(t *testing.T) {
	if chain(t).HasCycle() {
		t.Fatal("chain reported cyclic")
	}
}

func TestLoopWorkflowHasCycle(t *testing.T) {
	// Fig. 2: P3 feeds back into P2's input port.
	w := New("fig2")
	w.AddSource("Source")
	w.AddService("P1", svc("P1"), []string{"in"}, []string{"init"})
	w.AddService("P2", svc("P2"), []string{"crit"}, []string{"out"})
	w.AddService("P3", svc("P3"), []string{"in"}, []string{"again", "done"})
	w.AddSink("Sink")
	w.Connect("Source", SourcePort, "P1", "in")
	w.Connect("P1", "init", "P2", "crit")
	w.Connect("P2", "out", "P3", "in")
	w.Connect("P3", "again", "P2", "crit") // loop back
	w.Connect("P3", "done", "Sink", SinkPort)
	if err := w.Validate(); err != nil {
		t.Fatalf("loop workflow must be valid (service-based workflows allow loops): %v", err)
	}
	if !w.HasCycle() {
		t.Fatal("loop not detected")
	}
	if _, err := w.TopoOrder(); err == nil {
		t.Fatal("TopoOrder succeeded on cyclic graph")
	}
}

func TestTopoOrderChain(t *testing.T) {
	w := chain(t)
	topo, err := w.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, n := range topo {
		pos[n] = i
	}
	for _, l := range w.Links {
		if pos[l.FromProc] >= pos[l.ToProc] {
			t.Fatalf("topo order violates link %s: %v", l, topo)
		}
	}
}

func TestCriticalPathChain(t *testing.T) {
	w := chain(t)
	nW, err := w.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if nW != 3 {
		t.Fatalf("nW = %d, want 3 (sources and sinks excluded)", nW)
	}
}

// diamond builds src -> A -> {B, C} -> D -> sink: nW is 3, not 4.
func diamond(t *testing.T) *Workflow {
	t.Helper()
	w := New("diamond")
	w.AddSource("src")
	w.AddService("A", svc("A"), []string{"in"}, []string{"out"})
	w.AddService("B", svc("B"), []string{"in"}, []string{"out"})
	w.AddService("C", svc("C"), []string{"in"}, []string{"out"})
	d := w.AddService("D", svc("D"), []string{"b", "c"}, []string{"out"})
	d.Strategy = iterstrat.Dot(iterstrat.Port("b"), iterstrat.Port("c"))
	w.AddSink("sink")
	w.Connect("src", SourcePort, "A", "in")
	w.Connect("A", "out", "B", "in")
	w.Connect("A", "out", "C", "in")
	w.Connect("B", "out", "D", "b")
	w.Connect("C", "out", "D", "c")
	w.Connect("D", "out", "sink", SinkPort)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCriticalPathDiamond(t *testing.T) {
	w := diamond(t)
	nW, err := w.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if nW != 3 {
		t.Fatalf("nW = %d, want 3 (parallel branches share a level)", nW)
	}
}

func TestAncestors(t *testing.T) {
	w := diamond(t)
	anc := w.Ancestors("D")
	for _, n := range []string{"A", "B", "C", "src"} {
		if !anc[n] {
			t.Errorf("Ancestors(D) missing %s", n)
		}
	}
	if anc["D"] || anc["sink"] {
		t.Errorf("Ancestors(D) contains non-ancestors: %v", anc)
	}
}

func TestAncestorsOnCyclicGraph(t *testing.T) {
	w := New("loop")
	w.AddService("A", svc("A"), []string{"in"}, []string{"out"})
	w.AddService("B", svc("B"), []string{"in"}, []string{"out"})
	w.Connect("A", "out", "B", "in")
	w.Connect("B", "out", "A", "in")
	anc := w.Ancestors("A")
	if !anc["B"] {
		t.Fatal("cyclic ancestors incomplete")
	}
	if anc["A"] {
		t.Fatal("node counted as its own ancestor")
	}
}

func TestExpectedCountsChain(t *testing.T) {
	w := chain(t)
	counts, err := w.ExpectedCounts(map[string]int{"src": 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []string{"P1", "P2", "P3", "sink"} {
		if counts[n] != 7 {
			t.Errorf("count[%s] = %d, want 7", n, counts[n])
		}
	}
}

func TestExpectedCountsDotAndSync(t *testing.T) {
	w := New("sync")
	w.AddSource("a")
	w.AddSource("b")
	p := w.AddService("pair", svc("pair"), []string{"x", "y"}, []string{"out"})
	p.Strategy = iterstrat.Dot(iterstrat.Port("x"), iterstrat.Port("y"))
	stat := w.AddService("mean", svc("mean"), []string{"vals"}, []string{"out"})
	stat.Synchronization = true
	w.AddSink("sink")
	w.Connect("a", SourcePort, "pair", "x")
	w.Connect("b", SourcePort, "pair", "y")
	w.Connect("pair", "out", "mean", "vals")
	w.Connect("mean", "out", "sink", SinkPort)
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	counts, err := w.ExpectedCounts(map[string]int{"a": 5, "b": 3})
	if err != nil {
		t.Fatal(err)
	}
	if counts["pair"] != 3 {
		t.Errorf("count[pair] = %d, want min(5,3)=3", counts["pair"])
	}
	if counts["mean"] != 1 {
		t.Errorf("count[mean] = %d, want 1 (synchronization barrier)", counts["mean"])
	}
	if counts["sink"] != 1 {
		t.Errorf("count[sink] = %d, want 1", counts["sink"])
	}
}

func TestExpectedCountsCross(t *testing.T) {
	w := New("cross")
	w.AddSource("a")
	w.AddSource("b")
	p := w.AddService("all", svc("all"), []string{"x", "y"}, []string{"out"})
	p.Strategy = iterstrat.Cross(iterstrat.Port("x"), iterstrat.Port("y"))
	w.AddSink("sink")
	w.Connect("a", SourcePort, "all", "x")
	w.Connect("b", SourcePort, "all", "y")
	w.Connect("all", "out", "sink", SinkPort)
	counts, err := w.ExpectedCounts(map[string]int{"a": 4, "b": 5})
	if err != nil {
		t.Fatal(err)
	}
	if counts["all"] != 20 {
		t.Errorf("count[all] = %d, want 4*5=20", counts["all"])
	}
}

func TestExpectedCountsMissingSource(t *testing.T) {
	w := chain(t)
	if _, err := w.ExpectedCounts(map[string]int{}); err == nil {
		t.Fatal("missing source data not reported")
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("empty workflow", func(t *testing.T) {
		if err := New("e").Validate(); err == nil {
			t.Fatal("empty workflow validated")
		}
	})
	t.Run("missing service", func(t *testing.T) {
		w := New("x")
		w.Add(&Processor{Name: "p", Kind: KindService, InPorts: []string{"in"}})
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "no service") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unknown link producer", func(t *testing.T) {
		w := New("x")
		w.AddSink("s")
		w.Connect("ghost", "out", "s", SinkPort)
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "unknown producer") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad port", func(t *testing.T) {
		w := New("x")
		w.AddSource("src")
		w.AddService("p", svc("p"), []string{"in"}, []string{"out"})
		w.AddSink("s")
		w.Connect("src", SourcePort, "p", "wrong")
		w.Connect("p", "out", "s", SinkPort)
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "no input port") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("unfed input port", func(t *testing.T) {
		w := New("x")
		w.AddService("p", svc("p"), []string{"in"}, nil)
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "not fed") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("strategy misses port", func(t *testing.T) {
		w := New("x")
		w.AddSource("src")
		p := w.AddService("p", svc("p"), []string{"a", "b"}, nil)
		p.Strategy = iterstrat.Port("a")
		w.Connect("src", SourcePort, "p", "a")
		w.Connect("src", SourcePort, "p", "b")
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "not covered") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("strategy unknown port", func(t *testing.T) {
		w := New("x")
		w.AddSource("src")
		p := w.AddService("p", svc("p"), []string{"a"}, nil)
		p.Strategy = iterstrat.Dot(iterstrat.Port("a"), iterstrat.Port("zzz"))
		w.Connect("src", SourcePort, "p", "a")
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "unknown port") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("constraint unknown proc", func(t *testing.T) {
		w := New("x")
		w.AddSource("src")
		w.Constrain("src", "ghost")
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "constraint") {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("constant shadows port", func(t *testing.T) {
		w := New("x")
		w.AddSource("src")
		p := w.AddService("p", svc("p"), []string{"a"}, nil)
		p.Constants = map[string]string{"a": "1"}
		w.Connect("src", SourcePort, "p", "a")
		if err := w.Validate(); err == nil || !strings.Contains(err.Error(), "shadows") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestAddPanics(t *testing.T) {
	w := New("x")
	w.AddSource("s")
	for name, f := range map[string]func(){
		"duplicate": func() { w.AddSource("s") },
		"empty":     func() { w.Add(&Processor{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s name did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestConstraintsInPredecessors(t *testing.T) {
	w := New("x")
	w.AddSource("a")
	w.AddService("p", svc("p"), nil, nil)
	w.AddService("q", svc("q"), nil, nil)
	w.Constrain("p", "q")
	preds := w.Predecessors("q")
	if len(preds) != 1 || preds[0] != "p" {
		t.Fatalf("constraint not reflected in predecessors: %v", preds)
	}
	succs := w.Successors("p")
	if len(succs) != 1 || succs[0] != "q" {
		t.Fatalf("constraint not reflected in successors: %v", succs)
	}
}

func TestEffectiveStrategyDefault(t *testing.T) {
	w := New("x")
	p := w.Add(&Processor{Name: "p", Kind: KindService, Service: svc("p"),
		InPorts: []string{"a", "b"}})
	s := w.EffectiveStrategy(p)
	if s.String() != "dot(a,b)" {
		t.Fatalf("default strategy = %s, want dot(a,b)", s)
	}
	single := w.Add(&Processor{Name: "q", Kind: KindService, Service: svc("q"),
		InPorts: []string{"only"}})
	if got := w.EffectiveStrategy(single).String(); got != "only" {
		t.Fatalf("single-port strategy = %s", got)
	}
	src := w.AddSource("s")
	if w.EffectiveStrategy(src) != nil {
		t.Fatal("source has a strategy")
	}
}

// Property: for random DAGs (edges only forward), TopoOrder respects all
// edges and CriticalPathLength is within [1, #services].
func TestQuickRandomDAG(t *testing.T) {
	f := func(edges []uint16, nRaw uint8) bool {
		n := int(nRaw%6) + 2
		w := New("rand")
		w.AddSource("src")
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = string(rune('A' + i))
			w.AddService(names[i], svc(names[i]), []string{"in"}, []string{"out"})
			w.Connect("src", SourcePort, names[i], "in") // keep all ports fed
		}
		for _, e := range edges {
			from := int(e) % n
			to := int(e>>4) % n
			if from < to { // forward edges only: remains a DAG
				w.Connect(names[from], "out", names[to], "in")
			}
		}
		if w.HasCycle() {
			return false
		}
		topo, err := w.TopoOrder()
		if err != nil {
			return false
		}
		pos := map[string]int{}
		for i, nm := range topo {
			pos[nm] = i
		}
		for _, l := range w.Links {
			if pos[l.FromProc] >= pos[l.ToProc] {
				return false
			}
		}
		nW, err := w.CriticalPathLength()
		return err == nil && nW >= 1 && nW <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
