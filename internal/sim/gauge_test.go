package sim

import "testing"

func TestGaugeAccounting(t *testing.T) {
	g := NewGauge(100)
	if g.Capacity() != 100 || g.Unlimited() {
		t.Fatal("capacity 100 reported unlimited")
	}
	g.Add(60)
	g.Add(70) // overflow is legal: a gauge never blocks
	if g.Level() != 130 || g.Peak() != 130 {
		t.Fatalf("level/peak = %v/%v, want 130/130", g.Level(), g.Peak())
	}
	if !g.Over(g.Capacity()) {
		t.Fatal("130 over 100 not reported over capacity")
	}
	g.Remove(80)
	if g.Level() != 50 || g.Peak() != 130 {
		t.Fatalf("level/peak after remove = %v/%v, want 50/130 (peak sticks)", g.Level(), g.Peak())
	}
	g.Remove(1000)
	if g.Level() != 0 {
		t.Fatalf("level clamps at zero, got %v", g.Level())
	}

	u := NewGauge(0)
	if !u.Unlimited() {
		t.Fatal("zero capacity is the unlimited gauge")
	}
	u.Add(1e9)
	if u.Over(u.Capacity()) {
		t.Fatal("an unlimited gauge is never over capacity")
	}

	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	g.Add(-1)
}
