package sim

// Gauge is a continuously-valued occupancy accumulator with an optional
// capacity: the accounting primitive of capacity-limited stores (a storage
// element's resident megabytes) the way Resource is the primitive of
// slot-limited servers. Unlike Resource it never blocks or queues — a
// gauge only measures; admission control (evict, overflow, reject) is the
// caller's policy. A zero or negative capacity means unlimited.
type Gauge struct {
	capacity float64
	level    float64
	peak     float64
}

// NewGauge returns a gauge with the given capacity (non-positive means
// unlimited) at level zero.
func NewGauge(capacity float64) *Gauge {
	if capacity < 0 {
		capacity = 0
	}
	return &Gauge{capacity: capacity}
}

// Capacity returns the configured capacity (zero when unlimited).
func (g *Gauge) Capacity() float64 { return g.capacity }

// Unlimited reports whether the gauge has no capacity bound.
func (g *Gauge) Unlimited() bool { return g.capacity <= 0 }

// Level returns the current occupancy.
func (g *Gauge) Level() float64 { return g.level }

// Peak returns the highest occupancy observed so far.
func (g *Gauge) Peak() float64 { return g.peak }

// Add raises the level by v (negative v panics: use Remove). Adds past
// the capacity are legal — the gauge records the overflow and the caller
// decides how to drain it.
func (g *Gauge) Add(v float64) {
	if v < 0 {
		panic("sim: Gauge.Add with negative value")
	}
	g.level += v
	if g.level > g.peak {
		g.peak = g.level
	}
}

// Remove lowers the level by v, clamping at zero (floating-point dust
// from repeated add/remove cycles must not drive the level negative).
func (g *Gauge) Remove(v float64) {
	if v < 0 {
		panic("sim: Gauge.Remove with negative value")
	}
	g.level -= v
	if g.level < 0 {
		g.level = 0
	}
}

// Over reports whether admitting v more would exceed the capacity (always
// false on an unlimited gauge).
func (g *Gauge) Over(v float64) bool {
	return g.capacity > 0 && g.level+v > g.capacity
}
