package sim

import "sync"

// Inbox is a concurrency-safe injection queue for feeding external events
// into a live engine without violating its single-threaded determinism
// contract. Producers on any goroutine Post callbacks; the engine's owner
// calls Drain between steps, from the engine's own control flow, which
// schedules every posted callback at the current virtual instant in post
// order. The engine itself is never touched from a producer goroutine,
// so a run remains a pure function of its inputs plus the (externally
// observable) sequence of drain points and the injections each one
// admitted — the injection half of the online broker daemon's
// determinism argument (see DESIGN.md, "The online broker daemon").
//
// The zero Inbox is ready to use.
type Inbox struct {
	mu    sync.Mutex
	queue []func()
}

// Post enqueues fn for injection at the next Drain. It is safe to call
// from any goroutine and never blocks on the engine.
func (in *Inbox) Post(fn func()) {
	if fn == nil {
		panic("sim: Inbox.Post with nil callback")
	}
	in.mu.Lock()
	in.queue = append(in.queue, fn)
	in.mu.Unlock()
}

// Len reports how many callbacks are waiting to be drained.
func (in *Inbox) Len() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.queue)
}

// Drain schedules every callback posted so far onto the engine at its
// current virtual instant, in post order, and reports how many were
// injected. It must be called from the engine's control flow (between
// steps), never concurrently with engine use; the scheduled callbacks
// fire when the engine reaches them, same-instant schedule order
// preserved.
func (in *Inbox) Drain(eng *Engine) int {
	in.mu.Lock()
	pending := in.queue
	in.queue = nil
	in.mu.Unlock()
	for _, fn := range pending {
		eng.Schedule(0, fn)
	}
	return len(pending)
}
