package sim

import (
	"sync"
	"testing"
)

// TestInboxDrainOrder verifies posted closures run on the engine in post
// order, at the instant Drain was called.
func TestInboxDrainOrder(t *testing.T) {
	eng := NewEngine()
	var in Inbox
	var got []int
	for i := 0; i < 3; i++ {
		i := i
		in.Post(func() { got = append(got, i) })
	}
	if in.Len() != 3 {
		t.Fatalf("Len = %d, want 3", in.Len())
	}
	if n := in.Drain(eng); n != 3 {
		t.Fatalf("Drain = %d, want 3", n)
	}
	if in.Len() != 0 {
		t.Fatalf("Len after drain = %d, want 0", in.Len())
	}
	eng.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("ran in order %v", got)
	}
}

// TestInboxConcurrentPost hammers Post from many goroutines and checks
// nothing is lost.
func TestInboxConcurrentPost(t *testing.T) {
	eng := NewEngine()
	var in Inbox
	var mu sync.Mutex
	ran := 0
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				in.Post(func() {
					mu.Lock()
					ran++
					mu.Unlock()
				})
			}
		}()
	}
	wg.Wait()
	if n := in.Drain(eng); n != 800 {
		t.Fatalf("Drain = %d, want 800", n)
	}
	eng.Run()
	if ran != 800 {
		t.Fatalf("ran %d closures, want 800", ran)
	}
}

// TestInboxNilPostPanics pins the nil-closure guard.
func TestInboxNilPostPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Post(nil) did not panic")
		}
	}()
	var in Inbox
	in.Post(nil)
}
