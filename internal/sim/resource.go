package sim

// Resource is a capacity-limited server with a FIFO wait queue. It is the
// building block for worker nodes, network links, and the serialized grid
// submission interface.
//
// A caller acquires a slot with Acquire; when a slot is granted the supplied
// callback runs (in virtual time). The holder must call Release exactly once
// when done. For the common hold-for-a-duration pattern, Use wraps
// Acquire/Schedule/Release.
//
// The Arg variants (AcquireArg, UseWaitArg) mirror Engine.ScheduleArg:
// callers pass a static function plus a pointer-shaped argument instead of
// a fresh closure, and the hold-for-a-duration machinery recycles its
// per-hold bookkeeping through a free list, so steady-state resource use
// allocates nothing.
type Resource struct {
	eng       *Engine
	capacity  int
	busy      int
	queue     []waiter
	peakBusy  int
	peakWait  int
	grants    uint64
	freeHolds []*hold
}

// waiter is one queued acquisition: either a plain callback or a static
// function plus argument.
type waiter struct {
	fn  func()
	afn func(any)
	arg any
}

// hold is the recycled bookkeeping of one Use/UseWait hold: the slot wait
// start, the hold duration, and the completion callback. It cycles
// acquire → schedule → release through package-level functions, so the
// whole hold costs zero allocations once the resource's free list is warm.
type hold struct {
	r      *Resource
	start  Time
	waited Time
	d      Time
	afn    func(any, Time)
	arg    any
}

// NewResource returns a resource with the given number of slots on the
// engine. Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: NewResource with non-positive capacity")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the total number of slots.
func (r *Resource) Capacity() int { return r.capacity }

// Busy returns the number of currently held slots.
func (r *Resource) Busy() int { return r.busy }

// Waiting returns the number of queued acquisition requests.
func (r *Resource) Waiting() int { return len(r.queue) }

// PeakBusy returns the maximum number of simultaneously held slots observed.
func (r *Resource) PeakBusy() int { return r.peakBusy }

// PeakWaiting returns the maximum observed queue length.
func (r *Resource) PeakWaiting() int { return r.peakWait }

// Grants returns how many acquisitions have been granted so far.
func (r *Resource) Grants() uint64 { return r.grants }

// Acquire requests a slot. granted runs as soon as a slot is available
// (immediately, in the current event, if one is free). The holder must call
// Release exactly once afterwards.
func (r *Resource) Acquire(granted func()) {
	if granted == nil {
		panic("sim: Acquire with nil callback")
	}
	r.acquire(waiter{fn: granted})
}

// AcquireArg is Acquire for argument-passing callbacks: granted(arg) runs
// as soon as a slot is available. The holder must call Release exactly
// once afterwards.
func (r *Resource) AcquireArg(granted func(any), arg any) {
	if granted == nil {
		panic("sim: AcquireArg with nil callback")
	}
	r.acquire(waiter{afn: granted, arg: arg})
}

func (r *Resource) acquire(w waiter) {
	if r.busy < r.capacity {
		r.grant(w)
		return
	}
	r.queue = append(r.queue, w)
	if len(r.queue) > r.peakWait {
		r.peakWait = len(r.queue)
	}
}

func (r *Resource) grant(w waiter) {
	r.busy++
	r.grants++
	if r.busy > r.peakBusy {
		r.peakBusy = r.busy
	}
	if w.afn != nil {
		w.afn(w.arg)
		return
	}
	w.fn()
}

// Release returns a slot. If requests are queued, the oldest one is granted
// within the same virtual instant.
func (r *Resource) Release() {
	if r.busy <= 0 {
		panic("sim: Release without matching Acquire")
	}
	r.busy--
	if len(r.queue) > 0 {
		next := r.queue[0]
		// Shift rather than re-slice forever; queues here are short-lived.
		n := copy(r.queue, r.queue[1:])
		r.queue[n] = waiter{}
		r.queue = r.queue[:n]
		r.grant(next)
	}
}

// Use acquires a slot, holds it for d, then releases it and calls done
// (which may be nil). It is the hold-for-a-duration convenience wrapper.
func (r *Resource) Use(d Time, done func()) {
	if done == nil {
		r.UseWaitArg(d, nil, nil)
		return
	}
	r.UseWaitArg(d, useDone, done)
}

// useDone adapts a Use completion callback to the UseWaitArg shape. The
// func value is pointer-shaped, so boxing it in the arg slot is free.
func useDone(arg any, _ Time) { arg.(func())() }

// UseWait is Use with wait-time reporting: it acquires a slot, holds it
// for d, releases it, and calls done (which may be nil) with the virtual
// time the request spent queued before the grant (zero when a slot was
// free on arrival). It is the building block of contended transfer
// channels, whose callers account channel congestion separately from the
// transfer itself.
func (r *Resource) UseWait(d Time, done func(waited Time)) {
	if done == nil {
		r.UseWaitArg(d, nil, nil)
		return
	}
	r.UseWaitArg(d, useWaitDone, done)
}

// useWaitDone adapts a UseWait completion callback to the UseWaitArg shape.
func useWaitDone(arg any, waited Time) { arg.(func(Time))(waited) }

// UseWaitArg is UseWait for argument-passing callbacks: it acquires a
// slot, holds it for d, releases it, and calls done(arg, waited) — done
// may be nil — where waited is the virtual time the request spent queued
// before the grant. The per-hold bookkeeping is recycled through the
// resource's free list, so a warm hold allocates nothing.
func (r *Resource) UseWaitArg(d Time, done func(any, Time), arg any) {
	var h *hold
	if n := len(r.freeHolds); n > 0 {
		h = r.freeHolds[n-1]
		r.freeHolds[n-1] = nil
		r.freeHolds = r.freeHolds[:n-1]
	} else {
		h = &hold{r: r}
	}
	h.start = r.eng.Now()
	h.d = d
	h.afn, h.arg = done, arg
	r.acquire(waiter{afn: holdGranted, arg: h})
}

// holdGranted runs when a hold's slot is granted: it records the queueing
// wait and schedules the release.
func holdGranted(x any) {
	h := x.(*hold)
	h.waited = h.r.eng.Now() - h.start
	h.r.eng.ScheduleArg(h.d, holdExpire, h)
}

// holdExpire runs when a hold's duration elapses: it releases the slot
// (granting the next waiter within the same instant, exactly as before),
// recycles the hold, and then calls the completion callback.
func holdExpire(x any) {
	h := x.(*hold)
	r := h.r
	r.Release()
	afn, arg, waited := h.afn, h.arg, h.waited
	h.afn, h.arg = nil, nil
	r.freeHolds = append(r.freeHolds, h)
	if afn != nil {
		afn(arg, waited)
	}
}
