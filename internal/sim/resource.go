package sim

// Resource is a capacity-limited server with a FIFO wait queue. It is the
// building block for worker nodes, network links, and the serialized grid
// submission interface.
//
// A caller acquires a slot with Acquire; when a slot is granted the supplied
// callback runs (in virtual time). The holder must call Release exactly once
// when done. For the common hold-for-a-duration pattern, Use wraps
// Acquire/Schedule/Release.
type Resource struct {
	eng      *Engine
	capacity int
	busy     int
	queue    []func()
	peakBusy int
	peakWait int
	grants   uint64
}

// NewResource returns a resource with the given number of slots on the
// engine. Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: NewResource with non-positive capacity")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Capacity returns the total number of slots.
func (r *Resource) Capacity() int { return r.capacity }

// Busy returns the number of currently held slots.
func (r *Resource) Busy() int { return r.busy }

// Waiting returns the number of queued acquisition requests.
func (r *Resource) Waiting() int { return len(r.queue) }

// PeakBusy returns the maximum number of simultaneously held slots observed.
func (r *Resource) PeakBusy() int { return r.peakBusy }

// PeakWaiting returns the maximum observed queue length.
func (r *Resource) PeakWaiting() int { return r.peakWait }

// Grants returns how many acquisitions have been granted so far.
func (r *Resource) Grants() uint64 { return r.grants }

// Acquire requests a slot. granted runs as soon as a slot is available
// (immediately, in the current event, if one is free). The holder must call
// Release exactly once afterwards.
func (r *Resource) Acquire(granted func()) {
	if granted == nil {
		panic("sim: Acquire with nil callback")
	}
	if r.busy < r.capacity {
		r.grant(granted)
		return
	}
	r.queue = append(r.queue, granted)
	if len(r.queue) > r.peakWait {
		r.peakWait = len(r.queue)
	}
}

func (r *Resource) grant(granted func()) {
	r.busy++
	r.grants++
	if r.busy > r.peakBusy {
		r.peakBusy = r.busy
	}
	granted()
}

// Release returns a slot. If requests are queued, the oldest one is granted
// within the same virtual instant.
func (r *Resource) Release() {
	if r.busy <= 0 {
		panic("sim: Release without matching Acquire")
	}
	r.busy--
	if len(r.queue) > 0 {
		next := r.queue[0]
		// Shift rather than re-slice forever; queues here are short-lived.
		copy(r.queue, r.queue[1:])
		r.queue = r.queue[:len(r.queue)-1]
		r.grant(next)
	}
}

// Use acquires a slot, holds it for d, then releases it and calls done
// (which may be nil). It is the hold-for-a-duration convenience wrapper.
func (r *Resource) Use(d Time, done func()) {
	if done == nil {
		r.UseWait(d, nil)
		return
	}
	r.UseWait(d, func(Time) { done() })
}

// UseWait is Use with wait-time reporting: it acquires a slot, holds it
// for d, releases it, and calls done (which may be nil) with the virtual
// time the request spent queued before the grant (zero when a slot was
// free on arrival). It is the building block of contended transfer
// channels, whose callers account channel congestion separately from the
// transfer itself.
func (r *Resource) UseWait(d Time, done func(waited Time)) {
	start := r.eng.Now()
	r.Acquire(func() {
		waited := r.eng.Now() - start
		r.eng.Schedule(d, func() {
			r.Release()
			if done != nil {
				done(waited)
			}
		})
	})
}
