package sim

import (
	"sort"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("new engine clock = %v, want 0", e.Now())
	}
}

func TestScheduleAdvancesClock(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(5*time.Second, func() { at = e.Now() })
	e.Run()
	if at != 5*time.Second {
		t.Fatalf("event fired at %v, want 5s", at)
	}
	if e.Now() != 5*time.Second {
		t.Fatalf("clock after run = %v, want 5s", e.Now())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired in order %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired in order %v, want schedule order", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var finished Time
	e.Schedule(time.Second, func() {
		e.Schedule(2*time.Second, func() {
			finished = e.Now()
		})
	})
	e.Run()
	if finished != 3*time.Second {
		t.Fatalf("nested event fired at %v, want 3s", finished)
	}
}

func TestZeroDelayFiresAtCurrentInstant(t *testing.T) {
	e := NewEngine()
	var at Time
	e.Schedule(time.Second, func() {
		e.Schedule(0, func() { at = e.Now() })
	})
	e.Run()
	if at != time.Second {
		t.Fatalf("zero-delay event fired at %v, want 1s", at)
	}
}

func TestNegativeDelayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Schedule(-1) did not panic")
		}
	}()
	NewEngine().Schedule(-time.Second, func() {})
}

func TestAtInPastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("At in the past did not panic")
			}
		}()
		e.At(0, func() {})
	})
	e.Run()
}

func TestNilCallbackPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Second, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if e.Fired() != 0 {
		t.Fatalf("Fired() = %d after cancelled run, want 0", e.Fired())
	}
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(1*time.Second, func() { order = append(order, 1) })
	ev := e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.Schedule(3*time.Second, func() { order = append(order, 3) })
	ev.Cancel()
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
}

func TestStepReturnsFalseWhenEmpty(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Fatal("Step on empty engine returned true")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, d := range []Time{time.Second, 2 * time.Second, 5 * time.Second} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	e.RunUntil(3 * time.Second)
	if len(fired) != 2 {
		t.Fatalf("RunUntil(3s) fired %d events, want 2", len(fired))
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v after RunUntil(3s)", e.Now())
	}
	e.Run()
	if len(fired) != 3 {
		t.Fatalf("Run after RunUntil fired %d total, want 3", len(fired))
	}
}

func TestRunUntilBoundaryInclusive(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(3*time.Second, func() { fired = true })
	e.RunUntil(3 * time.Second)
	if !fired {
		t.Fatal("RunUntil(t) did not fire an event scheduled exactly at t")
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	e.Schedule(time.Second, func() {})
	ev := e.Schedule(2*time.Second, func() {})
	ev.Cancel()
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
}

func TestEventAt(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(7*time.Second, func() {})
	if ev.At() != 7*time.Second {
		t.Fatalf("Event.At() = %v, want 7s", ev.At())
	}
}

// Property: regardless of schedule order, events fire in non-decreasing time
// order and the clock never goes backwards.
func TestQuickTimeOrdering(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		r := rng.New(seed)
		e := NewEngine()
		count := int(n%50) + 1
		delays := make([]Time, count)
		for i := range delays {
			delays[i] = Time(r.Intn(1000)) * time.Millisecond
		}
		var fired []Time
		for _, d := range delays {
			e.Schedule(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != count {
			return false
		}
		sorted := append([]Time(nil), delays...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		for i := range fired {
			if fired[i] != sorted[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestResourceImmediateGrant(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	granted := 0
	r.Acquire(func() { granted++ })
	r.Acquire(func() { granted++ })
	if granted != 2 {
		t.Fatalf("granted = %d, want 2 immediate grants", granted)
	}
	if r.Busy() != 2 {
		t.Fatalf("Busy() = %d, want 2", r.Busy())
	}
}

func TestResourceQueuesBeyondCapacity(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var order []int
	r.Use(time.Second, func() { order = append(order, 1) })
	r.Use(time.Second, func() { order = append(order, 2) })
	r.Use(time.Second, func() { order = append(order, 3) })
	if r.Waiting() != 2 {
		t.Fatalf("Waiting() = %d, want 2", r.Waiting())
	}
	e.Run()
	if e.Now() != 3*time.Second {
		t.Fatalf("serialized holds finished at %v, want 3s", e.Now())
	}
	for i, v := range order {
		if v != i+1 {
			t.Fatalf("FIFO order violated: %v", order)
		}
	}
}

func TestResourceParallelHolds(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 3)
	done := 0
	for i := 0; i < 3; i++ {
		r.Use(time.Second, func() { done++ })
	}
	e.Run()
	if e.Now() != time.Second {
		t.Fatalf("3 parallel holds on capacity 3 finished at %v, want 1s", e.Now())
	}
	if done != 3 {
		t.Fatalf("done = %d, want 3", done)
	}
}

func TestResourceReleaseWithoutAcquirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Release without Acquire did not panic")
		}
	}()
	NewResource(NewEngine(), 1).Release()
}

func TestResourceZeroCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(0) did not panic")
		}
	}()
	NewResource(NewEngine(), 0)
}

func TestResourceStats(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	for i := 0; i < 5; i++ {
		r.Use(time.Second, nil)
	}
	e.Run()
	if r.PeakBusy() != 2 {
		t.Errorf("PeakBusy = %d, want 2", r.PeakBusy())
	}
	if r.PeakWaiting() != 3 {
		t.Errorf("PeakWaiting = %d, want 3", r.PeakWaiting())
	}
	if r.Grants() != 5 {
		t.Errorf("Grants = %d, want 5", r.Grants())
	}
	if r.Busy() != 0 {
		t.Errorf("Busy after drain = %d, want 0", r.Busy())
	}
}

// Property: with capacity c and n unit holds, the makespan is
// ceil(n/c) time units and the resource never exceeds its capacity.
func TestQuickResourceMakespan(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%40) + 1
		c := int(cRaw%8) + 1
		e := NewEngine()
		r := NewResource(e, c)
		for i := 0; i < n; i++ {
			r.Use(time.Second, nil)
		}
		e.Run()
		want := Time((n+c-1)/c) * time.Second
		return e.Now() == want && r.PeakBusy() <= c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestPendingLiveCounter walks the counter through schedule, cancel and
// fire transitions: Pending must track live events exactly (it is O(1) now,
// maintained rather than recounted).
func TestPendingLiveCounter(t *testing.T) {
	e := NewEngine()
	evs := make([]*Event, 6)
	for i := range evs {
		evs[i] = e.Schedule(Time(i+1)*time.Second, func() {})
	}
	if e.Pending() != 6 {
		t.Fatalf("Pending after 6 schedules = %d", e.Pending())
	}
	evs[1].Cancel()
	evs[4].Cancel()
	if e.Pending() != 4 {
		t.Fatalf("Pending after 2 cancels = %d", e.Pending())
	}
	evs[1].Cancel() // double cancel must not double-decrement
	if e.Pending() != 4 {
		t.Fatalf("Pending after double cancel = %d", e.Pending())
	}
	e.RunUntil(3 * time.Second) // fires events at 1s and 3s (2s cancelled)
	if e.Pending() != 2 {
		t.Fatalf("Pending after RunUntil(3s) = %d", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("Pending after Run = %d", e.Pending())
	}
	if e.Fired() != 4 {
		t.Fatalf("Fired = %d, want 4", e.Fired())
	}
}

// TestRunUntilCancelledHead checks the peek loop: cancelled events at the
// front of the queue must be collected without firing and without
// advancing the clock past t.
func TestRunUntilCancelledHead(t *testing.T) {
	e := NewEngine()
	var fired []Time
	first := e.Schedule(1*time.Second, func() { fired = append(fired, 1) })
	e.Schedule(2*time.Second, func() { fired = append(fired, 2) })
	late := e.Schedule(4*time.Second, func() { fired = append(fired, 4) })
	first.Cancel()
	late.Cancel()
	e.RunUntil(3 * time.Second)
	if len(fired) != 1 || fired[0] != 2 {
		t.Fatalf("fired = %v, want just the 2s event", fired)
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("clock = %v after RunUntil(3s)", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after all live events fired", e.Pending())
	}
	e.Run()
	if len(fired) != 1 {
		t.Fatalf("cancelled 4s event fired: %v", fired)
	}
}

// TestCancelWithinSameInstantBatch cancels an event from an earlier event
// of the same virtual instant — the cancelled one is already out of the
// priority queue, sitting in the executing batch, and must still not fire.
func TestCancelWithinSameInstantBatch(t *testing.T) {
	e := NewEngine()
	var order []int
	var second *Event
	e.Schedule(time.Second, func() {
		order = append(order, 1)
		second.Cancel()
	})
	second = e.Schedule(time.Second, func() { order = append(order, 2) })
	e.Schedule(time.Second, func() { order = append(order, 3) })
	e.Run()
	if len(order) != 2 || order[0] != 1 || order[1] != 3 {
		t.Fatalf("order = %v, want [1 3]", order)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after run", e.Pending())
	}
}

// TestSameInstantNestedOrdering checks that events scheduled *during* a
// same-instant batch run after everything already scheduled for that
// instant, preserving global schedule order across the batch boundary.
func TestSameInstantNestedOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(time.Second, func() {
		order = append(order, 1)
		e.Schedule(0, func() { order = append(order, 3) })
	})
	e.Schedule(time.Second, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

// TestEventPoolReuse checks the free-list contract: cancelling an event
// after it fired is a no-op (and keeps the live counter intact), and
// recycled events behave like fresh ones.
func TestEventPoolReuse(t *testing.T) {
	e := NewEngine()
	ev := e.Schedule(time.Second, func() {})
	e.Run()
	ev.Cancel() // fired already: must be a no-op
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after post-fire Cancel", e.Pending())
	}
	fired := 0
	for i := 0; i < 100; i++ { // drive the pool through many reuse cycles
		e.Schedule(time.Second, func() { fired++ })
		e.Schedule(time.Second, func() { fired++ }).Cancel()
		e.Run()
	}
	if fired != 100 {
		t.Fatalf("fired = %d, want 100", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d after reuse cycles", e.Pending())
	}
}

// TestRunUntilThenAt exercises the batch/heap boundary: after RunUntil
// stops mid-queue, scheduling at the stop instant and running must fire
// the new event after the remaining older ones of that instant.
func TestRunUntilThenAt(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(time.Second, func() { order = append(order, 1) })
	e.Schedule(2*time.Second, func() { order = append(order, 2) })
	e.RunUntil(time.Second)
	ev := e.At(2*time.Second, func() { order = append(order, 3) })
	if ev.At() != 2*time.Second {
		t.Fatalf("At() = %v", ev.At())
	}
	e.Run()
	if len(order) != 3 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
}

// TestRunUntilThenEarlierSchedule pins a peek regression: stopping at t
// must not commit a later bucket to execution — an event scheduled
// afterwards at an earlier instant has to fire first, and the clock must
// never run backwards.
func TestRunUntilThenEarlierSchedule(t *testing.T) {
	e := NewEngine()
	var order []int
	var clocks []Time
	e.Schedule(1*time.Second, func() { order = append(order, 1); clocks = append(clocks, e.Now()) })
	e.Schedule(3*time.Second, func() { order = append(order, 3); clocks = append(clocks, e.Now()) })
	e.RunUntil(1 * time.Second) // fires the 1s event; 3s stays pending
	e.Schedule(1*time.Second, func() { order = append(order, 2); clocks = append(clocks, e.Now()) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	for i := 1; i < len(clocks); i++ {
		if clocks[i] < clocks[i-1] {
			t.Fatalf("clock ran backwards: %v", clocks)
		}
	}
	if e.Now() != 3*time.Second {
		t.Fatalf("final clock = %v, want 3s", e.Now())
	}
}

// TestRunUntilAllCancelledBucket checks peek retires a bucket whose every
// event was cancelled without firing anything or disturbing later ones.
func TestRunUntilAllCancelledBucket(t *testing.T) {
	e := NewEngine()
	fired := false
	a := e.Schedule(1*time.Second, func() {})
	b := e.Schedule(1*time.Second, func() {})
	e.Schedule(2*time.Second, func() { fired = true })
	a.Cancel()
	b.Cancel()
	e.RunUntil(90 * time.Minute)
	if !fired {
		t.Fatal("2s event did not fire past an all-cancelled earlier bucket")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d", e.Pending())
	}
}

// TestResourceReleaseRacesSameInstantAcquire pins the grant order when a
// Release and a fresh Acquire land in the same virtual instant: the
// queued waiter (FIFO head) gets the freed slot, and the same-instant
// newcomer queues behind it — in both event orderings (release fires
// before the new acquire, and after it).
func TestResourceReleaseRacesSameInstantAcquire(t *testing.T) {
	for _, acquireFirst := range []bool{false, true} {
		e := NewEngine()
		r := NewResource(e, 1)
		var order []string
		r.Acquire(func() {}) // holder; released at 1s below
		r.Acquire(func() { order = append(order, "waiter") })

		release := func() { r.Release() }
		newcomer := func() {
			r.Acquire(func() {
				order = append(order, "newcomer")
				// Hold through the instant so the grant order is observable.
				e.Schedule(time.Second, func() { r.Release() })
			})
		}
		if acquireFirst {
			e.Schedule(time.Second, newcomer)
			e.Schedule(time.Second, release)
		} else {
			e.Schedule(time.Second, release)
			e.Schedule(time.Second, newcomer)
		}
		// Free the waiter's slot so the newcomer eventually runs.
		e.Schedule(2*time.Second, func() { r.Release() })
		e.Run()
		if len(order) != 2 || order[0] != "waiter" || order[1] != "newcomer" {
			t.Errorf("acquireFirst=%v: grant order %v, want [waiter newcomer]", acquireFirst, order)
		}
		if r.Busy() != 0 || r.Waiting() != 0 {
			t.Errorf("acquireFirst=%v: busy=%d waiting=%d after drain", acquireFirst, r.Busy(), r.Waiting())
		}
	}
}

// TestResourcePeakStatsBatchedSameBucket pins PeakWaiting and Grants when
// every acquisition arrives in one same-instant bucket: the queue peaks
// at n−capacity before any release, every request is eventually granted
// exactly once, and the makespan is the ceiling bound.
func TestResourcePeakStatsBatchedSameBucket(t *testing.T) {
	const n, capacity = 9, 2
	e := NewEngine()
	r := NewResource(e, capacity)
	done := 0
	for i := 0; i < n; i++ {
		e.Schedule(time.Second, func() {
			r.Use(time.Second, func() { done++ })
		})
	}
	e.Run()
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if r.PeakWaiting() != n-capacity {
		t.Errorf("PeakWaiting = %d, want %d (whole batch queued before the first release)", r.PeakWaiting(), n-capacity)
	}
	if r.Grants() != n {
		t.Errorf("Grants = %d, want %d", r.Grants(), n)
	}
	if r.PeakBusy() != capacity {
		t.Errorf("PeakBusy = %d, want %d", r.PeakBusy(), capacity)
	}
	// 1s of arrival + ceil(9/2) rounds of 1s holds.
	if want := time.Second + Time((n+capacity-1)/capacity)*time.Second; e.Now() != want {
		t.Errorf("makespan = %v, want %v", e.Now(), want)
	}
}

// TestUseWaitReportsQueueTime pins the UseWait contract: the callback
// receives exactly the time spent queued before the grant (zero for the
// immediate grant), and the holds still serialize FIFO.
func TestUseWaitReportsQueueTime(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	var waits []Time
	for i := 0; i < 3; i++ {
		r.UseWait(time.Second, func(w Time) { waits = append(waits, w) })
	}
	if r.Waiting() != 2 {
		t.Fatalf("Waiting = %d, want 2", r.Waiting())
	}
	e.Run()
	want := []Time{0, time.Second, 2 * time.Second}
	if len(waits) != len(want) {
		t.Fatalf("waits = %v, want %v", waits, want)
	}
	for i := range want {
		if waits[i] != want[i] {
			t.Errorf("waits[%d] = %v, want %v", i, waits[i], want[i])
		}
	}
	// A nil done must not crash the release path.
	r.UseWait(time.Second, nil)
	e.Run()
	if r.Busy() != 0 {
		t.Errorf("Busy = %d after nil-done UseWait drained", r.Busy())
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j)*time.Millisecond, func() {})
		}
		e.Run()
	}
}
