package sim

import "sync"

// Group runs one main engine and a set of shard engines in windowed
// lockstep — the conservative parallel-discrete-event coordinator behind
// the federation's per-grid event loops.
//
// The construction contract: every cross-shard interaction happens
// through events on the main engine (brokering points — submission
// waves, policy picks, dispatches), while each shard engine carries one
// partition's internal events (UI latency, matchmaking, queueing,
// staging, compute). Events scheduled on a shard stay on that shard, so
// between two consecutive main-engine instants the shards are mutually
// independent and may run concurrently.
//
// Run repeats: find the earliest pending main instant t (the next
// barrier), let every shard fire all of its events strictly before t on
// its own goroutine, join, then drain the main engine's batch at t
// (which may inspect and schedule onto the quiesced shards). Once the
// main engine drains empty, the shards run to completion in parallel.
//
// Determinism: each shard is itself a deterministic engine, and shards
// never interact inside a window, so the merge order is fixed by the
// barrier schedule alone — lowest timestamp first, and at a shared
// instant the main engine's events (scheduled earlier, at setup or a
// previous barrier) fire before shard events at that instant, exactly
// the schedule-order tie-break a single serial engine would apply.
// A serial run of the same construction (Workers=1, or calling the same
// loop without goroutines) is therefore bit-identical to a parallel one.
type Group struct {
	// Main is the engine carrying the cross-shard (global) events.
	Main *Engine
	// Shards are the partition engines, run concurrently between
	// consecutive Main instants.
	Shards []*Engine
	// PreWindow, when non-nil, runs right before the shards' goroutines
	// launch; PostWindow right after they join. The federation uses the
	// pair to arm its no-cross-shard-submission guard during windows.
	PreWindow  func()
	PostWindow func()
	// Serial forces the shard windows to run sequentially on the calling
	// goroutine (in shard order) instead of concurrently. The event
	// outcome is identical either way — it exists for A/B measurement
	// and for debugging with clean stacks.
	Serial bool
}

// Run executes the group to completion: windows of parallel shard
// progress separated by the main engine's barrier instants.
func (g *Group) Run() {
	for {
		t, ok := g.Main.NextAt()
		if !ok {
			g.window(0, false)
			return
		}
		g.window(t, true)
		g.Main.RunUntil(t)
	}
}

// window advances every shard — up to (but excluding) the barrier
// instant when bounded, to completion otherwise — concurrently unless
// the group is serial.
func (g *Group) window(barrier Time, bounded bool) {
	if g.PreWindow != nil {
		g.PreWindow()
	}
	if g.Serial {
		for _, s := range g.Shards {
			runShard(s, barrier, bounded)
		}
	} else {
		var wg sync.WaitGroup
		wg.Add(len(g.Shards))
		for _, s := range g.Shards {
			go func(s *Engine) {
				defer wg.Done()
				runShard(s, barrier, bounded)
			}(s)
		}
		wg.Wait()
	}
	if g.PostWindow != nil {
		g.PostWindow()
	}
}

// runShard drains one shard's window: all events strictly before the
// barrier (advancing the shard clock to the barrier), or every remaining
// event when the run is unbounded.
func runShard(s *Engine, barrier Time, bounded bool) {
	if bounded {
		s.RunBefore(barrier)
		return
	}
	s.Run()
}
