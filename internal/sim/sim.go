// Package sim implements the discrete-event simulation engine on which the
// grid substrate and the workflow enactor run.
//
// Time is virtual: a time.Duration measured from the start of the run. All
// activity is expressed as events (callbacks) scheduled at virtual instants.
// Events scheduled for the same instant execute in schedule order, which
// makes runs deterministic for a given seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual instant, measured as an offset from the simulation start.
type Time = time.Duration

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// At returns the virtual instant this event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: all simulated components run in event callbacks on the
// engine's (single) control flow, which is what makes runs deterministic.
type Engine struct {
	now    Time
	events eventHeap
	seq    uint64
	fired  uint64
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired or
// cancelled. Cancelled events still in the heap are not counted.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.events {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Schedule arranges for fn to run after delay. A negative delay panics:
// scheduling into the past would break causality.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at the absolute virtual instant t, which must
// not precede the current time.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) precedes now (%v)", t, e.now))
	}
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// Step fires the next pending event, advancing the clock to its instant.
// It reports whether an event fired (false means the queue was empty).
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with instants <= t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for len(e.events) > 0 {
		// Peek at the earliest non-cancelled event.
		ev := e.events[0]
		if ev.canceled {
			heap.Pop(&e.events)
			continue
		}
		if ev.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
