// Package sim implements the discrete-event simulation engine on which the
// grid substrate and the workflow enactor run.
//
// Time is virtual: a time.Duration measured from the start of the run. All
// activity is expressed as events (callbacks) scheduled at virtual instants.
// Events scheduled for the same instant execute in schedule order, which
// makes runs deterministic for a given seed.
//
// The engine is built for high event rates: events scheduled for the same
// instant share one bucket (a single priority-queue node), so bursts —
// thousands of data-parallel completions at one virtual time — cost O(1)
// per event instead of O(log n) heap sifts, and whole buckets execute as
// batches. Event and bucket objects are recycled through free lists, so
// steady-state scheduling allocates nothing. A consequence of pooling: an
// *Event pointer is only valid until its callback has run (or until a
// cancelled event is collected). Cancelling before then is always safe;
// retaining a pointer past that and cancelling later is not, because the
// engine may have reused the object for a new event.
package sim

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a virtual instant, measured as an offset from the simulation start.
type Time = time.Duration

// Event is a scheduled callback. It can be cancelled before it fires.
// An event carries either a plain callback (Schedule/At) or an
// argument-passing one (ScheduleArg/AtArg); the latter lets hot paths
// share one static function across events instead of allocating a new
// closure per event.
type Event struct {
	eng      *Engine
	at       Time
	fn       func()
	afn      func(any)
	arg      any
	canceled bool
	fired    bool
}

// At returns the virtual instant this event is scheduled for.
func (e *Event) At() Time { return e.at }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired (or was already cancelled) is a no-op — but see the
// package comment: the pointer must not be retained after the callback
// has run.
func (e *Event) Cancel() {
	if e.canceled || e.fired {
		return
	}
	e.canceled = true
	e.eng.live--
}

// bucket holds every not-yet-fired event of one virtual instant, in
// schedule order.
type bucket struct {
	at     Time
	events []*Event
	index  int // heap index
}

type bucketHeap []*bucket

func (h bucketHeap) Len() int           { return len(h) }
func (h bucketHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h bucketHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *bucketHeap) Push(x any) {
	b := x.(*bucket)
	b.index = len(*h)
	*h = append(*h, b)
}
func (h *bucketHeap) Pop() any {
	old := *h
	n := len(old)
	b := old[n-1]
	old[n-1] = nil
	b.index = -1
	*h = old[:n-1]
	return b
}

// Engine is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use: all simulated components run in event callbacks on the
// engine's (single) control flow, which is what makes runs deterministic.
type Engine struct {
	now     Time
	buckets bucketHeap
	byTime  map[Time]*bucket // pending instants → their bucket
	fired   uint64
	live    int // scheduled and neither fired nor cancelled

	// batch is the bucket currently executing; batchPos is the next entry
	// to fire. Events scheduled while a batch drains (even at the same
	// instant) land in a fresh bucket, which the heap orders after the
	// draining one — schedule order is preserved because the new arrivals
	// are younger than everything already in the batch.
	batch    []*Event
	batchPos int

	freeEvents  []*Event
	freeBuckets []*bucket
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine { return &Engine{byTime: make(map[Time]*bucket)} }

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled and not yet fired or
// cancelled. The count is maintained on schedule/fire/cancel, so the call
// is O(1).
func (e *Engine) Pending() int { return e.live }

// Schedule arranges for fn to run after delay. A negative delay panics:
// scheduling into the past would break causality.
func (e *Engine) Schedule(delay Time, fn func()) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: Schedule with negative delay %v", delay))
	}
	return e.At(e.now+delay, fn)
}

// At arranges for fn to run at the absolute virtual instant t, which must
// not precede the current time.
func (e *Engine) At(t Time, fn func()) *Event {
	if fn == nil {
		panic("sim: At with nil callback")
	}
	ev := e.newEvent(t)
	ev.fn = fn
	return ev
}

// ScheduleArg is Schedule for argument-passing callbacks: fn(arg) runs
// after delay. Because fn can be a package-level function and arg a
// pointer, hot paths schedule without allocating a closure per event.
func (e *Engine) ScheduleArg(delay Time, fn func(any), arg any) *Event {
	if delay < 0 {
		panic(fmt.Sprintf("sim: ScheduleArg with negative delay %v", delay))
	}
	return e.AtArg(e.now+delay, fn, arg)
}

// AtArg is At for argument-passing callbacks: fn(arg) runs at the
// absolute virtual instant t, which must not precede the current time.
func (e *Engine) AtArg(t Time, fn func(any), arg any) *Event {
	if fn == nil {
		panic("sim: AtArg with nil callback")
	}
	ev := e.newEvent(t)
	ev.afn, ev.arg = fn, arg
	return ev
}

// newEvent pulls a recycled (or new) event, stamps its instant, and files
// it in the instant's bucket. The caller fills in the callback.
func (e *Engine) newEvent(t Time) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: At(%v) precedes now (%v)", t, e.now))
	}
	var ev *Event
	if n := len(e.freeEvents); n > 0 {
		ev = e.freeEvents[n-1]
		e.freeEvents[n-1] = nil
		e.freeEvents = e.freeEvents[:n-1]
		*ev = Event{eng: e, at: t}
	} else {
		ev = &Event{eng: e, at: t}
	}
	e.live++
	b, ok := e.byTime[t]
	if !ok {
		if n := len(e.freeBuckets); n > 0 {
			b = e.freeBuckets[n-1]
			e.freeBuckets[n-1] = nil
			e.freeBuckets = e.freeBuckets[:n-1]
			b.at = t
		} else {
			b = &bucket{at: t}
		}
		e.byTime[t] = b
		heap.Push(&e.buckets, b)
	}
	b.events = append(b.events, ev)
	return ev
}

// recycle returns a consumed (fired or cancelled-and-collected) event to
// the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn, ev.afn, ev.arg = nil, nil, nil
	e.freeEvents = append(e.freeEvents, ev)
}

// refill swaps the earliest bucket's events into the execution batch.
// It reports whether any events are available.
func (e *Engine) refill() bool {
	if len(e.buckets) == 0 {
		return false
	}
	b := heap.Pop(&e.buckets).(*bucket)
	delete(e.byTime, b.at)
	// Swap slices so the drained batch's capacity is reused by the next
	// bucket instead of being garbage.
	e.batch, b.events = b.events, e.batch[:0]
	e.batchPos = 0
	e.freeBuckets = append(e.freeBuckets, b)
	return true
}

// next returns the next event to consider firing; nil means none remain.
// Cancelled events are returned too (the caller skips and recycles them).
func (e *Engine) next() *Event {
	for {
		if e.batchPos < len(e.batch) {
			ev := e.batch[e.batchPos]
			e.batch[e.batchPos] = nil
			e.batchPos++
			return ev
		}
		if !e.refill() {
			return nil
		}
	}
}

// peek returns the earliest pending (non-cancelled) event without firing
// it; nil means none remain. Cancelled events at the front of the batch or
// of the earliest bucket are collected on the way. The heap is inspected
// in place — peek must not commit a bucket to execution, because events
// scheduled after a RunUntil stop may precede it.
func (e *Engine) peek() *Event {
	for e.batchPos < len(e.batch) {
		ev := e.batch[e.batchPos]
		if !ev.canceled {
			return ev
		}
		e.batch[e.batchPos] = nil
		e.batchPos++
		e.recycle(ev)
	}
	for len(e.buckets) > 0 {
		b := e.buckets[0]
		for len(b.events) > 0 {
			ev := b.events[0]
			if !ev.canceled {
				return ev
			}
			b.events[0] = nil
			b.events = b.events[1:]
			e.recycle(ev)
		}
		// Every event of the earliest bucket was cancelled: retire it.
		heap.Pop(&e.buckets)
		delete(e.byTime, b.at)
		e.freeBuckets = append(e.freeBuckets, b)
	}
	return nil
}

// Step fires the next pending event, advancing the clock to its instant.
// It reports whether an event fired (false means the queue was empty).
func (e *Engine) Step() bool {
	for {
		ev := e.next()
		if ev == nil {
			return false
		}
		if ev.canceled {
			e.recycle(ev)
			continue
		}
		e.now = ev.at
		e.fired++
		e.live--
		ev.fired = true
		if ev.afn != nil {
			afn, arg := ev.afn, ev.arg
			afn(arg)
		} else {
			fn := ev.fn
			fn()
		}
		e.recycle(ev)
		return true
	}
}

// Run fires events until none remain.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with instants <= t, then advances the clock to t.
func (e *Engine) RunUntil(t Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// NextAt returns the instant of the earliest pending (non-cancelled)
// event. ok is false when no events remain. The clock does not advance
// and no bucket is committed to execution, so events scheduled afterwards
// for earlier instants still fire in order.
func (e *Engine) NextAt() (t Time, ok bool) {
	ev := e.peek()
	if ev == nil {
		return 0, false
	}
	return ev.at, true
}

// RunBefore fires every event with an instant strictly before t, then
// advances the clock to t. It is the shard-side window primitive of
// Group: a shard drains all of its work below the next global barrier
// instant without observing events at the barrier itself, which belong
// to the window after the barrier's global batch.
func (e *Engine) RunBefore(t Time) {
	for {
		ev := e.peek()
		if ev == nil || ev.at >= t {
			break
		}
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}
