package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"
)

func approx(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestFitExactLine(t *testing.T) {
	// y = 100 + 5x, exactly.
	sizes := []int{12, 66, 126}
	times := make([]time.Duration, len(sizes))
	for i, x := range sizes {
		times[i] = time.Duration(100+5*x) * time.Second
	}
	l, err := Fit(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(l.Intercept, 100, 1e-9) || !approx(l.Slope, 5, 1e-9) {
		t.Fatalf("fit = %+v, want intercept 100 slope 5", l)
	}
	if !approx(l.R2, 1, 1e-12) {
		t.Fatalf("R² = %v, want 1 for an exact line", l.R2)
	}
	if got := l.Eval(20); got != 200*time.Second {
		t.Fatalf("Eval(20) = %v, want 200s", got)
	}
}

// The paper's Table 2 derives from Table 1 by 3-point linear regression;
// reproduce the published NOP row from the published NOP times.
func TestFitPaperTable2NOPRow(t *testing.T) {
	sizes := []int{12, 66, 126}
	times := []time.Duration{32855 * time.Second, 76354 * time.Second, 133493 * time.Second}
	l, err := Fit(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: y-intercept 20784 s, slope 884 s/data set.
	if !approx(l.Intercept, 20784, 25) {
		t.Errorf("intercept = %.0f, paper reports 20784", l.Intercept)
	}
	if !approx(l.Slope, 884, 2) {
		t.Errorf("slope = %.1f, paper reports 884", l.Slope)
	}
}

func TestFitPaperTable2DPRow(t *testing.T) {
	sizes := []int{12, 66, 126}
	times := []time.Duration{17690 * time.Second, 26437 * time.Second, 34027 * time.Second}
	l, err := Fit(sizes, times)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: y-intercept 16328 s, slope 143 s/data set.
	if !approx(l.Intercept, 16328, 25) {
		t.Errorf("intercept = %.0f, paper reports 16328", l.Intercept)
	}
	if !approx(l.Slope, 143, 2) {
		t.Errorf("slope = %.1f, paper reports 143", l.Slope)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]int{1}, []time.Duration{time.Second}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := Fit([]int{1, 2}, []time.Duration{time.Second}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([]int{3, 3}, []time.Duration{time.Second, 2 * time.Second}); err == nil {
		t.Error("vertical line accepted")
	}
}

func TestFitFlatLine(t *testing.T) {
	l, err := Fit([]int{1, 2, 3}, []time.Duration{time.Minute, time.Minute, time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	if !approx(l.Slope, 0, 1e-12) || !approx(l.Intercept, 60, 1e-9) {
		t.Fatalf("flat fit = %+v", l)
	}
	if l.R2 != 1 {
		t.Fatalf("flat-line R² = %v, want 1 by convention", l.R2)
	}
}

func TestSpeedUp(t *testing.T) {
	if got := SpeedUp(133493*time.Second, 14547*time.Second); !approx(got, 9.18, 0.01) {
		t.Errorf("paper headline speed-up = %.2f, want ≈9.18", got)
	}
	if got := SpeedUp(time.Minute, time.Minute); got != 1 {
		t.Errorf("equal speed-up = %v", got)
	}
	if !math.IsInf(SpeedUp(time.Second, 0), 1) {
		t.Error("zero optimized time should be +Inf")
	}
}

func TestRatios(t *testing.T) {
	ref := Line{Intercept: 20784, Slope: 884}
	dp := Line{Intercept: 16328, Slope: 143}
	// Paper Sec. 5.2: DP vs NOP has slope ratio 6.18 and y-intercept
	// ratio 1.27.
	if got := SlopeRatio(ref, dp); !approx(got, 6.18, 0.01) {
		t.Errorf("slope ratio = %.2f, paper reports 6.18", got)
	}
	if got := YInterceptRatio(ref, dp); !approx(got, 1.27, 0.01) {
		t.Errorf("y-intercept ratio = %.2f, paper reports 1.27", got)
	}
	if !math.IsInf(SlopeRatio(ref, Line{Slope: 0}), 1) {
		t.Error("zero slope should give +Inf ratio")
	}
	if !math.IsInf(YInterceptRatio(ref, Line{Intercept: 0}), 1) {
		t.Error("zero intercept should give +Inf ratio")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]time.Duration{2 * time.Second, 4 * time.Second, 6 * time.Second})
	if s.N != 3 || s.Mean != 4*time.Second || s.Min != 2*time.Second || s.Max != 6*time.Second {
		t.Fatalf("summary = %+v", s)
	}
	if s.SD < 1600*time.Millisecond || s.SD > 1700*time.Millisecond {
		t.Fatalf("sd = %v, want ≈1.633s", s.SD)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty summary = %+v", z)
	}
}

func TestLineString(t *testing.T) {
	l := Line{Intercept: 100, Slope: 5.5, R2: 0.999}
	if got := l.String(); got != "y = 100 s + 5.5 s/dataset (R²=0.999)" {
		t.Fatalf("String = %q", got)
	}
}

// Property: Fit recovers exact generating parameters from noiseless data.
func TestQuickFitRecoversParameters(t *testing.T) {
	f := func(seed uint64, iRaw, sRaw uint16) bool {
		r := rng.New(seed)
		intercept := float64(iRaw % 10000)
		slope := float64(sRaw%1000) + 1
		n := r.Intn(8) + 2
		sizes := make([]int, n)
		times := make([]time.Duration, n)
		for k := range sizes {
			sizes[k] = k*10 + r.Intn(5)
		}
		// ensure distinct x
		sizes[n-1] = sizes[n-2] + 7
		for k, x := range sizes {
			times[k] = time.Duration((intercept + slope*float64(x)) * float64(time.Second))
		}
		l, err := Fit(sizes, times)
		if err != nil {
			return false
		}
		return approx(l.Intercept, intercept, 1e-3) && approx(l.Slope, slope, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: speed-up of x over itself is 1; speed-up is anti-symmetric
// under swapping (product is 1).
func TestQuickSpeedUpSymmetry(t *testing.T) {
	f := func(aRaw, bRaw uint16) bool {
		a := time.Duration(aRaw%5000+1) * time.Second
		b := time.Duration(bRaw%5000+1) * time.Second
		return approx(SpeedUp(a, b)*SpeedUp(b, a), 1, 1e-9) && SpeedUp(a, a) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
