// Package metrics implements the analysis metrics of Sec. 5.1: the
// speed-up, and the y-intercept and slope of the linear regression of
// execution time against input data-set size.
//
// On a production grid the y-intercept measures the incompressible
// overhead of accessing the infrastructure (the time to process zero data
// sets), while the slope measures data scalability. The y-intercept ratio
// and slope ratio compare an optimized configuration against a reference
// one, attributing the improvement to overhead reduction or to scalability
// respectively.
package metrics

import (
	"fmt"
	"math"
	"time"
)

// Line is a fitted y = Intercept + Slope·x with its coefficient of
// determination.
type Line struct {
	// Intercept is the y-intercept in seconds (time for zero data sets).
	Intercept float64
	// Slope is in seconds per data set.
	Slope float64
	// R2 is the coefficient of determination of the fit.
	R2 float64
}

// Eval returns the fitted value at x, as a duration.
func (l Line) Eval(x float64) time.Duration {
	return time.Duration((l.Intercept + l.Slope*x) * float64(time.Second))
}

// String renders the fitted line the way the paper's figures caption it.
func (l Line) String() string {
	return fmt.Sprintf("y = %.0f s + %.1f s/dataset (R²=%.3f)", l.Intercept, l.Slope, l.R2)
}

// Fit computes the least-squares regression of times (as durations)
// against sizes. It needs at least two points with distinct x.
func Fit(sizes []int, times []time.Duration) (Line, error) {
	if len(sizes) != len(times) {
		return Line{}, fmt.Errorf("metrics: %d sizes but %d times", len(sizes), len(times))
	}
	if len(sizes) < 2 {
		return Line{}, fmt.Errorf("metrics: need at least 2 points, got %d", len(sizes))
	}
	n := float64(len(sizes))
	var sx, sy, sxx, sxy, syy float64
	for i := range sizes {
		x := float64(sizes[i])
		y := times[i].Seconds()
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Line{}, fmt.Errorf("metrics: all x values identical")
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n

	// R² = 1 − SSres/SStot (1 when SStot is zero: a flat perfect fit).
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range sizes {
		x := float64(sizes[i])
		y := times[i].Seconds()
		d := y - (intercept + slope*x)
		ssRes += d * d
		ssTot += (y - meanY) * (y - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Line{Intercept: intercept, Slope: slope, R2: r2}, nil
}

// SpeedUp is the ratio of a reference execution time to the optimized one
// (Sec. 5.1: "the ratio of the execution time over the reference execution
// time" — values above 1 mean the optimization helps).
func SpeedUp(reference, optimized time.Duration) float64 {
	if optimized <= 0 {
		return math.Inf(1)
	}
	return float64(reference) / float64(optimized)
}

// YInterceptRatio compares the system overhead of two fitted lines: the
// reference's y-intercept over the analyzed configuration's. Above 1 means
// the analyzed configuration reduced the overhead.
func YInterceptRatio(reference, analyzed Line) float64 {
	if analyzed.Intercept == 0 {
		return math.Inf(1)
	}
	return reference.Intercept / analyzed.Intercept
}

// SlopeRatio compares the data scalability of two fitted lines: the
// reference's slope over the analyzed configuration's. Above 1 means the
// analyzed configuration scales better with the data set size.
func SlopeRatio(reference, analyzed Line) float64 {
	if analyzed.Slope == 0 {
		return math.Inf(1)
	}
	return reference.Slope / analyzed.Slope
}

// Summary holds basic descriptive statistics of a duration sample.
type Summary struct {
	N        int
	Mean, SD time.Duration
	Min, Max time.Duration
}

// Summarize computes descriptive statistics.
func Summarize(sample []time.Duration) Summary {
	s := Summary{N: len(sample)}
	if s.N == 0 {
		return s
	}
	s.Min, s.Max = sample[0], sample[0]
	var sum, sum2 float64
	for _, d := range sample {
		f := d.Seconds()
		sum += f
		sum2 += f * f
		if d < s.Min {
			s.Min = d
		}
		if d > s.Max {
			s.Max = d
		}
	}
	mean := sum / float64(s.N)
	varr := sum2/float64(s.N) - mean*mean
	if varr < 0 {
		varr = 0
	}
	s.Mean = time.Duration(mean * float64(time.Second))
	s.SD = time.Duration(math.Sqrt(varr) * float64(time.Second))
	return s
}
