package bronze

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"
)

// goldenFingerprints pins the simulated makespan and an FNV-1a fingerprint
// of the complete execution (every invocation's processor, index key and
// Ready/Started/Finished instants, plus the sorted sink outputs) for every
// Table 1 configuration, per input size, at seed 1+size.
//
// The values were captured from the pre-optimization enactor (the naive
// full-sweep control loop and unbatched event engine), so this test proves
// the hot-path overhaul — topology caching, dirty-set scheduling, event
// pooling — changed wall-clock cost only: virtual time, invocation order
// and data results are bit-identical. Regenerate with `go run
// ./cmd/goldengen` only when an intentional semantic change is made, and
// say so in the commit.
var goldenFingerprints = []struct {
	config   string
	size     int
	makespan time.Duration
	hash     uint64
}{
	{"NOP", 12, 13644872693088, 0x32653792eea6ecd3},
	{"NOP", 66, 68913753037937, 0xfacb2d2fc789f1b6},
	{"NOP", 126, 132757495140149, 0x29c8c8532e9c2f8d},
	{"JG", 12, 8383622609238, 0x9000c9f0f4a155ac},
	{"JG", 66, 53862334232130, 0x3967a81844f25b22},
	{"JG", 126, 105574230011868, 0xb90d6c003f15d6b6},
	{"SP", 12, 7813212175864, 0xd3bd2d8e7d411dd4},
	{"SP", 66, 31504062064244, 0xe0f02c8596cbc8d},
	{"SP", 126, 64965392853933, 0x6fa5e8bc8d384606},
	{"DP", 12, 3550255930121, 0xb43415446672afef},
	{"DP", 66, 9804225718751, 0x6cb74e3f54ac2579},
	{"DP", 126, 18220739043487, 0x92623a44536eeecb},
	{"SP+DP", 12, 3435618317421, 0x25571a1dbbc92baa},
	{"SP+DP", 66, 8509652628459, 0x1b1e076124f2403b},
	{"SP+DP", 126, 15293575771495, 0xa466c818e5d02635},
	{"SP+DP+JG", 12, 1717944952423, 0xae188c796fc2c0b},
	{"SP+DP+JG", 66, 6380707173427, 0xb83fb1c7dbd0f242},
	{"SP+DP+JG", 126, 11936244254302, 0x16e27e43587f4a74},
}

// TestGoldenDeterminism runs every Table 1 cell and compares against the
// pre-refactor fingerprints: same seed, byte-identical trace and outputs.
func TestGoldenDeterminism(t *testing.T) {
	byName := make(map[string]Configuration)
	for _, cfg := range Configurations() {
		byName[cfg.Name] = cfg
	}
	for _, g := range goldenFingerprints {
		if testing.Short() && g.size > 12 {
			continue
		}
		t.Run(fmt.Sprintf("%s/%d", g.config, g.size), func(t *testing.T) {
			cfg, ok := byName[g.config]
			if !ok {
				t.Fatalf("unknown configuration %q", g.config)
			}
			p := DefaultParams()
			p.Seed = 1 + uint64(g.size)
			res, _, err := Run(g.size, cfg.Opts, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan != g.makespan {
				t.Errorf("makespan = %d (%v), golden %d (%v)",
					res.Makespan, res.Makespan, g.makespan, g.makespan)
			}
			h := fnv.New64a()
			for _, inv := range res.Trace.Invocations {
				fmt.Fprintf(h, "%s|%s|%d|%d|%d;", inv.Processor, inv.Key(),
					inv.Ready, inv.Started, inv.Finished)
			}
			for _, sink := range []string{"accuracy_translation", "accuracy_rotation"} {
				for _, v := range res.Outputs[sink] {
					fmt.Fprintf(h, "%s;", v)
				}
			}
			if got := h.Sum64(); got != g.hash {
				t.Errorf("trace fingerprint = %#x, golden %#x", got, g.hash)
			}
		})
	}
}
