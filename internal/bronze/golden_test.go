package bronze

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
)

// goldenFingerprints pins the simulated makespan and an FNV-1a fingerprint
// of the complete execution (every invocation's processor, index key and
// Ready/Started/Finished instants, plus the sorted sink outputs) for every
// Table 1 configuration, per input size, at seed 1+size.
//
// The values were last captured after the multi-tenancy PR's two
// intentional grid-model changes: the additive rank floor that spreads
// matchmaking over idle clusters (previously every idle cluster ranked
// 0.0 and the largest always won), and the nonzero default
// SubmitLoadFactor that puts burst submission into the paper's loaded
// regime. Both change simulated timings; Table 1's optimization ordering
// was re-verified against the paper under the experiment's median-of-5
// protocol before pinning (TestMedianOrderingAt126 — note the pinned
// single-seed SP+DP cell at 126 is itself a within-noise flip above the
// DP cell). Regenerate with `go run ./cmd/goldengen` only when an
// intentional semantic change is made, and say so in the commit.
var goldenFingerprints = []struct {
	config   string
	size     int
	makespan time.Duration
	hash     uint64
}{
	{"NOP", 12, 12397104887371, 0xd86bfca5826caf15},
	{"NOP", 66, 67324192647516, 0xb7b64ac2faa65cc6},
	{"NOP", 126, 128525438636396, 0x71790d1e48f33092},
	{"JG", 12, 9966342996435, 0xa5d69340d022603e},
	{"JG", 66, 50613598696654, 0x9ff30ac389a17b97},
	{"JG", 126, 102219084893096, 0xbd487f9465285e84},
	{"SP", 12, 7409661220080, 0x73daf111ebd0d442},
	{"SP", 66, 33015609015298, 0x1c86c3fd43615b18},
	{"SP", 126, 65573509002533, 0xb8020e36675f3ca0},
	{"DP", 12, 3717500128710, 0xb5314408726b4d76},
	{"DP", 66, 12776810853591, 0x2e7cc8d5f5dbeabd},
	{"DP", 126, 21694835079022, 0x396d3c4b050a1efa},
	{"SP+DP", 12, 2198252955270, 0x38d1f2010cb9b284},
	{"SP+DP", 66, 9586327242317, 0x9ca4480d7c879ea7},
	{"SP+DP", 126, 22098051527463, 0xa896c100e0994d5e},
	{"SP+DP+JG", 12, 1946897513226, 0x996b2f203fc78bb7},
	{"SP+DP+JG", 66, 8515704709597, 0x6a49aba34f8b8d35},
	{"SP+DP+JG", 126, 15433982290288, 0x85997b0d992d2f1c},
}

// TestGoldenDeterminism runs every Table 1 cell and compares against the
// pre-refactor fingerprints: same seed, byte-identical trace and outputs.
func TestGoldenDeterminism(t *testing.T) {
	byName := make(map[string]Configuration)
	for _, cfg := range Configurations() {
		byName[cfg.Name] = cfg
	}
	for _, g := range goldenFingerprints {
		if testing.Short() && g.size > 12 {
			continue
		}
		t.Run(fmt.Sprintf("%s/%d", g.config, g.size), func(t *testing.T) {
			cfg, ok := byName[g.config]
			if !ok {
				t.Fatalf("unknown configuration %q", g.config)
			}
			p := DefaultParams()
			p.Seed = 1 + uint64(g.size)
			res, _, err := Run(g.size, cfg.Opts, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan != g.makespan {
				t.Errorf("makespan = %d (%v), golden %d (%v)",
					res.Makespan, res.Makespan, g.makespan, g.makespan)
			}
			h := fnv.New64a()
			for _, inv := range res.Trace.Invocations {
				fmt.Fprintf(h, "%s|%s|%d|%d|%d;", inv.Processor, inv.Key(),
					inv.Ready, inv.Started, inv.Finished)
			}
			for _, sink := range []string{"accuracy_translation", "accuracy_rotation"} {
				for _, v := range res.Outputs[sink] {
					fmt.Fprintf(h, "%s;", v)
				}
			}
			if got := h.Sum64(); got != g.hash {
				t.Errorf("trace fingerprint = %#x, golden %#x", got, g.hash)
			}
		})
	}
}

// TestMedianOrderingAt126 guards the headline paper invariant at the full
// experiment scale: under the Table 1 protocol (median of 5 seeded
// repetitions), service parallelism on top of data parallelism still pays
// off at 126 pairs on the default (saturating) grid. Single seeds can
// flip this within noise — the pinned golden seed does — which is exactly
// why the experiment, like the paper's, reports medians.
func TestMedianOrderingAt126(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	median := func(opts core.Options) time.Duration {
		times := make([]time.Duration, 0, Repeats)
		for rep := 0; rep < Repeats; rep++ {
			p := DefaultParams()
			p.Seed = 1 + 126 + uint64(rep)*7919
			p.Grid.Seed = 0
			res, _, err := Run(126, opts, p)
			if err != nil {
				t.Fatal(err)
			}
			times = append(times, res.Makespan)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2]
	}
	dp := median(core.Options{DataParallelism: true})
	spdp := median(core.Options{DataParallelism: true, ServiceParallelism: true})
	if spdp >= dp {
		t.Fatalf("SP+DP median (%v) not below DP median (%v) at 126 pairs: the saturation calibration broke the paper's ordering", spdp, dp)
	}
}
