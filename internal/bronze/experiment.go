package bronze

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/metrics"
)

// Configuration names an optimization combination the way the paper does.
type Configuration struct {
	Name string
	Opts core.Options
}

// Configurations returns the six configurations of Table 1, in the
// paper's order.
func Configurations() []Configuration {
	return []Configuration{
		{"NOP", core.Options{}},
		{"JG", core.Options{JobGrouping: true}},
		{"SP", core.Options{ServiceParallelism: true}},
		{"DP", core.Options{DataParallelism: true}},
		{"SP+DP", core.Options{ServiceParallelism: true, DataParallelism: true}},
		{"SP+DP+JG", core.Options{ServiceParallelism: true, DataParallelism: true, JobGrouping: true}},
	}
}

// PaperSizes are the input set sizes of the paper's experiment: 12, 66 and
// 126 image pairs (1, 7 and 25 patients).
var PaperSizes = []int{12, 66, 126}

// PaperTable1 is the paper's Table 1 (execution times in seconds) for
// comparison in reports.
var PaperTable1 = map[string][3]int{
	"NOP":      {32855, 76354, 133493},
	"JG":       {22990, 68427, 125503},
	"SP":       {18302, 63360, 120407},
	"DP":       {17690, 26437, 34027},
	"SP+DP":    {7825, 12143, 17823},
	"SP+DP+JG": {5524, 9053, 14547},
}

// PaperTable2 is the paper's Table 2: y-intercept (s) and slope
// (s/data set) per configuration.
var PaperTable2 = map[string][2]float64{
	"NOP":      {20784, 884},
	"JG":       {11093, 900},
	"SP":       {6382, 897},
	"DP":       {16328, 143},
	"SP+DP":    {6625, 88},
	"SP+DP+JG": {4310, 79},
}

// Row is one measured configuration across input sizes.
type Row struct {
	Config string
	Sizes  []int
	Times  []time.Duration
	Jobs   []int // grid job submissions (incl. resubmissions) per size
}

// Repeats is the number of independent runs per (configuration, size)
// cell; the reported time is the median, which stabilizes the table
// against individual unlucky failures the way the paper's multi-run
// protocol does.
const Repeats = 5

// Table1 runs every configuration on every input size and returns the
// measured execution times — the reproduction of the paper's Table 1.
// Each (size, repetition) uses the same grid seed across configurations,
// mirroring the paper's protocol of submitting each data set once per
// configuration.
func Table1(sizes []int, p Params) ([]Row, error) {
	rows := make([]Row, 0, 6)
	for _, cfg := range Configurations() {
		row := Row{Config: cfg.Name, Sizes: sizes}
		for _, n := range sizes {
			times := make([]time.Duration, 0, Repeats)
			jobs := 0
			for rep := 0; rep < Repeats; rep++ {
				pp := p
				pp.Seed = p.Seed + uint64(n) + uint64(rep)*7919
				pp.Grid.Seed = 0 // let Build derive it from Seed
				res, app, err := Run(n, cfg.Opts, pp)
				if err != nil {
					return nil, fmt.Errorf("bronze: %s on %d pairs: %w", cfg.Name, n, err)
				}
				times = append(times, res.Makespan)
				if rep == 0 {
					for _, rec := range app.Grid.Records() {
						jobs += rec.Attempts
					}
				}
			}
			sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
			row.Times = append(row.Times, times[len(times)/2])
			row.Jobs = append(row.Jobs, jobs)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RegressionRow is one configuration's fitted line — the reproduction of
// the paper's Table 2.
type RegressionRow struct {
	Config string
	Line   metrics.Line
}

// Table2 fits the time-versus-size regression per configuration.
func Table2(rows []Row) ([]RegressionRow, error) {
	out := make([]RegressionRow, 0, len(rows))
	for _, r := range rows {
		l, err := metrics.Fit(r.Sizes, r.Times)
		if err != nil {
			return nil, fmt.Errorf("bronze: regression for %s: %w", r.Config, err)
		}
		out = append(out, RegressionRow{Config: r.Config, Line: l})
	}
	return out, nil
}

// Ratios reproduces the comparisons of Sec. 5.2–5.3.
type Ratios struct {
	// Speed-ups per size: DP vs NOP, SP+DP vs DP, JG vs NOP,
	// SP+DP+JG vs SP+DP, and the headline SP+DP+JG vs NOP.
	DPvsNOP, SPDPvsDP, JGvsNOP, FullvsSPDP, FullvsNOP []float64
	// Regression ratios (y-intercept, slope).
	DPvsNOPIntercept, DPvsNOPSlope       float64
	SPDPvsDPIntercept, SPDPvsDPSlope     float64
	JGvsNOPIntercept, JGvsNOPSlope       float64
	FullvsSPDPIntercept, FullvsSPDPSlope float64
}

// ComputeRatios derives the paper's analysis ratios from measured rows.
func ComputeRatios(rows []Row) (Ratios, error) {
	byName := make(map[string]Row, len(rows))
	for _, r := range rows {
		byName[r.Config] = r
	}
	regs, err := Table2(rows)
	if err != nil {
		return Ratios{}, err
	}
	lines := make(map[string]metrics.Line, len(regs))
	for _, r := range regs {
		lines[r.Config] = r.Line
	}
	speedups := func(ref, opt string) []float64 {
		a, b := byName[ref], byName[opt]
		out := make([]float64, len(a.Times))
		for i := range a.Times {
			out[i] = metrics.SpeedUp(a.Times[i], b.Times[i])
		}
		return out
	}
	return Ratios{
		DPvsNOP:    speedups("NOP", "DP"),
		SPDPvsDP:   speedups("DP", "SP+DP"),
		JGvsNOP:    speedups("NOP", "JG"),
		FullvsSPDP: speedups("SP+DP", "SP+DP+JG"),
		FullvsNOP:  speedups("NOP", "SP+DP+JG"),

		DPvsNOPIntercept: metrics.YInterceptRatio(lines["NOP"], lines["DP"]),
		DPvsNOPSlope:     metrics.SlopeRatio(lines["NOP"], lines["DP"]),

		SPDPvsDPIntercept: metrics.YInterceptRatio(lines["DP"], lines["SP+DP"]),
		SPDPvsDPSlope:     metrics.SlopeRatio(lines["DP"], lines["SP+DP"]),

		JGvsNOPIntercept: metrics.YInterceptRatio(lines["NOP"], lines["JG"]),
		JGvsNOPSlope:     metrics.SlopeRatio(lines["NOP"], lines["JG"]),

		FullvsSPDPIntercept: metrics.YInterceptRatio(lines["SP+DP"], lines["SP+DP+JG"]),
		FullvsSPDPSlope:     metrics.SlopeRatio(lines["SP+DP"], lines["SP+DP+JG"]),
	}, nil
}

// FormatTable1 renders measured rows next to the paper's values.
func FormatTable1(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s", "Config")
	if len(rows) > 0 {
		for _, n := range rows[0].Sizes {
			fmt.Fprintf(&b, " %14s", fmt.Sprintf("%d pairs (s)", n))
		}
	}
	fmt.Fprintf(&b, "   %s\n", "paper (12/66/126)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s", r.Config)
		for _, d := range r.Times {
			fmt.Fprintf(&b, " %14.0f", d.Seconds())
		}
		if p, ok := PaperTable1[r.Config]; ok {
			fmt.Fprintf(&b, "   %d / %d / %d", p[0], p[1], p[2])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable2 renders fitted lines next to the paper's values.
func FormatTable2(rows []RegressionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %14s %16s %8s   %s\n",
		"Config", "y-intercept (s)", "slope (s/pair)", "R²", "paper (y-int, slope)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14.0f %16.1f %8.3f", r.Config, r.Line.Intercept, r.Line.Slope, r.Line.R2)
		if p, ok := PaperTable2[r.Config]; ok {
			fmt.Fprintf(&b, "   %.0f, %.0f", p[0], p[1])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Figure10 produces the execution-time series (per configuration) over
// arbitrary sizes, for plotting time-versus-size curves.
func Figure10(sizes []int, p Params) ([]Row, error) {
	return Table1(sizes, p)
}

// FormatFigure10 renders the series as a gnuplot-friendly table of hours
// versus input size.
func FormatFigure10(rows []Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "# pairs")
	for _, r := range rows {
		fmt.Fprintf(&b, " %10s", r.Config)
	}
	b.WriteString("   (hours)\n")
	if len(rows) == 0 {
		return b.String()
	}
	for i, n := range rows[0].Sizes {
		fmt.Fprintf(&b, "%7d", n)
		for _, r := range rows {
			fmt.Fprintf(&b, " %10.2f", r.Times[i].Hours())
		}
		b.WriteByte('\n')
	}
	return b.String()
}
