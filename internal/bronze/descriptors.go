package bronze

// XML executable descriptors of the Bronze Standard codes, in the format
// of paper Fig. 8. crestLinesXML is the paper's published example; the
// others follow the same conventions (GFN access for images and
// transformations, plain parameters for options, URL-accessed sandboxes).
const (
	crestLinesXML = `<description>
<executable name="CrestLines.pl">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="CrestLines.pl"/>
<input name="floating_image" option="-im1"><access type="GFN"/></input>
<input name="reference_image" option="-im2"><access type="GFN"/></input>
<input name="scale" option="-s"/>
<output name="crest_reference" option="-c1"><access type="GFN"/></output>
<output name="crest_floating" option="-c2"><access type="GFN"/></output>
<sandbox name="convert8bits"><access type="URL"><path value="http://colors.unice.fr"/></access><value value="Convert8bits.pl"/></sandbox>
<sandbox name="copy"><access type="URL"><path value="http://colors.unice.fr"/></access><value value="copy"/></sandbox>
<sandbox name="cmatch"><access type="URL"><path value="http://colors.unice.fr"/></access><value value="cmatch"/></sandbox>
</executable>
</description>`

	crestMatchXML = `<description>
<executable name="CrestMatch">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="cmatch"/>
<input name="crest_reference" option="-c1"><access type="GFN"/></input>
<input name="crest_floating" option="-c2"><access type="GFN"/></input>
<input name="reference_image" option="-im2"><access type="GFN"/></input>
<input name="floating_image" option="-im1"><access type="GFN"/></input>
<output name="transfo" option="-o"><access type="GFN"/></output>
</executable>
</description>`

	baladinXML = `<description>
<executable name="Baladin">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="baladin"/>
<input name="reference_image" option="-ref"><access type="GFN"/></input>
<input name="floating_image" option="-flo"><access type="GFN"/></input>
<input name="init_transfo" option="-init"><access type="GFN"/></input>
<output name="transfo" option="-res"><access type="GFN"/></output>
</executable>
</description>`

	yasminaXML = `<description>
<executable name="Yasmina">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="yasmina"/>
<input name="reference_image" option="-ref"><access type="GFN"/></input>
<input name="floating_image" option="-flo"><access type="GFN"/></input>
<input name="init_transfo" option="-init"><access type="GFN"/></input>
<output name="transfo" option="-res"><access type="GFN"/></output>
</executable>
</description>`

	pfMatchICPXML = `<description>
<executable name="PFMatchICP">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="pfmatch"/>
<input name="reference_image" option="-ref"><access type="GFN"/></input>
<input name="floating_image" option="-flo"><access type="GFN"/></input>
<input name="init_transfo" option="-init"><access type="GFN"/></input>
<output name="pairings" option="-o"><access type="GFN"/></output>
</executable>
</description>`

	pfRegisterXML = `<description>
<executable name="PFRegister">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="pfregister"/>
<input name="pairings" option="-i"><access type="GFN"/></input>
<output name="transfo" option="-res"><access type="GFN"/></output>
</executable>
</description>`

	multiTransfoTestXML = `<description>
<executable name="MultiTransfoTest">
<access type="URL"><path value="http://colors.unice.fr"/></access>
<value value="mtt"/>
<input name="transfo_crestmatch" option="-t1"><access type="GFN"/></input>
<input name="transfo_baladin" option="-t2"><access type="GFN"/></input>
<input name="transfo_yasmina" option="-t3"><access type="GFN"/></input>
<input name="transfo_pfregister" option="-t4"><access type="GFN"/></input>
<input name="method" option="-m"/>
<output name="accuracy_translation" option="-ot"><access type="GFN"/></output>
<output name="accuracy_rotation" option="-or"><access type="GFN"/></output>
</executable>
</description>`
)
