package bronze

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// smallParams shrinks the experiment for unit tests.
func smallParams() Params {
	p := DefaultParams()
	p.Seed = 42
	return p
}

func TestWorkflowShape(t *testing.T) {
	app, err := Build(3, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	w := app.WF
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	// nW = 5 services on the critical path (Sec. 5.1).
	nW, err := w.CriticalPathLength()
	if err != nil {
		t.Fatal(err)
	}
	if nW != 5 {
		t.Errorf("nW = %d, want 5 (crestLines→crestMatch→PFMatchICP→PFRegister→MultiTransfoTest)", nW)
	}
	if len(w.Sources()) != 3 {
		t.Errorf("sources = %d, want referenceImage, floatingImage, methodToTest", len(w.Sources()))
	}
	if len(w.Sinks()) != 2 {
		t.Errorf("sinks = %d, want accuracy_translation and accuracy_rotation", len(w.Sinks()))
	}
	mtt, ok := w.Proc("MultiTransfoTest")
	if !ok || !mtt.Synchronization {
		t.Error("MultiTransfoTest must be a synchronization processor")
	}
	if w.HasCycle() {
		t.Error("bronze workflow must be acyclic")
	}
}

func TestSixJobsPerPair(t *testing.T) {
	// "Each of the input image pair was registered with the 4 algorithms
	// and leads to 6 job submissions" (Sec. 4.4), plus one synchronization
	// job for MultiTransfoTest.
	counts, err := mustBuild(t, 5).WF.ExpectedCounts(map[string]int{
		"referenceImage": 5, "floatingImage": 5, "methodToTest": 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	perPair := 0
	for _, name := range []string{"crestLines", "crestMatch", "Baladin", "Yasmina", "PFMatchICP", "PFRegister"} {
		perPair += counts[name]
	}
	if perPair != 6*5 {
		t.Errorf("jobs for 5 pairs = %d, want 30 (6 per pair)", perPair)
	}
	if counts["MultiTransfoTest"] != 1 {
		t.Errorf("MultiTransfoTest invocations = %d, want 1", counts["MultiTransfoTest"])
	}
}

func mustBuild(t *testing.T, n int) *App {
	t.Helper()
	app, err := Build(n, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func TestEndToEndRun(t *testing.T) {
	res, app, err := Run(4, core.Options{DataParallelism: true, ServiceParallelism: true}, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	// 6 jobs per pair + 1 MultiTransfoTest job.
	if got := len(app.Grid.Records()); got != 4*6+1 {
		t.Errorf("grid jobs = %d, want 25", got)
	}
	// Both sinks receive exactly one accuracy value.
	for _, sink := range []string{"accuracy_translation", "accuracy_rotation"} {
		if n := len(res.Outputs[sink]); n != 1 {
			t.Errorf("sink %s has %d items, want 1", sink, n)
		}
	}
	// Every registration result flows through the synchronization barrier:
	// MultiTransfoTest starts only after the last registration finishes.
	var lastReg, mttStart time.Duration
	for _, inv := range res.Trace.Invocations {
		if inv.Processor == "MultiTransfoTest" {
			mttStart = time.Duration(inv.Started)
			continue
		}
		if time.Duration(inv.Finished) > lastReg {
			lastReg = time.Duration(inv.Finished)
		}
	}
	if mttStart < lastReg {
		t.Errorf("MultiTransfoTest started at %v before last registration at %v", mttStart, lastReg)
	}
}

func TestGroupingPairsTheRightChains(t *testing.T) {
	app := mustBuild(t, 2)
	grouped, err := core.AutoGroup(app.WF)
	if err != nil {
		t.Fatal(err)
	}
	// The paper groups crestLines+crestMatch and PFMatchICP+PFRegister.
	if _, ok := grouped.Proc("crestLines+crestMatch"); !ok {
		var names []string
		for _, p := range grouped.Processors() {
			names = append(names, p.Name)
		}
		t.Fatalf("crestLines+crestMatch not grouped; processors: %v", names)
	}
	if _, ok := grouped.Proc("PFMatchICP+PFRegister"); !ok {
		t.Fatal("PFMatchICP+PFRegister not grouped")
	}
	// Baladin and Yasmina stay independent.
	for _, name := range []string{"Baladin", "Yasmina", "MultiTransfoTest"} {
		if _, ok := grouped.Proc(name); !ok {
			t.Errorf("%s disappeared during grouping", name)
		}
	}
}

func TestGroupingReducesSubmissions(t *testing.T) {
	opts := core.Options{DataParallelism: true, ServiceParallelism: true}
	_, plain, err := Run(3, opts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	opts.JobGrouping = true
	_, grouped, err := Run(3, opts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// 6 jobs/pair → 4 jobs/pair.
	if p, g := len(plain.Grid.Records()), len(grouped.Grid.Records()); g >= p || g != 3*4+1 {
		t.Errorf("jobs plain=%d grouped=%d, want grouped = 13", p, g)
	}
}

func TestConfigurations(t *testing.T) {
	cfgs := Configurations()
	if len(cfgs) != 6 {
		t.Fatalf("configurations = %d, want 6", len(cfgs))
	}
	wantOrder := []string{"NOP", "JG", "SP", "DP", "SP+DP", "SP+DP+JG"}
	for i, c := range cfgs {
		if c.Name != wantOrder[i] {
			t.Errorf("configuration %d = %s, want %s", i, c.Name, wantOrder[i])
		}
	}
	if cfgs[0].Opts != (core.Options{}) {
		t.Error("NOP has optimizations enabled")
	}
}

// TestTable1Shape is the headline reproduction check on a reduced input
// scale: the optimization ordering of the paper's Table 1 holds.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	rows, err := Table1([]int{12, 24}, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]time.Duration{}
	for _, r := range rows {
		byName[r.Config] = r.Times
	}
	for i := range []int{0, 1} {
		if !(byName["SP+DP"][i] < byName["DP"][i] &&
			byName["DP"][i] < byName["SP"][i] &&
			byName["SP"][i] < byName["NOP"][i] &&
			byName["JG"][i] < byName["NOP"][i]) {
			t.Errorf("size %d: optimization ordering violated: %v", i, byName)
		}
		// Job grouping's gain at small sizes is within noise (the paper's
		// own JG speed-up decays from 1.43 to 1.06); require it not to hurt
		// materially and to win at the larger size.
		if byName["SP+DP+JG"][i] > byName["SP+DP"][i]*11/10 {
			t.Errorf("size %d: JG slowed SP+DP down by more than 10%%: %v vs %v",
				i, byName["SP+DP+JG"][i], byName["SP+DP"][i])
		}
	}
	last := len(byName["SP+DP"]) - 1
	if byName["SP+DP+JG"][last] >= byName["SP+DP"][last] {
		t.Errorf("JG gave no speed-up at 24 pairs: %v vs %v",
			byName["SP+DP+JG"][last], byName["SP+DP"][last])
	}
}

func TestTable2AndRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	rows, err := Table1([]int{6, 12, 24}, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	regs, err := Table2(rows)
	if err != nil {
		t.Fatal(err)
	}
	lines := map[string]float64{}
	for _, r := range regs {
		lines[r.Config] = r.Line.Slope
	}
	// Data parallelism's defining effect: it improves the slope (data
	// scalability) by a large factor (Sec. 5.2).
	if lines["NOP"] < 3*lines["DP"] {
		t.Errorf("DP slope ratio too small: NOP=%v DP=%v", lines["NOP"], lines["DP"])
	}
	ratios, err := ComputeRatios(rows)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range ratios.FullvsNOP {
		if s <= 1 {
			t.Errorf("SP+DP+JG vs NOP speed-up[%d] = %v, want > 1", i, s)
		}
	}
}

func TestFormatters(t *testing.T) {
	rows := []Row{{
		Config: "NOP",
		Sizes:  []int{12, 66, 126},
		Times:  []time.Duration{32855 * time.Second, 76354 * time.Second, 133493 * time.Second},
	}}
	t1 := FormatTable1(rows)
	if !strings.Contains(t1, "NOP") || !strings.Contains(t1, "32855") || !strings.Contains(t1, "133493") {
		t.Errorf("FormatTable1:\n%s", t1)
	}
	regs, err := Table2(rows)
	if err != nil {
		t.Fatal(err)
	}
	t2 := FormatTable2(regs)
	if !strings.Contains(t2, "20784") == false && !strings.Contains(t2, "NOP") {
		t.Errorf("FormatTable2:\n%s", t2)
	}
	f10 := FormatFigure10(rows)
	if !strings.Contains(f10, "9.13") { // 32855 s ≈ 9.13 h
		t.Errorf("FormatFigure10:\n%s", f10)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(0, smallParams()); err == nil {
		t.Error("zero pairs accepted")
	}
}

func TestImageDatabaseRegistered(t *testing.T) {
	app := mustBuild(t, 3)
	for _, vals := range [][]string{app.Inputs["referenceImage"], app.Inputs["floatingImage"]} {
		if len(vals) != 3 {
			t.Fatalf("inputs = %v", vals)
		}
		for _, gfn := range vals {
			size, ok := app.Grid.Catalog().Lookup(gfn)
			if !ok || size != ImageSizeMB {
				t.Errorf("image %s not registered at %v MB", gfn, ImageSizeMB)
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	opts := core.Options{DataParallelism: true, ServiceParallelism: true}
	r1, _, err := Run(3, opts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Run(3, opts, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same-seed runs differ: %v vs %v", r1.Makespan, r2.Makespan)
	}
	p2 := smallParams()
	p2.Seed = 43
	r3, _, err := Run(3, opts, p2)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Makespan == r1.Makespan {
		t.Fatal("different seeds produced identical makespans")
	}
}

func TestWorkflowUsesDescriptors(t *testing.T) {
	// The crestLines job command is composed from the published Fig. 8
	// descriptor, including the constant scale parameter.
	res, _, err := Run(1, core.Options{DataParallelism: true, ServiceParallelism: true}, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	jobs := res.Trace.Jobs()
	var found bool
	for _, j := range jobs {
		if strings.HasPrefix(j.Spec.Command, "CrestLines.pl ") {
			found = true
			for _, frag := range []string{"-im1 gfn://lacassagne/flo000", "-im2 gfn://lacassagne/ref000", "-s 1.0", "-c1 ", "-c2 "} {
				if !strings.Contains(j.Spec.Command, frag) {
					t.Errorf("crestLines command missing %q: %q", frag, j.Spec.Command)
				}
			}
		}
	}
	if !found {
		t.Error("no crestLines job found")
	}
}

func TestSyncReceivesAllTransforms(t *testing.T) {
	// nPairs results per algorithm reach MultiTransfoTest.
	res, _, err := Run(4, core.Options{DataParallelism: true, ServiceParallelism: true}, smallParams())
	if err != nil {
		t.Fatal(err)
	}
	items := res.Items["accuracy_translation"]
	if len(items) != 1 {
		t.Fatal("missing accuracy item")
	}
	srcs := items[0].History.Sources()
	// The accuracy derives from every image of every pair.
	if len(srcs) < 8 {
		t.Errorf("accuracy derives from %d sources, want ≥ 8 (4 pairs × 2 images): %v", len(srcs), srcs)
	}
}

// TestExperimentReproducible guards the headline property of the harness:
// the entire Table 1 experiment is bit-for-bit reproducible per seed.
func TestExperimentReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment test")
	}
	run := func() []time.Duration {
		rows, err := Table1([]int{8}, smallParams())
		if err != nil {
			t.Fatal(err)
		}
		var out []time.Duration
		for _, r := range rows {
			out = append(out, r.Times...)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("row %d differs across identical runs: %v vs %v", i, a[i], b[i])
		}
	}
}
