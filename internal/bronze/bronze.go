// Package bronze implements the paper's evaluation application: the
// Bronze Standard medical-image registration workflow (Sec. 4.2, Fig. 9).
//
// The application registers pairs of brain MRI images with four rigid
// registration algorithms (crestMatch, Baladin, Yasmina,
// PFMatchICP/PFRegister), after a crestLines pre-processing step, and
// statistically assesses the registration accuracy with the
// MultiTransfoTest synchronization processor. Each image pair leads to 6
// job submissions; the critical path counts nW = 5 services.
//
// The image database is synthetic: the paper's images are 256×256×60
// 16-bit MRIs of 7.8 MB from Centre Antoine Lacassagne, and only their
// size (transfer time) and the per-algorithm compute times are observable
// by the scheduler, so files are modelled as registered GFNs of the right
// size and codes as calibrated runtime distributions.
package bronze

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/descriptor"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// ImageSizeMB is the size of one MRI volume (256×256×60 voxels, 16 bits).
const ImageSizeMB = 7.8

// Runtime means of the registration codes on a reference worker node.
// Calibrated so the unoptimized (NOP) execution of 126 image pairs lands
// near the paper's ≈37 h on the default grid model.
var runtimeMeans = map[string]time.Duration{
	"crestLines":       72 * time.Second,
	"crestMatch":       64 * time.Second,
	"Baladin":          336 * time.Second,
	"Yasmina":          240 * time.Second,
	"PFMatchICP":       208 * time.Second,
	"PFRegister":       32 * time.Second,
	"MultiTransfoTest": 96 * time.Second,
}

// runtimeJitter is the relative standard deviation of code runtimes: the
// input images are homogeneous (same dimensions), so compute times vary
// only mildly; the large variability comes from the grid, not the codes.
const runtimeJitter = 0.08

// transfoSizeMB is the size of a rigid transformation result (6
// parameters plus metadata) and of crest-line files.
const (
	transfoSizeMB = 0.05
	crestSizeMB   = 1.2
)

// Params configures a Bronze Standard build.
type Params struct {
	// Grid is the infrastructure model. Zero value: grid.DefaultConfig.
	Grid grid.Config
	// Seed drives runtime jitter and, unless the grid config sets its own,
	// the grid.
	Seed uint64
}

// DefaultParams returns the calibrated experiment setup.
func DefaultParams() Params {
	return Params{Grid: DefaultGrid(), Seed: 1}
}

// DefaultGrid returns the production-grid model used by the experiments:
// the package default tuned to the contention regime the paper describes
// (high, variable overhead; bursts exceeding free capacity).
func DefaultGrid() grid.Config {
	cfg := grid.DefaultConfig()
	return cfg
}

// App is a ready-to-run Bronze Standard instance.
type App struct {
	Eng    *sim.Engine
	Grid   *grid.Grid
	WF     *workflow.Workflow
	Inputs map[string][]string
	NPairs int
}

// Build assembles the engine, grid, image database, services, and
// workflow for nPairs image pairs.
func Build(nPairs int, p Params) (*App, error) {
	if nPairs <= 0 {
		return nil, fmt.Errorf("bronze: need at least one image pair")
	}
	if len(p.Grid.Clusters) == 0 {
		p.Grid = DefaultGrid()
	}
	if p.Grid.Seed == 0 {
		// Derive the infrastructure stream from the experiment seed.
		p.Grid.Seed = p.Seed ^ 0x5eed
	}
	eng := sim.NewEngine()
	g := grid.New(eng, p.Grid)

	// The synthetic image database: nPairs (reference, floating) volumes.
	refs := make([]string, nPairs)
	flos := make([]string, nPairs)
	for i := 0; i < nPairs; i++ {
		refs[i] = fmt.Sprintf("gfn://lacassagne/ref%03d", i)
		flos[i] = fmt.Sprintf("gfn://lacassagne/flo%03d", i)
		g.Catalog().Register(refs[i], ImageSizeMB)
		g.Catalog().Register(flos[i], ImageSizeMB)
	}

	wf, err := buildWorkflow(g, rng.New(p.Seed^0xb202e))
	if err != nil {
		return nil, err
	}
	return &App{
		Eng:  eng,
		Grid: g,
		WF:   wf,
		Inputs: map[string][]string{
			"referenceImage": refs,
			"floatingImage":  flos,
			"methodToTest":   {"Baladin"},
		},
		NPairs: nPairs,
	}, nil
}

// model builds a jittered runtime model for the named code.
func model(name string, r *rng.Source) services.RuntimeModel {
	mean := runtimeMeans[name]
	src := r.Fork(hash(name))
	return func(services.Request) time.Duration {
		return time.Duration(src.LogNormalMeanSD(float64(mean), runtimeJitter*float64(mean)))
	}
}

func hash(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// buildWorkflow constructs the Fig. 9 graph.
func buildWorkflow(g *grid.Grid, r *rng.Source) (*workflow.Workflow, error) {
	wrap := func(xml, name string, outSizes map[string]float64) (*services.Wrapper, error) {
		d, err := descriptor.Parse([]byte(xml))
		if err != nil {
			return nil, fmt.Errorf("bronze: %s: %w", name, err)
		}
		return services.NewWrapper(g, d, model(name, r), outSizes)
	}

	crestLines, err := wrap(crestLinesXML, "crestLines",
		map[string]float64{"crest_reference": crestSizeMB, "crest_floating": crestSizeMB})
	if err != nil {
		return nil, err
	}
	crestMatch, err := wrap(crestMatchXML, "crestMatch", map[string]float64{"transfo": transfoSizeMB})
	if err != nil {
		return nil, err
	}
	baladin, err := wrap(baladinXML, "Baladin", map[string]float64{"transfo": transfoSizeMB})
	if err != nil {
		return nil, err
	}
	yasmina, err := wrap(yasminaXML, "Yasmina", map[string]float64{"transfo": transfoSizeMB})
	if err != nil {
		return nil, err
	}
	pfMatch, err := wrap(pfMatchICPXML, "PFMatchICP", map[string]float64{"pairings": transfoSizeMB})
	if err != nil {
		return nil, err
	}
	pfRegister, err := wrap(pfRegisterXML, "PFRegister", map[string]float64{"transfo": transfoSizeMB})
	if err != nil {
		return nil, err
	}
	mtt, err := wrap(multiTransfoTestXML, "MultiTransfoTest",
		map[string]float64{"accuracy_translation": 0.01, "accuracy_rotation": 0.01})
	if err != nil {
		return nil, err
	}

	w := workflow.New("bronze-standard")
	w.AddSource("referenceImage")
	w.AddSource("floatingImage")
	w.AddSource("methodToTest")

	cl := w.AddService("crestLines", crestLines,
		[]string{"floating_image", "reference_image"},
		[]string{"crest_reference", "crest_floating"})
	cl.Constants = map[string]string{"scale": "1.0"}

	w.AddService("crestMatch", crestMatch,
		[]string{"crest_reference", "crest_floating", "reference_image", "floating_image"},
		[]string{"transfo"})

	w.AddService("Baladin", baladin,
		[]string{"reference_image", "floating_image", "init_transfo"},
		[]string{"transfo"})
	w.AddService("Yasmina", yasmina,
		[]string{"reference_image", "floating_image", "init_transfo"},
		[]string{"transfo"})
	w.AddService("PFMatchICP", pfMatch,
		[]string{"reference_image", "floating_image", "init_transfo"},
		[]string{"pairings"})
	w.AddService("PFRegister", pfRegister,
		[]string{"pairings"},
		[]string{"transfo"})

	sync := w.AddService("MultiTransfoTest", mtt,
		[]string{"transfo_crestmatch", "transfo_baladin", "transfo_yasmina", "transfo_pfregister", "method"},
		[]string{"accuracy_translation", "accuracy_rotation"})
	sync.Synchronization = true

	w.AddSink("accuracy_translation")
	w.AddSink("accuracy_rotation")

	// Fig. 9 data links.
	w.Connect("referenceImage", workflow.SourcePort, "crestLines", "reference_image")
	w.Connect("floatingImage", workflow.SourcePort, "crestLines", "floating_image")

	w.Connect("crestLines", "crest_reference", "crestMatch", "crest_reference")
	w.Connect("crestLines", "crest_floating", "crestMatch", "crest_floating")
	w.Connect("referenceImage", workflow.SourcePort, "crestMatch", "reference_image")
	w.Connect("floatingImage", workflow.SourcePort, "crestMatch", "floating_image")

	for _, algo := range []string{"Baladin", "Yasmina", "PFMatchICP"} {
		w.Connect("referenceImage", workflow.SourcePort, algo, "reference_image")
		w.Connect("floatingImage", workflow.SourcePort, algo, "floating_image")
		w.Connect("crestMatch", "transfo", algo, "init_transfo")
	}
	w.Connect("PFMatchICP", "pairings", "PFRegister", "pairings")

	w.Connect("crestMatch", "transfo", "MultiTransfoTest", "transfo_crestmatch")
	w.Connect("Baladin", "transfo", "MultiTransfoTest", "transfo_baladin")
	w.Connect("Yasmina", "transfo", "MultiTransfoTest", "transfo_yasmina")
	w.Connect("PFRegister", "transfo", "MultiTransfoTest", "transfo_pfregister")
	w.Connect("methodToTest", workflow.SourcePort, "MultiTransfoTest", "method")

	w.Connect("MultiTransfoTest", "accuracy_translation", "accuracy_translation", workflow.SinkPort)
	w.Connect("MultiTransfoTest", "accuracy_rotation", "accuracy_rotation", workflow.SinkPort)

	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// Run builds and executes the application under the given options,
// returning the result and the built app (for grid statistics).
func Run(nPairs int, opts core.Options, p Params) (*core.Result, *App, error) {
	app, err := Build(nPairs, p)
	if err != nil {
		return nil, nil, err
	}
	e, err := core.New(app.Eng, app.WF, opts)
	if err != nil {
		return nil, nil, err
	}
	res, err := e.Run(app.Inputs)
	if err != nil {
		return nil, nil, err
	}
	return res, app, nil
}
