// Package arena provides a chunked allocator for objects that live until
// the end of a run — trace entries, provenance records, invocation input
// sets. Handing them out from chunks keeps per-event allocation off the
// enactor's hot path; nothing is ever freed individually, the whole arena
// is released when its owner is dropped.
package arena

const defaultChunk = 256

// Chunked hands out values backed by chunked arrays. The zero value is
// ready to use. Not safe for concurrent use.
type Chunked[T any] struct {
	buf []T
}

// New returns a pointer to a fresh zero value.
func (a *Chunked[T]) New() *T {
	if len(a.buf) == 0 {
		a.buf = make([]T, defaultChunk)
	}
	v := &a.buf[0]
	a.buf = a.buf[1:]
	return v
}

// Slice returns a full-capacity slice of n zero values. Appending to the
// result reallocates rather than clobbering arena neighbours. Slice(0)
// returns nil.
func (a *Chunked[T]) Slice(n int) []T {
	if n == 0 {
		return nil
	}
	if len(a.buf) < n {
		size := defaultChunk
		if n > size {
			size = n
		}
		a.buf = make([]T, size)
	}
	out := a.buf[:n:n]
	a.buf = a.buf[n:]
	return out
}
