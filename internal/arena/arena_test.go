package arena

import "testing"

func TestNewDistinctAndZero(t *testing.T) {
	var a Chunked[int]
	seen := make(map[*int]bool)
	for i := 0; i < 1000; i++ {
		p := a.New()
		if *p != 0 {
			t.Fatalf("New() returned non-zero value %d", *p)
		}
		if seen[p] {
			t.Fatal("New() returned the same pointer twice")
		}
		seen[p] = true
		*p = i
	}
}

func TestSliceIsolation(t *testing.T) {
	var a Chunked[int]
	s1 := a.Slice(3)
	s2 := a.Slice(3)
	for i := range s1 {
		s1[i] = 100 + i
	}
	for i, v := range s2 {
		if v != 0 {
			t.Fatalf("s2[%d] = %d, want 0", i, v)
		}
	}
	// Appending past capacity must not clobber the neighbouring slice.
	s1 = append(s1, 999)
	if s2[0] != 0 {
		t.Fatalf("append to s1 clobbered s2: %v", s2)
	}
	if a.Slice(0) != nil {
		t.Fatal("Slice(0) != nil")
	}
}

func TestSliceLargerThanChunk(t *testing.T) {
	var a Chunked[byte]
	s := a.Slice(10 * defaultChunk)
	if len(s) != 10*defaultChunk {
		t.Fatalf("len = %d", len(s))
	}
}
