// Package provenance tracks the history of every data item flowing through
// a workflow execution.
//
// Under data and service parallelism, items are computed out of order and
// may overtake one another, which the paper identifies as a causality
// problem for dot-product iteration strategies (Sec. 4.1): results must be
// paired by origin, not by completion order. Each item therefore carries a
// history tree recording the complete chain of processings that produced
// it, and an index vector locating it in the iteration space of its
// sources. Index vectors drive dot-product matching; history trees
// unambiguously identify data for traces and debugging.
package provenance

import (
	"fmt"
	"strings"

	"repro/internal/arena"
)

// Item is a data token: a value plus its identity in the iteration space
// and its derivation history.
type Item struct {
	// ID is unique within a Tracker (one workflow execution).
	ID int
	// Value is the payload: a GFN, a URL, or a literal parameter.
	Value string
	// Index is the item's index vector: the coordinates of the item in the
	// iteration space spanned by the workflow's data sources. A source item
	// has a one-dimensional index; a cross product concatenates dimensions.
	Index []int
	// History is the root of the item's history tree.
	History *Node
}

// Node is one derivation step in a history tree: which processor produced
// the item, on which port, from which input items.
type Node struct {
	// Processor that produced the data ("" only for constants).
	Processor string
	// Port the data was emitted on (empty for single-output sources).
	Port string
	// Index vector of the produced item.
	Index []int
	// Inputs are the histories of the items consumed to produce this one.
	// Empty for source items.
	Inputs []*Node
}

// Tracker mints items with execution-unique IDs. The zero value is ready
// to use. Items and history nodes live until the end of the execution, so
// the tracker hands them out from chunked arenas rather than allocating
// each one individually — one execution mints one item per data token, and
// the arena keeps that off the enactor's per-event allocation budget.
type Tracker struct {
	nextID   int
	items    arena.Chunked[Item]
	nodes    arena.Chunked[Node]
	nodePtrs arena.Chunked[*Node]
}

// NewTracker returns a fresh tracker.
func NewTracker() *Tracker { return &Tracker{} }

// Minted returns how many items have been created.
func (t *Tracker) Minted() int { return t.nextID }

// Source mints an item produced by a data source: index vector [idx].
func (t *Tracker) Source(source string, idx int, value string) *Item {
	index := []int{idx}
	n := t.nodes.New()
	n.Processor = source
	n.Index = index
	return t.mint(value, index, n)
}

// Constant mints an index-free item (a workflow constant). Constants match
// any index in a dot product.
func (t *Tracker) Constant(value string) *Item {
	return t.mint(value, nil, t.nodes.New())
}

// Derive mints an item produced by processor on port with the given index
// vector, consuming the given inputs.
func (t *Tracker) Derive(processor, port, value string, index []int, inputs ...*Item) *Item {
	nodes := t.nodePtrs.Slice(len(inputs))
	for i, in := range inputs {
		nodes[i] = in.History
	}
	n := t.nodes.New()
	n.Processor = processor
	n.Port = port
	n.Index = index
	n.Inputs = nodes
	return t.mint(value, index, n)
}

func (t *Tracker) mint(value string, index []int, h *Node) *Item {
	it := t.items.New()
	it.ID = t.nextID
	it.Value = value
	it.Index = index
	it.History = h
	t.nextID++
	return it
}

// Key returns the canonical string form of an index vector, used as the
// dot-product matching key. Constants (nil index) return "*": they align
// with every index.
func Key(index []int) string {
	if index == nil {
		return "*"
	}
	if len(index) == 0 {
		return "()"
	}
	var b strings.Builder
	for i, v := range index {
		if i > 0 {
			b.WriteByte('.')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// Key returns the item's dot-product matching key.
func (it *Item) Key() string { return Key(it.Index) }

// String renders an item compactly: value plus index.
func (it *Item) String() string {
	return fmt.Sprintf("%s[%s]", it.Value, it.Key())
}

// Render returns the history tree in a functional notation, e.g.
//
//	crestMatch[0]( crestLines[0]( ref[0], flo[0] ), ref[0] )
//
// which identifies the data unambiguously (Sec. 4.1).
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	name := n.Processor
	if name == "" {
		name = "const"
	}
	b.WriteString(name)
	if n.Port != "" {
		b.WriteByte(':')
		b.WriteString(n.Port)
	}
	b.WriteByte('[')
	b.WriteString(Key(n.Index))
	b.WriteByte(']')
	if len(n.Inputs) == 0 {
		return
	}
	b.WriteString("( ")
	for i, in := range n.Inputs {
		if i > 0 {
			b.WriteString(", ")
		}
		in.render(b)
	}
	b.WriteString(" )")
}

// Depth returns the height of the history tree (a source item has depth 1).
func (n *Node) Depth() int {
	max := 0
	for _, in := range n.Inputs {
		if d := in.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// Sources returns the distinct (processor, index-key) source leaves this
// item ultimately derives from, in first-visit order.
func (n *Node) Sources() []string {
	var out []string
	seen := make(map[string]bool)
	var walk func(*Node)
	walk = func(m *Node) {
		if len(m.Inputs) == 0 {
			key := m.Processor + "[" + Key(m.Index) + "]"
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
			return
		}
		for _, in := range m.Inputs {
			walk(in)
		}
	}
	walk(n)
	return out
}

// SameIndex reports whether two index vectors are identical. A nil vector
// (constant) matches anything.
func SameIndex(a, b []int) bool {
	if a == nil || b == nil {
		return true
	}
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
