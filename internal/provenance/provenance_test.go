package provenance

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSourceItem(t *testing.T) {
	tr := NewTracker()
	it := tr.Source("referenceImage", 3, "gfn://ref3")
	if it.Value != "gfn://ref3" {
		t.Errorf("Value = %q", it.Value)
	}
	if len(it.Index) != 1 || it.Index[0] != 3 {
		t.Errorf("Index = %v, want [3]", it.Index)
	}
	if it.Key() != "3" {
		t.Errorf("Key = %q, want \"3\"", it.Key())
	}
	if it.History == nil || it.History.Processor != "referenceImage" {
		t.Errorf("history = %+v", it.History)
	}
	if it.History.Depth() != 1 {
		t.Errorf("source depth = %d, want 1", it.History.Depth())
	}
}

func TestIDsUnique(t *testing.T) {
	tr := NewTracker()
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		it := tr.Source("s", i, "v")
		if seen[it.ID] {
			t.Fatalf("duplicate ID %d", it.ID)
		}
		seen[it.ID] = true
	}
	if tr.Minted() != 100 {
		t.Fatalf("Minted = %d", tr.Minted())
	}
}

func TestTrackersIndependent(t *testing.T) {
	a, b := NewTracker(), NewTracker()
	ia := a.Source("s", 0, "x")
	ib := b.Source("s", 0, "x")
	if ia.ID != ib.ID {
		t.Fatalf("fresh trackers disagree on first ID: %d vs %d", ia.ID, ib.ID)
	}
}

func TestDerive(t *testing.T) {
	tr := NewTracker()
	ref := tr.Source("ref", 0, "gfn://r0")
	flo := tr.Source("flo", 0, "gfn://f0")
	out := tr.Derive("crestLines", "c1", "gfn://crest0", []int{0}, ref, flo)
	if out.Key() != "0" {
		t.Errorf("Key = %q", out.Key())
	}
	h := out.History
	if h.Processor != "crestLines" || h.Port != "c1" || len(h.Inputs) != 2 {
		t.Errorf("history = %+v", h)
	}
	if h.Depth() != 2 {
		t.Errorf("depth = %d, want 2", h.Depth())
	}
}

func TestRender(t *testing.T) {
	tr := NewTracker()
	ref := tr.Source("ref", 1, "r")
	flo := tr.Source("flo", 1, "f")
	crest := tr.Derive("crestLines", "c1", "c", []int{1}, ref, flo)
	match := tr.Derive("crestMatch", "t", "m", []int{1}, crest, ref)
	got := match.History.Render()
	want := "crestMatch:t[1]( crestLines:c1[1]( ref[1], flo[1] ), ref[1] )"
	if got != want {
		t.Errorf("Render =\n  %s\nwant\n  %s", got, want)
	}
}

func TestRenderConstant(t *testing.T) {
	tr := NewTracker()
	c := tr.Constant("-s 0.5")
	if got := c.History.Render(); got != "const[*]" {
		t.Errorf("constant render = %q", got)
	}
	if c.Key() != "*" {
		t.Errorf("constant key = %q", c.Key())
	}
}

func TestSources(t *testing.T) {
	tr := NewTracker()
	ref := tr.Source("ref", 2, "r")
	flo := tr.Source("flo", 2, "f")
	crest := tr.Derive("crestLines", "c1", "c", []int{2}, ref, flo)
	match := tr.Derive("crestMatch", "t", "m", []int{2}, crest, ref)
	got := match.History.Sources()
	if len(got) != 2 || got[0] != "ref[2]" || got[1] != "flo[2]" {
		t.Errorf("Sources = %v, want [ref[2] flo[2]] (deduplicated, first-visit order)", got)
	}
}

func TestKeyForms(t *testing.T) {
	cases := []struct {
		idx  []int
		want string
	}{
		{nil, "*"},
		{[]int{}, "()"},
		{[]int{0}, "0"},
		{[]int{1, 2}, "1.2"},
		{[]int{10, 0, 3}, "10.0.3"},
	}
	for _, c := range cases {
		if got := Key(c.idx); got != c.want {
			t.Errorf("Key(%v) = %q, want %q", c.idx, got, c.want)
		}
	}
}

func TestItemString(t *testing.T) {
	tr := NewTracker()
	it := tr.Source("s", 4, "gfn://x")
	if got := it.String(); got != "gfn://x[4]" {
		t.Errorf("String = %q", got)
	}
}

func TestSameIndex(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 3}, false},
		{[]int{1}, []int{1, 2}, false},
		{nil, []int{5, 6}, true}, // constant matches anything
		{[]int{5}, nil, true},
		{nil, nil, true},
		{[]int{}, []int{}, true},
	}
	for _, c := range cases {
		if got := SameIndex(c.a, c.b); got != c.want {
			t.Errorf("SameIndex(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDeepChainDepth(t *testing.T) {
	tr := NewTracker()
	cur := tr.Source("s", 0, "v0")
	for i := 1; i <= 10; i++ {
		cur = tr.Derive("p", "out", "v", []int{0}, cur)
	}
	if d := cur.History.Depth(); d != 11 {
		t.Fatalf("depth = %d, want 11", d)
	}
}

// Property: Key is injective over small index vectors (distinct vectors
// yield distinct keys).
func TestQuickKeyInjective(t *testing.T) {
	f := func(a, b []uint8) bool {
		ai := make([]int, len(a))
		bi := make([]int, len(b))
		for i, v := range a {
			ai[i] = int(v)
		}
		for i, v := range b {
			bi[i] = int(v)
		}
		// nil/empty ambiguity is handled by dedicated forms; skip nil here.
		if len(ai) == 0 || len(bi) == 0 {
			return true
		}
		equal := len(ai) == len(bi)
		if equal {
			for i := range ai {
				if ai[i] != bi[i] {
					equal = false
					break
				}
			}
		}
		return (Key(ai) == Key(bi)) == equal
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: rendering contains every ancestor processor name.
func TestQuickRenderContainsAncestors(t *testing.T) {
	f := func(n uint8) bool {
		depth := int(n%8) + 1
		tr := NewTracker()
		cur := tr.Source("s0", 0, "v")
		for i := 1; i < depth; i++ {
			cur = tr.Derive("p", "out", "v", []int{0}, cur)
		}
		r := cur.History.Render()
		return strings.Contains(r, "s0[0]") && strings.Count(r, "p:out[0]") == depth-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
