package federation

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// testGridConfig returns a small deterministic member grid: one cluster,
// fixed middleware latencies, no background load, no failures — so policy
// routing decisions are exact.
func testGridConfig(nodes int, submitMean time.Duration) grid.Config {
	cfg := grid.IdealConfig(nodes)
	cfg.Overheads = grid.OverheadConfig{
		SubmitMean:   submitMean,
		BrokerMean:   3 * time.Second,
		DispatchMean: 5 * time.Second,
	}
	cfg.BrokerSlots = 4
	return cfg
}

func job(i int) grid.JobSpec {
	return grid.JobSpec{Name: fmt.Sprintf("job%03d", i), Runtime: 10 * time.Second}
}

// dispatched returns the per-grid dispatch counts.
func dispatched(f *Federation) []int {
	out := make([]int, f.Size())
	for i := range out {
		out[i] = f.Telemetry(i).Dispatched
	}
	return out
}

// TestBrokerPolicyRouting is the table-driven policy comparison. The
// spaced scenario is the skewed-UI-latency case: grid 0 has a 60s UI,
// grid 1 a 2s one, and jobs arrive far enough apart that every backlog
// signal has drained by the next submission. Least-backlog sees two idle
// grids every time and herds onto grid 0 (ties resolve to the lowest
// index); the ranked policy pays one probe to grid 0, learns its UI cost
// through the EWMA, and routes everything else to the fast grid. The
// burst scenario (all jobs at one instant) shows both load-aware policies
// spreading, because each submission synchronously grows the chosen
// grid's UI backlog.
func TestBrokerPolicyRouting(t *testing.T) {
	const jobs = 20
	cases := []struct {
		name   string
		policy Policy
		spaced bool // drain the federation between submissions
		want   []int
	}{
		{"round-robin/spaced", RoundRobin(), true, []int{10, 10}},
		{"least-backlog/spaced-herds-to-first", LeastBacklog(), true, []int{20, 0}},
		{"ranked/spaced-learns-fast-ui", Ranked(), true, []int{1, 19}},
		{"least-backlog/burst-spreads", LeastBacklog(), false, []int{10, 10}},
		{"ranked/burst-spreads", Ranked(), false, []int{10, 10}},
		{"pinned/burst", Pinned(1), false, []int{0, 20}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			eng := sim.NewEngine()
			f, err := New(eng, Config{
				Grids: []GridSpec{
					{Name: "slow-ui", Config: testGridConfig(16, 60*time.Second)},
					{Name: "fast-ui", Config: testGridConfig(16, 2*time.Second)},
				},
				Policy: c.policy,
			})
			if err != nil {
				t.Fatal(err)
			}
			completed := 0
			for i := 0; i < jobs; i++ {
				f.Submit(job(i), func(r *grid.JobRecord) {
					if r.Status != grid.StatusCompleted {
						t.Errorf("job failed: %v", r.Err)
					}
					completed++
				})
				if c.spaced {
					eng.Run()
				}
			}
			eng.Run()
			if completed != jobs {
				t.Fatalf("completed %d of %d jobs", completed, jobs)
			}
			got := dispatched(f)
			for i, want := range c.want {
				if got[i] != want {
					t.Fatalf("dispatch counts %v, want %v", got, c.want)
				}
			}
			if st := f.Overheads(); st.Jobs != jobs {
				t.Fatalf("federation overheads cover %d jobs, want %d", st.Jobs, jobs)
			}
		})
	}
}

// TestRankedTelemetryTracksPhases: the EWMAs the ranked policy feeds on
// must reflect the configured middleware skew — the slow grid's submit
// EWMA has to sit near its 60s mean once observed.
func TestRankedTelemetryTracksPhases(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: []GridSpec{
			{Name: "slow", Config: testGridConfig(8, 60*time.Second)},
			{Name: "fast", Config: testGridConfig(8, 2*time.Second)},
		},
		Policy: RoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		f.Submit(job(i), func(*grid.JobRecord) {})
		eng.Run()
	}
	slow, fast := f.Telemetry(0), f.Telemetry(1)
	if slow.Observed != 5 || fast.Observed != 5 {
		t.Fatalf("observed %d/%d jobs, want 5/5", slow.Observed, fast.Observed)
	}
	if slow.SubmitEWMA <= fast.SubmitEWMA {
		t.Fatalf("slow grid submit EWMA %v not above fast grid's %v", slow.SubmitEWMA, fast.SubmitEWMA)
	}
	// IdealConfig draws are deterministic around the mean; the EWMA of an
	// unloaded 60s UI must land in the same decade, nowhere near 2s.
	if slow.SubmitEWMA < 20*time.Second {
		t.Fatalf("slow grid submit EWMA %v implausibly low for a 60s UI", slow.SubmitEWMA)
	}
}

// TestRebrokerMovesTerminalFailures: a job that exhausts its retries on
// the pinned grid is transparently resubmitted to another grid and
// completes there; the caller's callback sees only the final record.
func TestRebrokerMovesTerminalFailures(t *testing.T) {
	broken := testGridConfig(4, 2*time.Second)
	broken.Failures = grid.FailureConfig{Probability: 1, DetectDelay: time.Second, MaxRetries: 2}
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: []GridSpec{
			{Name: "broken", Config: broken},
			{Name: "healthy", Config: testGridConfig(4, 2*time.Second)},
		},
		Policy:   Pinned(0),
		Rebroker: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var final *grid.JobRecord
	calls := 0
	first := f.Submit(job(0), func(r *grid.JobRecord) {
		final = r
		calls++
	})
	eng.Run()
	if calls != 1 {
		t.Fatalf("done called %d times, want 1", calls)
	}
	if final == nil || final.Status != grid.StatusCompleted {
		t.Fatalf("re-brokered job did not complete: %+v", final)
	}
	if final == first {
		t.Fatal("final record is the first attempt's — job never moved grids")
	}
	if !errors.Is(first.Err, grid.ErrTooManyFailures) {
		t.Fatalf("first attempt err = %v, want ErrTooManyFailures", first.Err)
	}
	if got := f.Telemetry(0).Rebrokered; got != 1 {
		t.Fatalf("broken grid Rebrokered = %d, want 1", got)
	}
	if got := f.Telemetry(1).Dispatched; got != 1 {
		t.Fatalf("healthy grid Dispatched = %d, want 1", got)
	}
	// Federation aggregates account both attempts: one failure on the
	// broken grid, one completion on the healthy one.
	st := f.Overheads()
	if st.Jobs != 1 || st.Failed != 1 {
		t.Fatalf("aggregates jobs=%d failed=%d, want 1/1", st.Jobs, st.Failed)
	}
}

// TestNoRebrokerOnMissingInput: a permanent failure (input absent from
// the shared catalog) is reported immediately — the file is missing on
// every grid, so moving the job is pointless.
func TestNoRebrokerOnMissingInput(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: []GridSpec{
			{Config: testGridConfig(4, 2*time.Second)},
			{Config: testGridConfig(4, 2*time.Second)},
		},
		Policy:   Pinned(0),
		Rebroker: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := job(0)
	spec.Inputs = []string{"gfn://nowhere/missing"}
	var final *grid.JobRecord
	f.Submit(spec, func(r *grid.JobRecord) { final = r })
	eng.Run()
	if final == nil || final.Status != grid.StatusFailed {
		t.Fatalf("job did not fail: %+v", final)
	}
	if !errors.Is(final.Err, grid.ErrNoSuchFile) {
		t.Fatalf("err = %v, want ErrNoSuchFile", final.Err)
	}
	if got := f.Telemetry(0).Rebrokered; got != 0 {
		t.Fatalf("permanent failure was re-brokered %d times", got)
	}
	if got := f.Telemetry(1).Dispatched; got != 0 {
		t.Fatalf("second grid received %d jobs", got)
	}
}

// TestSharedCatalogSpansGrids: an output registered by a job on one grid
// must be stageable by a later job brokered to the other grid — the
// federated-replica-catalog property chained workflow stages rely on.
func TestSharedCatalogSpansGrids(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: []GridSpec{
			{Config: testGridConfig(4, 2*time.Second)},
			{Config: testGridConfig(4, 2*time.Second)},
		},
		Policy: RoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	first := job(0)
	first.Outputs = []grid.FileDecl{{Name: "gfn://fed/intermediate", SizeMB: 1}}
	var stage2 *grid.JobRecord
	f.Submit(first, func(r *grid.JobRecord) {
		if r.Status != grid.StatusCompleted {
			t.Errorf("producer failed: %v", r.Err)
			return
		}
		second := job(1)
		second.Inputs = []string{"gfn://fed/intermediate"}
		f.Submit(second, func(r2 *grid.JobRecord) { stage2 = r2 })
	})
	eng.Run()
	if stage2 == nil || stage2.Status != grid.StatusCompleted {
		t.Fatalf("consumer on the other grid did not complete: %+v", stage2)
	}
	if got := dispatched(f); got[0] != 1 || got[1] != 1 {
		t.Fatalf("stages not split across grids: %v", got)
	}
}

// TestFederationStatsPartition: per-grid stats and per-tenant stats must
// both partition the federation-level aggregates exactly.
func TestFederationStatsPartition(t *testing.T) {
	flaky := testGridConfig(8, 2*time.Second)
	flaky.Failures = grid.FailureConfig{Probability: 0.3, DetectDelay: 10 * time.Second, MaxRetries: 4}
	flaky.Seed = 11
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: []GridSpec{
			{Name: "a", Config: flaky},
			{Name: "b", Config: testGridConfig(8, 5*time.Second)},
		},
		Policy: RoundRobin(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tenants := []*Tenant{f.Tenant("alpha"), f.Tenant("beta"), f.Tenant("gamma")}
	for i := 0; i < 30; i++ {
		tenants[i%3].Submit(job(i), func(*grid.JobRecord) {})
	}
	eng.Run()

	global := f.Overheads()
	if global.Jobs+global.Failed != 30 {
		t.Fatalf("terminal jobs %d+%d, want 30", global.Jobs, global.Failed)
	}
	var gridJobs, gridFailed, tenantJobs, tenantFailed, tenantResub int
	for i := 0; i < f.Size(); i++ {
		st := f.Grid(i).Overheads()
		gridJobs += st.Jobs
		gridFailed += st.Failed
	}
	for _, tn := range tenants {
		st := tn.Overheads()
		tenantJobs += st.Jobs
		tenantFailed += st.Failed
		tenantResub += st.Resubmits
	}
	if gridJobs != global.Jobs || gridFailed != global.Failed {
		t.Fatalf("per-grid stats %d/%d do not partition global %d/%d",
			gridJobs, gridFailed, global.Jobs, global.Failed)
	}
	if tenantJobs != global.Jobs || tenantFailed != global.Failed || tenantResub != global.Resubmits {
		t.Fatalf("per-tenant stats %d/%d/%d do not partition global %d/%d/%d",
			tenantJobs, tenantFailed, tenantResub, global.Jobs, global.Failed, global.Resubmits)
	}
	if len(f.Records()) != 30 {
		t.Fatalf("federation records %d, want 30", len(f.Records()))
	}
	// Tenant handles are memoized — identity stands in for tenancy.
	if f.Tenant("alpha") != tenants[0] {
		t.Fatal("tenant handle not memoized")
	}
}

// TestFederationDeterminism: identical configs and seeds must reproduce
// identical dispatch schedules and makespans.
func TestFederationDeterminism(t *testing.T) {
	run := func() ([]int, sim.Time) {
		eng := sim.NewEngine()
		flaky := testGridConfig(6, 20*time.Second)
		flaky.Failures = grid.FailureConfig{Probability: 0.2, DetectDelay: 10 * time.Second, MaxRetries: 5}
		f, err := New(eng, Config{
			Grids: []GridSpec{
				{Config: flaky},
				{Config: testGridConfig(12, 5*time.Second)},
				{Config: testGridConfig(3, 2*time.Second)},
			},
			Rebroker: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			f.Submit(job(i), func(*grid.JobRecord) {})
		}
		eng.Run()
		return dispatched(f), eng.Now()
	}
	d1, m1 := run()
	d2, m2 := run()
	if m1 != m2 {
		t.Fatalf("makespan not deterministic: %v vs %v", m1, m2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("dispatch schedule not deterministic: %v vs %v", d1, d2)
		}
	}
}

func TestFederationConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	ok := GridSpec{Config: testGridConfig(2, time.Second)}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no grids", Config{}},
		{"duplicate names", Config{Grids: []GridSpec{{Name: "x", Config: ok.Config}, {Name: "x", Config: ok.Config}}}},
		{"clusterless member", Config{Grids: []GridSpec{{Name: "x"}}}},
		{"negative rebroker", Config{Grids: []GridSpec{ok}, Rebroker: -1}},
		{"alpha out of range", Config{Grids: []GridSpec{ok}, EWMAAlpha: 1.5}},
	}
	for _, c := range cases {
		if _, err := New(eng, c.cfg); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// Auto-named grids are accepted and distinct.
	f, err := New(eng, Config{Grids: []GridSpec{ok, ok}})
	if err != nil {
		t.Fatal(err)
	}
	if f.GridName(0) == f.GridName(1) {
		t.Fatalf("auto-assigned names collide: %s", f.GridName(0))
	}
}
