package federation

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// TestSameInstantBurstOrderPinned pins the same-instant ordering contract
// the determinism lint exists to protect: when identical jobs are burst
// onto identical grids at one virtual instant, every tie — brokering,
// dispatch, completion — resolves in submission order (the engine fires
// same-instant events in schedule order), so the record log is the same
// schedule on every replay. The test runs the scenario twice and demands
// a bit-identical schedule fingerprint, then checks the tie-break
// directly: records completing at the same instant appear in submission
// order.
func TestSameInstantBurstOrderPinned(t *testing.T) {
	const jobs = 16
	run := func() (*Federation, []string) {
		eng := sim.NewEngine()
		f, err := New(eng, Config{
			Grids: []GridSpec{
				{Name: "g0", Config: testGridConfig(8, 2*time.Second)},
				{Name: "g1", Config: testGridConfig(8, 2*time.Second)},
			},
			Policy: RoundRobin(),
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < jobs; i++ {
			f.Submit(job(i), func(r *grid.JobRecord) {
				if r.Status != grid.StatusCompleted {
					t.Errorf("job %s failed: %v", r.Spec.Name, r.Err)
				}
			})
		}
		eng.Run()
		var sched []string
		for _, r := range f.Records() {
			sched = append(sched, fmt.Sprintf("%s@%s sub=%d done=%d", r.Spec.Name, r.Grid, r.Submitted, r.Completed))
		}
		return f, sched
	}

	_, first := run()
	f, second := run()
	if len(first) != jobs {
		t.Fatalf("got %d records, want %d", len(first), jobs)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("replay diverged at record %d:\n  first:  %s\n  second: %s", i, first[i], second[i])
		}
	}

	recs := f.Records()
	for i := 1; i < len(recs); i++ {
		prev, cur := recs[i-1], recs[i]
		if cur.Completed < prev.Completed {
			t.Fatalf("record log out of completion order: %s done=%d before %s done=%d",
				prev.Spec.Name, prev.Completed, cur.Spec.Name, cur.Completed)
		}
		if cur.Completed == prev.Completed && cur.Spec.Name <= prev.Spec.Name {
			t.Fatalf("same-instant completion tie broke out of submission order: %s then %s at t=%d",
				prev.Spec.Name, cur.Spec.Name, cur.Completed)
		}
	}
}
