package federation

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// runParallelWorld drives the equivalence testbed: four heterogeneous
// grids, input replicas placed across them (so stage plans have real
// remote classes under the default WAN link model), and nJobs outputless
// jobs pre-scheduled on the main engine in staggered waves. It returns a
// fingerprint of every observable the parallel engine must preserve:
// per-job placement and makespan, and per-grid telemetry.
func runParallelWorld(t *testing.T, parallel bool, nJobs int) string {
	t.Helper()
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids:    HeterogeneousSpecs(4, 7),
		Policy:   Ranked(),
		Parallel: parallel,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.ParallelActive() != parallel {
		t.Fatalf("ParallelActive() = %v, want %v", f.ParallelActive(), parallel)
	}
	cat := f.Catalog()
	inputs := make([]string, 6)
	for i := range inputs {
		inputs[i] = fmt.Sprintf("in%02d", i)
		cat.RegisterAt(inputs[i], 40, grid.Site{Grid: f.GridName(i % f.Size())})
	}
	// Completion callbacks run on shard goroutines when parallelism is
	// engaged: each writes only its own pre-allocated slot.
	makespans := make([]time.Duration, nJobs)
	where := make([]string, nJobs)
	for i := 0; i < nJobs; i++ {
		i := i
		spec := grid.JobSpec{
			Name:    fmt.Sprintf("job%04d", i),
			Inputs:  []string{inputs[i%len(inputs)], inputs[(i+2)%len(inputs)]},
			Runtime: 2 * time.Minute,
		}
		eng.Schedule(sim.Time(i)*sim.Time(15*time.Second), func() {
			f.Submit(spec, func(r *grid.JobRecord) {
				makespans[i] = r.Makespan()
				where[i] = r.Grid
			})
		})
	}
	f.Run()
	var b strings.Builder
	for i := range makespans {
		fmt.Fprintf(&b, "%d:%s:%v\n", i, where[i], makespans[i])
	}
	for i := 0; i < f.Size(); i++ {
		tl := f.Telemetry(i)
		fmt.Fprintf(&b, "%s d=%d o=%d s=%v q=%v wan=%.3f\n",
			f.GridName(i), tl.Dispatched, tl.Observed, tl.SubmitEWMA, tl.QueueEWMA, tl.RemoteInMB)
	}
	return b.String()
}

// TestParallelRunMatchesSerial pins the parallel engine's bit-identity
// contract: the same configuration, seeds, and submission schedule yield
// exactly the same per-job outcomes and per-grid telemetry whether the
// member grids run serially on one engine or concurrently on per-grid
// shards — and the parallel run itself is deterministic across repeats.
func TestParallelRunMatchesSerial(t *testing.T) {
	const jobs = 240
	serial := runParallelWorld(t, false, jobs)
	par := runParallelWorld(t, true, jobs)
	if serial != par {
		t.Fatalf("parallel run diverged from serial run:\nserial:\n%s\nparallel:\n%s", serial, par)
	}
	if again := runParallelWorld(t, true, jobs); again != par {
		t.Fatalf("parallel run is not deterministic across repeats")
	}
}

// TestParallelFallsBackWhenUnsafe pins the safety predicate: any
// configuration with a cross-shard channel must silently run serial.
func TestParallelFallsBackWhenUnsafe(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"wan-streams", func(c *Config) { c.WANStreams = 2 }},
		{"rebroker", func(c *Config) { c.Rebroker = 1 }},
		{"storage", func(c *Config) { c.SECapacityMB = 100 }},
		{"repair", func(c *Config) { c.MinReplicas = 2 }},
		{"outage", func(c *Config) {
			c.Outages = []Outage{{Grid: "grid00", At: time.Hour, For: time.Hour}}
		}},
		{"single-grid", func(c *Config) { c.Grids = c.Grids[:1] }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{Grids: HeterogeneousSpecs(2, 1), Parallel: true}
			tc.mutate(&cfg)
			f, err := New(sim.NewEngine(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if f.ParallelActive() {
				t.Fatalf("%s configuration engaged parallelism", tc.name)
			}
		})
	}
}

// TestParallelRejectsOutputs pins the outputless-jobs contract: output
// registration would mutate the shared catalog from inside a window, so
// an engaged federation must refuse the submission loudly instead of
// racing.
func TestParallelRejectsOutputs(t *testing.T) {
	f, err := New(sim.NewEngine(), Config{Grids: HeterogeneousSpecs(2, 1), Parallel: true})
	if err != nil {
		t.Fatal(err)
	}
	if !f.ParallelActive() {
		t.Fatal("safe configuration did not engage parallelism")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Submit with outputs did not panic under engaged parallelism")
		}
	}()
	f.Submit(grid.JobSpec{
		Name:    "producer",
		Outputs: []grid.FileDecl{{Name: "out", SizeMB: 5}},
		Runtime: time.Minute,
	}, func(*grid.JobRecord) {})
}
