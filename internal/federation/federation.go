// Package federation federates several independently-configured simulated
// grids behind a single submission handle, extending the paper's
// single-grid enactment model to the multi-grid brokering scenario of
// Venugopal et al.'s Gridbus broker: a tenant that can dispatch to N
// infrastructures must weigh exactly the overheads the paper measures —
// serialized submission latency, batch-queue wait, stage-in — when
// choosing where each job goes.
//
// A Federation owns N grid.Grids (heterogeneous cluster counts, UI
// latencies, load factors, seeds) on one shared simulation engine and one
// shared replica catalog, so a workflow whose consecutive stages land on
// different grids still resolves its data dependencies. Both *Federation
// and its per-tenant handles (*Tenant) satisfy services.Submitter:
// wrapper-backed, grouped and batched services dispatch across grids
// transparently, and campaigns back whole multi-tenant runs with a
// federation (campaign.RunFederated).
//
// A pluggable broker Policy picks the target grid per submitted job:
// round-robin, least-backlog (instantaneous occupancy), or overhead-ranked
// — scoring each grid by EWMAs of its observed submission and queueing
// phases with an additive rank floor so an uncharacterized federation
// degrades to UI-backlog spreading instead of herding (see Ranked).
// Terminal
// failures may be re-brokered: a job that exhausts its retries on one grid
// is resubmitted to another (Config.Rebroker), the cross-grid analogue of
// the grid's own transparent resubmission.
//
// Accounting partitions exactly as in the single-grid tenancy model:
// every dispatched attempt is recorded once, per-grid stats
// (Grid.Overheads of each member) and per-tenant stats (Tenant.Overheads
// across grids) both partition the federation-level aggregates
// (Federation.Overheads).
//
// Everything runs inside the single-threaded engine, so federated runs are
// exactly as deterministic as solo ones: same configs, same seeds, same
// policy — same per-tenant makespans and per-grid dispatch counts (pinned
// by golden tests).
package federation

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// GridSpec names and configures one member grid of a federation.
type GridSpec struct {
	// Name identifies the grid in views, telemetry and reports. Empty
	// names are auto-assigned "gridNN" by New.
	Name string
	// Config is the member grid's full infrastructure model. Members are
	// independent: cluster sets, overhead distributions, failure models
	// and seeds may all differ.
	Config grid.Config
}

// Config assembles a federation.
type Config struct {
	// Grids are the member infrastructures, in brokering order (policies
	// resolve ties towards lower indices).
	Grids []GridSpec
	// Policy picks the target grid per submission. Nil means Ranked().
	Policy Policy
	// Rebroker is the number of times a terminally failed job may be
	// resubmitted to a different grid before the failure is reported to
	// the caller (0 disables cross-grid resubmission). Jobs that failed
	// permanently for missing catalog inputs are never re-brokered — the
	// catalog is shared, so the file is missing everywhere.
	Rebroker int
	// EWMAAlpha is the smoothing factor of the per-grid overhead
	// telemetry (0 ≤ alpha ≤ 1); larger values track recent jobs more
	// aggressively. Zero means "use the default", 0.2 — an explicit
	// all-history mean (alpha → 0) is not expressible.
	EWMAAlpha float64
	// Links is the link model pricing replica movement across the
	// federation, attached to the shared catalog: it decides what a job
	// pays to stage inputs whose replicas live on another member grid,
	// and what the broker's locality-aware policies estimate that cost
	// to be. Nil means grid.DefaultWAN (cross-grid fetches pay a real
	// WAN link); pass grid.LocalLinks() to restore the location-blind
	// federation where cross-grid staging was free. A per-pair
	// grid.LinkMatrix is accepted like any other model.
	Links grid.LinkModel
	// WANStreams, when positive, makes the WAN fabric contended: a
	// capacity-limited shared channel (that many concurrent fetch legs)
	// is created per ordered member-grid pair and attached to the shared
	// catalog, so concurrent cross-grid stage-ins queue and stretch each
	// other instead of overlapping for free. Zero keeps the uncontended
	// pure-delay transfer model (the PR 4 behaviour).
	WANStreams int
	// Fabric optionally supplies a pre-built contended fabric (e.g. with
	// per-pair capacity overrides); it takes precedence over WANStreams.
	// The fabric must run on the federation's engine.
	Fabric *grid.Fabric
	// Outages schedules member-grid outage windows at construction time
	// (instants are relative to the engine clock at New). Windows of one
	// grid and one mode (full vs storage-only, see Outage.Storage) must
	// not overlap — each window's recovery is unconditional, so New
	// rejects overlapping (or never-recovering-then-followed) windows.
	// Outages can also be driven manually with SetDown/SetUp (or
	// SetStorageDown/SetStorageUp); mixing manual calls into a scheduled
	// window is legal but the window's boundaries still fire (a manual
	// SetDown inside a window is undone by the window's recovery).
	Outages []Outage
	// SECapacityMB, when positive, gives every member-grid storage
	// element — the grid-level site and each cluster's close SE — an
	// active capacity of that many megabytes, drained by the SEEviction
	// policy when replicas overflow it. Zero keeps storage passive and
	// unlimited (the pre-storage model, bit-identical goldens).
	SECapacityMB float64
	// SEEviction picks eviction victims on capacity overflow (only
	// consulted when SECapacityMB is positive). Nil means grid.EvictLRU().
	SEEviction grid.EvictionPolicy
	// MinReplicas, when > 1, arms the replica-repair loop: every
	// registered file is re-replicated onto additional member grids (via
	// Catalog.AddReplica, paying the link model's transfer time) until it
	// has that many live copies, both at registration (pre-staging) and
	// whenever an SE death or eviction drops a file below the floor.
	// Eviction also refuses to evict a replica of a file at or below the
	// floor. Zero or one disables repair.
	MinReplicas int
	// Parallel arms conservative parallel execution: each member grid gets
	// its own event loop (a sim.Engine shard), run concurrently between
	// the main engine's brokering points by Federation.Run via sim.Group.
	// Results are bit-identical to a serial run of the same configuration
	// — the shards only interact at main-engine instants, where they are
	// quiesced (see the parallel-engine section of DESIGN.md).
	//
	// Parallelism engages only when the configuration is provably free of
	// cross-shard channels: no contended fabric (Fabric nil, WANStreams 0),
	// passive storage (SECapacityMB 0, MinReplicas ≤ 1), no outages, no
	// re-brokering, and at least two grids. Any other configuration
	// silently falls back to the single-engine serial path (check
	// ParallelActive). Jobs submitted while parallelism is engaged must
	// declare no outputs — output registration mutates the shared replica
	// catalog from inside a window, which is exactly the cross-shard data
	// dependency conservative windows cannot honor — and their completion
	// callbacks run on shard goroutines, so they must only touch state
	// owned by the job or its grid.
	Parallel bool
}

// Outage is one scheduled member-grid outage window: the named grid goes
// dark At after federation construction and recovers For later (For 0
// means it never recovers). While dark, the grid receives no brokered
// picks, its in-flight jobs fail with grid.ErrGridDown at their next
// lifecycle transition (and re-broker elsewhere under Config.Rebroker),
// and on recovery its smoothed telemetry is aged out so stale pre-outage
// observations cannot poison the ranking.
type Outage struct {
	// Grid names the member grid (GridSpec.Name, or the auto-assigned
	// "gridNN").
	Grid string
	// At is the outage start, relative to federation construction.
	At time.Duration
	// For is the outage duration; zero means the grid stays dark.
	For time.Duration
	// Storage restricts the outage to the grid's storage dimension: an
	// SE-only outage (grid.Grid.SetStorageDown) during which the grid
	// keeps computing and accepting work, but its replicas are
	// unreachable, nothing can stage in on it, and its completed jobs
	// cannot register outputs. Storage and full windows of one grid may
	// overlap — they are independent dimensions.
	Storage bool
}

// Telemetry is the federation's smoothed overhead view of one member
// grid, maintained from the terminal records of the jobs the federation
// dispatched there. It is the observational input of the Ranked policy.
type Telemetry struct {
	// Dispatched counts jobs the broker sent to this grid (re-brokered
	// arrivals included).
	Dispatched int
	// Observed counts completed jobs that updated the EWMAs.
	Observed int
	// Rebrokered counts jobs moved off this grid after it failed them
	// terminally.
	Rebrokered int
	// SubmitEWMA smooths the UI submission phase (Submitted→Accepted) of
	// completed jobs.
	SubmitEWMA time.Duration
	// QueueEWMA smooths the queueing phase (Matched→Started: batch-queue
	// wait plus LRMS dispatch) of completed jobs.
	QueueEWMA time.Duration
	// RemoteInMB accumulates the input bytes this grid's completed jobs
	// fetched over non-local links (the final attempts' JobRecord
	// accounting) — the broker's observed price of placing jobs away
	// from their data. Failed and resubmitted attempts are not observed;
	// for the bytes actually moved, read the member grid's
	// grid.Grid.RemoteInMB.
	RemoteInMB float64
	// WANWait accumulates the time this grid's completed jobs spent
	// queued on contended WAN channels (the final attempts'
	// JobRecord.WANWait); for the waits actually paid, attempts included,
	// read the member grid's grid.Grid.WANWait.
	WANWait time.Duration
	// FetchObserved counts the completed jobs with a non-zero nominal
	// remote fetch — the observations behind XferStretch.
	FetchObserved int
	// XferStretch is the smoothed ratio of observed to nominal WAN fetch
	// cost, (WANFetch+WANWait)/WANFetch EWMA'd over completed jobs whose
	// last attempt held WAN channels: exactly 1 on an uncontended
	// fabric, growing past 1 as concurrent transfers queue. The ratio is
	// taken over the cross-grid legs only — intra-grid remote fetches
	// never touch the channels, and folding their nominal time in would
	// dilute the congestion signal the broker applies to its
	// cross-grid-only XferEst term. Read it through Stretch(), which
	// supplies the no-observation default.
	XferStretch float64
}

// Stretch returns the grid's observed transfer-cost stretch factor: the
// XferStretch EWMA, or 1 before any remote fetch has been observed. The
// locality-aware Ranked policy multiplies its nominal XferEst term by it,
// which is how the broker learns observed (not nominal) transfer cost
// under channel contention while decaying to the nominal ranking exactly
// when the fabric is uncontended.
func (t Telemetry) Stretch() float64 {
	if t.FetchObserved == 0 {
		return 1
	}
	return t.XferStretch
}

// Federation is a set of member grids behind one brokered submission
// handle, bound to a single simulation engine and replica catalog.
type Federation struct {
	eng     *sim.Engine
	cfg     Config
	grids   []*grid.Grid
	names   []string
	policy  Policy
	alpha   float64
	catalog *grid.Catalog
	fabric  *grid.Fabric
	tenants map[string]*Tenant
	telem   []Telemetry
	// records holds every dispatched attempt in dispatch order, across
	// grids and tenants — the federation-level aggregate the per-grid and
	// per-tenant views partition.
	records []*grid.JobRecord
	views   []GridView // scratch, rebuilt per pick
	// planViews caches whether the policy consumes the views' affinity
	// signals (see affinityReader): stage planning per pick is pure
	// overhead for a policy that never reads it.
	planViews bool
	// repairing marks files with a replica-repair copy in flight, so one
	// below-floor file triggers one transfer at a time; repairs and
	// repairedMB account the copies that landed.
	repairing  map[string]bool
	repairs    int
	repairedMB float64
	// parallel marks conservative parallel execution engaged: the member
	// grids run on the shard engines, coordinated by Run. inWindow is the
	// cross-shard-submission guard, armed while shard windows execute.
	parallel bool
	shards   []*sim.Engine
	inWindow atomic.Bool
}

// New builds a federation of the configured grids on the engine, sharing
// one fresh replica catalog across all members.
func New(eng *sim.Engine, cfg Config) (*Federation, error) {
	if len(cfg.Grids) == 0 {
		return nil, errors.New("federation: config has no grids")
	}
	if cfg.Rebroker < 0 {
		return nil, errors.New("federation: negative Rebroker")
	}
	if cfg.EWMAAlpha < 0 || cfg.EWMAAlpha > 1 {
		return nil, fmt.Errorf("federation: EWMAAlpha %v outside [0, 1] (0 means the 0.2 default)", cfg.EWMAAlpha)
	}
	if cfg.SECapacityMB < 0 {
		return nil, errors.New("federation: negative SECapacityMB")
	}
	if cfg.MinReplicas < 0 {
		return nil, errors.New("federation: negative MinReplicas")
	}
	f := &Federation{
		eng:     eng,
		cfg:     cfg,
		policy:  cfg.Policy,
		alpha:   cfg.EWMAAlpha,
		catalog: grid.NewCatalog(),
		tenants: make(map[string]*Tenant),
		telem:   make([]Telemetry, len(cfg.Grids)),
		views:   make([]GridView, len(cfg.Grids)),
	}
	if f.policy == nil {
		f.policy = Ranked()
	}
	// Unknown policies are assumed to read the affinity signals; built-in
	// ones declare themselves.
	f.planViews = true
	if ar, ok := f.policy.(affinityReader); ok {
		f.planViews = ar.readsAffinity()
	}
	if f.alpha == 0 {
		f.alpha = 0.2
	}
	links := cfg.Links
	if links == nil {
		links = grid.DefaultWAN()
	}
	f.catalog.SetLinks(links)
	f.fabric = cfg.Fabric
	if f.fabric != nil && f.fabric.Engine() != eng {
		return nil, errors.New("federation: Config.Fabric runs on a different engine")
	}
	if f.fabric == nil && cfg.WANStreams > 0 {
		f.fabric = grid.NewFabric(eng, cfg.WANStreams)
	}
	f.catalog.SetFabric(f.fabric)
	f.parallel = cfg.Parallel && parallelSafe(cfg)
	seen := make(map[string]bool, len(cfg.Grids))
	for i, gs := range cfg.Grids {
		name := gs.Name
		if name == "" {
			name = fmt.Sprintf("grid%02d", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("federation: duplicate grid name %q", name)
		}
		seen[name] = true
		if len(gs.Config.Clusters) == 0 {
			return nil, fmt.Errorf("federation: grid %q has no clusters", name)
		}
		// The member grid carries the federation-resolved name as its data
		// location: its jobs' outputs become replicas at Site{name,
		// cluster}, which is what makes cross-grid staging visible to the
		// link model.
		gs.Config.Name = name
		f.names = append(f.names, name)
		geng := eng
		if f.parallel {
			// Each member grid becomes one shard: its whole internal
			// lifecycle (UI, broker, queues, staging, compute) schedules on
			// its own engine, run between brokering points by Run.
			geng = sim.NewEngine()
			f.shards = append(f.shards, geng)
		}
		f.grids = append(f.grids, grid.NewWithCatalog(geng, gs.Config, f.catalog))
		if cfg.SECapacityMB > 0 {
			// Active storage: the grid-level SE (where repair copies and
			// campaign-registered inputs land) and each cluster's close SE
			// (where job outputs land) each get the configured capacity.
			f.catalog.ConfigureSE(grid.Site{Grid: name}, cfg.SECapacityMB, cfg.SEEviction)
			for _, cc := range gs.Config.Clusters {
				f.catalog.ConfigureSE(grid.Site{Grid: name, Cluster: cc.Name}, cfg.SECapacityMB, cfg.SEEviction)
			}
		}
	}
	if cfg.MinReplicas > 1 {
		f.repairing = make(map[string]bool)
		f.catalog.SetReplicaFloor(cfg.MinReplicas)
		f.catalog.SetRepairHook(f.repairNeeded)
	}
	type boundOutage struct {
		idx int
		o   Outage
	}
	scheduled := make([]boundOutage, 0, len(cfg.Outages))
	perGrid := make(map[string][]Outage, len(cfg.Outages))
	for _, o := range cfg.Outages {
		idx := -1
		for i, name := range f.names {
			if name == o.Grid {
				idx = i
				break
			}
		}
		if idx < 0 {
			return nil, fmt.Errorf("federation: outage names unknown grid %q", o.Grid)
		}
		if o.At < 0 || o.For < 0 {
			return nil, fmt.Errorf("federation: outage of %q has a negative instant or duration", o.Grid)
		}
		// Windows of one grid and mode must not overlap: a window's
		// scheduled recovery is unconditional, so an overlap would let
		// the earlier window's SetUp revive a grid a later (or
		// never-ending) window still holds dark. Full and storage-only
		// windows are independent dimensions and may overlap freely.
		key := o.Grid
		if o.Storage {
			key += "\x00storage"
		}
		for _, prev := range perGrid[key] {
			lo, hi := prev, o
			if hi.At < lo.At {
				lo, hi = hi, lo
			}
			if lo.For == 0 || lo.At+lo.For > hi.At {
				return nil, fmt.Errorf("federation: outage windows of %q overlap", o.Grid)
			}
		}
		perGrid[key] = append(perGrid[key], o)
		scheduled = append(scheduled, boundOutage{idx, o})
	}
	// Schedule in chronological window order: same-instant events fire in
	// schedule order, so a window that starts exactly when an earlier one
	// ends must have its SetDown scheduled after that window's SetUp —
	// otherwise the recovery would fire second and cancel the new window.
	sort.SliceStable(scheduled, func(i, j int) bool { return scheduled[i].o.At < scheduled[j].o.At })
	for _, b := range scheduled {
		idx, o := b.idx, b.o
		if o.Storage {
			eng.Schedule(sim.Time(o.At), func() { f.SetStorageDown(idx) })
			if o.For > 0 {
				eng.Schedule(sim.Time(o.At+o.For), func() { f.SetStorageUp(idx) })
			}
			continue
		}
		eng.Schedule(sim.Time(o.At), func() { f.SetDown(idx) })
		if o.For > 0 {
			eng.Schedule(sim.Time(o.At+o.For), func() { f.SetUp(idx) })
		}
	}
	return f, nil
}

// parallelSafe reports whether the configuration is provably free of
// cross-shard channels, the precondition of conservative per-grid
// parallelism: every interaction between member grids must happen at
// main-engine instants (brokered submissions), so any feature that lets
// one grid's in-window events observe or mutate another grid's — or
// shared — state disqualifies the configuration. A contended fabric
// shares WAN channels across grids; active storage and replica repair
// mutate the shared catalog mid-run; outages flip grid state from
// main-engine events at arbitrary instants; re-brokering resubmits from
// inside a shard's settlement.
func parallelSafe(cfg Config) bool {
	return cfg.Fabric == nil && cfg.WANStreams == 0 &&
		cfg.SECapacityMB == 0 && cfg.MinReplicas <= 1 &&
		len(cfg.Outages) == 0 && cfg.Rebroker == 0 && len(cfg.Grids) > 1
}

// ParallelActive reports whether conservative parallel execution is
// engaged: Config.Parallel was set and the configuration passed the
// safety predicate (see Config.Parallel). When false, Run degenerates to
// the single-engine serial drain.
func (f *Federation) ParallelActive() bool { return f.parallel }

// Run drains the federation to completion. With parallelism engaged, the
// member grids' shard engines run concurrently between the main engine's
// brokering points under a sim.Group — bit-identical results to the
// serial path, one goroutine per grid inside each window; otherwise it is
// exactly Engine().Run(). Callers that pre-schedule submission waves on
// the main engine (Engine()) and then Run obtain the same records, same
// telemetry, and same per-grid statistics in either mode.
func (f *Federation) Run() {
	if !f.parallel {
		f.eng.Run()
		return
	}
	grp := &sim.Group{
		Main:       f.eng,
		Shards:     f.shards,
		PreWindow:  func() { f.inWindow.Store(true) },
		PostWindow: func() { f.inWindow.Store(false) },
	}
	grp.Run()
}

// HeterogeneousSpecs returns n member-grid specs derived from the default
// production-grid model with deliberately skewed capacity and middleware
// quality — the standard testbed of the federated benchmark, CLI and
// examples. Grid i keeps the default cluster set truncated by 2i clusters
// (never below two), pays (i+1)× the default UI submission latency, seeds
// its random streams at seed+i, and generates background load for four
// virtual days (enough to cover campaign spans while keeping the event
// count bounded).
func HeterogeneousSpecs(n int, seed uint64) []GridSpec {
	specs := make([]GridSpec, n)
	for i := 0; i < n; i++ {
		cfg := grid.DefaultConfig()
		keep := len(cfg.Clusters) - 2*i
		if keep < 2 {
			keep = 2
		}
		cfg.Clusters = cfg.Clusters[:keep:keep]
		cfg.Overheads.SubmitMean *= time.Duration(i + 1)
		cfg.Seed = seed + uint64(i)
		cfg.BackgroundHorizon = 4 * 24 * time.Hour
		specs[i] = GridSpec{Name: fmt.Sprintf("grid%02d", i), Config: cfg}
	}
	return specs
}

// Engine returns the shared simulation engine.
func (f *Federation) Engine() *sim.Engine { return f.eng }

// Catalog returns the replica catalog shared by every member grid.
// Together with Submit it makes *Federation satisfy services.Submitter.
func (f *Federation) Catalog() *grid.Catalog { return f.catalog }

// Policy returns the broker policy in use.
func (f *Federation) Policy() Policy { return f.policy }

// Size returns the number of member grids.
func (f *Federation) Size() int { return len(f.grids) }

// Grid returns member grid i (configuration order).
func (f *Federation) Grid(i int) *grid.Grid { return f.grids[i] }

// GridName returns the name of member grid i.
func (f *Federation) GridName(i int) string { return f.names[i] }

// Telemetry returns the federation's current overhead view of member
// grid i.
func (f *Federation) Telemetry(i int) Telemetry { return f.telem[i] }

// Fabric returns the contended WAN fabric attached to the shared catalog
// (nil when cross-grid fetches are uncontended pure delays).
func (f *Federation) Fabric() *grid.Fabric { return f.fabric }

// SetDown takes member grid i dark: it stops receiving brokered picks
// and every job attempt still in its pipeline fails with
// grid.ErrGridDown at its next lifecycle transition, to be re-brokered
// elsewhere under Config.Rebroker. Idempotent.
func (f *Federation) SetDown(i int) { f.grids[i].SetDown(true) }

// SetUp recovers member grid i from an outage: it becomes eligible for
// brokering again and its smoothed telemetry is aged out — the overhead
// EWMAs, the transfer-stretch observations and their counters are reset,
// so the recovered grid is re-characterized from fresh observations
// (degrading to the rank floor's backlog spreading until they arrive)
// instead of trusting stale pre-outage numbers. Cumulative counters
// (Dispatched, Rebrokered, RemoteInMB, WANWait) are kept. Calling SetUp
// on a grid that is not down is a no-op.
func (f *Federation) SetUp(i int) {
	if !f.grids[i].Down() {
		return
	}
	f.grids[i].SetDown(false)
	t := &f.telem[i]
	t.Observed = 0
	t.SubmitEWMA, t.QueueEWMA = 0, 0
	t.FetchObserved, t.XferStretch = 0, 0
}

// Down reports whether member grid i is currently dark.
func (f *Federation) Down(i int) bool { return f.grids[i].Down() }

// SetStorageDown takes member grid i's storage dimension dark — an
// SE-only outage: the grid keeps computing and accepting brokered work,
// but its replicas are unreachable (consumers elsewhere re-stage from
// surviving copies), nothing can stage in on it, and its completed jobs
// cannot register outputs. Storage-aware policies stop picking it for
// jobs that need staging. Idempotent.
func (f *Federation) SetStorageDown(i int) { f.grids[i].SetStorageDown(true) }

// SetStorageUp recovers member grid i's storage dimension: its replicas
// become fetchable again and in-flight re-staging backoffs find them on
// their next round. Unlike SetUp, no telemetry is aged — the middleware
// never went dark, so its overhead characterization stayed valid.
// Idempotent.
func (f *Federation) SetStorageUp(i int) { f.grids[i].SetStorageDown(false) }

// StorageDown reports whether member grid i's storage dimension is dark
// (true during both SE-only and full outages).
func (f *Federation) StorageDown(i int) bool { return f.grids[i].StorageDown() }

// Repairs returns the number of replica-repair copies that landed (see
// Config.MinReplicas).
func (f *Federation) Repairs() int { return f.repairs }

// RepairedMB returns the megabytes moved by landed replica-repair copies.
func (f *Federation) RepairedMB() float64 { return f.repairedMB }

// TotalNodes returns the worker-node capacity across all member grids.
func (f *Federation) TotalNodes() int {
	n := 0
	for _, g := range f.grids {
		n += g.TotalNodes()
	}
	return n
}

// Records returns every job attempt the federation dispatched, in
// dispatch order across grids and tenants. Records of in-flight jobs are
// included and still mutating. A job re-brokered after a terminal failure
// appears once per grid it was tried on; each attempt is accounted to the
// grid that ran it, which is what keeps per-grid and federation-level
// statistics partition-consistent.
func (f *Federation) Records() []*grid.JobRecord { return f.records }

// Overheads computes overhead statistics over every job dispatched
// through the federation. Per-grid stats (Grid.Overheads of each member)
// and per-tenant stats (Tenant.Overheads) both partition these aggregates:
// job, failure and resubmission counts sum to the federation's.
func (f *Federation) Overheads() grid.OverheadStats {
	return grid.OverheadsOf(f.records)
}

// Phases computes the mean per-phase latencies over the federation's
// completed jobs.
func (f *Federation) Phases() grid.PhaseStats {
	return grid.PhasesOf(f.records)
}

// Submit enters a job under the default (anonymous) tenant: the broker
// policy picks a member grid and the job is submitted there. done fires
// exactly once, in virtual time, at the job's terminal state; if the
// chosen grid fails the job terminally and Config.Rebroker allows, the
// job is transparently resubmitted to another grid first, so done only
// sees the final outcome. The returned record is the first attempt's
// (terminal state must be read from the callback's record — a re-brokered
// job's final record is a different one, on a different grid).
func (f *Federation) Submit(spec grid.JobSpec, done func(*grid.JobRecord)) *grid.JobRecord {
	return f.submit("", spec, done)
}

func (f *Federation) submit(tenant string, spec grid.JobSpec, done func(*grid.JobRecord)) *grid.JobRecord {
	if f.parallel {
		if f.inWindow.Load() {
			panic("federation: Submit during a parallel window — submissions must run at brokering points (main-engine events), not from shard callbacks")
		}
		if len(spec.Outputs) > 0 {
			panic("federation: parallel execution requires outputless jobs — output registration mutates the shared catalog from inside a window (disable Config.Parallel for data-producing workloads)")
		}
	}
	return f.dispatch(tenant, spec, done, f.pick(spec, -1), f.cfg.Rebroker)
}

// pick rebuilds the policy's views for this job and asks the policy for a
// target grid, validating the answer (an out-of-range pick is a policy bug
// and panics rather than silently misrouting). Views carry the job's
// data-affinity signals: for each grid, the bytes of the job's inputs
// already resident there and the estimated serialized fetch time of the
// rest under the catalog's link model — which is also exactly what
// re-brokering consults, so moving a failed job to another grid weighs the
// re-staging it would cause. Stage planning is skipped entirely when the
// policy declared it never reads the signals (see affinityReader) or the
// link model is the all-local one (every estimate is provably zero); a
// plan with a missing input leaves the signals zero on every view, so
// order-dependent partial sums never steer a doomed job's placement —
// the same contract as the in-grid cluster ranker's fetch estimate.
func (f *Federation) pick(spec grid.JobSpec, exclude int) int {
	plan := f.planViews && len(spec.Inputs) > 0 && !f.catalog.AllLocal()
	for i, g := range f.grids {
		f.views[i] = GridView{
			Index: i, Name: f.names[i], Down: g.Down(),
			StorageDown: g.StorageDown(), Load: g.Load(), Telemetry: f.telem[i],
		}
		if plan && !f.views[i].Down {
			p := f.catalog.Plan(spec.Inputs, grid.Site{Grid: f.names[i]})
			if p.Missing == "" && p.Unavailable == "" {
				f.views[i].AffinityMB = p.LocalMB
				f.views[i].XferEst = p.RemoteTime
				f.views[i].FragileEst = p.FragileTime
			}
		}
	}
	idx := f.policy.Pick(f.views, exclude)
	if idx < 0 || idx >= len(f.grids) {
		panic(fmt.Sprintf("federation: policy %s picked grid %d of %d", f.policy.Name(), idx, len(f.grids)))
	}
	if f.grids[idx].Down() {
		// Safety net over the policy contract: a dark grid must never
		// receive work while an alternative is up. Redirect
		// deterministically to the first up grid, preferring one that is
		// not the excluded failure source (scanUp's tier order).
		if j := scanUp(f.views, 0, exclude); j >= 0 {
			idx = j
		}
	}
	return idx
}

// dispatch submits one attempt to member grid idx and arms the re-broker:
// on terminal failure with retries left, the policy picks another grid
// (excluding the one that just failed) and the spec is resubmitted there
// as a fresh job.
func (f *Federation) dispatch(tenant string, spec grid.JobSpec, done func(*grid.JobRecord), idx, retries int) *grid.JobRecord {
	f.telem[idx].Dispatched++
	rec := f.grids[idx].Tenant(tenant).Submit(spec, func(r *grid.JobRecord) {
		f.observe(idx, r)
		if r.Status == grid.StatusFailed && retries > 0 && len(f.grids) > 1 && rebrokerable(r) {
			f.telem[idx].Rebrokered++
			f.dispatch(tenant, spec, done, f.pick(spec, idx), retries-1)
			return
		}
		done(r)
	})
	f.records = append(f.records, rec)
	return rec
}

// rebrokerable reports whether another grid could plausibly run the job:
// retry exhaustion is worth re-brokering (the failure was stochastic), a
// missing catalog input is not (the catalog is shared — the file is
// missing on every grid), and neither is a lost replica set (the data is
// just as unreachable from every other grid, and the stage-in retry
// budget already waited out any plausible recovery).
func rebrokerable(r *grid.JobRecord) bool {
	return !errors.Is(r.Err, grid.ErrNoSuchFile) && !errors.Is(r.Err, grid.ErrReplicaLost)
}

// observe folds a terminal record into the grid's overhead telemetry.
// Only completed jobs carry trustworthy phase timestamps; failures update
// nothing (their own cost surfaces through re-brokering counts and the
// occupancy term instead).
func (f *Federation) observe(idx int, r *grid.JobRecord) {
	if r.Status != grid.StatusCompleted {
		return
	}
	t := &f.telem[idx]
	t.RemoteInMB += r.RemoteInMB
	t.WANWait += r.WANWait
	if r.WANFetch > 0 {
		// Observed vs nominal cost of the WAN legs alone: on an
		// uncontended fabric WANWait is zero and the ratio is exactly 1,
		// so the stretch EWMA stays 1 and the locality-aware ranking is
		// unchanged. Without a fabric WANFetch is never set and the
		// stretch stays at its no-observation default of 1.
		ratio := float64(r.WANFetch+r.WANWait) / float64(r.WANFetch)
		if t.FetchObserved == 0 {
			t.XferStretch = ratio
		} else {
			t.XferStretch = f.alpha*ratio + (1-f.alpha)*t.XferStretch
		}
		t.FetchObserved++
	}
	submit := time.Duration(r.Accepted - r.Submitted)
	queue := time.Duration(r.Started - r.Matched)
	if t.Observed == 0 {
		t.SubmitEWMA, t.QueueEWMA = submit, queue
	} else {
		t.SubmitEWMA = ewma(t.SubmitEWMA, submit, f.alpha)
		t.QueueEWMA = ewma(t.QueueEWMA, queue, f.alpha)
	}
	t.Observed++
}

func ewma(prev, obs time.Duration, alpha float64) time.Duration {
	return time.Duration(alpha*float64(obs) + (1-alpha)*float64(prev))
}

// Tenant is a named submission handle on a federation: the multi-grid
// analogue of grid.Tenant. Jobs submitted through it are brokered across
// the member grids and tagged with the tenant's name on whichever grid
// they land, so the tenant's accounting spans grids while each member
// grid's fair-share gate still sees the tenant individually. Handles are
// memoized: Federation.Tenant returns the same *Tenant for the same name,
// so handle identity stands in for tenant identity (services.Grouped
// relies on this).
type Tenant struct {
	f    *Federation
	name string
}

// Tenant returns the submission handle for the named tenant, creating it
// on first use. The empty name is the default tenant Federation.Submit
// uses.
func (f *Federation) Tenant(name string) *Tenant {
	if t, ok := f.tenants[name]; ok {
		return t
	}
	t := &Tenant{f: f, name: name}
	f.tenants[name] = t
	return t
}

// Name returns the tenant's name.
func (t *Tenant) Name() string { return t.name }

// Federation returns the underlying federation.
func (t *Tenant) Federation() *Federation { return t.f }

// Catalog returns the federation's shared replica catalog. Together with
// Submit it makes *Tenant satisfy services.Submitter.
func (t *Tenant) Catalog() *grid.Catalog { return t.f.catalog }

// Engine returns the shared simulation engine (part of campaign.Handle).
func (t *Tenant) Engine() *sim.Engine { return t.f.eng }

// Submit enters a job tagged with this tenant. Semantics are those of
// Federation.Submit; the only difference is the tenant tag carried onto
// whichever grid the broker picks.
func (t *Tenant) Submit(spec grid.JobSpec, done func(*grid.JobRecord)) *grid.JobRecord {
	return t.f.submit(t.name, spec, done)
}

// Records returns this tenant's job records across all member grids, in
// dispatch order. Records of in-flight jobs are included and still
// mutating.
func (t *Tenant) Records() []*grid.JobRecord {
	var out []*grid.JobRecord
	for _, r := range t.f.records {
		if r.Tenant == t.name {
			out = append(out, r)
		}
	}
	return out
}

// Overheads computes overhead statistics over this tenant's jobs only,
// across all member grids. The per-tenant statistics of all tenants
// partition the federation-level Federation.Overheads.
func (t *Tenant) Overheads() grid.OverheadStats {
	return grid.OverheadsOf(t.Records())
}

// Phases computes the mean per-phase latencies over this tenant's
// completed jobs, across all member grids.
func (t *Tenant) Phases() grid.PhaseStats {
	return grid.PhasesOf(t.Records())
}
