package federation

import (
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// GridStatus is a point-in-time operational view of one member grid: the
// outage flags and queue depths a live dashboard polls, alongside the
// broker's smoothed telemetry and the WAN/staging totals actually paid
// (attempts included, unlike the completed-jobs observations inside
// Telemetry). It is assembled by Federation.Status from the engine's
// control flow — the struct itself carries no live references and is
// safe to hand to another goroutine.
type GridStatus struct {
	// Name is the member grid's federation-resolved name.
	Name string
	// Down reports a full outage in progress.
	Down bool
	// StorageDown reports the storage dimension dark (true during both
	// SE-only and full outages).
	StorageDown bool
	// Backlog is the UI backlog: submissions accepted but not yet cleared
	// by the grid's serialized UI — the congestion signal admission
	// control gates on.
	Backlog int
	// Queued counts jobs sitting in the grid's batch queues.
	Queued int
	// BusyNodes and TotalNodes are the grid's current worker occupancy.
	BusyNodes, TotalNodes int
	// Telemetry is the federation's smoothed overhead view of the grid
	// (submit/queue EWMAs, stretch, dispatch counters).
	Telemetry Telemetry
	// RemoteInMB is the input bytes the grid's jobs actually fetched over
	// non-local links, failed attempts included.
	RemoteInMB float64
	// WANWait is the time the grid's jobs actually spent queued on
	// contended WAN channels, attempts included.
	WANWait time.Duration
	// Restages counts the backed-off stage-in retry rounds the grid's
	// jobs paid against dark or lost replicas.
	Restages uint64
}

// Status is a live federation-wide snapshot: per-grid operational state,
// job lifecycle counts over every dispatched attempt, replica-repair
// accounting and per-element storage statistics. It is what the online
// broker daemon serves on /metrics and writes into state snapshots. Call
// it from the engine's control flow (between steps); the returned value
// is detached from live state.
type Status struct {
	// Virtual is the engine's current virtual instant.
	Virtual sim.Time
	// Grids holds one entry per member grid, in configuration order.
	Grids []GridStatus
	// JobsByStatus counts every dispatched attempt by lifecycle state,
	// indexed by grid.JobStatus (StatusSubmitted through StatusFailed).
	JobsByStatus [int(grid.StatusFailed) + 1]int
	// Repairs counts the replica-repair copies that landed.
	Repairs int
	// RepairedMB totals the megabytes those copies moved.
	RepairedMB float64
	// SE holds per-element storage statistics, in deterministic site
	// order (empty while storage is passive).
	SE []grid.SEStat
}

// GridStatus assembles the live operational view of member grid i.
func (f *Federation) GridStatus(i int) GridStatus {
	g := f.grids[i]
	return GridStatus{
		Name:        f.names[i],
		Down:        g.Down(),
		StorageDown: g.StorageDown(),
		Backlog:     g.PendingSubmits(),
		Queued:      g.QueuedJobs(),
		BusyNodes:   g.BusyNodes(),
		TotalNodes:  g.TotalNodes(),
		Telemetry:   f.telem[i],
		RemoteInMB:  g.RemoteInMB(),
		WANWait:     g.WANWait(),
		Restages:    g.Restages(),
	}
}

// Status assembles the live federation-wide snapshot: every member
// grid's GridStatus, job counts by lifecycle state across all dispatched
// attempts, repair accounting and storage-element statistics.
func (f *Federation) Status() Status {
	st := Status{
		Virtual:    f.eng.Now(),
		Grids:      make([]GridStatus, len(f.grids)),
		Repairs:    f.repairs,
		RepairedMB: f.repairedMB,
		SE:         f.catalog.SEStats(),
	}
	for i := range f.grids {
		st.Grids[i] = f.GridStatus(i)
	}
	for _, r := range f.records {
		if s := int(r.Status); s >= 0 && s < len(st.JobsByStatus) {
			st.JobsByStatus[s]++
		}
	}
	return st
}
