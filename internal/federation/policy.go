package federation

import (
	"fmt"
	"time"

	"repro/internal/grid"
)

// GridView is one grid's state as a broker policy sees it when picking a
// submission target: a static identity, an instantaneous backlog snapshot,
// the smoothed overhead telemetry the federation maintains from terminal
// job records, and the job's data-affinity signals under the federation's
// link model. Views are rebuilt per pick, so policies observe submissions
// they themselves caused earlier at the same virtual instant
// (PendingSubmits grows synchronously with Submit) and affinity reflects
// every replica registered so far.
type GridView struct {
	// Index is the grid's position in the federation's configuration.
	Index int
	// Name is the grid's configured (or auto-assigned) name.
	Name string
	// Down marks the grid dark (a member-grid outage): it must not be
	// picked while any other grid is up. Built-in policies honour this,
	// and the federation redirects a down pick to the first up grid as a
	// safety net. A down view carries no affinity signals (AffinityMB
	// and XferEst stay zero — there is no point planning a stage-in that
	// cannot run).
	Down bool
	// StorageDown marks the grid's storage dimension dark (an SE-only
	// outage, or a full outage): jobs brokered there cannot stage inputs
	// or register outputs until it recovers, though pure computation
	// still runs. It is a softer constraint than Down: the order-based
	// policies (round-robin, pinned) prefer storage-up grids but still
	// use a storage-dark one over a fully dark or excluded one, while
	// among the argmin policies only RankedSafe prices it in — Ranked
	// stays storage-blind as the control arm safety experiments compare
	// against.
	StorageDown bool
	// Load is the grid's current backlog snapshot.
	Load grid.Load
	// Telemetry is the federation's smoothed per-grid overhead view.
	Telemetry Telemetry
	// AffinityMB is the data affinity of the job being placed: the bytes
	// of its inputs with a replica already resident on this grid (or
	// unplaced, hence local everywhere).
	AffinityMB float64
	// XferEst is the estimated serialized fetch time of the job's
	// non-resident input bytes over the federation's link model, were the
	// job brokered to this grid — the transfer-cost term locality-aware
	// policies add to their rank. AffinityMB and XferEst stay zero when
	// the policy declared it never reads them, when the link model is
	// all-local, or when an input is missing from the catalog (a partial
	// plan must not steer a doomed job's placement).
	XferEst time.Duration
	// FragileEst is the replica-safety signal of the job being placed:
	// the estimated fetch time of the input bytes whose chosen replica is
	// the LAST live copy anywhere and sits behind a non-local link — the
	// exposure a mid-fetch SE death would turn into re-staging with no
	// survivor to re-stage from. Zero when every input either has a
	// spare live replica or is already resident here; populated under the
	// same conditions as XferEst. Only RankedSafe consumes it.
	FragileEst time.Duration
}

// Policy decides which member grid receives one job submission. Picks must
// be deterministic functions of the views and the policy's own state —
// federations run inside the single-threaded simulation engine and golden
// tests pin their schedules. exclude is the index of a grid the job must
// avoid (re-brokering after that grid failed it; -1 when unconstrained);
// a policy may still return the excluded index when no alternative exists.
// Views marked Down must be avoided while any up view exists (downness is
// a harder constraint than exclusion: an excluded-but-up grid can at
// least run the job).
type Policy interface {
	// Name identifies the policy in reports and CLI tables.
	Name() string
	// Pick returns the index of the target grid.
	Pick(views []GridView, exclude int) int
}

// affinityReader is the optional capability a Policy may declare: a
// policy returning false promises it never reads the views' AffinityMB
// or XferEst, and the federation then skips the per-pick stage planning
// those fields cost. Policies that do not implement the interface are
// conservatively assumed to read the signals.
type affinityReader interface {
	readsAffinity() bool
}

// RoundRobin returns the baseline policy: grids take turns in
// configuration order, one submission each, skipping only an excluded
// grid. It ignores every load and overhead signal — the control every
// informed policy has to beat.
func RoundRobin() Policy { return &roundRobin{} }

type roundRobin struct{ next int }

func (p *roundRobin) Name() string { return "round-robin" }

func (p *roundRobin) readsAffinity() bool { return false }

func (p *roundRobin) Pick(views []GridView, exclude int) int {
	n := len(views)
	idx := scanUp(views, p.next, exclude)
	if idx < 0 {
		// Everything is dark: fall back to the historical rotation,
		// skipping only the excluded grid.
		idx = p.next % n
		if idx == exclude && n > 1 {
			idx = (idx + 1) % n
		}
	}
	p.next = (idx + 1) % n
	return idx
}

// scanUp returns the first view index at or after start (wrapping) that
// is up — preferring, in a first pass, one whose storage is also up and
// that is not excluded, then any non-excluded up view, the same
// avoidance order as pickArgmin's tiers (downness is a harder constraint
// than exclusion, which is harder than storage-darkness). It returns -1
// when every view is dark. It is the shared scan of the order-based
// policies (round-robin, pinned).
func scanUp(views []GridView, start, exclude int) int {
	n := len(views)
	for pass := 0; pass < 3; pass++ {
		for i := 0; i < n; i++ {
			j := (start + i) % n
			if views[j].Down ||
				(pass == 0 && views[j].StorageDown) ||
				(pass <= 1 && j == exclude && n > 1) {
				continue
			}
			return j
		}
	}
	return -1
}

// LeastBacklog returns the policy that submits to the grid with the lowest
// instantaneous occupancy (grid.Load.Occupancy: UI backlog + batch-queue
// length + busy nodes, per worker node). It reacts to congestion it can
// see but is blind to middleware quality: a grid with a slow but
// lightly-queued UI looks as good as a fast one. Ties resolve to the
// lowest index.
func LeastBacklog() Policy { return leastBacklog{} }

type leastBacklog struct{}

func (leastBacklog) Name() string { return "least-backlog" }

func (leastBacklog) readsAffinity() bool { return false }

func (leastBacklog) Pick(views []GridView, exclude int) int {
	return pickArgmin(views, exclude, func(v GridView) float64 {
		return v.Load.Occupancy()
	})
}

// pickArgmin returns the index minimizing score over the strongest
// non-empty candidate tier: up and not excluded, then up, then not
// excluded, then every view. The tiers encode the shared avoidance
// order of the stateless argmin policies — a dark grid is skipped while
// any grid is up, an excluded grid while any alternative exists — with
// ties resolving to the lowest index as always. Storage-darkness is
// deliberately NOT a tier: argmin policies stay storage-blind unless
// their score prices it in (RankedSafe does; Ranked is the control arm
// that does not).
func pickArgmin(views []GridView, exclude int, score func(GridView) float64) int {
	tiers := [...]func(GridView) bool{
		func(v GridView) bool { return !v.Down && v.Index != exclude },
		func(v GridView) bool { return !v.Down },
		func(v GridView) bool { return v.Index != exclude },
		func(GridView) bool { return true },
	}
	for _, ok := range tiers {
		best, bestScore := -1, 0.0
		for _, v := range views {
			if !ok(v) {
				continue
			}
			if s := score(v); best < 0 || s < bestScore {
				best, bestScore = v.Index, s
			}
		}
		if best >= 0 {
			return best
		}
	}
	return 0 // unreachable: the last tier accepts everything
}

// rankFloor is the additive floor of the overhead-ranked policy, in
// seconds. It plays exactly the role of the cluster ranker's rankFloor
// (internal/grid/cluster.go): on a fresh federation every grid's observed
// overhead is zero, and a bare overhead×backlog product would rank every
// idle grid exactly 0.0 — the multiplicative backlog terms would be dead
// and the strict argmin would starve every grid but the first. Adding the
// floor before scaling makes the unobserved rank the backlog signal
// itself, so an uncharacterized federation degrades to backlog spreading
// instead of herding onto grid 0; once real observations accumulate
// (overheads are minutes, the floor is one second) the observed terms
// dominate.
const rankFloor = 1.0

// Ranked returns the locality-aware overhead-ranked policy. Each grid is
// scored by the wait a new job should expect there, estimated from the
// grid's observed per-grid overheads — the EWMAs of the UI submission
// phase and of the batch-queue phase — each scaled by the backlog
// currently in front of that phase, plus the estimated cost of moving the
// job's data there:
//
//	rank = (submitEWMA + rankFloor) × (1 + pendingSubmits)
//	     + queueEWMA × (1 + queuedJobs/nodes)
//	     + xferEst × stretch
//
// and the submission goes to the argmin. The UI term multiplies by the
// absolute UI backlog because submission is serialized — every pending
// request costs a full submit latency — while the queue term normalizes
// by capacity, since batch queues drain in parallel across worker nodes.
// The transfer term (GridView.XferEst) is the serialized non-local fetch
// time the job's stage-in would nominally pay on that grid, in the same
// seconds as the overhead terms, scaled by the grid's observed
// congestion stretch (Telemetry.Stretch: the EWMA of observed/nominal
// fetch cost, exactly 1 without a contended fabric): the broker trades a
// busy-but-local grid against an idle-but-remote one at the price its
// own jobs have actually been paying. On a federation with
// uniformly-resident data every grid's transfer term is equal, the argmin
// is unchanged, and the policy decays to the locality-blind ranking
// exactly (see RankedLocalityBlind). Ties resolve to the lowest index.
func Ranked() Policy { return ranked{} }

// RankedLocalityBlind returns the overhead-ranked policy without the
// transfer-cost term — the PR 3 ranking, kept as the control arm of
// locality experiments: comparing it against Ranked on a skewed-replica
// federation isolates exactly what data-awareness buys.
func RankedLocalityBlind() Policy { return ranked{blind: true} }

// RankedSafe returns the replica-safety-aware variant of Ranked: the same
// overhead and transfer terms, plus two storage-safety penalties. A
// storage-dark grid is penalized by a flat storageDarkPenalty — during an
// SE outage the dark grid's affinity signals vanish (nothing can be
// planned there) and the blind ranking herds onto it as if staging were
// free, exactly when every stage-in there must fail. And placements
// whose inputs' last live copies must cross non-local links pay
// safetyWeight times that fragile fetch time (GridView.FragileEst) — the
// broker weighs "is my input's only copy on a flaky remote SE" alongside
// proximity, preferring a grid where the fragile bytes are already
// resident over one that must pull them across a link a single SE death
// would sever mid-fetch. With no storage outage and every input safely
// replicated (or unplaced) both penalties are zero on all views and the
// ranking equals Ranked exactly.
func RankedSafe() Policy { return ranked{safe: true} }

// safetyWeight scales the replica-safety penalty of RankedSafe relative
// to the nominal fetch seconds it is expressed in: a fragile fetch costs
// its nominal time plus this multiple of it, pricing in the expected
// re-staging (with no survivor to re-stage from) a mid-fetch SE death
// would cause.
const safetyWeight = 2.0

// storageDarkPenalty (seconds) is RankedSafe's flat score penalty on a
// storage-dark grid: far above any realistic overhead score, so a
// storage-live grid always outranks a storage-dark one, while an
// all-storage-dark federation still resolves by the underlying ranking
// rather than refusing to pick.
const storageDarkPenalty = 3600.0

type ranked struct {
	blind bool
	safe  bool
}

func (p ranked) Name() string {
	if p.blind {
		return "ranked-blind"
	}
	if p.safe {
		return "ranked-safe"
	}
	return "overhead-ranked"
}

func (p ranked) readsAffinity() bool { return !p.blind }

func (p ranked) Pick(views []GridView, exclude int) int {
	return pickArgmin(views, exclude, func(v GridView) float64 {
		queued := float64(v.Load.QueuedJobs)
		if v.Load.TotalNodes > 0 {
			queued /= float64(v.Load.TotalNodes)
		}
		score := (v.Telemetry.SubmitEWMA.Seconds()+rankFloor)*(1+float64(v.Load.PendingSubmits)) +
			v.Telemetry.QueueEWMA.Seconds()*(1+queued)
		if !p.blind {
			// The transfer term is the nominal serialized fetch time
			// scaled by the grid's observed congestion stretch — exactly
			// the nominal estimate on an uncontended fabric (stretch 1).
			score += v.XferEst.Seconds() * v.Telemetry.Stretch()
		}
		if p.safe {
			if v.StorageDown {
				score += storageDarkPenalty
			}
			score += safetyWeight * v.FragileEst.Seconds()
		}
		return score
	})
}

// Pinned returns the degenerate policy that sends every submission to one
// grid — the single-grid baseline federated scenarios are measured
// against ("the same load pinned to the busiest grid"). When the pinned
// grid is excluded (it just failed the job) and an alternative exists, the
// next grid in configuration order is used.
func Pinned(index int) Policy { return pinned{index} }

type pinned struct{ index int }

func (p pinned) Name() string { return fmt.Sprintf("pinned:%d", p.index) }

func (p pinned) readsAffinity() bool { return false }

func (p pinned) Pick(views []GridView, exclude int) int {
	idx := p.index
	if idx < 0 || idx >= len(views) {
		idx = 0
	}
	// The scan starts at the pinned grid, so it wins whenever it is
	// eligible and the fallback walks configuration order from it.
	if j := scanUp(views, idx, exclude); j >= 0 {
		return j
	}
	// Everything is dark: the historical exclusion step.
	if idx == exclude && len(views) > 1 {
		idx = (idx + 1) % len(views)
	}
	return idx
}
