package federation

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// twoStorageGridSpecs returns two identical quiet member grids.
func twoStorageGridSpecs() []GridSpec {
	specs := make([]GridSpec, 2)
	for i := range specs {
		cfg := testGridConfig(8, 2*time.Second)
		cfg.Seed = uint64(70 + i)
		specs[i] = GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	return specs
}

// TestSEOutageScenarios is the table-driven storage-outage suite of the
// acceptance criteria: a permanent SE outage strands the only replica of
// a job's input. Without repair the job must fail terminally with
// ErrReplicaLost after burning its re-staging budget — and must NOT be
// re-brokered, the data being equally lost everywhere. With a k=2
// replication floor the same scenario repairs the file onto the healthy
// grid before the outage, every job completes, no replica is ever
// reported lost, and the disturbed span stays within 2x the clean one.
func TestSEOutageScenarios(t *testing.T) {
	const (
		file   = "gfn://solo"
		fileMB = 60
		downAt = 60 * time.Second // after the 35 s repair transfer lands
	)
	run := func(t *testing.T, minReplicas int, outages []Outage) (*Federation, []*grid.JobRecord) {
		t.Helper()
		eng := sim.NewEngine()
		f, err := New(eng, Config{
			Grids:       twoStorageGridSpecs(),
			Policy:      Pinned(0),
			Rebroker:    2,
			Outages:     outages,
			MinReplicas: minReplicas,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.Catalog().RegisterAt(file, fileMB, grid.Site{Grid: "g1"})
		const nJobs = 3
		finals := make([]*grid.JobRecord, nJobs)
		for i := 0; i < nJobs; i++ {
			i := i
			eng.Schedule(sim.Time(70*time.Second)+sim.Time(i)*sim.Time(time.Second), func() {
				f.Submit(grid.JobSpec{
					Name:    fmt.Sprintf("job%d", i),
					Inputs:  []string{file},
					Runtime: 10 * time.Second,
				}, func(r *grid.JobRecord) { finals[i] = r })
			})
		}
		eng.Run()
		for i, r := range finals {
			if r == nil {
				t.Fatalf("job%d never reached a terminal state", i)
			}
		}
		return f, finals
	}
	outage := []Outage{{Grid: "g1", At: downAt, Storage: true}} // never recovers

	t.Run("single-replica-loss", func(t *testing.T) {
		f, finals := run(t, 0, outage)
		for _, r := range finals {
			if r.Status != grid.StatusFailed || !errors.Is(r.Err, grid.ErrReplicaLost) {
				t.Errorf("%s: status %v err %v, want a terminal ErrReplicaLost failure", r.Spec.Name, r.Status, r.Err)
			}
			if r.Restages != 4 {
				t.Errorf("%s: %d re-staging rounds before giving up, want the default budget of 4", r.Spec.Name, r.Restages)
			}
		}
		// The shared catalog makes the loss global: re-brokering a lost
		// replica would just fail again elsewhere, so none may happen.
		for i := 0; i < f.Size(); i++ {
			if n := f.Telemetry(i).Rebrokered; n != 0 {
				t.Errorf("grid %d re-brokered %d replica-lost jobs", i, n)
			}
		}
		if f.Telemetry(1).Dispatched != 0 {
			t.Error("work was dispatched to the storage-dark grid's pipeline")
		}
		if got := f.Grid(0).Restages(); got != 12 {
			t.Errorf("g0 accounted %d re-staging rounds, want 3 jobs x 4", got)
		}
	})

	t.Run("k2-repair-prevents-loss", func(t *testing.T) {
		f, finals := run(t, 2, outage)
		for _, r := range finals {
			if r.Status != grid.StatusCompleted {
				t.Errorf("%s: status %v err %v, want completion via the repaired copy", r.Spec.Name, r.Status, r.Err)
			}
			if errors.Is(r.Err, grid.ErrReplicaLost) {
				t.Errorf("%s: replica reported lost despite the k=2 floor", r.Spec.Name)
			}
		}
		if f.Repairs() != 1 || f.RepairedMB() != fileMB {
			t.Errorf("repairs = %d (%v MB), want exactly one %v MB copy", f.Repairs(), f.RepairedMB(), fileMB)
		}
		if !hasSite(f.Catalog().Replicas(file), grid.Site{Grid: "g0"}) {
			t.Error("the repair copy never landed on g0")
		}

		clean, cleanFinals := run(t, 2, nil)
		_ = clean
		span := func(recs []*grid.JobRecord) sim.Time {
			var last sim.Time
			for _, r := range recs {
				if r.Completed > last {
					last = r.Completed
				}
			}
			return last
		}
		if s, cs := span(finals), span(cleanFinals); s > 2*cs {
			t.Errorf("repaired span %v more than doubles the clean span %v", s, cs)
		}
	})
}

func hasSite(reps []grid.Replica, site grid.Site) bool {
	for _, r := range reps {
		if r.Site == site {
			return true
		}
	}
	return false
}

// TestComputeDarkGridFailsFetches pins the satellite fix: a grid taken
// fully dark (SetDown — a compute/middleware outage) must darken its
// storage elements with it, so fetches sourced from it fail instead of
// serving data from a powered-off site. The only replica living there,
// jobs elsewhere burn their re-staging budget and fail terminally with
// ErrReplicaLost — and are not re-brokered despite the budget for it.
func TestComputeDarkGridFailsFetches(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{Grids: twoStorageGridSpecs(), Policy: Pinned(0), Rebroker: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.Catalog().RegisterAt("gfn://f", 60, grid.Site{Grid: "g1"})
	f.SetDown(1)
	if !f.StorageDown(1) {
		t.Fatal("a fully dark grid does not report its storage dark")
	}
	var final *grid.JobRecord
	f.Submit(grid.JobSpec{Name: "consumer", Inputs: []string{"gfn://f"}, Runtime: time.Second},
		func(r *grid.JobRecord) { final = r })
	eng.Run()
	if final == nil {
		t.Fatal("job never terminated")
	}
	if !errors.Is(final.Err, grid.ErrReplicaLost) {
		t.Fatalf("err = %v, want ErrReplicaLost: the dark grid's replica was fetched", final.Err)
	}
	if f.Telemetry(0).Rebrokered != 0 {
		t.Error("a replica-lost job was re-brokered")
	}
}

// TestMidFetchSEDeathRestagesFromSurvivor pins the in-flight leg check:
// a WAN fetch is in progress when its source SE dies, the leg fails at
// completion, and one backed-off re-staging round re-plans onto the
// surviving replica — with the transfer accounting describing the final
// successful round only (the WAN fetch is accounted once, not doubled by
// the dead first attempt).
func TestMidFetchSEDeathRestagesFromSurvivor(t *testing.T) {
	specs := make([]GridSpec, 3)
	for i := range specs {
		cfg := testGridConfig(8, 2*time.Second)
		cfg.Seed = uint64(80 + i)
		specs[i] = GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids:      specs,
		Policy:     Pinned(0),
		WANStreams: 1,
		// The fetch leg runs [10 s, 135 s]: UI 2 + broker 3 + dispatch 5,
		// then 240 MB at 2 MB/s + 5 s latency. The source dies at 130 s,
		// inside the leg, and never recovers.
		Outages: []Outage{{Grid: "g1", At: 130 * time.Second, Storage: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const file = "gfn://big"
	f.Catalog().RegisterAt(file, 240, grid.Site{Grid: "g1"})
	f.Catalog().AddReplica(file, grid.Site{Grid: "g2"})
	var final *grid.JobRecord
	f.Submit(grid.JobSpec{Name: "reader", Inputs: []string{file}, Runtime: 10 * time.Second},
		func(r *grid.JobRecord) { final = r })
	eng.Run()

	if final == nil || final.Status != grid.StatusCompleted {
		t.Fatalf("job did not complete: %+v", final)
	}
	if final.Restages != 1 {
		t.Errorf("restages = %d, want exactly one re-staging round", final.Restages)
	}
	if final.Attempts != 1 {
		t.Errorf("attempts = %d, want the re-stage to stay within one attempt", final.Attempts)
	}
	// One 125 s WAN fetch in the books — the dead round's leg is not
	// folded into the final accounting.
	wantFetch := 125 * time.Second
	if final.WANFetch != wantFetch || final.RemoteFetch != wantFetch {
		t.Errorf("WANFetch/RemoteFetch = %v/%v, want %v once", final.WANFetch, final.RemoteFetch, wantFetch)
	}
	if final.WANWait != 0 {
		t.Errorf("WANWait = %v on an uncontended run, want 0", final.WANWait)
	}
	if got := f.Grid(0).Restages(); got != 1 {
		t.Errorf("g0 cluster accounting shows %d restages, want 1", got)
	}
	// The first round died at 135 s, the retry fired at 165 s and fetched
	// from g2: completion is 165+125 (fetch) + 10 (compute) = 300 s.
	if final.Completed != sim.Time(300*time.Second) {
		t.Errorf("completed at %v, want exactly 300s", time.Duration(final.Completed))
	}
}

// seFlapScenario runs the correlated-SE-failure comparison arm: jobs
// arrive steadily, every job reads the one hot file whose only replica
// lives on g1, and g1's storage flaps on a fixed cycle (dark 240 s, up
// 360 s). g0 has a much slower UI, so an overhead ranking must actively
// weigh storage safety to leave the fast-but-flaky grid.
func seFlapScenario(t *testing.T, policy Policy) (*Federation, []*grid.JobRecord) {
	t.Helper()
	slow := testGridConfig(8, 30*time.Second)
	slow.Seed = 90
	fast := testGridConfig(8, 2*time.Second)
	fast.Seed = 91
	var outages []Outage
	for k := 0; k < 10; k++ {
		outages = append(outages, Outage{
			Grid: "g1", At: 300*time.Second + time.Duration(k)*600*time.Second,
			For: 240 * time.Second, Storage: true,
		})
	}
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids:   []GridSpec{{Name: "g0", Config: slow}, {Name: "g1", Config: fast}},
		Policy:  policy,
		Outages: outages,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Catalog().RegisterAt("gfn://hot", 240, grid.Site{Grid: "g1"})
	const nJobs = 90
	finals := make([]*grid.JobRecord, nJobs)
	for i := 0; i < nJobs; i++ {
		i := i
		eng.Schedule(sim.Time(i)*sim.Time(60*time.Second), func() {
			f.Submit(grid.JobSpec{
				Name:    fmt.Sprintf("job%02d", i),
				Inputs:  []string{"gfn://hot"},
				Runtime: 10 * time.Second,
			}, func(r *grid.JobRecord) { finals[i] = r })
		})
	}
	eng.Run()
	for i, r := range finals {
		if r == nil {
			t.Fatalf("job%02d never terminated", i)
		}
	}
	return f, finals
}

// TestRankedSafeBeatsRankedUnderSEFlaps is the acceptance comparison:
// under correlated SE failures (every element of g1 dies together, on a
// cycle), the safety-aware ranked broker completes strictly more jobs
// than the safety-blind one. The blind ranking keeps herding onto the
// storage-dark grid — during an outage the dark grid's affinity signals
// vanish, making it look cheap exactly when staging there cannot succeed
// — while the safe ranking places jobs on the slow-but-healthy grid and
// lets bounded re-staging ride out the windows.
func TestRankedSafeBeatsRankedUnderSEFlaps(t *testing.T) {
	completed := func(finals []*grid.JobRecord) int {
		n := 0
		for _, r := range finals {
			if r.Status == grid.StatusCompleted {
				n++
			}
		}
		return n
	}
	_, blindFinals := seFlapScenario(t, Ranked())
	_, safeFinals := seFlapScenario(t, RankedSafe())
	blind, safe := completed(blindFinals), completed(safeFinals)
	t.Logf("completed jobs: ranked-safe %d/90, overhead-ranked %d/90", safe, blind)
	if safe <= blind {
		t.Errorf("ranked-safe completed %d jobs, overhead-ranked %d — safety awareness bought nothing", safe, blind)
	}
	if safe < 80 {
		t.Errorf("ranked-safe completed only %d/90 jobs under SE flaps", safe)
	}
}

// TestSEFlapDeterminism pins the storage-outage machinery bit-for-bit:
// same configuration, same seeds — same per-attempt schedule, errors and
// re-staging counts across runs.
func TestSEFlapDeterminism(t *testing.T) {
	fp := func(f *Federation) uint64 {
		h := fnv.New64a()
		for _, rec := range f.Records() {
			fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|%v\n",
				rec.Spec.Name, rec.Grid, rec.Submitted, rec.Completed, rec.Restages, rec.Status, rec.Err)
		}
		return h.Sum64()
	}
	fa, _ := seFlapScenario(t, RankedSafe())
	fb, _ := seFlapScenario(t, RankedSafe())
	if a, b := fp(fa), fp(fb); a != b {
		t.Fatalf("SE-flap scenario not deterministic: %#x vs %#x", a, b)
	}
}

// TestRepairTopsUpToFloor pins the repair loop's sequential top-up: a
// single-copy registration under a k=3 floor is repaired one transfer at
// a time until three grids hold live copies.
func TestRepairTopsUpToFloor(t *testing.T) {
	specs := make([]GridSpec, 3)
	for i := range specs {
		cfg := testGridConfig(4, 2*time.Second)
		cfg.Seed = uint64(95 + i)
		specs[i] = GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	eng := sim.NewEngine()
	f, err := New(eng, Config{Grids: specs, MinReplicas: 3})
	if err != nil {
		t.Fatal(err)
	}
	f.Catalog().RegisterAt("gfn://f", 60, grid.Site{Grid: "g1"})
	eng.Run()
	if f.Repairs() != 2 || f.RepairedMB() != 120 {
		t.Errorf("repairs = %d (%v MB), want 2 copies totalling 120 MB", f.Repairs(), f.RepairedMB())
	}
	reps := f.Catalog().Replicas("gfn://f")
	if len(reps) != 3 {
		t.Fatalf("replica set after repair = %+v, want copies on all three grids", reps)
	}
}

// TestStorageOutageValidation pins the construction-time checks of the
// storage configuration: full and storage windows of one grid are
// independent dimensions and may overlap, same-mode windows may not, and
// negative capacity or floor are rejected.
func TestStorageOutageValidation(t *testing.T) {
	specs := []GridSpec{{Name: "a", Config: testGridConfig(4, 2*time.Second)}}
	mixed := []Outage{
		{Grid: "a", At: time.Hour, For: time.Hour},
		{Grid: "a", At: time.Hour, For: 2 * time.Hour, Storage: true},
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Outages: mixed}); err != nil {
		t.Errorf("overlapping full and storage windows were rejected: %v", err)
	}
	sameMode := []Outage{
		{Grid: "a", At: time.Hour, For: 2 * time.Hour, Storage: true},
		{Grid: "a", At: 2 * time.Hour, For: time.Hour, Storage: true},
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Outages: sameMode}); err == nil {
		t.Error("overlapping storage windows were accepted")
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, SECapacityMB: -1}); err == nil {
		t.Error("negative SECapacityMB was accepted")
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, MinReplicas: -1}); err == nil {
		t.Error("negative MinReplicas was accepted")
	}
}

// TestStorageOutageWindowRecovers pins the window lifecycle on the
// storage dimension: dark inside the window, live outside, with the
// compute dimension untouched throughout.
func TestStorageOutageWindowRecovers(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids:   twoStorageGridSpecs(),
		Outages: []Outage{{Grid: "g1", At: 10 * time.Minute, For: 10 * time.Minute, Storage: true}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, probe := range []struct {
		at   time.Duration
		dark bool
	}{{5 * time.Minute, false}, {15 * time.Minute, true}, {25 * time.Minute, false}} {
		eng.RunUntil(sim.Time(probe.at))
		if f.StorageDown(1) != probe.dark {
			t.Errorf("StorageDown at %v = %v, want %v", probe.at, f.StorageDown(1), probe.dark)
		}
		if f.Down(1) {
			t.Errorf("storage-only outage took the compute dimension dark at %v", probe.at)
		}
	}
}
