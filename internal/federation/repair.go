package federation

import (
	"repro/internal/grid"
	"repro/internal/sim"
)

// repairNeeded is the catalog's repair hook (armed by Config.MinReplicas
// > 1): the named file just dropped below the replica floor — at
// registration with too few initial copies, or because an SE death or
// grid outage darkened enough of its replica set. One repair transfer is
// scheduled at a time per file; each landed copy re-checks the floor, so
// a file registered with one replica under MinReplicas 3 is topped up by
// two sequential copies.
func (f *Federation) repairNeeded(name string) {
	if f.repairing[name] {
		return
	}
	f.scheduleRepair(name)
}

// scheduleRepair copies one replica of the named file onto the first
// member grid (configuration order) that is fully alive and does not
// already hold a live copy, paying the link model's transfer time from
// the best surviving replica — the live copy with the cheapest link into
// the chosen target, lexical site order breaking ties — as a pure delay. Repair traffic does not
// occupy the contended WAN fabric: it models an asynchronous replica
// manager trickling copies in the background, not a job's synchronous
// stage-in (documented in DESIGN.md; folding it into the fabric is an
// open item). No-ops when the file has no live source left (it is lost —
// repair cannot invent data), when an unplaced replica exists (local
// everywhere, nothing to repair), or when no eligible target remains.
func (f *Federation) scheduleRepair(name string) {
	size, ok := f.catalog.Lookup(name)
	if !ok {
		return
	}
	live := f.catalog.LiveReplicas(name)
	if len(live) == 0 {
		return
	}
	for _, r := range live {
		if (r.Site == grid.Site{}) {
			return
		}
	}
	if len(live) >= f.cfg.MinReplicas {
		return
	}
	// Capacity-aware targeting: among the fully-alive member grids not
	// already holding a live copy, pick the one whose grid-level SE (the
	// element repair copies land on) is least full right now, so repair
	// traffic spreads by free space instead of piling every copy onto the
	// first healthy grid until its eviction policy thrashes. Ties —
	// always, under passive storage, where every gauge reads zero —
	// resolve to the lexically smallest grid name, which for the
	// auto-assigned "gridNN" names is exactly the historical
	// first-healthy-in-configuration-order choice.
	target := -1
	var targetUsed float64
	for i := range f.grids {
		if f.grids[i].Down() || f.grids[i].StorageDown() {
			continue
		}
		held := false
		for _, r := range live {
			if r.Site.Grid == f.names[i] {
				held = true
				break
			}
		}
		if held {
			continue
		}
		used := f.catalog.SEUsedMB(grid.Site{Grid: f.names[i]})
		if target < 0 || used < targetUsed ||
			(used == targetUsed && f.names[i] < f.names[target]) {
			target, targetUsed = i, used
		}
	}
	if target < 0 {
		return
	}
	// Best surviving source: the live replica with the cheapest link into
	// the chosen target. LiveReplicas returns deterministic site order, so
	// keeping the first minimum is the lexical tie-break.
	dst := grid.Site{Grid: f.names[target]}
	links := f.catalog.Links()
	src := live[0].Site
	d := links.Link(src, dst).Cost(size)
	for _, r := range live[1:] {
		if c := links.Link(r.Site, dst).Cost(size); c < d {
			src, d = r.Site, c
		}
	}
	f.repairing[name] = true
	f.eng.Schedule(sim.Time(d), func() {
		delete(f.repairing, name)
		// The file may have been unregistered while the copy was in
		// flight; repair has nothing left to maintain.
		if !f.catalog.Has(name) {
			return
		}
		// The world may have moved during the transfer: if the source died
		// mid-copy or the target went dark, a copy from/to a dead SE never
		// lands — but the file is still below the floor, so fall through to
		// repairNeeded and re-try from a surviving replica instead of
		// stranding the file until an unrelated below-floor event fires.
		if !f.catalog.SiteDark(src) && !f.catalog.SiteDark(dst) {
			if f.catalog.AddReplica(name, dst) {
				f.repairs++
				f.repairedMB += size
			}
		}
		// Top up toward the floor (or re-try elsewhere if the copy failed
		// or replicas died while it was in flight).
		f.repairNeeded(name)
	})
}
