package federation

import (
	"repro/internal/grid"
	"repro/internal/sim"
)

// repairNeeded is the catalog's repair hook (armed by Config.MinReplicas
// > 1): the named file just dropped below the replica floor — at
// registration with too few initial copies, or because an SE death or
// grid outage darkened enough of its replica set. One repair transfer is
// scheduled at a time per file; each landed copy re-checks the floor, so
// a file registered with one replica under MinReplicas 3 is topped up by
// two sequential copies.
func (f *Federation) repairNeeded(name string) {
	if f.repairing[name] {
		return
	}
	f.scheduleRepair(name)
}

// scheduleRepair copies one replica of the named file onto the first
// member grid (configuration order) that is fully alive and does not
// already hold a live copy, paying the link model's transfer time from
// the best surviving replica as a pure delay. Repair traffic does not
// occupy the contended WAN fabric: it models an asynchronous replica
// manager trickling copies in the background, not a job's synchronous
// stage-in (documented in DESIGN.md; folding it into the fabric is an
// open item). No-ops when the file has no live source left (it is lost —
// repair cannot invent data), when an unplaced replica exists (local
// everywhere, nothing to repair), or when no eligible target remains.
func (f *Federation) scheduleRepair(name string) {
	size, ok := f.catalog.Lookup(name)
	if !ok {
		return
	}
	live := f.catalog.LiveReplicas(name)
	if len(live) == 0 {
		return
	}
	for _, r := range live {
		if (r.Site == grid.Site{}) {
			return
		}
	}
	if len(live) >= f.cfg.MinReplicas {
		return
	}
	// Capacity-aware targeting: among the fully-alive member grids not
	// already holding a live copy, pick the one whose grid-level SE (the
	// element repair copies land on) is least full right now, so repair
	// traffic spreads by free space instead of piling every copy onto the
	// first healthy grid until its eviction policy thrashes. Ties —
	// always, under passive storage, where every gauge reads zero —
	// resolve to the lexically smallest grid name, which for the
	// auto-assigned "gridNN" names is exactly the historical
	// first-healthy-in-configuration-order choice.
	target := -1
	var targetUsed float64
	for i := range f.grids {
		if f.grids[i].Down() || f.grids[i].StorageDown() {
			continue
		}
		held := false
		for _, r := range live {
			if r.Site.Grid == f.names[i] {
				held = true
				break
			}
		}
		if held {
			continue
		}
		used := f.catalog.SEUsedMB(grid.Site{Grid: f.names[i]})
		if target < 0 || used < targetUsed ||
			(used == targetUsed && f.names[i] < f.names[target]) {
			target, targetUsed = i, used
		}
	}
	if target < 0 {
		return
	}
	src := live[0].Site
	dst := grid.Site{Grid: f.names[target]}
	d := f.catalog.Links().Link(src, dst).Cost(size)
	f.repairing[name] = true
	f.eng.Schedule(sim.Time(d), func() {
		delete(f.repairing, name)
		// The world may have moved during the transfer: the file may be
		// unregistered, the source may have died mid-copy, or the target
		// may have gone dark — a copy from/to a dead SE never lands.
		if !f.catalog.Has(name) || f.catalog.SiteDark(src) || f.catalog.SiteDark(dst) {
			return
		}
		if f.catalog.AddReplica(name, dst) {
			f.repairs++
			f.repairedMB += size
		}
		// Top up toward the floor (or re-try elsewhere if replicas died
		// while this copy was in flight).
		f.repairNeeded(name)
	})
}
