package federation

import (
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// twoGridSpecs returns two identical quiet member grids, so placement
// effects are attributable to the policies' locality terms alone.
func twoGridSpecs() []GridSpec {
	mk := func(seed uint64) grid.Config {
		cfg := grid.IdealConfig(8)
		cfg.Overheads = grid.OverheadConfig{
			SubmitMean:   2 * time.Second,
			BrokerMean:   3 * time.Second,
			DispatchMean: 5 * time.Second,
		}
		cfg.BrokerSlots = 4
		cfg.Seed = seed
		return cfg
	}
	return []GridSpec{
		{Name: "west", Config: mk(11)},
		{Name: "east", Config: mk(12)},
	}
}

// TestRankedFollowsData pins the broker's transfer-cost term: on two
// otherwise identical grids, a job whose input replica lives on the
// second grid is brokered there by the locality-aware Ranked policy,
// while the locality-blind variant resolves the tie to grid 0.
func TestRankedFollowsData(t *testing.T) {
	run := func(policy Policy) (*Federation, *grid.JobRecord) {
		eng := sim.NewEngine()
		f, err := New(eng, Config{
			Grids:  twoGridSpecs(),
			Policy: policy,
			Links:  &grid.Links{WAN: grid.Link{MBps: 1, Latency: 10 * time.Second}},
		})
		if err != nil {
			t.Fatal(err)
		}
		f.Catalog().RegisterAt("gfn://data", 60, grid.Site{Grid: "east", Cluster: "ideal"})
		var final *grid.JobRecord
		f.Submit(grid.JobSpec{Name: "j", Inputs: []string{"gfn://data"}, Runtime: time.Second},
			func(r *grid.JobRecord) { final = r })
		eng.Run()
		if final == nil || final.Status != grid.StatusCompleted {
			t.Fatalf("job did not complete: %+v", final)
		}
		return f, final
	}

	aware, rec := run(Ranked())
	if aware.Telemetry(1).Dispatched != 1 || aware.Telemetry(0).Dispatched != 0 {
		t.Fatalf("locality-aware ranked dispatched to %v/%v, want the data's grid",
			aware.Telemetry(0).Dispatched, aware.Telemetry(1).Dispatched)
	}
	if rec.RemoteInMB != 0 {
		t.Fatalf("job at the data fetched %v MB over the WAN", rec.RemoteInMB)
	}

	blind, rec := run(RankedLocalityBlind())
	if blind.Telemetry(0).Dispatched != 1 {
		t.Fatalf("locality-blind ranked dispatched to grid %v, want the index-0 tie-break",
			blind.Telemetry(1).Dispatched)
	}
	if rec.RemoteInMB != 60 {
		t.Fatalf("blind placement fetched %v MB over the WAN, want 60", rec.RemoteInMB)
	}
	// The observed WAN traffic lands in the executing grid's telemetry.
	if blind.Telemetry(0).RemoteInMB != 60 {
		t.Fatalf("telemetry RemoteInMB = %v, want 60", blind.Telemetry(0).RemoteInMB)
	}
	if aware.Telemetry(1).RemoteInMB != 0 {
		t.Fatalf("aware telemetry RemoteInMB = %v, want 0", aware.Telemetry(1).RemoteInMB)
	}
}

// TestGridViewAffinity pins the affinity signals the federation computes
// per pick: resident bytes count as affinity, the rest as estimated
// fetch time under the link model.
func TestGridViewAffinity(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: twoGridSpecs(),
		Links: &grid.Links{WAN: grid.Link{MBps: 2, Latency: 5 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Catalog().RegisterAt("gfn://a", 30, grid.Site{Grid: "west", Cluster: "ideal"})
	f.Catalog().Register("gfn://b", 7) // unplaced: local everywhere

	spec := grid.JobSpec{Inputs: []string{"gfn://a", "gfn://b"}}
	probe := &probePolicy{}
	f.policy = probe
	f.pick(spec, -1)

	west, east := probe.views[0], probe.views[1]
	if west.AffinityMB != 37 || west.XferEst != 0 {
		t.Fatalf("west view = affinity %v, xfer %v; want 37, 0", west.AffinityMB, west.XferEst)
	}
	if east.AffinityMB != 7 {
		t.Fatalf("east affinity = %v, want 7 (only the unplaced file)", east.AffinityMB)
	}
	if want := 5*time.Second + 15*time.Second; east.XferEst != want {
		t.Fatalf("east XferEst = %v, want %v", east.XferEst, want)
	}
}

// probePolicy records the views it was shown and always picks grid 0.
type probePolicy struct{ views []GridView }

func (p *probePolicy) Name() string { return "probe" }

func (p *probePolicy) Pick(views []GridView, exclude int) int {
	p.views = append([]GridView(nil), views...)
	return 0
}

// TestLocalLinksRestoreFreeStaging pins the compatibility escape hatch:
// under grid.LocalLinks a cross-grid consumer stages a placed replica for
// free, exactly as the PR 3 shared catalog behaved.
func TestLocalLinksRestoreFreeStaging(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids:  twoGridSpecs(),
		Policy: Pinned(0),
		Links:  grid.LocalLinks(),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Catalog().RegisterAt("gfn://data", 500, grid.Site{Grid: "east", Cluster: "ideal"})
	var final *grid.JobRecord
	f.Submit(grid.JobSpec{Name: "j", Inputs: []string{"gfn://data"}, Runtime: time.Second},
		func(r *grid.JobRecord) { final = r })
	eng.Run()
	if final == nil || final.Status != grid.StatusCompleted {
		t.Fatalf("job did not complete: %+v", final)
	}
	if final.RemoteInMB != 0 || final.RemoteFetch != 0 {
		t.Fatalf("LocalLinks run paid a remote fetch: %v MB in %v", final.RemoteInMB, final.RemoteFetch)
	}
	// quiet overheads: submit 2 + broker 3 + dispatch 5 = 10s, no
	// transfer cost despite the 500 MB remote-only replica.
	if got, want := final.Overhead(), 10*time.Second; got != want {
		t.Fatalf("overhead = %v, want %v", got, want)
	}
}
