package federation

import (
	"errors"
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// fourGridSpecs returns four identical quiet member grids (different
// seeds), so outage effects are attributable to the scenario alone.
func fourGridSpecs() []GridSpec {
	specs := make([]GridSpec, 4)
	for i := range specs {
		cfg := testGridConfig(8, 2*time.Second)
		cfg.Seed = uint64(40 + i)
		specs[i] = GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	return specs
}

// outageRun is one enacted outage scenario: the final record of every
// job plus the federation for record/telemetry inspection.
type outageRun struct {
	f      *Federation
	finals []*grid.JobRecord
}

// runOutageScenario submits 20 waves of three 60 s jobs (one wave per
// virtual minute) over a 4-grid federation and runs the engine dry. The
// waves matter: each submission synchronously grows its grid's UI
// backlog, so every backlog-aware policy spreads a wave across grids and
// the whole federation — dark-grid-to-be included — always has work in
// flight. Outages come either from the federation config or from
// manually scheduled SetDown/SetUp events.
func runOutageScenario(t *testing.T, policy Policy, rebroker int, outages []Outage, manual bool) outageRun {
	t.Helper()
	eng := sim.NewEngine()
	cfg := Config{Grids: fourGridSpecs(), Policy: policy, Rebroker: rebroker}
	if !manual {
		cfg.Outages = outages
	}
	f, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if manual {
		for _, o := range outages {
			idx := -1
			for i := 0; i < f.Size(); i++ {
				if f.GridName(i) == o.Grid {
					idx = i
				}
			}
			idx, o := idx, o
			eng.Schedule(sim.Time(o.At), func() { f.SetDown(idx) })
			if o.For > 0 {
				eng.Schedule(sim.Time(o.At+o.For), func() { f.SetUp(idx) })
			}
		}
	}
	const nJobs = 60 // 20 waves × 3 jobs
	finals := make([]*grid.JobRecord, nJobs)
	done := 0
	for i := 0; i < nJobs; i++ {
		i := i
		eng.Schedule(sim.Time(i/3)*time.Minute, func() {
			f.Submit(grid.JobSpec{Name: fmt.Sprintf("job%03d", i), Runtime: time.Minute},
				func(r *grid.JobRecord) { finals[i] = r; done++ })
		})
	}
	eng.Run()
	if done != nJobs {
		t.Fatalf("only %d of %d jobs reached a terminal state", done, nJobs)
	}
	return outageRun{f: f, finals: finals}
}

// span returns the latest completion instant across final records.
func (r outageRun) span() sim.Time {
	var last sim.Time
	for _, rec := range r.finals {
		if rec.Completed > last {
			last = rec.Completed
		}
	}
	return last
}

// fingerprint hashes every attempt's identity and schedule, the basis of
// the outage determinism check.
func (r outageRun) fingerprint() uint64 {
	h := fnv.New64a()
	for _, rec := range r.f.Records() {
		fmt.Fprintf(h, "%s|%s|%d|%d|%d|%v\n", rec.Spec.Name, rec.Grid, rec.Submitted, rec.Completed, rec.Status, rec.Err)
	}
	return h.Sum64()
}

// TestGridOutageScenarios is the table-driven outage suite: a member grid
// goes dark mid-stream (by scheduled window or manual SetDown/SetUp) and
// the campaign of jobs must still complete via re-brokering, with no work
// routed to the dark grid during its window, in-flight casualties failing
// with ErrGridDown and moving elsewhere, and — when the window closes —
// the recovered grid rejoining the rotation.
func TestGridOutageScenarios(t *testing.T) {
	const (
		dark   = "g1"
		downAt = 290 * time.Second
		upAt   = 890 * time.Second // downAt + 600s window
	)
	window := []Outage{{Grid: dark, At: downAt, For: 600 * time.Second}}
	forever := []Outage{{Grid: dark, At: downAt}}
	cases := []struct {
		name       string
		policy     func() Policy // fresh instance per run (policies are stateful)
		rebroker   int
		outages    []Outage
		manual     bool
		wantRejoin bool
	}{
		{"window/round-robin", RoundRobin, 2, window, false, true},
		{"window/ranked", Ranked, 2, window, false, true},
		{"window/least-backlog", LeastBacklog, 2, window, false, true},
		{"window/manual-setdown", RoundRobin, 2, window, true, true},
		{"never-recovers/round-robin", RoundRobin, 2, forever, false, false},
		{"window/pinned-on-dark", func() Policy { return Pinned(1) }, 2, window, false, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			run := runOutageScenario(t, c.policy(), c.rebroker, c.outages, c.manual)

			upEnd := sim.Time(upAt)
			if c.outages[0].For == 0 {
				upEnd = 1 << 62 // never recovers: the window never closes
			}
			for _, rec := range run.finals {
				if rec.Status != grid.StatusCompleted {
					t.Errorf("job %s did not complete: %v (%v)", rec.Spec.Name, rec.Status, rec.Err)
				}
			}
			sawDarkPick, sawRejoin, sawCasualty := false, false, false
			for _, rec := range run.f.Records() {
				inWindow := rec.Submitted >= sim.Time(downAt) && rec.Submitted < upEnd
				if inWindow && rec.Grid == dark {
					sawDarkPick = true
				}
				if rec.Submitted >= upEnd && rec.Grid == dark {
					sawRejoin = true
				}
				if rec.Grid == dark && rec.Status == grid.StatusFailed && errors.Is(rec.Err, grid.ErrGridDown) {
					sawCasualty = true
				}
			}
			if sawDarkPick {
				t.Error("work was routed to the dark grid during its outage window")
			}
			if !sawCasualty {
				t.Error("no in-flight job on the dark grid failed with ErrGridDown (outage had no casualties to re-broker)")
			}
			darkIdx := -1
			for i := 0; i < run.f.Size(); i++ {
				if run.f.GridName(i) == dark {
					darkIdx = i
				}
			}
			if run.f.Telemetry(darkIdx).Rebrokered == 0 {
				t.Error("no job was re-brokered off the dark grid")
			}
			if c.wantRejoin && !sawRejoin {
				t.Error("recovered grid never rejoined the rotation")
			}
			if !c.wantRejoin && c.outages[0].For == 0 && sawRejoin {
				t.Error("a never-recovering grid received post-window work")
			}

			// Graceful degradation: the outage may stretch the span but
			// must not stall it — everything still completed above, and
			// the disturbed span stays within 2× the same policy's clean
			// (outage-free) span.
			clean := runOutageScenario(t, c.policy(), c.rebroker, nil, false)
			if run.span() < clean.span() {
				t.Errorf("outage span %v below the clean span %v — outage had no cost at all?", run.span(), clean.span())
			}
			if run.span() > 2*clean.span() {
				t.Errorf("outage span %v more than doubles the clean span %v", run.span(), clean.span())
			}
		})
	}
}

// TestOutageDeterminism pins the contended outage scenario bit-for-bit:
// same configuration, same seeds — same per-attempt schedule, grids and
// errors across runs.
func TestOutageDeterminism(t *testing.T) {
	window := []Outage{{Grid: "g1", At: 290 * time.Second, For: 600 * time.Second}}
	a := runOutageScenario(t, Ranked(), 2, window, false)
	b := runOutageScenario(t, Ranked(), 2, window, false)
	if fa, fb := a.fingerprint(), b.fingerprint(); fa != fb {
		t.Fatalf("outage scenario not deterministic: %#x vs %#x", fa, fb)
	}
}

// TestRecoveryAgesTelemetry pins the aging contract: recovery resets the
// smoothed observations (EWMAs, stretch, their counters) while keeping
// the cumulative dispatch accounting, so a recovered grid re-characterizes
// from scratch instead of ranking on stale pre-outage numbers.
func TestRecoveryAgesTelemetry(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: []GridSpec{
			{Name: "a", Config: testGridConfig(4, 2*time.Second)},
			{Name: "b", Config: testGridConfig(4, 2*time.Second)},
		},
		Policy: Pinned(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		f.Submit(job(i), func(*grid.JobRecord) {})
	}
	eng.Run()
	before := f.Telemetry(1)
	if before.Observed == 0 || before.SubmitEWMA == 0 {
		t.Fatalf("no telemetry accumulated before the outage: %+v", before)
	}

	f.SetDown(1)
	if !f.Down(1) {
		t.Fatal("SetDown did not mark the grid dark")
	}
	f.SetUp(1)
	if f.Down(1) {
		t.Fatal("SetUp did not recover the grid")
	}
	after := f.Telemetry(1)
	if after.Observed != 0 || after.SubmitEWMA != 0 || after.QueueEWMA != 0 ||
		after.FetchObserved != 0 || after.XferStretch != 0 {
		t.Errorf("recovery did not age out the smoothed telemetry: %+v", after)
	}
	if after.Stretch() != 1 {
		t.Errorf("aged-out stretch = %v, want the no-observation default 1", after.Stretch())
	}
	if after.Dispatched != before.Dispatched {
		t.Errorf("recovery dropped the cumulative dispatch count: %d vs %d", after.Dispatched, before.Dispatched)
	}
	// SetUp on an up grid is a no-op and must not re-age anything.
	f.Submit(job(99), func(*grid.JobRecord) {})
	eng.Run()
	obs := f.Telemetry(1).Observed
	f.SetUp(1)
	if f.Telemetry(1).Observed != obs {
		t.Error("SetUp on an up grid aged its telemetry")
	}
}

// TestAllGridsDownFailsTerminally pins the fully-dark edge: with every
// member dark, a submission still terminates (failing with ErrGridDown
// after burning its re-broker budget) instead of hanging or panicking.
func TestAllGridsDownFailsTerminally(t *testing.T) {
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids: []GridSpec{
			{Name: "a", Config: testGridConfig(4, 2*time.Second)},
			{Name: "b", Config: testGridConfig(4, 2*time.Second)},
		},
		Policy:   Ranked(),
		Rebroker: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetDown(0)
	f.SetDown(1)
	var final *grid.JobRecord
	f.Submit(job(0), func(r *grid.JobRecord) { final = r })
	eng.Run()
	if final == nil {
		t.Fatal("submission on a fully-dark federation never terminated")
	}
	if final.Status != grid.StatusFailed || !errors.Is(final.Err, grid.ErrGridDown) {
		t.Fatalf("final = %v (%v), want a terminal ErrGridDown failure", final.Status, final.Err)
	}
}

// TestTouchingOutageWindowsAnyOrder pins the boundary scheduling: two
// windows where one starts exactly when the other ends are legal, and —
// regardless of their order in the config — the grid is dark through
// both, because the earlier window's recovery is scheduled before the
// later window's start at their shared instant.
func TestTouchingOutageWindowsAnyOrder(t *testing.T) {
	for _, reversed := range []bool{false, true} {
		windows := []Outage{
			{Grid: "a", At: 10 * time.Minute, For: 10 * time.Minute},
			{Grid: "a", At: 20 * time.Minute, For: 10 * time.Minute},
		}
		if reversed {
			windows[0], windows[1] = windows[1], windows[0]
		}
		eng := sim.NewEngine()
		f, err := New(eng, Config{
			Grids:   []GridSpec{{Name: "a", Config: testGridConfig(4, 2*time.Second)}},
			Outages: windows,
		})
		if err != nil {
			t.Fatalf("reversed=%v: touching windows rejected: %v", reversed, err)
		}
		for _, probe := range []struct {
			at   time.Duration
			down bool
		}{{5 * time.Minute, false}, {15 * time.Minute, true}, {25 * time.Minute, true}, {35 * time.Minute, false}} {
			eng.RunUntil(sim.Time(probe.at))
			if f.Down(0) != probe.down {
				t.Errorf("reversed=%v: Down at %v = %v, want %v", reversed, probe.at, f.Down(0), probe.down)
			}
		}
	}
}

// TestPoliciesPreferUpExcludedOverDown pins the avoidance order on the
// bare Policy surface: with one up-but-excluded view and one dark view,
// every built-in policy must pick the up grid — downness is a harder
// constraint than re-broker exclusion.
func TestPoliciesPreferUpExcludedOverDown(t *testing.T) {
	views := []GridView{
		{Index: 0, Name: "up-excluded"},
		{Index: 1, Name: "dark", Down: true},
	}
	for _, p := range []Policy{RoundRobin(), LeastBacklog(), Ranked(), RankedLocalityBlind(), Pinned(1)} {
		if got := p.Pick(views, 0); got != 0 {
			t.Errorf("%s picked the dark grid %d over the up-but-excluded one", p.Name(), got)
		}
	}
}

// TestForeignEngineFabricRejected pins the construction-time fabric
// check: a pre-built fabric on a different engine would schedule every
// contended fetch on the wrong queue and silently stall the simulation,
// so New must reject it.
func TestForeignEngineFabricRejected(t *testing.T) {
	specs := []GridSpec{{Name: "a", Config: testGridConfig(4, 2*time.Second)}}
	foreign := grid.NewFabric(sim.NewEngine(), 1)
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Fabric: foreign}); err == nil {
		t.Error("a fabric on a foreign engine was accepted")
	}
	eng := sim.NewEngine()
	if _, err := New(eng, Config{Grids: specs, Fabric: grid.NewFabric(eng, 1)}); err != nil {
		t.Errorf("a fabric on the federation's own engine was rejected: %v", err)
	}
}

// TestOutageConfigValidation pins the construction-time checks.
func TestOutageConfigValidation(t *testing.T) {
	specs := []GridSpec{{Name: "a", Config: testGridConfig(4, 2*time.Second)}}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Outages: []Outage{{Grid: "ghost", At: time.Second}}}); err == nil {
		t.Error("outage naming an unknown grid was accepted")
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Outages: []Outage{{Grid: "a", At: -time.Second}}}); err == nil {
		t.Error("outage with a negative start was accepted")
	}
	// Overlapping windows of one grid would let the earlier window's
	// unconditional recovery revive a grid the later one holds dark.
	overlapping := []Outage{
		{Grid: "a", At: time.Hour, For: 2 * time.Hour},
		{Grid: "a", At: 2 * time.Hour, For: 2 * time.Hour},
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Outages: overlapping}); err == nil {
		t.Error("overlapping outage windows were accepted")
	}
	eclipsing := []Outage{
		{Grid: "a", At: time.Hour}, // never recovers
		{Grid: "a", At: 2 * time.Hour, For: time.Hour},
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Outages: eclipsing}); err == nil {
		t.Error("a window inside a never-recovering outage was accepted")
	}
	disjoint := []Outage{
		{Grid: "a", At: time.Hour, For: time.Hour},
		{Grid: "a", At: 3 * time.Hour, For: time.Hour},
	}
	if _, err := New(sim.NewEngine(), Config{Grids: specs, Outages: disjoint}); err != nil {
		t.Errorf("disjoint windows of one grid were rejected: %v", err)
	}
}
