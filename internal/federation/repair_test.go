package federation

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// repairSites returns the grid names holding a replica of the file, in
// replica-set (site-key) order.
func repairSites(f *Federation, name string) []string {
	var out []string
	for _, r := range f.Catalog().Replicas(name) {
		out = append(out, r.Site.Grid)
	}
	return out
}

// repairTestbed builds n quiet member grids g0..g(n-1) under the given
// replication floor and link model (nil keeps the federation's default
// WAN), returning the engine and federation.
func repairTestbed(t *testing.T, n, minReplicas int, links grid.LinkModel) (*sim.Engine, *Federation) {
	t.Helper()
	specs := make([]GridSpec, n)
	for i := range specs {
		cfg := testGridConfig(4, 2*time.Second)
		cfg.Seed = uint64(50 + i)
		specs[i] = GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	eng := sim.NewEngine()
	f, err := New(eng, Config{Grids: specs, MinReplicas: minReplicas, Links: links})
	if err != nil {
		t.Fatal(err)
	}
	return eng, f
}

// TestRepairRetriesAfterSourceDeath is the mid-copy source-death
// regression: a repair transfer whose source SE goes dark while the copy
// is in flight must not strand the file — the landing callback has to
// fall through to repairNeeded so the copy is re-tried from a surviving
// replica. Before the fix the callback early-returned after deleting the
// in-flight marker, leaving the file below the floor with no re-trigger.
func TestRepairRetriesAfterSourceDeath(t *testing.T) {
	// Four grids, floor 3. The file registers on g0 (repair #1 starts
	// from g0 toward g1, a 35 s transfer under the default WAN) and the
	// test adds a survivor copy on g3. At t=10s — mid-copy — g0's
	// storage goes dark, so the landing at t=35s finds its source dead.
	eng, f := repairTestbed(t, 4, 3, nil)
	cat := f.Catalog()
	cat.RegisterAt("gfn://x", 60, grid.Site{Grid: "g0"})
	cat.AddReplica("gfn://x", grid.Site{Grid: "g3"})
	eng.Schedule(10*time.Second, func() { f.SetStorageDown(0) })
	eng.Run()

	live := cat.LiveReplicas("gfn://x")
	if len(live) != 3 {
		t.Fatalf("live replicas after source death = %d (%v), want the floor of 3 (repair must re-try from the survivor)", len(live), live)
	}
	for i, want := range []string{"g1", "g2", "g3"} {
		if live[i].Site.Grid != want {
			t.Errorf("live replica %d on %s, want %s", i, live[i].Site.Grid, want)
		}
	}
	// Repair #1 (from the dead g0) never landed; the retries from g3 and
	// then g1 did.
	if f.Repairs() != 2 {
		t.Errorf("repairs = %d, want 2 landed copies", f.Repairs())
	}
}

// TestRepairRetriesAfterTargetDeath is the mid-copy target-death
// regression: when the chosen target grid's storage goes dark while the
// repair copy is in flight, the landing fails — and the retry must land
// the copy on the next-best healthy grid instead of stranding the file
// below the floor.
func TestRepairRetriesAfterTargetDeath(t *testing.T) {
	// Three grids, floor 2. The file registers on g0; repair #1 targets
	// g1 (lexically first of the empty candidates) and is mid-copy when
	// g1's storage darkens at t=10s. The retry must land on g2.
	eng, f := repairTestbed(t, 3, 2, nil)
	cat := f.Catalog()
	cat.RegisterAt("gfn://x", 60, grid.Site{Grid: "g0"})
	eng.Schedule(10*time.Second, func() { f.SetStorageDown(1) })
	eng.Run()

	if got := repairSites(f, "gfn://x"); len(got) != 2 || got[0] != "g0" || got[1] != "g2" {
		t.Errorf("replicas after target death = %v, want [g0 g2] (retry must land on the next-best grid)", got)
	}
	if f.Repairs() != 1 {
		t.Errorf("repairs = %d, want exactly the one retried copy", f.Repairs())
	}
}

// TestRepairPicksCheapestSource pins the source-selection rule: the
// repair copy must come from the surviving replica with the cheapest
// link into the chosen target, not from the lexically-first survivor.
// The link matrix makes g0 (lexically first) a 70 s source into g2 and
// g1 a 10 s one; picking wrong is visible as a 60 s later drain.
func TestRepairPicksCheapestSource(t *testing.T) {
	links := &grid.LinkMatrix{
		Pairs: map[grid.GridPair]grid.Link{
			{From: "g0", To: "g1"}: {MBps: 60},                           // 1 s: repair #1 lands fast
			{From: "g0", To: "g2"}: {MBps: 1, Latency: 10 * time.Second}, // 70 s: the trap
			{From: "g1", To: "g2"}: {MBps: 6},                            // 10 s: the cheapest source
		},
		Fallback: grid.DefaultWAN(),
	}
	eng, f := repairTestbed(t, 3, 3, links)
	cat := f.Catalog()
	// Repair #1 copies g0→g1 (1 s); its landing tops up toward the floor
	// with repair #2 into g2, whose source choice is under test: live
	// replicas are then {g0, g1}, and the cheapest link into g2 is g1's.
	cat.RegisterAt("gfn://x", 60, grid.Site{Grid: "g0"})
	eng.Run()

	if got := repairSites(f, "gfn://x"); len(got) != 3 {
		t.Fatalf("replicas = %v, want all three grids", got)
	}
	if f.Repairs() != 2 {
		t.Errorf("repairs = %d, want 2", f.Repairs())
	}
	// g0→g1 lands at 1s; g1→g2 at 1s+10s. The lexical-first bug would
	// drain at 1s+70s instead.
	if want := 11 * time.Second; eng.Now() != want {
		t.Errorf("engine drained at %v, want %v (repair #2 must copy from g1, the cheapest surviving source)", eng.Now(), want)
	}
}

// TestRepairTargetsLeastFullSE pins the capacity-aware repair targeting:
// when the replication floor asks for a copy, the target is the healthy
// member grid whose grid-level storage element has the most free space —
// not the first healthy grid in configuration order, which under capacity
// pressure would pile every repair onto one element until its eviction
// policy thrashes.
func TestRepairTargetsLeastFullSE(t *testing.T) {
	specs := make([]GridSpec, 3)
	for i := range specs {
		cfg := testGridConfig(4, 2*time.Second)
		cfg.Seed = uint64(50 + i)
		specs[i] = GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids:        specs,
		MinReplicas:  2,
		SECapacityMB: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := f.Catalog()
	// Nearly fill g1's grid-level SE. "filler" itself is below the k=2
	// floor, and its repair — targeted while g0 and g2 both read empty —
	// resolves the tie to the lexically smaller g0.
	cat.RegisterAt("gfn://filler", 900, grid.Site{Grid: "g1"})
	// The file under test registers on g0. Its repair candidates are g1
	// (900 MB resident) and g2 (empty): capacity-aware targeting must
	// choose g2, where the first-healthy rule would have chosen g1.
	cat.RegisterAt("gfn://data", 60, grid.Site{Grid: "g0"})
	eng.Run()

	if got := repairSites(f, "gfn://data"); len(got) != 2 || got[0] != "g0" || got[1] != "g2" {
		t.Errorf("gfn://data replicas on %v, want [g0 g2] (repair must avoid the near-capacity g1)", got)
	}
	if got := repairSites(f, "gfn://filler"); len(got) != 2 || got[0] != "g0" || got[1] != "g1" {
		t.Errorf("gfn://filler replicas on %v, want [g0 g1] (empty-gauge tie resolves lexically)", got)
	}
	if f.Repairs() != 2 {
		t.Errorf("repairs = %d, want 2", f.Repairs())
	}
}
