package federation

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/grid"
	"repro/internal/sim"
)

// repairSites returns the grid names holding a replica of the file, in
// replica-set (site-key) order.
func repairSites(f *Federation, name string) []string {
	var out []string
	for _, r := range f.Catalog().Replicas(name) {
		out = append(out, r.Site.Grid)
	}
	return out
}

// TestRepairTargetsLeastFullSE pins the capacity-aware repair targeting:
// when the replication floor asks for a copy, the target is the healthy
// member grid whose grid-level storage element has the most free space —
// not the first healthy grid in configuration order, which under capacity
// pressure would pile every repair onto one element until its eviction
// policy thrashes.
func TestRepairTargetsLeastFullSE(t *testing.T) {
	specs := make([]GridSpec, 3)
	for i := range specs {
		cfg := testGridConfig(4, 2*time.Second)
		cfg.Seed = uint64(50 + i)
		specs[i] = GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	eng := sim.NewEngine()
	f, err := New(eng, Config{
		Grids:        specs,
		MinReplicas:  2,
		SECapacityMB: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	cat := f.Catalog()
	// Nearly fill g1's grid-level SE. "filler" itself is below the k=2
	// floor, and its repair — targeted while g0 and g2 both read empty —
	// resolves the tie to the lexically smaller g0.
	cat.RegisterAt("gfn://filler", 900, grid.Site{Grid: "g1"})
	// The file under test registers on g0. Its repair candidates are g1
	// (900 MB resident) and g2 (empty): capacity-aware targeting must
	// choose g2, where the first-healthy rule would have chosen g1.
	cat.RegisterAt("gfn://data", 60, grid.Site{Grid: "g0"})
	eng.Run()

	if got := repairSites(f, "gfn://data"); len(got) != 2 || got[0] != "g0" || got[1] != "g2" {
		t.Errorf("gfn://data replicas on %v, want [g0 g2] (repair must avoid the near-capacity g1)", got)
	}
	if got := repairSites(f, "gfn://filler"); len(got) != 2 || got[0] != "g0" || got[1] != "g1" {
		t.Errorf("gfn://filler replicas on %v, want [g0 g1] (empty-gauge tie resolves lexically)", got)
	}
	if f.Repairs() != 2 {
		t.Errorf("repairs = %d, want 2", f.Repairs())
	}
}
