// Package rng provides a small, deterministic random number generator and
// the distributions the grid simulator needs.
//
// The generator is a xoshiro256** seeded through splitmix64. It is
// implemented here rather than taken from math/rand so that simulation
// results are bit-for-bit reproducible regardless of the Go release, and so
// that independent component streams can be forked cheaply from a single
// experiment seed.
package rng

import "math"

// Source is a deterministic pseudo-random source (xoshiro256**).
// The zero value is not usable; construct with New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via splitmix64, so that nearby seeds
// produce unrelated streams.
func New(seed uint64) *Source {
	var r Source
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// A xoshiro state of all zeros would be absorbing; splitmix64 cannot
	// produce four zero words from any seed, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return &r
}

// Fork derives an independent child stream. The child is seeded from the
// parent's next output mixed with the label, so forking is deterministic and
// order-dependent by construction.
func (r *Source) Fork(label uint64) *Source {
	return New(r.Uint64() ^ (label * 0x9e3779b97f4a7c15))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0,1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0,n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation is overkill here;
	// simulation draws are not hot enough to matter, so use rejection on the
	// top bits to avoid modulo bias.
	max := uint64(n)
	limit := (^uint64(0) / max) * max
	for {
		v := r.Uint64()
		if v < limit {
			return int(v % max)
		}
	}
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Normal returns a normally distributed value with the given mean and
// standard deviation, using the polar (Marsaglia) method.
func (r *Source) Normal(mean, sd float64) float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return mean + sd*u*math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)). Note mu and sigma are the parameters
// of the underlying normal, not the mean/sd of the log-normal itself; use
// LogNormalMeanSD for the latter.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// LogNormalMeanSD returns a log-normal value with the given mean and
// standard deviation of the log-normal distribution itself.
func (r *Source) LogNormalMeanSD(mean, sd float64) float64 {
	if mean <= 0 {
		panic("rng: LogNormalMeanSD requires mean > 0")
	}
	if sd <= 0 {
		return mean
	}
	v := sd * sd / (mean * mean)
	sigma2 := math.Log(1 + v)
	mu := math.Log(mean) - sigma2/2
	return r.LogNormal(mu, math.Sqrt(sigma2))
}

// Exponential returns an exponentially distributed value with the given mean.
func (r *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("rng: Exponential requires mean > 0")
	}
	u := r.Float64()
	// Float64 is in [0,1); flip so the argument to Log is in (0,1].
	return -mean * math.Log(1-u)
}

// TruncNormal returns a normal value truncated (by resampling) to [lo, hi].
// It panics if lo > hi. If the acceptance region is far in the tail the
// resampling loop could spin; callers use it for mild truncations only, and
// after 1024 rejected draws it falls back to clamping.
func (r *Source) TruncNormal(mean, sd, lo, hi float64) float64 {
	if lo > hi {
		panic("rng: TruncNormal with lo > hi")
	}
	for i := 0; i < 1024; i++ {
		v := r.Normal(mean, sd)
		if v >= lo && v <= hi {
			return v
		}
	}
	v := r.Normal(mean, sd)
	return math.Min(math.Max(v, lo), hi)
}

// Perm returns a random permutation of [0,n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
