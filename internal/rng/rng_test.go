package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("nearby seeds produced %d identical draws out of 100", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Fork(1)
	c2 := parent.Fork(2)
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("forked children with different labels produced equal first draws")
	}
	// Forking is deterministic given the parent's state history; fresh
	// children from an identically seeded parent replay the same streams.
	p2 := New(7)
	d1 := p2.Fork(1)
	d2 := p2.Fork(2)
	d1.Uint64() // c1 consumed one draw above; align d1 with it
	d2.Uint64()
	if c1.Uint64() != d1.Uint64() {
		t.Fatal("fork not reproducible")
	}
	if c2.Uint64() != d2.Uint64() {
		t.Fatal("second fork not reproducible")
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	v := r.Uint64()
	w := r.Uint64()
	if v == 0 && w == 0 {
		t.Fatal("seed 0 produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(4)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) out of range: %d", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("Intn(7): value %d drawn %d times out of 70000, want ~10000", v, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniformRange(t *testing.T) {
	r := New(5)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(2.5, 3.5)
		if v < 2.5 || v >= 3.5 {
			t.Fatalf("Uniform(2.5,3.5) out of range: %g", v)
		}
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(6)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(7)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Fatalf("Bernoulli(0.25) empirical rate %g", rate)
	}
}

func sampleMoments(n int, draw func() float64) (mean, sd float64) {
	var sum, sum2 float64
	for i := 0; i < n; i++ {
		v := draw()
		sum += v
		sum2 += v * v
	}
	mean = sum / float64(n)
	sd = math.Sqrt(sum2/float64(n) - mean*mean)
	return mean, sd
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	mean, sd := sampleMoments(200000, func() float64 { return r.Normal(10, 3) })
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Normal mean = %g, want ~10", mean)
	}
	if math.Abs(sd-3) > 0.05 {
		t.Errorf("Normal sd = %g, want ~3", sd)
	}
}

func TestLogNormalMeanSDMoments(t *testing.T) {
	r := New(9)
	mean, sd := sampleMoments(400000, func() float64 { return r.LogNormalMeanSD(150, 75) })
	if math.Abs(mean-150) > 2 {
		t.Errorf("LogNormalMeanSD mean = %g, want ~150", mean)
	}
	if math.Abs(sd-75) > 3 {
		t.Errorf("LogNormalMeanSD sd = %g, want ~75", sd)
	}
}

func TestLogNormalMeanSDDegenerate(t *testing.T) {
	r := New(10)
	if v := r.LogNormalMeanSD(42, 0); v != 42 {
		t.Fatalf("LogNormalMeanSD with sd=0 = %g, want 42", v)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if v := r.LogNormalMeanSD(1, 5); v <= 0 {
			t.Fatalf("log-normal produced non-positive value %g", v)
		}
	}
}

func TestExponentialMoments(t *testing.T) {
	r := New(12)
	mean, sd := sampleMoments(400000, func() float64 { return r.Exponential(20) })
	if math.Abs(mean-20) > 0.3 {
		t.Errorf("Exponential mean = %g, want ~20", mean)
	}
	if math.Abs(sd-20) > 0.5 {
		t.Errorf("Exponential sd = %g, want ~20", sd)
	}
}

func TestExponentialNonNegative(t *testing.T) {
	r := New(13)
	for i := 0; i < 10000; i++ {
		if v := r.Exponential(5); v < 0 {
			t.Fatalf("Exponential produced negative value %g", v)
		}
	}
}

func TestTruncNormalBounds(t *testing.T) {
	r := New(14)
	for i := 0; i < 10000; i++ {
		v := r.TruncNormal(0, 1, -0.5, 0.5)
		if v < -0.5 || v > 0.5 {
			t.Fatalf("TruncNormal out of bounds: %g", v)
		}
	}
}

func TestTruncNormalFarTailClamps(t *testing.T) {
	r := New(15)
	// Acceptance region 50 sigma away: resampling cannot hit it; must clamp.
	v := r.TruncNormal(0, 1, 50, 51)
	if v < 50 || v > 51 {
		t.Fatalf("TruncNormal far-tail fallback out of bounds: %g", v)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(16)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPermEmpty(t *testing.T) {
	if p := New(1).Perm(0); len(p) != 0 {
		t.Fatalf("Perm(0) = %v, want empty", p)
	}
}

// Property: Intn(n) always lies in [0,n) for any positive n.
func TestQuickIntnInRange(t *testing.T) {
	r := New(17)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds yield identical k-th draws for any k.
func TestQuickDeterministicK(t *testing.T) {
	f := func(seed uint64, k uint8) bool {
		a, b := New(seed), New(seed)
		var va, vb uint64
		for i := 0; i <= int(k); i++ {
			va, vb = a.Uint64(), b.Uint64()
		}
		return va == vb
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LogNormalMeanSD output is always strictly positive.
func TestQuickLogNormalPositive(t *testing.T) {
	r := New(18)
	f := func(m, s uint16) bool {
		mean := float64(m%500) + 1
		sd := float64(s % 500)
		return r.LogNormalMeanSD(mean, sd) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkLogNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.LogNormalMeanSD(150, 75)
	}
}
