package maprange

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestMapRange runs the analyzer over the critical fixture (map ranges,
// justifications, empty reasons, stale directives, a generic map
// constraint, and slice/string/channel/int negatives) and the
// non-critical fixture, which must stay silent.
func TestMapRange(t *testing.T) {
	a := New(func(pkgPath string) bool { return pkgPath == "mapcrit" })
	analysistest.Run(t, "../testdata", a, "mapcrit", "mapclean")
}

// TestDefaultCritical pins the gated package set.
func TestDefaultCritical(t *testing.T) {
	for _, p := range []string{
		"repro/internal/sim",
		"repro/internal/grid",
		"repro/internal/federation",
		"repro/internal/campaign",
		"repro/internal/core",
	} {
		if !DefaultCritical(p) {
			t.Errorf("DefaultCritical(%q) = false, want true", p)
		}
	}
	for _, p := range []string{
		"repro",
		"repro/internal/rng",
		"repro/internal/metrics",
		"repro/internal/grid/sub", // only the exact packages are gated
	} {
		if DefaultCritical(p) {
			t.Errorf("DefaultCritical(%q) = true, want false", p)
		}
	}
}
