// Package maprange implements the determinism analyzer that forbids
// ranging over Go maps inside simulation-critical packages.
//
// Go randomizes map iteration order per process, so any map range whose
// effect is order-sensitive — appending to a slice, emitting events,
// writing output — makes a simulated run irreproducible, and the repo's
// golden-fingerprint tests demand bit-identical replays. The analyzer
// resolves the ranged expression through go/types, so slices, arrays,
// strings, channels and integers range freely; only map types (and type
// parameters whose core type is a map) are flagged.
//
// A loop whose effect provably cannot depend on order (a commutative
// reduction, a set-membership fill) may be kept by annotating it:
//
//	//moteur:orderinvariant per-grid byte totals sum commutatively
//	for _, n := range wanBytes { total += n }
//
// The justification text is mandatory — an empty reason is itself a
// finding — and a directive not attached to a map range is reported as
// stale so annotations cannot outlive the code they excuse.
package maprange

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// DefaultCritical reports whether pkgPath is one of the simulation-
// critical packages in which map iteration is policed: the event engine,
// the grid model, the federation broker, the campaign layer and the
// enactor core. Everything those packages do can leak into event order,
// golden fingerprints, or replayed statistics.
func DefaultCritical(pkgPath string) bool {
	for _, p := range []string{
		"repro/internal/sim",
		"repro/internal/grid",
		"repro/internal/federation",
		"repro/internal/campaign",
		"repro/internal/core",
		"repro/internal/scenario",
	} {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// Analyzer is the maprange check gated on DefaultCritical.
var Analyzer = New(DefaultCritical)

// New builds a maprange analyzer with a custom package gate; the
// fixture tests use this to point the check at testdata packages.
func New(critical func(pkgPath string) bool) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "maprange",
		Doc:  "forbid range over maps in simulation-critical packages (order leaks break deterministic replay); annotate provably order-invariant loops with //moteur:orderinvariant <reason>",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !critical(pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.SourceFiles() {
			checkFile(pass, file)
		}
		return nil
	}
	return a
}

// checkFile walks one file, binding //moteur:orderinvariant directives
// to the map-range statements they justify and reporting unjustified
// ranges, empty justifications, and stale directives.
func checkFile(pass *analysis.Pass, file *ast.File) {
	byLine := map[int]*analysis.Directive{}
	used := map[*analysis.Directive]bool{}
	dirs := analysis.Directives(pass.Fset, file)
	for i := range dirs {
		if dirs[i].Name == analysis.OrderInvariantDirective {
			byLine[dirs[i].Line] = &dirs[i]
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if !rangesOverMap(pass, rs) {
			return true
		}
		line := pass.Fset.Position(rs.Pos()).Line
		dir := byLine[line]
		if dir == nil {
			dir = byLine[line-1]
		}
		switch {
		case dir == nil:
			pass.Reportf(rs.Pos(), "range over map %s: iteration order is randomized and breaks deterministic replay; sort the keys or annotate with //moteur:orderinvariant <reason>", types.ExprString(rs.X))
		case dir.Reason == "":
			used[dir] = true
			pass.Reportf(rs.Pos(), "map range excused by //moteur:orderinvariant needs a non-empty justification")
		default:
			used[dir] = true
		}
		return true
	})
	// A directive that no map range consumed is stale: either the loop
	// was rewritten (sorted keys range over a slice) or it was placed
	// wrong; both deserve a finding so excuses cannot rot in place.
	for i := range dirs {
		d := &dirs[i]
		if d.Name == analysis.OrderInvariantDirective && byLine[d.Line] == d && !used[d] {
			pass.Reportf(d.Pos, "stale //moteur:orderinvariant: no map range on this or the next line")
		}
	}
}

// rangesOverMap reports whether the range statement iterates a map,
// resolved through the type checker so named map types count and
// slices/channels/strings do not.
func rangesOverMap(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tp, ok := types.Unalias(t).(*types.TypeParam); ok {
		// A generic range is order-sensitive as soon as any term in the
		// constraint is a map.
		isMap := false
		for u := range typeTerms(tp) {
			if _, ok := u.Underlying().(*types.Map); ok {
				isMap = true
			}
		}
		return isMap
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// typeTerms yields the type terms of a type parameter's constraint.
func typeTerms(tp *types.TypeParam) map[types.Type]bool {
	out := map[types.Type]bool{}
	iface, ok := tp.Constraint().Underlying().(*types.Interface)
	if !ok {
		return out
	}
	for i := 0; i < iface.NumEmbeddeds(); i++ {
		collectTerms(iface.EmbeddedType(i), out)
	}
	return out
}

// collectTerms expands unions and named constraint interfaces into the
// accumulating term set.
func collectTerms(t types.Type, out map[types.Type]bool) {
	switch u := t.(type) {
	case *types.Union:
		for i := 0; i < u.Len(); i++ {
			out[u.Term(i).Type()] = true
		}
	case *types.Named:
		collectTerms(u.Underlying(), out)
	case *types.Interface:
		for i := 0; i < u.NumEmbeddeds(); i++ {
			collectTerms(u.EmbeddedType(i), out)
		}
	default:
		out[t] = true
	}
}
