package exporteddoc

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestExportedDoc runs the analyzer over the undocumented fixture
// (missing package doc, missing and misprefixed identifier docs, the
// unexported-receiver and block-comment exemptions) and the fully
// documented fixture, which must stay silent.
func TestExportedDoc(t *testing.T) {
	a := New(func(pkgPath string) bool { return true })
	analysistest.Run(t, "../testdata", a, "docbad", "docok")
}

// TestDefaultChecked pins the documented-surface gate: the root package
// and internal/ packages are in, cmd and testdata fixtures are out.
func TestDefaultChecked(t *testing.T) {
	for _, p := range []string{"repro", "repro/internal/grid", "repro/internal/analysis"} {
		if !DefaultChecked(p) {
			t.Errorf("DefaultChecked(%q) = false, want true", p)
		}
	}
	for _, p := range []string{"repro/cmd/moteur", "fmt", "docbad"} {
		if DefaultChecked(p) {
			t.Errorf("DefaultChecked(%q) = true, want false", p)
		}
	}
}
