// Package exporteddoc implements the documentation analyzer: every
// exported identifier of the repo's library surface (the root package
// and every internal/ package) must carry a doc comment that begins with
// the identifier's name, modulo a leading article — the golint/revive
// "exported" rule, implemented on go/ast so CI needs no external linter.
//
// It replaces the reflection-free but test-bound internal/doccheck,
// which hard-coded five package directories; as an analyzer it rides the
// same driver as the determinism checks and covers every package the
// driver loads. Conventions preserved from doccheck: a documented
// const/var/type block covers its specs (a spec is only held to the
// prefix rule when it carries its own comment), methods on unexported
// types are exempt even when capitalized for interface satisfaction,
// and _test.go files are ignored. One new rule: each checked package
// must have a package doc comment on at least one file.
package exporteddoc

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// DefaultChecked reports whether pkgPath is part of the documented
// surface: the root package plus everything under internal/.
func DefaultChecked(pkgPath string) bool {
	return pkgPath == "repro" || strings.HasPrefix(pkgPath, "repro/internal/")
}

// Analyzer is the exporteddoc check gated on DefaultChecked.
var Analyzer = New(DefaultChecked)

// New builds an exporteddoc analyzer with a custom package gate; the
// fixture tests use this to point the check at testdata packages.
func New(checked func(pkgPath string) bool) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "exporteddoc",
		Doc:  "require doc comments on the exported surface of the root and internal/ packages (golint exported rule, plus a package-comment rule)",
	}
	a.Run = func(pass *analysis.Pass) error {
		if !checked(pass.Pkg.Path()) || strings.HasSuffix(pass.Pkg.Name(), "_test") {
			return nil
		}
		files := pass.SourceFiles()
		sort.Slice(files, func(i, j int) bool {
			return pass.Fset.Position(files[i].Pos()).Filename < pass.Fset.Position(files[j].Pos()).Filename
		})
		hasPkgDoc := false
		for _, f := range files {
			if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc && len(files) > 0 {
			pass.Reportf(files[0].Name.Pos(), "package %s has no package doc comment on any file", pass.Pkg.Name())
		}
		for _, f := range files {
			checkFile(pass, f)
		}
		return nil
	}
	return a
}

// checkFile applies the exported rule to every top-level declaration of
// one file.
func checkFile(pass *analysis.Pass, file *ast.File) {
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			requireDoc(pass, d.Pos(), d.Name.Name, d.Doc)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			// A documented block (e.g. a const group sharing one
			// comment) covers its specs; the prefix rule then applies
			// per spec only when the spec carries its own comment.
			blockDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					if doc == nil && blockDoc {
						continue // covered by the block comment
					}
					requireDoc(pass, s.Pos(), s.Name.Name, doc)
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						doc := s.Doc
						if doc == nil && len(d.Specs) == 1 {
							doc = d.Doc
						}
						if doc == nil && blockDoc {
							continue // covered by the block comment
						}
						requireDoc(pass, name.Pos(), name.Name, doc)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (functions without receivers count as exported scope). Methods on
// unexported types are internal plumbing even when their names are
// capitalized for interface satisfaction.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.IndexListExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// requireDoc reports a diagnostic when the doc comment is missing or
// does not begin with the identifier's name, modulo a leading article.
func requireDoc(pass *analysis.Pass, pos token.Pos, name string, doc *ast.CommentGroup) {
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		pass.Reportf(pos, "exported identifier %s has no doc comment", name)
		return
	}
	text := strings.TrimSpace(doc.Text())
	for _, article := range []string{"A ", "An ", "The "} {
		if rest, ok := strings.CutPrefix(text, article); ok {
			text = rest
			break
		}
	}
	if !strings.HasPrefix(text, name) {
		pass.Reportf(pos, "doc comment of %s should start with %q (golint exported rule); it starts with %.40q", name, name, text)
	}
}
