// Package unitchecker implements the `go vet -vettool` side of
// cmd/moteurvet: the build tool invokes the vettool once per compilation
// unit with a JSON config file describing the unit's sources and the
// export data of its direct dependencies, and the tool type-checks the
// unit, runs the determinism analyzers, and reports diagnostics on
// stderr with a non-zero exit when it finds anything. It mirrors the
// protocol of golang.org/x/tools/go/analysis/unitchecker on the standard
// library alone (go/importer reads the gc export data cmd/go hands us).
//
// Facts are not implemented: the suite's analyzers are all local to one
// package, so the vetx output file the protocol requires is written
// empty and dependency vetx inputs are ignored.
package unitchecker

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/analysis/checker"
)

// Config mirrors cmd/go's vetConfig, the JSON payload written next to
// each compilation unit when vet runs; field names must match exactly.
type Config struct {
	// ID is the package ID, e.g. "fmt [fmt.test]".
	ID string
	// Compiler is the toolchain name, gc or gccgo.
	Compiler string
	// Dir is the package directory.
	Dir string
	// ImportPath is the canonical package path.
	ImportPath string
	// GoFiles lists the unit's Go sources as absolute paths.
	GoFiles []string
	// NonGoFiles lists assembly and other non-Go sources.
	NonGoFiles []string
	// IgnoredFiles lists build-constrained-away sources.
	IgnoredFiles []string
	// ModulePath is the enclosing module's path, if any.
	ModulePath string
	// ModuleVersion is the module version, if any.
	ModuleVersion string
	// ImportMap maps import paths as written in source to canonical
	// package paths.
	ImportMap map[string]string
	// PackageFile maps canonical package paths to files holding their
	// gc export data.
	PackageFile map[string]string
	// Standard marks standard-library package paths.
	Standard map[string]bool
	// PackageVetx maps dependency package paths to their vetx outputs;
	// unused here (no facts).
	PackageVetx map[string]string
	// VetxOnly asks for facts only, no diagnostics; since the suite has
	// no facts, such units are satisfied by an empty vetx file.
	VetxOnly bool
	// VetxOutput is the file the tool must write its facts to; cmd/go
	// caches it and fails if it is missing.
	VetxOutput string
	// GoVersion is the language version to type-check under.
	GoVersion string
	// SucceedOnTypecheckFailure makes type errors exit 0, matching
	// cmd/vet's historical behavior under `go test` (golang.org/issue/18395).
	SucceedOnTypecheckFailure bool
}

// Run processes one vet config file and returns the process exit code:
// 0 clean, 1 on internal errors, 2 when diagnostics were reported.
func Run(cfgFile string, analyzers []*analysis.Analyzer) int {
	cfg, err := readConfig(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moteurvet: %v\n", err)
		return 1
	}
	// The empty vetx file must exist before any early return: cmd/go
	// stores it in the build cache unconditionally.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "moteurvet: writing vetx: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly || len(cfg.GoFiles) == 0 {
		return 0
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintf(os.Stderr, "moteurvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, err := checker.TypeCheck(fset, files, cfg.ImportPath, imp, cfg.GoVersion)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "moteurvet: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	findings, err := checker.Run(fset, files, pkg, info, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "moteurvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s\n", f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// readConfig loads and decodes one vet config file.
func readConfig(path string) (*Config, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(Config)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return cfg, nil
}
