// Package checker is the execution core shared by every driver of the
// determinism-lint suite (cmd/moteurvet standalone mode, its go vet
// -vettool protocol mode, and the analysistest fixture harness): it
// type-checks one package's parsed files and runs a list of analyzers
// over the result, returning position-sorted findings so driver output
// is deterministic regardless of analyzer-internal iteration order.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis"
)

// Finding is one diagnostic resolved to a concrete file position and
// tagged with the analyzer that produced it.
type Finding struct {
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Position locates the finding in the analyzed sources.
	Position token.Position
	// Message is the diagnostic text.
	Message string
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Position, f.Message, f.Analyzer)
}

// TypeCheck type-checks files as package path, resolving imports through
// imp, and returns the package with a fully populated types.Info. Type
// errors are returned after checking as much as possible, so callers can
// decide whether to proceed (go vet's SucceedOnTypecheckFailure hack).
func TypeCheck(fset *token.FileSet, files []*ast.File, path string, imp types.Importer, goVersion string) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	var firstErr error
	cfg := &types.Config{
		Importer:  imp,
		GoVersion: goVersion,
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, _ := cfg.Check(path, fset, files, info)
	return pkg, info, firstErr
}

// Run applies analyzers to one type-checked package and returns the
// findings sorted by position then analyzer then message.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d analysis.Diagnostic) {
			out = append(out, Finding{
				Analyzer: a.Name,
				Position: fset.Position(d.Pos),
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path(), err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Message < out[j].Message
	})
	return out, nil
}
