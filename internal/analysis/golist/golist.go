// Package golist implements cmd/moteurvet's standalone mode: it loads
// packages matching command-line patterns by shelling out to
// `go list -export -deps -json`, which compiles dependencies' export
// data into the build cache, then type-checks each matched package from
// source (dependencies resolve through the export data, exactly like the
// vettool path) and runs the determinism analyzers over it. This gives a
// one-command repo check that needs no go vet orchestration and no
// network access.
package golist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
	"repro/internal/analysis/checker"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	// ImportPath is the canonical package path.
	ImportPath string
	// Dir is the directory holding the package sources.
	Dir string
	// GoFiles lists the package's Go sources, relative to Dir, test
	// files excluded.
	GoFiles []string
	// Export is the file holding the package's gc export data.
	Export string
	// ImportMap maps source-level import paths to canonical paths.
	ImportMap map[string]string
	// DepOnly marks packages that only appeared as dependencies, not
	// as pattern matches; they supply export data but are not checked.
	DepOnly bool
}

// Check loads the packages matching patterns and runs analyzers over
// each matched (non-dependency) package, returning all findings sorted
// by package.
func Check(patterns []string, analyzers []*analysis.Analyzer) ([]checker.Finding, error) {
	args := append([]string{
		"list", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,ImportMap,DepOnly",
	}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	exports := map[string]string{}
	importMap := map[string]string{}
	var targets []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for raw, mapped := range p.ImportMap {
			importMap[raw] = mapped
		}
		if !p.DepOnly && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })
	var all []checker.Finding
	for _, p := range targets {
		findings, err := checkPackage(p, exports, importMap, analyzers)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", p.ImportPath, err)
		}
		all = append(all, findings...)
	}
	return all, nil
}

// checkPackage parses, type-checks and analyzes one listed package.
func checkPackage(p *listPackage, exports, importMap map[string]string, analyzers []*analysis.Analyzer) ([]checker.Finding, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, info, err := checker.TypeCheck(fset, files, p.ImportPath, imp, "")
	if err != nil {
		return nil, err
	}
	return checker.Run(fset, files, pkg, info, analyzers)
}
