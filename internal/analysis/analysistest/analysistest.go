// Package analysistest is a small fixture harness for the determinism-
// lint analyzers, modeled on golang.org/x/tools/go/analysis/analysistest
// but built on the standard library alone. A fixture is an ordinary Go
// package under testdata/src/<path>; expected findings are declared in
// the fixture source with trailing comments of the form
//
//	for k := range m { // want `range over map`
//
// where the backquoted text is a regular expression matched against the
// diagnostics reported on that line. Multiple `// want` clauses may be
// separated by whitespace inside one comment. The harness type-checks
// the fixture with the source importer (GOROOT source, so the standard
// library resolves offline), runs the analyzer, and fails the test on
// any unexpected or missing finding.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/checker"
)

// wantRE extracts the backquoted patterns of a // want comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

// expectation is one // want clause bound to a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// Run loads the fixture package rooted at dir/src/<pkgpath> for each
// pkgpath, runs a over it, and checks reported findings against the
// fixture's // want comments. The fixture's import path is pkgpath
// itself, so analyzers gated on package paths can be constructed to
// admit it.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	for _, pkgpath := range pkgpaths {
		runOne(t, filepath.Join(dir, "src", pkgpath), pkgpath, a)
	}
}

// runOne checks one fixture package directory.
func runOne(t *testing.T, dir, pkgpath string, a *analysis.Analyzer) {
	t.Helper()
	fset := token.NewFileSet()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", dir, err)
	}
	var files []*ast.File
	var wants []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parse %s: %v", path, err)
		}
		files = append(files, f)
		wants = append(wants, parseWants(t, fset, f)...)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", dir)
	}
	imp := importer.ForCompiler(fset, "source", nil)
	pkg, info, err := checker.TypeCheck(fset, files, pkgpath, imp, "")
	if err != nil {
		t.Fatalf("typecheck %s: %v", pkgpath, err)
	}
	findings, err := checker.Run(fset, files, pkg, info, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("run %s on %s: %v", a.Name, pkgpath, err)
	}
	for _, f := range findings {
		if !claim(wants, f) {
			t.Errorf("%s: unexpected finding: %s", pkgpath, f)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s: %s:%d: expected finding matching %q, got none", pkgpath, w.file, w.line, w.re)
		}
	}
}

// parseWants collects the // want expectations of one fixture file.
func parseWants(t *testing.T, fset *token.FileSet, f *ast.File) []*expectation {
	t.Helper()
	var out []*expectation
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			// The marker may open the comment or be embedded in one (a
			// //moteur: directive line can only carry its expectation
			// inside the directive comment itself).
			idx := strings.Index(c.Text, "// want `")
			if idx < 0 {
				continue
			}
			text := c.Text[idx+len("// want"):]
			pos := fset.Position(c.Pos())
			matches := wantRE.FindAllStringSubmatch(text, -1)
			if len(matches) == 0 {
				t.Fatalf("%s: // want comment without backquoted pattern", pos)
			}
			for _, m := range matches {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
				}
				out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return out
}

// claim marks the first unhit expectation matching the finding and
// reports whether one existed.
func claim(wants []*expectation, f checker.Finding) bool {
	for _, w := range wants {
		if !w.hit && w.file == f.Position.Filename && w.line == f.Position.Line && w.re.MatchString(f.Message) {
			w.hit = true
			return true
		}
	}
	return false
}
