// Package analysis is a minimal, dependency-free analogue of the
// golang.org/x/tools/go/analysis framework: an Analyzer is a named check
// with a Run function, a Pass hands it one type-checked package, and
// diagnostics are reported through the Pass. It exists because this repo
// builds offline against the standard library only, yet wants real
// static enforcement of its determinism invariants (see the maprange,
// simtime and exporteddoc subpackages and cmd/moteurvet, the driver that
// runs them standalone or as a `go vet -vettool`).
//
// The subset implemented here is deliberately small: no facts, no
// modular result passing, no suggested fixes. Each analyzer sees one
// package (syntax + types) and reports positioned diagnostics; drivers
// sort and print them.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check: a short name used as the
// diagnostic prefix, a doc string shown by the driver's help output, and
// the Run function applied to every package the driver loads.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and flag names. It
	// must be a valid Go identifier.
	Name string
	// Doc is the analyzer's documentation: first line is a summary.
	Doc string
	// Run applies the check to one package and reports findings through
	// pass.Report. A non-nil error aborts the whole driver run and is
	// reserved for internal failures, not findings.
	Run func(*Pass) error
}

// Diagnostic is one finding at a position inside the analyzed package.
type Diagnostic struct {
	// Pos locates the finding in the Pass's FileSet.
	Pos token.Pos
	// Message is the human-readable finding, without position prefix.
	Message string
}

// Pass carries one type-checked package through an Analyzer's Run
// function, mirroring golang.org/x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the check currently running, so shared helpers can
	// prefix diagnostics.
	Analyzer *Analyzer
	// Fset maps token.Pos values of Files to file positions.
	Fset *token.FileSet
	// Files is the package's parsed syntax, including comments.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo records type and object resolution for Files.
	TypesInfo *types.Info
	// Report delivers one diagnostic to the driver.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file containing pos is a _test.go file.
// The determinism analyzers skip test files: tests may freely iterate
// maps or read the wall clock without affecting replay fingerprints.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// SourceFiles returns the package's non-test files, the surface the
// determinism analyzers actually police.
func (p *Pass) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f.Pos()) {
			out = append(out, f)
		}
	}
	return out
}
