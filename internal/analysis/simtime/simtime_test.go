package simtime

import (
	"testing"

	"repro/internal/analysis/analysistest"
)

// TestSimTime runs the analyzer over the critical fixture (wall-clock
// calls, a math/rand import, fmt output inside a map range, plus the
// Sprintf and duration negatives) and the non-critical fixture, which
// must stay silent.
func TestSimTime(t *testing.T) {
	a := New(func(pkgPath string) bool { return pkgPath == "timecrit" })
	analysistest.Run(t, "../testdata", a, "timecrit", "timeclean")
}
