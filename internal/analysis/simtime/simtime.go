// Package simtime implements the determinism analyzer that keeps wall-
// clock time and ambient randomness out of simulation-critical packages.
//
// All time in the simulator flows through sim.Engine's virtual clock and
// all randomness through internal/rng's seeded xoshiro streams, so that a
// run is a pure function of its inputs and its fingerprint replays
// bit-identically across machines, runs and Go releases. The analyzer
// therefore forbids, inside the critical packages:
//
//   - the wall-clock functions of package time (time.Now, time.Since,
//     time.Until, time.Sleep, time.After, time.AfterFunc, time.Tick,
//     time.NewTimer, time.NewTicker) — time.Duration and time.Time as
//     plain values remain fine;
//   - importing math/rand or math/rand/v2 at all: even explicitly seeded
//     generators change their streams across Go releases, which is why
//     internal/rng exists;
//   - fmt print calls inside a range over a map, where iteration order
//     leaks straight into observable output even when the loop carries a
//     //moteur:orderinvariant annotation for the maprange analyzer.
package simtime

import (
	"go/ast"
	"go/types"
	"strconv"

	"repro/internal/analysis"
)

// bannedTime is the set of package time functions that read or wait on
// the wall clock.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// bannedImports maps forbidden import paths to the replacement the
// diagnostic should point at.
var bannedImports = map[string]string{
	"math/rand":    "internal/rng",
	"math/rand/v2": "internal/rng",
}

// Analyzer is the simtime check gated on the same critical-package set
// as maprange.
var Analyzer = New(nil)

// New builds a simtime analyzer with a custom package gate (nil means
// the default simulation-critical set shared with maprange).
func New(critical func(pkgPath string) bool) *analysis.Analyzer {
	a := &analysis.Analyzer{
		Name: "simtime",
		Doc:  "forbid wall-clock time, math/rand and order-leaking fmt output in simulation-critical packages; use sim.Engine time and internal/rng streams",
	}
	a.Run = func(pass *analysis.Pass) error {
		gate := critical
		if gate == nil {
			gate = defaultCritical
		}
		if !gate(pass.Pkg.Path()) {
			return nil
		}
		for _, file := range pass.SourceFiles() {
			checkFile(pass, file)
		}
		return nil
	}
	return a
}

// defaultCritical mirrors maprange.DefaultCritical; duplicated here to
// keep the two analyzers independently importable.
func defaultCritical(pkgPath string) bool {
	for _, p := range []string{
		"repro/internal/sim",
		"repro/internal/grid",
		"repro/internal/federation",
		"repro/internal/campaign",
		"repro/internal/core",
		"repro/internal/scenario",
	} {
		if pkgPath == p {
			return true
		}
	}
	return false
}

// checkFile reports banned imports, wall-clock calls, and fmt prints
// nested inside map ranges for one source file.
func checkFile(pass *analysis.Pass, file *ast.File) {
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if repl, ok := bannedImports[path]; ok {
			pass.Reportf(imp.Pos(), "import of %s in a simulation-critical package: streams vary across Go releases; use %s", path, repl)
		}
	}
	var mapRangeDepth int
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if fn := timeFunc(pass, n); fn != "" {
				pass.Reportf(n.Pos(), "call to time.%s in a simulation-critical package: wall-clock time breaks deterministic replay; all time must flow through sim.Engine", fn)
			}
		case *ast.RangeStmt:
			if rangesOverMap(pass, n) {
				// Walk the loop parts manually so the body is inspected
				// with the map-range context switched on.
				if n.Key != nil {
					ast.Inspect(n.Key, walk)
				}
				if n.Value != nil {
					ast.Inspect(n.Value, walk)
				}
				ast.Inspect(n.X, walk)
				mapRangeDepth++
				ast.Inspect(n.Body, walk)
				mapRangeDepth--
				return false
			}
		case *ast.CallExpr:
			if mapRangeDepth > 0 {
				if name := fmtPrint(pass, n); name != "" {
					pass.Reportf(n.Pos(), "fmt.%s inside a range over a map: iteration order leaks into output; collect and sort before printing", name)
				}
			}
		}
		return true
	}
	ast.Inspect(file, walk)
}

// timeFunc returns the banned time-package function name sel refers to,
// or "" when sel is harmless.
func timeFunc(pass *analysis.Pass, sel *ast.SelectorExpr) string {
	obj := pass.TypesInfo.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	if bannedTime[fn.Name()] {
		return fn.Name()
	}
	return ""
}

// fmtPrint returns the fmt print-family function name the call invokes,
// or "" when the call is not an fmt print.
func fmtPrint(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return ""
	}
	// Sprint-family calls are pure and often order-invariant (e.g.
	// formatting a value stored back under the same key), so only calls
	// that actually emit output are flagged.
	switch fn.Name() {
	case "Print", "Printf", "Println",
		"Fprint", "Fprintf", "Fprintln":
		return fn.Name()
	}
	return ""
}

// rangesOverMap reports whether the range statement iterates a map,
// resolved through the type checker.
func rangesOverMap(pass *analysis.Pass, rs *ast.RangeStmt) bool {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}
