// Package docok is the exporteddoc negative fixture: a fully documented
// surface produces no findings.
package docok

// Thing is a documented exported type.
type Thing struct{}

// New returns a Thing.
func New() Thing { return Thing{} }

// Limit is a documented exported constant.
const Limit = 8

// Weights groups documented values under one block comment.
var (
	WeightA = 1
	WeightB = 2
)
