// Package mapcrit is a maprange fixture standing in for a simulation-
// critical package: unjustified map ranges, empty justifications and
// stale annotations are findings; slice/string/channel ranges and
// properly justified loops are not.
package mapcrit

import "sort"

// Counters is a named map type; ranging over it is still a map range.
type Counters map[string]int

// Sum accumulates order-sensitively and order-invariantly.
func Sum(m map[string]int, c Counters) int {
	total := 0
	for _, v := range m { // want `range over map m: iteration order is randomized`
		total += v
	}
	//moteur:orderinvariant integer addition is commutative, no order leak
	for _, v := range c {
		total += v
	}
	return total
}

// Keys shows the sanctioned rewrite: sort the keys, range the slice.
func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want `range over map m`
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i := range keys { // a slice range is fine
		_ = i
	}
	return keys
}

// Empty carries a justification with no reason, which is itself a
// finding, and a stale annotation excusing nothing.
func Empty(m Counters) {
	//moteur:orderinvariant
	for k := range m { // want `needs a non-empty justification`
		_ = k
	}
	//moteur:orderinvariant excuses no loop // want `stale //moteur:orderinvariant`
	x := 0
	_ = x
}

// Generic ranges over a type parameter whose constraint is a map.
func Generic[M ~map[string]int](m M) int {
	n := 0
	for range m { // want `range over map m`
		n++
	}
	return n
}

// Others ranges over non-map types and stays clean.
func Others(s []int, str string, ch chan int, n int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	for range str {
		t++
	}
	for v := range ch {
		t += v
	}
	for range n {
		t++
	}
	return t
}
