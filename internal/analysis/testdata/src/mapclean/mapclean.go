// Package mapclean is the maprange negative fixture: it is not in the
// analyzer's critical-package set, so even bare map ranges are ignored.
package mapclean

// Free ranges over a map without annotation and stays unflagged.
func Free(m map[string]int) int {
	t := 0
	for _, v := range m {
		t += v
	}
	return t
}
