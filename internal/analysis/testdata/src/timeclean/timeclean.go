// Package timeclean is the simtime negative fixture: outside the
// critical set, wall-clock time and math/rand are unrestricted.
package timeclean

import (
	"math/rand"
	"time"
)

// Wall may read the clock and roll dice freely here.
func Wall() int64 {
	return time.Now().UnixNano() + int64(rand.Intn(10))
}
