// Package timecrit is a simtime fixture standing in for a simulation-
// critical package: wall-clock reads, math/rand imports and fmt output
// inside map ranges are findings; time.Duration values and pure
// formatting are not.
package timecrit

import (
	"fmt"
	"math/rand" // want `import of math/rand in a simulation-critical package`
	"time"
)

// Tick mixes banned wall-clock calls with a harmless duration value.
func Tick(d time.Duration) time.Duration {
	start := time.Now()   // want `call to time.Now`
	time.Sleep(d)         // want `call to time.Sleep`
	_ = time.Since(start) // want `call to time.Since`
	return 2 * d
}

// Roll uses the banned ambient generator; the import finding already
// covers it, calls themselves are not re-flagged.
func Roll() int {
	return rand.Intn(6)
}

// Dump prints from inside a map range (finding) and formats into a map
// slot (clean), then prints outside any loop (clean).
func Dump(m map[string]int) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		fmt.Println(k, v) // want `fmt.Println inside a range over a map`
		out[k] = fmt.Sprintf("%d", v)
	}
	fmt.Println(len(out))
	return out
}
