package docbad // want `package docbad has no package doc comment`

// Documented is properly documented and stays clean.
type Documented struct{}

type Bare struct{} // want `exported identifier Bare has no doc comment`

// Something that does not start with the name.
func Wrong() {} // want `doc comment of Wrong should start with "Wrong"`

// A Prefixed doc may lead with an article: A, An or The are skipped
// before the name check.
type Prefixed int

// Grouped constants share one block comment, which covers all specs.
const (
	GroupedA = iota
	GroupedB
)

var Loose int // want `exported identifier Loose has no doc comment`

type hidden struct{}

// Exported-looking methods on unexported receivers are plumbing.
func (hidden) Visible() {}

// Method is documented; methods on exported receivers are checked.
func (Documented) Method() {}

func (Documented) Naked() {} // want `exported identifier Naked has no doc comment`
