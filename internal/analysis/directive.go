package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// OrderInvariantDirective is the comment directive that justifies a range
// over a map inside a simulation-critical package: the author asserts the
// loop's observable effect is invariant under iteration order (e.g. a
// commutative reduction) and must state why after the directive.
//
//	//moteur:orderinvariant summing per-grid byte counters is commutative
//	for g, n := range wanBytes { total += n }
//
// The directive binds to the statement on the same line or on the line
// immediately below it, matching Go's own //go: directive placement.
const OrderInvariantDirective = "moteur:orderinvariant"

// Directive is one parsed //moteur: comment directive.
type Directive struct {
	// Pos is the position of the directive comment.
	Pos token.Pos
	// Line is the source line the comment sits on.
	Line int
	// Name is the directive name, e.g. "moteur:orderinvariant".
	Name string
	// Reason is the free text after the directive name, trimmed. The
	// maprange analyzer rejects directives with an empty Reason.
	Reason string
}

// Directives extracts all //moteur: directives from a file, keyed by
// nothing — callers index by Line to bind them to statements.
func Directives(fset *token.FileSet, file *ast.File) []Directive {
	var out []Directive
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+"moteur:")
			if !ok {
				continue
			}
			name, reason, _ := strings.Cut(text, " ")
			out = append(out, Directive{
				Pos:    c.Pos(),
				Line:   fset.Position(c.Pos()).Line,
				Name:   "moteur:" + name,
				Reason: strings.TrimSpace(reason),
			})
		}
	}
	return out
}
