// Package scenario compiles declarative what-if descriptions into
// ready-to-run federated campaign worlds. A scenario is one JSON file
// naming everything the simulator can vary — member grids and their
// clusters, link classes with per-pair matrix overrides, contended WAN
// streams, compute and storage outage schedules (explicit windows or
// generated correlated failure waves), storage-element capacity and
// eviction, the replication floor, broker policy, admission control, and
// a tenant mix whose arrivals, file sizes and placement skew come from
// seeded generators — so that every future experiment is a spec file
// instead of a hand-assembled Go test or a pile of CLI flags.
//
// The compiler (Compile) turns a validated Spec into a federation plus
// campaign tenant specs on a fresh engine; World.Run enacts it. All
// randomness flows through internal/rng streams forked from Spec.Seed,
// so a scenario is exactly as bit-reproducible as the hand-built worlds
// it replaces (pinned by the per-scenario determinism test over
// scenarios/*.json and by the spec↔hand-assembled equivalence test).
//
// Validation is line-anchored: a semantic error (an outage naming an
// unknown grid, overlapping outage windows, a tenant group referencing a
// missing policy) is reported with the line of the offending token in
// the source file, so a broken spec reads like a compiler error.
package scenario

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"os"
	"time"
)

// Duration is a time.Duration that unmarshals from JSON strings in
// time.ParseDuration syntax ("90s", "2h45m"). Bare JSON numbers are
// rejected: a unitless 30 silently meaning nanoseconds is exactly the
// kind of mistake a spec format exists to prevent.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("duration must be a string like \"90s\", got %s", data)
	}
	v, err := time.ParseDuration(s)
	if err != nil {
		return fmt.Errorf("bad duration %q: %w", s, err)
	}
	*d = Duration(v)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// D returns the duration as a time.Duration.
func (d Duration) D() time.Duration { return time.Duration(d) }

// Spec is one declarative scenario: a complete federated campaign world.
type Spec struct {
	// Name identifies the scenario in sweep tables and error messages.
	Name string `json:"name"`
	// Description is a one-line summary for the library table.
	Description string `json:"description,omitempty"`
	// Seed is the root of every generator stream the compiler forks
	// (arrivals, file sizes, failure waves). Member grids with no explicit
	// seed derive theirs from it too. Zero means 1.
	Seed uint64 `json:"seed,omitempty"`
	// Grids are the member infrastructures, in brokering order.
	Grids []GridSpec `json:"grids"`
	// Links configures the transfer topology. Nil keeps the federation
	// default (grid.DefaultWAN: intra-grid local, cross-grid 2 MB/s + 5 s).
	Links *LinksSpec `json:"links,omitempty"`
	// WANStreams, when positive, makes the WAN a contended fabric with
	// that many concurrent fetch legs per ordered grid pair.
	WANStreams int `json:"wanStreams,omitempty"`
	// Outages are explicit outage windows; Waves can generate more.
	Outages []OutageSpec `json:"outages,omitempty"`
	// Waves, when non-nil, generates correlated failure waves: periodic
	// bursts of outage windows hitting a random fraction of the grids at
	// once, seeded from Seed so the schedule is reproducible.
	Waves *WavesSpec `json:"waves,omitempty"`
	// Storage configures active storage elements. Nil keeps elements
	// passive and unlimited.
	Storage *StorageSpec `json:"storage,omitempty"`
	// Broker configures the federation's policy and re-brokering. Nil
	// means the locality-aware ranked policy with no re-brokering.
	Broker *BrokerSpec `json:"broker,omitempty"`
	// Admission configures campaign arrival gating. Nil disables it.
	Admission *AdmissionSpec `json:"admission,omitempty"`
	// Policies are the named enactor option mixes tenant groups reference.
	Policies map[string]OptionsSpec `json:"policies"`
	// Tenants are the tenant groups of the campaign, expanded in order.
	Tenants []TenantGroup `json:"tenants"`

	// raw holds the source bytes for line-anchored errors; file names the
	// source for error prefixes. Both empty on hand-built specs.
	raw  []byte
	file string
}

// GridSpec describes one member grid, or — with Count > 1 — a family of
// near-identical members differing only by name suffix and seed.
type GridSpec struct {
	// Name names the grid; with Count > 1 it is a prefix and member i is
	// named Name+i ("g" → g0, g1, …).
	Name string `json:"name"`
	// Count replicates this spec into that many members (0 means 1).
	Count int `json:"count,omitempty"`
	// Preset picks the base configuration: "quiet" (a single homogeneous
	// cluster of Nodes frictionless workers with small fixed middleware
	// latencies and no background load — the deterministic testbed of the
	// campaign scenario suites) or "default" (grid.DefaultConfig, the
	// calibrated 10-cluster production model with background load and
	// failures). Empty means "quiet".
	Preset string `json:"preset,omitempty"`
	// Nodes sizes the quiet preset's single cluster (0 means 24). Ignored
	// with explicit Clusters or the default preset.
	Nodes int `json:"nodes,omitempty"`
	// Clusters, when non-empty, replaces the preset's cluster set.
	Clusters []ClusterSpec `json:"clusters,omitempty"`
	// Seed seeds the grid's random streams; member i of a Count family
	// uses Seed+i. Zero derives Seed from the spec root seed and the
	// member index.
	Seed uint64 `json:"seed,omitempty"`
	// SubmitMean etc. override the preset's middleware latency
	// distributions; zero keeps the preset value.
	SubmitMean   Duration `json:"submitMean,omitempty"`
	SubmitSD     Duration `json:"submitSD,omitempty"`
	BrokerMean   Duration `json:"brokerMean,omitempty"`
	BrokerSD     Duration `json:"brokerSD,omitempty"`
	DispatchMean Duration `json:"dispatchMean,omitempty"`
	DispatchSD   Duration `json:"dispatchSD,omitempty"`
	// SubmitLoadFactor overrides the preset's middleware saturation
	// factor; zero keeps the preset value.
	SubmitLoadFactor float64 `json:"submitLoadFactor,omitempty"`
	// BrokerSlots overrides concurrent matchmaking slots; zero keeps the
	// preset value.
	BrokerSlots int `json:"brokerSlots,omitempty"`
	// Failures configures stochastic job failures. Nil keeps the preset's.
	Failures *FailureSpec `json:"failures,omitempty"`
	// StrictFIFO disables the fair-share gate at this grid's UI.
	StrictFIFO bool `json:"strictFifo,omitempty"`
	// BackgroundHorizon bounds background-load generation; zero keeps the
	// preset value.
	BackgroundHorizon Duration `json:"backgroundHorizon,omitempty"`
}

// ClusterSpec describes one computing element of an explicit cluster set.
type ClusterSpec struct {
	// Name names the computing element.
	Name string `json:"name"`
	// Nodes is the worker-node count.
	Nodes int `json:"nodes"`
	// MinSpeed and MaxSpeed bound the per-job node speed factor (both 0
	// means homogeneous speed 1).
	MinSpeed float64 `json:"minSpeed,omitempty"`
	MaxSpeed float64 `json:"maxSpeed,omitempty"`
	// TransferMBps and TransferStreams configure the close-SE link (0 MBps
	// means effectively infinite bandwidth).
	TransferMBps    float64 `json:"transferMBps,omitempty"`
	TransferStreams int     `json:"transferStreams,omitempty"`
	// BackgroundMeanIAT enables Poisson background load with the given
	// mean inter-arrival time (0 disables).
	BackgroundMeanIAT Duration `json:"backgroundMeanIAT,omitempty"`
	BackgroundMeanDur Duration `json:"backgroundMeanDur,omitempty"`
	BackgroundSDDur   Duration `json:"backgroundSDDur,omitempty"`
}

// FailureSpec configures stochastic job failures of one member grid.
type FailureSpec struct {
	// Probability is the per-attempt failure probability.
	Probability float64 `json:"probability"`
	// DetectDelay is how long a failure takes to surface.
	DetectDelay Duration `json:"detectDelay,omitempty"`
	// MaxRetries bounds total attempts per job on the grid.
	MaxRetries int `json:"maxRetries,omitempty"`
}

// LinksSpec configures the transfer topology: class links plus optional
// per-pair matrix overrides.
type LinksSpec struct {
	// Local makes every transfer free (the location-blind control arm).
	// All other fields are then rejected.
	Local bool `json:"local,omitempty"`
	// WANMBps and WANLatency price the cross-grid class link. Both zero
	// degrades cross-grid transfers to local (class semantics).
	WANMBps    float64  `json:"wanMBps,omitempty"`
	WANLatency Duration `json:"wanLatency,omitempty"`
	// IntraGridMBps and IntraGridLatency price the same-grid cross-cluster
	// class link. Both zero keeps it local (the close-SE abstraction).
	IntraGridMBps    float64  `json:"intraGridMBps,omitempty"`
	IntraGridLatency Duration `json:"intraGridLatency,omitempty"`
	// Pairs lists per-pair overrides layered over the class links.
	Pairs []PairSpec `json:"pairs,omitempty"`
}

// PairSpec is one measured (from, to) link of a per-pair matrix.
type PairSpec struct {
	// From and To name member grids (the direction a replica moves).
	From string `json:"from"`
	To   string `json:"to"`
	// MBps and Latency price the pair.
	MBps    float64  `json:"mbps"`
	Latency Duration `json:"latency,omitempty"`
}

// OutageSpec is one scheduled outage window.
type OutageSpec struct {
	// Grid names the member grid.
	Grid string `json:"grid"`
	// At is the outage start relative to federation construction.
	At Duration `json:"at"`
	// For is the outage duration; zero means no recovery.
	For Duration `json:"for,omitempty"`
	// Storage restricts the outage to the grid's storage dimension.
	Storage bool `json:"storage,omitempty"`
}

// WavesSpec generates correlated failure waves: Waves bursts, each
// hitting a Fraction of the member grids at once with outage windows of
// log-normally distributed durations. Generated windows respect the
// federation's per-grid non-overlap rule by construction: a grid whose
// previous window would still be open when a wave breaks sits that wave
// out.
type WavesSpec struct {
	// Waves is the number of waves (required > 0).
	Waves int `json:"waves"`
	// FirstAt is the start of the first wave.
	FirstAt Duration `json:"firstAt"`
	// Spacing separates consecutive wave starts (required > 0).
	Spacing Duration `json:"spacing"`
	// Fraction of member grids hit per wave, rounded up to at least one
	// grid (required in (0, 1]).
	Fraction float64 `json:"fraction"`
	// Duration is the mean outage duration (required > 0); DurationSD
	// spreads it log-normally (zero means constant).
	Duration   Duration `json:"duration"`
	DurationSD Duration `json:"durationSD,omitempty"`
	// Storage makes the waves storage-only outages.
	Storage bool `json:"storage,omitempty"`
}

// StorageSpec configures active storage elements.
type StorageSpec struct {
	// CapacityMB is the per-element capacity (0 keeps elements unlimited).
	CapacityMB float64 `json:"capacityMB,omitempty"`
	// Eviction picks the overflow policy: "lru" or "popularity" (empty
	// means lru).
	Eviction string `json:"eviction,omitempty"`
	// MinReplicas arms the k-replication repair floor (0 or 1 disables).
	MinReplicas int `json:"minReplicas,omitempty"`
}

// BrokerSpec configures the federation broker.
type BrokerSpec struct {
	// Policy names the broker policy: ranked, ranked-blind, ranked-safe,
	// backlog, rr, or pinned:N. Empty means ranked.
	Policy string `json:"policy,omitempty"`
	// Rebroker is the cross-grid resubmission budget after terminal
	// failures.
	Rebroker int `json:"rebroker,omitempty"`
	// EWMAAlpha is the telemetry smoothing factor (0 means 0.2).
	EWMAAlpha float64 `json:"ewmaAlpha,omitempty"`
}

// AdmissionSpec configures campaign arrival gating.
type AdmissionSpec struct {
	// MaxUIBacklog holds arrivals back while the UI backlog exceeds it.
	MaxUIBacklog int `json:"maxUIBacklog"`
	// Retry is the re-check period of held-back tenants (0 means 30s).
	Retry Duration `json:"retry,omitempty"`
	// MaxDelay bounds admission delay before rejection (0 means unbounded).
	MaxDelay Duration `json:"maxDelay,omitempty"`
}

// OptionsSpec is a named enactor option mix (core.Options in spec form).
type OptionsSpec struct {
	// DataParallelism allows concurrent invocations of one service.
	DataParallelism bool `json:"dataParallelism,omitempty"`
	// ServiceParallelism streams items between services as produced.
	ServiceParallelism bool `json:"serviceParallelism,omitempty"`
	// JobGrouping fuses eligible sequential wrapper chains.
	JobGrouping bool `json:"jobGrouping,omitempty"`
	// MaxConcurrent caps concurrent invocations per service (0 unlimited).
	MaxConcurrent int `json:"maxConcurrent,omitempty"`
	// DataGroupSize batches ready invocations into one grid job.
	DataGroupSize int `json:"dataGroupSize,omitempty"`
	// DataGroupWindow is how long an under-filled batch waits.
	DataGroupWindow Duration `json:"dataGroupWindow,omitempty"`
}

// TenantGroup expands into Count tenants sharing one policy, workload
// shape and arrival process.
type TenantGroup struct {
	// Count is the number of tenants in the group (0 means 1). Large
	// counts are the "population" mode: hundreds of tenants with
	// generated arrivals.
	Count int `json:"count,omitempty"`
	// Prefix names the tenants: member i of the campaign-wide expansion
	// is Prefix + two-digit index ("t" → t00, t01, …).
	Prefix string `json:"prefix"`
	// Policy references a named mix in Spec.Policies.
	Policy string `json:"policy"`
	// Weight is the tenant's fair-share weight at every member grid's UI
	// gate (0 or 1 means the plain round-robin share).
	Weight int `json:"weight,omitempty"`
	// Arrivals generates the group's arrival offsets. Nil means all at 0.
	Arrivals *ArrivalSpec `json:"arrivals,omitempty"`
	// Workload shapes each tenant's chain workflow and input corpus.
	Workload WorkloadSpec `json:"workload"`
	// Adapt opts the group into adaptive granularity retuning.
	Adapt *AdaptSpec `json:"adapt,omitempty"`
}

// AdaptSpec configures adaptive granularity for a tenant group.
type AdaptSpec struct {
	// Interval is the retuning period (required > 0).
	Interval Duration `json:"interval"`
	// Slots is the assumed per-tenant concurrency (0 means an equal share).
	Slots int `json:"slots,omitempty"`
	// MinBatch and MaxBatch clamp the chosen batch size (0 unclamped).
	MinBatch int `json:"minBatch,omitempty"`
	MaxBatch int `json:"maxBatch,omitempty"`
}

// ArrivalSpec is a generative arrival process for a tenant group.
type ArrivalSpec struct {
	// Kind picks the process: "staggered" (tenant i arrives at i×Spread —
	// the deterministic wave of the hand-built scenarios), "poisson"
	// (exponential inter-arrivals of mean MeanIAT), "bursty" (bursts of
	// Burst back-to-back arrivals jittered within BurstSpread, bursts
	// separated by exponential gaps of mean MeanIAT) or "diurnal"
	// (non-homogeneous Poisson whose rate swings sinusoidally with
	// amplitude Peak over Period).
	Kind string `json:"kind"`
	// Start offsets the whole process.
	Start Duration `json:"start,omitempty"`
	// Spread is the staggered kind's inter-arrival step.
	Spread Duration `json:"spread,omitempty"`
	// MeanIAT is the mean inter-arrival (poisson) or inter-burst (bursty)
	// time.
	MeanIAT Duration `json:"meanIAT,omitempty"`
	// Burst is the bursty kind's arrivals per burst.
	Burst int `json:"burst,omitempty"`
	// BurstSpread jitters arrivals within one burst over this window.
	BurstSpread Duration `json:"burstSpread,omitempty"`
	// Period is the diurnal kind's cycle length (0 means 24h).
	Period Duration `json:"period,omitempty"`
	// Peak is the diurnal kind's rate-modulation amplitude in [0, 1).
	Peak float64 `json:"peak,omitempty"`
}

// WorkloadSpec shapes one tenant's synthetic chain workload.
type WorkloadSpec struct {
	// Stages is the pipeline depth (required > 0).
	Stages int `json:"stages"`
	// Items is the input corpus size (required > 0).
	Items int `json:"items"`
	// Runtime is the per-stage compute time on a reference node.
	Runtime Duration `json:"runtime"`
	// Sizes generates the per-item input file sizes.
	Sizes SizeSpec `json:"sizes"`
	// OutputMB sizes stage outputs (0 means the size distribution's mean).
	OutputMB float64 `json:"outputMB,omitempty"`
	// Skew is the fraction of each tenant's inputs placed on its home
	// grid (the rest stays unplaced, i.e. local everywhere).
	Skew float64 `json:"skew,omitempty"`
	// Homes rotates tenant home grids: tenant i of the campaign-wide
	// expansion homes at Homes[i%len]. Empty leaves every input unplaced.
	Homes []string `json:"homes,omitempty"`
}

// SizeSpec is a generative file-size distribution.
type SizeSpec struct {
	// Kind picks the distribution: "constant" (every file MeanMB),
	// "lognormal" (mean MeanMB, standard deviation SDMB) or "pareto"
	// (scale MinMB, shape Alpha — the heavy-tailed corpus).
	Kind string `json:"kind"`
	// MeanMB is the constant size or the log-normal mean.
	MeanMB float64 `json:"meanMB,omitempty"`
	// SDMB is the log-normal standard deviation.
	SDMB float64 `json:"sdMB,omitempty"`
	// MinMB is the Pareto scale (the minimum file size).
	MinMB float64 `json:"minMB,omitempty"`
	// Alpha is the Pareto shape (smaller = heavier tail; required > 0).
	Alpha float64 `json:"alpha,omitempty"`
	// MaxMB caps a draw (0 uncapped). Pareto tails are unbounded; a cap
	// keeps a single astronomical draw from dominating a whole scenario.
	MaxMB float64 `json:"maxMB,omitempty"`
}

// Load reads, parses and validates a scenario file. Errors carry the
// file name and, for semantic errors, the line of the offending token.
func Load(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	return Parse(data, path)
}

// Parse parses and validates scenario bytes; file names the source in
// errors.
func Parse(data []byte, file string) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, decodeError(data, file, err)
	}
	s.raw, s.file = data, file
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// decodeError anchors a JSON decoding failure to a line of the source.
func decodeError(data []byte, file string, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		return fmt.Errorf("scenario %s: line %d: %w", file, lineOfOffset(data, syn.Offset), err)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		return fmt.Errorf("scenario %s: line %d: %w", file, lineOfOffset(data, typ.Offset), err)
	}
	// Unknown-field and custom unmarshaler errors carry the offending
	// token in their text; anchor to its first occurrence.
	if msg := err.Error(); msg != "" {
		if _, tok, ok := cutQuoted(msg); ok {
			if line := lineOfToken(data, tok); line > 0 {
				return fmt.Errorf("scenario %s: line %d: %w", file, line, err)
			}
		}
	}
	return fmt.Errorf("scenario %s: %w", file, err)
}

// cutQuoted extracts the first double-quoted token of a message.
func cutQuoted(msg string) (before, token string, ok bool) {
	i := -1
	for j := 0; j < len(msg); j++ {
		if msg[j] == '"' {
			if i < 0 {
				i = j + 1
				continue
			}
			return msg[:i-1], msg[i:j], true
		}
	}
	return "", "", false
}

// lineOfOffset returns the 1-based line of a byte offset.
func lineOfOffset(data []byte, off int64) int {
	if off > int64(len(data)) {
		off = int64(len(data))
	}
	return 1 + bytes.Count(data[:off], []byte("\n"))
}

// lineOfToken returns the 1-based line of the first occurrence of the
// token as a quoted JSON string, or 0 when absent.
func lineOfToken(data []byte, token string) int {
	i := bytes.Index(data, []byte(`"`+token+`"`))
	if i < 0 {
		return 0
	}
	return 1 + bytes.Count(data[:i], []byte("\n"))
}

// errAt builds a validation error anchored at the first occurrence of
// token in the source (plain when the spec was built by hand).
func (s *Spec) errAt(token, format string, args ...any) error {
	msg := fmt.Sprintf(format, args...)
	name := s.file
	if name == "" {
		name = s.Name
	}
	if line := lineOfToken(s.raw, token); line > 0 {
		return fmt.Errorf("scenario %s: line %d: %s", name, line, msg)
	}
	return fmt.Errorf("scenario %s: %s", name, msg)
}

// GridNames returns the expanded member-grid names in brokering order.
func (s *Spec) GridNames() []string {
	var names []string
	for _, g := range s.Grids {
		n := g.Count
		if n <= 0 {
			n = 1
		}
		if n == 1 {
			names = append(names, g.Name)
			continue
		}
		for i := 0; i < n; i++ {
			names = append(names, fmt.Sprintf("%s%d", g.Name, i))
		}
	}
	return names
}

// TenantCount returns the total tenant count across groups.
func (s *Spec) TenantCount() int {
	n := 0
	for _, g := range s.Tenants {
		c := g.Count
		if c <= 0 {
			c = 1
		}
		n += c
	}
	return n
}

// Validate checks the spec for semantic errors: unknown grid references,
// overlapping outage windows, tenant groups referencing missing
// policies, malformed generators. Errors are anchored to source lines
// when the spec came from Load/Parse.
func (s *Spec) Validate() error {
	if s.Name == "" {
		return s.errAt("", "missing scenario name")
	}
	if len(s.Grids) == 0 {
		return s.errAt(s.Name, "scenario has no grids")
	}
	gridSet := make(map[string]bool)
	for _, g := range s.Grids {
		if g.Name == "" {
			return s.errAt(s.Name, "grid with an empty name")
		}
		if g.Count < 0 {
			return s.errAt(g.Name, "grid %q has a negative count", g.Name)
		}
		switch g.Preset {
		case "", "quiet", "default":
		default:
			return s.errAt(g.Preset, "grid %q has unknown preset %q (want quiet|default)", g.Name, g.Preset)
		}
		if g.Nodes < 0 {
			return s.errAt(g.Name, "grid %q has negative nodes", g.Name)
		}
		for _, c := range g.Clusters {
			if c.Name == "" || c.Nodes <= 0 {
				return s.errAt(g.Name, "grid %q has a cluster without a name or positive nodes", g.Name)
			}
		}
		if f := g.Failures; f != nil && (f.Probability < 0 || f.Probability > 1) {
			return s.errAt(g.Name, "grid %q failure probability %v outside [0, 1]", g.Name, f.Probability)
		}
		for _, name := range (&Spec{Grids: []GridSpec{g}}).GridNames() {
			if gridSet[name] {
				return s.errAt(g.Name, "duplicate grid name %q", name)
			}
			gridSet[name] = true
		}
	}
	if l := s.Links; l != nil {
		if l.Local && (l.WANMBps != 0 || l.IntraGridMBps != 0 || len(l.Pairs) != 0) {
			return s.errAt("links", "links.local excludes every other link field")
		}
		for _, p := range l.Pairs {
			if !gridSet[p.From] {
				return s.errAt(p.From, "link pair references unknown grid %q", p.From)
			}
			if !gridSet[p.To] {
				return s.errAt(p.To, "link pair references unknown grid %q", p.To)
			}
			if p.From == p.To {
				return s.errAt(p.From, "link pair %s>%s is a self-loop", p.From, p.To)
			}
			if p.MBps <= 0 {
				return s.errAt(p.From, "link pair %s>%s has non-positive bandwidth", p.From, p.To)
			}
		}
	}
	if s.WANStreams < 0 {
		return s.errAt("wanStreams", "negative wanStreams")
	}
	if err := s.validateOutages(gridSet); err != nil {
		return err
	}
	if w := s.Waves; w != nil {
		switch {
		case w.Waves <= 0:
			return s.errAt("waves", "waves.waves must be positive")
		case w.Spacing <= 0:
			return s.errAt("spacing", "waves.spacing must be positive")
		case w.Fraction <= 0 || w.Fraction > 1:
			return s.errAt("fraction", "waves.fraction %v outside (0, 1]", w.Fraction)
		case w.Duration <= 0:
			return s.errAt("duration", "waves.duration must be positive")
		case w.FirstAt < 0 || w.DurationSD < 0:
			return s.errAt("waves", "waves has a negative instant or spread")
		}
	}
	if st := s.Storage; st != nil {
		if st.CapacityMB < 0 || st.MinReplicas < 0 {
			return s.errAt("storage", "storage has a negative capacity or replication floor")
		}
		switch st.Eviction {
		case "", "lru", "popularity":
		default:
			return s.errAt(st.Eviction, "unknown eviction policy %q (want lru|popularity)", st.Eviction)
		}
	}
	if b := s.Broker; b != nil {
		if b.Policy != "" {
			if _, err := ParsePolicy(b.Policy, len(gridSet)); err != nil {
				return s.errAt(b.Policy, "broker: %v", err)
			}
		}
		if b.Rebroker < 0 {
			return s.errAt("rebroker", "broker has a negative rebroker budget")
		}
		if b.EWMAAlpha < 0 || b.EWMAAlpha > 1 {
			return s.errAt("ewmaAlpha", "broker EWMA alpha %v outside (0, 1]", b.EWMAAlpha)
		}
	}
	if a := s.Admission; a != nil && a.MaxUIBacklog <= 0 {
		return s.errAt("admission", "admission.maxUIBacklog must be positive")
	}
	if len(s.Tenants) == 0 {
		return s.errAt(s.Name, "scenario has no tenant groups")
	}
	seenPrefix := make(map[string]bool)
	for _, g := range s.Tenants {
		if g.Prefix == "" {
			return s.errAt("tenants", "tenant group with an empty prefix")
		}
		if seenPrefix[g.Prefix] {
			return s.errAt(g.Prefix, "duplicate tenant group prefix %q", g.Prefix)
		}
		seenPrefix[g.Prefix] = true
		if g.Count < 0 {
			return s.errAt(g.Prefix, "tenant group %q has a negative count", g.Prefix)
		}
		if _, ok := s.Policies[g.Policy]; !ok {
			return s.errAt(g.Policy, "tenant group %q references missing policy %q", g.Prefix, g.Policy)
		}
		if g.Weight < 0 {
			return s.errAt(g.Prefix, "tenant group %q has a negative weight", g.Prefix)
		}
		if err := s.validateArrivals(g); err != nil {
			return err
		}
		if err := s.validateWorkload(g, gridSet); err != nil {
			return err
		}
		if a := g.Adapt; a != nil && a.Interval <= 0 {
			return s.errAt(g.Prefix, "tenant group %q adapt interval must be positive", g.Prefix)
		}
	}
	return nil
}

// validateOutages rejects unknown grids and overlapping windows of one
// grid and mode — the same rule federation.New enforces, surfaced here
// with a line anchor before any world is built.
func (s *Spec) validateOutages(gridSet map[string]bool) error {
	perKey := make(map[string][]OutageSpec)
	for _, o := range s.Outages {
		if !gridSet[o.Grid] {
			return s.errAt(o.Grid, "outage references unknown grid %q", o.Grid)
		}
		if o.At < 0 || o.For < 0 {
			return s.errAt(o.Grid, "outage of %q has a negative instant or duration", o.Grid)
		}
		key := o.Grid
		if o.Storage {
			key += "\x00storage"
		}
		for _, prev := range perKey[key] {
			lo, hi := prev, o
			if hi.At < lo.At {
				lo, hi = hi, lo
			}
			if lo.For == 0 || lo.At+lo.For > hi.At {
				return s.errAt(o.Grid, "outage windows of %q overlap", o.Grid)
			}
		}
		perKey[key] = append(perKey[key], o)
	}
	return nil
}

// validateArrivals checks a group's arrival process.
func (s *Spec) validateArrivals(g TenantGroup) error {
	a := g.Arrivals
	if a == nil {
		return nil
	}
	switch a.Kind {
	case "staggered":
		if a.Spread < 0 {
			return s.errAt(g.Prefix, "tenant group %q staggered arrivals need a non-negative spread", g.Prefix)
		}
	case "poisson":
		if a.MeanIAT <= 0 {
			return s.errAt(g.Prefix, "tenant group %q poisson arrivals need a positive meanIAT", g.Prefix)
		}
	case "bursty":
		if a.Burst <= 0 || a.MeanIAT <= 0 {
			return s.errAt(g.Prefix, "tenant group %q bursty arrivals need a positive burst and meanIAT", g.Prefix)
		}
	case "diurnal":
		if a.MeanIAT <= 0 {
			return s.errAt(g.Prefix, "tenant group %q diurnal arrivals need a positive meanIAT", g.Prefix)
		}
		if a.Peak < 0 || a.Peak >= 1 {
			return s.errAt(g.Prefix, "tenant group %q diurnal peak %v outside [0, 1)", g.Prefix, a.Peak)
		}
	default:
		return s.errAt(a.Kind, "tenant group %q has unknown arrival kind %q (want staggered|poisson|bursty|diurnal)", g.Prefix, a.Kind)
	}
	if a.Start < 0 {
		return s.errAt(g.Prefix, "tenant group %q arrivals start before the campaign", g.Prefix)
	}
	return nil
}

// validateWorkload checks a group's workload shape and size generator.
func (s *Spec) validateWorkload(g TenantGroup, gridSet map[string]bool) error {
	w := g.Workload
	if w.Stages <= 0 || w.Items <= 0 {
		return s.errAt(g.Prefix, "tenant group %q needs positive stages and items", g.Prefix)
	}
	if w.Runtime <= 0 {
		return s.errAt(g.Prefix, "tenant group %q needs a positive runtime", g.Prefix)
	}
	if w.Skew < 0 || w.Skew > 1 {
		return s.errAt(g.Prefix, "tenant group %q placement skew %v outside [0, 1]", g.Prefix, w.Skew)
	}
	if w.OutputMB < 0 {
		return s.errAt(g.Prefix, "tenant group %q has a negative outputMB", g.Prefix)
	}
	for _, h := range w.Homes {
		if !gridSet[h] {
			return s.errAt(h, "tenant group %q homes at unknown grid %q", g.Prefix, h)
		}
	}
	sz := w.Sizes
	switch sz.Kind {
	case "constant":
		if sz.MeanMB <= 0 {
			return s.errAt(g.Prefix, "tenant group %q constant sizes need a positive meanMB", g.Prefix)
		}
	case "lognormal":
		if sz.MeanMB <= 0 || sz.SDMB < 0 {
			return s.errAt(g.Prefix, "tenant group %q lognormal sizes need a positive meanMB and non-negative sdMB", g.Prefix)
		}
	case "pareto":
		if sz.MinMB <= 0 || sz.Alpha <= 0 {
			return s.errAt(g.Prefix, "tenant group %q pareto sizes need a positive minMB and alpha", g.Prefix)
		}
	default:
		return s.errAt(sz.Kind, "tenant group %q has unknown size kind %q (want constant|lognormal|pareto)", g.Prefix, sz.Kind)
	}
	if sz.MaxMB < 0 || (sz.MaxMB > 0 && sz.Kind == "pareto" && sz.MaxMB < sz.MinMB) {
		return s.errAt(g.Prefix, "tenant group %q size cap below the minimum", g.Prefix)
	}
	return nil
}

// constantSizes reports whether the distribution is degenerate (every
// draw identical), with the constant value.
func (sz SizeSpec) constant() (float64, bool) {
	switch sz.Kind {
	case "constant":
		return sz.MeanMB, true
	case "lognormal":
		if sz.SDMB == 0 {
			return sz.MeanMB, true
		}
	}
	return 0, false
}

// mean returns the distribution's analytic mean (used for default stage
// output sizes). A capped Pareto uses the uncapped mean clamped to the
// cap — close enough for sizing intermediates.
func (sz SizeSpec) mean() float64 {
	switch sz.Kind {
	case "constant":
		return sz.MeanMB
	case "lognormal":
		return sz.MeanMB
	case "pareto":
		if sz.Alpha <= 1 {
			// Infinite-mean regime: fall back to the scale (arbitrary but
			// finite and deterministic); scenarios wanting a specific
			// intermediate size set OutputMB explicitly.
			if sz.MaxMB > 0 {
				return math.Min(sz.MinMB*4, sz.MaxMB)
			}
			return sz.MinMB * 4
		}
		m := sz.MinMB * sz.Alpha / (sz.Alpha - 1)
		if sz.MaxMB > 0 {
			m = math.Min(m, sz.MaxMB)
		}
		return m
	}
	return 0
}
