package scenario

import (
	"math"
	"sort"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/sim"
)

// empiricalQuantile returns the p-quantile of draws (sorted copy taken
// internally).
func empiricalQuantile(draws []float64, p float64) float64 {
	s := append([]float64(nil), draws...)
	sort.Float64s(s)
	return s[int(p*float64(len(s)))]
}

// drawN samples n values from the distribution under one fixed stream.
func drawN(sz SizeSpec, seed uint64, n int) []float64 {
	r := rng.New(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = sz.Draw(r)
	}
	return out
}

// TestLogNormalSizesHitQuantiles checks the heavy-tail generator against
// its analytic quantile function: 20k lognormal draws must land within a
// few percent of the configured median and p90, and within sampling
// noise of the configured mean.
func TestLogNormalSizesHitQuantiles(t *testing.T) {
	sz := SizeSpec{Kind: "lognormal", MeanMB: 10, SDMB: 8}
	draws := drawN(sz, 42, 20000)
	for _, tc := range []struct {
		p   float64
		tol float64
	}{{0.5, 0.05}, {0.9, 0.05}, {0.99, 0.12}} {
		got := empiricalQuantile(draws, tc.p)
		want := sz.Quantile(tc.p)
		if math.Abs(got-want)/want > tc.tol {
			t.Errorf("lognormal p%.0f = %.2f MB, analytic %.2f MB (tolerance %.0f%%)",
				tc.p*100, got, want, tc.tol*100)
		}
	}
	var sum float64
	for _, v := range draws {
		sum += v
	}
	if mean := sum / float64(len(draws)); math.Abs(mean-sz.MeanMB)/sz.MeanMB > 0.05 {
		t.Errorf("lognormal empirical mean %.2f MB, configured %.2f MB", mean, sz.MeanMB)
	}
}

// TestParetoSizesHitQuantiles checks the Pareto generator against its
// inverse CDF, and that the MaxMB cap truncates the tail without moving
// the body.
func TestParetoSizesHitQuantiles(t *testing.T) {
	sz := SizeSpec{Kind: "pareto", MinMB: 4, Alpha: 1.5}
	draws := drawN(sz, 7, 20000)
	for _, tc := range []struct {
		p   float64
		tol float64
	}{{0.5, 0.05}, {0.9, 0.07}, {0.99, 0.15}} {
		got := empiricalQuantile(draws, tc.p)
		want := sz.Quantile(tc.p)
		if math.Abs(got-want)/want > tc.tol {
			t.Errorf("pareto p%.0f = %.2f MB, analytic %.2f MB (tolerance %.0f%%)",
				tc.p*100, got, want, tc.tol*100)
		}
	}
	for _, v := range draws {
		if v < sz.MinMB {
			t.Fatalf("pareto draw %.3f below the scale %.3f", v, sz.MinMB)
		}
	}
	capped := SizeSpec{Kind: "pareto", MinMB: 4, Alpha: 1.5, MaxMB: 50}
	for i, v := range drawN(capped, 7, 20000) {
		if v > capped.MaxMB {
			t.Fatalf("capped pareto draw %.3f above MaxMB", v)
		}
		if draws[i] <= capped.MaxMB && v != draws[i] {
			t.Fatalf("cap moved an in-range draw: %.3f vs %.3f", v, draws[i])
		}
	}
}

// TestBurstyArrivalsReproduceExactly pins the generative arrival
// processes to their seeds: the same spec under the same rng stream must
// reproduce the exact schedule, and a different seed must not.
func TestBurstyArrivalsReproduceExactly(t *testing.T) {
	a := ArrivalSpec{Kind: "bursty", Burst: 6, BurstSpread: Duration(30 * time.Second), MeanIAT: Duration(20 * time.Minute)}
	first := a.Times(rng.New(99), 24)
	again := a.Times(rng.New(99), 24)
	if len(first) != 24 {
		t.Fatalf("got %d arrivals, want 24", len(first))
	}
	for i := range first {
		if first[i] != again[i] {
			t.Fatalf("arrival %d not reproduced: %v vs %v", i, first[i], again[i])
		}
	}
	other := a.Times(rng.New(100), 24)
	same := true
	for i := range first {
		if first[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the identical bursty schedule")
	}
	// Burst structure: each burst of 6 lands within its jitter window,
	// bursts are separated by macroscopic gaps.
	for b := 0; b < 4; b++ {
		lo, hi := first[6*b], first[6*b+5]
		if hi-lo > 30*time.Second {
			t.Errorf("burst %d spans %v, jitter window is 30s", b, hi-lo)
		}
	}
}

// TestDiurnalArrivalsModulate checks the non-homogeneous Poisson
// process: with a strong peak amplitude, arrivals must cluster in the
// high-rate half of the cycle.
func TestDiurnalArrivalsModulate(t *testing.T) {
	period := 4 * time.Hour
	a := ArrivalSpec{Kind: "diurnal", MeanIAT: Duration(time.Minute), Peak: 0.9, Period: Duration(period)}
	times := a.Times(rng.New(5), 4000)
	high, low := 0, 0
	for _, at := range times {
		phase := math.Sin(2 * math.Pi * float64(at) / float64(period))
		if phase > 0 {
			high++
		} else {
			low++
		}
	}
	if high < 2*low {
		t.Errorf("diurnal arrivals: %d in the high half-cycle vs %d in the low; want at least 2:1", high, low)
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			t.Fatal("diurnal arrivals not sorted")
		}
	}
}

// TestStaggeredArrivalsDeterministic pins the staggered kind: pure
// arithmetic, no draws consumed.
func TestStaggeredArrivalsDeterministic(t *testing.T) {
	a := ArrivalSpec{Kind: "staggered", Start: Duration(time.Minute), Spread: Duration(30 * time.Second)}
	r := rng.New(1)
	before := r.Uint64()
	times := a.Times(rng.New(1), 4)
	for i, at := range times {
		if want := time.Minute + time.Duration(i)*30*time.Second; at != want {
			t.Fatalf("staggered arrival %d = %v, want %v", i, at, want)
		}
	}
	// The stream must be untouched by a deterministic kind: a fresh
	// source still yields the same first draw.
	if after := rng.New(1).Uint64(); before != after {
		t.Fatal("rng source state unexpectedly diverged")
	}
}

// TestFailureWavesRespectOverlapRule checks the generated outage
// schedule against the federation's per-grid non-overlap validation (the
// PR-6 rule): windows of one grid and mode must not overlap, and the
// whole schedule must be accepted by federation.New.
func TestFailureWavesRespectOverlapRule(t *testing.T) {
	w := WavesSpec{
		Waves:      5,
		FirstAt:    Duration(5 * time.Minute),
		Spacing:    Duration(10 * time.Minute),
		Fraction:   0.6,
		Duration:   Duration(12 * time.Minute), // longer than spacing: forces skip logic
		DurationSD: Duration(6 * time.Minute),
	}
	grids := []string{"g0", "g1", "g2", "g3", "g4"}
	out := w.FailureWaves(rng.New(3), grids)
	if len(out) == 0 {
		t.Fatal("no outages generated")
	}
	perGrid := make(map[string][]federation.Outage)
	for _, o := range out {
		if o.For < time.Second {
			t.Fatalf("outage duration %v below the 1s floor", o.For)
		}
		perGrid[o.Grid] = append(perGrid[o.Grid], o)
	}
	for g, windows := range perGrid {
		sort.Slice(windows, func(i, j int) bool { return windows[i].At < windows[j].At })
		for i := 1; i < len(windows); i++ {
			lo, hi := windows[i-1], windows[i]
			if lo.For == 0 || lo.At+lo.For > hi.At {
				t.Fatalf("grid %s windows overlap: [%v+%v] then [%v+%v]", g, lo.At, lo.For, hi.At, hi.For)
			}
		}
	}

	// Determinism: the same seed reproduces the schedule exactly.
	again := w.FailureWaves(rng.New(3), grids)
	if len(again) != len(out) {
		t.Fatalf("wave schedule not reproduced: %d vs %d windows", len(out), len(again))
	}
	for i := range out {
		if out[i] != again[i] {
			t.Fatalf("wave window %d not reproduced: %+v vs %+v", i, out[i], again[i])
		}
	}

	// The real validator agrees: a federation over these grids accepts
	// the schedule.
	eng := sim.NewEngine()
	specs := make([]federation.GridSpec, len(grids))
	for i, name := range grids {
		specs[i] = federation.GridSpec{Name: name, Config: grid.IdealConfig(2)}
	}
	if _, err := federation.New(eng, federation.Config{Grids: specs, Outages: out}); err != nil {
		t.Fatalf("federation.New rejected the generated schedule: %v", err)
	}
}
