package scenario

import (
	"fmt"
	"time"
)

// Overrides carries CLI-level adjustments layered over a loaded spec:
// when a scenario file is in play, the flags of cmd/federation and
// cmd/campaign stop describing whole worlds and become overrides of the
// named scenario. Nil pointer fields leave the spec untouched.
type Overrides struct {
	// Seed replaces the spec's root seed.
	Seed *uint64
	// Policy replaces the broker policy name.
	Policy *string
	// WANStreams replaces the contended-fabric stream count.
	WANStreams *int
	// Rebroker replaces the cross-grid resubmission budget.
	Rebroker *int
	// SECapacityMB and SEEviction replace the storage section.
	SECapacityMB *float64
	SEEviction   *string
	// MinReplicas replaces the replication floor.
	MinReplicas *int
	// Outages are appended to the spec's explicit outage windows.
	Outages []OutageSpec
	// Tenants replaces the tenant count — only meaningful when the spec
	// has exactly one tenant group.
	Tenants *int
	// Stages, Items, Runtime and Skew replace the corresponding workload
	// field in every tenant group.
	Stages  *int
	Items   *int
	Runtime *time.Duration
	Skew    *float64
	// FileMB replaces the constant file size of every constant-size
	// tenant group (an error when the spec has none: the flag would be
	// silently ignored).
	FileMB *float64
	// Spread replaces the inter-arrival step of every staggered tenant
	// group.
	Spread *time.Duration
}

// Apply layers the overrides onto the spec and re-validates it. The
// spec is mutated in place; validation errors keep their line anchors
// relative to the original file (overridden values no longer appear in
// it, so anchored errors can point at the replaced token).
func (o Overrides) Apply(s *Spec) error {
	if o.Seed != nil {
		s.Seed = *o.Seed
	}
	if o.Policy != nil {
		if s.Broker == nil {
			s.Broker = &BrokerSpec{}
		}
		s.Broker.Policy = *o.Policy
	}
	if o.WANStreams != nil {
		s.WANStreams = *o.WANStreams
	}
	if o.Rebroker != nil {
		if s.Broker == nil {
			s.Broker = &BrokerSpec{}
		}
		s.Broker.Rebroker = *o.Rebroker
	}
	if o.SECapacityMB != nil || o.SEEviction != nil || o.MinReplicas != nil {
		if s.Storage == nil {
			s.Storage = &StorageSpec{}
		}
		if o.SECapacityMB != nil {
			s.Storage.CapacityMB = *o.SECapacityMB
		}
		if o.SEEviction != nil {
			s.Storage.Eviction = *o.SEEviction
		}
		if o.MinReplicas != nil {
			s.Storage.MinReplicas = *o.MinReplicas
		}
	}
	s.Outages = append(s.Outages, o.Outages...)
	if o.Tenants != nil {
		if len(s.Tenants) != 1 {
			return fmt.Errorf("scenario %s: -tenants override is ambiguous over %d tenant groups", s.Name, len(s.Tenants))
		}
		s.Tenants[0].Count = *o.Tenants
	}
	for i := range s.Tenants {
		w := &s.Tenants[i].Workload
		if o.Stages != nil {
			w.Stages = *o.Stages
		}
		if o.Items != nil {
			w.Items = *o.Items
		}
		if o.Runtime != nil {
			w.Runtime = Duration(*o.Runtime)
		}
		if o.Skew != nil {
			w.Skew = *o.Skew
		}
	}
	if o.FileMB != nil {
		hit := false
		for i := range s.Tenants {
			if sz := &s.Tenants[i].Workload.Sizes; sz.Kind == "constant" {
				sz.MeanMB = *o.FileMB
				hit = true
			}
		}
		if !hit {
			return fmt.Errorf("scenario %s: -file-mb override needs a constant-size tenant group", s.Name)
		}
	}
	if o.Spread != nil {
		hit := false
		for i := range s.Tenants {
			if a := s.Tenants[i].Arrivals; a != nil && a.Kind == "staggered" {
				a.Spread = Duration(*o.Spread)
				hit = true
			}
		}
		if !hit {
			return fmt.Errorf("scenario %s: -spread override needs a staggered tenant group", s.Name)
		}
	}
	return s.Validate()
}
