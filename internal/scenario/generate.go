package scenario

import (
	"math"
	"sort"
	"time"

	"repro/internal/federation"
	"repro/internal/rng"
)

// Stream labels keep the compiler's rng forks stable: adding a generator
// must not reshuffle the draws of existing ones, so each consumer forks
// the root with its own label (plus a per-group or per-tenant index).
const (
	streamArrivals = 1 << 8
	streamSizes    = 2 << 8
	streamWaves    = 3 << 8
)

// Draw samples one file size from the distribution. Draws are clamped
// to MaxMB when set and never return below a hundredth of a megabyte
// (catalog entries of size zero would make transfer-time accounting
// degenerate).
func (sz SizeSpec) Draw(r *rng.Source) float64 {
	var v float64
	switch sz.Kind {
	case "constant":
		v = sz.MeanMB
	case "lognormal":
		v = r.LogNormalMeanSD(sz.MeanMB, sz.SDMB)
	case "pareto":
		// Inverse-CDF sampling: F(x) = 1 - (xm/x)^alpha, so
		// x = xm (1-u)^(-1/alpha) with u uniform in [0,1).
		v = sz.MinMB * math.Pow(1-r.Float64(), -1/sz.Alpha)
	}
	if sz.MaxMB > 0 && v > sz.MaxMB {
		v = sz.MaxMB
	}
	if v < 0.01 {
		v = 0.01
	}
	return v
}

// Quantile returns the distribution's analytic p-quantile (p in (0,1)),
// ignoring the MaxMB cap — the reference value the statistical property
// tests compare empirical draws against.
func (sz SizeSpec) Quantile(p float64) float64 {
	switch sz.Kind {
	case "constant":
		return sz.MeanMB
	case "lognormal":
		v := sz.SDMB * sz.SDMB / (sz.MeanMB * sz.MeanMB)
		sigma2 := math.Log(1 + v)
		mu := math.Log(sz.MeanMB) - sigma2/2
		return math.Exp(mu + math.Sqrt(sigma2)*normalQuantile(p))
	case "pareto":
		return sz.MinMB * math.Pow(1-p, -1/sz.Alpha)
	}
	return 0
}

// normalQuantile is the standard normal inverse CDF (Acklam's rational
// approximation, |relative error| < 1.15e-9 — far below the tolerance of
// any statistical test using it).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("scenario: normalQuantile needs p in (0, 1)")
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Times generates n arrival offsets from the process, sorted ascending.
// The staggered kind is purely deterministic; the stochastic kinds draw
// from r, so a fixed seed reproduces the exact schedule.
func (a ArrivalSpec) Times(r *rng.Source, n int) []time.Duration {
	out := make([]time.Duration, n)
	start := a.Start.D()
	switch a.Kind {
	case "staggered":
		for i := range out {
			out[i] = start + time.Duration(i)*a.Spread.D()
		}
	case "poisson":
		t := start
		for i := range out {
			t += time.Duration(r.Exponential(float64(a.MeanIAT.D())))
			out[i] = t
		}
	case "bursty":
		t := start
		for i := 0; i < n; {
			// One burst lands together, jittered within BurstSpread so the
			// serialized UI sees near-simultaneous arrivals, then the next
			// burst follows after an exponential gap.
			for j := 0; j < a.Burst && i < n; j, i = j+1, i+1 {
				jitter := time.Duration(0)
				if a.BurstSpread > 0 {
					jitter = time.Duration(r.Float64() * float64(a.BurstSpread.D()))
				}
				out[i] = t + jitter
			}
			t += time.Duration(r.Exponential(float64(a.MeanIAT.D())))
		}
	case "diurnal":
		// Thinning over the sinusoidal rate λ(t) = λ0 (1 + Peak sin(2πt/P)):
		// candidates arrive at the peak rate λmax = λ0 (1 + Peak) and are
		// accepted with probability λ(t)/λmax.
		period := a.Period.D()
		if period <= 0 {
			period = 24 * time.Hour
		}
		lambda0 := 1 / float64(a.MeanIAT.D())
		lambdaMax := lambda0 * (1 + a.Peak)
		t := start
		for i := 0; i < n; {
			t += time.Duration(r.Exponential(1 / lambdaMax))
			phase := 2 * math.Pi * float64(t) / float64(period)
			rate := lambda0 * (1 + a.Peak*math.Sin(phase))
			if r.Float64() < rate/lambdaMax {
				out[i] = t
				i++
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// FailureWaves generates the spec's correlated outage schedule over the
// named member grids: wave k breaks at FirstAt + k×Spacing and takes
// ceil(Fraction×len(grids)) grids (a fresh random subset per wave) dark
// for log-normally distributed windows. The schedule respects the
// federation's per-grid overlap rule by construction — a grid whose
// previous window is still open when a wave breaks sits that wave out —
// so the generated outages always pass federation.New validation.
func (w WavesSpec) FailureWaves(r *rng.Source, grids []string) []federation.Outage {
	var out []federation.Outage
	hit := int(math.Ceil(w.Fraction * float64(len(grids))))
	if hit < 1 {
		hit = 1
	}
	if hit > len(grids) {
		hit = len(grids)
	}
	recovered := make([]time.Duration, len(grids))
	for k := 0; k < w.Waves; k++ {
		at := w.FirstAt.D() + time.Duration(k)*w.Spacing.D()
		perm := r.Perm(len(grids))
		for _, gi := range perm[:hit] {
			dur := w.Duration.D()
			if w.DurationSD > 0 {
				dur = time.Duration(r.LogNormalMeanSD(float64(w.Duration.D()), float64(w.DurationSD.D())))
			}
			if dur < time.Second {
				dur = time.Second
			}
			if at < recovered[gi] {
				// The grid's previous window is still open: starting another
				// would violate the non-overlap rule, so this grid rides the
				// wave out. Its random draws above are still consumed, which
				// keeps the remaining schedule independent of the skip.
				continue
			}
			recovered[gi] = at + dur
			out = append(out, federation.Outage{Grid: grids[gi], At: at, For: dur, Storage: w.Storage})
		}
	}
	return out
}
