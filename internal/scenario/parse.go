package scenario

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
)

// ErrParse marks a malformed CLI scenario fragment (an -outage window, a
// -pairs matrix entry, a policy name); callers distinguish user input
// errors from world-construction failures with errors.Is.
var ErrParse = errors.New("scenario: parse error")

// ParseOutage reads a name@start+duration outage window ("+duration" is
// optional: without it the grid never recovers). It is the parser behind
// cmd/federation's -outage and -se-outage flags.
func ParseOutage(s string) (federation.Outage, error) {
	name, window, ok := strings.Cut(s, "@")
	if !ok || name == "" {
		return federation.Outage{}, fmt.Errorf("%w: want name@start+duration, got %q", ErrParse, s)
	}
	start, dur, recovers := strings.Cut(window, "+")
	at, err := time.ParseDuration(start)
	if err != nil {
		return federation.Outage{}, fmt.Errorf("%w: bad start in %q: %w", ErrParse, s, err)
	}
	if at < 0 {
		return federation.Outage{}, fmt.Errorf("%w: negative start in %q", ErrParse, s)
	}
	o := federation.Outage{Grid: name, At: at}
	if recovers {
		if o.For, err = time.ParseDuration(dur); err != nil {
			return federation.Outage{}, fmt.Errorf("%w: bad duration in %q: %w", ErrParse, s, err)
		}
		if o.For <= 0 {
			return federation.Outage{}, fmt.Errorf("%w: non-positive duration in %q", ErrParse, s)
		}
	}
	return o, nil
}

// ParsePairs reads a from>to=MBps:latency[,...] per-pair override list
// into a LinkMatrix over the given fallback model. It is the parser
// behind cmd/federation's -pairs flag.
func ParsePairs(s string, fallback grid.LinkModel) (*grid.LinkMatrix, error) {
	m := &grid.LinkMatrix{Pairs: make(map[grid.GridPair]grid.Link), Fallback: fallback}
	for _, entry := range strings.Split(s, ",") {
		pair, link, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok {
			return nil, fmt.Errorf("%w: want from>to=MBps:latency, got %q", ErrParse, entry)
		}
		from, to, ok := strings.Cut(pair, ">")
		if !ok || from == "" || to == "" {
			return nil, fmt.Errorf("%w: bad pair in %q", ErrParse, entry)
		}
		mbps, lat, ok := strings.Cut(link, ":")
		if !ok {
			return nil, fmt.Errorf("%w: bad link in %q (want MBps:latency)", ErrParse, entry)
		}
		bw, err := strconv.ParseFloat(mbps, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad bandwidth in %q: %w", ErrParse, entry, err)
		}
		if bw <= 0 {
			// Link.Cost treats MBps <= 0 as latency-only (infinite
			// bandwidth), so a typo would silently run a different
			// experiment than the table claims.
			return nil, fmt.Errorf("%w: non-positive bandwidth in %q", ErrParse, entry)
		}
		latency, err := time.ParseDuration(lat)
		if err != nil {
			return nil, fmt.Errorf("%w: bad latency in %q: %w", ErrParse, entry, err)
		}
		if latency < 0 {
			return nil, fmt.Errorf("%w: negative latency in %q", ErrParse, entry)
		}
		m.Pairs[grid.GridPair{From: from, To: to}] = grid.Link{MBps: bw, Latency: latency}
	}
	return m, nil
}

// ParsePolicy resolves a broker policy name (ranked, ranked-blind,
// ranked-safe, backlog, rr, pinned:N), rejecting a pinned index outside
// the grids-member federation — Pinned would clamp it to grid 0 and a
// sweep row would silently describe a different experiment.
func ParsePolicy(name string, grids int) (federation.Policy, error) {
	switch {
	case name == "ranked":
		return federation.Ranked(), nil
	case name == "ranked-blind":
		return federation.RankedLocalityBlind(), nil
	case name == "ranked-safe":
		return federation.RankedSafe(), nil
	case name == "backlog":
		return federation.LeastBacklog(), nil
	case name == "rr":
		return federation.RoundRobin(), nil
	case strings.HasPrefix(name, "pinned:"):
		idx, err := strconv.Atoi(strings.TrimPrefix(name, "pinned:"))
		if err != nil {
			return nil, fmt.Errorf("%w: bad pinned index in %q: %w", ErrParse, name, err)
		}
		if idx < 0 || idx >= grids {
			return nil, fmt.Errorf("%w: pinned index %d outside the %d-grid federation", ErrParse, idx, grids)
		}
		return federation.Pinned(idx), nil
	}
	return nil, fmt.Errorf("%w: unknown policy %q (want ranked|ranked-blind|ranked-safe|backlog|rr|pinned:N)", ErrParse, name)
}

// ParseFloats parses a comma-separated float list (sweep axis values).
func ParseFloats(s string) ([]float64, error) {
	var out []float64
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad value %q", ErrParse, f)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseEviction resolves an eviction policy name (lru, popularity).
func ParseEviction(name string) (grid.EvictionPolicy, error) {
	switch name {
	case "", "lru":
		return grid.EvictLRU(), nil
	case "popularity":
		return grid.EvictPopularity(), nil
	}
	return nil, fmt.Errorf("%w: unknown eviction policy %q (want lru|popularity)", ErrParse, name)
}
