package scenario

import (
	"path/filepath"
	"sort"
	"testing"

	"repro/internal/sim"
)

// libraryPaths returns every spec of the shipped scenario library,
// failing the test if the library shrank below its advertised size.
func libraryPaths(t *testing.T) []string {
	t.Helper()
	paths, err := filepath.Glob("../../scenarios/*.json")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 6 {
		t.Fatalf("scenario library has %d specs, want at least 6", len(paths))
	}
	sort.Strings(paths)
	return paths
}

// scaleSpec reports whether a spec belongs to the scale tier of the
// library — tens of thousands of jobs, seconds of wall time per run.
// Scale specs keep the full two-run determinism golden in the default
// suite, but are skipped in short mode and under the race detector: the
// campaign path they exercise is single-goroutine, so racing them buys
// no coverage the small specs don't already provide, at ~100s a spec.
func scaleSpec(spec *Spec) bool {
	jobs := 0
	for _, g := range spec.Tenants {
		jobs += g.Count * g.Workload.Stages * g.Workload.Items
	}
	return jobs >= 50000
}

// runLibrarySpec loads, compiles and runs one library spec on a fresh
// engine, failing on any tenant error, and returns the run fingerprint.
func runLibrarySpec(t *testing.T, path string) uint64 {
	t.Helper()
	spec, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if scaleSpec(spec) {
		if testing.Short() {
			t.Skip("scale spec skipped in short mode")
		}
		if raceEnabled {
			t.Skip("scale spec skipped under the race detector (single-goroutine path, covered by small specs)")
		}
	}
	eng := sim.NewEngine()
	w, err := Compile(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
		}
	}
	return Fingerprint(rep, w.Fed)
}

// TestScenarioLibraryDeterminism is the per-scenario golden gate: every
// spec of the shipped library is compiled and run twice from a fresh
// Load each time, and the two runs must produce bit-identical
// fingerprints (per-tenant makespans, per-grid telemetry, WAN and
// storage churn). A spec file can never go nondeterministic silently.
func TestScenarioLibraryDeterminism(t *testing.T) {
	for _, path := range libraryPaths(t) {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			first := runLibrarySpec(t, path)
			if again := runLibrarySpec(t, path); again != first {
				t.Fatalf("scenario not deterministic: %#x vs %#x", first, again)
			}
		})
	}
}

// TestScenarioLibraryLoads pins the library's metadata: every spec
// parses, validates, and names itself after its file — so the sweep
// table rows and the file listing stay in one-to-one correspondence.
func TestScenarioLibraryLoads(t *testing.T) {
	for _, path := range libraryPaths(t) {
		spec, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		base := filepath.Base(path)
		if want := spec.Name + ".json"; base != want {
			t.Errorf("%s: spec name %q does not match the file name", base, spec.Name)
		}
		if spec.Description == "" {
			t.Errorf("%s: spec has no description for the library table", base)
		}
	}
}
