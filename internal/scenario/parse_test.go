package scenario

import (
	"errors"
	"testing"
	"time"

	"repro/internal/grid"
)

// TestParseOutage covers the name@start+duration grammar shared by the
// -outage and -se-outage flags, including the open-ended no-recovery
// form, and every malformed shape a sweep invocation can mistype.
func TestParseOutage(t *testing.T) {
	o, err := ParseOutage("grid01@20m+30m")
	if err != nil {
		t.Fatal(err)
	}
	if o.Grid != "grid01" || o.At != 20*time.Minute || o.For != 30*time.Minute {
		t.Fatalf("parsed %+v", o)
	}
	o, err = ParseOutage("g0@1h")
	if err != nil {
		t.Fatal(err)
	}
	if o.Grid != "g0" || o.At != time.Hour || o.For != 0 {
		t.Fatalf("open-ended outage parsed as %+v", o)
	}
	for _, bad := range []string{
		"",            // empty
		"grid01",      // no window
		"@20m+30m",    // empty name
		"g0@+30m",     // empty start
		"g0@20x+30m",  // bad start unit
		"g0@-5m+30m",  // negative start
		"g0@20m+",     // empty duration
		"g0@20m+5x",   // bad duration unit
		"g0@20m+0s",   // zero duration (use the open-ended form)
		"g0@20m+-10m", // negative duration
	} {
		if _, err := ParseOutage(bad); !errors.Is(err, ErrParse) {
			t.Errorf("ParseOutage(%q) = %v, want ErrParse", bad, err)
		}
	}
}

// TestParsePairs covers the from>to=MBps:latency per-pair override list
// behind -pairs, including the silent-typo traps (non-positive bandwidth
// would mean infinite bandwidth downstream).
func TestParsePairs(t *testing.T) {
	fallback := &grid.Links{WAN: grid.Link{MBps: 2, Latency: 5 * time.Second}}
	m, err := ParsePairs("g0>g1=0.5:15s, g1>g0=1:2s", fallback)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Pairs) != 2 {
		t.Fatalf("parsed %d pairs, want 2", len(m.Pairs))
	}
	if l := m.Pairs[grid.GridPair{From: "g0", To: "g1"}]; l.MBps != 0.5 || l.Latency != 15*time.Second {
		t.Fatalf("g0>g1 parsed as %+v", l)
	}
	if m.Fallback != fallback {
		t.Fatalf("fallback not preserved: %+v", m.Fallback)
	}
	for _, bad := range []string{
		"",                 // no entry at all
		"g0>g1",            // no link
		">g1=1:2s",         // empty from
		"g0>=1:2s",         // empty to
		"g0-g1=1:2s",       // wrong pair separator
		"g0>g1=1",          // no latency
		"g0>g1=fast:2s",    // bad bandwidth
		"g0>g1=0:2s",       // zero bandwidth (means infinite downstream)
		"g0>g1=-1:2s",      // negative bandwidth
		"g0>g1=1:soon",     // bad latency
		"g0>g1=1:-2s",      // negative latency
		"g0>g1=1:2s,extra", // valid entry then junk
	} {
		if _, err := ParsePairs(bad, fallback); !errors.Is(err, ErrParse) {
			t.Errorf("ParsePairs(%q) = %v, want ErrParse", bad, err)
		}
	}
}

// TestParsePolicy covers every broker policy name and the pinned-index
// range check against the federation size.
func TestParsePolicy(t *testing.T) {
	for _, name := range []string{"ranked", "ranked-blind", "ranked-safe", "backlog", "rr", "pinned:0", "pinned:3"} {
		if p, err := ParsePolicy(name, 4); err != nil || p == nil {
			t.Errorf("ParsePolicy(%q, 4) = %v, %v", name, p, err)
		}
	}
	for _, bad := range []string{
		"",          // empty
		"Ranked",    // case-sensitive
		"random",    // unknown
		"pinned",    // no index
		"pinned:",   // empty index
		"pinned:x",  // non-numeric index
		"pinned:-1", // negative index
		"pinned:4",  // one past the last grid
	} {
		if _, err := ParsePolicy(bad, 4); !errors.Is(err, ErrParse) {
			t.Errorf("ParsePolicy(%q, 4) = %v, want ErrParse", bad, err)
		}
	}
}

// TestParseFloats covers the comma-separated sweep axis grammar.
func TestParseFloats(t *testing.T) {
	got, err := ParseFloats("0, 0.5,1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0 || got[1] != 0.5 || got[2] != 1 {
		t.Fatalf("parsed %v", got)
	}
	for _, bad := range []string{"", "0,,1", "0,half", "0;1"} {
		if _, err := ParseFloats(bad); !errors.Is(err, ErrParse) {
			t.Errorf("ParseFloats(%q) = %v, want ErrParse", bad, err)
		}
	}
}

// TestParseEviction covers the eviction policy names; an empty name is
// the LRU default, anything unknown is a wrapped parse error.
func TestParseEviction(t *testing.T) {
	for _, name := range []string{"", "lru", "popularity"} {
		if p, err := ParseEviction(name); err != nil || p == nil {
			t.Errorf("ParseEviction(%q) = %v, %v", name, p, err)
		}
	}
	for _, bad := range []string{"LRU", "fifo", "random"} {
		if _, err := ParseEviction(bad); !errors.Is(err, ErrParse) {
			t.Errorf("ParseEviction(%q) = %v, want ErrParse", bad, err)
		}
	}
}
