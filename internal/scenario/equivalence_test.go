package scenario

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

// handLocalityWorld assembles the locality acceptance world of
// internal/campaign/locality_test.go exactly as that test does by hand:
// four symmetric quiet grids (24 frictionless nodes, 3s/3s/5s middleware,
// 4 broker slots, seeds 200..203), a 1 MB/s + 10 s WAN, and twelve
// SP+DP tenants arriving every 30 s whose 8×20 MB inputs are fully
// resident on home grids rotating g0..g3.
func handLocalityWorld(t *testing.T) (*campaign.Report, *federation.Federation) {
	t.Helper()
	eng := sim.NewEngine()
	specs := make([]federation.GridSpec, 4)
	for i := range specs {
		cfg := grid.IdealConfig(24)
		cfg.Overheads = grid.OverheadConfig{
			SubmitMean:   3 * time.Second,
			BrokerMean:   3 * time.Second,
			DispatchMean: 5 * time.Second,
		}
		cfg.BrokerSlots = 4
		cfg.Seed = uint64(200 + i)
		specs[i] = federation.GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	f, err := federation.New(eng, federation.Config{
		Grids:  specs,
		Policy: federation.Ranked(),
		Links:  &grid.Links{WAN: grid.Link{MBps: 1, Latency: 10 * time.Second}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tenants := make([]campaign.TenantSpec, 12)
	for i := range tenants {
		home := grid.Site{Grid: fmt.Sprintf("g%d", i%4)}
		tenants[i] = campaign.TenantSpec{
			Name:    fmt.Sprintf("t%02d", i),
			Arrival: time.Duration(i) * 30 * time.Second,
			Opts:    core.Options{DataParallelism: true, ServiceParallelism: true},
			Build:   campaign.SyntheticChainPlaced(3, 8, 20*time.Second, 20, home, 1),
		}
	}
	rep, err := campaign.RunFederated(eng, f, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return rep, f
}

// TestLocalitySkewSpecEquivalence proves the compiler introduces no
// drift: scenarios/locality-skew.json rebuilt through Compile must match
// the hand-assembled locality acceptance world timestamp for timestamp —
// every tenant's arrival, finish and makespan, and every job record's
// full lifecycle instants (submit, accept, match, start, stage-in,
// complete) across the whole federation.
func TestLocalitySkewSpecEquivalence(t *testing.T) {
	handRep, handFed := handLocalityWorld(t)

	spec, err := Load("../../scenarios/locality-skew.json")
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	w, err := Compile(eng, spec)
	if err != nil {
		t.Fatal(err)
	}
	specRep, err := w.Run()
	if err != nil {
		t.Fatal(err)
	}

	if got, want := len(specRep.Tenants), len(handRep.Tenants); got != want {
		t.Fatalf("compiled world has %d tenants, hand world %d", got, want)
	}
	for i, tr := range specRep.Tenants {
		hand := handRep.Tenants[i]
		if tr.Err != nil || hand.Err != nil {
			t.Fatalf("tenant %s errored: spec %v, hand %v", tr.Name, tr.Err, hand.Err)
		}
		if tr.Name != hand.Name || tr.Arrival != hand.Arrival ||
			tr.Finish != hand.Finish || tr.Makespan != hand.Makespan ||
			tr.AdmissionDelay != hand.AdmissionDelay {
			t.Fatalf("tenant %d diverged:\n  spec %s arr=%v fin=%v mk=%v adm=%v\n  hand %s arr=%v fin=%v mk=%v adm=%v",
				i, tr.Name, tr.Arrival, tr.Finish, tr.Makespan, tr.AdmissionDelay,
				hand.Name, hand.Arrival, hand.Finish, hand.Makespan, hand.AdmissionDelay)
		}
	}

	specRecs, handRecs := w.Fed.Records(), handFed.Records()
	if len(specRecs) != len(handRecs) {
		t.Fatalf("compiled world produced %d job records, hand world %d", len(specRecs), len(handRecs))
	}
	for i, sr := range specRecs {
		hr := handRecs[i]
		if sr.Tenant != hr.Tenant || sr.Grid != hr.Grid || sr.Cluster != hr.Cluster ||
			sr.Attempts != hr.Attempts || sr.Restages != hr.Restages ||
			sr.Submitted != hr.Submitted || sr.Accepted != hr.Accepted ||
			sr.Matched != hr.Matched || sr.Started != hr.Started ||
			sr.InputDone != hr.InputDone || sr.Completed != hr.Completed ||
			sr.LocalInMB != hr.LocalInMB || sr.RemoteInMB != hr.RemoteInMB {
			t.Fatalf("job record %d diverged:\n  spec %+v\n  hand %+v", i, *sr, *hr)
		}
	}

	if sf, hf := Fingerprint(specRep, w.Fed), Fingerprint(handRep, handFed); sf != hf {
		t.Fatalf("fingerprints diverged: spec %#x, hand %#x", sf, hf)
	}
}
