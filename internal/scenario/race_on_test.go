//go:build race

package scenario

// raceEnabled reports that this test binary was built with the race
// detector, so the golden gate can skip scale-tier specs whose
// single-goroutine runs would pay the ~6x race tax for no coverage.
const raceEnabled = true
