package scenario

import (
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/rng"
	"repro/internal/sim"
)

// World is a compiled scenario: a federation and a tenant roster bound
// to one engine, ready to enact.
type World struct {
	// Spec is the validated source scenario.
	Spec *Spec
	// Eng is the engine the world runs on.
	Eng *sim.Engine
	// Fed is the compiled federation (outage windows already scheduled).
	Fed *federation.Federation
	// Tenants is the expanded tenant roster in arrival-spec order.
	Tenants []campaign.TenantSpec
	// Admission is the campaign's arrival gate (zero when the spec has no
	// admission section).
	Admission campaign.Admission
	// Outages is the full outage schedule the federation was built with:
	// the spec's explicit windows plus the generated failure waves.
	Outages []federation.Outage
}

// Compile builds the scenario's world on the engine: member grids from
// their presets and overrides, the link topology and WAN fabric, the
// outage schedule (explicit windows plus generated failure waves),
// active storage, the broker, and the expanded tenant roster with
// generated arrivals and input corpora. Every random draw flows through
// streams forked from Spec.Seed in a fixed order, so compiling the same
// spec twice yields bit-identical worlds.
func Compile(eng *sim.Engine, s *Spec) (*World, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rootSeed := s.Seed
	if rootSeed == 0 {
		rootSeed = 1
	}
	root := rng.New(rootSeed)
	names := s.GridNames()

	// Waves fork first so the outage schedule is independent of the
	// tenant roster shape.
	outages := make([]federation.Outage, 0, len(s.Outages))
	for _, o := range s.Outages {
		outages = append(outages, federation.Outage{Grid: o.Grid, At: o.At.D(), For: o.For.D(), Storage: o.Storage})
	}
	if s.Waves != nil {
		outages = append(outages, s.Waves.FailureWaves(root.Fork(streamWaves), names)...)
	}

	gridSpecs := s.expandGrids(rootSeed)
	links, err := s.compileLinks()
	if err != nil {
		return nil, err
	}

	cfg := federation.Config{
		Grids:      gridSpecs,
		Links:      links,
		WANStreams: s.WANStreams,
		Outages:    outages,
	}
	if b := s.Broker; b != nil {
		polName := b.Policy
		if polName == "" {
			polName = "ranked"
		}
		pol, err := ParsePolicy(polName, len(names))
		if err != nil {
			return nil, s.errAt(b.Policy, "broker: %v", err)
		}
		cfg.Policy = pol
		cfg.Rebroker = b.Rebroker
		cfg.EWMAAlpha = b.EWMAAlpha
	}
	if st := s.Storage; st != nil {
		cfg.SECapacityMB = st.CapacityMB
		if cfg.SEEviction, err = ParseEviction(st.Eviction); err != nil {
			return nil, s.errAt(st.Eviction, "storage: %v", err)
		}
		cfg.MinReplicas = st.MinReplicas
	}

	tenants, weights, err := s.expandTenants(root)
	if err != nil {
		return nil, err
	}
	if len(weights) > 0 {
		for i := range cfg.Grids {
			cfg.Grids[i].Config.TenantWeights = weights
		}
	}

	fed, err := federation.New(eng, cfg)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", s.Name, err)
	}
	w := &World{Spec: s, Eng: eng, Fed: fed, Tenants: tenants, Outages: outages}
	if a := s.Admission; a != nil {
		w.Admission = campaign.Admission{MaxUIBacklog: a.MaxUIBacklog, Retry: a.Retry.D(), MaxDelay: a.MaxDelay.D()}
	}
	return w, nil
}

// Run enacts the compiled world: every tenant is brokered across the
// federation under the spec's admission gate, and the engine is stepped
// until the campaign terminates.
func (w *World) Run() (*campaign.Report, error) {
	return campaign.RunSiteAdmitted(w.Eng, campaign.OnFederation(w.Fed), w.Tenants, w.Admission)
}

// Start schedules the world's campaign on the engine without driving it:
// the incremental form of Run for callers that step the engine
// themselves and interleave external events between steps — the online
// broker daemon's boot path. Stepping the returned execution until Done
// and calling its Report yields exactly what Run returns.
func (w *World) Start() (*campaign.Execution, error) {
	return campaign.StartSite(w.Eng, campaign.OnFederation(w.Fed), w.Tenants, w.Admission)
}

// expandGrids resolves presets, overrides and Count families into the
// federation's member specs.
func (s *Spec) expandGrids(rootSeed uint64) []federation.GridSpec {
	var out []federation.GridSpec
	for _, g := range s.Grids {
		count := g.Count
		if count <= 0 {
			count = 1
		}
		for i := 0; i < count; i++ {
			name := g.Name
			if count > 1 {
				name = fmt.Sprintf("%s%d", g.Name, i)
			}
			cfg := g.baseConfig()
			if g.Seed != 0 {
				cfg.Seed = g.Seed + uint64(i)
			} else {
				cfg.Seed = rootSeed + uint64(len(out))
			}
			out = append(out, federation.GridSpec{Name: name, Config: cfg})
		}
	}
	return out
}

// baseConfig builds one member's grid.Config from its preset and
// overrides (Seed is assigned by expandGrids).
func (g GridSpec) baseConfig() grid.Config {
	var cfg grid.Config
	if g.Preset == "default" {
		cfg = grid.DefaultConfig()
	} else {
		// The quiet preset is the deterministic testbed of the campaign
		// scenario suites: one homogeneous frictionless cluster with
		// small fixed middleware latencies, no background load, no
		// failures.
		nodes := g.Nodes
		if nodes <= 0 {
			nodes = 24
		}
		cfg = grid.IdealConfig(nodes)
		cfg.Overheads = grid.OverheadConfig{
			SubmitMean:   2 * time.Second,
			BrokerMean:   3 * time.Second,
			DispatchMean: 5 * time.Second,
		}
		cfg.BrokerSlots = 4
	}
	if len(g.Clusters) > 0 {
		cfg.Clusters = make([]grid.ClusterConfig, len(g.Clusters))
		for i, c := range g.Clusters {
			cc := grid.ClusterConfig{
				Name: c.Name, Nodes: c.Nodes,
				MinSpeed: c.MinSpeed, MaxSpeed: c.MaxSpeed,
				TransferMBps: c.TransferMBps, TransferStreams: c.TransferStreams,
				BackgroundMeanIAT: c.BackgroundMeanIAT.D(),
				BackgroundMeanDur: c.BackgroundMeanDur.D(),
				BackgroundSDDur:   c.BackgroundSDDur.D(),
			}
			if cc.MinSpeed == 0 && cc.MaxSpeed == 0 {
				cc.MinSpeed, cc.MaxSpeed = 1, 1
			}
			if cc.TransferMBps == 0 {
				cc.TransferMBps = 1e12
			}
			if cc.TransferStreams == 0 {
				cc.TransferStreams = cc.Nodes
			}
			cfg.Clusters[i] = cc
		}
	}
	o := &cfg.Overheads
	if g.SubmitMean > 0 {
		o.SubmitMean = g.SubmitMean.D()
	}
	if g.SubmitSD > 0 {
		o.SubmitSD = g.SubmitSD.D()
	}
	if g.BrokerMean > 0 {
		o.BrokerMean = g.BrokerMean.D()
	}
	if g.BrokerSD > 0 {
		o.BrokerSD = g.BrokerSD.D()
	}
	if g.DispatchMean > 0 {
		o.DispatchMean = g.DispatchMean.D()
	}
	if g.DispatchSD > 0 {
		o.DispatchSD = g.DispatchSD.D()
	}
	if g.SubmitLoadFactor != 0 {
		o.SubmitLoadFactor = g.SubmitLoadFactor
	}
	if g.BrokerSlots > 0 {
		cfg.BrokerSlots = g.BrokerSlots
	}
	if f := g.Failures; f != nil {
		cfg.Failures = grid.FailureConfig{
			Probability: f.Probability,
			DetectDelay: f.DetectDelay.D(),
			MaxRetries:  f.MaxRetries,
		}
	}
	if g.BackgroundHorizon > 0 {
		cfg.BackgroundHorizon = g.BackgroundHorizon.D()
	}
	cfg.StrictFIFOSubmit = g.StrictFIFO
	return cfg
}

// compileLinks resolves the spec's link section into a LinkModel (nil
// keeps the federation default).
func (s *Spec) compileLinks() (grid.LinkModel, error) {
	l := s.Links
	if l == nil {
		return nil, nil
	}
	if l.Local {
		return grid.LocalLinks(), nil
	}
	base := &grid.Links{
		IntraGrid: grid.Link{MBps: l.IntraGridMBps, Latency: l.IntraGridLatency.D()},
		WAN:       grid.Link{MBps: l.WANMBps, Latency: l.WANLatency.D()},
	}
	if len(l.Pairs) == 0 {
		return base, nil
	}
	m := &grid.LinkMatrix{Pairs: make(map[grid.GridPair]grid.Link, len(l.Pairs)), Fallback: base}
	for _, p := range l.Pairs {
		m.Pairs[grid.GridPair{From: p.From, To: p.To}] = grid.Link{MBps: p.MBps, Latency: p.Latency.D()}
	}
	return m, nil
}

// expandTenants generates the tenant roster: per-group arrival schedules
// and per-tenant input corpora, all from streams forked off the root in
// a fixed order (groups first-to-last, tenants within a group in index
// order), so the roster is a pure function of the spec.
func (s *Spec) expandTenants(root *rng.Source) ([]campaign.TenantSpec, map[string]int, error) {
	var out []campaign.TenantSpec
	weights := make(map[string]int)
	tenantIdx := 0
	for gi, g := range s.Tenants {
		count := g.Count
		if count <= 0 {
			count = 1
		}
		var times []time.Duration
		if g.Arrivals != nil {
			times = g.Arrivals.Times(root.Fork(streamArrivals+uint64(gi)), count)
		} else {
			times = make([]time.Duration, count)
		}
		opts := s.Policies[g.Policy].options()
		for i := 0; i < count; i++ {
			name := fmt.Sprintf("%s%02d", g.Prefix, i)
			szr := root.Fork(streamSizes + uint64(tenantIdx))
			tenantIdx++
			var home grid.Site
			if len(g.Workload.Homes) > 0 {
				home = grid.Site{Grid: g.Workload.Homes[i%len(g.Workload.Homes)]}
			}
			build, err := g.Workload.build(szr, home)
			if err != nil {
				return nil, nil, s.errAt(g.Prefix, "tenant group %q: %v", g.Prefix, err)
			}
			ts := campaign.TenantSpec{
				Name:    name,
				Arrival: times[i],
				Opts:    opts,
				Build:   build,
			}
			if a := g.Adapt; a != nil {
				ts.Adapt = &campaign.AdaptiveGranularity{
					Interval: a.Interval.D(), Slots: a.Slots,
					MinBatch: a.MinBatch, MaxBatch: a.MaxBatch,
				}
			}
			if g.Weight > 1 {
				weights[name] = g.Weight
			}
			out = append(out, ts)
		}
	}
	return out, weights, nil
}

// options resolves the spec mix into enactor options.
func (o OptionsSpec) options() core.Options {
	return core.Options{
		DataParallelism:    o.DataParallelism,
		ServiceParallelism: o.ServiceParallelism,
		JobGrouping:        o.JobGrouping,
		MaxConcurrent:      o.MaxConcurrent,
		DataGroupSize:      o.DataGroupSize,
		DataGroupWindow:    o.DataGroupWindow.D(),
	}
}

// build compiles one tenant's workload into a campaign builder. A
// degenerate (constant) size distribution compiles to the exact
// SyntheticChainPlaced builder of the hand-assembled scenario suites —
// the spec↔code equivalence the tests pin bit-for-bit — while generative
// distributions pre-draw the corpus from the tenant's own stream and
// compile to the sized chain.
func (w WorkloadSpec) build(r *rng.Source, home grid.Site) (campaign.BuildFunc, error) {
	if c, ok := w.Sizes.constant(); ok && (w.OutputMB == 0 || w.OutputMB == c) {
		return campaign.SyntheticChainPlaced(w.Stages, w.Items, w.Runtime.D(), c, home, w.Skew), nil
	}
	sizes := make([]float64, w.Items)
	for i := range sizes {
		sizes[i] = w.Sizes.Draw(r)
	}
	outMB := w.OutputMB
	if outMB == 0 {
		outMB = w.Sizes.mean()
	}
	return campaign.SyntheticChainSized(w.Stages, sizes, w.Runtime.D(), outMB, home, w.Skew), nil
}

// Fingerprint hashes the observable outcome of a compiled run: per-tenant
// makespans, per-grid telemetry and WAN accounting, storage-element
// churn, repair traffic and the global overhead statistics. Two runs of
// one scenario must produce the same value — the per-scenario
// determinism gate of the library tests.
func Fingerprint(rep *campaign.Report, f *federation.Federation) uint64 {
	h := fnv.New64a()
	for _, tr := range rep.Tenants {
		fmt.Fprintf(h, "%s|%d|%d|%d\n", tr.Name, tr.Makespan, tr.Finish, tr.AdmissionDelay)
	}
	for i := 0; i < f.Size(); i++ {
		tl := f.Telemetry(i)
		g := f.Grid(i)
		fmt.Fprintf(h, "%s|%d|%d|%d|%.3f|%.3f|%d\n",
			f.GridName(i), tl.Dispatched, tl.Observed, tl.Rebrokered,
			tl.RemoteInMB, g.WANWait().Seconds(), g.Restages())
	}
	for _, st := range f.Catalog().SEStats() {
		fmt.Fprintf(h, "%s|%d|%.3f|%.3f\n", st.Site, st.Evictions, st.EvictedMB, st.PeakMB)
	}
	fmt.Fprintf(h, "%d|%.3f\n", f.Repairs(), f.RepairedMB())
	g := rep.Global
	fmt.Fprintf(h, "%d|%d|%d\n", g.Jobs, g.Failed, g.Resubmits)
	return h.Sum64()
}
