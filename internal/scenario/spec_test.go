package scenario

import (
	"fmt"
	"strings"
	"testing"
)

// baselineDoc is a minimal valid scenario; rejection cases below are
// written as whole documents so each test sees the real line numbers.
const baselineDoc = `{
  "name": "base",
  "grids": [{"name": "g0", "preset": "quiet", "nodes": 4}],
  "links": {"local": true},
  "policies": {"p": {"serviceParallelism": true}},
  "tenants": [{
    "prefix": "t", "count": 2, "policy": "p",
    "arrivals": {"kind": "staggered", "spread": "30s"},
    "workload": {"stages": 1, "items": 2, "runtime": "10s",
                 "sizes": {"kind": "constant", "meanMB": 5}}
  }]
}`

// lineOf returns the 1-based line of the first occurrence of token as a
// quoted JSON string — the anchor rule validation errors advertise.
func lineOf(t *testing.T, doc, token string) int {
	t.Helper()
	i := strings.Index(doc, `"`+token+`"`)
	if i < 0 {
		t.Fatalf("token %q not present in the document", token)
	}
	return 1 + strings.Count(doc[:i], "\n")
}

// mustReject parses doc and asserts the error carries both the message
// and, when token is non-empty, a "line N" anchor pointing at the
// token's source line.
func mustReject(t *testing.T, doc, token, wantMsg string) {
	t.Helper()
	_, err := Parse([]byte(doc), "test.json")
	if err == nil {
		t.Fatalf("spec accepted, want rejection containing %q", wantMsg)
	}
	if !strings.Contains(err.Error(), wantMsg) {
		t.Fatalf("error %q does not contain %q", err, wantMsg)
	}
	if token != "" {
		anchor := fmt.Sprintf("line %d:", lineOf(t, doc, token))
		if !strings.Contains(err.Error(), anchor) {
			t.Fatalf("error %q not anchored at %q (token %q)", err, anchor, token)
		}
	}
}

// edit returns the baseline with one line-level substitution applied.
func edit(t *testing.T, old, new string) string {
	t.Helper()
	if !strings.Contains(baselineDoc, old) {
		t.Fatalf("baseline does not contain %q", old)
	}
	return strings.Replace(baselineDoc, old, new, 1)
}

func TestSpecBaselineValidates(t *testing.T) {
	if _, err := Parse([]byte(baselineDoc), "test.json"); err != nil {
		t.Fatal(err)
	}
}

// TestSpecRejectsStructuralErrors covers the decode layer: syntax
// errors, unknown fields and malformed durations all anchor to a line.
func TestSpecRejectsStructuralErrors(t *testing.T) {
	// Syntax error: a dangling comma, anchored by byte offset.
	doc := edit(t, `"links": {"local": true},`, `"links": {"local": true},,`)
	mustReject(t, doc, "", "line 4:")

	// Unknown top-level field, anchored to its own name.
	doc = edit(t, `"links": {"local": true},`, `"links": {"local": true},
  "frobnicate": 1,`)
	mustReject(t, doc, "frobnicate", `unknown field "frobnicate"`)

	// A bare-number duration is rejected: seconds vs milliseconds
	// ambiguity is exactly what the string form exists to prevent.
	doc = edit(t, `"runtime": "10s"`, `"runtime": 10`)
	mustReject(t, doc, "", "duration must be a string")

	// A duration with a bogus unit anchors to the offending token.
	doc = edit(t, `"runtime": "10s"`, `"runtime": "10 parsecs"`)
	mustReject(t, doc, "10 parsecs", "bad duration")
}

// TestSpecRejectsWorldErrors covers grid, link, outage and storage
// validation with line anchors.
func TestSpecRejectsWorldErrors(t *testing.T) {
	mustReject(t, edit(t, `"name": "base",`, ``), "", "missing scenario name")
	mustReject(t, edit(t, `"grids": [{"name": "g0", "preset": "quiet", "nodes": 4}],`, `"grids": [],`),
		"base", "no grids")
	mustReject(t, edit(t, `"preset": "quiet"`, `"preset": "warp"`), "warp", `unknown preset "warp"`)
	mustReject(t, edit(t, `"grids": [{"name": "g0", "preset": "quiet", "nodes": 4}],`,
		`"grids": [{"name": "g0"}, {"name": "g0"}],`), "g0", `duplicate grid name "g0"`)

	// links.local is exclusive with every other link field.
	mustReject(t, edit(t, `"links": {"local": true},`, `"links": {"local": true, "wanMBps": 2},`),
		"links", "links.local excludes")

	// A pair override naming a grid outside the federation.
	doc := edit(t, `"links": {"local": true},`,
		`"links": {"wanMBps": 2, "wanLatency": "5s",
             "pairs": [{"from": "g0", "to": "gX", "mbps": 1, "latency": "2s"}]},`)
	mustReject(t, doc, "gX", `unknown grid "gX"`)

	// Overlapping outage windows of one grid and mode, the PR-6 rule.
	doc = edit(t, `"links": {"local": true},`, `"links": {"local": true},
  "outages": [{"grid": "g0", "at": "10m", "for": "30m"},
              {"grid": "g0", "at": "20m", "for": "5m"}],`)
	mustReject(t, doc, "g0", `outage windows of "g0" overlap`)

	// An open-ended first window shadows everything after it.
	doc = edit(t, `"links": {"local": true},`, `"links": {"local": true},
  "outages": [{"grid": "g0", "at": "10m"},
              {"grid": "g0", "at": "20m", "for": "5m"}],`)
	mustReject(t, doc, "g0", `outage windows of "g0" overlap`)

	mustReject(t, edit(t, `"links": {"local": true},`,
		`"links": {"local": true}, "storage": {"capacityMB": 100, "eviction": "fifo"},`),
		"fifo", `unknown eviction policy "fifo"`)
	mustReject(t, edit(t, `"links": {"local": true},`,
		`"links": {"local": true}, "broker": {"policy": "random"},`),
		"random", `unknown policy "random"`)
	mustReject(t, edit(t, `"links": {"local": true},`,
		`"links": {"local": true}, "wanStreams": -1,`),
		"wanStreams", "negative wanStreams")
	mustReject(t, edit(t, `"links": {"local": true},`,
		`"links": {"local": true},
  "waves": {"waves": 2, "spacing": "10m", "fraction": 1.5, "duration": "5m"},`),
		"fraction", "waves.fraction 1.5 outside (0, 1]")
	mustReject(t, edit(t, `"links": {"local": true},`,
		`"links": {"local": true}, "admission": {"maxUIBacklog": 0, "retry": "1m"},`),
		"admission", "admission.maxUIBacklog must be positive")
}

// TestSpecRejectsTenantErrors covers tenant group, arrival and workload
// validation with line anchors.
func TestSpecRejectsTenantErrors(t *testing.T) {
	mustReject(t, edit(t, `"policy": "p",`, `"policy": "nope",`),
		"nope", `references missing policy "nope"`)
	mustReject(t, edit(t, `"prefix": "t", "count": 2, "policy": "p",`,
		`"prefix": "t", "count": -2, "policy": "p",`),
		"t", `tenant group "t" has a negative count`)
	mustReject(t, edit(t, `"kind": "staggered", "spread": "30s"`, `"kind": "sometimes"`),
		"sometimes", `unknown arrival kind "sometimes"`)
	mustReject(t, edit(t, `"kind": "staggered", "spread": "30s"`, `"kind": "poisson"`),
		"t", "poisson arrivals need a positive meanIAT")
	mustReject(t, edit(t, `"kind": "staggered", "spread": "30s"`, `"kind": "bursty", "meanIAT": "5m"`),
		"t", "bursty arrivals need a positive burst")
	mustReject(t, edit(t, `"sizes": {"kind": "constant", "meanMB": 5}`,
		`"sizes": {"kind": "uniform", "meanMB": 5}`),
		"uniform", `unknown size kind "uniform"`)
	mustReject(t, edit(t, `"sizes": {"kind": "constant", "meanMB": 5}`,
		`"sizes": {"kind": "pareto", "minMB": 0, "alpha": 1.5}`),
		"t", "pareto sizes need a positive minMB and alpha")
	mustReject(t, edit(t, `"sizes": {"kind": "constant", "meanMB": 5}`,
		`"sizes": {"kind": "pareto", "minMB": 4, "alpha": 1.5, "maxMB": 2}`),
		"t", "size cap below the minimum")
	mustReject(t, edit(t, `"workload": {"stages": 1, "items": 2, "runtime": "10s",`,
		`"workload": {"stages": 0, "items": 2, "runtime": "10s",`),
		"t", "needs positive stages and items")
	mustReject(t, edit(t, `"workload": {"stages": 1, "items": 2, "runtime": "10s",`,
		`"workload": {"stages": 1, "items": 2, "runtime": "10s", "skew": 1.2,`),
		"t", "placement skew 1.2 outside [0, 1]")
	mustReject(t, edit(t, `"workload": {"stages": 1, "items": 2, "runtime": "10s",`,
		`"workload": {"stages": 1, "items": 2, "runtime": "10s", "homes": ["gZ"],`),
		"gZ", `homes at unknown grid "gZ"`)

	// Duplicate tenant prefixes collide in report rows and rng forks.
	doc := edit(t, `  "tenants": [{`, `  "tenants": [{
    "prefix": "t", "count": 1, "policy": "p",
    "workload": {"stages": 1, "items": 1, "runtime": "5s",
                 "sizes": {"kind": "constant", "meanMB": 5}}
  }, {`)
	mustReject(t, doc, "t", `duplicate tenant group prefix "t"`)
}
