//go:build !race

package scenario

// raceEnabled reports that this test binary was built without the race
// detector; scale-tier specs run their full two-pass determinism golden.
const raceEnabled = false
