package scufl

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/iterstrat"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

const fig1Doc = `<scufl name="fig1">
  <source name="src"/>
  <processor name="P1" strategy="in">
    <inport name="in"/>
    <outport name="out"/>
  </processor>
  <processor name="P2">
    <inport name="in"/>
    <outport name="out"/>
  </processor>
  <processor name="P3" synchronization="true">
    <inport name="in"/>
    <outport name="out"/>
  </processor>
  <sink name="sink"/>
  <link from="src:out" to="P1:in"/>
  <link from="P1:out" to="P2:in"/>
  <link from="P2:out" to="P3:in"/>
  <link from="P3:out" to="sink:in"/>
  <coordination before="P1" after="P2"/>
</scufl>`

func echoRegistry(eng *sim.Engine, names ...string) Registry {
	reg := Registry{}
	for _, n := range names {
		reg[n] = services.NewLocal(eng, n, 1024, services.ConstantRuntime(time.Second),
			func(req services.Request) map[string]string {
				v := req.Inputs["in"]
				if v == "" && len(req.Lists["in"]) > 0 {
					v = req.Lists["in"][0]
				}
				return map[string]string{"out": v}
			})
	}
	return reg
}

func TestParseFig1(t *testing.T) {
	eng := sim.NewEngine()
	w, err := Parse([]byte(fig1Doc), Options{Registry: echoRegistry(eng, "P1", "P2", "P3")})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "fig1" {
		t.Errorf("name = %q", w.Name)
	}
	if len(w.Processors()) != 5 {
		t.Errorf("processors = %d", len(w.Processors()))
	}
	p3, _ := w.Proc("P3")
	if !p3.Synchronization {
		t.Error("P3 synchronization flag lost")
	}
	p1, _ := w.Proc("P1")
	if p1.Strategy == nil || p1.Strategy.String() != "in" {
		t.Errorf("P1 strategy = %v", p1.Strategy)
	}
	if len(w.Constraints) != 1 || w.Constraints[0] != (workflow.Constraint{Before: "P1", After: "P2"}) {
		t.Errorf("constraints = %v", w.Constraints)
	}
}

func TestParsedWorkflowRuns(t *testing.T) {
	eng := sim.NewEngine()
	w, err := Parse([]byte(fig1Doc), Options{Registry: echoRegistry(eng, "P1", "P2", "P3")})
	if err != nil {
		t.Fatal(err)
	}
	e, err := core.New(eng, w, core.Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs["sink"]) != 1 { // P3 is a sync barrier: one output
		t.Fatalf("sink = %v", res.Outputs["sink"])
	}
}

func TestParseEmbeddedWrapper(t *testing.T) {
	doc := `<scufl name="wrapped">
  <source name="images"/>
  <processor name="convert">
    <inport name="in"/>
    <outport name="out"/>
    <wrapper runtime="90s" jitter="0">
      <outsize name="out" mb="2.5"/>
      <description>
        <executable name="convert.sh">
          <access type="URL"><path value="http://example.org"/></access>
          <input name="in" option="-i"><access type="GFN"/></input>
          <output name="out" option="-o"><access type="GFN"/></output>
        </executable>
      </description>
    </wrapper>
  </processor>
  <sink name="results"/>
  <link from="images:out" to="convert:in"/>
  <link from="convert:out" to="results:in"/>
</scufl>`
	eng := sim.NewEngine()
	g := grid.New(eng, grid.IdealConfig(4))
	w, err := Parse([]byte(doc), Options{Grid: g})
	if err != nil {
		t.Fatal(err)
	}
	conv, _ := w.Proc("convert")
	wrap, ok := conv.Service.(*services.Wrapper)
	if !ok {
		t.Fatalf("service = %T, want *services.Wrapper", conv.Service)
	}
	if wrap.Name() != "convert.sh" {
		t.Errorf("wrapper name = %q", wrap.Name())
	}
	if wrap.OutputSize("out") != 2.5 {
		t.Errorf("outsize = %v", wrap.OutputSize("out"))
	}
	// End to end on the ideal grid: 90s runtime, zero overhead.
	g.Catalog().Register("gfn://img0", 7.8)
	e, err := core.New(eng, w, core.Options{DataParallelism: true, ServiceParallelism: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"images": {"gfn://img0"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 90*time.Second {
		t.Errorf("makespan = %v, want 90s", res.Makespan)
	}
}

func TestParseErrors(t *testing.T) {
	eng := sim.NewEngine()
	reg := echoRegistry(eng, "P1")
	cases := []struct {
		name, doc, want string
	}{
		{"malformed xml", "<scufl><processor", "scufl"},
		{"unknown service", `<scufl><source name="s"/><processor name="X"><inport name="in"/></processor><link from="s:out" to="X:in"/></scufl>`, "no service"},
		{"bad strategy", `<scufl><source name="s"/><processor name="P1" strategy="zig(a"><inport name="in"/></processor><link from="s:out" to="P1:in"/></scufl>`, "P1"},
		{"bad link ref", `<scufl><source name="s"/><processor name="P1"><inport name="in"/></processor><link from="sout" to="P1:in"/></scufl>`, "malformed port reference"},
		{"wrapper without grid", `<scufl><source name="s"/><processor name="W"><inport name="in"/><wrapper runtime="1s"><description><executable name="x"><input name="in" option="-i"/></executable></description></wrapper></processor><link from="s:out" to="W:in"/></scufl>`, "no grid"},
		{"bad runtime", `<scufl><source name="s"/><processor name="W"><inport name="in"/><wrapper runtime="fast"><description><executable name="x"><input name="in" option="-i"/></executable></description></wrapper></processor><link from="s:out" to="W:in"/></scufl>`, "bad runtime"},
		{"invalid workflow", `<scufl><processor name="P1"><inport name="in"/></processor></scufl>`, "not fed"},
	}
	for _, c := range cases {
		opts := Options{Registry: reg}
		if strings.Contains(c.name, "bad runtime") {
			eng2 := sim.NewEngine()
			opts.Grid = grid.New(eng2, grid.IdealConfig(1))
		}
		_, err := Parse([]byte(c.doc), opts)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestWriteRoundTrip(t *testing.T) {
	eng := sim.NewEngine()
	reg := echoRegistry(eng, "P1", "P2", "P3")
	w, err := Parse([]byte(fig1Doc), Options{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	out, err := Write(w)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Parse(out, Options{Registry: reg})
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if len(w2.Processors()) != len(w.Processors()) ||
		len(w2.Links) != len(w.Links) ||
		len(w2.Constraints) != len(w.Constraints) {
		t.Fatalf("round trip lost structure:\n%s", out)
	}
	p3, _ := w2.Proc("P3")
	if !p3.Synchronization {
		t.Error("synchronization flag lost in round trip")
	}
}

func TestWriteConstantsAndStrategy(t *testing.T) {
	eng := sim.NewEngine()
	w := workflow.New("c")
	w.AddSource("s")
	reg := echoRegistry(eng, "p")
	p := w.AddService("p", reg["p"], []string{"a", "b"}, nil)
	p.Constants = map[string]string{"zz": "1", "aa": "2"}
	strat, err := iterstrat.Parse("cross(a,b)")
	if err != nil {
		t.Fatal(err)
	}
	p.Strategy = strat
	w.Connect("s", workflow.SourcePort, "p", "a")
	w.Connect("s", workflow.SourcePort, "p", "b")
	out, werr := Write(w)
	if werr != nil {
		t.Fatal(werr)
	}
	text := string(out)
	if !strings.Contains(text, `strategy="cross(a,b)"`) {
		t.Errorf("strategy missing:\n%s", text)
	}
	// Constants serialized in name order for determinism.
	if strings.Index(text, `name="aa"`) > strings.Index(text, `name="zz"`) {
		t.Errorf("constants not ordered:\n%s", text)
	}
}
