// Package scufl implements a Scufl-dialect workflow description language.
//
// The paper's enactor adopts the Simple Concept Unified Flow Language
// (Scufl) of the Taverna workbench (Sec. 4.1): processors with input and
// output ports, data links, data sources and sinks, iteration strategies,
// and coordination constraints — control links that enforce an execution
// order and that the paper uses to mark services requiring data
// synchronization.
//
// This dialect keeps those concepts in a compact XML form:
//
//	<scufl name="bronze-standard">
//	  <source name="referenceImage"/>
//	  <sink name="accuracy_translation"/>
//	  <processor name="crestLines" strategy="dot(floating_image,reference_image)">
//	    <inport name="floating_image"/>
//	    <inport name="reference_image"/>
//	    <outport name="crest_reference"/>
//	    <constant name="scale" value="1.0"/>
//	    <!-- either bind a registered service by name, or embed the
//	         executable descriptor for the generic wrapper: -->
//	    <wrapper runtime="90s" jitter="0.08">
//	      <outsize name="crest_reference" mb="1.2"/>
//	      <description>…Fig. 8 executable descriptor…</description>
//	    </wrapper>
//	  </processor>
//	  <link from="referenceImage:out" to="crestLines:reference_image"/>
//	  <coordination before="crestLines" after="somethingElse"/>
//	</scufl>
//
// A processor with synchronization="true" is a synchronization barrier
// (Sec. 2.3). Processors without an embedded wrapper are bound through the
// Registry by their service attribute (defaulting to the processor name).
package scufl

import (
	"encoding/xml"
	"fmt"
	"strings"
	"time"

	"repro/internal/descriptor"
	"repro/internal/grid"
	"repro/internal/iterstrat"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/workflow"
)

// Registry binds processor service names to service implementations.
type Registry map[string]services.Service

// Options configures parsing.
type Options struct {
	// Registry resolves service references for processors without an
	// embedded wrapper.
	Registry Registry
	// Grid is required when the document embeds wrapper descriptors.
	Grid *grid.Grid
	// Seed drives the runtime jitter of embedded wrappers.
	Seed uint64
}

type portXML struct {
	Name string `xml:"name,attr"`
}

type constantXML struct {
	Name  string `xml:"name,attr"`
	Value string `xml:"value,attr"`
}

type outsizeXML struct {
	Name string  `xml:"name,attr"`
	MB   float64 `xml:"mb,attr"`
}

type wrapperXML struct {
	Runtime     string                 `xml:"runtime,attr"`
	Jitter      float64                `xml:"jitter,attr"`
	OutSizes    []outsizeXML           `xml:"outsize"`
	Description descriptor.Description `xml:"description"`
}

type processorXML struct {
	Name            string        `xml:"name,attr"`
	Service         string        `xml:"service,attr"`
	Strategy        string        `xml:"strategy,attr"`
	Synchronization bool          `xml:"synchronization,attr"`
	InPorts         []portXML     `xml:"inport"`
	OutPorts        []portXML     `xml:"outport"`
	Constants       []constantXML `xml:"constant"`
	Wrapper         *wrapperXML   `xml:"wrapper"`
}

type linkXML struct {
	From string `xml:"from,attr"`
	To   string `xml:"to,attr"`
}

type coordinationXML struct {
	Before string `xml:"before,attr"`
	After  string `xml:"after,attr"`
}

type scuflXML struct {
	XMLName       xml.Name          `xml:"scufl"`
	Name          string            `xml:"name,attr"`
	Sources       []portXML         `xml:"source"`
	Sinks         []portXML         `xml:"sink"`
	Processors    []processorXML    `xml:"processor"`
	Links         []linkXML         `xml:"link"`
	Coordinations []coordinationXML `xml:"coordination"`
}

// Parse decodes a Scufl document into a validated workflow.
func Parse(data []byte, opts Options) (*workflow.Workflow, error) {
	var doc scuflXML
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("scufl: %w", err)
	}
	w := workflow.New(doc.Name)
	for _, s := range doc.Sources {
		w.AddSource(s.Name)
	}
	for _, s := range doc.Sinks {
		w.AddSink(s.Name)
	}
	jitterSeed := opts.Seed
	for _, p := range doc.Processors {
		proc := &workflow.Processor{
			Name:            p.Name,
			Kind:            workflow.KindService,
			Synchronization: p.Synchronization,
		}
		for _, ip := range p.InPorts {
			proc.InPorts = append(proc.InPorts, ip.Name)
		}
		for _, op := range p.OutPorts {
			proc.OutPorts = append(proc.OutPorts, op.Name)
		}
		if len(p.Constants) > 0 {
			proc.Constants = make(map[string]string, len(p.Constants))
			for _, c := range p.Constants {
				proc.Constants[c.Name] = c.Value
			}
		}
		if p.Strategy != "" {
			strat, err := iterstrat.Parse(p.Strategy)
			if err != nil {
				return nil, fmt.Errorf("scufl: processor %s: %w", p.Name, err)
			}
			proc.Strategy = strat
		}
		svc, err := bindService(p, opts, jitterSeed)
		if err != nil {
			return nil, err
		}
		jitterSeed++
		proc.Service = svc
		w.Add(proc)
	}
	for _, l := range doc.Links {
		fp, fport, err := splitRef(l.From)
		if err != nil {
			return nil, fmt.Errorf("scufl: link from: %w", err)
		}
		tp, tport, err := splitRef(l.To)
		if err != nil {
			return nil, fmt.Errorf("scufl: link to: %w", err)
		}
		w.Connect(fp, fport, tp, tport)
	}
	for _, c := range doc.Coordinations {
		w.Constrain(c.Before, c.After)
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

// bindService resolves the processor's service: an embedded wrapper when
// present, otherwise a registry entry.
func bindService(p processorXML, opts Options, seed uint64) (services.Service, error) {
	if p.Wrapper != nil {
		if opts.Grid == nil {
			return nil, fmt.Errorf("scufl: processor %s embeds a wrapper but no grid was provided", p.Name)
		}
		mean, err := time.ParseDuration(p.Wrapper.Runtime)
		if err != nil {
			return nil, fmt.Errorf("scufl: processor %s: bad runtime: %w", p.Name, err)
		}
		sizes := make(map[string]float64, len(p.Wrapper.OutSizes))
		for _, o := range p.Wrapper.OutSizes {
			sizes[o.Name] = o.MB
		}
		jitter := p.Wrapper.Jitter
		src := rng.New(seed ^ 0x5cf1)
		model := func(services.Request) time.Duration {
			if jitter <= 0 {
				return mean
			}
			return time.Duration(src.LogNormalMeanSD(float64(mean), jitter*float64(mean)))
		}
		desc := p.Wrapper.Description
		return services.NewWrapper(opts.Grid, &desc, model, sizes)
	}
	name := p.Service
	if name == "" {
		name = p.Name
	}
	svc, ok := opts.Registry[name]
	if !ok {
		return nil, fmt.Errorf("scufl: processor %s: no service %q in registry", p.Name, name)
	}
	return svc, nil
}

func splitRef(ref string) (proc, port string, err error) {
	i := strings.LastIndex(ref, ":")
	if i <= 0 || i == len(ref)-1 {
		return "", "", fmt.Errorf("scufl: malformed port reference %q (want proc:port)", ref)
	}
	return ref[:i], ref[i+1:], nil
}

// Write renders a workflow back to the Scufl dialect. Embedded wrapper
// definitions are not reconstructed; processors reference their service by
// name, so the document re-parses against a registry.
func Write(w *workflow.Workflow) ([]byte, error) {
	doc := scuflXML{Name: w.Name}
	for _, p := range w.Processors() {
		switch p.Kind {
		case workflow.KindSource:
			doc.Sources = append(doc.Sources, portXML{p.Name})
		case workflow.KindSink:
			doc.Sinks = append(doc.Sinks, portXML{p.Name})
		default:
			px := processorXML{
				Name:            p.Name,
				Synchronization: p.Synchronization,
			}
			if p.Service != nil && p.Service.Name() != p.Name {
				px.Service = p.Service.Name()
			}
			if p.Strategy != nil {
				px.Strategy = p.Strategy.String()
			}
			for _, ip := range p.InPorts {
				px.InPorts = append(px.InPorts, portXML{ip})
			}
			for _, op := range p.OutPorts {
				px.OutPorts = append(px.OutPorts, portXML{op})
			}
			for name, v := range p.Constants {
				px.Constants = append(px.Constants, constantXML{name, v})
			}
			sortConstants(px.Constants)
			doc.Processors = append(doc.Processors, px)
		}
	}
	for _, l := range w.Links {
		doc.Links = append(doc.Links, linkXML{
			From: l.FromProc + ":" + l.FromPort,
			To:   l.ToProc + ":" + l.ToPort,
		})
	}
	for _, c := range w.Constraints {
		doc.Coordinations = append(doc.Coordinations, coordinationXML{c.Before, c.After})
	}
	return xml.MarshalIndent(doc, "", "  ")
}

func sortConstants(cs []constantXML) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0 && cs[j].Name < cs[j-1].Name; j-- {
			cs[j], cs[j-1] = cs[j-1], cs[j]
		}
	}
}
