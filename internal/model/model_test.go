package model

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

func randomMatrix(r *rng.Source, nW, nD int) Matrix {
	m := make(Matrix, nW)
	for i := range m {
		m[i] = make([]time.Duration, nD)
		for j := range m[i] {
			m[i][j] = time.Duration(r.Intn(50)+1) * time.Second
		}
	}
	return m
}

func TestConstantMatrixFormulas(t *testing.T) {
	const T = 7 * time.Second
	m := Constant(5, 12, T)
	if got, want := Sequential(m), 5*12*T; got != want {
		t.Errorf("Sequential = %v, want %v", got, want)
	}
	if got, want := DP(m), 5*T; got != want {
		t.Errorf("DP = %v, want %v", got, want)
	}
	if got, want := SP(m), (12+5-1)*T; got != want {
		t.Errorf("SP = %v, want %v", got, want)
	}
	if got, want := DSP(m), 5*T; got != want {
		t.Errorf("DSP = %v, want %v", got, want)
	}
}

func TestValidate(t *testing.T) {
	if err := (Matrix{}).Validate(); err == nil {
		t.Error("empty matrix validated")
	}
	if err := (Matrix{{time.Second}, {time.Second, time.Second}}).Validate(); err == nil {
		t.Error("ragged matrix validated")
	}
	if err := Constant(2, 3, time.Second).Validate(); err != nil {
		t.Errorf("constant matrix rejected: %v", err)
	}
	m := Constant(3, 4, time.Second)
	if m.NW() != 3 || m.ND() != 4 {
		t.Errorf("NW/ND = %d/%d", m.NW(), m.ND())
	}
}

func TestSingleCellMatrix(t *testing.T) {
	m := Matrix{{42 * time.Second}}
	for name, f := range map[string]func(Matrix) time.Duration{
		"Sequential": Sequential, "DP": DP, "SP": SP, "DSP": DSP,
	} {
		if got := f(m); got != 42*time.Second {
			t.Errorf("%s(1x1) = %v, want 42s", name, got)
		}
	}
}

// Ordering invariants that hold for any matrix:
// DSP ≤ DP ≤ Sequential, DSP ≤ SP ≤ Sequential.
func TestQuickOrderings(t *testing.T) {
	f := func(seed uint64, wRaw, dRaw uint8) bool {
		r := rng.New(seed)
		nW, nD := int(wRaw%6)+1, int(dRaw%8)+1
		m := randomMatrix(r, nW, nD)
		seq, dp, sp, dsp := Sequential(m), DP(m), SP(m), DSP(m)
		return dsp <= dp && dp <= seq && dsp <= sp && sp <= seq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// SP on a single-service path degenerates to Sequential; DP on a
// single-data-set path degenerates to Sequential.
func TestQuickDegenerateCases(t *testing.T) {
	f := func(seed uint64, dRaw uint8) bool {
		r := rng.New(seed)
		nD := int(dRaw%10) + 1
		row := randomMatrix(r, 1, nD)
		if SP(row) != Sequential(row) {
			return false
		}
		col := randomMatrix(r, int(dRaw%5)+1, 1)
		return DP(col) == Sequential(col) && SP(col) == Sequential(col) && DSP(col) == Sequential(col)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestConstantTimeSpeedups(t *testing.T) {
	s := ConstantTimeSpeedups(5, 126)
	if s.SDP != 126 {
		t.Errorf("SDP = %v, want nD = 126", s.SDP)
	}
	if want := 126.0 * 5 / (126 + 5 - 1); math.Abs(s.SSP-want) > 1e-9 {
		t.Errorf("SSP = %v, want %v", s.SSP, want)
	}
	if want := (126.0 + 5 - 1) / 5; math.Abs(s.SDSP-want) > 1e-9 {
		t.Errorf("SDSP = %v, want %v", s.SDSP, want)
	}
	if s.SSDP != 1 {
		t.Errorf("SSDP = %v, want 1 (constant-time hypothesis)", s.SSDP)
	}
}

// Speed-up formulas are consistent with the formulas on constant matrices.
func TestQuickSpeedupConsistency(t *testing.T) {
	f := func(wRaw, dRaw uint8) bool {
		nW, nD := int(wRaw%6)+1, int(dRaw%10)+1
		m := Constant(nW, nD, 10*time.Second)
		s := ConstantTimeSpeedups(nW, nD)
		seq, dp, sp, dsp := Sequential(m), DP(m), SP(m), DSP(m)
		ok := func(got float64, num, den time.Duration) bool {
			return math.Abs(got-float64(num)/float64(den)) < 1e-9
		}
		return ok(s.SDP, seq, dp) && ok(s.SSP, seq, sp) &&
			ok(s.SDSP, sp, dsp) && ok(s.SSDP, dp, dsp)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// enactorMakespan runs the real enactor on an ideal substrate (Local
// services, no grid friction) over the matrix workload.
func enactorMakespan(t *testing.T, m Matrix, opts core.Options) time.Duration {
	t.Helper()
	eng := sim.NewEngine()
	w := workflow.New("model-check")
	w.AddSource("src")
	nW := m.NW()
	for i := 0; i < nW; i++ {
		i := i
		name := fmt.Sprintf("P%d", i)
		dur := func(req services.Request) time.Duration { return m[i][req.Index[0]] }
		echo := func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["in"]}
		}
		w.AddService(name, services.NewLocal(eng, name, 1<<20, dur, echo),
			[]string{"in"}, []string{"out"})
	}
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P0", "in")
	for i := 1; i < nW; i++ {
		w.Connect(fmt.Sprintf("P%d", i-1), "out", fmt.Sprintf("P%d", i), "in")
	}
	w.Connect(fmt.Sprintf("P%d", nW-1), "out", "sink", workflow.SinkPort)

	e, err := core.New(eng, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	inputs := make([]string, m.ND())
	for j := range inputs {
		inputs[j] = fmt.Sprintf("D%d", j)
	}
	res, err := e.Run(map[string][]string{"src": inputs})
	if err != nil {
		t.Fatal(err)
	}
	return res.Makespan
}

// The central validation of Sec. 3.5.3: on a frictionless substrate, the
// enactor's measured makespans equal the model's closed forms EXACTLY, for
// arbitrary (not just constant) duration matrices and all four policies.
func TestQuickEnactorMatchesModel(t *testing.T) {
	if testing.Short() {
		t.Skip("integration property test")
	}
	f := func(seed uint64, wRaw, dRaw uint8) bool {
		r := rng.New(seed)
		nW, nD := int(wRaw%4)+1, int(dRaw%5)+1
		m := randomMatrix(r, nW, nD)
		cases := []struct {
			opts core.Options
			want time.Duration
		}{
			{core.Options{}, Sequential(m)},
			{core.Options{DataParallelism: true}, DP(m)},
			{core.Options{ServiceParallelism: true}, SP(m)},
			{core.Options{DataParallelism: true, ServiceParallelism: true}, DSP(m)},
		}
		for _, c := range cases {
			if got := enactorMakespan(t, m, c.opts); got != c.want {
				t.Logf("nW=%d nD=%d %s: enactor %v, model %v, matrix %v", nW, nD, c.opts, got, c.want, m)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSPFormula(b *testing.B) {
	r := rng.New(1)
	m := randomMatrix(r, 10, 500)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SP(m)
	}
}
