// Package model implements the theoretical execution-time model of
// Sec. 3.5: closed-form makespans of a workflow critical path of nW
// services over nD data sets with treatment durations T[i][j], under the
// four execution policies, plus the asymptotic speed-ups of Sec. 3.5.4.
//
// The model assumes (Sec. 3.5.2) a data-independent critical path,
// infrastructure-unconstrained data parallelism, and no synchronization
// processors; workflows with barriers are analyzed as the sequence of the
// sub-workflows on either side.
package model

import (
	"fmt"
	"time"
)

// Matrix is the treatment-duration matrix: T[i][j] is the duration of
// processing data set j by the i-th service of the critical path,
// including grid overhead (Sec. 3.5.1).
type Matrix [][]time.Duration

// Constant returns an nW×nD matrix with all entries t.
func Constant(nW, nD int, t time.Duration) Matrix {
	m := make(Matrix, nW)
	for i := range m {
		m[i] = make([]time.Duration, nD)
		for j := range m[i] {
			m[i][j] = t
		}
	}
	return m
}

// Validate checks the matrix is rectangular and non-empty.
func (m Matrix) Validate() error {
	if len(m) == 0 || len(m[0]) == 0 {
		return fmt.Errorf("model: empty matrix")
	}
	for i, row := range m {
		if len(row) != len(m[0]) {
			return fmt.Errorf("model: row %d has %d entries, want %d", i, len(row), len(m[0]))
		}
	}
	return nil
}

// NW returns the number of services on the critical path.
func (m Matrix) NW() int { return len(m) }

// ND returns the number of data sets.
func (m Matrix) ND() int {
	if len(m) == 0 {
		return 0
	}
	return len(m[0])
}

// Sequential is equation (1): Σ = Σi Σj Ti,j — no service or data
// parallelism.
func Sequential(m Matrix) time.Duration {
	var sum time.Duration
	for _, row := range m {
		for _, t := range row {
			sum += t
		}
	}
	return sum
}

// DP is equation (2): ΣDP = Σi maxj{Ti,j} — data parallelism only, with a
// synchronization of the whole data set between successive services.
func DP(m Matrix) time.Duration {
	var sum time.Duration
	for _, row := range m {
		max := time.Duration(0)
		for _, t := range row {
			if t > max {
				max = t
			}
		}
		sum += max
	}
	return sum
}

// SP is equation (3): ΣSP = T(nW−1, nD−1) + m(nW−1, nD−1), the pipelined
// makespan with one data set at a time per service, where
//
//	m(i,j) = max(T(i−1,j)+m(i−1,j), T(i,j−1)+m(i,j−1))
//	m(0,j) = Σk<j T(0,k);  m(i,0) = Σk<i T(k,0)
func SP(m Matrix) time.Duration {
	nW, nD := m.NW(), m.ND()
	start := make([][]time.Duration, nW)
	for i := range start {
		start[i] = make([]time.Duration, nD)
	}
	for j := 1; j < nD; j++ {
		start[0][j] = start[0][j-1] + m[0][j-1]
	}
	for i := 1; i < nW; i++ {
		start[i][0] = start[i-1][0] + m[i-1][0]
	}
	for i := 1; i < nW; i++ {
		for j := 1; j < nD; j++ {
			a := m[i-1][j] + start[i-1][j]
			b := m[i][j-1] + start[i][j-1]
			if a > b {
				start[i][j] = a
			} else {
				start[i][j] = b
			}
		}
	}
	return m[nW-1][nD-1] + start[nW-1][nD-1]
}

// DSP is equation (4): ΣDSP = maxj{Σi Ti,j} — both data and service
// parallelism: each data set flows independently through the pipeline.
func DSP(m Matrix) time.Duration {
	nW, nD := m.NW(), m.ND()
	var max time.Duration
	for j := 0; j < nD; j++ {
		var sum time.Duration
		for i := 0; i < nW; i++ {
			sum += m[i][j]
		}
		if sum > max {
			max = sum
		}
	}
	return max
}

// Speedups are the asymptotic speed-ups of Sec. 3.5.4 under the
// constant-time hypothesis Ti,j = T.
type Speedups struct {
	// SDP = Σ/ΣDP = nD: data parallelism with service parallelism disabled.
	SDP float64
	// SSP = Σ/ΣSP = nD·nW/(nD+nW−1): service parallelism with data
	// parallelism disabled.
	SSP float64
	// SDSP = ΣSP/ΣDSP = (nD+nW−1)/nW: data parallelism on top of service
	// parallelism.
	SDSP float64
	// SSDP = ΣDP/ΣDSP = 1: service parallelism on top of data parallelism
	// brings nothing under constant times — the hypothesis the production
	// measurements of Sec. 5.2 disprove.
	SSDP float64
}

// ConstantTimeSpeedups returns the closed-form speed-ups for nW services
// and nD data sets under constant treatment times.
func ConstantTimeSpeedups(nW, nD int) Speedups {
	w, d := float64(nW), float64(nD)
	return Speedups{
		SDP:  d,
		SSP:  d * w / (d + w - 1),
		SDSP: (d + w - 1) / w,
		SSDP: 1,
	}
}
