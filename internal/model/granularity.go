package model

import "time"

// This file models the job-granularity trade-off the paper leaves as
// future work (Sec. 5.4–5.5): "we plan to address this problem by grouping
// jobs of a single service, thus finding a trade-off between data
// parallelism and the system's overhead" and "an optimal strategy to adapt
// the jobs' granularity to the grid load".
//
// Batching k invocations of one service into a single job divides the
// per-job overhead across k data items but serializes their computation,
// so the optimum depends on the overhead-to-runtime ratio and on how many
// jobs the infrastructure runs concurrently.

// GranularityParams describes a single-service batching scenario.
type GranularityParams struct {
	// Overhead is the mean per-job grid overhead (submission + matchmaking
	// + queuing + staging).
	Overhead time.Duration
	// SubmitSerial is the serialized per-job submission cost at the UI
	// (paid once per job, sequentially).
	SubmitSerial time.Duration
	// Runtime is the per-item compute time.
	Runtime time.Duration
	// Items is the number of data items to process.
	Items int
	// Slots is the number of jobs the grid effectively runs concurrently.
	Slots int
}

// BatchMakespan estimates the makespan of processing Items with batches of
// size k: jobs = ⌈Items/k⌉ submissions serialize at the UI, every job pays
// the overhead once, and jobs execute in ⌈jobs/Slots⌉ waves of k·Runtime.
func BatchMakespan(p GranularityParams, k int) time.Duration {
	if k < 1 {
		k = 1
	}
	if p.Items <= 0 {
		return 0
	}
	slots := p.Slots
	if slots < 1 {
		slots = 1
	}
	jobs := (p.Items + k - 1) / k
	waves := (jobs + slots - 1) / slots
	return time.Duration(jobs)*p.SubmitSerial + p.Overhead +
		time.Duration(waves)*time.Duration(k)*p.Runtime
}

// OptimalBatch returns the batch size in [1, Items] minimizing
// BatchMakespan, and the predicted makespan. Ties resolve to the smaller
// batch (more parallelism for equal cost).
func OptimalBatch(p GranularityParams) (k int, makespan time.Duration) {
	if p.Items <= 0 {
		return 1, 0
	}
	best, bestT := 1, BatchMakespan(p, 1)
	for k := 2; k <= p.Items; k++ {
		if t := BatchMakespan(p, k); t < bestT {
			best, bestT = k, t
		}
	}
	return best, bestT
}

// GranularitySweep returns the predicted makespan for every batch size in
// [1, Items] — the curve the ablation benchmarks trace empirically.
func GranularitySweep(p GranularityParams) []time.Duration {
	if p.Items <= 0 {
		return nil
	}
	out := make([]time.Duration, p.Items)
	for k := 1; k <= p.Items; k++ {
		out[k-1] = BatchMakespan(p, k)
	}
	return out
}
