package model

import (
	"testing"
	"testing/quick"
	"time"
)

func baseParams() GranularityParams {
	return GranularityParams{
		Overhead:     2 * time.Minute,
		SubmitSerial: 15 * time.Second,
		Runtime:      time.Minute,
		Items:        64,
		Slots:        1000,
	}
}

func TestBatchMakespanExtremes(t *testing.T) {
	p := baseParams()
	// k=1: 64 submissions × 15s + overhead + one wave of 1×runtime.
	if got, want := BatchMakespan(p, 1), 64*15*time.Second+2*time.Minute+time.Minute; got != want {
		t.Errorf("k=1: %v, want %v", got, want)
	}
	// k=Items: one job doing everything sequentially.
	if got, want := BatchMakespan(p, 64), 15*time.Second+2*time.Minute+64*time.Minute; got != want {
		t.Errorf("k=64: %v, want %v", got, want)
	}
}

func TestBatchMakespanDegenerate(t *testing.T) {
	p := baseParams()
	p.Items = 0
	if BatchMakespan(p, 4) != 0 {
		t.Error("no items should cost nothing")
	}
	p = baseParams()
	if BatchMakespan(p, 0) != BatchMakespan(p, 1) {
		t.Error("k<1 must clamp to 1")
	}
	p.Slots = 0
	if BatchMakespan(p, 1) <= 0 {
		t.Error("zero slots must clamp to 1")
	}
}

func TestOptimalBatchInterior(t *testing.T) {
	// Heavy overhead, light runtime: batching should win but not collapse
	// to a single job (submission serialization saturates first).
	p := GranularityParams{
		Overhead:     10 * time.Minute,
		SubmitSerial: 30 * time.Second,
		Runtime:      30 * time.Second,
		Items:        100,
		Slots:        10,
	}
	k, ms := OptimalBatch(p)
	if k <= 1 {
		t.Fatalf("heavy overhead should favour batching, got k=%d", k)
	}
	if k == p.Items {
		t.Fatalf("optimum collapsed to one job (k=%d) despite parallel slots", k)
	}
	if ms != BatchMakespan(p, k) {
		t.Fatal("reported makespan inconsistent")
	}
}

func TestOptimalBatchCheapOverhead(t *testing.T) {
	// Negligible overhead: no reason to batch.
	p := GranularityParams{
		Overhead:     time.Second,
		SubmitSerial: 0,
		Runtime:      10 * time.Minute,
		Items:        50,
		Slots:        1000,
	}
	if k, _ := OptimalBatch(p); k != 1 {
		t.Fatalf("cheap overhead should keep full parallelism, got k=%d", k)
	}
}

func TestGranularitySweep(t *testing.T) {
	p := baseParams()
	sweep := GranularitySweep(p)
	if len(sweep) != p.Items {
		t.Fatalf("sweep length = %d", len(sweep))
	}
	k, best := OptimalBatch(p)
	if sweep[k-1] != best {
		t.Fatalf("sweep[%d] = %v, OptimalBatch reports %v", k-1, sweep[k-1], best)
	}
	for _, v := range sweep {
		if v < best {
			t.Fatal("OptimalBatch missed a better point")
		}
	}
	if GranularitySweep(GranularityParams{}) != nil {
		t.Fatal("empty sweep should be nil")
	}
}

// Property: OptimalBatch equals the brute-force argmin and never exceeds
// the bounds.
func TestQuickOptimalBatchIsArgmin(t *testing.T) {
	f := func(oRaw, sRaw, rRaw uint8, nRaw uint8, wRaw uint8) bool {
		p := GranularityParams{
			Overhead:     time.Duration(oRaw) * time.Second,
			SubmitSerial: time.Duration(sRaw%30) * time.Second,
			Runtime:      time.Duration(rRaw%120+1) * time.Second,
			Items:        int(nRaw%40) + 1,
			Slots:        int(wRaw%16) + 1,
		}
		k, ms := OptimalBatch(p)
		if k < 1 || k > p.Items {
			return false
		}
		for kk := 1; kk <= p.Items; kk++ {
			if BatchMakespan(p, kk) < ms {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property: increasing the per-job overhead never decreases the optimal
// batch size's makespan, and larger overheads never make smaller batches
// strictly more attractive than they were.
func TestQuickOverheadMonotonicity(t *testing.T) {
	f := func(oRaw uint8) bool {
		p := baseParams()
		p.Overhead = time.Duration(oRaw) * time.Second
		_, t1 := OptimalBatch(p)
		p.Overhead += time.Minute
		_, t2 := OptimalBatch(p)
		return t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
