package dataset

import (
	"strings"
	"testing"
	"testing/quick"
)

const sample = `<dataset name="bronze-12">
  <input name="referenceImage">
    <item value="gfn://lacassagne/ref0"/>
    <item value="gfn://lacassagne/ref1"/>
  </input>
  <input name="floatingImage">
    <item value="gfn://lacassagne/flo0"/>
    <item value="gfn://lacassagne/flo1"/>
  </input>
</dataset>`

func TestParse(t *testing.T) {
	s, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "bronze-12" {
		t.Errorf("Name = %q", s.Name)
	}
	refs := s.Values("referenceImage")
	if len(refs) != 2 || refs[1] != "gfn://lacassagne/ref1" {
		t.Errorf("referenceImage = %v", refs)
	}
	if got := s.Values("absent"); got != nil {
		t.Errorf("Values(absent) = %v, want nil", got)
	}
	names := s.InputNames()
	if len(names) != 2 || names[0] != "referenceImage" || names[1] != "floatingImage" {
		t.Errorf("InputNames = %v", names)
	}
}

func TestMap(t *testing.T) {
	s, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	m := s.Map()
	if len(m) != 2 || len(m["floatingImage"]) != 2 {
		t.Errorf("Map = %v", m)
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Parse([]byte(sample))
	if err != nil {
		t.Fatal(err)
	}
	out, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, out)
	}
	if len(s2.Inputs) != 2 || s2.Values("referenceImage")[0] != "gfn://lacassagne/ref0" {
		t.Fatalf("round trip lost data: %+v", s2)
	}
}

func TestValidateDuplicateInput(t *testing.T) {
	bad := `<dataset><input name="a"/><input name="a"/></dataset>`
	if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate input not rejected: %v", err)
	}
}

func TestValidateEmptyName(t *testing.T) {
	bad := `<dataset><input/></dataset>`
	if _, err := Parse([]byte(bad)); err == nil || !strings.Contains(err.Error(), "empty name") {
		t.Fatalf("empty input name not rejected: %v", err)
	}
}

func TestParseMalformed(t *testing.T) {
	if _, err := Parse([]byte("<dataset><input")); err == nil {
		t.Fatal("malformed XML accepted")
	}
}

func TestEmptyInputAllowed(t *testing.T) {
	s, err := Parse([]byte(`<dataset><input name="empty"/></dataset>`))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Values("empty"); len(got) != 0 {
		t.Fatalf("Values(empty) = %v", got)
	}
}

func TestFromMapOrdering(t *testing.T) {
	s := FromMap("x", map[string][]string{
		"zeta":  {"z1"},
		"alpha": {"a1", "a2"},
	})
	names := s.InputNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Fatalf("FromMap inputs not name-ordered: %v", names)
	}
}

// xmlSafe reports whether every rune of v is a legal XML 1.0 character;
// the data-set format inherits XML's character repertoire.
func xmlSafe(v string) bool {
	for _, r := range v {
		switch {
		case r == 0x09 || r == 0x0A || r == 0x0D:
		case r >= 0x20 && r <= 0xD7FF:
		case r >= 0xE000 && r <= 0xFFFD:
		case r >= 0x10000 && r <= 0x10FFFF:
		default:
			return false
		}
	}
	return true
}

// Property: FromMap → Marshal → Parse → Map is the identity on contents.
func TestQuickRoundTripIdentity(t *testing.T) {
	f := func(vals []string) bool {
		// Keep only values the format can legally carry.
		clean := make([]string, 0, len(vals))
		for _, v := range vals {
			if xmlSafe(v) {
				clean = append(clean, v)
			}
		}
		in := map[string][]string{"a": clean, "b": {"fixed"}}
		s := FromMap("t", in)
		data, err := s.Marshal()
		if err != nil {
			return false
		}
		s2, err := Parse(data)
		if err != nil {
			return false
		}
		got := s2.Map()
		if len(got["a"]) != len(clean) {
			return false
		}
		for i := range clean {
			if got["a"][i] != clean[i] {
				return false
			}
		}
		return len(got["b"]) == 1 && got["b"][0] == "fixed"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
