// Package dataset implements the XML input-data-set language of Sec. 4.1:
// a file format that records the items fed to each input (data source) of a
// workflow, so that an execution can be saved, shared, and re-run on the
// same data.
package dataset

import (
	"encoding/xml"
	"fmt"
	"sort"
)

// Item is one data value of an input set.
type Item struct {
	Value string `xml:"value,attr"`
}

// Input is the item list bound to one workflow data source.
type Input struct {
	Name  string `xml:"name,attr"`
	Items []Item `xml:"item"`
}

// Set is the document root: the complete input data set of one execution.
type Set struct {
	XMLName xml.Name `xml:"dataset"`
	Name    string   `xml:"name,attr,omitempty"`
	Inputs  []Input  `xml:"input"`
}

// Parse decodes and validates a data-set document.
func Parse(data []byte) (*Set, error) {
	var s Set
	if err := xml.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Marshal encodes the set as indented XML.
func (s *Set) Marshal() ([]byte, error) {
	out, err := xml.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	return out, nil
}

// Validate checks that input names are present and unique.
func (s *Set) Validate() error {
	seen := make(map[string]bool)
	for _, in := range s.Inputs {
		if in.Name == "" {
			return fmt.Errorf("dataset %s: input with empty name", s.Name)
		}
		if seen[in.Name] {
			return fmt.Errorf("dataset %s: duplicate input %q", s.Name, in.Name)
		}
		seen[in.Name] = true
	}
	return nil
}

// Values returns the item values of the named input, or nil if absent.
func (s *Set) Values(input string) []string {
	for _, in := range s.Inputs {
		if in.Name == input {
			vals := make([]string, len(in.Items))
			for i, it := range in.Items {
				vals[i] = it.Value
			}
			return vals
		}
	}
	return nil
}

// Map returns all inputs as a name-to-values map.
func (s *Set) Map() map[string][]string {
	m := make(map[string][]string, len(s.Inputs))
	for _, in := range s.Inputs {
		m[in.Name] = s.Values(in.Name)
	}
	return m
}

// InputNames returns the input names in document order.
func (s *Set) InputNames() []string {
	names := make([]string, len(s.Inputs))
	for i, in := range s.Inputs {
		names[i] = in.Name
	}
	return names
}

// FromMap builds a Set from a name-to-values map, with inputs ordered by
// name for reproducible output.
func FromMap(name string, inputs map[string][]string) *Set {
	s := &Set{Name: name}
	keys := make([]string, 0, len(inputs))
	for k := range inputs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		in := Input{Name: k}
		for _, v := range inputs[k] {
			in.Items = append(in.Items, Item{Value: v})
		}
		s.Inputs = append(s.Inputs, in)
	}
	return s
}
