package campaign

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

// wanWait sums the channel-wait time the member grids actually paid
// (failed attempts included).
func wanWait(f *federation.Federation) time.Duration {
	var w time.Duration
	for i := 0; i < f.Size(); i++ {
		w += f.Grid(i).WANWait()
	}
	return w
}

// TestContentionWidensLocalityMargin is the contended-fabric acceptance
// scenario: on the 4-grid skewed-placement federation, squeezing every
// grid pair down to one concurrent WAN fetch must widen the gap between
// the locality-aware Ranked policy and its locality-blind control beyond
// what the PR 4 pure-delay model showed, on both campaign span and p95
// per-tenant makespan — and the mechanism must be channel queueing: the
// blind run drowns in WAN wait the aware run never accumulates. This is
// the congestion-collapse-under-skew family the pure-delay model could
// not express (concurrent fetches overlapped for free).
func TestContentionWidensLocalityMargin(t *testing.T) {
	awareDelay, _ := runLocality(t, federation.Ranked(), slowWAN(), 1, 0)
	blindDelay, _ := runLocality(t, federation.RankedLocalityBlind(), slowWAN(), 1, 0)
	awareCont, fAwareCont := runLocality(t, federation.Ranked(), slowWAN(), 1, 1)
	blindCont, fBlindCont := runLocality(t, federation.RankedLocalityBlind(), slowWAN(), 1, 1)

	// Aware must still win outright under contention.
	if awareCont.Makespan >= blindCont.Makespan {
		t.Errorf("contended aware span %v not below blind span %v", awareCont.Makespan, blindCont.Makespan)
	}
	if ap, bp := p95(awareCont), p95(blindCont); ap >= bp {
		t.Errorf("contended aware p95 %v not below blind p95 %v", ap, bp)
	}
	// And the margin must be wider than the pure-delay one.
	if dm, cm := blindDelay.Makespan-awareDelay.Makespan, blindCont.Makespan-awareCont.Makespan; cm <= dm {
		t.Errorf("contention did not widen the span margin: delay %v vs contended %v", dm, cm)
	}
	if dm, cm := p95(blindDelay)-p95(awareDelay), p95(blindCont)-p95(awareCont); cm <= dm {
		t.Errorf("contention did not widen the p95 margin: delay %v vs contended %v", dm, cm)
	}
	// Mechanism check: the blind run queues on the contended channels,
	// the aware run (which barely touches the WAN) must not.
	aw, bw := wanWait(fAwareCont), wanWait(fBlindCont)
	if aw*10 >= bw {
		t.Errorf("aware WAN wait %v not well below blind %v — contention is not the mechanism", aw, bw)
	}
}

// wanFingerprint extends the locality fingerprint with the per-grid
// WAN-wait seconds, so channel grant order — not just byte counts — is
// pinned.
func wanFingerprint(rep *Report, f *federation.Federation) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#x\n", localityFingerprint(rep, f))
	for i := 0; i < f.Size(); i++ {
		fmt.Fprintf(h, "%s|%.3f|%.3f\n", f.GridName(i), f.Grid(i).WANWait().Seconds(), f.Telemetry(i).WANWait.Seconds())
	}
	return h.Sum64()
}

// TestContendedCampaignDeterministic pins cross-run determinism of the
// contended fabric end to end: the skewed 12-tenant campaign over
// capacity-1 channels produces bit-identical per-tenant makespans,
// per-grid telemetry and per-grid WAN-wait seconds on every run (the
// test-speed face of BenchmarkFederationContention's cross-iteration
// assertion).
func TestContendedCampaignDeterministic(t *testing.T) {
	run := func() uint64 {
		rep, f := runLocality(t, federation.RankedLocalityBlind(), slowWAN(), 1, 1)
		return wanFingerprint(rep, f)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("contended campaign not deterministic: %#x vs %#x", a, b)
	}
}

// TestLinkMatrixEquivalentCampaign is the end-to-end face of the matrix
// generalization property: the skewed locality campaign run under a
// LinkMatrix listing every ordered member-grid pair at the DefaultWAN
// constants is bit-identical (fingerprint and all) to the same campaign
// under the class-based DefaultWAN model itself.
func TestLinkMatrixEquivalentCampaign(t *testing.T) {
	matrix := &grid.LinkMatrix{Pairs: make(map[grid.GridPair]grid.Link)}
	wan := grid.DefaultWAN().WAN
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				matrix.Pairs[grid.GridPair{From: fmt.Sprintf("g%d", i), To: fmt.Sprintf("g%d", j)}] = wan
			}
		}
	}
	classes, fClasses := runLocality(t, federation.Ranked(), grid.DefaultWAN(), 1, 2)
	matrixed, fMatrix := runLocality(t, federation.Ranked(), matrix, 1, 2)
	if a, b := wanFingerprint(classes, fClasses), wanFingerprint(matrixed, fMatrix); a != b {
		t.Fatalf("full matrix diverges from the class model: %#x vs %#x", a, b)
	}
}

// TestCampaignSurvivesGridOutage is the outage acceptance scenario at the
// campaign layer: the 4-grid skewed federated campaign with one member
// dark for a mid-campaign window must still complete every tenant via
// re-brokering, route no work to the dark grid during the window, and
// degrade gracefully (the disturbed span is bounded by a small multiple
// of the clean one).
func TestCampaignSurvivesGridOutage(t *testing.T) {
	const (
		dark   = "g1"
		downAt = 2 * time.Minute
		upFor  = 3 * time.Minute
	)
	run := func(outages []federation.Outage) (*Report, *federation.Federation) {
		eng := sim.NewEngine()
		f, err := federation.New(eng, federation.Config{
			Grids:    localitySpecs(),
			Policy:   federation.Ranked(),
			Links:    slowWAN(),
			Rebroker: 2,
			Outages:  outages,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunFederated(eng, f, localityTenants(12, 1))
		if err != nil {
			t.Fatal(err)
		}
		return rep, f
	}
	rep, f := run([]federation.Outage{{Grid: dark, At: downAt, For: upFor}})
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			t.Errorf("tenant %s did not survive the outage: %v", tr.Name, tr.Err)
		}
	}
	inFlight, rejoined := 0, false
	for _, rec := range f.Records() {
		if rec.Grid != dark {
			continue
		}
		switch {
		case rec.Submitted >= sim.Time(downAt) && rec.Submitted < sim.Time(downAt+upFor):
			t.Errorf("job %s was routed to the dark grid inside the window (submitted %v)", rec.Spec.Name, rec.Submitted)
		case rec.Status == grid.StatusFailed:
			inFlight++
		}
		if rec.Submitted >= sim.Time(downAt+upFor) {
			rejoined = true
		}
	}
	if inFlight == 0 {
		t.Error("no in-flight job failed on the dark grid — the window missed the campaign")
	}
	if !rejoined {
		t.Error("the recovered grid never rejoined the campaign")
	}
	clean, _ := run(nil)
	if rep.Makespan < clean.Makespan {
		t.Errorf("outage span %v below the clean span %v", rep.Makespan, clean.Makespan)
	}
	if rep.Makespan > 2*clean.Makespan {
		t.Errorf("outage span %v more than doubles the clean span %v", rep.Makespan, clean.Makespan)
	}
}
