package campaign

import (
	"errors"
	"testing"
	"time"

	"repro/internal/core"
)

// admissionLoad is the burst scenario: one steady tenant enacting a
// data-parallel pipeline from t=0 (each stage submits a 20-job burst, so
// its tail overheads scale with the fair-share round length), and two
// 150-item single-stage bursts arriving close together — the second burst
// is what admission control is for.
func admissionLoad() []TenantSpec {
	dp := core.Options{DataParallelism: true}
	return []TenantSpec{
		{Name: "steady", Opts: dp, Build: SyntheticChain(4, 20, 30*time.Second, 1)},
		{Name: "burst1", Arrival: 2 * time.Minute, Opts: dp, Build: SyntheticChain(1, 150, 30*time.Second, 1)},
		{Name: "burst2", Arrival: 4 * time.Minute, Opts: dp, Build: SyntheticChain(1, 150, 30*time.Second, 1)},
	}
}

func runAdmission(t *testing.T, cfg Config) map[string]TenantResult {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]TenantResult, len(rep.Tenants))
	for _, tr := range rep.Tenants {
		out[tr.Name] = tr
	}
	return out
}

// TestAdmissionProtectsSteadyTenant is the satellite acceptance: with a
// UI-backlog threshold, the second burst is held back until the first has
// drained, and the steady tenant's overhead tail (p90 over its own jobs)
// and makespan both improve against the ungated run. The delayed burst
// pays for it honestly in its own AdmissionDelay.
func TestAdmissionProtectsSteadyTenant(t *testing.T) {
	ungated := runAdmission(t, Config{Grid: testGrid(64), Tenants: admissionLoad()})
	gated := runAdmission(t, Config{
		Grid:           testGrid(64),
		Tenants:        admissionLoad(),
		MaxUIBacklog:   25,
		AdmissionRetry: 30 * time.Second,
	})

	for name, tr := range gated {
		if tr.Err != nil {
			t.Fatalf("gated tenant %s: %v", name, tr.Err)
		}
	}
	if d := gated["burst2"].AdmissionDelay; d <= 0 {
		t.Fatalf("burst2 admission delay = %v, want > 0 (the gate never engaged)", d)
	}
	if d := gated["steady"].AdmissionDelay; d != 0 {
		t.Fatalf("steady tenant was delayed %v by admission control", d)
	}
	if g, u := gated["steady"].Overheads.P90, ungated["steady"].Overheads.P90; g >= u {
		t.Errorf("steady p90 overhead %v not below ungated %v", g, u)
	}
	if g, u := gated["steady"].Makespan, ungated["steady"].Makespan; g >= u {
		t.Errorf("steady makespan %v not below ungated %v", g, u)
	}
}

// TestAdmissionRejectsAfterMaxDelay pins the rejection path: a tenant
// that waits out AdmissionMaxDelay against a still-saturated UI is turned
// away with ErrAdmissionRejected while the rest of the campaign
// completes.
func TestAdmissionRejectsAfterMaxDelay(t *testing.T) {
	rep, err := Run(Config{
		Grid: testGrid(64),
		Tenants: []TenantSpec{
			{Name: "flood", Opts: spdp(), Build: SyntheticChain(1, 200, 10*time.Minute, 1)},
			{Name: "late", Arrival: 2 * time.Minute, Opts: spdp(), Build: SyntheticChain(1, 5, 30*time.Second, 1)},
		},
		MaxUIBacklog:      10,
		AdmissionRetry:    30 * time.Second,
		AdmissionMaxDelay: 2 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	var flood, late TenantResult
	for _, tr := range rep.Tenants {
		switch tr.Name {
		case "flood":
			flood = tr
		case "late":
			late = tr
		}
	}
	if flood.Err != nil {
		t.Fatalf("flood tenant: %v", flood.Err)
	}
	if !errors.Is(late.Err, ErrAdmissionRejected) {
		t.Fatalf("late tenant err = %v, want ErrAdmissionRejected", late.Err)
	}
	if late.Makespan != 0 {
		t.Fatalf("rejected tenant reports a makespan of %v", late.Makespan)
	}
}
