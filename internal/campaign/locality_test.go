package campaign

import (
	"fmt"
	"hash/fnv"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

// localitySpecs returns four equal quiet member grids: identical capacity
// and middleware, different seeds. With the infrastructure symmetric, any
// span/p95 separation between policies on a skewed-placement load is
// attributable to data movement alone.
func localitySpecs() []federation.GridSpec {
	specs := make([]federation.GridSpec, 4)
	for i := range specs {
		cfg := testGrid(24)
		cfg.Overheads.SubmitMean = 3 * time.Second
		cfg.Seed = uint64(200 + i)
		specs[i] = federation.GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	return specs
}

// localityTenants returns n tenants whose inputs are fully resident on a
// home grid assigned round-robin across the four localitySpecs grids —
// the skewed-placement load of the locality acceptance scenario.
func localityTenants(n int, skew float64) []TenantSpec {
	specs := make([]TenantSpec, n)
	for i := range specs {
		home := grid.Site{Grid: fmt.Sprintf("g%d", i%4)}
		specs[i] = TenantSpec{
			Name:    fmt.Sprintf("t%02d", i),
			Arrival: time.Duration(i) * 30 * time.Second,
			Opts:    spdp(),
			Build:   SyntheticChainPlaced(3, 8, 20*time.Second, 20, home, skew),
		}
	}
	return specs
}

// slowWAN is the locality scenario's link model: 1 MB/s across grids with
// a 10 s per-file setup, so a 20 MB file costs 30 s to misplace — on the
// order of the quiet grids' whole middleware overhead.
func slowWAN() grid.LinkModel {
	return &grid.Links{WAN: grid.Link{MBps: 1, Latency: 10 * time.Second}}
}

// runLocality enacts the 12-tenant skewed load over the 4-grid federation
// under the given policy and link model. streams > 0 makes the WAN fabric
// contended (that many concurrent fetch legs per grid pair); 0 keeps the
// uncontended pure-delay model.
func runLocality(t *testing.T, policy federation.Policy, links grid.LinkModel, skew float64, streams int) (*Report, *federation.Federation) {
	t.Helper()
	eng := sim.NewEngine()
	f, err := federation.New(eng, federation.Config{Grids: localitySpecs(), Policy: policy, Links: links, WANStreams: streams})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFederated(eng, f, localityTenants(12, skew))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
		}
	}
	return rep, f
}

// wanMB sums the WAN bytes the member grids actually moved (failed
// attempts included).
func wanMB(f *federation.Federation) float64 {
	var mb float64
	for i := 0; i < f.Size(); i++ {
		mb += f.Grid(i).RemoteInMB()
	}
	return mb
}

// TestLocalityAwareRankedBeatsBlindAndBacklog is the acceptance scenario:
// on the 4-grid federation with every tenant's inputs resident on one
// home grid and a slow WAN, the locality-aware Ranked policy must beat
// both the locality-blind ranking and LeastBacklog on campaign span and
// p95 per-tenant makespan, and it must do so by actually moving fewer
// bytes across the WAN.
func TestLocalityAwareRankedBeatsBlindAndBacklog(t *testing.T) {
	aware, fAware := runLocality(t, federation.Ranked(), slowWAN(), 1, 0)
	blind, fBlind := runLocality(t, federation.RankedLocalityBlind(), slowWAN(), 1, 0)
	backlog, fBacklog := runLocality(t, federation.LeastBacklog(), slowWAN(), 1, 0)

	if aware.Makespan >= blind.Makespan {
		t.Errorf("aware span %v not below blind span %v", aware.Makespan, blind.Makespan)
	}
	if aware.Makespan >= backlog.Makespan {
		t.Errorf("aware span %v not below least-backlog span %v", aware.Makespan, backlog.Makespan)
	}
	if ap, bp := p95(aware), p95(blind); ap >= bp {
		t.Errorf("aware p95 %v not below blind p95 %v", ap, bp)
	}
	if ap, lp := p95(aware), p95(backlog); ap >= lp {
		t.Errorf("aware p95 %v not below least-backlog p95 %v", ap, lp)
	}
	// The mechanism must be data movement, not luck: the aware run's WAN
	// traffic has to be a fraction of either control's.
	aw, bw, lw := wanMB(fAware), wanMB(fBlind), wanMB(fBacklog)
	if aw*2 >= bw || aw*2 >= lw {
		t.Errorf("aware WAN traffic %v MB not well below blind %v / backlog %v", aw, bw, lw)
	}
}

// TestUniformReplicasNoRegression pins the decay property: when every
// input is uniformly resident (unplaced) and the workflow is a single
// stage — so no intermediate output ever skews placement — the
// locality-aware and locality-blind rankings see identical transfer
// estimates on every pick and must produce bit-identical campaigns, WAN
// model and all.
func TestUniformReplicasNoRegression(t *testing.T) {
	run := func(policy federation.Policy) uint64 {
		eng := sim.NewEngine()
		f, err := federation.New(eng, federation.Config{Grids: fedSpecs(), Policy: policy})
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]TenantSpec, 8)
		for i := range specs {
			specs[i] = TenantSpec{
				Name:    fmt.Sprintf("t%02d", i),
				Arrival: time.Duration(i) * 30 * time.Second,
				Opts:    spdp(),
				Build:   SyntheticChain(1, 8, 20*time.Second, 20),
			}
		}
		rep, err := RunFederated(eng, f, specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
		}
		return localityFingerprint(rep, f)
	}
	if aware, blind := run(federation.Ranked()), run(federation.RankedLocalityBlind()); aware != blind {
		t.Fatalf("uniform-replica campaign differs between aware (%#x) and blind (%#x) ranking", aware, blind)
	}
}

// localityFingerprint extends the federated fingerprint with the per-grid
// WAN traffic, so a change to replica selection or the transfer model is
// caught even when it happens not to move any makespan.
func localityFingerprint(rep *Report, f *federation.Federation) uint64 {
	h := fnv.New64a()
	for _, tr := range rep.Tenants {
		fmt.Fprintf(h, "%s|%d|%d|%d\n", tr.Name, tr.Makespan, tr.Finish, tr.AdmissionDelay)
	}
	for i := 0; i < f.Size(); i++ {
		tl := f.Telemetry(i)
		fmt.Fprintf(h, "%s|%d|%d|%d|%.3f\n", f.GridName(i), tl.Dispatched, tl.Observed, tl.Rebrokered, tl.RemoteInMB)
	}
	g := rep.Global
	fmt.Fprintf(h, "%d|%d|%d\n", g.Jobs, g.Failed, g.Resubmits)
	return h.Sum64()
}

// goldenLocalityFingerprint pins the default-WAN federated locality
// behaviour end to end: skewed placement, cross-grid fetches priced by
// grid.DefaultWAN, failures and re-brokering on. Any change to the link
// model, replica selection, output registration sites, broker affinity
// views or the campaign loop shows up here; regenerate the constant (the
// test failure prints it) only for an intentional semantic change, and
// say so in the commit.
const goldenLocalityFingerprint uint64 = 0x729943eae9024726

// TestFederatedLocalityGolden is TestFederatedCampaignGolden's
// counterpart for the locality-aware defaults: same flaky/steady 2-grid
// federation, but with skewed input placement and the default WAN link
// model (Config.Links nil).
func TestFederatedLocalityGolden(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine()
		flaky := testGrid(16)
		flaky.Overheads.SubmitMean = 10 * time.Second
		flaky.Failures = grid.FailureConfig{Probability: 0.25, DetectDelay: 30 * time.Second, MaxRetries: 2}
		flaky.Seed = 7
		steady := testGrid(24)
		steady.Seed = 8
		f, err := federation.New(eng, federation.Config{
			Grids: []federation.GridSpec{
				{Name: "flaky", Config: flaky},
				{Name: "steady", Config: steady},
			},
			Policy:   federation.Ranked(),
			Rebroker: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		specs := make([]TenantSpec, 6)
		for i := range specs {
			home := grid.Site{Grid: "flaky"}
			if i%2 == 1 {
				home = grid.Site{Grid: "steady"}
			}
			specs[i] = TenantSpec{
				Name:    fmt.Sprintf("t%02d", i),
				Arrival: time.Duration(i) * 30 * time.Second,
				Opts:    spdp(),
				Build:   SyntheticChainPlaced(3, 8, 20*time.Second, 10, home, 1),
			}
		}
		rep, err := RunFederated(eng, f, specs)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
		}
		return localityFingerprint(rep, f)
	}
	got := run()
	if again := run(); again != got {
		t.Fatalf("federated locality campaign not deterministic: %#x vs %#x", got, again)
	}
	if got != goldenLocalityFingerprint {
		t.Fatalf("federated locality fingerprint = %#x, golden %#x (update the constant only for an intentional semantic change)",
			got, goldenLocalityFingerprint)
	}
}
