package campaign

import (
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/sim"
)

// TestCampaignSurvivesSEOutage is the storage-robustness scenario at the
// campaign layer: the 4-grid skewed federated campaign with one member's
// storage elements dark for a mid-campaign window — its compute stays up
// — must still complete every tenant, because the k=2 replication floor
// copied every single-replica input (and every produced intermediate)
// onto a second grid before the window opened, and bounded re-staging
// plus re-brokering route around the dark element. The disturbed span
// must stay within a small multiple of the clean one.
func TestCampaignSurvivesSEOutage(t *testing.T) {
	run := func(outages []federation.Outage) (*Report, *federation.Federation) {
		eng := sim.NewEngine()
		f, err := federation.New(eng, federation.Config{
			Grids:       localitySpecs(),
			Policy:      federation.RankedSafe(),
			Links:       slowWAN(),
			Rebroker:    2,
			MinReplicas: 2,
			Outages:     outages,
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunFederated(eng, f, localityTenants(12, 1))
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				t.Fatalf("tenant %s did not survive the SE outage: %v", tr.Name, tr.Err)
			}
		}
		return rep, f
	}
	clean, _ := run(nil)
	dark, f := run([]federation.Outage{
		{Grid: "g1", At: 2 * time.Minute, For: 3 * time.Minute, Storage: true},
	})
	if f.Repairs() == 0 {
		t.Error("the k=2 floor commissioned no repair copies")
	}
	if f.Down(1) {
		t.Error("a storage-only outage took g1's compute dimension down")
	}
	if dark.Makespan > 2*clean.Makespan {
		t.Errorf("disturbed span %v more than doubles the clean span %v", dark.Makespan, clean.Makespan)
	}
}
