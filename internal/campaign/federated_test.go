package campaign

import (
	"fmt"
	"hash/fnv"
	"sort"
	"testing"
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

// fedSpecs returns four heterogeneous member grids: capacities shrink and
// UI latencies grow from grid 0 to grid 3, so grid 3 ("busiest": the
// least capacity behind the slowest middleware) is the worst possible
// single home for a whole campaign.
func fedSpecs() []federation.GridSpec {
	nodes := []int{48, 32, 24, 12}
	submit := []time.Duration{3 * time.Second, 5 * time.Second, 8 * time.Second, 15 * time.Second}
	specs := make([]federation.GridSpec, 4)
	for i := range specs {
		cfg := testGrid(nodes[i])
		cfg.Overheads.SubmitMean = submit[i]
		cfg.Seed = uint64(100 + i)
		specs[i] = federation.GridSpec{Name: fmt.Sprintf("g%d", i), Config: cfg}
	}
	return specs
}

func fedTenants(n int) []TenantSpec {
	specs := make([]TenantSpec, n)
	for i := range specs {
		specs[i] = TenantSpec{
			Name:    fmt.Sprintf("t%02d", i),
			Arrival: time.Duration(i) * 30 * time.Second,
			Opts:    spdp(),
			Build:   SyntheticChain(3, 8, 20*time.Second, 1),
		}
	}
	return specs
}

// runFederated runs the 16-tenant load over the 4-grid federation under
// the given policy and returns the report and federation.
func runFederated(t *testing.T, policy federation.Policy) (*Report, *federation.Federation) {
	t.Helper()
	eng := sim.NewEngine()
	f, err := federation.New(eng, federation.Config{Grids: fedSpecs(), Policy: policy})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunFederated(eng, f, fedTenants(16))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
		}
	}
	return rep, f
}

// p95 returns the upper nearest-rank 95th percentile of the per-tenant
// makespans (with 16 tenants, the maximum).
func p95(rep *Report) time.Duration {
	ms := make([]time.Duration, len(rep.Tenants))
	for i, tr := range rep.Tenants {
		ms[i] = tr.Makespan
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	return ms[len(ms)*95/100]
}

// TestFederatedCampaignBeatsPinnedBusiest is the acceptance scenario: a
// 16-tenant campaign over the 4-grid federation under the overhead-ranked
// policy must finish with a lower p95 per-tenant makespan than the same
// load pinned to the single busiest grid (grid 3: 12 nodes behind a 15s
// UI).
func TestFederatedCampaignBeatsPinnedBusiest(t *testing.T) {
	ranked, fr := runFederated(t, federation.Ranked())
	pinned, _ := runFederated(t, federation.Pinned(3))

	if rp, pp := p95(ranked), p95(pinned); rp >= pp {
		t.Fatalf("ranked p95 %v not below pinned-busiest p95 %v", rp, pp)
	}
	// The win must come from actual brokering: the ranked policy has to
	// spread the load over several grids, favouring the fast ones.
	used := 0
	for i := 0; i < fr.Size(); i++ {
		if fr.Telemetry(i).Dispatched > 0 {
			used++
		}
	}
	if used < 3 {
		t.Fatalf("ranked policy used only %d of 4 grids", used)
	}
	if fr.Telemetry(3).Dispatched >= fr.Telemetry(0).Dispatched {
		t.Fatalf("slowest grid received %d jobs, fast grid %d — ranking inverted",
			fr.Telemetry(3).Dispatched, fr.Telemetry(0).Dispatched)
	}
	// Per-tenant partitions must cover the federation aggregates even
	// with jobs scattered across grids.
	total := 0
	for _, tr := range ranked.Tenants {
		total += tr.Overheads.Jobs + tr.Overheads.Failed
	}
	if global := ranked.Global; total != global.Jobs+global.Failed {
		t.Fatalf("tenant partitions cover %d jobs, global has %d", total, global.Jobs+global.Failed)
	}
}

// goldenFederatedFingerprint pins a 2-grid federated campaign end to end:
// an FNV-1a hash over every tenant's makespan and finish instant, the
// per-grid dispatch/re-broker counts, and the federation-level job
// accounting. Any change to broker policies, federation dispatch order,
// the campaign loop or the grid model shows up here; regenerate the
// constant (the test failure prints it) only for an intentional semantic
// change, and say so in the commit.
const goldenFederatedFingerprint uint64 = 0xb6ad0c0c4ef268e4

func federatedFingerprint(rep *Report, f *federation.Federation) uint64 {
	h := fnv.New64a()
	for _, tr := range rep.Tenants {
		fmt.Fprintf(h, "%s|%d|%d\n", tr.Name, tr.Makespan, tr.Finish)
	}
	for i := 0; i < f.Size(); i++ {
		tl := f.Telemetry(i)
		fmt.Fprintf(h, "%s|%d|%d|%d\n", f.GridName(i), tl.Dispatched, tl.Observed, tl.Rebrokered)
	}
	g := rep.Global
	fmt.Fprintf(h, "%d|%d|%d\n", g.Jobs, g.Failed, g.Resubmits)
	return h.Sum64()
}

// TestFederatedCampaignGolden runs a 2-grid federated campaign with
// failures and re-brokering enabled and compares its complete outcome
// fingerprint against the pinned golden. The federation runs under
// grid.LocalLinks — the location-blind transfer model — and the golden
// constant is the one captured before the catalog learned about replica
// locations: this test is the proof that LocalLinks restores the PR 3
// free-staging federation bit for bit (the default WAN model's behaviour
// is pinned separately by TestFederatedLocalityGolden).
func TestFederatedCampaignGolden(t *testing.T) {
	run := func() uint64 {
		eng := sim.NewEngine()
		flaky := testGrid(16)
		flaky.Overheads.SubmitMean = 10 * time.Second
		flaky.Failures = grid.FailureConfig{Probability: 0.25, DetectDelay: 30 * time.Second, MaxRetries: 2}
		flaky.Seed = 7
		steady := testGrid(24)
		steady.Seed = 8
		f, err := federation.New(eng, federation.Config{
			Grids: []federation.GridSpec{
				{Name: "flaky", Config: flaky},
				{Name: "steady", Config: steady},
			},
			Policy:   federation.Ranked(),
			Rebroker: 1,
			Links:    grid.LocalLinks(),
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunFederated(eng, f, fedTenants(6))
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
		}
		return federatedFingerprint(rep, f)
	}
	got := run()
	if again := run(); again != got {
		t.Fatalf("federated campaign not deterministic: %#x vs %#x", got, again)
	}
	if got != goldenFederatedFingerprint {
		t.Fatalf("federated campaign fingerprint = %#x, golden %#x (update the constant only for an intentional semantic change)",
			got, goldenFederatedFingerprint)
	}
}
