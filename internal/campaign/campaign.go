// Package campaign runs multi-tenant enactment campaigns: M workflows,
// each with its own enactor and optimization options, contending for a
// shared infrastructure — the regime the paper's findings live in, where
// "the increasing load of the middleware services on a production
// infrastructure cannot be neglected" because many users submit at once.
// The infrastructure is a Site: one shared grid.Grid (Run, RunOn) or a
// multi-grid federation.Federation whose broker policy spreads each
// tenant's jobs across member grids (RunFederated).
//
// Each tenant gets its own core.Enactor (independent Options, its own
// workflow and input set) and a grid.Tenant submission handle; all
// enactors are driven by the one sim.Engine, so a campaign is exactly as
// deterministic as a solo run: same configuration and seed, same
// per-tenant makespans. The grid's fair-share gate drains tenants
// round-robin at the serialized UI, so one burst-submitting tenant delays
// the others by a bounded factor instead of starving them behind its whole
// burst (set grid.Config.StrictFIFOSubmit to compare against the
// tenancy-unaware FIFO).
//
// Tenants may opt into adaptive granularity: at a fixed virtual period the
// runner feeds the tenant's observed overhead, serial submission cost and
// remaining work into model.OptimalBatch and retunes the enactor's
// DataGroupSize mid-run — the paper's Sec. 5.5 "optimal strategy to adapt
// the jobs' granularity to the grid load", closed as a feedback loop.
//
// Caution: tenants share one replica catalog. Wrapper output names embed
// the executable name, so two tenants running descriptors with identical
// executable names would collide in the catalog; give each tenant's codes
// tenant-unique names (SyntheticChain does this automatically).
package campaign

import (
	"errors"
	"fmt"
	"reflect"
	"time"

	"repro/internal/core"
	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/model"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Handle is one tenant's view of the infrastructure a campaign enacts on:
// a submission target (services.Submitter, so wrapper-backed services
// created on the handle submit as the tenant) plus the tenant's own
// record partition and statistics, which is all the campaign layer ever
// reads — the adaptive-granularity loop in particular observes only this
// partition, never global infrastructure stats, so one tenant's burst
// cannot distort another's retuning. Both *grid.Tenant (shared single
// grid) and *federation.Tenant (brokered multi-grid) satisfy it.
type Handle interface {
	services.Submitter
	// Name returns the tenant's name.
	Name() string
	// Engine returns the simulation engine, for builders that create
	// tenant-local services.
	Engine() *sim.Engine
	// Records returns the tenant's job records, in submission order.
	Records() []*grid.JobRecord
	// Overheads computes overhead statistics over the tenant's jobs only.
	Overheads() grid.OverheadStats
	// Phases computes per-phase latency means over the tenant's completed
	// jobs only.
	Phases() grid.PhaseStats
}

// Site is the infrastructure a campaign enacts on: a provider of tenant
// handles plus the campaign-global aggregates the report carries. Wrap a
// single shared grid with OnGrid or a federation with OnFederation.
type Site interface {
	// Tenant returns the (memoized) handle for the named tenant.
	Tenant(name string) Handle
	// TotalNodes returns the site's worker-node capacity, the default
	// concurrency estimate for adaptive granularity.
	TotalNodes() int
	// UIBacklog returns the submissions accepted but not yet cleared by
	// the site's serialized UIs (summed across a federation's member
	// grids) — the congestion signal admission control gates arrivals on.
	UIBacklog() int
	// Overheads aggregates overhead statistics over every tenant's jobs.
	Overheads() grid.OverheadStats
	// Phases aggregates per-phase latency means over every tenant's
	// completed jobs.
	Phases() grid.PhaseStats
}

// OnGrid adapts one shared grid into a campaign Site.
func OnGrid(g *grid.Grid) Site { return gridSite{g} }

type gridSite struct{ g *grid.Grid }

func (s gridSite) Tenant(name string) Handle     { return s.g.Tenant(name) }
func (s gridSite) TotalNodes() int               { return s.g.TotalNodes() }
func (s gridSite) UIBacklog() int                { return s.g.PendingSubmits() }
func (s gridSite) Overheads() grid.OverheadStats { return s.g.Overheads() }
func (s gridSite) Phases() grid.PhaseStats       { return s.g.Phases() }

// OnFederation adapts a multi-grid federation into a campaign Site: each
// tenant's jobs are brokered across the member grids by the federation's
// policy.
func OnFederation(f *federation.Federation) Site { return fedSite{f} }

type fedSite struct{ f *federation.Federation }

func (s fedSite) Tenant(name string) Handle { return s.f.Tenant(name) }
func (s fedSite) TotalNodes() int           { return s.f.TotalNodes() }
func (s fedSite) UIBacklog() int {
	n := 0
	for i := 0; i < s.f.Size(); i++ {
		n += s.f.Grid(i).PendingSubmits()
	}
	return n
}
func (s fedSite) Overheads() grid.OverheadStats { return s.f.Overheads() }
func (s fedSite) Phases() grid.PhaseStats       { return s.f.Phases() }

// BuildFunc constructs one tenant's workflow and input set against the
// tenant's submission handle: wrapper-backed services created on the
// handle submit as that tenant, which is what keeps per-tenant accounting
// disjoint. The builder may register the tenant's input files in the
// shared catalog (via t.Catalog()).
type BuildFunc func(t Handle) (*workflow.Workflow, map[string][]string, error)

// AdaptiveGranularity opts a tenant into mid-campaign job-granularity
// retuning.
type AdaptiveGranularity struct {
	// Interval is the virtual period between retuning decisions (required
	// > 0). The first decision happens one interval after the tenant's
	// arrival, once some overhead has been observed.
	Interval time.Duration
	// Slots is the concurrency the granularity model assumes the grid
	// grants this tenant. Zero means an equal share of the worker nodes
	// (total nodes / number of tenants).
	Slots int
	// MinBatch/MaxBatch clamp the chosen batch size. Zero means
	// unclamped.
	MinBatch, MaxBatch int
}

// TenantSpec describes one tenant of a campaign.
type TenantSpec struct {
	// Name identifies the tenant; it must be unique and non-empty.
	Name string
	// Arrival is when the tenant starts submitting, relative to the
	// campaign start — arrival waves are staggered Arrivals.
	Arrival time.Duration
	// Opts are the tenant's enactor options (its optimization mix).
	Opts core.Options
	// Build constructs the tenant's workflow against its submission
	// handle.
	Build BuildFunc
	// Adapt, when non-nil, enables adaptive granularity for this tenant.
	Adapt *AdaptiveGranularity
}

// Config assembles a campaign.
type Config struct {
	// Grid is the shared infrastructure model. Zero value:
	// grid.DefaultConfig.
	Grid    grid.Config
	Tenants []TenantSpec
	// MaxUIBacklog enables admission control: a tenant arriving while the
	// site's UI backlog (Site.UIBacklog) exceeds the threshold is held
	// back and re-checked every AdmissionRetry until the backlog drains —
	// protecting the tenants already running from yet another burst
	// landing on a saturated serialized UI. Zero disables admission
	// control.
	MaxUIBacklog int
	// AdmissionRetry is the virtual period between admission re-checks of
	// a held-back tenant. Zero means 30 s.
	AdmissionRetry time.Duration
	// AdmissionMaxDelay bounds how long a tenant may be held back: once
	// it has waited this long and the backlog is still above threshold,
	// the tenant is rejected with ErrAdmissionRejected instead of delayed
	// further. Zero means tenants are delayed indefinitely (they always
	// start eventually — the backlog drains as running tenants finish).
	AdmissionMaxDelay time.Duration
}

// Admission is the arrival-gating policy of a campaign, the resolved form
// of Config's MaxUIBacklog/AdmissionRetry/AdmissionMaxDelay knobs for
// callers driving RunSiteAdmitted directly (federated campaigns included).
// The zero value disables admission control.
type Admission struct {
	// MaxUIBacklog is the UI-backlog threshold above which arrivals are
	// held back (zero disables gating).
	MaxUIBacklog int
	// Retry is the re-check period for held-back tenants (zero means
	// 30 s).
	Retry time.Duration
	// MaxDelay bounds a tenant's total admission delay before rejection
	// (zero means unbounded).
	MaxDelay time.Duration
}

// ErrAdmissionRejected reports a tenant turned away by admission control:
// it waited AdmissionMaxDelay and the UI backlog still exceeded the
// threshold.
var ErrAdmissionRejected = errors.New("campaign: tenant rejected by admission control")

// Adaptation records one mid-campaign granularity retuning decision.
type Adaptation struct {
	At        time.Duration // decision instant, relative to the campaign start
	Batch     int           // DataGroupSize chosen
	Predicted time.Duration // model-predicted remaining makespan at that batch
	Overhead  time.Duration // observed mean overhead fed into the model
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	Name    string
	Arrival time.Duration
	// Finish is the virtual instant (relative to the campaign start) the
	// tenant's execution reached a terminal state; Makespan is
	// Finish − Arrival (zero if the run failed or stalled).
	Finish   time.Duration
	Makespan time.Duration
	Result   *core.Result
	Err      error
	// AdmissionDelay is how long admission control held the tenant back
	// beyond its specified Arrival before letting it start (zero without
	// admission control or when the gate was clear).
	AdmissionDelay time.Duration
	// Overheads and Phases cover this tenant's jobs only; across tenants
	// they partition the global grid statistics.
	Overheads   grid.OverheadStats
	Phases      grid.PhaseStats
	Adaptations []Adaptation
}

// Report is the outcome of a campaign.
type Report struct {
	// Tenants holds per-tenant results in specification order.
	Tenants []TenantResult
	// Makespan is the campaign span: the latest tenant finish instant.
	Makespan time.Duration
	// Global aggregates every job of every tenant, as Grid.Overheads sees
	// them.
	Global       grid.OverheadStats
	GlobalPhases grid.PhaseStats
}

// Run builds a fresh engine and grid from cfg and enacts all tenants on
// them. Tenant-level failures (a failing service, a stalled workflow) are
// reported per tenant, not as a Run error; Run errors are configuration
// problems.
func Run(cfg Config) (*Report, error) {
	if reflect.DeepEqual(cfg.Grid, grid.Config{}) {
		cfg.Grid = grid.DefaultConfig()
	} else if len(cfg.Grid.Clusters) == 0 {
		// A partially-filled config with no clusters is almost certainly a
		// mistake; silently substituting DefaultConfig would discard the
		// caller's seed and gate policy.
		return nil, fmt.Errorf("campaign: grid config has no clusters (leave Grid entirely zero for the default grid)")
	}
	eng := sim.NewEngine()
	return RunSiteAdmitted(eng, OnGrid(grid.New(eng, cfg.Grid)), cfg.Tenants,
		Admission{MaxUIBacklog: cfg.MaxUIBacklog, Retry: cfg.AdmissionRetry, MaxDelay: cfg.AdmissionMaxDelay})
}

// tenantRun is the mutable state of one tenant during a campaign.
type tenantRun struct {
	spec        *TenantSpec
	tenant      Handle
	en          *core.Enactor
	inputs      map[string][]string
	res         *core.Result
	err         error
	finished    bool
	finish      sim.Time
	admitDelay  time.Duration
	adaptations []Adaptation
}

// RunOn enacts the tenants on an existing engine and shared grid. It is
// RunSite over OnGrid(g), kept as the single-grid entry point for callers
// that want to inspect the grid afterwards or share it with other
// activity.
func RunOn(eng *sim.Engine, g *grid.Grid, specs []TenantSpec) (*Report, error) {
	return RunSite(eng, OnGrid(g), specs)
}

// RunFederated enacts the tenants on an existing engine and federation:
// every tenant's jobs are brokered across the federation's member grids
// by its policy. It is RunSite over OnFederation(f).
func RunFederated(eng *sim.Engine, f *federation.Federation, specs []TenantSpec) (*Report, error) {
	return RunSite(eng, OnFederation(f), specs)
}

// RunSite enacts the tenants on an existing engine and site, stepping the
// engine until every tenant reaches a terminal state (or the event queue
// drains, which marks the unfinished tenants as stalled). It is the
// building block RunOn and RunFederated share; RunSiteAdmitted adds
// arrival gating.
func RunSite(eng *sim.Engine, site Site, specs []TenantSpec) (*Report, error) {
	return RunSiteAdmitted(eng, site, specs, Admission{})
}

// RunSiteAdmitted is RunSite with admission control: a tenant whose
// arrival instant finds the site's UI backlog above adm.MaxUIBacklog is
// held back and re-checked every adm.Retry, starting only once the
// backlog has drained below the threshold (or rejected with
// ErrAdmissionRejected after adm.MaxDelay of waiting). The tenant's
// Makespan still counts from its specified Arrival, so admission delay
// shows up honestly in the delayed tenant's own numbers while the
// protected tenants' overheads improve.
func RunSiteAdmitted(eng *sim.Engine, site Site, specs []TenantSpec, adm Admission) (*Report, error) {
	x, err := StartSite(eng, site, specs, adm)
	if err != nil {
		return nil, err
	}
	for !x.Done() && eng.Step() {
	}
	return x.Report(), nil
}

// Execution is a campaign in flight: every tenant arrival, admission
// re-check and adaptive tick has been scheduled on the engine by
// StartSite, but the engine itself is driven by the caller — one Step at
// a time, in paced RunUntil windows, or to completion. It is the
// incremental form of RunSiteAdmitted that long-running drivers (the
// online broker daemon) interleave with external event injection.
type Execution struct {
	eng          *sim.Engine
	site         Site
	start        sim.Time
	runners      []*tenantRun
	remaining    int
	pendingTicks int // adapt ticks currently scheduled, across all tenants
}

// TenantStatus is one tenant's live progress view, cheap enough for a
// telemetry scrape: terminal results and statistics stay with Report.
type TenantStatus struct {
	// Name is the tenant's name.
	Name string
	// Arrival is the tenant's specified arrival, relative to the campaign
	// start.
	Arrival time.Duration
	// Finished reports whether the tenant reached a terminal state.
	Finished bool
	// Finish is the terminal instant relative to the campaign start (zero
	// while the tenant is still running).
	Finish time.Duration
	// Err is the tenant's terminal error, if any (nil while running or on
	// success).
	Err error
}

// Done reports whether every tenant has reached a terminal state.
func (x *Execution) Done() bool { return x.remaining == 0 }

// Remaining reports how many tenants have not yet reached a terminal
// state.
func (x *Execution) Remaining() int { return x.remaining }

// Tenants returns the live per-tenant progress, in specification order.
func (x *Execution) Tenants() []TenantStatus {
	out := make([]TenantStatus, len(x.runners))
	for i, r := range x.runners {
		st := TenantStatus{Name: r.spec.Name, Arrival: r.spec.Arrival, Finished: r.finished, Err: r.err}
		if r.finished {
			st.Finish = time.Duration(r.finish - x.start)
		}
		out[i] = st
	}
	return out
}

// Report renders the campaign outcome. Tenants that have not reached a
// terminal state are reported as stalled, so call it once Done() — or
// once the engine has drained, which is what stalling means.
func (x *Execution) Report() *Report {
	rep := &Report{Tenants: make([]TenantResult, len(x.runners))}
	for i, r := range x.runners {
		tr := TenantResult{
			Name:           r.spec.Name,
			Arrival:        r.spec.Arrival,
			Result:         r.res,
			Err:            r.err,
			AdmissionDelay: r.admitDelay,
			Overheads:      r.tenant.Overheads(),
			Phases:         r.tenant.Phases(),
			Adaptations:    r.adaptations,
		}
		if !r.finished {
			tr.Err = fmt.Errorf("campaign: tenant %s: %w", r.spec.Name, core.ErrStalled)
		} else {
			tr.Finish = time.Duration(r.finish - x.start)
			if r.err == nil {
				tr.Makespan = tr.Finish - tr.Arrival
			}
		}
		if tr.Finish > rep.Makespan {
			rep.Makespan = tr.Finish
		}
		rep.Tenants[i] = tr
	}
	rep.Global = x.site.Overheads()
	rep.GlobalPhases = x.site.Phases()
	return rep
}

// StartSite schedules a campaign on the engine without driving it: every
// tenant's arrival (behind the admission gate) and adaptive-granularity
// loop is armed, and the returned Execution tracks progress as the
// caller steps the engine. RunSiteAdmitted is exactly StartSite followed
// by stepping until Done and a Report; incremental drivers interleave
// their own events — external submissions, outage commands — between
// steps instead.
func StartSite(eng *sim.Engine, site Site, specs []TenantSpec, adm Admission) (*Execution, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("campaign: no tenants")
	}
	seen := make(map[string]bool, len(specs))
	for i := range specs {
		ts := &specs[i]
		if ts.Name == "" {
			return nil, fmt.Errorf("campaign: tenant %d has an empty name", i)
		}
		if seen[ts.Name] {
			return nil, fmt.Errorf("campaign: duplicate tenant name %q", ts.Name)
		}
		seen[ts.Name] = true
		if ts.Build == nil {
			return nil, fmt.Errorf("campaign: tenant %q has no workflow builder", ts.Name)
		}
		if ts.Arrival < 0 {
			return nil, fmt.Errorf("campaign: tenant %q has a negative arrival", ts.Name)
		}
		if ts.Adapt != nil && ts.Adapt.Interval <= 0 {
			return nil, fmt.Errorf("campaign: tenant %q has adaptive granularity without a positive interval", ts.Name)
		}
	}

	x := &Execution{
		eng:       eng,
		site:      site,
		start:     eng.Now(),
		runners:   make([]*tenantRun, len(specs)),
		remaining: len(specs),
	}
	for i := range specs {
		ts := &specs[i]
		th := site.Tenant(ts.Name)
		wf, inputs, err := ts.Build(th)
		if err != nil {
			return nil, fmt.Errorf("campaign: tenant %s: %w", ts.Name, err)
		}
		en, err := core.New(eng, wf, ts.Opts)
		if err != nil {
			return nil, fmt.Errorf("campaign: tenant %s: %w", ts.Name, err)
		}
		r := &tenantRun{spec: ts, tenant: th, en: en, inputs: inputs}
		x.runners[i] = r
		// Arrivals are relative to the campaign start (the engine's
		// current instant), so RunOn works on an engine whose clock has
		// already advanced.
		retry := adm.Retry
		if retry <= 0 {
			retry = 30 * time.Second
		}
		arrival := x.start + sim.Time(ts.Arrival)
		var begin func()
		begin = func() {
			if adm.MaxUIBacklog > 0 && site.UIBacklog() > adm.MaxUIBacklog {
				waited := time.Duration(eng.Now() - arrival)
				if adm.MaxDelay > 0 && waited >= adm.MaxDelay {
					r.err = fmt.Errorf("campaign: tenant %s: %w after %v", r.spec.Name, ErrAdmissionRejected, waited)
					r.finished, r.finish = true, eng.Now()
					x.remaining--
					return
				}
				// Held back: the backlog only moves when a UI event fires,
				// so the retry tick always finds progress to observe.
				eng.Schedule(sim.Time(retry), begin)
				return
			}
			r.admitDelay = time.Duration(eng.Now() - arrival)
			err := r.en.Start(r.inputs, func(res *core.Result, err error) {
				r.res, r.err = res, err
				r.finished = true
				r.finish = eng.Now()
				x.remaining--
			})
			if err != nil && !r.finished {
				r.err, r.finished, r.finish = err, true, eng.Now()
				x.remaining--
			}
			if r.spec.Adapt != nil && !r.finished {
				scheduleAdapt(eng, site, r, len(specs), x.start, &x.pendingTicks)
			}
		}
		eng.Schedule(sim.Time(ts.Arrival), begin)
	}
	return x, nil
}

// scheduleAdapt installs the tenant's periodic granularity-retuning loop.
// pendingTicks counts the campaign's scheduled ticks across all tenants:
// a tick only re-arms while events other than the campaign's own ticks
// are pending, so a stalled tenant's loop cannot keep the engine alive
// forever (RunOn would otherwise never see the queue drain and never
// report the stall).
func scheduleAdapt(eng *sim.Engine, site Site, r *tenantRun, nTenants int, campaignStart sim.Time, pendingTicks *int) {
	var tick func()
	arm := func() {
		*pendingTicks++
		eng.Schedule(sim.Time(r.spec.Adapt.Interval), tick)
	}
	tick = func() {
		*pendingTicks--
		if r.finished {
			return
		}
		if a, ok := retune(eng, site, r, nTenants, campaignStart); ok {
			r.adaptations = append(r.adaptations, a)
		}
		// Pending() excludes this already-fired tick; if nothing beyond
		// the campaign's other adapt ticks remains, no event can ever
		// complete this tenant — stop re-arming and let the engine drain.
		if eng.Pending() > *pendingTicks {
			arm()
		}
	}
	arm()
}

// retune makes one granularity decision from observed behaviour: the
// tenant's mean overhead and serial submission cost so far, the mean
// on-node time of its completed jobs, and the enactor's remaining
// statically-expected invocations, fed into the Sec. 5.4 batching model.
// It reports false when there is nothing to observe or nothing left to
// retune.
func retune(eng *sim.Engine, site Site, r *tenantRun, nTenants int, campaignStart sim.Time) (Adaptation, bool) {
	ad := r.spec.Adapt
	jobs, overhead, submit, compute := observe(r.tenant)
	if jobs == 0 {
		return Adaptation{}, false
	}
	finished, expected, known := r.en.Progress()
	if !known {
		return Adaptation{}, false
	}
	remaining := expected - finished
	if remaining <= 0 {
		return Adaptation{}, false
	}
	slots := ad.Slots
	if slots <= 0 {
		slots = site.TotalNodes() / nTenants
		if slots < 1 {
			slots = 1
		}
	}
	p := model.GranularityParams{
		Overhead:     overhead,
		SubmitSerial: submit,
		Runtime:      compute,
		Items:        remaining,
		Slots:        slots,
	}
	k, pred := model.OptimalBatch(p)
	if ad.MinBatch > 1 && k < ad.MinBatch {
		k = ad.MinBatch
	}
	if ad.MaxBatch > 0 && k > ad.MaxBatch {
		k = ad.MaxBatch
	}
	// Only actual changes are decisions worth applying and recording; a
	// stable optimum would otherwise append an identical Adaptation every
	// interval for the rest of the campaign.
	if cur := r.en.Options().DataGroupSize; k == cur || (k <= 1 && cur <= 1) {
		return Adaptation{}, false
	}
	r.en.SetDataGroupSize(k)
	return Adaptation{
		At:        time.Duration(eng.Now() - campaignStart),
		Batch:     k,
		Predicted: pred,
		Overhead:  overhead,
	}, true
}

// observe scans the tenant's own record partition once for its completed
// jobs, returning their count and mean grid overhead, UI submit phase and
// on-node span (compute plus output staging) — the three observations the
// granularity model feeds on, without the three separate sweeps of
// Overheads/Phases. Reading through the handle (not global infrastructure
// stats) matters twice over: on a shared grid it keeps a bursty
// co-tenant's inflated overheads out of this tenant's retuning, and on a
// federation a single grid's record list would miss the jobs the broker
// sent to other grids. Handle.Records materializes the partition (one
// transient O(tenant jobs) slice per retune tick); in exchange the scan
// itself no longer walks every other tenant's records.
func observe(t Handle) (jobs int, overhead, submit, compute time.Duration) {
	for _, rec := range t.Records() {
		if rec.Status != grid.StatusCompleted {
			continue
		}
		jobs++
		overhead += rec.Overhead()
		submit += time.Duration(rec.Accepted - rec.Submitted)
		compute += time.Duration(rec.Completed - rec.InputDone)
	}
	if jobs == 0 {
		return 0, 0, 0, 0
	}
	n := time.Duration(jobs)
	return jobs, overhead / n, submit / n, compute / n
}
