package campaign

import (
	"fmt"
	"math"
	"time"

	"repro/internal/descriptor"
	"repro/internal/grid"
	"repro/internal/services"
	"repro/internal/workflow"
)

// SyntheticChain returns a BuildFunc for a linear pipeline of n
// wrapper-backed stages processing `items` input files of fileMB each,
// every stage costing `runtime` of compute on a reference node. Stage
// executables are named "<tenant>.stageNN", which keeps output GFNs unique
// across tenants sharing one catalog, and the tenant's input files are
// registered under "gfn://<tenant>/..." at build time. It is the standard
// workload for campaign scenarios: heterogeneous tenant mixes differ only
// in their Options, so contention effects are attributable to scheduling,
// not to workload shape.
func SyntheticChain(n, items int, runtime time.Duration, fileMB float64) BuildFunc {
	return SyntheticChainPlaced(n, items, runtime, fileMB, grid.Site{}, 0)
}

// SyntheticChainPlaced is SyntheticChain with skewed input placement: a
// `skew` fraction of the tenant's input files (the first ⌈skew×items⌉, a
// deterministic rule) is registered as replicas pinned at `home` — a
// member grid of a federation, typically Site{Grid: name} — while the
// rest stays unplaced (local everywhere, i.e. uniformly replicated). With
// skew 0 it is exactly SyntheticChain; with skew 1 every input is
// resident only at the home site and any job brokered elsewhere pays the
// link model's fetch cost. It is the standard workload of locality
// scenarios: sweeping skew against WAN bandwidth maps out when
// data-aware brokering pays.
func SyntheticChainPlaced(n, items int, runtime time.Duration, fileMB float64, home grid.Site, skew float64) BuildFunc {
	return func(t Handle) (*workflow.Workflow, map[string][]string, error) {
		if n < 1 || items < 1 {
			return nil, nil, fmt.Errorf("campaign: synthetic chain needs at least one stage and one item")
		}
		if skew < 0 || skew > 1 {
			return nil, nil, fmt.Errorf("campaign: placement skew %v outside [0, 1]", skew)
		}
		tn := t.Name()
		wf := workflow.New(tn)
		wf.AddSource("src")
		prev, prevPort := "src", workflow.SourcePort
		for s := 0; s < n; s++ {
			name := fmt.Sprintf("%s.stage%02d", tn, s)
			d, err := stageDescriptor(name)
			if err != nil {
				return nil, nil, err
			}
			w, err := services.NewWrapper(t, d, services.ConstantRuntime(runtime),
				map[string]float64{"out": fileMB})
			if err != nil {
				return nil, nil, err
			}
			wf.AddService(name, w, []string{"in"}, []string{"out"})
			wf.Connect(prev, prevPort, name, "in")
			prev, prevPort = name, "out"
		}
		wf.AddSink("sink")
		wf.Connect(prev, prevPort, "sink", workflow.SinkPort)

		placed := int(math.Ceil(skew * float64(items)))
		inputs := make([]string, items)
		for i := range inputs {
			gfn := fmt.Sprintf("gfn://%s/input%04d", tn, i)
			if i < placed && !home.IsZero() {
				t.Catalog().RegisterAt(gfn, fileMB, home)
			} else {
				t.Catalog().Register(gfn, fileMB)
			}
			inputs[i] = gfn
		}
		return wf, map[string][]string{"src": inputs}, nil
	}
}

// SyntheticChainSized generalizes SyntheticChainPlaced to a
// heterogeneous input corpus: input i is registered at len(sizes[i]) MB
// (heavy-tailed corpora drawn by a scenario generator), while every
// stage output is a uniform outMB. Placement skew works as in
// SyntheticChainPlaced: the first ⌈skew×len(sizes)⌉ inputs are pinned at
// home. With every size equal to outMB it is exactly
// SyntheticChainPlaced(n, len(sizes), runtime, outMB, home, skew).
func SyntheticChainSized(n int, sizes []float64, runtime time.Duration, outMB float64, home grid.Site, skew float64) BuildFunc {
	return func(t Handle) (*workflow.Workflow, map[string][]string, error) {
		if n < 1 || len(sizes) < 1 {
			return nil, nil, fmt.Errorf("campaign: synthetic chain needs at least one stage and one item")
		}
		if skew < 0 || skew > 1 {
			return nil, nil, fmt.Errorf("campaign: placement skew %v outside [0, 1]", skew)
		}
		for _, mb := range sizes {
			if mb <= 0 {
				return nil, nil, fmt.Errorf("campaign: non-positive input size %v", mb)
			}
		}
		tn := t.Name()
		wf := workflow.New(tn)
		wf.AddSource("src")
		prev, prevPort := "src", workflow.SourcePort
		for s := 0; s < n; s++ {
			name := fmt.Sprintf("%s.stage%02d", tn, s)
			d, err := stageDescriptor(name)
			if err != nil {
				return nil, nil, err
			}
			w, err := services.NewWrapper(t, d, services.ConstantRuntime(runtime),
				map[string]float64{"out": outMB})
			if err != nil {
				return nil, nil, err
			}
			wf.AddService(name, w, []string{"in"}, []string{"out"})
			wf.Connect(prev, prevPort, name, "in")
			prev, prevPort = name, "out"
		}
		wf.AddSink("sink")
		wf.Connect(prev, prevPort, "sink", workflow.SinkPort)

		placed := int(math.Ceil(skew * float64(len(sizes))))
		inputs := make([]string, len(sizes))
		for i, mb := range sizes {
			gfn := fmt.Sprintf("gfn://%s/input%04d", tn, i)
			if i < placed && !home.IsZero() {
				t.Catalog().RegisterAt(gfn, mb, home)
			} else {
				t.Catalog().Register(gfn, mb)
			}
			inputs[i] = gfn
		}
		return wf, map[string][]string{"src": inputs}, nil
	}
}

// stageDescriptor builds the executable descriptor of one synthetic stage:
// one GFN input, one GFN output.
func stageDescriptor(name string) (*descriptor.Description, error) {
	xml := fmt.Sprintf(`<description>
<executable name=%q>
<access type="URL"><path value="http://example.org"/></access>
<value value="stage"/>
<input name="in" option="-i"><access type="GFN"/></input>
<output name="out" option="-o"><access type="GFN"/></output>
</executable>
</description>`, name)
	return descriptor.Parse([]byte(xml))
}
