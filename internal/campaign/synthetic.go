package campaign

import (
	"fmt"
	"time"

	"repro/internal/descriptor"
	"repro/internal/services"
	"repro/internal/workflow"
)

// SyntheticChain returns a BuildFunc for a linear pipeline of n
// wrapper-backed stages processing `items` input files of fileMB each,
// every stage costing `runtime` of compute on a reference node. Stage
// executables are named "<tenant>.stageNN", which keeps output GFNs unique
// across tenants sharing one catalog, and the tenant's input files are
// registered under "gfn://<tenant>/..." at build time. It is the standard
// workload for campaign scenarios: heterogeneous tenant mixes differ only
// in their Options, so contention effects are attributable to scheduling,
// not to workload shape.
func SyntheticChain(n, items int, runtime time.Duration, fileMB float64) BuildFunc {
	return func(t Handle) (*workflow.Workflow, map[string][]string, error) {
		if n < 1 || items < 1 {
			return nil, nil, fmt.Errorf("campaign: synthetic chain needs at least one stage and one item")
		}
		tn := t.Name()
		wf := workflow.New(tn)
		wf.AddSource("src")
		prev, prevPort := "src", workflow.SourcePort
		for s := 0; s < n; s++ {
			name := fmt.Sprintf("%s.stage%02d", tn, s)
			d, err := stageDescriptor(name)
			if err != nil {
				return nil, nil, err
			}
			w, err := services.NewWrapper(t, d, services.ConstantRuntime(runtime),
				map[string]float64{"out": fileMB})
			if err != nil {
				return nil, nil, err
			}
			wf.AddService(name, w, []string{"in"}, []string{"out"})
			wf.Connect(prev, prevPort, name, "in")
			prev, prevPort = name, "out"
		}
		wf.AddSink("sink")
		wf.Connect(prev, prevPort, "sink", workflow.SinkPort)

		inputs := make([]string, items)
		for i := range inputs {
			gfn := fmt.Sprintf("gfn://%s/input%04d", tn, i)
			t.Catalog().Register(gfn, fileMB)
			inputs[i] = gfn
		}
		return wf, map[string][]string{"src": inputs}, nil
	}
}

// stageDescriptor builds the executable descriptor of one synthetic stage:
// one GFN input, one GFN output.
func stageDescriptor(name string) (*descriptor.Description, error) {
	xml := fmt.Sprintf(`<description>
<executable name=%q>
<access type="URL"><path value="http://example.org"/></access>
<value value="stage"/>
<input name="in" option="-i"><access type="GFN"/></input>
<output name="out" option="-o"><access type="GFN"/></output>
</executable>
</description>`, name)
	return descriptor.Parse([]byte(xml))
}
