package campaign

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// testGrid returns a small deterministic shared grid: one modest cluster,
// fixed middleware latencies, no background load, no failures — so
// fairness and accounting effects are exact.
func testGrid(nodes int) grid.Config {
	cfg := grid.IdealConfig(nodes)
	cfg.Overheads = grid.OverheadConfig{
		SubmitMean:   2 * time.Second,
		BrokerMean:   3 * time.Second,
		DispatchMean: 5 * time.Second,
	}
	cfg.BrokerSlots = 4
	return cfg
}

func spdp() core.Options {
	return core.Options{DataParallelism: true, ServiceParallelism: true}
}

func TestCampaignSingleTenantMatchesSoloRun(t *testing.T) {
	// One tenant in a campaign behaves exactly like a solo enactor run on
	// an identical grid: same makespan, same output count.
	build := SyntheticChain(3, 5, 10*time.Second, 1)

	rep, err := Run(Config{
		Grid:    testGrid(16),
		Tenants: []TenantSpec{{Name: "solo", Opts: spdp(), Build: build}},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Tenants[0]
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}

	eng := sim.NewEngine()
	g := grid.New(eng, testGrid(16))
	wf, inputs, err := build(g.Tenant("solo"))
	if err != nil {
		t.Fatal(err)
	}
	en, err := core.New(eng, wf, spdp())
	if err != nil {
		t.Fatal(err)
	}
	res, err := en.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Makespan != res.Makespan {
		t.Fatalf("campaign makespan %v != solo makespan %v", tr.Makespan, res.Makespan)
	}
	if got := len(tr.Result.Outputs["sink"]); got != 5 {
		t.Fatalf("sink items = %d, want 5", got)
	}
}

func TestCampaignDeterminism(t *testing.T) {
	run := func() []time.Duration {
		cfg := Config{Grid: testGrid(32)}
		cfg.Grid.Seed = 42
		mixes := []core.Options{
			{},
			spdp(),
			{DataParallelism: true},
			{DataParallelism: true, ServiceParallelism: true, DataGroupSize: 3, DataGroupWindow: time.Minute},
		}
		for i, opts := range mixes {
			cfg.Tenants = append(cfg.Tenants, TenantSpec{
				Name:    []string{"t0", "t1", "t2", "t3"}[i],
				Arrival: time.Duration(i) * 30 * time.Second,
				Opts:    opts,
				Build:   SyntheticChain(3, 6, 20*time.Second, 2),
			})
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]time.Duration, len(rep.Tenants))
		for i, tr := range rep.Tenants {
			if tr.Err != nil {
				t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
			out[i] = tr.Makespan
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("tenant %d makespan not deterministic: %v vs %v", i, a[i], b[i])
		}
	}
}

// TestCampaignFairShare is the acceptance scenario: a steady tenant shares
// the grid with a burst-submitting tenant. With the fair-share gate the
// steady tenant's makespan grows by a bounded factor; under the
// tenancy-unaware strict FIFO it waits behind the whole burst.
func TestCampaignFairShare(t *testing.T) {
	steady := TenantSpec{
		Name:  "steady",
		Opts:  spdp(),
		Build: SyntheticChain(2, 4, 30*time.Second, 1),
	}
	burst := TenantSpec{
		Name:  "burst",
		Opts:  core.Options{DataParallelism: true},
		Build: SyntheticChain(1, 150, 30*time.Second, 1),
	}
	run := func(withBurst, strictFIFO bool) time.Duration {
		cfg := Config{Grid: testGrid(64)}
		cfg.Grid.StrictFIFOSubmit = strictFIFO
		cfg.Tenants = []TenantSpec{steady}
		if withBurst {
			// The burst arrives first so its whole queue is already in
			// front of the UI when the steady tenant shows up.
			cfg.Tenants = []TenantSpec{burst, steady}
		}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, tr := range rep.Tenants {
			if tr.Err != nil {
				t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
			}
			if tr.Name == "steady" {
				return tr.Makespan
			}
		}
		t.Fatal("steady tenant missing from report")
		return 0
	}

	alone := run(false, false)
	fair := run(true, false)
	fifo := run(true, true)

	if fair <= alone {
		t.Fatalf("contention had no effect: alone %v, shared %v", alone, fair)
	}
	// Bounded interference: round-robin costs the steady tenant at most
	// one competing submission slot per own submission, not the whole
	// burst. The bound is generous; the observed factor is ~1.1.
	if fair > 3*alone {
		t.Fatalf("fair-share makespan %v more than 3x the solo %v", fair, alone)
	}
	// The strict FIFO parks the steady tenant behind 150 burst
	// submissions; fair share must beat it clearly.
	if 2*fair >= fifo {
		t.Fatalf("fair share (%v) not clearly better than strict FIFO (%v)", fair, fifo)
	}
}

// TestCampaignTenantStatsIsolation checks the acceptance accounting
// properties: per-tenant overhead stats are disjoint and sum-consistent
// with the global Grid.Overheads.
func TestCampaignTenantStatsIsolation(t *testing.T) {
	cfg := Config{Grid: testGrid(32)}
	cfg.Grid.Failures = grid.FailureConfig{Probability: 0.3, DetectDelay: 30 * time.Second, MaxRetries: 8}
	cfg.Grid.Seed = 7
	cfg.Tenants = []TenantSpec{
		{Name: "alpha", Opts: spdp(), Build: SyntheticChain(2, 10, 20*time.Second, 1)},
		{Name: "beta", Opts: core.Options{DataParallelism: true}, Build: SyntheticChain(3, 6, 15*time.Second, 1)},
	}
	eng := sim.NewEngine()
	g := grid.New(eng, cfg.Grid)
	rep, err := RunOn(eng, g, cfg.Tenants)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tenants {
		if tr.Err != nil {
			t.Fatalf("tenant %s: %v", tr.Name, tr.Err)
		}
	}

	// Disjoint: every record belongs to exactly one tenant, and the
	// tenants' record sets cover the global one.
	a, b := g.Tenant("alpha"), g.Tenant("beta")
	na, nb := len(a.Records()), len(b.Records())
	if na == 0 || nb == 0 {
		t.Fatal("a tenant submitted no jobs")
	}
	if na+nb != len(g.Records()) {
		t.Fatalf("tenant records %d+%d do not partition the %d global records", na, nb, len(g.Records()))
	}
	for _, r := range a.Records() {
		if r.Tenant != "alpha" {
			t.Fatalf("alpha's view contains record of tenant %q", r.Tenant)
		}
	}

	// Sum-consistent: counts add up exactly, means combine weighted.
	sa, sb, global := rep.Tenants[0].Overheads, rep.Tenants[1].Overheads, rep.Global
	if sa.Jobs+sb.Jobs != global.Jobs {
		t.Fatalf("completed jobs %d+%d != global %d", sa.Jobs, sb.Jobs, global.Jobs)
	}
	if sa.Failed+sb.Failed != global.Failed {
		t.Fatalf("failed %d+%d != global %d", sa.Failed, sb.Failed, global.Failed)
	}
	if sa.Resubmits+sb.Resubmits != global.Resubmits {
		t.Fatalf("resubmits %d+%d != global %d", sa.Resubmits, sb.Resubmits, global.Resubmits)
	}
	weighted := (float64(sa.Jobs)*sa.Mean.Seconds() + float64(sb.Jobs)*sb.Mean.Seconds()) / float64(global.Jobs)
	if diff := weighted - global.Mean.Seconds(); diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("weighted tenant means %.9fs != global mean %.9fs", weighted, global.Mean.Seconds())
	}
	if sa.Min < global.Min || sb.Min < global.Min || sa.Max > global.Max || sb.Max > global.Max {
		t.Fatal("tenant extrema outside global extrema")
	}
}

func TestCampaignArrivalWaves(t *testing.T) {
	cfg := Config{Grid: testGrid(16)}
	arrival := 10 * time.Minute
	cfg.Tenants = []TenantSpec{
		{Name: "early", Opts: spdp(), Build: SyntheticChain(2, 3, 10*time.Second, 1)},
		{Name: "late", Arrival: arrival, Opts: spdp(), Build: SyntheticChain(2, 3, 10*time.Second, 1)},
	}
	eng := sim.NewEngine()
	g := grid.New(eng, cfg.Grid)
	rep, err := RunOn(eng, g, cfg.Tenants)
	if err != nil {
		t.Fatal(err)
	}
	late := rep.Tenants[1]
	if late.Err != nil {
		t.Fatal(late.Err)
	}
	for _, r := range g.Tenant("late").Records() {
		if r.Submitted < sim.Time(arrival) {
			t.Fatalf("late tenant submitted at %v, before its arrival %v", r.Submitted, arrival)
		}
	}
	if late.Finish != late.Arrival+late.Makespan {
		t.Fatalf("finish %v != arrival %v + makespan %v", late.Finish, late.Arrival, late.Makespan)
	}
	// An isolated late arrival takes the same time as an early one.
	if early := rep.Tenants[0]; late.Makespan != early.Makespan {
		t.Fatalf("arrival offset changed an uncontended makespan: early %v, late %v", early.Makespan, late.Makespan)
	}
}

func TestCampaignAdaptiveGranularity(t *testing.T) {
	// A grid with brutal per-job overhead and plenty of nodes: batching
	// many small items per job is clearly optimal, so the feedback loop
	// must raise DataGroupSize above 1.
	gc := testGrid(64)
	gc.Overheads.SubmitMean = 60 * time.Second
	gc.Overheads.DispatchMean = 5 * time.Minute
	cfg := Config{Grid: gc}
	cfg.Tenants = []TenantSpec{{
		Name: "adaptive",
		Opts: core.Options{
			DataParallelism:    true,
			ServiceParallelism: true,
			DataGroupWindow:    2 * time.Minute,
		},
		Build: SyntheticChain(2, 40, 5*time.Second, 1),
		Adapt: &AdaptiveGranularity{Interval: 4 * time.Minute, MaxBatch: 16},
	}}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Tenants[0]
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	if len(tr.Adaptations) == 0 {
		t.Fatal("adaptive tenant recorded no granularity decisions")
	}
	raised := false
	for _, a := range tr.Adaptations {
		if a.Batch > 16 {
			t.Fatalf("adaptation chose batch %d above MaxBatch 16", a.Batch)
		}
		if a.Batch > 1 {
			raised = true
		}
	}
	if !raised {
		t.Fatalf("overhead-dominated grid never drove the batch size above 1: %+v", tr.Adaptations)
	}
	if got := len(tr.Result.Outputs["sink"]); got != 40 {
		t.Fatalf("sink items = %d, want 40", got)
	}
	// Batching must show up as fewer grid jobs than the unbatched 2×40.
	if jobs := len(g(t, cfg).Records()); jobs >= 80 {
		t.Fatalf("adaptive batching submitted %d jobs, want fewer than the 80 unbatched ones", jobs)
	}
}

// g re-runs the campaign on a fresh engine+grid and returns the grid, for
// assertions on submission counts.
func g(t *testing.T, cfg Config) *grid.Grid {
	t.Helper()
	eng := sim.NewEngine()
	gr := grid.New(eng, cfg.Grid)
	if _, err := RunOn(eng, gr, cfg.Tenants); err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestCampaignTenantFailureIsIsolated(t *testing.T) {
	// One tenant references a file that is not in the catalog: its run
	// fails, the other tenant is unaffected.
	cfg := Config{Grid: testGrid(16)}
	cfg.Tenants = []TenantSpec{
		{Name: "ok", Opts: spdp(), Build: SyntheticChain(2, 3, 10*time.Second, 1)},
		{Name: "doomed", Opts: spdp(), Build: func(th Handle) (*workflow.Workflow, map[string][]string, error) {
			wf, _, err := SyntheticChain(1, 1, 10*time.Second, 1)(th)
			if err != nil {
				return nil, nil, err
			}
			// Point the source at a GFN that was never registered.
			return wf, map[string][]string{"src": {"gfn://doomed/missing"}}, nil
		}},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants[0].Err != nil {
		t.Fatalf("healthy tenant failed: %v", rep.Tenants[0].Err)
	}
	if rep.Tenants[1].Err == nil {
		t.Fatal("doomed tenant reported no error")
	}
	if !strings.Contains(rep.Tenants[1].Err.Error(), "doomed") {
		t.Fatalf("error does not identify the tenant's processor: %v", rep.Tenants[1].Err)
	}
}

func TestCampaignConfigValidation(t *testing.T) {
	ok := SyntheticChain(1, 1, time.Second, 1)
	cases := []struct {
		name    string
		tenants []TenantSpec
	}{
		{"no tenants", nil},
		{"empty name", []TenantSpec{{Name: "", Build: ok}}},
		{"duplicate", []TenantSpec{{Name: "x", Build: ok}, {Name: "x", Build: ok}}},
		{"nil build", []TenantSpec{{Name: "x"}}},
		{"negative arrival", []TenantSpec{{Name: "x", Build: ok, Arrival: -time.Second}}},
		{"bad adapt", []TenantSpec{{Name: "x", Build: ok, Adapt: &AdaptiveGranularity{}}}},
	}
	for _, c := range cases {
		if _, err := Run(Config{Grid: testGrid(4), Tenants: c.tenants}); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
}

// TestRunOnAdvancedEngine: RunOn must work on an engine whose clock has
// already moved — arrivals are relative to the campaign start.
func TestRunOnAdvancedEngine(t *testing.T) {
	eng := sim.NewEngine()
	g := grid.New(eng, testGrid(16))
	eng.RunUntil(sim.Time(time.Hour))
	rep, err := RunOn(eng, g, []TenantSpec{
		{Name: "later", Opts: spdp(), Build: SyntheticChain(2, 3, 10*time.Second, 1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	tr := rep.Tenants[0]
	if tr.Err != nil {
		t.Fatal(tr.Err)
	}
	if tr.Makespan <= 0 || tr.Finish != tr.Makespan {
		t.Fatalf("finish %v / makespan %v not relative to the campaign start", tr.Finish, tr.Makespan)
	}
}

// TestSetDataGroupSizeBeforeStart: pre-tuning a wrapper-backed enactor
// must not poison the run (a quiescence check before Start used to
// declare it done).
func TestSetDataGroupSizeBeforeStart(t *testing.T) {
	eng := sim.NewEngine()
	g := grid.New(eng, testGrid(16))
	wf, inputs, err := SyntheticChain(2, 6, 10*time.Second, 1)(g.Tenant("pre"))
	if err != nil {
		t.Fatal(err)
	}
	en, err := core.New(eng, wf, core.Options{
		DataParallelism:    true,
		ServiceParallelism: true,
		DataGroupWindow:    time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	en.SetDataGroupSize(3)
	res, err := en.Run(inputs)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Outputs["sink"]); got != 6 {
		t.Fatalf("sink items = %d, want 6", got)
	}
	if len(g.Records()) >= 12 {
		t.Fatalf("pre-start batch size had no effect: %d jobs for 12 invocations", len(g.Records()))
	}
}

// TestCampaignFailedTenantStopsSubmitting: after a tenant's run fails,
// it must not keep feeding jobs into the shared grid.
func TestCampaignFailedTenantStopsSubmitting(t *testing.T) {
	cfg := Config{Grid: testGrid(32)}
	cfg.Tenants = []TenantSpec{
		{Name: "doomed", Opts: spdp(), Build: func(th Handle) (*workflow.Workflow, map[string][]string, error) {
			wf, _, err := SyntheticChain(4, 20, 10*time.Second, 1)(th)
			if err != nil {
				return nil, nil, err
			}
			// One poisoned item among 20 real ones: stage 1 fails on it.
			inputs := make([]string, 20)
			for i := range inputs {
				inputs[i] = fmt.Sprintf("gfn://doomed/input%04d", i)
			}
			inputs[0] = "gfn://doomed/missing"
			return wf, map[string][]string{"src": inputs}, nil
		}},
	}
	eng := sim.NewEngine()
	g := grid.New(eng, cfg.Grid)
	rep, err := RunOn(eng, g, cfg.Tenants)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants[0].Err == nil {
		t.Fatal("doomed tenant reported no error")
	}
	eng.Run() // drain the shared engine past the failure
	// Stage 1 legitimately submits up to 20 jobs before the poisoned one
	// fails; the other three stages (60 more jobs) must not follow.
	if jobs := len(g.Records()); jobs > 25 {
		t.Fatalf("failed tenant kept submitting: %d jobs on the shared grid", jobs)
	}
}

func TestRunRejectsClusterlessNonZeroGrid(t *testing.T) {
	cfg := Config{
		Grid:    grid.Config{Seed: 42, StrictFIFOSubmit: true}, // no clusters, not zero
		Tenants: []TenantSpec{{Name: "x", Build: SyntheticChain(1, 1, time.Second, 1)}},
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("cluster-less non-zero grid config accepted")
	}
}

// TestCampaignBatchedFailureStopsSubmitting: a pending DataGroupWindow
// flush timer of a failed tenant must not submit its held batch to the
// shared grid.
func TestCampaignBatchedFailureStopsSubmitting(t *testing.T) {
	cfg := Config{Grid: testGrid(16)}
	cfg.Tenants = []TenantSpec{{
		Name: "batched",
		Opts: core.Options{
			DataParallelism:    true,
			ServiceParallelism: true,
			DataGroupSize:      3,
			DataGroupWindow:    6 * time.Hour,
		},
		Build: func(th Handle) (*workflow.Workflow, map[string][]string, error) {
			wf, inputs, err := SyntheticChain(1, 5, 10*time.Second, 1)(th)
			if err != nil {
				return nil, nil, err
			}
			// Poison the first batch: its grid job fails on stage-in,
			// failing the tenant while 2 items sit on the window timer.
			inputs["src"][0] = "gfn://batched/missing"
			return wf, inputs, nil
		},
	}}
	eng := sim.NewEngine()
	g := grid.New(eng, cfg.Grid)
	rep, err := RunOn(eng, g, cfg.Tenants)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tenants[0].Err == nil {
		t.Fatal("poisoned batch did not fail the tenant")
	}
	before := len(g.Records())
	eng.Run() // fire the pending window flush on the shared engine
	if after := len(g.Records()); after != before {
		t.Fatalf("failed tenant's window flush submitted %d more jobs", after-before)
	}
}

// TestCampaignStalledAdaptiveTenantTerminates: an adaptive tenant whose
// workflow stalls must not keep the engine alive through its own retuning
// ticks — RunOn has to return and report the stall.
func TestCampaignStalledAdaptiveTenantTerminates(t *testing.T) {
	stalling := func(th Handle) (*workflow.Workflow, map[string][]string, error) {
		eng := th.Engine()
		w := workflow.New("stall")
		w.AddSource("src")
		half := services.NewLocal(eng, "half", 1<<20, services.ConstantRuntime(time.Second),
			func(req services.Request) map[string]string {
				if req.Index[0] == 0 {
					return map[string]string{} // drops item 0
				}
				return map[string]string{"out": req.Inputs["in"]}
			})
		echo := func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["in"]}
		}
		w.AddService("half", half, []string{"in"}, []string{"out"})
		w.AddService("starved", services.NewLocal(eng, "starved", 1<<20, services.ConstantRuntime(time.Second), echo),
			[]string{"in"}, []string{"out"})
		w.AddService("gated", services.NewLocal(eng, "gated", 1<<20, services.ConstantRuntime(time.Second), echo),
			[]string{"in"}, []string{"out"})
		w.AddSink("s1")
		w.AddSink("s2")
		w.Connect("src", workflow.SourcePort, "half", "in")
		w.Connect("half", "out", "starved", "in")
		w.Connect("starved", "out", "s1", workflow.SinkPort)
		w.Connect("src", workflow.SourcePort, "gated", "in")
		w.Connect("gated", "out", "s2", workflow.SinkPort)
		w.Constrain("starved", "gated") // starved never drains: expects 2, gets 1
		return w, map[string][]string{"src": {"a", "b"}}, nil
	}
	rep, err := Run(Config{
		Grid: testGrid(8),
		Tenants: []TenantSpec{{
			Name:  "stuck",
			Opts:  spdp(),
			Build: stalling,
			Adapt: &AdaptiveGranularity{Interval: time.Minute},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(rep.Tenants[0].Err, core.ErrStalled) {
		t.Fatalf("tenant err = %v, want ErrStalled", rep.Tenants[0].Err)
	}
}
