// Package doccheck enforces the documentation contract on the tenancy and
// brokering API surface: every exported identifier of the checked packages
// must carry a doc comment that starts with the identifier's name (a
// leading article is allowed) — the golint/revive "exported" rule,
// implemented on go/ast so CI needs no external linter. It runs as an
// ordinary test, so `go test ./...` (tier-1) and the CI test job enforce
// it on every change.
package doccheck

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// checkedPackages is the enforced surface: the grid tenancy, data-
// locality and contended-WAN-fabric model, the campaign layer, the
// federation broker (outage/recovery API included), the
// service/submitter layer, the enactor API, the simulation engine and the
// theoretical model. New exported surface landing in these packages —
// e.g. the link matrix, fabric and outage types — is covered
// automatically.
var checkedPackages = []string{
	"../campaign",
	"../federation",
	"../grid",
	"../services",
	"../core",
	"../sim",
	"../model",
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range checkedPackages {
		fset := token.NewFileSet()
		pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
			return !strings.HasSuffix(fi.Name(), "_test.go")
		}, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, pkg := range pkgs {
			for _, file := range pkg.Files {
				checkFile(t, fset, file)
			}
		}
	}
}

func checkFile(t *testing.T, fset *token.FileSet, file *ast.File) {
	t.Helper()
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || !receiverExported(d) {
				continue
			}
			requireDoc(t, fset, d.Pos(), d.Name.Name, d.Doc, true)
		case *ast.GenDecl:
			if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
				continue
			}
			// A documented block (e.g. a const group sharing one comment)
			// covers its specs; the prefix rule then applies per spec only
			// when the spec carries its own comment.
			blockDoc := d.Doc != nil
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if !s.Name.IsExported() {
						continue
					}
					doc := s.Doc
					if doc == nil && len(d.Specs) == 1 {
						doc = d.Doc
					}
					if doc == nil && blockDoc {
						continue // covered by the block comment
					}
					requireDoc(t, fset, s.Pos(), s.Name.Name, doc, true)
				case *ast.ValueSpec:
					for _, name := range s.Names {
						if !name.IsExported() {
							continue
						}
						doc := s.Doc
						if doc == nil && len(d.Specs) == 1 {
							doc = d.Doc
						}
						if doc == nil && blockDoc {
							continue // covered by the block comment
						}
						requireDoc(t, fset, name.Pos(), name.Name, doc, true)
					}
				}
			}
		}
	}
}

// receiverExported reports whether a method's receiver type is exported
// (functions without receivers count as exported scope). Methods on
// unexported types are internal plumbing even when their names are
// capitalized for interface satisfaction.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	typ := d.Recv.List[0].Type
	for {
		switch tt := typ.(type) {
		case *ast.StarExpr:
			typ = tt.X
		case *ast.IndexExpr:
			typ = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// requireDoc fails the test when the doc comment is missing or (if
// checkPrefix) does not begin with the identifier's name, modulo a
// leading article.
func requireDoc(t *testing.T, fset *token.FileSet, pos token.Pos, name string, doc *ast.CommentGroup, checkPrefix bool) {
	t.Helper()
	where := fset.Position(pos)
	if doc == nil || strings.TrimSpace(doc.Text()) == "" {
		t.Errorf("%s: exported identifier %s has no doc comment", where, name)
		return
	}
	if !checkPrefix {
		return
	}
	text := strings.TrimSpace(doc.Text())
	for _, article := range []string{"A ", "An ", "The "} {
		if strings.HasPrefix(text, article) {
			text = text[len(article):]
			break
		}
	}
	if !strings.HasPrefix(text, name) {
		t.Errorf("%s: doc comment of %s should start with %q (golint exported rule); it starts with %.40q",
			where, name, name, text)
	}
}
