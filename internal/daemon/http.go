package daemon

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
	"repro/internal/sim"
)

// SubmitRequest is the /submit request body: one job spec, optionally
// repeated Count times, submitted through the named tenant's brokered
// handle at the paced virtual instant the request is injected.
type SubmitRequest struct {
	// Tenant names the submission handle ("" is the default tenant).
	Tenant string `json:"tenant,omitempty"`
	// Name is the job name (a -N suffix is appended when Count > 1).
	Name string `json:"name"`
	// RuntimeSeconds is the job's computation time in virtual seconds.
	RuntimeSeconds float64 `json:"runtimeSeconds"`
	// Inputs are logical file names the job stages in; each must already
	// be registered in the federation catalog.
	Inputs []string `json:"inputs,omitempty"`
	// Outputs declares the files the job registers on completion.
	Outputs []OutputDecl `json:"outputs,omitempty"`
	// Count repeats the spec (default 1).
	Count int `json:"count,omitempty"`
}

// OutputDecl declares one output file in a SubmitRequest.
type OutputDecl struct {
	// Name is the logical file name to register.
	Name string `json:"name"`
	// SizeMB is the file's size in megabytes.
	SizeMB float64 `json:"sizeMB"`
}

// SubmitResponse is the /submit reply: the virtual instant the jobs
// entered the broker and their assigned IDs.
type SubmitResponse struct {
	// VirtualSeconds is the injection instant on the engine's clock.
	VirtualSeconds float64 `json:"virtualSeconds"`
	// IDs are the submitted jobs' record IDs, in submission order.
	IDs []int `json:"ids"`
}

// OutageRequest is the /outage request body: an operator command
// flipping one member grid's availability at the paced virtual instant.
type OutageRequest struct {
	// Grid names the member grid (a federation-resolved name, as listed
	// on /metrics).
	Grid string `json:"grid"`
	// Action is one of "down", "up", "storage-down", "storage-up".
	Action string `json:"action"`
}

// JobView is one job record rendered for the /jobs listing.
type JobView struct {
	// ID is the job's record ID.
	ID int `json:"id"`
	// Tenant is the submission handle the job came through.
	Tenant string `json:"tenant,omitempty"`
	// Grid is the member grid the job last dispatched to.
	Grid string `json:"grid"`
	// Name is the job's spec name.
	Name string `json:"name"`
	// Status is the lifecycle state name.
	Status string `json:"status"`
	// Attempts counts submissions including rebrokered retries.
	Attempts int `json:"attempts"`
	// SubmittedSeconds is the submission instant in virtual seconds.
	SubmittedSeconds float64 `json:"submittedSeconds"`
	// CompletedSeconds is the terminal instant in virtual seconds (zero
	// while in flight).
	CompletedSeconds float64 `json:"completedSeconds,omitempty"`
	// Error is the terminal error text, if any.
	Error string `json:"error,omitempty"`
}

// mux builds the daemon's HTTP front-end. Every handler funnels through
// Daemon.call, so the engine only ever runs handler logic between steps.
func (d *Daemon) mux() *http.ServeMux {
	m := http.NewServeMux()
	m.HandleFunc("GET /healthz", d.handleHealthz)
	m.HandleFunc("GET /metrics", d.handleMetrics)
	m.HandleFunc("GET /jobs", d.handleJobs)
	m.HandleFunc("GET /snapshot", d.handleSnapshot)
	m.HandleFunc("POST /submit", d.handleSubmit)
	m.HandleFunc("POST /outage", d.handleOutage)
	return m
}

// handleHealthz reports liveness without touching the engine.
func (d *Daemon) handleHealthz(w http.ResponseWriter, r *http.Request) {
	select {
	case <-d.stopped:
		http.Error(w, "stopping", http.StatusServiceUnavailable)
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	}
}

// handleMetrics serves live telemetry in the Prometheus text exposition
// format: engine progress, campaign state, per-grid operational gauges
// and broker EWMAs, job lifecycle counts, repair and storage accounting.
func (d *Daemon) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var (
		st        federation.Status
		fired     uint64
		pending   int
		injected  uint64
		subs      uint64
		remaining int
	)
	if err := d.call(func() {
		st = d.fed.Status()
		fired = d.eng.Fired()
		pending = d.eng.Pending()
		injected = d.injected
		subs = d.submissions
		remaining = d.exec.Remaining()
	}); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	var b strings.Builder
	metric := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	metric("moteur_virtual_seconds", "Engine virtual clock.", "gauge")
	fmt.Fprintf(&b, "moteur_virtual_seconds %g\n", time.Duration(st.Virtual).Seconds())
	metric("moteur_events_fired_total", "Engine events executed.", "counter")
	fmt.Fprintf(&b, "moteur_events_fired_total %d\n", fired)
	metric("moteur_events_pending", "Engine events scheduled and not yet fired.", "gauge")
	fmt.Fprintf(&b, "moteur_events_pending %d\n", pending)
	metric("moteur_injected_total", "External operations admitted through the injection queue.", "counter")
	fmt.Fprintf(&b, "moteur_injected_total %d\n", injected)
	metric("moteur_submissions_total", "Jobs submitted over HTTP.", "counter")
	fmt.Fprintf(&b, "moteur_submissions_total %d\n", subs)
	metric("moteur_campaign_tenants_remaining", "Boot-campaign tenants not yet terminal.", "gauge")
	fmt.Fprintf(&b, "moteur_campaign_tenants_remaining %d\n", remaining)

	metric("moteur_grid_up", "1 when the member grid is not in a full outage.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_up{grid=%q} %d\n", g.Name, b2i(!g.Down))
	}
	metric("moteur_grid_storage_up", "1 when the member grid's storage dimension is lit.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_storage_up{grid=%q} %d\n", g.Name, b2i(!g.StorageDown))
	}
	metric("moteur_grid_ui_backlog", "Submissions accepted but not yet cleared by the grid UI.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_ui_backlog{grid=%q} %d\n", g.Name, g.Backlog)
	}
	metric("moteur_grid_queued_jobs", "Jobs waiting in the grid's batch queues.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_queued_jobs{grid=%q} %d\n", g.Name, g.Queued)
	}
	metric("moteur_grid_busy_nodes", "Worker nodes currently executing jobs.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_busy_nodes{grid=%q} %d\n", g.Name, g.BusyNodes)
	}
	metric("moteur_grid_total_nodes", "Worker nodes configured.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_total_nodes{grid=%q} %d\n", g.Name, g.TotalNodes)
	}
	metric("moteur_grid_dispatched_total", "Jobs the broker sent to the grid.", "counter")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_dispatched_total{grid=%q} %d\n", g.Name, g.Telemetry.Dispatched)
	}
	metric("moteur_grid_observed_total", "Completed jobs that updated the grid's EWMAs.", "counter")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_observed_total{grid=%q} %d\n", g.Name, g.Telemetry.Observed)
	}
	metric("moteur_grid_rebrokered_total", "Jobs moved off the grid after terminal failure.", "counter")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_rebrokered_total{grid=%q} %d\n", g.Name, g.Telemetry.Rebrokered)
	}
	metric("moteur_grid_submit_ewma_seconds", "Smoothed UI submission overhead.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_submit_ewma_seconds{grid=%q} %g\n", g.Name, g.Telemetry.SubmitEWMA.Seconds())
	}
	metric("moteur_grid_queue_ewma_seconds", "Smoothed batch-queue wait.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_queue_ewma_seconds{grid=%q} %g\n", g.Name, g.Telemetry.QueueEWMA.Seconds())
	}
	metric("moteur_grid_stretch", "Observed/nominal WAN transfer-cost ratio.", "gauge")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_stretch{grid=%q} %g\n", g.Name, g.Telemetry.Stretch())
	}
	metric("moteur_grid_wan_wait_seconds_total", "Time spent queued on contended WAN channels, attempts included.", "counter")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_wan_wait_seconds_total{grid=%q} %g\n", g.Name, g.WANWait.Seconds())
	}
	metric("moteur_grid_remote_in_mb_total", "Input megabytes fetched over non-local links, attempts included.", "counter")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_remote_in_mb_total{grid=%q} %g\n", g.Name, g.RemoteInMB)
	}
	metric("moteur_grid_restages_total", "Backed-off stage-in retry rounds.", "counter")
	for _, g := range st.Grids {
		fmt.Fprintf(&b, "moteur_grid_restages_total{grid=%q} %d\n", g.Name, g.Restages)
	}

	metric("moteur_jobs", "Dispatched job attempts by lifecycle status.", "gauge")
	for s, n := range st.JobsByStatus {
		fmt.Fprintf(&b, "moteur_jobs{status=%q} %d\n", grid.JobStatus(s).String(), n)
	}
	metric("moteur_repairs_total", "Replica-repair copies landed.", "counter")
	fmt.Fprintf(&b, "moteur_repairs_total %d\n", st.Repairs)
	metric("moteur_repaired_mb_total", "Megabytes moved by replica repair.", "counter")
	fmt.Fprintf(&b, "moteur_repaired_mb_total %g\n", st.RepairedMB)
	if len(st.SE) > 0 {
		metric("moteur_se_used_mb", "Resident megabytes per storage element.", "gauge")
		for _, se := range st.SE {
			fmt.Fprintf(&b, "moteur_se_used_mb{site=%q} %g\n", se.Site.Grid+"/"+se.Site.Cluster, se.UsedMB)
		}
		metric("moteur_se_files", "Resident replicas per storage element.", "gauge")
		for _, se := range st.SE {
			fmt.Fprintf(&b, "moteur_se_files{site=%q} %d\n", se.Site.Grid+"/"+se.Site.Cluster, se.Files)
		}
		metric("moteur_se_evictions_total", "Replicas drained under capacity pressure.", "counter")
		for _, se := range st.SE {
			fmt.Fprintf(&b, "moteur_se_evictions_total{site=%q} %d\n", se.Site.Grid+"/"+se.Site.Cluster, se.Evictions)
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, b.String())
}

// handleJobs serves the federation's job records as JSON.
func (d *Daemon) handleJobs(w http.ResponseWriter, r *http.Request) {
	var views []JobView
	if err := d.call(func() {
		recs := d.fed.Records()
		views = make([]JobView, len(recs))
		for i, rec := range recs {
			v := JobView{
				ID:               rec.ID,
				Tenant:           rec.Tenant,
				Grid:             rec.Grid,
				Name:             rec.Spec.Name,
				Status:           rec.Status.String(),
				Attempts:         rec.Attempts,
				SubmittedSeconds: time.Duration(rec.Submitted).Seconds(),
			}
			if rec.Status == grid.StatusCompleted || rec.Status == grid.StatusFailed {
				v.CompletedSeconds = time.Duration(rec.Completed).Seconds()
			}
			if rec.Err != nil {
				v.Error = rec.Err.Error()
			}
			views[i] = v
		}
	}); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, views)
}

// handleSnapshot serves the current state snapshot as JSON (without
// persisting it; the snapshot sequence number is not consumed).
func (d *Daemon) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	var snap Snapshot
	if err := d.call(func() {
		snap = d.snapshot(false)
		d.snapSeq-- // a read, not a persisted snapshot
		snap.Seq = d.snapSeq + 1
	}); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, snap)
}

// handleSubmit accepts an external job submission and injects it into
// the running world at the current paced virtual instant.
func (d *Daemon) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if req.Name == "" {
		http.Error(w, "bad request: name is required", http.StatusBadRequest)
		return
	}
	if req.RuntimeSeconds < 0 {
		http.Error(w, "bad request: runtimeSeconds must be >= 0", http.StatusBadRequest)
		return
	}
	count := req.Count
	if count <= 0 {
		count = 1
	}
	if count > 100000 {
		http.Error(w, "bad request: count too large", http.StatusBadRequest)
		return
	}
	outs := make([]grid.FileDecl, len(req.Outputs))
	for i, o := range req.Outputs {
		outs[i] = grid.FileDecl{Name: o.Name, SizeMB: o.SizeMB}
	}
	var resp SubmitResponse
	var missing string
	if err := d.call(func() {
		cat := d.fed.Catalog()
		for _, in := range req.Inputs {
			if !cat.Has(in) {
				missing = in
				return
			}
		}
		resp.VirtualSeconds = time.Duration(d.eng.Now()).Seconds()
		ten := d.fed.Tenant(req.Tenant)
		for i := 0; i < count; i++ {
			spec := grid.JobSpec{
				Name:    req.Name,
				Inputs:  req.Inputs,
				Outputs: outs,
				Runtime: time.Duration(req.RuntimeSeconds * float64(time.Second)),
			}
			if count > 1 {
				spec.Name = fmt.Sprintf("%s-%d", req.Name, i)
			}
			rec := ten.Submit(spec, func(*grid.JobRecord) {})
			resp.IDs = append(resp.IDs, rec.ID)
			d.submissions++
		}
	}); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if missing != "" {
		http.Error(w, fmt.Sprintf("bad request: input %q is not in the catalog", missing), http.StatusBadRequest)
		return
	}
	writeJSON(w, resp)
}

// handleOutage injects an operator availability command for one member
// grid.
func (d *Daemon) handleOutage(w http.ResponseWriter, r *http.Request) {
	var req OutageRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	var apply func(*federation.Federation, int)
	switch req.Action {
	case "down":
		apply = (*federation.Federation).SetDown
	case "up":
		apply = (*federation.Federation).SetUp
	case "storage-down":
		apply = (*federation.Federation).SetStorageDown
	case "storage-up":
		apply = (*federation.Federation).SetStorageUp
	default:
		http.Error(w, "bad request: action must be down, up, storage-down or storage-up", http.StatusBadRequest)
		return
	}
	found := false
	var at sim.Time
	if err := d.call(func() {
		for i := 0; i < d.fed.Size(); i++ {
			if d.fed.GridName(i) == req.Grid {
				apply(d.fed, i)
				found = true
				at = d.eng.Now()
				return
			}
		}
	}); err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	if !found {
		http.Error(w, fmt.Sprintf("bad request: unknown grid %q", req.Grid), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]any{
		"grid":           req.Grid,
		"action":         req.Action,
		"virtualSeconds": time.Duration(at).Seconds(),
	})
}

// writeJSON serializes v as the response body.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// b2i renders a boolean as a 0/1 metric value.
func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
