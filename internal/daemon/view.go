package daemon

import (
	"time"

	"repro/internal/federation"
	"repro/internal/grid"
)

// GridView is GridStatus rendered for JSON: durations in seconds, the
// broker telemetry flattened alongside the grid's operational state.
type GridView struct {
	// Name is the member grid's name.
	Name string `json:"name"`
	// Down reports a full outage in progress.
	Down bool `json:"down"`
	// StorageDown reports the storage dimension dark.
	StorageDown bool `json:"storageDown"`
	// Backlog is the UI backlog (accepted, not yet cleared submissions).
	Backlog int `json:"backlog"`
	// Queued counts jobs in the grid's batch queues.
	Queued int `json:"queued"`
	// BusyNodes and TotalNodes are the worker occupancy.
	BusyNodes int `json:"busyNodes"`
	// TotalNodes is the grid's worker count.
	TotalNodes int `json:"totalNodes"`
	// Dispatched, Observed and Rebrokered are the broker's counters for
	// this grid.
	Dispatched int `json:"dispatched"`
	// Observed counts completed jobs that updated the EWMAs.
	Observed int `json:"observed"`
	// Rebrokered counts jobs moved off this grid after terminal failure.
	Rebrokered int `json:"rebrokered"`
	// SubmitEWMASeconds is the smoothed UI submission overhead.
	SubmitEWMASeconds float64 `json:"submitEwmaSeconds"`
	// QueueEWMASeconds is the smoothed batch-queue wait.
	QueueEWMASeconds float64 `json:"queueEwmaSeconds"`
	// Stretch is the observed/nominal WAN transfer-cost ratio (1 when
	// uncontended or unobserved).
	Stretch float64 `json:"stretch"`
	// RemoteInMB is the input bytes fetched over non-local links,
	// attempts included.
	RemoteInMB float64 `json:"remoteInMB"`
	// WANWaitSeconds is the time spent queued on contended WAN channels,
	// attempts included.
	WANWaitSeconds float64 `json:"wanWaitSeconds"`
	// Restages counts backed-off stage-in retry rounds.
	Restages uint64 `json:"restages"`
}

// SEView is one storage element's statistics rendered for JSON.
type SEView struct {
	// Site is "grid/cluster".
	Site string `json:"site"`
	// CapacityMB is the configured capacity (zero means unlimited).
	CapacityMB float64 `json:"capacityMB"`
	// UsedMB is the resident bytes.
	UsedMB float64 `json:"usedMB"`
	// PeakMB is the highest residency observed.
	PeakMB float64 `json:"peakMB"`
	// Files counts resident replicas.
	Files int `json:"files"`
	// Evictions counts capacity-pressure drains.
	Evictions uint64 `json:"evictions"`
	// EvictedMB totals the bytes evictions freed.
	EvictedMB float64 `json:"evictedMB"`
	// Down reports the element currently dark.
	Down bool `json:"down"`
}

// StatusView is federation.Status rendered for JSON consumers (the
// /snapshot endpoint and state snapshots): durations in seconds, job
// lifecycle counts keyed by status name.
type StatusView struct {
	// VirtualSeconds is the engine's virtual clock.
	VirtualSeconds float64 `json:"virtualSeconds"`
	// Grids holds one view per member grid, in configuration order.
	Grids []GridView `json:"grids"`
	// JobsByStatus counts dispatched attempts by lifecycle state name.
	JobsByStatus map[string]int `json:"jobsByStatus"`
	// Repairs counts landed replica-repair copies.
	Repairs int `json:"repairs"`
	// RepairedMB totals the megabytes those copies moved.
	RepairedMB float64 `json:"repairedMB"`
	// SE holds per-element storage statistics.
	SE []SEView `json:"se,omitempty"`
}

// newGridView flattens a GridStatus for JSON.
func newGridView(gs federation.GridStatus) GridView {
	return GridView{
		Name:              gs.Name,
		Down:              gs.Down,
		StorageDown:       gs.StorageDown,
		Backlog:           gs.Backlog,
		Queued:            gs.Queued,
		BusyNodes:         gs.BusyNodes,
		TotalNodes:        gs.TotalNodes,
		Dispatched:        gs.Telemetry.Dispatched,
		Observed:          gs.Telemetry.Observed,
		Rebrokered:        gs.Telemetry.Rebrokered,
		SubmitEWMASeconds: gs.Telemetry.SubmitEWMA.Seconds(),
		QueueEWMASeconds:  gs.Telemetry.QueueEWMA.Seconds(),
		Stretch:           gs.Telemetry.Stretch(),
		RemoteInMB:        gs.RemoteInMB,
		WANWaitSeconds:    gs.WANWait.Seconds(),
		Restages:          gs.Restages,
	}
}

// newStatusView renders a federation.Status for JSON.
func newStatusView(st federation.Status) StatusView {
	v := StatusView{
		VirtualSeconds: time.Duration(st.Virtual).Seconds(),
		Grids:          make([]GridView, len(st.Grids)),
		JobsByStatus:   make(map[string]int, len(st.JobsByStatus)),
		Repairs:        st.Repairs,
		RepairedMB:     st.RepairedMB,
		SE:             make([]SEView, len(st.SE)),
	}
	for i, gs := range st.Grids {
		v.Grids[i] = newGridView(gs)
	}
	for s, n := range st.JobsByStatus {
		if n > 0 {
			v.JobsByStatus[grid.JobStatus(s).String()] = n
		}
	}
	for i, se := range st.SE {
		v.SE[i] = SEView{
			Site:       se.Site.Grid + "/" + se.Site.Cluster,
			CapacityMB: se.CapacityMB,
			UsedMB:     se.UsedMB,
			PeakMB:     se.PeakMB,
			Files:      se.Files,
			Evictions:  se.Evictions,
			EvictedMB:  se.EvictedMB,
			Down:       se.Down,
		}
	}
	return v
}
