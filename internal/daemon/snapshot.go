package daemon

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// TenantSnapshot is one tenant's progress inside a Snapshot: the live
// campaign.TenantStatus with the terminal error flattened to a string so
// the snapshot round-trips through JSON.
type TenantSnapshot struct {
	// Name is the tenant's name.
	Name string `json:"name"`
	// ArrivalSeconds is the tenant's specified arrival, in virtual
	// seconds after the campaign start.
	ArrivalSeconds float64 `json:"arrivalSeconds"`
	// Finished reports whether the tenant reached a terminal state.
	Finished bool `json:"finished"`
	// FinishSeconds is the terminal instant in virtual seconds after the
	// campaign start (zero while running).
	FinishSeconds float64 `json:"finishSeconds,omitempty"`
	// Error is the tenant's terminal error text, empty on success or
	// while running.
	Error string `json:"error,omitempty"`
}

// CampaignSnapshot is the boot campaign's progress inside a Snapshot.
type CampaignSnapshot struct {
	// Done reports whether every tenant reached a terminal state.
	Done bool `json:"done"`
	// Remaining counts tenants still running.
	Remaining int `json:"remaining"`
	// Tenants is the per-tenant progress, in specification order.
	Tenants []TenantSnapshot `json:"tenants"`
}

// Snapshot is moteurd's periodic JSON state dump: enough to reconstruct
// what the daemon was doing — how far virtual time had advanced, the
// campaign's progress, and the full federation Status — without
// replaying the run. The format is documented in DESIGN.md ("The online
// broker daemon").
type Snapshot struct {
	// Scenario is the served scenario's name.
	Scenario string `json:"scenario"`
	// Seq is the snapshot's sequence number within this daemon run,
	// starting at 1.
	Seq int `json:"seq"`
	// Final marks the shutdown snapshot (Stop, SIGTERM, or a Replay
	// run's campaign completing).
	Final bool `json:"final"`
	// Wall is the wall-clock instant the snapshot was taken (RFC 3339).
	Wall string `json:"wall"`
	// VirtualSeconds is the engine's virtual clock at the snapshot.
	VirtualSeconds float64 `json:"virtualSeconds"`
	// EventsFired counts engine events executed so far.
	EventsFired uint64 `json:"eventsFired"`
	// PendingEvents counts events scheduled and not yet fired.
	PendingEvents int `json:"pendingEvents"`
	// Injected counts external operations admitted through the injection
	// queue (submissions, outage commands, status reads).
	Injected uint64 `json:"injected"`
	// Submissions counts the jobs submitted over HTTP among them.
	Submissions uint64 `json:"submissions"`
	// Campaign is the boot campaign's progress.
	Campaign CampaignSnapshot `json:"campaign"`
	// Federation is the full live federation status (per-grid operational
	// state and telemetry, job lifecycle counts, repair and SE
	// accounting).
	Federation StatusView `json:"federation"`
}

// snapshot assembles the current Snapshot. Must run inside the engine's
// control flow (driver goroutine or an injected event).
func (d *Daemon) snapshot(final bool) Snapshot {
	d.snapSeq++
	ts := d.exec.Tenants()
	cs := CampaignSnapshot{
		Done:      d.exec.Done(),
		Remaining: d.exec.Remaining(),
		Tenants:   make([]TenantSnapshot, len(ts)),
	}
	for i, t := range ts {
		cs.Tenants[i] = TenantSnapshot{
			Name:           t.Name,
			ArrivalSeconds: t.Arrival.Seconds(),
			Finished:       t.Finished,
			FinishSeconds:  t.Finish.Seconds(),
		}
		if t.Err != nil {
			cs.Tenants[i].Error = t.Err.Error()
		}
	}
	return Snapshot{
		Scenario:       d.cfg.World.Spec.Name,
		Seq:            d.snapSeq,
		Final:          final,
		Wall:           d.clock.Now().UTC().Format(time.RFC3339Nano),
		VirtualSeconds: time.Duration(d.eng.Now()).Seconds(),
		EventsFired:    d.eng.Fired(),
		PendingEvents:  d.eng.Pending(),
		Injected:       d.injected,
		Submissions:    d.submissions,
		Campaign:       cs,
		Federation:     newStatusView(d.fed.Status()),
	}
}

// writeSnapshot takes a snapshot and persists it to SnapshotDir:
// snapshot-NNNNNN.json for the sequence, plus latest.json replaced
// atomically (write-temp-then-rename) so a concurrent reader never sees
// a torn file.
func (d *Daemon) writeSnapshot(final bool) error {
	snap := d.snapshot(final)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := d.cfg.SnapshotDir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp := filepath.Join(dir, ".snapshot.tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	name := filepath.Join(dir, fmt.Sprintf("snapshot-%06d.json", snap.Seq))
	if err := os.Rename(tmp, name); err != nil {
		return err
	}
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, filepath.Join(dir, "latest.json"))
}
