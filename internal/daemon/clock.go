package daemon

import "time"

// Clock abstracts wall-clock time for the daemon's pacing loop, so tests
// drive the loop with a fake clock while production uses the real one.
// Wall-clock time lives only in this package and cmd/moteurd: the
// simulation-critical packages stay clean under the simtime analyzer,
// and the engine itself never observes the wall.
type Clock interface {
	// Now returns the current wall-clock instant.
	Now() time.Time
	// After returns a channel that delivers one instant once d has
	// elapsed (time.After semantics).
	After(d time.Duration) <-chan time.Time
}

// realClock is the production clock: the process wall clock.
type realClock struct{}

// Now returns time.Now.
func (realClock) Now() time.Time { return time.Now() }

// After returns time.After(d).
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// RealClock returns the production wall clock.
func RealClock() Clock { return realClock{} }
