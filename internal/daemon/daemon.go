// Package daemon turns the closed federation simulator into a
// long-running online broker service: moteurd. It boots a compiled
// scenario world, then drives the engine *incrementally* — a pacing loop
// maps wall-clock time onto virtual time (real-time, time-warped by a
// -warp factor, or as fast as possible) using the engine's
// Step/NextAt/RunUntil primitives — while an injection queue
// (sim.Inbox) lets external events arriving over HTTP (job submissions,
// outage commands, telemetry scrapes) be scheduled onto the engine
// between steps without violating its single-threaded determinism
// contract.
//
// Wall-clock time and HTTP live only here and in cmd/moteurd: the
// simulation-critical packages stay clean under the simtime analyzer,
// and the engine itself only ever sees virtual instants. The
// determinism argument, the snapshot format and the pacing loop are
// documented in DESIGN.md ("The online broker daemon").
package daemon

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/federation"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// Config assembles a daemon.
type Config struct {
	// World is the compiled scenario world to serve (required). The
	// world's campaign — its tenant roster under its admission gate — is
	// started at boot; external submissions ride alongside it. The
	// world's federation must be serial (the scenario compiler never
	// builds parallel ones): the daemon steps the shared engine directly.
	World *scenario.World
	// Warp is the pacing factor: virtual seconds advanced per wall-clock
	// second. 1 is real time, 60 compresses a virtual minute into a wall
	// second, and any value <= 0 means as-fast-as-possible (no pacing —
	// the engine drains as quickly as the host allows).
	Warp float64
	// Replay makes the daemon exit once the boot campaign completes (and
	// the drain stops exactly there, mirroring the closed
	// campaign.RunSiteAdmitted loop): the time-warped replay mode whose
	// outcome reproduces the closed run's fingerprint event-for-event.
	// Without it the daemon keeps serving after the campaign finishes.
	Replay bool
	// Addr is the HTTP listen address (e.g. "127.0.0.1:8321"). Empty
	// disables the HTTP front-end.
	Addr string
	// SnapshotDir, when non-empty, enables periodic JSON state snapshots:
	// snapshot-NNNNNN.json plus an atomically-replaced latest.json, and a
	// final snapshot on shutdown (SIGTERM-safe).
	SnapshotDir string
	// SnapshotEvery is the wall-clock period between periodic snapshots.
	// Zero means 10 s.
	SnapshotEvery time.Duration
	// Clock supplies wall time to the pacing loop. Nil means RealClock.
	Clock Clock
	// Logf receives operational log lines. Nil discards them.
	Logf func(format string, args ...any)
}

// ErrStopped reports an operation refused because the daemon's driver
// loop has exited.
var ErrStopped = errors.New("daemon: stopped")

// Daemon is a running moteurd instance: one engine, one federation, one
// driver goroutine that owns them, and an HTTP front-end that talks to
// the driver exclusively through the injection queue.
type Daemon struct {
	cfg   Config
	clock Clock
	eng   *sim.Engine
	fed   *federation.Federation
	exec  *campaign.Execution

	inbox    sim.Inbox
	wake     chan struct{}
	stop     chan struct{}
	stopped  chan struct{}
	stopOnce sync.Once

	srv *http.Server
	ln  net.Listener

	// injected counts external events admitted through the inbox;
	// submissions counts the jobs among them. Written by the driver
	// goroutine (and handlers running inside injected events), read the
	// same way — snapshots and /metrics copy them out via the inbox.
	injected    uint64
	submissions uint64
	snapSeq     int
}

// New boots a daemon over the compiled world: the world's campaign is
// scheduled on the engine (nothing runs yet) and the HTTP front-end is
// prepared. Call Start to begin serving and pacing.
func New(cfg Config) (*Daemon, error) {
	if cfg.World == nil {
		return nil, errors.New("daemon: Config.World is required")
	}
	if cfg.World.Fed.ParallelActive() {
		return nil, errors.New("daemon: parallel federations cannot be served (the daemon steps the engine directly)")
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock()
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 10 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	exec, err := cfg.World.Start()
	if err != nil {
		return nil, fmt.Errorf("daemon: starting campaign: %w", err)
	}
	d := &Daemon{
		cfg:     cfg,
		clock:   cfg.Clock,
		eng:     cfg.World.Eng,
		fed:     cfg.World.Fed,
		exec:    exec,
		wake:    make(chan struct{}, 1),
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	return d, nil
}

// Start begins serving: the HTTP listener binds (when configured) and
// the driver goroutine starts pacing the engine. It returns immediately;
// use Wait to observe termination.
func (d *Daemon) Start() error {
	if d.cfg.Addr != "" {
		ln, err := net.Listen("tcp", d.cfg.Addr)
		if err != nil {
			return fmt.Errorf("daemon: listen %s: %w", d.cfg.Addr, err)
		}
		d.ln = ln
		d.srv = &http.Server{Handler: d.mux()}
		go func() {
			if err := d.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				d.cfg.Logf("moteurd: http: %v", err)
			}
		}()
		d.cfg.Logf("moteurd: serving on http://%s", ln.Addr())
	}
	go d.drive()
	return nil
}

// Addr returns the bound HTTP address (empty when HTTP is disabled).
func (d *Daemon) Addr() string {
	if d.ln == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Wait returns a channel closed when the driver loop has exited — after
// Stop, or on its own once a Replay run's campaign completes.
func (d *Daemon) Wait() <-chan struct{} { return d.stopped }

// Stop shuts the daemon down: the driver loop writes a final snapshot
// and exits, and the HTTP front-end closes. Safe to call more than once
// and from any goroutine (it is the SIGTERM handler's entry point).
func (d *Daemon) Stop() {
	d.stopOnce.Do(func() { close(d.stop) })
	<-d.stopped
	if d.srv != nil {
		d.srv.Close()
	}
}

// Report renders the boot campaign's outcome. Only valid after Wait has
// fired: the driver goroutine owns the engine until then.
func (d *Daemon) Report() *campaign.Report { return d.exec.Report() }

// Fingerprint condenses the finished run into the scenario determinism
// fingerprint (scenario.Fingerprint over the campaign report and the
// federation). Only valid after Wait has fired.
func (d *Daemon) Fingerprint() uint64 {
	return scenario.Fingerprint(d.exec.Report(), d.fed)
}

// poke nudges the driver loop awake after an inbox post.
func (d *Daemon) poke() {
	select {
	case d.wake <- struct{}{}:
	default:
	}
}

// call runs fn inside the engine's control flow — injected through the
// inbox, scheduled at the current virtual instant — and blocks until it
// has executed. It is how HTTP handlers read or mutate simulation state
// without ever touching the engine from their own goroutine.
func (d *Daemon) call(fn func()) error {
	done := make(chan struct{})
	d.inbox.Post(func() {
		d.injected++
		fn()
		close(done)
	})
	d.poke()
	select {
	case <-done:
		return nil
	case <-d.stopped:
		// The driver may have drained the post on its way out; prefer the
		// completed answer when it did.
		select {
		case <-done:
			return nil
		default:
			return ErrStopped
		}
	}
}

// stepBudget bounds how many events fire between responsiveness checks
// (stop, wake, inbox) during a drain burst, so a huge backlog cannot
// make the daemon deaf for its duration.
const stepBudget = 4096

// drive is the pacing loop: the single goroutine that owns the engine.
// Each round drains the injection queue, fires every event due at the
// paced virtual target, advances the paced clock, writes periodic
// snapshots, and sleeps until the next wall deadline (or an injection).
func (d *Daemon) drive() {
	defer close(d.stopped)
	wallStart := d.clock.Now()
	virtStart := d.eng.Now()
	lastSnap := wallStart
	for {
		select {
		case <-d.stop:
			d.finalSnapshot()
			return
		default:
		}

		d.inbox.Drain(d.eng)

		// The paced virtual target: how far virtual time may advance
		// right now. Unpaced (Warp <= 0) runs drain everything due.
		paced := d.cfg.Warp > 0
		var vtarget sim.Time
		if paced {
			elapsed := d.clock.Now().Sub(wallStart)
			vtarget = virtStart + sim.Time(float64(elapsed)*d.cfg.Warp)
		}

		// Fire due events, checking responsiveness every stepBudget
		// steps. A Replay run stops exactly when the campaign does,
		// mirroring campaign.RunSiteAdmitted's drain loop so the outcome
		// (and its fingerprint) is the closed run's.
		steps := 0
		drained := false
		for {
			if d.cfg.Replay && d.exec.Done() {
				d.cfg.Logf("moteurd: campaign complete at virtual %v", d.eng.Now())
				d.finalSnapshot()
				return
			}
			next, ok := d.eng.NextAt()
			if !ok {
				drained = true
				break
			}
			if paced && next > vtarget {
				break
			}
			d.eng.Step()
			if steps++; steps >= stepBudget {
				break
			}
		}
		if steps >= stepBudget {
			continue // re-check stop/inbox before burning the next burst
		}
		if drained && d.cfg.Replay && d.inbox.Len() == 0 {
			// The engine ran dry with tenants still unfinished: the
			// campaign is stalled. Exit so Report can say so rather than
			// sleeping forever.
			d.cfg.Logf("moteurd: campaign stalled at virtual %v (%d tenants unfinished)", d.eng.Now(), d.exec.Remaining())
			d.finalSnapshot()
			return
		}
		if paced && vtarget > d.eng.Now() {
			// Nothing due before the target: advance the clock to it so
			// injections land at the paced virtual instant.
			d.eng.RunUntil(vtarget)
		}

		// Periodic snapshots on the wall clock.
		if d.cfg.SnapshotDir != "" {
			if now := d.clock.Now(); now.Sub(lastSnap) >= d.cfg.SnapshotEvery {
				lastSnap = now
				if err := d.writeSnapshot(false); err != nil {
					d.cfg.Logf("moteurd: snapshot: %v", err)
				}
			}
		}

		d.idle(wallStart, virtStart, lastSnap)
	}
}

// idle sleeps until the next wall deadline: the paced instant of the
// next pending event, the next snapshot tick, an injection poke, or
// stop. Unpaced runs with pending events do not sleep at all.
func (d *Daemon) idle(wallStart time.Time, virtStart sim.Time, lastSnap time.Time) {
	paced := d.cfg.Warp > 0
	next, ok := d.eng.NextAt()
	if ok && !paced {
		return // as-fast-as-possible with work pending: no sleep
	}
	var deadline time.Duration
	have := false
	now := d.clock.Now()
	if ok {
		at := wallStart.Add(time.Duration(float64(next-virtStart) / d.cfg.Warp))
		deadline = at.Sub(now)
		have = true
	}
	if d.cfg.SnapshotDir != "" {
		if snap := lastSnap.Add(d.cfg.SnapshotEvery).Sub(now); !have || snap < deadline {
			deadline = snap
			have = true
		}
	}
	if have && deadline <= 0 {
		return // already overdue: go straight back to the drain
	}
	var timer <-chan time.Time
	if have {
		timer = d.clock.After(deadline)
	}
	select {
	case <-d.stop:
	case <-d.wake:
	case <-timer:
	}
}

// finalSnapshot writes the shutdown snapshot (best-effort) when
// snapshots are configured.
func (d *Daemon) finalSnapshot() {
	if d.cfg.SnapshotDir == "" {
		return
	}
	if err := d.writeSnapshot(true); err != nil {
		d.cfg.Logf("moteurd: final snapshot: %v", err)
	}
}
