package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// testSpec is a small closed world: two quiet grids, two staggered
// tenants running 2-stage chains over constant 5 MB inputs.
const testSpec = `{
  "name": "daemon-test",
  "seed": 7,
  "grids": [{"name": "g", "count": 2, "nodes": 4}],
  "links": {"local": true},
  "policies": {"par": {"dataParallelism": true, "serviceParallelism": true}},
  "tenants": [{
    "count": 2, "prefix": "t", "policy": "par",
    "arrivals": {"kind": "staggered", "spread": "30s"},
    "workload": {
      "stages": 2, "items": 4, "runtime": "10s",
      "sizes": {"kind": "constant", "meanMB": 5}
    }
  }]
}`

func compileTestWorld(t *testing.T, src string) *scenario.World {
	t.Helper()
	spec, err := scenario.Parse([]byte(src), "daemon_test.json")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	w, err := scenario.Compile(sim.NewEngine(), spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return w
}

// TestReplayMatchesClosedRun is the determinism acceptance gate: an
// as-fast-as-possible replay through the daemon's incremental driver
// reproduces the closed World.Run outcome of the same scenario file,
// fingerprint and makespan both.
func TestReplayMatchesClosedRun(t *testing.T) {
	spec, err := scenario.Load("../../scenarios/clean-baseline.json")
	if err != nil {
		t.Fatalf("load: %v", err)
	}

	closedWorld, err := scenario.Compile(sim.NewEngine(), spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	closedRep, err := closedWorld.Run()
	if err != nil {
		t.Fatalf("closed run: %v", err)
	}
	closedFP := scenario.Fingerprint(closedRep, closedWorld.Fed)

	daemonWorld, err := scenario.Compile(sim.NewEngine(), spec)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	d, err := New(Config{World: daemonWorld, Warp: 0, Replay: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case <-d.Wait():
	case <-time.After(2 * time.Minute):
		t.Fatal("replay did not finish")
	}
	rep := d.Report()
	if rep.Makespan != closedRep.Makespan {
		t.Fatalf("replay makespan %v, closed run %v", rep.Makespan, closedRep.Makespan)
	}
	if fp := d.Fingerprint(); fp != closedFP {
		t.Fatalf("replay fingerprint %016x, closed run %016x", fp, closedFP)
	}
}

// TestPacedReplayMatchesClosedRun drives the same world through the
// paced branch (a huge warp factor against the real clock, so the run
// still finishes instantly) and expects the identical outcome: pacing
// changes when events fire on the wall, never what they compute.
func TestPacedReplayMatchesClosedRun(t *testing.T) {
	closedWorld := compileTestWorld(t, testSpec)
	closedRep, err := closedWorld.Run()
	if err != nil {
		t.Fatalf("closed run: %v", err)
	}
	closedFP := scenario.Fingerprint(closedRep, closedWorld.Fed)

	d, err := New(Config{World: compileTestWorld(t, testSpec), Warp: 1e9, Replay: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case <-d.Wait():
	case <-time.After(time.Minute):
		t.Fatal("paced replay did not finish")
	}
	if fp := d.Fingerprint(); fp != closedFP {
		t.Fatalf("paced replay fingerprint %016x, closed run %016x", fp, closedFP)
	}
}

// startServingDaemon boots an HTTP-serving daemon over the test spec and
// returns it with its base URL. The daemon is stopped at test cleanup.
func startServingDaemon(t *testing.T, cfg Config) (*Daemon, string) {
	t.Helper()
	if cfg.World == nil {
		cfg.World = compileTestWorld(t, testSpec)
	}
	cfg.Addr = "127.0.0.1:0"
	d, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(d.Stop)
	return d, "http://" + d.Addr()
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func httpPost(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read: %v", url, err)
	}
	return resp.StatusCode, string(out)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestHTTPSubmitJobsMetricsSnapshot exercises the serving daemon end to
// end: a live HTTP submission mid-run, job completion visible on /jobs,
// per-grid telemetry on /metrics, outage commands, the /snapshot
// endpoint, and the final on-disk snapshot at shutdown.
func TestHTTPSubmitJobsMetricsSnapshot(t *testing.T) {
	snapDir := t.TempDir()
	d, base := startServingDaemon(t, Config{
		Warp:          0, // as fast as possible: the boot campaign drains immediately
		SnapshotDir:   snapDir,
		SnapshotEvery: time.Hour, // periodic ticks out of the way; the final snapshot is the one under test
	})

	if code, body := httpGet(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	// Submit two probe jobs over HTTP while the daemon runs.
	code, body := httpPost(t, base+"/submit", `{"tenant":"ext","name":"probe","runtimeSeconds":5,"count":2}`)
	if code != http.StatusOK {
		t.Fatalf("/submit: %d %s", code, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal([]byte(body), &sub); err != nil {
		t.Fatalf("/submit response: %v", err)
	}
	if len(sub.IDs) != 2 {
		t.Fatalf("/submit returned ids %v, want 2", sub.IDs)
	}

	// An unknown input is rejected without touching the world.
	if code, _ := httpPost(t, base+"/submit", `{"name":"bad","runtimeSeconds":1,"inputs":["no-such-file"]}`); code != http.StatusBadRequest {
		t.Fatalf("/submit with unknown input: %d, want 400", code)
	}

	// The probes complete (warp 0 drains them as soon as they land).
	waitFor(t, "probe jobs to complete", func() bool {
		_, body := httpGet(t, base+"/jobs")
		var jobs []JobView
		if err := json.Unmarshal([]byte(body), &jobs); err != nil {
			t.Fatalf("/jobs: %v", err)
		}
		// Record IDs are per-grid sequences, so match on the tenant tag.
		done := 0
		for _, j := range jobs {
			if j.Tenant == "ext" && j.Status == "completed" {
				done++
			}
		}
		return done == len(sub.IDs)
	})

	// /metrics serves the per-grid EWMAs and the submission counter.
	_, metrics := httpGet(t, base+"/metrics")
	for _, want := range []string{
		`moteur_grid_submit_ewma_seconds{grid="g0"}`,
		`moteur_grid_queue_ewma_seconds{grid="g1"}`,
		`moteur_grid_stretch{grid="g0"}`,
		"moteur_submissions_total 2",
		"moteur_virtual_seconds",
		"moteur_repairs_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("/metrics missing %q in:\n%s", want, metrics)
		}
	}

	// Outage commands flip the per-grid up gauge.
	if code, body := httpPost(t, base+"/outage", `{"grid":"g1","action":"down"}`); code != http.StatusOK {
		t.Fatalf("/outage: %d %s", code, body)
	}
	_, metrics = httpGet(t, base+"/metrics")
	if !strings.Contains(metrics, `moteur_grid_up{grid="g1"} 0`) {
		t.Fatalf("/metrics does not show g1 down:\n%s", metrics)
	}
	if code, _ := httpPost(t, base+"/outage", `{"grid":"g1","action":"up"}`); code != http.StatusOK {
		t.Fatal("/outage up failed")
	}
	if code, _ := httpPost(t, base+"/outage", `{"grid":"nope","action":"down"}`); code != http.StatusBadRequest {
		t.Fatalf("/outage unknown grid: %d, want 400", code)
	}

	// /snapshot serves the live state as JSON.
	_, body = httpGet(t, base+"/snapshot")
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot: %v", err)
	}
	if snap.Scenario != "daemon-test" || len(snap.Federation.Grids) != 2 {
		t.Fatalf("/snapshot: scenario %q, %d grids", snap.Scenario, len(snap.Federation.Grids))
	}
	if snap.Submissions != 2 {
		t.Fatalf("/snapshot submissions %d, want 2", snap.Submissions)
	}

	// Shutdown writes a final, parseable snapshot.
	d.Stop()
	data, err := os.ReadFile(filepath.Join(snapDir, "latest.json"))
	if err != nil {
		t.Fatalf("latest.json: %v", err)
	}
	var final Snapshot
	if err := json.Unmarshal(data, &final); err != nil {
		t.Fatalf("latest.json: %v", err)
	}
	if !final.Final {
		t.Fatal("latest.json is not marked final")
	}
	if final.Scenario != "daemon-test" {
		t.Fatalf("final snapshot scenario %q", final.Scenario)
	}

	// The daemon refuses work after shutdown.
	if err := d.call(func() {}); err == nil {
		t.Fatal("call after Stop did not fail")
	}
}

// TestSubmitValidation covers the /submit request checks.
func TestSubmitValidation(t *testing.T) {
	_, base := startServingDaemon(t, Config{Warp: 0})
	cases := []struct {
		body string
		want int
	}{
		{`{"runtimeSeconds":1}`, http.StatusBadRequest}, // no name
		{`{"name":"x","runtimeSeconds":-1}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
		{`{"name":"x","runtimeSeconds":1,"count":1000000}`, http.StatusBadRequest},
		{`{"name":"x","runtimeSeconds":1}`, http.StatusOK},
	}
	for _, c := range cases {
		if code, body := httpPost(t, base+"/submit", c.body); code != c.want {
			t.Errorf("/submit %s: %d (%s), want %d", c.body, code, bytes.TrimSpace([]byte(body)), c.want)
		}
	}
}

// TestFailedCampaignReplayExits verifies a replay whose tenants fail
// terminally still terminates (with the errors reported) instead of
// hanging.
func TestFailedCampaignReplayExits(t *testing.T) {
	// A permanent full outage of the only grid before the tenant arrives:
	// every submission fails terminally with nowhere to re-broker.
	const stalledSpec = `{
	  "name": "daemon-stall",
	  "grids": [{"name": "g", "nodes": 2}],
	  "links": {"local": true},
	  "outages": [{"grid": "g", "at": "1s"}],
	  "policies": {"par": {"dataParallelism": true}},
	  "tenants": [{
	    "prefix": "t", "policy": "par",
	    "arrivals": {"kind": "staggered", "start": "5s"},
	    "workload": {"stages": 1, "items": 2, "runtime": "10m",
	      "sizes": {"kind": "constant", "meanMB": 1}}
	  }]
	}`
	d, err := New(Config{World: compileTestWorld(t, stalledSpec), Warp: 0, Replay: true})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := d.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	select {
	case <-d.Wait():
	case <-time.After(time.Minute):
		t.Fatal("stalled replay did not exit")
	}
	rep := d.Report()
	if len(rep.Tenants) != 1 || rep.Tenants[0].Err == nil {
		t.Fatalf("failed-campaign replay report: %+v", rep.Tenants)
	}
}
