// Package diagram renders execution diagrams in the style of the paper's
// figures 4, 5 and 6: one row per service, one column per time quantum,
// with the data sets being processed written into the cells and crosses
// marking idle cycles. Data parallelism shows as several data sets in a
// single cell; service parallelism shows as different data sets in
// different rows of the same column.
package diagram

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

// Render draws the trace as an ASCII diagram. Rows appear in the given
// processor order, first processor at the bottom as in the paper. The
// quantum sets the column width in virtual time; invocations are mapped to
// every column they overlap.
func Render(tr *core.Trace, procs []string, quantum time.Duration) string {
	if quantum <= 0 {
		panic("diagram: non-positive quantum")
	}
	var end sim.Time
	for _, inv := range tr.Invocations {
		if inv.Finished > end {
			end = inv.Finished
		}
	}
	cols := int((time.Duration(end) + quantum - 1) / quantum)
	if cols == 0 {
		cols = 1
	}

	// cells[proc][col] accumulates the labels of data sets active there.
	cells := make(map[string][]map[string]bool, len(procs))
	for _, p := range procs {
		row := make([]map[string]bool, cols)
		for c := range row {
			row[c] = make(map[string]bool)
		}
		cells[p] = row
	}
	for _, inv := range tr.Invocations {
		row, ok := cells[inv.Processor]
		if !ok {
			continue
		}
		label := "D" + inv.Key()
		first := int(time.Duration(inv.Started) / quantum)
		last := int((time.Duration(inv.Finished) - 1) / quantum)
		if time.Duration(inv.Finished) <= time.Duration(inv.Started) {
			last = first
		}
		for c := first; c <= last && c < cols; c++ {
			row[c][label] = true
		}
	}

	// Render with uniform column widths.
	text := make(map[string][]string, len(procs))
	width := 1
	for _, p := range procs {
		row := make([]string, cols)
		for c, set := range cells[p] {
			if len(set) == 0 {
				row[c] = "X"
			} else {
				labels := make([]string, 0, len(set))
				for l := range set {
					labels = append(labels, l)
				}
				sort.Strings(labels)
				row[c] = strings.Join(labels, ",")
			}
			if len(row[c]) > width {
				width = len(row[c])
			}
		}
		text[p] = row
	}
	nameWidth := 1
	for _, p := range procs {
		if len(p) > nameWidth {
			nameWidth = len(p)
		}
	}

	var b strings.Builder
	for i := len(procs) - 1; i >= 0; i-- {
		p := procs[i]
		fmt.Fprintf(&b, "%-*s |", nameWidth, p)
		for _, cell := range text[p] {
			fmt.Fprintf(&b, " %-*s |", width, cell)
		}
		b.WriteByte('\n')
	}
	// Time axis.
	fmt.Fprintf(&b, "%-*s  ", nameWidth, "")
	for c := 0; c < cols; c++ {
		fmt.Fprintf(&b, " %-*d  ", width, c)
	}
	fmt.Fprintf(&b, "(x %v)\n", quantum)
	return b.String()
}
