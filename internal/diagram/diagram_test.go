package diagram

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// fig1Chain builds the paper's Fig. 1 workflow (P1 → P2 → P3) with
// per-item durations T[i][j], runs it under opts, and returns the trace.
func fig1Trace(t *testing.T, T [][]time.Duration, opts core.Options) *core.Trace {
	t.Helper()
	eng := sim.NewEngine()
	w := workflow.New("fig1")
	w.AddSource("src")
	for i := 0; i < 3; i++ {
		i := i
		name := fmt.Sprintf("P%d", i+1)
		dur := func(req services.Request) time.Duration { return T[i][req.Index[0]] }
		echo := func(req services.Request) map[string]string {
			return map[string]string{"out": req.Inputs["in"]}
		}
		w.AddService(name, services.NewLocal(eng, name, 1<<20, dur, echo),
			[]string{"in"}, []string{"out"})
	}
	w.AddSink("sink")
	w.Connect("src", workflow.SourcePort, "P1", "in")
	w.Connect("P1", "out", "P2", "in")
	w.Connect("P2", "out", "P3", "in")
	w.Connect("P3", "out", "sink", workflow.SinkPort)
	e, err := core.New(eng, w, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(map[string][]string{"src": {"D0", "D1", "D2"}})
	if err != nil {
		t.Fatal(err)
	}
	return res.Trace
}

func constT3() [][]time.Duration {
	T := make([][]time.Duration, 3)
	for i := range T {
		T[i] = []time.Duration{10 * time.Second, 10 * time.Second, 10 * time.Second}
	}
	return T
}

// Figure 4: data parallelism only. All data sets share each stage's cell.
func TestFigure4DataParallel(t *testing.T) {
	tr := fig1Trace(t, constT3(), core.Options{DataParallelism: true})
	out := Render(tr, []string{"P1", "P2", "P3"}, 10*time.Second)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("diagram lines = %d:\n%s", len(lines), out)
	}
	// Rows are P3, P2, P1 top to bottom as in the paper.
	if !strings.HasPrefix(lines[0], "P3") || !strings.HasPrefix(lines[2], "P1") {
		t.Fatalf("row order wrong:\n%s", out)
	}
	// P1 row: all three data sets in the first column, then idle.
	if !strings.Contains(lines[2], "D0,D1,D2") {
		t.Fatalf("P1 row missing concurrent data sets:\n%s", out)
	}
	// P3 row: idle, idle, then all three.
	if !strings.Contains(lines[0], "X") || !strings.Contains(lines[0], "D0,D1,D2") {
		t.Fatalf("P3 row wrong:\n%s", out)
	}
}

// Figure 5: service parallelism only. The diagonal pipeline pattern.
func TestFigure5ServiceParallel(t *testing.T) {
	tr := fig1Trace(t, constT3(), core.Options{ServiceParallelism: true})
	out := Render(tr, []string{"P1", "P2", "P3"}, 10*time.Second)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	p1 := strings.Fields(lines[2])
	p3 := strings.Fields(lines[0])
	// P1 | D0 | D1 | D2 | X | X ; P3 | X | X | D0 | D1 | D2
	joined1 := strings.Join(p1, " ")
	joined3 := strings.Join(p3, " ")
	if !strings.Contains(joined1, "D0 | D1 | D2 | X | X") {
		t.Fatalf("P1 row not pipelined:\n%s", out)
	}
	if !strings.Contains(joined3, "X | X | D0 | D1 | D2") {
		t.Fatalf("P3 row not pipelined:\n%s", out)
	}
	// No cell holds two data sets (data parallelism disabled).
	if strings.Contains(out, ",") {
		t.Fatalf("SP-only diagram shows data parallelism:\n%s", out)
	}
}

// Figure 6: variable execution times — with DP only, stage barriers leave
// idle holes; adding SP overlaps them and shortens the diagram.
func TestFigure6Comparison(t *testing.T) {
	T := constT3()
	T[0][0] = 20 * time.Second // D0 twice as long on P1
	T[1][1] = 30 * time.Second // D1 three times as long on P2

	dp := fig1Trace(t, T, core.Options{DataParallelism: true})
	dsp := fig1Trace(t, T, core.Options{DataParallelism: true, ServiceParallelism: true})
	outDP := Render(dp, []string{"P1", "P2", "P3"}, 10*time.Second)
	outDSP := Render(dsp, []string{"P1", "P2", "P3"}, 10*time.Second)
	colsDP := strings.Count(strings.Split(outDP, "\n")[0], "|")
	colsDSP := strings.Count(strings.Split(outDSP, "\n")[0], "|")
	if colsDSP >= colsDP {
		t.Fatalf("service parallelism did not shorten the diagram:\nDP:\n%s\nDSP:\n%s", outDP, outDSP)
	}
}

func TestRenderEmptyTrace(t *testing.T) {
	out := Render(&core.Trace{}, []string{"P1"}, time.Second)
	if !strings.Contains(out, "P1") || !strings.Contains(out, "X") {
		t.Fatalf("empty render = %q", out)
	}
}

func TestRenderUnknownProcessorIgnored(t *testing.T) {
	tr := fig1Trace(t, constT3(), core.Options{DataParallelism: true})
	out := Render(tr, []string{"P1"}, 10*time.Second)
	if strings.Contains(out, "P2") {
		t.Fatalf("unrequested processor rendered:\n%s", out)
	}
}

func TestRenderPanicsOnBadQuantum(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero quantum did not panic")
		}
	}()
	Render(&core.Trace{}, nil, 0)
}
