// Package core implements MOTEUR, the paper's optimized service-based
// workflow enactor (Sec. 3–4): it executes a workflow over an input data
// set, exploiting every applicable level of parallelism —
//
//   - workflow parallelism (always on): independent branches of the graph
//     progress concurrently;
//   - data parallelism (DP): a service processes several data items
//     concurrently on distinct grid resources;
//   - service parallelism (SP): different services process different data
//     items concurrently (pipelining); with SP off, execution is
//     batch-synchronized per stage, as in pre-streaming enactors;
//   - job grouping (JG): sequential wrapper-backed processors are fused
//     into single grid jobs (see AutoGroup).
//
// The enactor runs inside the discrete-event simulation: service calls are
// asynchronous (Sec. 3.1) and completions arrive as events in virtual
// time, so runs are deterministic per seed and a full-scale experiment
// executes in milliseconds of wall time.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/iterstrat"
	"repro/internal/provenance"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Options selects the optimization levels for one execution.
type Options struct {
	// DataParallelism allows a service to run many invocations at once.
	DataParallelism bool
	// ServiceParallelism streams items between services as they are
	// produced. When false, a processor may not start until every direct
	// predecessor has finished its complete input set.
	ServiceParallelism bool
	// JobGrouping fuses eligible sequential wrapper chains (AutoGroup)
	// before execution.
	JobGrouping bool
	// MaxConcurrent caps concurrent invocations per service when
	// DataParallelism is on (0 = unlimited).
	MaxConcurrent int
	// DataGroupSize batches up to this many ready invocations of one
	// wrapper-backed service into a single grid job (0 or 1 disables).
	// This is the paper's future-work optimization (Sec. 5.4): "grouping
	// jobs of a single service, thus finding a trade-off between data
	// parallelism and the system's overhead". Larger batches pay fewer
	// per-job overheads but expose less data parallelism; the ablation
	// benchmarks sweep the trade-off.
	DataGroupSize int
	// DataGroupWindow is how long an under-filled batch waits for more
	// items before submitting anyway. Zero batches only simultaneously
	// ready items, which under streaming (service parallelism) catches
	// little beyond the first stage; a window of a fraction of the grid
	// overhead lets downstream services accumulate batches too.
	DataGroupWindow time.Duration
}

// String names the configuration the way the paper does (NOP, DP, SP, JG
// and their combinations).
func (o Options) String() string {
	s := ""
	if o.ServiceParallelism {
		s += "SP+"
	}
	if o.DataParallelism {
		s += "DP+"
	}
	if o.JobGrouping {
		s += "JG+"
	}
	if s == "" {
		return "NOP"
	}
	return s[:len(s)-1]
}

// ErrStalled reports an execution that stopped making progress before
// completing: typically a cyclic workflow run without service parallelism,
// or a conditional output starving a barrier.
var ErrStalled = errors.New("core: workflow execution stalled")

// Enactor executes one workflow on one engine. Create a fresh Enactor per
// execution.
type Enactor struct {
	eng  *sim.Engine
	wf   *workflow.Workflow
	opts Options

	tracker *provenance.Tracker
	procs   map[string]*procState
	order   []string
	trace   *Trace

	expected map[string]int // nil when not computable (cyclic)
	active   int            // queued tuples + in-flight invocations
	done     bool
	failure  error
	finish   sim.Time
}

type readyTuple struct {
	tuple iterstrat.Tuple
	ready sim.Time
}

type procState struct {
	p        *workflow.Processor
	strat    iterstrat.Strategy // private clone; nil for sources, sinks, sync
	queue    []readyTuple
	inFlight int
	finished int
	open     bool // admission allowed (barrier/constraint gate)

	syncFired   bool
	syncBuf     map[string][]*provenance.Item // sync procs: per-port arrivals
	flush       *sim.Event                    // pending batch-window flush
	flushForced bool                          // window expired: submit short batches

	collected []*provenance.Item // sinks: arrivals
}

// New prepares an enactor. With JobGrouping set, the workflow is first
// rewritten by AutoGroup; the original workflow is not modified.
func New(eng *sim.Engine, wf *workflow.Workflow, opts Options) (*Enactor, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	if opts.JobGrouping {
		grouped, err := AutoGroup(wf)
		if err != nil {
			return nil, err
		}
		wf = grouped
	}
	if !opts.ServiceParallelism && wf.HasCycle() {
		return nil, fmt.Errorf("core: workflow %s has loops, which require service parallelism (streaming)", wf.Name)
	}
	e := &Enactor{
		eng:     eng,
		wf:      wf,
		opts:    opts,
		tracker: provenance.NewTracker(),
		procs:   make(map[string]*procState),
		trace:   &Trace{},
	}
	for _, p := range wf.Processors() {
		st := &procState{p: p, open: true}
		if p.Kind == workflow.KindService && !p.Synchronization {
			st.strat = iterstrat.Clone(wf.EffectiveStrategy(p))
		}
		if p.Synchronization {
			st.syncBuf = make(map[string][]*provenance.Item)
		}
		e.procs[p.Name] = st
		e.order = append(e.order, p.Name)
	}
	return e, nil
}

// Workflow returns the workflow actually executed (after grouping).
func (e *Enactor) Workflow() *workflow.Workflow { return e.wf }

// cap returns the admission limit of a processor.
func (e *Enactor) cap() int {
	if !e.opts.DataParallelism {
		return 1
	}
	if e.opts.MaxConcurrent > 0 {
		return e.opts.MaxConcurrent
	}
	return int(^uint(0) >> 1)
}

// Run executes the workflow on the inputs (source name → item values) and
// blocks, in wall time, until the virtual execution completes. It steps
// the engine itself; the caller must not run the engine concurrently.
func (e *Enactor) Run(inputs map[string][]string) (*Result, error) {
	for _, src := range e.wf.Sources() {
		if _, ok := inputs[src.Name]; !ok {
			return nil, fmt.Errorf("core: no input data for source %s", src.Name)
		}
	}
	if counts, err := e.wf.ExpectedCounts(countsOf(inputs)); err == nil {
		e.expected = counts
	} else if !e.opts.ServiceParallelism {
		return nil, fmt.Errorf("core: barrier execution needs static invocation counts: %w", err)
	}
	e.applyGates()

	// Data sources deliver their items sequentially at t=0 (Sec. 2.2).
	for _, src := range e.wf.Sources() {
		st := e.procs[src.Name]
		for i, v := range inputs[src.Name] {
			item := e.tracker.Source(src.Name, i, v)
			e.deliver(src.Name, workflow.SourcePort, item)
		}
		st.finished = len(inputs[src.Name])
	}
	e.applyGates()
	e.pump()
	e.checkQuiescence()

	for !e.done && e.failure == nil && e.eng.Step() {
	}
	if e.failure != nil {
		return nil, e.failure
	}
	if !e.done {
		return nil, fmt.Errorf("%w: %s", ErrStalled, e.diagnose())
	}
	return e.result(), nil
}

func countsOf(inputs map[string][]string) map[string]int {
	out := make(map[string]int, len(inputs))
	for k, v := range inputs {
		out[k] = len(v)
	}
	return out
}

// deliver routes one item emitted on proc:port to every consumer.
func (e *Enactor) deliver(proc, port string, item *provenance.Item) {
	for _, l := range e.wf.Outgoing(proc) {
		if l.FromPort != port {
			continue
		}
		dst := e.procs[l.ToProc]
		switch {
		case dst.p.Kind == workflow.KindSink:
			dst.collected = append(dst.collected, item)
		case dst.p.Synchronization:
			dst.syncBuf[l.ToPort] = append(dst.syncBuf[l.ToPort], item)
		default:
			for _, tup := range dst.strat.Offer(l.ToPort, item) {
				dst.queue = append(dst.queue, readyTuple{tup, e.eng.Now()})
				e.active++
			}
		}
	}
}

// applyGates recomputes admission gates. With service parallelism the gate
// is only closed by coordination constraints; without it, a processor also
// waits for all its direct data predecessors to drain (batch semantics).
func (e *Enactor) applyGates() {
	for _, name := range e.order {
		st := e.procs[name]
		if st.p.Kind != workflow.KindService {
			continue
		}
		open := true
		for _, c := range e.wf.Constraints {
			if c.After == name && !e.drained(c.Before) {
				open = false
			}
		}
		if !e.opts.ServiceParallelism {
			for _, pred := range e.wf.Predecessors(name) {
				if !e.drained(pred) {
					open = false
				}
			}
		}
		st.open = open
	}
}

// drained reports whether a processor has completed its whole input set.
// It needs static counts; sources are drained once delivered.
func (e *Enactor) drained(name string) bool {
	st := e.procs[name]
	if st.p.Kind == workflow.KindSource {
		return st.finished > 0 || e.expectedOf(name) == 0
	}
	if st.inFlight > 0 || len(st.queue) > 0 {
		return false
	}
	return st.finished >= e.expectedOf(name)
}

func (e *Enactor) expectedOf(name string) int {
	if e.expected == nil {
		return int(^uint(0) >> 1) // unknown: never drained statically
	}
	return e.expected[name]
}

// pump admits queued tuples wherever gates and caps allow.
func (e *Enactor) pump() {
	for _, name := range e.order {
		st := e.procs[name]
		for st.open && len(st.queue) > 0 && st.inFlight < e.cap() {
			if batch := e.batchSize(st); batch > 1 {
				if len(st.queue) < batch && e.opts.DataGroupWindow > 0 && !st.flushForced {
					// Under-filled batch: hold the queue briefly so more
					// items can join, then submit whatever accumulated.
					if st.flush == nil {
						st.flush = e.eng.Schedule(e.opts.DataGroupWindow, func() {
							st.flush = nil
							st.flushForced = true
							e.pump()
							st.flushForced = false
							e.checkQuiescence()
						})
					}
					break
				}
				n := batch
				if n > len(st.queue) {
					n = len(st.queue)
				}
				rts := append([]readyTuple(nil), st.queue[:n]...)
				st.queue = st.queue[n:]
				if st.flush != nil {
					st.flush.Cancel()
					st.flush = nil
				}
				e.invokeBatch(st, rts)
				continue
			}
			rt := st.queue[0]
			st.queue = st.queue[1:]
			e.invoke(st, rt)
		}
	}
}

// batchSize returns how many ready tuples of this processor may share one
// grid job: data grouping applies to wrapper-backed processors under data
// parallelism (batching a serialized service would only reorder work).
func (e *Enactor) batchSize(st *procState) int {
	if e.opts.DataGroupSize <= 1 || !e.opts.DataParallelism {
		return 1
	}
	if _, ok := st.p.Service.(*services.Wrapper); !ok {
		return 1
	}
	return e.opts.DataGroupSize
}

// invokeBatch starts one grid job covering several invocations.
func (e *Enactor) invokeBatch(st *procState, rts []readyTuple) {
	st.inFlight += len(rts)
	reqs := make([]services.Request, len(rts))
	invs := make([]*Invocation, len(rts))
	inputSets := make([][]*provenance.Item, len(rts))
	for i, rt := range rts {
		inv := &Invocation{
			Processor: st.p.Name,
			Index:     rt.tuple.Index,
			Ready:     rt.ready,
			Started:   e.eng.Now(),
		}
		e.trace.Invocations = append(e.trace.Invocations, inv)
		invs[i] = inv
		reqs[i], inputSets[i] = e.buildRequest(st, rt)
	}
	st.p.Service.(*services.Wrapper).InvokeBatch(reqs, func(resps []services.Response) {
		for i, resp := range resps {
			e.complete(st, invs[i], inputSets[i], resp)
		}
	})
}

// invoke starts one service invocation for a completed tuple.
func (e *Enactor) invoke(st *procState, rt readyTuple) {
	st.inFlight++
	inv := &Invocation{
		Processor: st.p.Name,
		Index:     rt.tuple.Index,
		Ready:     rt.ready,
		Started:   e.eng.Now(),
	}
	e.trace.Invocations = append(e.trace.Invocations, inv)
	req, inputItems := e.buildRequest(st, rt)
	st.p.Service.Invoke(req, func(resp services.Response) {
		e.complete(st, inv, inputItems, resp)
	})
}

// buildRequest assembles the service request for one tuple: port values in
// deterministic order plus the processor's constant bindings.
func (e *Enactor) buildRequest(st *procState, rt readyTuple) (services.Request, []*provenance.Item) {
	req := services.Request{Index: rt.tuple.Index, Inputs: make(map[string]string)}
	ports := make([]string, 0, len(rt.tuple.Items))
	for port := range rt.tuple.Items {
		ports = append(ports, port)
	}
	sort.Strings(ports)
	inputItems := make([]*provenance.Item, 0, len(ports))
	for _, port := range ports {
		item := rt.tuple.Items[port]
		req.Inputs[port] = item.Value
		inputItems = append(inputItems, item)
	}
	for k, v := range st.p.Constants {
		req.Inputs[k] = v
	}
	return req, inputItems
}

// complete finishes one invocation: trace, output delivery, gate updates,
// and quiescence detection.
func (e *Enactor) complete(st *procState, inv *Invocation, inputs []*provenance.Item, resp services.Response) {
	st.inFlight--
	st.finished++
	e.active--
	inv.Finished = e.eng.Now()
	inv.Jobs = resp.Jobs
	inv.Err = resp.Err
	if resp.Err != nil && e.failure == nil {
		e.failure = fmt.Errorf("core: processor %s: %w", st.p.Name, resp.Err)
		return
	}
	for _, port := range st.p.OutPorts {
		v, emitted := resp.Outputs[port]
		if !emitted {
			continue // conditional output (Fig. 2 loops)
		}
		item := e.tracker.Derive(st.p.Name, port, v, inv.Index, inputs...)
		e.deliver(st.p.Name, port, item)
	}
	e.applyGates()
	e.pump()
	e.checkQuiescence()
}

// checkQuiescence fires synchronization processors once all their
// ancestors are inactive (Sec. 4.2: "it must be enacted once every of its
// ancestors is inactive"), and declares the run complete when nothing is
// left to do.
func (e *Enactor) checkQuiescence() {
	if e.done || e.failure != nil || e.active > 0 {
		return
	}
	fired := false
	for _, name := range e.order {
		st := e.procs[name]
		if !st.p.Synchronization || st.syncFired {
			continue
		}
		// A sync processor whose ancestors include a sync processor that
		// has not fired *and completed* waits for the inner barrier first.
		blocked := false
		for anc := range e.wf.Ancestors(name) {
			if a := e.procs[anc]; a.p.Synchronization && (!a.syncFired || a.inFlight > 0) {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		e.fireSync(st)
		fired = true
	}
	if fired {
		e.pump()
		return
	}
	e.done = true
	e.finish = e.eng.Now()
}

// fireSync invokes a synchronization processor once, with the complete
// per-port item lists.
func (e *Enactor) fireSync(st *procState) {
	st.syncFired = true
	st.inFlight++
	e.active++
	inv := &Invocation{
		Processor: st.p.Name,
		Index:     []int{0},
		Sync:      true,
		Ready:     e.eng.Now(),
		Started:   e.eng.Now(),
	}
	e.trace.Invocations = append(e.trace.Invocations, inv)

	req := services.Request{
		Index:  []int{0},
		Inputs: make(map[string]string),
		Lists:  make(map[string][]string),
	}
	var inputs []*provenance.Item
	for _, port := range st.p.InPorts {
		items := st.syncBuf[port]
		vals := make([]string, len(items))
		for i, it := range items {
			vals[i] = it.Value
		}
		req.Lists[port] = vals
		if len(items) > 0 {
			req.Inputs[port] = items[0].Value // convenience binding
		}
		inputs = append(inputs, items...)
	}
	for k, v := range st.p.Constants {
		req.Inputs[k] = v
	}
	st.p.Service.Invoke(req, func(resp services.Response) {
		e.complete(st, inv, inputs, resp)
	})
}

// diagnose describes why execution stalled.
func (e *Enactor) diagnose() string {
	for _, name := range e.order {
		st := e.procs[name]
		if len(st.queue) > 0 || st.inFlight > 0 {
			return fmt.Sprintf("processor %s has %d queued tuples and %d in-flight invocations (gate open: %v)",
				name, len(st.queue), st.inFlight, st.open)
		}
	}
	return "no pending work but completion was not detected"
}

// result assembles the Result after completion.
func (e *Enactor) result() *Result {
	r := &Result{
		Makespan: time.Duration(e.finish),
		Options:  e.opts,
		Outputs:  make(map[string][]string),
		Items:    make(map[string][]*provenance.Item),
		Trace:    e.trace,
	}
	for _, sink := range e.wf.Sinks() {
		st := e.procs[sink.Name]
		items := append([]*provenance.Item(nil), st.collected...)
		sort.Slice(items, func(i, j int) bool {
			ki, kj := items[i].Key(), items[j].Key()
			if ki != kj {
				return ki < kj
			}
			return items[i].Value < items[j].Value
		})
		vals := make([]string, len(items))
		for i, it := range items {
			vals[i] = it.Value
		}
		r.Outputs[sink.Name] = vals
		r.Items[sink.Name] = items
	}
	return r
}
