// Package core implements MOTEUR, the paper's optimized service-based
// workflow enactor (Sec. 3–4): it executes a workflow over an input data
// set, exploiting every applicable level of parallelism —
//
//   - workflow parallelism (always on): independent branches of the graph
//     progress concurrently;
//   - data parallelism (DP): a service processes several data items
//     concurrently on distinct grid resources;
//   - service parallelism (SP): different services process different data
//     items concurrently (pipelining); with SP off, execution is
//     batch-synchronized per stage, as in pre-streaming enactors;
//   - job grouping (JG): sequential wrapper-backed processors are fused
//     into single grid jobs (see AutoGroup).
//
// The enactor runs inside the discrete-event simulation: service calls are
// asynchronous (Sec. 3.1) and completions arrive as events in virtual
// time, so runs are deterministic per seed and a full-scale experiment
// executes in milliseconds of wall time.
//
// The control loop is dirty-set driven (see DESIGN.md): a completion
// re-evaluates only the gates and queues of the processors whose state it
// could have changed — the finishing processor itself, the consumers it
// delivered to, and (once it drains) its successors and constraint
// dependents — instead of sweeping the whole graph after every event. All
// graph queries go through a workflow.Topology built once at construction.
package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/arena"
	"repro/internal/iterstrat"
	"repro/internal/provenance"
	"repro/internal/services"
	"repro/internal/sim"
	"repro/internal/workflow"
)

// Options selects the optimization levels for one execution.
type Options struct {
	// DataParallelism allows a service to run many invocations at once.
	DataParallelism bool
	// ServiceParallelism streams items between services as they are
	// produced. When false, a processor may not start until every direct
	// predecessor has finished its complete input set.
	ServiceParallelism bool
	// JobGrouping fuses eligible sequential wrapper chains (AutoGroup)
	// before execution.
	JobGrouping bool
	// MaxConcurrent caps concurrent invocations per service when
	// DataParallelism is on (0 = unlimited).
	MaxConcurrent int
	// DataGroupSize batches up to this many ready invocations of one
	// wrapper-backed service into a single grid job (0 or 1 disables).
	// This is the paper's future-work optimization (Sec. 5.4): "grouping
	// jobs of a single service, thus finding a trade-off between data
	// parallelism and the system's overhead". Larger batches pay fewer
	// per-job overheads but expose less data parallelism; the ablation
	// benchmarks sweep the trade-off.
	DataGroupSize int
	// DataGroupWindow is how long an under-filled batch waits for more
	// items before submitting anyway. Zero batches only simultaneously
	// ready items, which under streaming (service parallelism) catches
	// little beyond the first stage; a window of a fraction of the grid
	// overhead lets downstream services accumulate batches too.
	DataGroupWindow time.Duration
}

// String names the configuration the way the paper does (NOP, DP, SP, JG
// and their combinations).
func (o Options) String() string {
	s := ""
	if o.ServiceParallelism {
		s += "SP+"
	}
	if o.DataParallelism {
		s += "DP+"
	}
	if o.JobGrouping {
		s += "JG+"
	}
	if s == "" {
		return "NOP"
	}
	return s[:len(s)-1]
}

// ErrStalled reports an execution that stopped making progress before
// completing: typically a cyclic workflow run without service parallelism,
// or a conditional output starving a barrier.
var ErrStalled = errors.New("core: workflow execution stalled")

// Enactor executes one workflow on one engine. Create a fresh Enactor per
// execution.
type Enactor struct {
	eng  *sim.Engine
	wf   *workflow.Workflow
	topo *workflow.Topology
	opts Options

	tracker *provenance.Tracker
	procs   map[string]*procState
	states  []*procState // insertion order; procState.index indexes this
	trace   *Trace

	capLimit int // admission cap per processor, from opts
	active   int // queued tuples + in-flight invocations
	done     bool
	failure  error
	start    sim.Time // virtual instant Start was called
	finish   sim.Time

	// Asynchronous completion (Start): notify fires exactly once when the
	// run completes or fails; notified guards against late completions of
	// in-flight invocations after a failure was already reported.
	started  bool
	notify   func(*Result, error)
	notified bool

	// dirty holds the indices of processors whose gate or queue must be
	// re-evaluated at the next flush; procState.dirty guards duplicates,
	// flushing guards reentrancy (a service completing synchronously would
	// otherwise re-enter flushDirty from inside pumpProc).
	dirty    []int
	flushing bool
	syncs    []*procState // synchronization processors, insertion order

	invs     arena.Chunked[Invocation]       // trace entries
	items    arena.Chunked[*provenance.Item] // invocation input sets
	freeMaps []map[string]string             // recycled request-input maps
}

type readyTuple struct {
	tuple iterstrat.Tuple
	// single, when non-nil, is the whole input set: the tuple came through
	// the single-port fast path and carries no Items map.
	single *provenance.Item
	ready  sim.Time
}

// tupleQueue is a FIFO of ready tuples backed by a reusable slice: pops
// advance a head index instead of re-slicing, and the buffer is compacted
// once the dead prefix dominates, so steady-state queue churn allocates
// nothing.
type tupleQueue struct {
	buf  []readyTuple
	head int
}

func (q *tupleQueue) len() int { return len(q.buf) - q.head }

func (q *tupleQueue) push(rt readyTuple) { q.buf = append(q.buf, rt) }

// pop removes and returns the front tuple. Popped slots are not zeroed:
// everything a tuple references (items, index vectors) stays reachable
// through the provenance tracker and trace for the rest of the run anyway,
// and the slot is overwritten on reuse.
func (q *tupleQueue) pop() readyTuple {
	rt := q.buf[q.head]
	q.head++
	q.maybeReset()
	return rt
}

// window returns the next n tuples without popping them; the view is
// invalidated by the next queue operation.
func (q *tupleQueue) window(n int) []readyTuple { return q.buf[q.head : q.head+n] }

// discard pops the next n tuples (previously read through window).
func (q *tupleQueue) discard(n int) {
	q.head += n
	q.maybeReset()
}

func (q *tupleQueue) maybeReset() {
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	} else if q.head > 64 && q.head > len(q.buf)/2 {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
}

// route is one precomputed delivery edge: where items emitted on an output
// port go.
type route struct {
	dst    *procState
	toPort string
}

type procState struct {
	p     *workflow.Processor
	index int                // position in Enactor.states (insertion order)
	strat iterstrat.Strategy // private clone; nil for sources, sinks, sync

	queue    tupleQueue
	inFlight int
	finished int
	expected int  // static invocation count; math.MaxInt when unknown
	open     bool // admission allowed (barrier/constraint gate)
	dirty    bool // queued in Enactor.dirty

	// Precomputed topology views (built once in New):
	routes            map[string][]route // out port → consumers, link order
	ports             []string           // input ports, sorted (request order)
	constraintBefores []*procState       // Before of each constraint gating this proc
	allPreds          []*procState       // distinct data+constraint predecessors
	downstream        []*procState       // distinct successors + constraint dependents
	syncAncestors     []*procState       // synchronization processors among ancestors
	batchCap          int                // data-grouping batch size (1 = no batching)
	wrapper           *services.Wrapper  // non-nil for wrapper-backed services
	fastPort          string             // single-port fast path: the one input port
	fastSingle        bool               // strategy is a bare leaf; bypass Offer

	syncFired   bool
	syncBuf     map[string][]*provenance.Item // sync procs: per-port arrivals
	flush       *sim.Event                    // pending batch-window flush
	flushForced bool                          // window expired: submit short batches

	collected []*provenance.Item // sinks: arrivals
}

// New prepares an enactor. With JobGrouping set, the workflow is first
// rewritten by AutoGroup; the original workflow is not modified.
func New(eng *sim.Engine, wf *workflow.Workflow, opts Options) (*Enactor, error) {
	if err := wf.Validate(); err != nil {
		return nil, err
	}
	if opts.JobGrouping {
		grouped, err := AutoGroup(wf)
		if err != nil {
			return nil, err
		}
		wf = grouped
	}
	if !opts.ServiceParallelism && wf.HasCycle() {
		return nil, fmt.Errorf("core: workflow %s has loops, which require service parallelism (streaming)", wf.Name)
	}
	e := &Enactor{
		eng:      eng,
		wf:       wf,
		topo:     wf.Topology(),
		opts:     opts,
		tracker:  provenance.NewTracker(),
		procs:    make(map[string]*procState),
		trace:    &Trace{},
		capLimit: admissionCap(opts),
	}
	for i, p := range wf.Processors() {
		st := &procState{p: p, index: i, open: true, expected: math.MaxInt, batchCap: 1}
		if p.Kind == workflow.KindService && !p.Synchronization {
			st.strat = iterstrat.Clone(wf.EffectiveStrategy(p))
			// A bare single-port leaf is a stateless pass-through: deliver
			// can turn the item into a ready tuple without the Offer
			// machinery (and without a per-tuple map).
			if port, ok := iterstrat.SinglePort(st.strat); ok {
				st.fastPort, st.fastSingle = port, true
			}
		}
		if p.Synchronization {
			st.syncBuf = make(map[string][]*provenance.Item)
			e.syncs = append(e.syncs, st)
		}
		st.ports = append([]string(nil), p.InPorts...)
		sort.Strings(st.ports)
		if w, ok := p.Service.(*services.Wrapper); ok {
			st.wrapper = w
			if opts.DataGroupSize > 1 && opts.DataParallelism {
				st.batchCap = opts.DataGroupSize
			}
		}
		e.procs[p.Name] = st
		e.states = append(e.states, st)
	}
	// Second pass: resolve the topology views to direct state pointers so
	// the hot path never touches a map or rescans links.
	for _, st := range e.states {
		name := st.p.Name
		for _, l := range e.topo.Outgoing(name) {
			if st.routes == nil {
				st.routes = make(map[string][]route)
			}
			st.routes[l.FromPort] = append(st.routes[l.FromPort], route{e.procs[l.ToProc], l.ToPort})
		}
		for _, c := range e.topo.ConstraintsAfter(name) {
			st.constraintBefores = append(st.constraintBefores, e.procs[c.Before])
		}
		for _, pn := range e.topo.Predecessors(name) {
			st.allPreds = append(st.allPreds, e.procs[pn])
		}
		for _, sn := range e.topo.Successors(name) {
			st.downstream = append(st.downstream, e.procs[sn])
		}
		if st.p.Synchronization {
			// Ancestors returns a set; iterate it in sorted order so the
			// syncAncestors slice is identical across runs even if a
			// future consumer becomes order-sensitive.
			ancs := make([]string, 0, len(e.topo.Ancestors(name)))
			//moteur:orderinvariant keys are sorted immediately after collection
			for anc := range e.topo.Ancestors(name) {
				ancs = append(ancs, anc)
			}
			sort.Strings(ancs)
			for _, anc := range ancs {
				if a := e.procs[anc]; a.p.Synchronization {
					st.syncAncestors = append(st.syncAncestors, a)
				}
			}
		}
	}
	return e, nil
}

func admissionCap(opts Options) int {
	if !opts.DataParallelism {
		return 1
	}
	if opts.MaxConcurrent > 0 {
		return opts.MaxConcurrent
	}
	return math.MaxInt
}

// Workflow returns the workflow actually executed (after grouping).
func (e *Enactor) Workflow() *workflow.Workflow { return e.wf }

// Options returns the enactor's current options, reflecting any mid-run
// SetDataGroupSize retuning.
func (e *Enactor) Options() Options { return e.opts }

// SetDataGroupSize retunes the per-service batching cap mid-run — the
// adaptive-granularity knob (Sec. 5.5: "an optimal strategy to adapt the
// jobs' granularity to the grid load"). Already-submitted batches are
// unaffected; tuples admitted from now on are batched up to k per grid
// job. As at construction, batching applies only to wrapper-backed
// services and requires data parallelism; k < 1 is treated as 1 (batching
// off). Safe to call at any time, including from a scheduled event while
// the run is in flight.
func (e *Enactor) SetDataGroupSize(k int) {
	if k < 1 {
		k = 1
	}
	e.opts.DataGroupSize = k
	cap := 1
	if k > 1 && e.opts.DataParallelism {
		cap = k
	}
	changed := false
	for _, st := range e.states {
		if st.wrapper == nil || st.batchCap == cap {
			continue
		}
		st.batchCap = cap
		e.markDirty(st)
		changed = true
	}
	// Before Start there is nothing to pump (and Start re-evaluates every
	// gate anyway); mid-run, queued tuples must be re-examined under the
	// new cap.
	if changed && e.started {
		e.flushDirty()
		e.checkQuiescence()
	}
}

// Progress reports how many service invocations have finished and how many
// the whole execution statically expects. known is false when the expected
// counts could not be derived (dynamic executions under service
// parallelism), in which case expected is meaningless.
func (e *Enactor) Progress() (finished, expected int, known bool) {
	known = e.started
	for _, st := range e.states {
		if st.p.Kind != workflow.KindService {
			continue
		}
		finished += st.finished
		if st.expected == math.MaxInt {
			known = false
			continue
		}
		expected += st.expected
	}
	return finished, expected, known
}

// Run executes the workflow on the inputs (source name → item values) and
// blocks, in wall time, until the virtual execution completes. It steps
// the engine itself; the caller must not run the engine concurrently.
func (e *Enactor) Run(inputs map[string][]string) (*Result, error) {
	var (
		res      *Result
		runErr   error
		finished bool
	)
	if err := e.Start(inputs, func(r *Result, err error) {
		res, runErr, finished = r, err, true
	}); err != nil {
		return nil, err
	}
	for !finished && e.eng.Step() {
	}
	if !finished {
		return nil, fmt.Errorf("%w: %s", ErrStalled, e.diagnose())
	}
	return res, runErr
}

// Start begins executing the workflow on the inputs without stepping the
// engine: source items are delivered at the current virtual instant and
// done fires exactly once, in virtual time, when the execution completes
// (with its Result) or fails. The caller drives the shared engine — this
// is how several enactors run concurrently on one grid (see
// internal/campaign). The returned error covers synchronous validation
// problems only; note that a trivially empty execution may complete (and
// invoke done) before Start returns.
func (e *Enactor) Start(inputs map[string][]string, done func(*Result, error)) error {
	if done == nil {
		return errors.New("core: Start with nil completion callback")
	}
	if e.started {
		return errors.New("core: enactor already started (create a fresh Enactor per execution)")
	}
	for _, src := range e.wf.Sources() {
		if _, ok := inputs[src.Name]; !ok {
			return fmt.Errorf("core: no input data for source %s", src.Name)
		}
	}
	if counts, err := e.wf.ExpectedCounts(countsOf(inputs)); err == nil {
		total := 0
		for _, st := range e.states {
			st.expected = counts[st.p.Name]
			if st.p.Kind == workflow.KindService {
				total += st.expected
			}
		}
		// The trace will hold one entry per invocation; reserving it up
		// front avoids repeatedly regrowing (and rescanning) a large
		// pointer slice.
		e.trace.Invocations = make([]*Invocation, 0, total)
	} else if !e.opts.ServiceParallelism {
		return fmt.Errorf("core: barrier execution needs static invocation counts: %w", err)
	}
	e.started = true
	e.notify = done
	e.start = e.eng.Now()

	// Data sources deliver their items sequentially at the start instant
	// (Sec. 2.2; t=0 for a solo Run).
	for _, src := range e.wf.Sources() {
		st := e.procs[src.Name]
		for i, v := range inputs[src.Name] {
			item := e.tracker.Source(src.Name, i, v)
			e.deliver(st, workflow.SourcePort, item)
		}
		st.finished = len(inputs[src.Name])
	}
	// Every gate and queue gets one full evaluation to start; after this,
	// only dirty processors are revisited.
	for _, st := range e.states {
		e.markDirty(st)
	}
	e.flushDirty()
	e.checkQuiescence()
	return nil
}

// finishNotify delivers the terminal outcome to the Start callback, once.
func (e *Enactor) finishNotify() {
	if e.notified || e.notify == nil {
		return
	}
	if e.failure != nil {
		e.notified = true
		e.notify(nil, e.failure)
		return
	}
	if e.done {
		e.notified = true
		e.notify(e.result(), nil)
	}
}

func countsOf(inputs map[string][]string) map[string]int {
	out := make(map[string]int, len(inputs))
	//moteur:orderinvariant map-to-map rebuild keyed by the same keys, no order leak
	for k, v := range inputs {
		out[k] = len(v)
	}
	return out
}

// deliver routes one item emitted on st's output port to every consumer,
// via the precomputed routing table.
func (e *Enactor) deliver(st *procState, port string, item *provenance.Item) {
	for _, r := range st.routes[port] {
		dst := r.dst
		switch {
		case dst.p.Kind == workflow.KindSink:
			dst.collected = append(dst.collected, item)
		case dst.p.Synchronization:
			dst.syncBuf[r.toPort] = append(dst.syncBuf[r.toPort], item)
		case dst.fastSingle:
			// Exactly what a leaf Offer would emit: one tuple keyed by the
			// item's own index.
			dst.queue.push(readyTuple{
				tuple:  iterstrat.Tuple{Index: item.Index},
				single: item,
				ready:  e.eng.Now(),
			})
			e.active++
			e.markDirty(dst)
		default:
			tuples := dst.strat.Offer(r.toPort, item)
			if len(tuples) == 0 {
				continue
			}
			now := e.eng.Now()
			for _, tup := range tuples {
				dst.queue.push(readyTuple{tuple: tup, ready: now})
				e.active++
			}
			e.markDirty(dst)
		}
	}
}

// markDirty queues a processor for gate/queue re-evaluation at the next
// flushDirty.
func (e *Enactor) markDirty(st *procState) {
	if !st.dirty {
		st.dirty = true
		e.dirty = append(e.dirty, st.index)
	}
}

// flushDirty re-evaluates the admission gate and pumps the queue of every
// dirty processor, in workflow insertion order — the same order the
// previous full-sweep implementation used, so admission sequences (and
// with them event ordering and traces) are unchanged. Processors that are
// not dirty cannot have admissible work: their queues, gates, and
// capacity are untouched since their last evaluation.
func (e *Enactor) flushDirty() {
	if e.flushing || len(e.dirty) == 0 {
		return
	}
	e.flushing = true
	// Marks appended mid-flush (by a service whose done callback runs
	// synchronously inside pumpProc) extend the loop: each chunk is sorted
	// and processed, then any newly appended chunk follows.
	for pos := 0; pos < len(e.dirty); {
		sort.Ints(e.dirty[pos:])
		end := len(e.dirty)
		for ; pos < end; pos++ {
			st := e.states[e.dirty[pos]]
			st.dirty = false
			if st.p.Kind == workflow.KindService {
				st.open = e.gateOpen(st)
			}
			e.pumpProc(st)
		}
	}
	e.dirty = e.dirty[:0]
	e.flushing = false
}

// gateOpen recomputes one admission gate. With service parallelism the
// gate is only closed by coordination constraints; without it, a processor
// also waits for all its direct predecessors to drain (batch semantics).
func (e *Enactor) gateOpen(st *procState) bool {
	for _, b := range st.constraintBefores {
		if !e.drained(b) {
			return false
		}
	}
	if !e.opts.ServiceParallelism {
		for _, pred := range st.allPreds {
			if !e.drained(pred) {
				return false
			}
		}
	}
	return true
}

// drained reports whether a processor has completed its whole input set.
// It needs static counts; sources are drained once delivered.
func (e *Enactor) drained(st *procState) bool {
	if st.p.Kind == workflow.KindSource {
		return st.finished > 0 || st.expected == 0
	}
	if st.inFlight > 0 || st.queue.len() > 0 {
		return false
	}
	return st.finished >= st.expected
}

// pumpProc admits the processor's queued tuples wherever its gate and cap
// allow.
func (e *Enactor) pumpProc(st *procState) {
	if e.failure != nil {
		// Dead executions admit nothing: complete() already stops output
		// delivery, but a pending DataGroupWindow flush timer can still
		// reach here after the failure and must not submit held batches.
		return
	}
	for st.open && st.queue.len() > 0 && st.inFlight < e.capLimit {
		if batch := st.batchCap; batch > 1 {
			if st.queue.len() < batch && e.opts.DataGroupWindow > 0 && !st.flushForced {
				// Under-filled batch: hold the queue briefly so more
				// items can join, then submit whatever accumulated.
				if st.flush == nil {
					st.flush = e.eng.Schedule(e.opts.DataGroupWindow, func() {
						st.flush = nil
						st.flushForced = true
						e.markDirty(st)
						e.flushDirty()
						st.flushForced = false
						e.checkQuiescence()
					})
				}
				break
			}
			n := batch
			if n > st.queue.len() {
				n = st.queue.len()
			}
			if st.flush != nil {
				st.flush.Cancel()
				st.flush = nil
			}
			e.invokeBatch(st, n)
			continue
		}
		rt := st.queue.pop()
		e.invoke(st, rt)
	}
}

// newInvocation allocates a trace entry from the chunked arena.
func (e *Enactor) newInvocation() *Invocation { return e.invs.New() }

// invokeBatch starts one grid job covering the next n queued invocations.
func (e *Enactor) invokeBatch(st *procState, n int) {
	rts := st.queue.window(n)
	st.inFlight += n
	reqs := make([]services.Request, n)
	invs := make([]*Invocation, n)
	inputSets := make([][]*provenance.Item, n)
	now := e.eng.Now()
	for i, rt := range rts {
		inv := e.newInvocation()
		inv.Processor = st.p.Name
		inv.Index = rt.tuple.Index
		inv.Ready = rt.ready
		inv.Started = now
		e.trace.Invocations = append(e.trace.Invocations, inv)
		invs[i] = inv
		reqs[i], inputSets[i] = e.buildRequest(st, rt)
	}
	st.queue.discard(n)
	st.wrapper.InvokeBatch(reqs, func(resps []services.Response) {
		for i, resp := range resps {
			e.complete(st, invs[i], inputSets[i], resp)
			e.releaseInputs(reqs[i].Inputs)
		}
	})
}

// invoke starts one service invocation for a completed tuple.
func (e *Enactor) invoke(st *procState, rt readyTuple) {
	st.inFlight++
	inv := e.newInvocation()
	inv.Processor = st.p.Name
	inv.Index = rt.tuple.Index
	inv.Ready = rt.ready
	inv.Started = e.eng.Now()
	e.trace.Invocations = append(e.trace.Invocations, inv)
	req, inputItems := e.buildRequest(st, rt)
	st.p.Service.Invoke(req, func(resp services.Response) {
		e.complete(st, inv, inputItems, resp)
		// Services must not retain req.Inputs past their completion
		// callback (they consume the bindings at submit/run time), so the
		// map can be recycled for a later invocation.
		e.releaseInputs(req.Inputs)
	})
}

// newInputs pops a recycled request-input map or allocates one.
func (e *Enactor) newInputs(size int) map[string]string {
	if n := len(e.freeMaps); n > 0 {
		m := e.freeMaps[n-1]
		e.freeMaps[n-1] = nil
		e.freeMaps = e.freeMaps[:n-1]
		return m
	}
	return make(map[string]string, size)
}

func (e *Enactor) releaseInputs(m map[string]string) {
	clear(m)
	e.freeMaps = append(e.freeMaps, m)
}

// buildRequest assembles the service request for one tuple: port values in
// the precomputed deterministic port order plus the processor's constant
// bindings.
func (e *Enactor) buildRequest(st *procState, rt readyTuple) (services.Request, []*provenance.Item) {
	req := services.Request{Index: rt.tuple.Index, Inputs: e.newInputs(len(st.ports) + len(st.p.Constants))}
	var inputItems []*provenance.Item
	if rt.single != nil {
		req.Inputs[st.fastPort] = rt.single.Value
		inputItems = e.items.Slice(1)
		inputItems[0] = rt.single
	} else {
		inputItems = e.items.Slice(len(st.ports))
		for i, port := range st.ports {
			item := rt.tuple.Items[port]
			req.Inputs[port] = item.Value
			inputItems[i] = item
		}
	}
	//moteur:orderinvariant distinct constant keys write disjoint map slots, no order leak
	for k, v := range st.p.Constants {
		req.Inputs[k] = v
	}
	return req, inputItems
}

// complete finishes one invocation: trace, output delivery, dirty-set
// propagation, and quiescence detection.
func (e *Enactor) complete(st *procState, inv *Invocation, inputs []*provenance.Item, resp services.Response) {
	st.inFlight--
	st.finished++
	e.active--
	inv.Finished = e.eng.Now()
	inv.Jobs = resp.Jobs
	inv.Err = resp.Err
	if resp.Err != nil && e.failure == nil {
		e.failure = fmt.Errorf("core: processor %s: %w", st.p.Name, resp.Err)
		e.finishNotify()
		return
	}
	if e.failure != nil {
		// The run already failed; in-flight invocations still drain (their
		// completions arrive as events on a possibly shared engine), but
		// their outputs must not propagate — delivering would pump fresh
		// invocations and keep a dead execution submitting jobs that
		// contend with live ones.
		return
	}
	for _, port := range st.p.OutPorts {
		v, emitted := resp.Outputs[port]
		if !emitted {
			continue // conditional output (Fig. 2 loops)
		}
		item := e.tracker.Derive(st.p.Name, port, v, inv.Index, inputs...)
		e.deliver(st, port, item)
	}
	// The finishing processor freed a capacity slot; if it just drained,
	// the gates of its successors and constraint dependents may now open.
	e.markDirty(st)
	if e.drained(st) {
		for _, d := range st.downstream {
			e.markDirty(d)
		}
	}
	e.flushDirty()
	e.checkQuiescence()
}

// checkQuiescence fires synchronization processors once all their
// ancestors are inactive (Sec. 4.2: "it must be enacted once every of its
// ancestors is inactive"), and declares the run complete when nothing is
// left to do.
func (e *Enactor) checkQuiescence() {
	// An enactor that has not started has no work by construction; without
	// the guard, a pre-Start SetDataGroupSize would declare the run done
	// (or fire sync processors on empty inputs) before any input arrives.
	if !e.started || e.done || e.failure != nil || e.active > 0 {
		return
	}
	fired := false
	for _, st := range e.syncs {
		if st.syncFired {
			continue
		}
		// A sync processor whose ancestors include a sync processor that
		// has not fired *and completed* waits for the inner barrier first.
		blocked := false
		for _, a := range st.syncAncestors {
			if !a.syncFired || a.inFlight > 0 {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		e.fireSync(st)
		fired = true
	}
	if fired {
		return
	}
	e.done = true
	e.finish = e.eng.Now()
	e.finishNotify()
}

// fireSync invokes a synchronization processor once, with the complete
// per-port item lists.
func (e *Enactor) fireSync(st *procState) {
	st.syncFired = true
	st.inFlight++
	e.active++
	inv := e.newInvocation()
	inv.Processor = st.p.Name
	inv.Index = []int{0}
	inv.Sync = true
	inv.Ready = e.eng.Now()
	inv.Started = e.eng.Now()
	e.trace.Invocations = append(e.trace.Invocations, inv)

	req := services.Request{
		Index:  []int{0},
		Inputs: make(map[string]string),
		Lists:  make(map[string][]string),
	}
	var inputs []*provenance.Item
	for _, port := range st.p.InPorts {
		items := st.syncBuf[port]
		vals := make([]string, len(items))
		for i, it := range items {
			vals[i] = it.Value
		}
		req.Lists[port] = vals
		if len(items) > 0 {
			req.Inputs[port] = items[0].Value // convenience binding
		}
		inputs = append(inputs, items...)
	}
	//moteur:orderinvariant distinct constant keys write disjoint map slots, no order leak
	for k, v := range st.p.Constants {
		req.Inputs[k] = v
	}
	st.p.Service.Invoke(req, func(resp services.Response) {
		e.complete(st, inv, inputs, resp)
	})
}

// diagnose describes why execution stalled.
func (e *Enactor) diagnose() string {
	for _, st := range e.states {
		if st.queue.len() > 0 || st.inFlight > 0 {
			return fmt.Sprintf("processor %s has %d queued tuples and %d in-flight invocations (gate open: %v)",
				st.p.Name, st.queue.len(), st.inFlight, st.open)
		}
	}
	return "no pending work but completion was not detected"
}

// result assembles the Result after completion.
func (e *Enactor) result() *Result {
	r := &Result{
		Makespan: time.Duration(e.finish - e.start),
		Options:  e.opts,
		Outputs:  make(map[string][]string),
		Items:    make(map[string][]*provenance.Item),
		Trace:    e.trace,
	}
	for _, sink := range e.wf.Sinks() {
		st := e.procs[sink.Name]
		// Decorate-sort-undecorate: index keys are rendered once per item,
		// not once per comparison, and the sort runs on a concrete type.
		ks := make(keyedItems, len(st.collected))
		for i, it := range st.collected {
			ks[i] = keyedItem{it.Key(), it}
		}
		sort.Sort(ks)
		items := make([]*provenance.Item, len(ks))
		vals := make([]string, len(ks))
		for i, k := range ks {
			items[i] = k.item
			vals[i] = k.item.Value
		}
		r.Outputs[sink.Name] = vals
		r.Items[sink.Name] = items
	}
	return r
}

type keyedItem struct {
	key  string
	item *provenance.Item
}

type keyedItems []keyedItem

func (s keyedItems) Len() int      { return len(s) }
func (s keyedItems) Swap(i, j int) { s[i], s[j] = s[j], s[i] }
func (s keyedItems) Less(i, j int) bool {
	if s[i].key != s[j].key {
		return s[i].key < s[j].key
	}
	return s[i].item.Value < s[j].item.Value
}
