package core

import (
	"fmt"
	"strings"

	"repro/internal/iterstrat"
	"repro/internal/services"
	"repro/internal/workflow"
)

// AutoGroup rewrites a workflow by fusing eligible sequential processor
// chains into grouped processors backed by a single grid job each — the
// job-grouping optimization of Sec. 3.6. The input workflow is left
// untouched.
//
// An edge P→Q is fused when:
//
//   - both processors are backed by the generic wrapper (their executable
//     descriptors are available to the enactor) and submit to the same grid;
//   - neither is a synchronization processor;
//   - every data link leaving P enters Q (P's outputs are not needed by any
//     other processor or sink), so P's outputs can stay on the worker node;
//   - the P-fed input ports of Q sit directly under a top-level dot product
//     in Q's iteration strategy (or are Q's only input), so one invocation
//     of P corresponds to exactly one invocation of Q.
//
// Fusion repeats until fixpoint, so chains of any length collapse — the
// paper groups crestLines+crestMatch and PFMatchICP+PFRegister.
//
// Wrapper-backed processors must name their input ports after the
// descriptor's input names (the usual construction); grouped processors
// expose member-qualified ports ("<executable>.<input>").
func AutoGroup(wf *workflow.Workflow) (*workflow.Workflow, error) {
	cur := wf
	for {
		edge, ok := findGroupableEdge(cur)
		if !ok {
			return cur, nil
		}
		next, err := fuse(cur, edge.from, edge.to)
		if err != nil {
			return nil, err
		}
		cur = next
	}
}

type edge struct{ from, to string }

// membersOf exposes the group members behind a service: a Wrapper is a
// single member; a Grouped contributes its member list (flattening chains).
func membersOf(svc services.Service) ([]services.GroupMember, bool) {
	switch s := svc.(type) {
	case *services.Wrapper:
		return []services.GroupMember{{W: s}}, true
	case *services.Grouped:
		return s.Members(), true
	default:
		return nil, false
	}
}

func findGroupableEdge(wf *workflow.Workflow) (edge, bool) {
	for _, p := range wf.Processors() {
		if p.Kind != workflow.KindService || p.Synchronization {
			continue
		}
		if _, ok := membersOf(p.Service); !ok {
			continue
		}
		out := wf.Outgoing(p.Name)
		if len(out) == 0 {
			continue
		}
		target := out[0].ToProc
		sameTarget := true
		for _, l := range out {
			if l.ToProc != target {
				sameTarget = false
				break
			}
		}
		if !sameTarget || target == p.Name {
			continue
		}
		q, _ := wf.Proc(target)
		if q.Kind != workflow.KindService || q.Synchronization {
			continue
		}
		if _, ok := membersOf(q.Service); !ok {
			continue
		}
		if !alignmentOK(wf, p, q) {
			continue
		}
		return edge{p.Name, q.Name}, true
	}
	return edge{}, false
}

// alignmentOK checks the 1:1 invocation correspondence condition: ports of
// Q fed by P are fed only by P, and they appear as direct leaves of Q's
// top-level dot product (or constitute Q's single input).
func alignmentOK(wf *workflow.Workflow, p, q *workflow.Processor) bool {
	fed := fedPorts(wf, p, q)
	if len(fed) == 0 {
		return false
	}
	incoming := wf.Incoming(q.Name)
	//moteur:orderinvariant pure conjunction over ports, same verdict in any order
	for port := range fed {
		for _, l := range incoming[port] {
			if l.FromProc != p.Name {
				return false // port also fed by someone else (e.g. a loop)
			}
		}
	}
	strat := wf.EffectiveStrategy(q)
	op, children, port := iterstrat.Decompose(strat)
	if op == iterstrat.OpPort {
		return fed[port] && len(fed) == 1
	}
	if op != iterstrat.OpDot {
		return false
	}
	seen := 0
	for _, c := range children {
		cop, _, cport := iterstrat.Decompose(c)
		if cop == iterstrat.OpPort && fed[cport] {
			seen++
		}
	}
	return seen == len(fed)
}

// fedPorts returns the input ports of q that receive data from p.
func fedPorts(wf *workflow.Workflow, p, q *workflow.Processor) map[string]bool {
	fed := make(map[string]bool)
	for _, l := range wf.Outgoing(p.Name) {
		if l.ToProc == q.Name {
			fed[l.ToPort] = true
		}
	}
	return fed
}

// memberFor resolves which member of a group owns the given exposed port
// name, returning the member index and the member-local input name.
func memberFor(members []services.GroupMember, grouped bool, port string) (int, string, error) {
	if !grouped {
		return 0, port, nil
	}
	for j, m := range members {
		prefix := m.W.Name() + "."
		if strings.HasPrefix(port, prefix) {
			local := strings.TrimPrefix(port, prefix)
			if _, ok := m.W.Descriptor().Input(local); ok {
				return j, local, nil
			}
		}
	}
	return 0, "", fmt.Errorf("core: no group member owns port %q", port)
}

// fuse builds a new workflow with P and Q replaced by a grouped processor.
func fuse(wf *workflow.Workflow, pName, qName string) (*workflow.Workflow, error) {
	p, _ := wf.Proc(pName)
	q, _ := wf.Proc(qName)
	pMembers, _ := membersOf(p.Service)
	qMembers, _ := membersOf(q.Service)
	pGrouped, qGrouped := len(pMembers) > 1, len(qMembers) > 1
	lastP := len(pMembers) - 1

	// Assemble the member list: P's members followed by Q's, with Q-side
	// internal references shifted and the P→Q links wired internally.
	members := append([]services.GroupMember(nil), pMembers...)
	for _, m := range qMembers {
		shifted := make(map[string]services.InternalRef, len(m.Internal))
		//moteur:orderinvariant map-to-map rebuild keyed by the same keys, no order leak
		for in, ref := range m.Internal {
			shifted[in] = services.InternalRef{Member: ref.Member + len(pMembers), Port: ref.Port}
		}
		members = append(members, services.GroupMember{W: m.W, Internal: shifted})
	}
	for _, l := range wf.Outgoing(pName) {
		j, local, err := memberFor(qMembers, qGrouped, l.ToPort)
		if err != nil {
			return nil, fmt.Errorf("core: grouping %s+%s: %w", pName, qName, err)
		}
		mi := len(pMembers) + j
		if members[mi].Internal == nil {
			members[mi].Internal = make(map[string]services.InternalRef)
		}
		members[mi].Internal[local] = services.InternalRef{Member: lastP, Port: l.FromPort}
	}

	groupName := pName + "+" + qName
	grouped, err := services.NewGrouped(groupName, members)
	if err != nil {
		return nil, fmt.Errorf("core: grouping %s+%s: %w", pName, qName, err)
	}

	// Port qualification: already-grouped sides keep their names.
	pQual := func(port string) string {
		if pGrouped {
			return port
		}
		return pMembers[0].W.Name() + "." + port
	}
	qQual := func(port string) string {
		if qGrouped {
			return port
		}
		return qMembers[0].W.Name() + "." + port
	}

	// Merged iteration strategy: P's strategy replaces the block of P-fed
	// leaves inside Q's top-level dot. Nested dots are flattened (dot is
	// associative over index vectors), which keeps longer chains fusable.
	fed := fedPorts(wf, p, q)
	pStrat := iterstrat.Rename(wf.EffectiveStrategy(p), pQual)
	var rest []iterstrat.Strategy
	op, children, _ := iterstrat.Decompose(wf.EffectiveStrategy(q))
	if op == iterstrat.OpDot {
		for _, c := range children {
			cop, _, cport := iterstrat.Decompose(c)
			if cop == iterstrat.OpPort && fed[cport] {
				continue
			}
			rest = append(rest, iterstrat.Rename(c, qQual))
		}
	}
	var merged iterstrat.Strategy
	if len(rest) == 0 {
		merged = pStrat
	} else {
		tops := []iterstrat.Strategy{pStrat}
		if pop, pkids, _ := iterstrat.Decompose(pStrat); pop == iterstrat.OpDot {
			tops = pkids
		}
		merged = iterstrat.Dot(append(tops, rest...)...)
	}

	// Merged constants, qualified per owner.
	constants := make(map[string]string)
	//moteur:orderinvariant qualified keys write disjoint map slots, no order leak
	for k, v := range p.Constants {
		constants[pQual(k)] = v
	}
	//moteur:orderinvariant qualified keys write disjoint map slots, no order leak
	for k, v := range q.Constants {
		constants[qQual(k)] = v
	}

	// Input ports: the group's external inputs, except those satisfied by
	// constants.
	var inPorts []string
	for _, port := range grouped.ExternalInputs() {
		if _, isConst := constants[port]; !isConst {
			inPorts = append(inPorts, port)
		}
	}

	// Rebuild the workflow.
	out := workflow.New(wf.Name)
	for _, proc := range wf.Processors() {
		switch proc.Name {
		case pName:
			out.Add(&workflow.Processor{
				Name:      groupName,
				Kind:      workflow.KindService,
				Service:   grouped,
				InPorts:   inPorts,
				OutPorts:  append([]string(nil), q.OutPorts...),
				Strategy:  merged,
				Constants: constants,
			})
		case qName:
			// replaced by the group, inserted at P's position
		default:
			out.Add(proc)
		}
	}
	for _, l := range wf.Links {
		switch {
		case l.FromProc == pName && l.ToProc == qName:
			// internal to the group
		case l.ToProc == pName:
			out.Connect(l.FromProc, l.FromPort, groupName, pQual(l.ToPort))
		case l.ToProc == qName:
			out.Connect(l.FromProc, l.FromPort, groupName, qQual(l.ToPort))
		case l.FromProc == qName:
			out.Connect(groupName, l.FromPort, l.ToProc, l.ToPort)
		default:
			out.Connect(l.FromProc, l.FromPort, l.ToProc, l.ToPort)
		}
	}
	for _, c := range wf.Constraints {
		before, after := c.Before, c.After
		if before == pName || before == qName {
			before = groupName
		}
		if after == pName || after == qName {
			after = groupName
		}
		if before != after {
			out.Constrain(before, after)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("core: grouping %s+%s produced an invalid workflow: %w", pName, qName, err)
	}
	return out, nil
}
