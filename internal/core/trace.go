package core

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/grid"
	"repro/internal/provenance"
	"repro/internal/sim"
)

// Invocation is one trace entry: a single service invocation with its
// timing and the grid jobs behind it.
type Invocation struct {
	Processor string
	Index     []int
	Sync      bool
	Ready     sim.Time // input tuple complete, queued for admission
	Started   sim.Time // service invoked
	Finished  sim.Time
	Jobs      []*grid.JobRecord
	Err       error
}

// Key returns the invocation's index key.
func (i *Invocation) Key() string { return provenance.Key(i.Index) }

// Wait returns how long the tuple waited for admission (gates, caps).
func (i *Invocation) Wait() time.Duration { return time.Duration(i.Started - i.Ready) }

// Span returns the invocation's service time.
func (i *Invocation) Span() time.Duration { return time.Duration(i.Finished - i.Started) }

// Trace is the complete execution record, in invocation start order.
type Trace struct {
	Invocations []*Invocation
}

// ByProcessor returns the invocations of one processor, in start order.
func (t *Trace) ByProcessor(name string) []*Invocation {
	var out []*Invocation
	for _, inv := range t.Invocations {
		if inv.Processor == name {
			out = append(out, inv)
		}
	}
	return out
}

// Processors returns the distinct processor names appearing in the trace,
// sorted.
func (t *Trace) Processors() []string {
	set := make(map[string]bool)
	for _, inv := range t.Invocations {
		set[inv.Processor] = true
	}
	out := make([]string, 0, len(set))
	//moteur:orderinvariant keys are sorted immediately after collection
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// JobCount returns the total number of grid job submissions (including
// resubmissions after failures) behind the trace.
func (t *Trace) JobCount() int {
	n := 0
	for _, inv := range t.Invocations {
		for _, j := range inv.Jobs {
			n += j.Attempts
		}
	}
	return n
}

// Jobs returns all grid job records behind the trace.
func (t *Trace) Jobs() []*grid.JobRecord {
	var out []*grid.JobRecord
	for _, inv := range t.Invocations {
		out = append(out, inv.Jobs...)
	}
	return out
}

// Result is the outcome of one workflow execution.
type Result struct {
	// Makespan is the total execution time Σ of the workflow.
	Makespan time.Duration
	// Options records the optimization configuration used.
	Options Options
	// Outputs holds, per sink, the collected values sorted by index key —
	// identical across optimization configurations by construction.
	Outputs map[string][]string
	// Items holds the sink items with full provenance.
	Items map[string][]*provenance.Item
	// Trace is the execution record.
	Trace *Trace
}

// Summary renders a short human-readable report.
func (r *Result) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "configuration %s: makespan %v, %d invocations\n",
		r.Options, r.Makespan.Round(time.Second), len(r.Trace.Invocations))
	for _, name := range r.Trace.Processors() {
		invs := r.Trace.ByProcessor(name)
		var wait, span time.Duration
		for _, inv := range invs {
			wait += inv.Wait()
			span += inv.Span()
		}
		n := time.Duration(len(invs))
		fmt.Fprintf(&b, "  %-28s %4d invocations, mean wait %v, mean service %v\n",
			name, len(invs), (wait / n).Round(time.Second), (span / n).Round(time.Second))
	}
	sinks := make([]string, 0, len(r.Outputs))
	//moteur:orderinvariant keys are sorted immediately after collection
	for s := range r.Outputs {
		sinks = append(sinks, s)
	}
	sort.Strings(sinks)
	for _, s := range sinks {
		fmt.Fprintf(&b, "  sink %-23s %4d items\n", s, len(r.Outputs[s]))
	}
	return b.String()
}
